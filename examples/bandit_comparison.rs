//! Bandit playground: replay the paper's policy zoo over synthetic traces.
//!
//! Generates the Fig. 10 non-stationary scenario plus stationary and
//! single-switch controls, replays every policy family over them, and
//! prints a Table-5-style scoreboard (Absolute/OPT and Relative/OPT).
//!
//! ```sh
//! cargo run --release --example bandit_comparison
//! ```

use micro_adaptivity::core::policy::VwGreedyParams;
use micro_adaptivity::core::{simulate_workload, PolicyKind, ScoreBoard, SimScore};
use micro_adaptivity::machsim::{fig10_trace, stationary_trace, switching_trace, Fig10Spec};

fn main() {
    let traces = vec![
        fig10_trace(&Fig10Spec::default(), 1),
        stationary_trace("stationary-easy", 32 * 1024, 1024, &[4.0, 6.0, 8.0], 0.2, 2),
        stationary_trace(
            "stationary-close",
            32 * 1024,
            1024,
            &[5.0, 5.2, 5.4],
            0.2,
            3,
        ),
        switching_trace(32 * 1024, 1024, 0.6, 4),
    ];
    println!("traces:");
    for t in &traces {
        println!(
            "  {:<18} {} calls, {} flavors, best-fixed/OPT = {:.3}",
            t.name,
            t.calls(),
            t.flavors(),
            t.fixed_ticks(t.best_fixed_flavor()) as f64 / t.opt_ticks() as f64
        );
    }

    let vw = |a, b, c| {
        PolicyKind::VwGreedy(VwGreedyParams {
            explore_period: a,
            exploit_period: b,
            explore_length: c,
        })
    };
    let policies = [
        vw(1024, 8, 2),
        vw(1024, 256, 32),
        vw(2048, 8, 2),
        PolicyKind::EpsGreedy { eps: 0.001 },
        PolicyKind::EpsGreedy { eps: 0.05 },
        PolicyKind::EpsGreedy { eps: 0.1 },
        PolicyKind::EpsFirst { explore_calls: 96 },
        PolicyKind::EpsDecreasing { eps0: 1.0 },
        PolicyKind::Ucb1,
    ];

    let mut board = ScoreBoard::new();
    for kind in policies {
        let results = simulate_workload(&traces, kind, 0xBEEF);
        board.push(SimScore::from_results(kind.build(2, 0).name(), &results));
    }
    println!("\n{}", board.render());
    println!("(lower is better; 1.000 = per-call oracle)");
}
