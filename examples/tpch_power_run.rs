//! TPC-H power run under the three engine modes (a small-scale Table 11).
//!
//! Generates TPC-H, runs all 22 queries under the stock engine, the
//! hand-tuned heuristics, and Micro Adaptivity, verifies the three agree on
//! every result, and prints per-query improvement factors plus the
//! geometric mean.
//!
//! ```sh
//! cargo run --release --example tpch_power_run [-- <scale-factor>]
//! ```

use std::sync::Arc;

use micro_adaptivity::executor::{ExecConfig, FlavorAxis};
use micro_adaptivity::tpch::{geometric_mean, Runner, TpchData};

fn main() {
    let sf: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.02);
    eprintln!("generating TPC-H at SF {sf} ...");
    let runner = Runner::new(Arc::new(TpchData::generate(sf, 0xDA7A)));

    println!(
        "{:<6} {:>10} {:>14} {:>12} {:>14}",
        "query", "rows", "base Mticks", "Heuristics", "MicroAdaptive"
    );
    let (mut hf, mut af) = (Vec::new(), Vec::new());
    for q in 1..=22 {
        let base = runner.run(q, ExecConfig::fixed_default()).expect("base");
        let heur = runner.run(q, ExecConfig::heuristic()).expect("heuristics");
        let adapt = runner
            .run(q, ExecConfig::adaptive(FlavorAxis::All))
            .expect("adaptive");
        let tol = 1e-6 * base.checksum.abs().max(1.0);
        assert!(
            (base.checksum - heur.checksum).abs() <= tol,
            "Q{q}: heuristics changed the result!"
        );
        assert!(
            (base.checksum - adapt.checksum).abs() <= tol,
            "Q{q}: adaptivity changed the result!"
        );
        let h = base.stages.execute as f64 / heur.stages.execute.max(1) as f64;
        let a = base.stages.execute as f64 / adapt.stages.execute.max(1) as f64;
        hf.push(h);
        af.push(a);
        println!(
            "Q{q:<5} {:>10} {:>14.1} {:>12.2} {:>14.2}",
            base.rows,
            base.stages.execute as f64 / 1e6,
            h,
            a
        );
    }
    println!(
        "{:<6} {:>10} {:>14} {:>12.2} {:>14.2}",
        "GeoAvg",
        "",
        "",
        geometric_mean(&hf),
        geometric_mean(&af)
    );
    println!("\nall three configurations produced identical results on every query");
}
