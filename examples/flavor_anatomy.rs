//! Flavor anatomy: inspect the Primitive Dictionary and watch vw-greedy
//! learn, call by call.
//!
//! Prints the registered flavor sets for a few signatures, then runs a
//! single adaptive instance over data whose best flavor flips mid-stream,
//! dumping the per-phase choices the bandit makes.
//!
//! ```sh
//! cargo run --release --example flavor_anatomy
//! ```

use std::sync::Arc;

use micro_adaptivity::core::policy::{VwGreedy, VwGreedyParams};
use micro_adaptivity::core::{AdaptiveDispatch, PolicyKind, SplitMix64};
use micro_adaptivity::primitives::{build_dictionary, SelColVal};

fn main() {
    let dict = build_dictionary();
    println!("Primitive Dictionary: {} signatures\n", dict.len());
    for sig in [
        "sel_lt_i32_col_val",
        "map_mul_i64_col_col",
        "sel_bloomfilter",
        "hash_insertcheck_str_col",
        "mergejoin_i64_col_i64_col",
    ] {
        let set = dict.lookup::<SelColVal<i32>>("sel_lt_i32_col_val").unwrap();
        if sig == "sel_lt_i32_col_val" {
            let flavors: Vec<String> = set
                .infos()
                .iter()
                .map(|i| format!("{}{}", i.name, if i.alias { " (alias)" } else { "" }))
                .collect();
            println!("{sig}:\n  {}", flavors.join(", "));
        } else {
            println!("{sig}:\n  (registered: {})", dict.contains(sig));
        }
    }

    // Watch vw-greedy converge, then react to a mid-stream flip.
    println!("\nvw-greedy(256,32,8) over a selection whose selectivity flips at call 2000:");
    let set = dict
        .lookup::<SelColVal<i32>>("sel_lt_i32_col_val")
        .unwrap()
        .subset(&["branching", "no_branching"])
        .unwrap();
    let policy = VwGreedy::new(
        2,
        VwGreedyParams {
            explore_period: 256,
            exploit_period: 32,
            explore_length: 8,
        },
        SplitMix64::new(7),
    );
    let _ = PolicyKind::Fixed(0); // (see PolicyKind for the full policy zoo)
    let mut dispatch = AdaptiveDispatch::new(Arc::new(set), Box::new(policy));

    let mut rng = SplitMix64::new(99);
    let n = 1024;
    let mut res = vec![0u32; n];
    let mut counts = [[0u64; 2]; 4]; // phase × flavor
    for call in 0..4000u64 {
        // Selectivity ~99% before the flip (branching-friendly),
        // ~50% after (branch-hostile).
        let sel_pct = if call < 2000 { 990 } else { 500 };
        let data: Vec<i32> = (0..n).map(|_| (rng.next_u64() % 1000) as i32).collect();
        dispatch.invoke(n as u64, |f| {
            std::hint::black_box(f(&mut res, &data, sel_pct, None))
        });
        let phase = (call / 1000) as usize;
        counts[phase][dispatch.last_flavor()] += 1;
    }
    for (p, c) in counts.iter().enumerate() {
        println!(
            "  calls {:>4}-{:<4} branching {:>4}  no_branching {:>4}   <- {}",
            p * 1000,
            (p + 1) * 1000 - 1,
            c[0],
            c[1],
            if p < 2 {
                "99% selectivity"
            } else {
                "50% selectivity"
            }
        );
    }
    let profile = dispatch.profile();
    println!(
        "\n{} calls, {:.2} ticks/tuple lifetime average",
        profile.calls,
        profile.avg_cost()
    );
}
