//! Quickstart: Micro Adaptivity in ~60 lines.
//!
//! Builds a table whose value distribution *changes mid-scan* (the paper's
//! Fig. 2 situation), runs the same selection query — written once against
//! the named-column `PlanBuilder` API — with each fixed flavor and with
//! Micro Adaptivity, and prints the cost each strategy paid.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use micro_adaptivity::executor::plan::{lower, NamedPred, PlanBuilder};
use micro_adaptivity::executor::{CmpKind, ExecConfig, FlavorAxis, QueryContext, Value};
use micro_adaptivity::primitives::build_dictionary;
use micro_adaptivity::vector::{ColumnBuilder, DataType, Table};

fn main() {
    // 4M rows: the first half is ~99% selective (branch almost always
    // taken), the second half ~50% (branch unpredictable). No single flavor
    // is right for the whole scan.
    let n = 4_000_000;
    let mut col = ColumnBuilder::with_capacity(DataType::I32, n);
    let mut state = 0x9E3779B97F4A7C15u64;
    for i in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let r = (state >> 40) as i32 % 1000;
        col.push_i32(if i < n / 2 { r / 100 } else { r });
    }
    let table = Arc::new(Table::new("t", vec![("v".into(), col.finish())]).unwrap());
    let dict = Arc::new(build_dictionary());

    // The query names its column; the physical planner (`lower`) decides
    // everything physical — operator choice, sharding, pushdown.
    let plan = PlanBuilder::from_table(Arc::clone(&table), &["v"])
        .filter(
            NamedPred::cmp_val("v", CmpKind::Lt, Value::I32(500)),
            "quickstart",
        )
        .build()
        .unwrap();

    let run = |name: &str, config: ExecConfig| {
        let ctx = QueryContext::new(Arc::clone(&dict), config);
        let mut op = lower(&plan, &ctx).unwrap();
        let mut rows = 0usize;
        while let Some(chunk) = op.next().unwrap() {
            rows += chunk.live_count();
        }
        // Stats publish at batch granularity; drop the pipeline (and its
        // primitive instance) so the final partial batch lands first.
        drop(op);
        let report = &ctx.reports()[0];
        println!(
            "{name:<22} {:>12} ticks  ({} rows, flavors used: {})",
            report.ticks,
            rows,
            report
                .flavor_calls
                .iter()
                .filter(|(_, c)| *c > 0)
                .map(|(f, c)| format!("{f}×{c}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        report.ticks
    };

    println!("SELECT count(*) WHERE v < 500 over phase-changing data:\n");
    let b = run("always branching", ExecConfig::fixed("branching"));
    let nb = run("always no-branching", ExecConfig::fixed("no_branching"));
    let ma = run(
        "micro adaptive",
        ExecConfig::adaptive(FlavorAxis::Branching),
    );
    println!(
        "\nmicro adaptive vs best fixed: {:.2}x, vs worst fixed: {:.2}x",
        b.min(nb) as f64 / ma as f64,
        b.max(nb) as f64 / ma as f64
    );
}
