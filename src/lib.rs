#![warn(missing_docs)]
//! # micro_adaptivity — umbrella crate
//!
//! Reproduction of *Micro Adaptivity in Vectorwise* (Răducanu, Boncz,
//! Żukowski; SIGMOD 2013): a vectorized query engine that ships **many
//! implementations ("flavors") of every primitive function** and uses the
//! non-stationary multi-armed-bandit algorithm **vw-greedy** to pick, at each
//! primitive call, the flavor that currently performs best.
//!
//! This crate re-exports the workspace's public API:
//!
//! * [`vector`] — columnar substrate: typed vectors, selection vectors,
//!   data chunks, in-memory tables.
//! * [`core`] — the Micro Adaptivity framework: flavor sets + primitive
//!   dictionary, Approximated Performance History (APH), cycle profiling,
//!   bandit policies (vw-greedy, ε-greedy, ε-first, ε-decreasing, UCB1),
//!   and the trace simulator behind the paper's Table 5.
//! * [`primitives`] — the flavor library: selection, map, fetch, hash,
//!   bloom-filter and aggregation primitives, each in the paper's flavor
//!   sets (branch/no-branch, fission, full computation, hand-unrolling,
//!   compiler styles).
//! * [`executor`] — vector-at-a-time query executor whose expression
//!   evaluator performs the adaptive flavor dispatch.
//! * [`tpch`] — deterministic TPC-H dbgen plus all 22 queries as physical
//!   plans (the paper's evaluation workload).
//! * [`machsim`] — analytic cost models of the paper's four test machines,
//!   for the cross-hardware figures.
//!
//! ## Quickstart
//!
//! ```
//! use micro_adaptivity::core::policy::{Policy, VwGreedy, VwGreedyParams};
//! use micro_adaptivity::core::SplitMix64;
//!
//! // Two flavors whose relative speed flips halfway through the query.
//! let mut policy = VwGreedy::new(2, VwGreedyParams::default(), SplitMix64::new(1));
//! let mut total = 0u64;
//! for call in 0..20_000u64 {
//!     let flavor = policy.choose();
//!     let cost = match (call < 10_000, flavor) {
//!         (true, 0) | (false, 1) => 3_000,  // ticks for 1000 tuples
//!         _ => 9_000,
//!     };
//!     policy.observe(flavor, 1_000, cost);
//!     total += cost;
//! }
//! // vw-greedy tracks the flip: far closer to the 60M-tick optimum than to
//! // the 120M ticks of the average fixed choice.
//! assert!(total < 70_000_000);
//! ```

pub use ma_core as core;
pub use ma_executor as executor;
pub use ma_machsim as machsim;
pub use ma_primitives as primitives;
pub use ma_tpch as tpch;
pub use ma_vector as vector;
