//! Vectorized hash-value computation primitives.
//!
//! Hash aggregation and hash joins first compute a hash vector from the key
//! column(s) (`map_hash_*`), combining further key columns with
//! `map_rehash_*` — the standard vectorized hashing pipeline (§1,
//! "Primitive Functions"). Integer keys use a Murmur-style finalizer; strings
//! use FNV-1a.

use ma_vector::StrVec;

/// Hash a fixed-width column into `res`.
pub type MapHash<T> = fn(res: &mut [u64], col: &[T], sel: Option<&[u32]>);

/// Combine an additional fixed-width column into an existing hash vector.
pub type MapRehash<T> = fn(res: &mut [u64], col: &[T], sel: Option<&[u32]>);

/// Hash a string column into `res`.
pub type MapHashStr = fn(res: &mut [u64], col: &StrVec, sel: Option<&[u32]>);

/// Combine a string column into an existing hash vector.
pub type MapRehashStr = fn(res: &mut [u64], col: &StrVec, sel: Option<&[u32]>);

/// Murmur3-style 64-bit finalizer: fast, well-mixed scalar hash.
#[inline(always)]
pub fn hash_u64(mut x: u64) -> u64 {
    // Salt the input so 0 does not hash to 0 (every step of the raw
    // finalizer is 0-preserving).
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51AFD7ED558CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CEB9FE1A85EC53);
    x ^ (x >> 33)
}

/// Combines an existing hash with a new value's hash.
#[inline(always)]
pub fn combine_hash(h: u64, v: u64) -> u64 {
    // boost::hash_combine-style mix on 64 bits.
    h ^ hash_u64(v)
        .wrapping_add(0x9E3779B97F4A7C15)
        .wrapping_add(h << 6)
        .wrapping_add(h >> 2)
}

/// FNV-1a over a byte string.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

macro_rules! int_hash_prims {
    ($hash_gcc:ident, $hash_icc:ident, $hash_clang:ident, $rehash_gcc:ident, $ty:ty) => {
        /// `gcc` style: plain indexed loop.
        pub fn $hash_gcc(res: &mut [u64], col: &[$ty], sel: Option<&[u32]>) {
            match sel {
                Some(s) => {
                    for &i in s {
                        res[i as usize] = hash_u64(col[i as usize] as u64);
                    }
                }
                None => {
                    for i in 0..col.len() {
                        res[i] = hash_u64(col[i] as u64);
                    }
                }
            }
        }

        /// `icc` style: 4-way unrolled.
        pub fn $hash_icc(res: &mut [u64], col: &[$ty], sel: Option<&[u32]>) {
            macro_rules! body {
                ($i:expr) => {{
                    let i = $i;
                    res[i] = hash_u64(col[i] as u64);
                }};
            }
            match sel {
                Some(s) => {
                    let mut j = 0;
                    while j + 4 <= s.len() {
                        body!(s[j] as usize);
                        body!(s[j + 1] as usize);
                        body!(s[j + 2] as usize);
                        body!(s[j + 3] as usize);
                        j += 4;
                    }
                    while j < s.len() {
                        body!(s[j] as usize);
                        j += 1;
                    }
                }
                None => {
                    let n = col.len();
                    let mut i = 0;
                    while i + 4 <= n {
                        body!(i);
                        body!(i + 1);
                        body!(i + 2);
                        body!(i + 3);
                        i += 4;
                    }
                    while i < n {
                        body!(i);
                        i += 1;
                    }
                }
            }
        }

        /// `clang` style: iterator zip.
        pub fn $hash_clang(res: &mut [u64], col: &[$ty], sel: Option<&[u32]>) {
            match sel {
                Some(s) => {
                    for &i in s {
                        res[i as usize] = hash_u64(col[i as usize] as u64);
                    }
                }
                None => {
                    for (r, &x) in res.iter_mut().zip(col.iter()) {
                        *r = hash_u64(x as u64);
                    }
                }
            }
        }

        /// Rehash (combine second key column), plain loop.
        pub fn $rehash_gcc(res: &mut [u64], col: &[$ty], sel: Option<&[u32]>) {
            match sel {
                Some(s) => {
                    for &i in s {
                        let i = i as usize;
                        res[i] = combine_hash(res[i], col[i] as u64);
                    }
                }
                None => {
                    for i in 0..col.len() {
                        res[i] = combine_hash(res[i], col[i] as u64);
                    }
                }
            }
        }
    };
}

int_hash_prims!(
    map_hash_i32_gcc,
    map_hash_i32_icc,
    map_hash_i32_clang,
    map_rehash_i32_gcc,
    i32
);
int_hash_prims!(
    map_hash_i64_gcc,
    map_hash_i64_icc,
    map_hash_i64_clang,
    map_rehash_i64_gcc,
    i64
);

/// String hash, `gcc` style.
#[allow(clippy::needless_range_loop)] // the gcc code style *is* the indexed loop
pub fn map_hash_str_gcc(res: &mut [u64], col: &StrVec, sel: Option<&[u32]>) {
    match sel {
        Some(s) => {
            for &i in s {
                res[i as usize] = hash_bytes(col.get(i as usize).as_bytes());
            }
        }
        None => {
            for i in 0..col.len() {
                res[i] = hash_bytes(col.get(i).as_bytes());
            }
        }
    }
}

/// String hash, `clang` style (iterator over views).
#[allow(clippy::needless_range_loop)]
pub fn map_hash_str_clang(res: &mut [u64], col: &StrVec, sel: Option<&[u32]>) {
    match sel {
        Some(s) => {
            for &i in s {
                res[i as usize] = hash_bytes(col.get(i as usize).as_bytes());
            }
        }
        None => {
            for (i, r) in res.iter_mut().enumerate().take(col.len()) {
                *r = hash_bytes(col.get(i).as_bytes());
            }
        }
    }
}

/// String rehash (combine into existing hash vector).
#[allow(clippy::needless_range_loop)]
pub fn map_rehash_str_gcc(res: &mut [u64], col: &StrVec, sel: Option<&[u32]>) {
    match sel {
        Some(s) => {
            for &i in s {
                let i = i as usize;
                res[i] = combine_hash(res[i], hash_bytes(col.get(i).as_bytes()));
            }
        }
        None => {
            for i in 0..col.len() {
                res[i] = combine_hash(res[i], hash_bytes(col.get(i).as_bytes()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_hash_mixes() {
        // Nearby keys must land far apart.
        let h1 = hash_u64(1);
        let h2 = hash_u64(2);
        assert_ne!(h1, h2);
        assert!((h1 ^ h2).count_ones() > 10, "poor avalanche");
        assert_ne!(hash_u64(0), 0);
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = combine_hash(hash_u64(1), 2);
        let b = combine_hash(hash_u64(2), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn int_hash_flavors_agree() {
        let col: Vec<i64> = (0..100).map(|i| i * 1_000_003).collect();
        let sel: Vec<u32> = (0..100u32).step_by(7).collect();
        for sv in [None, Some(sel.as_slice())] {
            let mut r1 = vec![0u64; 100];
            let mut r2 = vec![0u64; 100];
            let mut r3 = vec![0u64; 100];
            map_hash_i64_gcc(&mut r1, &col, sv);
            map_hash_i64_icc(&mut r2, &col, sv);
            map_hash_i64_clang(&mut r3, &col, sv);
            match sv {
                None => {
                    assert_eq!(r1, r2);
                    assert_eq!(r1, r3);
                }
                Some(s) => {
                    for &i in s {
                        assert_eq!(r1[i as usize], r2[i as usize]);
                        assert_eq!(r1[i as usize], r3[i as usize]);
                    }
                }
            }
        }
    }

    #[test]
    fn i32_and_i64_same_value_hash_equal() {
        // Key packing relies on casting to u64 first.
        let mut r32 = vec![0u64; 1];
        let mut r64 = vec![0u64; 1];
        map_hash_i32_gcc(&mut r32, &[42i32], None);
        map_hash_i64_gcc(&mut r64, &[42i64], None);
        assert_eq!(r32[0], r64[0]);
    }

    #[test]
    fn str_hash_flavors_agree_and_distinguish() {
        let col = StrVec::from_strings(&["MAIL", "SHIP", "TRUCK", ""]);
        let mut r1 = vec![0u64; 4];
        let mut r2 = vec![0u64; 4];
        map_hash_str_gcc(&mut r1, &col, None);
        map_hash_str_clang(&mut r2, &col, None);
        assert_eq!(r1, r2);
        assert_ne!(r1[0], r1[1]);
        assert_ne!(r1[1], r1[2]);
    }

    #[test]
    fn rehash_combines_columns() {
        let a = [1i64, 1];
        let b = [5i64, 6];
        let mut h = vec![0u64; 2];
        map_hash_i64_gcc(&mut h, &a, None);
        map_rehash_i64_gcc(&mut h, &b, None);
        assert_ne!(h[0], h[1], "(1,5) and (1,6) must hash differently");
    }

    #[test]
    fn str_rehash() {
        let keys = [7i64, 7];
        let names = StrVec::from_strings(&["x", "y"]);
        let mut h = vec![0u64; 2];
        map_hash_i64_gcc(&mut h, &keys, None);
        map_rehash_str_gcc(&mut h, &names, None);
        assert_ne!(h[0], h[1]);
    }
}
