//! Selection primitives (`sel_*`): produce a selection vector with the
//! positions of qualifying tuples.
//!
//! This module contains the paper's canonical flavor pair — **Branching**
//! (Listing 1) vs **No-Branching** (Listing 2) — plus the code-style flavors
//! standing in for compiler variation and the hand-unrolled variant:
//!
//! * `branching` — `if (pred) res[k++] = i`; fast at extreme selectivities,
//!   collapses when the branch is unpredictable (Fig. 1). Default flavor and
//!   the `gcc` code style.
//! * `no_branching` — `res[k] = i; k += pred as usize`; data-independent
//!   cost.
//! * `icc` — branching, 4-way unrolled (what icc tends to emit).
//! * `clang` — iterator/fold formulation (idiomatic LLVM-friendly shape).
//! * `unroll8` — no-branching with the paper's hand-unroll factor 8
//!   (Listing 7).
//!
//! All flavors accept the optional selection vector and are extensionally
//! equivalent; property tests in this module verify that.

use crate::ops::CmpOp;

/// Selection against a constant: writes qualifying positions into `res`,
/// returns how many. `res` must have room for every candidate
/// (`sel.len()` or `col.len()`).
pub type SelColVal<T> = fn(res: &mut [u32], col: &[T], val: T, sel: Option<&[u32]>) -> usize;

/// Selection comparing two columns.
pub type SelColCol<T> = fn(res: &mut [u32], a: &[T], b: &[T], sel: Option<&[u32]>) -> usize;

// ---------------------------------------------------------------------------
// col vs constant
// ---------------------------------------------------------------------------

/// Branching flavor (paper Listing 1).
pub fn sel_col_val_branching<T: Copy, C: CmpOp<T>>(
    res: &mut [u32],
    col: &[T],
    val: T,
    sel: Option<&[u32]>,
) -> usize {
    let mut k = 0;
    match sel {
        Some(s) => {
            for &i in s {
                if C::cmp(col[i as usize], val) {
                    res[k] = i;
                    k += 1;
                }
            }
        }
        None => {
            for (i, &x) in col.iter().enumerate() {
                if C::cmp(x, val) {
                    res[k] = i as u32;
                    k += 1;
                }
            }
        }
    }
    k
}

/// No-Branching flavor (paper Listing 2).
pub fn sel_col_val_no_branching<T: Copy, C: CmpOp<T>>(
    res: &mut [u32],
    col: &[T],
    val: T,
    sel: Option<&[u32]>,
) -> usize {
    let mut k = 0;
    match sel {
        Some(s) => {
            for &i in s {
                res[k] = i;
                k += C::cmp(col[i as usize], val) as usize;
            }
        }
        None => {
            for (i, &x) in col.iter().enumerate() {
                res[k] = i as u32;
                k += C::cmp(x, val) as usize;
            }
        }
    }
    k
}

/// `icc` code style: branching, manually 4-way unrolled with an epilogue.
pub fn sel_col_val_icc<T: Copy, C: CmpOp<T>>(
    res: &mut [u32],
    col: &[T],
    val: T,
    sel: Option<&[u32]>,
) -> usize {
    let mut k = 0;
    match sel {
        Some(s) => {
            let mut j = 0;
            while j + 4 <= s.len() {
                let (i0, i1, i2, i3) = (s[j], s[j + 1], s[j + 2], s[j + 3]);
                if C::cmp(col[i0 as usize], val) {
                    res[k] = i0;
                    k += 1;
                }
                if C::cmp(col[i1 as usize], val) {
                    res[k] = i1;
                    k += 1;
                }
                if C::cmp(col[i2 as usize], val) {
                    res[k] = i2;
                    k += 1;
                }
                if C::cmp(col[i3 as usize], val) {
                    res[k] = i3;
                    k += 1;
                }
                j += 4;
            }
            while j < s.len() {
                let i = s[j];
                if C::cmp(col[i as usize], val) {
                    res[k] = i;
                    k += 1;
                }
                j += 1;
            }
        }
        None => {
            let n = col.len();
            let mut i = 0;
            while i + 4 <= n {
                if C::cmp(col[i], val) {
                    res[k] = i as u32;
                    k += 1;
                }
                if C::cmp(col[i + 1], val) {
                    res[k] = (i + 1) as u32;
                    k += 1;
                }
                if C::cmp(col[i + 2], val) {
                    res[k] = (i + 2) as u32;
                    k += 1;
                }
                if C::cmp(col[i + 3], val) {
                    res[k] = (i + 3) as u32;
                    k += 1;
                }
                i += 4;
            }
            while i < n {
                if C::cmp(col[i], val) {
                    res[k] = i as u32;
                    k += 1;
                }
                i += 1;
            }
        }
    }
    k
}

/// `clang` code style: iterator-based filter/fold formulation.
pub fn sel_col_val_clang<T: Copy, C: CmpOp<T>>(
    res: &mut [u32],
    col: &[T],
    val: T,
    sel: Option<&[u32]>,
) -> usize {
    match sel {
        Some(s) => s
            .iter()
            .filter(|&&i| C::cmp(col[i as usize], val))
            .fold(0usize, |k, &i| {
                res[k] = i;
                k + 1
            }),
        None => col
            .iter()
            .enumerate()
            .filter(|&(_, &x)| C::cmp(x, val))
            .fold(0usize, |k, (i, _)| {
                res[k] = i as u32;
                k + 1
            }),
    }
}

/// Hand-unrolled (factor 8) no-branching flavor, after paper Listing 7.
pub fn sel_col_val_unroll8<T: Copy, C: CmpOp<T>>(
    res: &mut [u32],
    col: &[T],
    val: T,
    sel: Option<&[u32]>,
) -> usize {
    let mut k = 0;
    macro_rules! body {
        ($pos:expr, $x:expr) => {
            res[k] = $pos;
            k += C::cmp($x, val) as usize;
        };
    }
    match sel {
        Some(s) => {
            let mut j = 0;
            while j + 8 <= s.len() {
                body!(s[j], col[s[j] as usize]);
                body!(s[j + 1], col[s[j + 1] as usize]);
                body!(s[j + 2], col[s[j + 2] as usize]);
                body!(s[j + 3], col[s[j + 3] as usize]);
                body!(s[j + 4], col[s[j + 4] as usize]);
                body!(s[j + 5], col[s[j + 5] as usize]);
                body!(s[j + 6], col[s[j + 6] as usize]);
                body!(s[j + 7], col[s[j + 7] as usize]);
                j += 8;
            }
            while j < s.len() {
                body!(s[j], col[s[j] as usize]);
                j += 1;
            }
        }
        None => {
            let n = col.len();
            let mut i = 0;
            while i + 8 <= n {
                body!(i as u32, col[i]);
                body!((i + 1) as u32, col[i + 1]);
                body!((i + 2) as u32, col[i + 2]);
                body!((i + 3) as u32, col[i + 3]);
                body!((i + 4) as u32, col[i + 4]);
                body!((i + 5) as u32, col[i + 5]);
                body!((i + 6) as u32, col[i + 6]);
                body!((i + 7) as u32, col[i + 7]);
                i += 8;
            }
            while i < n {
                body!(i as u32, col[i]);
                i += 1;
            }
        }
    }
    k
}

// ---------------------------------------------------------------------------
// col vs col
// ---------------------------------------------------------------------------

/// Branching col-col flavor.
pub fn sel_col_col_branching<T: Copy, C: CmpOp<T>>(
    res: &mut [u32],
    a: &[T],
    b: &[T],
    sel: Option<&[u32]>,
) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut k = 0;
    match sel {
        Some(s) => {
            for &i in s {
                if C::cmp(a[i as usize], b[i as usize]) {
                    res[k] = i;
                    k += 1;
                }
            }
        }
        None => {
            for i in 0..a.len() {
                if C::cmp(a[i], b[i]) {
                    res[k] = i as u32;
                    k += 1;
                }
            }
        }
    }
    k
}

/// No-branching col-col flavor.
pub fn sel_col_col_no_branching<T: Copy, C: CmpOp<T>>(
    res: &mut [u32],
    a: &[T],
    b: &[T],
    sel: Option<&[u32]>,
) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut k = 0;
    match sel {
        Some(s) => {
            for &i in s {
                res[k] = i;
                k += C::cmp(a[i as usize], b[i as usize]) as usize;
            }
        }
        None => {
            for i in 0..a.len() {
                res[k] = i as u32;
                k += C::cmp(a[i], b[i]) as usize;
            }
        }
    }
    k
}

/// `clang` code style for col-col.
pub fn sel_col_col_clang<T: Copy, C: CmpOp<T>>(
    res: &mut [u32],
    a: &[T],
    b: &[T],
    sel: Option<&[u32]>,
) -> usize {
    debug_assert_eq!(a.len(), b.len());
    match sel {
        Some(s) => s
            .iter()
            .filter(|&&i| C::cmp(a[i as usize], b[i as usize]))
            .fold(0usize, |k, &i| {
                res[k] = i;
                k + 1
            }),
        None => a
            .iter()
            .zip(b.iter())
            .enumerate()
            .filter(|&(_, (&x, &y))| C::cmp(x, y))
            .fold(0usize, |k, (i, _)| {
                res[k] = i as u32;
                k + 1
            }),
    }
}

// ---------------------------------------------------------------------------
// string selections (col vs constant only; TPC-H compares columns to
// literals)
// ---------------------------------------------------------------------------

use ma_vector::StrVec;

/// String selection against a constant.
pub type SelStrColVal = fn(res: &mut [u32], col: &StrVec, val: &str, sel: Option<&[u32]>) -> usize;

/// `sel_eq_str_col_val`, branching.
pub fn sel_str_eq_branching(
    res: &mut [u32],
    col: &StrVec,
    val: &str,
    sel: Option<&[u32]>,
) -> usize {
    let mut k = 0;
    match sel {
        Some(s) => {
            for &i in s {
                if col.get(i as usize) == val {
                    res[k] = i;
                    k += 1;
                }
            }
        }
        None => {
            for i in 0..col.len() {
                if col.get(i) == val {
                    res[k] = i as u32;
                    k += 1;
                }
            }
        }
    }
    k
}

/// `sel_eq_str_col_val`, no-branching (index arithmetic).
pub fn sel_str_eq_no_branching(
    res: &mut [u32],
    col: &StrVec,
    val: &str,
    sel: Option<&[u32]>,
) -> usize {
    let mut k = 0;
    match sel {
        Some(s) => {
            for &i in s {
                res[k] = i;
                k += (col.get(i as usize) == val) as usize;
            }
        }
        None => {
            for i in 0..col.len() {
                res[k] = i as u32;
                k += (col.get(i) == val) as usize;
            }
        }
    }
    k
}

/// `sel_ne_str_col_val`, branching.
pub fn sel_str_ne_branching(
    res: &mut [u32],
    col: &StrVec,
    val: &str,
    sel: Option<&[u32]>,
) -> usize {
    let mut k = 0;
    match sel {
        Some(s) => {
            for &i in s {
                if col.get(i as usize) != val {
                    res[k] = i;
                    k += 1;
                }
            }
        }
        None => {
            for i in 0..col.len() {
                if col.get(i) != val {
                    res[k] = i as u32;
                    k += 1;
                }
            }
        }
    }
    k
}

/// `sel_ne_str_col_val`, no-branching.
pub fn sel_str_ne_no_branching(
    res: &mut [u32],
    col: &StrVec,
    val: &str,
    sel: Option<&[u32]>,
) -> usize {
    let mut k = 0;
    match sel {
        Some(s) => {
            for &i in s {
                res[k] = i;
                k += (col.get(i as usize) != val) as usize;
            }
        }
        None => {
            for i in 0..col.len() {
                res[k] = i as u32;
                k += (col.get(i) != val) as usize;
            }
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{EqOp, Ge, Gt, Le, Lt, NeOp};

    fn reference_lt(col: &[i32], val: i32, sel: Option<&[u32]>) -> Vec<u32> {
        match sel {
            Some(s) => s
                .iter()
                .copied()
                .filter(|&i| col[i as usize] < val)
                .collect(),
            None => (0..col.len() as u32)
                .filter(|&i| col[i as usize] < val)
                .collect(),
        }
    }

    fn run(f: SelColVal<i32>, col: &[i32], val: i32, sel: Option<&[u32]>) -> Vec<u32> {
        let cap = sel.map_or(col.len(), <[u32]>::len);
        let mut res = vec![0u32; cap];
        let k = f(&mut res, col, val, sel);
        res.truncate(k);
        res
    }

    const FLAVORS: [(&str, SelColVal<i32>); 5] = [
        ("branching", sel_col_val_branching::<i32, Lt>),
        ("no_branching", sel_col_val_no_branching::<i32, Lt>),
        ("icc", sel_col_val_icc::<i32, Lt>),
        ("clang", sel_col_val_clang::<i32, Lt>),
        ("unroll8", sel_col_val_unroll8::<i32, Lt>),
    ];

    #[test]
    fn all_flavors_equivalent_dense() {
        let col: Vec<i32> = (0..100).map(|i| (i * 37) % 101).collect();
        let expect = reference_lt(&col, 50, None);
        for (name, f) in FLAVORS {
            assert_eq!(run(f, &col, 50, None), expect, "flavor {name}");
        }
    }

    #[test]
    fn all_flavors_equivalent_with_sel() {
        let col: Vec<i32> = (0..100).map(|i| (i * 37) % 101).collect();
        let sel: Vec<u32> = (0..100u32).filter(|i| i % 3 == 0).collect();
        let expect = reference_lt(&col, 50, Some(&sel));
        for (name, f) in FLAVORS {
            assert_eq!(run(f, &col, 50, Some(&sel)), expect, "flavor {name}");
        }
    }

    #[test]
    fn boundary_selectivities() {
        let col: Vec<i32> = (0..64).collect();
        for (name, f) in FLAVORS {
            assert_eq!(run(f, &col, 0, None).len(), 0, "{name}: nothing selected");
            assert_eq!(run(f, &col, 100, None).len(), 64, "{name}: all selected");
        }
    }

    #[test]
    fn empty_inputs() {
        for (name, f) in FLAVORS {
            assert_eq!(run(f, &[], 1, None).len(), 0, "{name}");
            assert_eq!(run(f, &[1, 2, 3], 5, Some(&[])).len(), 0, "{name}");
        }
    }

    #[test]
    fn unroll_epilogues_handle_non_multiple_lengths() {
        // Lengths around the unroll factors exercise the epilogue paths.
        for n in [1usize, 3, 4, 5, 7, 8, 9, 15, 16, 17] {
            let col: Vec<i32> = (0..n as i32).collect();
            let expect = reference_lt(&col, n as i32 / 2, None);
            for (name, f) in [
                ("icc", sel_col_val_icc::<i32, Lt> as SelColVal<i32>),
                ("unroll8", sel_col_val_unroll8::<i32, Lt>),
            ] {
                assert_eq!(run(f, &col, n as i32 / 2, None), expect, "{name} n={n}");
            }
        }
    }

    #[test]
    fn all_comparison_ops() {
        let col = [3i32, 1, 4, 1, 5];
        let mut res = [0u32; 5];
        assert_eq!(sel_col_val_branching::<i32, Le>(&mut res, &col, 3, None), 3);
        assert_eq!(sel_col_val_branching::<i32, Gt>(&mut res, &col, 3, None), 2);
        assert_eq!(sel_col_val_branching::<i32, Ge>(&mut res, &col, 3, None), 3);
        assert_eq!(
            sel_col_val_branching::<i32, EqOp>(&mut res, &col, 1, None),
            2
        );
        assert_eq!(
            sel_col_val_branching::<i32, NeOp>(&mut res, &col, 1, None),
            3
        );
    }

    #[test]
    fn col_col_flavors_equivalent() {
        let a: Vec<i64> = (0..50).map(|i| (i * 13) % 29).collect();
        let b: Vec<i64> = (0..50).map(|i| (i * 7) % 31).collect();
        let sel: Vec<u32> = (0..50u32).filter(|i| i % 2 == 0).collect();
        for sv in [None, Some(sel.as_slice())] {
            let cap = sv.map_or(50, <[u32]>::len);
            let mut r1 = vec![0u32; cap];
            let mut r2 = vec![0u32; cap];
            let mut r3 = vec![0u32; cap];
            let k1 = sel_col_col_branching::<i64, Lt>(&mut r1, &a, &b, sv);
            let k2 = sel_col_col_no_branching::<i64, Lt>(&mut r2, &a, &b, sv);
            let k3 = sel_col_col_clang::<i64, Lt>(&mut r3, &a, &b, sv);
            assert_eq!(&r1[..k1], &r2[..k2]);
            assert_eq!(&r1[..k1], &r3[..k3]);
        }
    }

    #[test]
    fn string_selection_flavors_equivalent() {
        let col = StrVec::from_strings(&["MAIL", "SHIP", "MAIL", "AIR", "RAIL"]);
        let sel = [0u32, 1, 2, 4];
        for sv in [None, Some(&sel[..])] {
            let cap = sv.map_or(5, <[u32]>::len);
            let mut r1 = vec![0u32; cap];
            let mut r2 = vec![0u32; cap];
            let k1 = sel_str_eq_branching(&mut r1, &col, "MAIL", sv);
            let k2 = sel_str_eq_no_branching(&mut r2, &col, "MAIL", sv);
            assert_eq!(&r1[..k1], &r2[..k2]);
            assert_eq!(k1, 2);

            let k3 = sel_str_ne_branching(&mut r1, &col, "MAIL", sv);
            let k4 = sel_str_ne_no_branching(&mut r2, &col, "MAIL", sv);
            assert_eq!(&r1[..k3], &r2[..k4]);
            assert_eq!(k3, cap - 2);
        }
    }

    #[test]
    fn f64_selection_works() {
        let col = [0.1f64, 0.5, 0.9, 0.05];
        let mut res = [0u32; 4];
        let k = sel_col_val_no_branching::<f64, Lt>(&mut res, &col, 0.5, None);
        assert_eq!(&res[..k], &[0, 3]);
    }
}
