//! Predicate and arithmetic operator lego bricks.
//!
//! Vectorwise generates its ~5000 primitives from templates that insert a
//! "body action" into a loop (§2, Listing 7). The Rust equivalent: tiny
//! zero-sized operator types with `#[inline(always)]` bodies, monomorphized
//! into each loop shape. Each (operator, type, loop-shape) instantiation is a
//! distinct concrete function that coerces to a plain `fn` pointer for the
//! Primitive Dictionary.

/// A binary comparison predicate over `T`.
pub trait CmpOp<T> {
    /// Short name used in signature strings (`lt`, `le`, ...).
    const NAME: &'static str;
    /// Evaluates the predicate.
    fn cmp(a: T, b: T) -> bool;
}

/// A binary arithmetic operator over `T`.
pub trait ArithOp<T> {
    /// Short name used in signature strings (`add`, `mul`, ...).
    const NAME: &'static str;
    /// True when the operator is safe to run on *unselected* garbage inputs
    /// (full computation, Fig. 7 right). Integer division is not.
    const FULL_SAFE: bool;
    /// Applies the operator.
    fn apply(a: T, b: T) -> T;
}

macro_rules! cmp_op {
    ($op:ident, $name:literal, $a:ident, $b:ident, $e:expr) => {
        /// Comparison operator (zero-sized marker).
        #[derive(Debug, Clone, Copy)]
        pub struct $op;
        impl<T: PartialOrd + Copy> CmpOp<T> for $op {
            const NAME: &'static str = $name;
            #[inline(always)]
            fn cmp($a: T, $b: T) -> bool {
                $e
            }
        }
    };
}

cmp_op!(Lt, "lt", a, b, a < b);
cmp_op!(Le, "le", a, b, a <= b);
cmp_op!(Gt, "gt", a, b, a > b);
cmp_op!(Ge, "ge", a, b, a >= b);
cmp_op!(EqOp, "eq", a, b, a == b);
cmp_op!(NeOp, "ne", a, b, a != b);

macro_rules! arith_op_int {
    ($op:ident, $name:literal, $full:literal, $m:ident, $($ty:ty),+) => {
        /// Arithmetic operator (zero-sized marker).
        #[derive(Debug, Clone, Copy)]
        pub struct $op;
        $(impl ArithOp<$ty> for $op {
            const NAME: &'static str = $name;
            const FULL_SAFE: bool = $full;
            #[inline(always)]
            fn apply(a: $ty, b: $ty) -> $ty {
                a.$m(b)
            }
        })+
    };
}

// Integer arithmetic wraps: full computation runs the operator on tuples the
// selection excluded, whose values may be arbitrary — a wrap there must not
// abort the query (the result slot is dead anyway, Fig. 7 right).
arith_op_int!(Add, "add", true, wrapping_add, i16, i32, i64);
arith_op_int!(Sub, "sub", true, wrapping_sub, i16, i32, i64);
arith_op_int!(Mul, "mul", true, wrapping_mul, i16, i32, i64);

/// Integer division: *not* safe under full computation (division by an
/// unselected zero must not trap), so `FULL_SAFE = false` and the registry
/// registers no `full` flavor for it.
#[derive(Debug, Clone, Copy)]
pub struct Div;
macro_rules! div_int {
    ($($ty:ty),+) => {
        $(impl ArithOp<$ty> for Div {
            const NAME: &'static str = "div";
            const FULL_SAFE: bool = false;
            #[inline(always)]
            fn apply(a: $ty, b: $ty) -> $ty {
                // Callers guarantee b != 0 on selected tuples.
                a / b
            }
        })+
    };
}
div_int!(i16, i32, i64);

macro_rules! arith_op_f64 {
    ($op:ident, $name:literal, $a:ident, $b:ident, $e:expr) => {
        impl ArithOp<f64> for $op {
            const NAME: &'static str = $name;
            const FULL_SAFE: bool = true; // IEEE: no traps, NaN/inf are fine
            #[inline(always)]
            fn apply($a: f64, $b: f64) -> f64 {
                $e
            }
        }
    };
}

arith_op_f64!(Add, "add", a, b, a + b);
arith_op_f64!(Sub, "sub", a, b, a - b);
arith_op_f64!(Mul, "mul", a, b, a * b);
arith_op_f64!(Div, "div", a, b, a / b);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_ops_evaluate() {
        assert!(<Lt as CmpOp<i32>>::cmp(1, 2));
        assert!(!<Lt as CmpOp<i32>>::cmp(2, 2));
        assert!(<Le as CmpOp<i32>>::cmp(2, 2));
        assert!(<Gt as CmpOp<f64>>::cmp(2.5, 1.0));
        assert!(<Ge as CmpOp<i64>>::cmp(3, 3));
        assert!(<EqOp as CmpOp<i16>>::cmp(7, 7));
        assert!(<NeOp as CmpOp<i16>>::cmp(7, 8));
    }

    #[test]
    fn arith_ops_evaluate() {
        assert_eq!(<Add as ArithOp<i64>>::apply(2, 3), 5);
        assert_eq!(<Sub as ArithOp<i64>>::apply(2, 3), -1);
        assert_eq!(<Mul as ArithOp<i64>>::apply(4, 3), 12);
        assert_eq!(<Div as ArithOp<i64>>::apply(9, 2), 4);
        assert_eq!(<Mul as ArithOp<f64>>::apply(0.5, 4.0), 2.0);
        assert_eq!(<Div as ArithOp<f64>>::apply(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn int_overflow_wraps_instead_of_trapping() {
        assert_eq!(<Add as ArithOp<i64>>::apply(i64::MAX, 1), i64::MIN);
        assert_eq!(<Mul as ArithOp<i16>>::apply(i16::MAX, 2), -2);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn full_safety_flags() {
        assert!(<Mul as ArithOp<i64>>::FULL_SAFE);
        assert!(!<Div as ArithOp<i64>>::FULL_SAFE);
        assert!(<Div as ArithOp<f64>>::FULL_SAFE);
    }

    #[test]
    fn names() {
        assert_eq!(<Lt as CmpOp<i32>>::NAME, "lt");
        assert_eq!(<Div as ArithOp<i64>>::NAME, "div");
    }
}
