//! Merge-join kernel: the `mergejoin_slng_col_slng_col` primitive of
//! Fig. 4(c) and Fig. 5.
//!
//! Joins a *sorted, unique* left key array (cursor-carried across calls)
//! against one vector of sorted right keys, emitting `(right position, left
//! index)` match pairs. The three flavors are legitimately different code
//! shapes with different branch/cache profiles — the stand-in for the
//! paper's compiler builds, whose best performer varies by machine (Fig. 5):
//!
//! * `gcc` — plain branchy linear advance;
//! * `icc` — branch-free linear advance (the comparison feeds index
//!   arithmetic);
//! * `clang` — galloping (exponential + binary search) advance, which wins
//!   when the left side is much denser than the right.

/// Merge-join one right-side vector against the left key array.
///
/// `cursor` persists across calls (the operator owns it). Returns the number
/// of emitted pairs; `out_rpos[j]`/`out_lidx[j]` hold the right position and
/// left index of pair `j`. Right keys must be ascending over live positions,
/// left keys ascending and unique.
pub type MergeJoinFn = fn(
    cursor: &mut usize,
    lkeys: &[i64],
    rkeys: &[i64],
    sel: Option<&[u32]>,
    out_rpos: &mut [u32],
    out_lidx: &mut [u32],
) -> usize;

#[inline(always)]
fn emit_if_match(
    cur: usize,
    lkeys: &[i64],
    rk: i64,
    rpos: u32,
    out_rpos: &mut [u32],
    out_lidx: &mut [u32],
    k: &mut usize,
) {
    if cur < lkeys.len() && lkeys[cur] == rk {
        out_rpos[*k] = rpos;
        out_lidx[*k] = cur as u32;
        *k += 1;
    }
}

/// `gcc` flavor: branchy linear advance.
pub fn mergejoin_i64_gcc(
    cursor: &mut usize,
    lkeys: &[i64],
    rkeys: &[i64],
    sel: Option<&[u32]>,
    out_rpos: &mut [u32],
    out_lidx: &mut [u32],
) -> usize {
    let mut cur = *cursor;
    let mut k = 0;
    let mut step = |i: u32| {
        let rk = rkeys[i as usize];
        while cur < lkeys.len() && lkeys[cur] < rk {
            cur += 1;
        }
        emit_if_match(cur, lkeys, rk, i, out_rpos, out_lidx, &mut k);
    };
    match sel {
        Some(s) => s.iter().for_each(|&i| step(i)),
        None => (0..rkeys.len() as u32).for_each(&mut step),
    }
    *cursor = cur;
    k
}

/// `icc` flavor: branch-free linear advance (comparison feeds index
/// arithmetic, bounded by the remaining left length).
pub fn mergejoin_i64_icc(
    cursor: &mut usize,
    lkeys: &[i64],
    rkeys: &[i64],
    sel: Option<&[u32]>,
    out_rpos: &mut [u32],
    out_lidx: &mut [u32],
) -> usize {
    let mut cur = *cursor;
    let mut k = 0;
    let n = lkeys.len();
    let mut step = |i: u32| {
        let rk = rkeys[i as usize];
        while cur < n {
            // Branch-free inner step: advance by 0 or 1 without a
            // data-dependent branch on the key comparison.
            let advance = (lkeys[cur] < rk) as usize;
            cur += advance;
            if advance == 0 {
                break;
            }
        }
        emit_if_match(cur, lkeys, rk, i, out_rpos, out_lidx, &mut k);
    };
    match sel {
        Some(s) => s.iter().for_each(|&i| step(i)),
        None => (0..rkeys.len() as u32).for_each(&mut step),
    }
    *cursor = cur;
    k
}

/// `clang` flavor: galloping advance (exponential probe then binary search).
pub fn mergejoin_i64_clang(
    cursor: &mut usize,
    lkeys: &[i64],
    rkeys: &[i64],
    sel: Option<&[u32]>,
    out_rpos: &mut [u32],
    out_lidx: &mut [u32],
) -> usize {
    let mut cur = *cursor;
    let mut k = 0;
    let n = lkeys.len();
    let mut step = |i: u32| {
        let rk = rkeys[i as usize];
        if cur < n && lkeys[cur] < rk {
            // Exponential probe for the first index with lkeys >= rk.
            let mut bound = 1;
            while cur + bound < n && lkeys[cur + bound] < rk {
                bound *= 2;
            }
            let lo = cur + bound / 2;
            let hi = (cur + bound).min(n);
            cur = lo + lkeys[lo..hi].partition_point(|&x| x < rk);
        }
        emit_if_match(cur, lkeys, rk, i, out_rpos, out_lidx, &mut k);
    };
    match sel {
        Some(s) => s.iter().for_each(|&i| step(i)),
        None => (0..rkeys.len() as u32).for_each(&mut step),
    }
    *cursor = cur;
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    const FLAVORS: [(&str, MergeJoinFn); 3] = [
        ("gcc", mergejoin_i64_gcc),
        ("icc", mergejoin_i64_icc),
        ("clang", mergejoin_i64_clang),
    ];

    fn run(f: MergeJoinFn, lkeys: &[i64], rkeys: &[i64], sel: Option<&[u32]>) -> Vec<(u32, u32)> {
        let cap = sel.map_or(rkeys.len(), <[u32]>::len);
        let mut rpos = vec![0u32; cap];
        let mut lidx = vec![0u32; cap];
        let mut cursor = 0;
        let k = f(&mut cursor, lkeys, rkeys, sel, &mut rpos, &mut lidx);
        (0..k).map(|j| (rpos[j], lidx[j])).collect()
    }

    #[test]
    fn flavors_agree_dense() {
        let lkeys: Vec<i64> = (0..100).map(|i| i * 3).collect(); // 0,3,6,...
        let rkeys: Vec<i64> = (0..150).map(|i| i * 2).collect(); // 0,2,4,...
        let expect = run(mergejoin_i64_gcc, &lkeys, &rkeys, None);
        assert!(!expect.is_empty());
        for (name, f) in FLAVORS {
            assert_eq!(run(f, &lkeys, &rkeys, None), expect, "{name}");
        }
        // Matches are multiples of 6 below min(300, 297).
        for &(rpos, lidx) in &expect {
            assert_eq!(rkeys[rpos as usize], lkeys[lidx as usize]);
            assert_eq!(rkeys[rpos as usize] % 6, 0);
        }
    }

    #[test]
    fn flavors_agree_with_sel() {
        let lkeys: Vec<i64> = (0..1000).collect();
        let rkeys: Vec<i64> = (0..500).map(|i| i * 2).collect();
        let sel: Vec<u32> = (0..500u32).filter(|i| i % 3 != 0).collect();
        let expect = run(mergejoin_i64_gcc, &lkeys, &rkeys, Some(&sel));
        for (name, f) in FLAVORS {
            assert_eq!(run(f, &lkeys, &rkeys, Some(&sel)), expect, "{name}");
        }
    }

    #[test]
    fn cursor_carries_across_calls() {
        let lkeys: Vec<i64> = (0..100).collect();
        let r1: Vec<i64> = (0..50).collect();
        let r2: Vec<i64> = (50..100).collect();
        for (name, f) in FLAVORS {
            let mut cursor = 0;
            let mut rpos = vec![0u32; 50];
            let mut lidx = vec![0u32; 50];
            let k1 = f(&mut cursor, &lkeys, &r1, None, &mut rpos, &mut lidx);
            assert_eq!(k1, 50, "{name}");
            let k2 = f(&mut cursor, &lkeys, &r2, None, &mut rpos, &mut lidx);
            assert_eq!(k2, 50, "{name}");
            assert_eq!(lidx[0], 50, "{name}: second call continues at left 50");
        }
    }

    #[test]
    fn no_matches_when_disjoint() {
        let lkeys = [10i64, 20, 30];
        let rkeys = [1i64, 2, 3];
        for (name, f) in FLAVORS {
            assert!(run(f, &lkeys, &rkeys, None).is_empty(), "{name}");
        }
        // Right keys all beyond the left range.
        let rkeys = [100i64, 200];
        for (name, f) in FLAVORS {
            assert!(run(f, &lkeys, &rkeys, None).is_empty(), "{name}");
        }
    }

    #[test]
    fn duplicate_right_keys_match_same_left() {
        // 1:N — lineitem has many rows per order.
        let lkeys = [5i64, 10];
        let rkeys = [5i64, 5, 5, 10, 10];
        for (name, f) in FLAVORS {
            let got = run(f, &lkeys, &rkeys, None);
            assert_eq!(got, vec![(0, 0), (1, 0), (2, 0), (3, 1), (4, 1)], "{name}");
        }
    }

    #[test]
    fn empty_inputs() {
        for (_, f) in FLAVORS {
            assert!(run(f, &[], &[1, 2], None).is_empty());
            assert!(run(f, &[1, 2], &[], None).is_empty());
        }
    }
}
