//! Fetch (gather) primitives: `res[i] = src[idx[i]]` for live positions.
//!
//! Joins use these to fetch build-side payload columns by matched row id, and
//! Q12's `map_fetch_uidx_col_str_col` (Fig. 4d) is exactly this shape. The
//! three code-style flavors stand in for the gcc/clang/icc builds whose
//! alternating superiority Fig. 4(d) shows.

use ma_vector::StrVec;

/// Fixed-width gather.
pub type MapFetch<T> = fn(res: &mut [T], src: &[T], idx: &[u32], sel: Option<&[u32]>);

/// String gather (res must share the arena of src; see
/// [`StrVec::writable_like`]).
pub type MapFetchStr = fn(res: &mut StrVec, src: &StrVec, idx: &[u32], sel: Option<&[u32]>);

/// `gcc` style: plain indexed loop.
pub fn map_fetch_gcc<T: Copy>(res: &mut [T], src: &[T], idx: &[u32], sel: Option<&[u32]>) {
    match sel {
        Some(s) => {
            for &i in s {
                let i = i as usize;
                res[i] = src[idx[i] as usize];
            }
        }
        None => {
            for i in 0..idx.len() {
                res[i] = src[idx[i] as usize];
            }
        }
    }
}

/// `icc` style: 4-way unrolled.
pub fn map_fetch_icc<T: Copy>(res: &mut [T], src: &[T], idx: &[u32], sel: Option<&[u32]>) {
    macro_rules! body {
        ($i:expr) => {{
            let i = $i;
            res[i] = src[idx[i] as usize];
        }};
    }
    match sel {
        Some(s) => {
            let mut j = 0;
            while j + 4 <= s.len() {
                body!(s[j] as usize);
                body!(s[j + 1] as usize);
                body!(s[j + 2] as usize);
                body!(s[j + 3] as usize);
                j += 4;
            }
            while j < s.len() {
                body!(s[j] as usize);
                j += 1;
            }
        }
        None => {
            let n = idx.len();
            let mut i = 0;
            while i + 4 <= n {
                body!(i);
                body!(i + 1);
                body!(i + 2);
                body!(i + 3);
                i += 4;
            }
            while i < n {
                body!(i);
                i += 1;
            }
        }
    }
}

/// `clang` style: iterator zip on the dense path.
pub fn map_fetch_clang<T: Copy>(res: &mut [T], src: &[T], idx: &[u32], sel: Option<&[u32]>) {
    match sel {
        Some(s) => {
            for &i in s {
                let i = i as usize;
                res[i] = src[idx[i] as usize];
            }
        }
        None => {
            for (r, &ix) in res.iter_mut().zip(idx.iter()) {
                *r = src[ix as usize];
            }
        }
    }
}

/// String gather, `gcc` style.
pub fn map_fetch_str_gcc(res: &mut StrVec, src: &StrVec, idx: &[u32], sel: Option<&[u32]>) {
    let views = src.views();
    match sel {
        Some(s) => {
            for &i in s {
                let i = i as usize;
                res.views_mut()[i] = views[idx[i] as usize];
            }
        }
        None => {
            for i in 0..idx.len() {
                res.views_mut()[i] = views[idx[i] as usize];
            }
        }
    }
}

/// String gather, `icc` style (4-way unrolled).
pub fn map_fetch_str_icc(res: &mut StrVec, src: &StrVec, idx: &[u32], sel: Option<&[u32]>) {
    let views = src.views().to_vec();
    let out = res.views_mut();
    macro_rules! body {
        ($i:expr) => {{
            let i = $i;
            out[i] = views[idx[i] as usize];
        }};
    }
    match sel {
        Some(s) => {
            let mut j = 0;
            while j + 4 <= s.len() {
                body!(s[j] as usize);
                body!(s[j + 1] as usize);
                body!(s[j + 2] as usize);
                body!(s[j + 3] as usize);
                j += 4;
            }
            while j < s.len() {
                body!(s[j] as usize);
                j += 1;
            }
        }
        None => {
            let n = idx.len();
            let mut i = 0;
            while i + 4 <= n {
                body!(i);
                body!(i + 1);
                body!(i + 2);
                body!(i + 3);
                i += 4;
            }
            while i < n {
                body!(i);
                i += 1;
            }
        }
    }
}

/// String gather, `clang` style.
pub fn map_fetch_str_clang(res: &mut StrVec, src: &StrVec, idx: &[u32], sel: Option<&[u32]>) {
    let views = src.views().to_vec();
    match sel {
        Some(s) => {
            for &i in s {
                let i = i as usize;
                res.views_mut()[i] = views[idx[i] as usize];
            }
        }
        None => {
            for (r, &ix) in res.views_mut().iter_mut().zip(idx.iter()) {
                *r = views[ix as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_flavors_agree() {
        let src: Vec<i64> = (100..200).collect();
        let idx: Vec<u32> = (0..50u32).map(|i| (i * 7) % 100).collect();
        let sel: Vec<u32> = (0..50u32).filter(|i| i % 3 == 0).collect();
        for sv in [None, Some(sel.as_slice())] {
            let mut expect = vec![0i64; 50];
            map_fetch_gcc(&mut expect, &src, &idx, sv);
            for (name, f) in [
                ("icc", map_fetch_icc::<i64> as MapFetch<i64>),
                ("clang", map_fetch_clang::<i64>),
            ] {
                let mut res = vec![0i64; 50];
                f(&mut res, &src, &idx, sv);
                match sv {
                    None => assert_eq!(res, expect, "{name}"),
                    Some(s) => {
                        for &i in s {
                            assert_eq!(res[i as usize], expect[i as usize], "{name}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fetch_values_are_correct() {
        let src = [10i32, 20, 30];
        let idx = [2u32, 0, 1, 2];
        let mut res = [0i32; 4];
        map_fetch_gcc(&mut res, &src, &idx, None);
        assert_eq!(res, [30, 10, 20, 30]);
    }

    #[test]
    fn string_fetch_flavors_agree() {
        let src = StrVec::from_strings(&["alpha", "beta", "gamma", "delta"]);
        let idx = [3u32, 1, 0, 2, 3];
        for f in [
            map_fetch_str_gcc as MapFetchStr,
            map_fetch_str_icc,
            map_fetch_str_clang,
        ] {
            let mut res = src.writable_like(5);
            f(&mut res, &src, &idx, None);
            let got: Vec<&str> = res.iter().collect();
            assert_eq!(got, vec!["delta", "beta", "alpha", "gamma", "delta"]);
        }
    }

    #[test]
    fn string_fetch_with_sel() {
        let src = StrVec::from_strings(&["a", "b", "c"]);
        let idx = [2u32, 2, 2];
        let sel = [1u32];
        let mut res = src.writable_like(3);
        map_fetch_str_gcc(&mut res, &src, &idx, Some(&sel));
        assert_eq!(res.get(1), "c");
        assert_eq!(res.get(0), ""); // untouched
    }
}
