//! Projection (map) primitives: arithmetic over vectors, plus casts.
//!
//! Flavor axes from the paper:
//!
//! * **selective vs full computation** (§2, Fig. 7): `selective` honors the
//!   selection vector and computes only live positions (leaving other result
//!   slots untouched); `full` ignores it and computes every position — more
//!   work, but a dense auto-vectorizable loop.
//! * **hand-unrolling** (§2, Listing 7): `unroll8` processes the dense path
//!   in groups of 8 with an epilogue.
//! * **compiler styles**: `icc` (4-way unrolled), `clang` (iterator zip).
//!   The plain indexed `selective` loop doubles as the `gcc` style.

use crate::ops::ArithOp;

/// Binary map over two columns: `res[i] = a[i] op b[i]` for live `i`.
pub type MapColCol<T> = fn(res: &mut [T], a: &[T], b: &[T], sel: Option<&[u32]>);

/// Binary map column-constant: `res[i] = a[i] op v` for live `i`.
pub type MapColVal<T> = fn(res: &mut [T], a: &[T], v: T, sel: Option<&[u32]>);

// ---------------------------------------------------------------------------
// col ⊕ col
// ---------------------------------------------------------------------------

/// Selective computation (default; paper Listing 4 shape).
pub fn map_col_col_selective<T: Copy, O: ArithOp<T>>(
    res: &mut [T],
    a: &[T],
    b: &[T],
    sel: Option<&[u32]>,
) {
    match sel {
        Some(s) => {
            for &i in s {
                let i = i as usize;
                res[i] = O::apply(a[i], b[i]);
            }
        }
        None => {
            for i in 0..a.len() {
                res[i] = O::apply(a[i], b[i]);
            }
        }
    }
}

/// Full computation: ignores the selection vector entirely (Fig. 7 right).
/// The dense loop trivially maps to SIMD.
pub fn map_col_col_full<T: Copy, O: ArithOp<T>>(
    res: &mut [T],
    a: &[T],
    b: &[T],
    _sel: Option<&[u32]>,
) {
    for i in 0..a.len() {
        res[i] = O::apply(a[i], b[i]);
    }
}

/// Hand-unrolled (8×) selective flavor: dense path unrolled as in Listing 7,
/// selected path unrolled over the selection vector.
pub fn map_col_col_unroll8<T: Copy, O: ArithOp<T>>(
    res: &mut [T],
    a: &[T],
    b: &[T],
    sel: Option<&[u32]>,
) {
    macro_rules! body {
        ($i:expr) => {{
            let i = $i;
            res[i] = O::apply(a[i], b[i]);
        }};
    }
    match sel {
        Some(s) => {
            let mut j = 0;
            while j + 8 <= s.len() {
                body!(s[j] as usize);
                body!(s[j + 1] as usize);
                body!(s[j + 2] as usize);
                body!(s[j + 3] as usize);
                body!(s[j + 4] as usize);
                body!(s[j + 5] as usize);
                body!(s[j + 6] as usize);
                body!(s[j + 7] as usize);
                j += 8;
            }
            while j < s.len() {
                body!(s[j] as usize);
                j += 1;
            }
        }
        None => {
            let n = a.len();
            let mut i = 0;
            while i + 8 <= n {
                body!(i);
                body!(i + 1);
                body!(i + 2);
                body!(i + 3);
                body!(i + 4);
                body!(i + 5);
                body!(i + 6);
                body!(i + 7);
                i += 8;
            }
            while i < n {
                body!(i);
                i += 1;
            }
        }
    }
}

/// `icc` code style: 4-way unrolled selective.
pub fn map_col_col_icc<T: Copy, O: ArithOp<T>>(
    res: &mut [T],
    a: &[T],
    b: &[T],
    sel: Option<&[u32]>,
) {
    macro_rules! body {
        ($i:expr) => {{
            let i = $i;
            res[i] = O::apply(a[i], b[i]);
        }};
    }
    match sel {
        Some(s) => {
            let mut j = 0;
            while j + 4 <= s.len() {
                body!(s[j] as usize);
                body!(s[j + 1] as usize);
                body!(s[j + 2] as usize);
                body!(s[j + 3] as usize);
                j += 4;
            }
            while j < s.len() {
                body!(s[j] as usize);
                j += 1;
            }
        }
        None => {
            let n = a.len();
            let mut i = 0;
            while i + 4 <= n {
                body!(i);
                body!(i + 1);
                body!(i + 2);
                body!(i + 3);
                i += 4;
            }
            while i < n {
                body!(i);
                i += 1;
            }
        }
    }
}

/// `clang` code style: iterator zip formulation on the dense path.
pub fn map_col_col_clang<T: Copy, O: ArithOp<T>>(
    res: &mut [T],
    a: &[T],
    b: &[T],
    sel: Option<&[u32]>,
) {
    match sel {
        Some(s) => {
            for &i in s {
                let i = i as usize;
                res[i] = O::apply(a[i], b[i]);
            }
        }
        None => {
            for ((r, &x), &y) in res.iter_mut().zip(a.iter()).zip(b.iter()) {
                *r = O::apply(x, y);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// col ⊕ const
// ---------------------------------------------------------------------------

/// Selective computation, column-constant.
pub fn map_col_val_selective<T: Copy, O: ArithOp<T>>(
    res: &mut [T],
    a: &[T],
    v: T,
    sel: Option<&[u32]>,
) {
    match sel {
        Some(s) => {
            for &i in s {
                let i = i as usize;
                res[i] = O::apply(a[i], v);
            }
        }
        None => {
            for i in 0..a.len() {
                res[i] = O::apply(a[i], v);
            }
        }
    }
}

/// Full computation, column-constant.
pub fn map_col_val_full<T: Copy, O: ArithOp<T>>(
    res: &mut [T],
    a: &[T],
    v: T,
    _sel: Option<&[u32]>,
) {
    for i in 0..a.len() {
        res[i] = O::apply(a[i], v);
    }
}

/// Hand-unrolled (8×) selective flavor, column-constant.
pub fn map_col_val_unroll8<T: Copy, O: ArithOp<T>>(
    res: &mut [T],
    a: &[T],
    v: T,
    sel: Option<&[u32]>,
) {
    macro_rules! body {
        ($i:expr) => {{
            let i = $i;
            res[i] = O::apply(a[i], v);
        }};
    }
    match sel {
        Some(s) => {
            let mut j = 0;
            while j + 8 <= s.len() {
                body!(s[j] as usize);
                body!(s[j + 1] as usize);
                body!(s[j + 2] as usize);
                body!(s[j + 3] as usize);
                body!(s[j + 4] as usize);
                body!(s[j + 5] as usize);
                body!(s[j + 6] as usize);
                body!(s[j + 7] as usize);
                j += 8;
            }
            while j < s.len() {
                body!(s[j] as usize);
                j += 1;
            }
        }
        None => {
            let n = a.len();
            let mut i = 0;
            while i + 8 <= n {
                body!(i);
                body!(i + 1);
                body!(i + 2);
                body!(i + 3);
                body!(i + 4);
                body!(i + 5);
                body!(i + 6);
                body!(i + 7);
                i += 8;
            }
            while i < n {
                body!(i);
                i += 1;
            }
        }
    }
}

/// `clang` code style, column-constant.
pub fn map_col_val_clang<T: Copy, O: ArithOp<T>>(
    res: &mut [T],
    a: &[T],
    v: T,
    sel: Option<&[u32]>,
) {
    match sel {
        Some(s) => {
            for &i in s {
                let i = i as usize;
                res[i] = O::apply(a[i], v);
            }
        }
        None => {
            for (r, &x) in res.iter_mut().zip(a.iter()) {
                *r = O::apply(x, v);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// casts
// ---------------------------------------------------------------------------

/// Cast map: `res[i] = from[i] as To` for live positions.
pub type MapCast<From, To> = fn(res: &mut [To], from: &[From], sel: Option<&[u32]>);

macro_rules! cast_prim {
    ($name:ident, $from:ty, $to:ty) => {
        /// Widening/converting cast primitive.
        pub fn $name(res: &mut [$to], from: &[$from], sel: Option<&[u32]>) {
            match sel {
                Some(s) => {
                    for &i in s {
                        res[i as usize] = from[i as usize] as $to;
                    }
                }
                None => {
                    for i in 0..from.len() {
                        res[i] = from[i] as $to;
                    }
                }
            }
        }
    };
}

cast_prim!(map_cast_i16_i32, i16, i32);
cast_prim!(map_cast_i16_i64, i16, i64);
cast_prim!(map_cast_i16_f64, i16, f64);
cast_prim!(map_cast_i32_i64, i32, i64);
cast_prim!(map_cast_i32_f64, i32, f64);
cast_prim!(map_cast_i64_f64, i64, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Add, Div, Mul, Sub};

    const CC_FLAVORS: [(&str, MapColCol<i64>); 5] = [
        ("selective", map_col_col_selective::<i64, Mul>),
        ("full", map_col_col_full::<i64, Mul>),
        ("unroll8", map_col_col_unroll8::<i64, Mul>),
        ("icc", map_col_col_icc::<i64, Mul>),
        ("clang", map_col_col_clang::<i64, Mul>),
    ];

    #[test]
    fn col_col_flavors_agree_on_dense() {
        let a: Vec<i64> = (0..100).collect();
        let b: Vec<i64> = (0..100).map(|i| i * 3 + 1).collect();
        let mut expect = vec![0i64; 100];
        map_col_col_selective::<i64, Mul>(&mut expect, &a, &b, None);
        for (name, f) in CC_FLAVORS {
            let mut res = vec![0i64; 100];
            f(&mut res, &a, &b, None);
            assert_eq!(res, expect, "flavor {name}");
        }
    }

    #[test]
    fn col_col_flavors_agree_on_selected_positions() {
        let a: Vec<i64> = (0..100).collect();
        let b: Vec<i64> = (0..100).map(|i| i + 7).collect();
        let sel: Vec<u32> = (0..100u32).filter(|i| i % 5 == 0).collect();
        let mut expect = vec![0i64; 100];
        map_col_col_selective::<i64, Mul>(&mut expect, &a, &b, Some(&sel));
        for (name, f) in CC_FLAVORS {
            let mut res = vec![0i64; 100];
            f(&mut res, &a, &b, Some(&sel));
            // Only selected positions are comparable; full computation may
            // write others too, which is allowed (they are dead).
            for &i in &sel {
                assert_eq!(res[i as usize], expect[i as usize], "flavor {name}");
            }
        }
    }

    #[test]
    fn selective_leaves_unselected_untouched_full_does_not() {
        let a = [1i64, 2, 3, 4];
        let b = [10i64, 10, 10, 10];
        let sel = [1u32, 3];
        let mut res = [-1i64; 4];
        map_col_col_selective::<i64, Add>(&mut res, &a, &b, Some(&sel));
        assert_eq!(res, [-1, 12, -1, 14]);
        let mut res = [-1i64; 4];
        map_col_col_full::<i64, Add>(&mut res, &a, &b, Some(&sel));
        assert_eq!(res, [11, 12, 13, 14]);
    }

    #[test]
    fn col_val_flavors_agree() {
        let a: Vec<f64> = (0..64).map(|i| i as f64 * 0.5).collect();
        let sel: Vec<u32> = (0..64u32).filter(|i| i % 3 == 1).collect();
        for sv in [None, Some(sel.as_slice())] {
            let mut expect = vec![0.0; 64];
            map_col_val_selective::<f64, Mul>(&mut expect, &a, 2.0, sv);
            for (name, f) in [
                ("full", map_col_val_full::<f64, Mul> as MapColVal<f64>),
                ("unroll8", map_col_val_unroll8::<f64, Mul>),
                ("clang", map_col_val_clang::<f64, Mul>),
            ] {
                let mut res = vec![0.0; 64];
                f(&mut res, &a, 2.0, sv);
                let check: Box<dyn Fn(usize) -> bool> = match sv {
                    Some(s) => Box::new(move |i| s.contains(&(i as u32))),
                    None => Box::new(|_| true),
                };
                for i in 0..64 {
                    if check(i) {
                        assert_eq!(res[i], expect[i], "flavor {name} idx {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn sub_and_div_work() {
        let a = [10i64, 20, 30];
        let b = [3i64, 4, 5];
        let mut res = [0i64; 3];
        map_col_col_selective::<i64, Sub>(&mut res, &a, &b, None);
        assert_eq!(res, [7, 16, 25]);
        map_col_col_selective::<i64, Div>(&mut res, &a, &b, None);
        assert_eq!(res, [3, 5, 6]);
    }

    #[test]
    fn div_selective_skips_unselected_zero() {
        let a = [10i64, 20];
        let b = [0i64, 4]; // position 0 divides by zero but is not selected
        let sel = [1u32];
        let mut res = [0i64; 2];
        map_col_col_selective::<i64, Div>(&mut res, &a, &b, Some(&sel));
        assert_eq!(res[1], 5);
    }

    #[test]
    fn unroll_epilogues() {
        for n in [1usize, 7, 8, 9, 16, 17, 23] {
            let a: Vec<i64> = (0..n as i64).collect();
            let b: Vec<i64> = (0..n as i64).map(|i| i + 1).collect();
            let mut expect = vec![0i64; n];
            map_col_col_selective::<i64, Add>(&mut expect, &a, &b, None);
            let mut res = vec![0i64; n];
            map_col_col_unroll8::<i64, Add>(&mut res, &a, &b, None);
            assert_eq!(res, expect, "n={n}");
            let mut res = vec![0i64; n];
            map_col_col_icc::<i64, Add>(&mut res, &a, &b, None);
            assert_eq!(res, expect, "n={n}");
        }
    }

    #[test]
    fn casts() {
        let mut r32 = [0i32; 3];
        map_cast_i16_i32(&mut r32, &[1i16, -2, 3], None);
        assert_eq!(r32, [1, -2, 3]);
        let mut r64 = [0i64; 3];
        map_cast_i32_i64(&mut r64, &[7i32, 8, 9], None);
        assert_eq!(r64, [7, 8, 9]);
        let mut rf = [0.0f64; 2];
        map_cast_i64_f64(&mut rf, &[5i64, 10], None);
        assert_eq!(rf, [5.0, 10.0]);
        // selective cast
        let mut rf = [-1.0f64; 3];
        map_cast_i32_f64(&mut rf, &[1, 2, 3], Some(&[2]));
        assert_eq!(rf, [-1.0, -1.0, 3.0]);
    }
}
