//! Aggregation primitives: grouped (by dense group id) and ungrouped.
//!
//! `aggr_sum128_i64_col` mirrors the paper's `aggr_sum128_sint_col`
//! (Fig. 4b): 64-bit inputs accumulate into 128-bit sums so no workload can
//! overflow. The grouped variants update `accs[gid[i]]` per live position —
//! the inner loop of hash aggregation after `insertcheck` assigned ids.

/// Grouped 128-bit sum of an `i64` column.
pub type AggrSumI64Grouped = fn(accs: &mut [i128], gids: &[u32], col: &[i64], sel: Option<&[u32]>);
/// Grouped sum of an `f64` column.
pub type AggrSumF64Grouped = fn(accs: &mut [f64], gids: &[u32], col: &[f64], sel: Option<&[u32]>);
/// Grouped count.
pub type AggrCountGrouped = fn(accs: &mut [i64], gids: &[u32], sel: Option<&[u32]>);
/// Grouped min/max of an `i64` column.
pub type AggrMinMaxI64Grouped =
    fn(accs: &mut [i64], gids: &[u32], col: &[i64], sel: Option<&[u32]>);
/// Grouped min/max of an `f64` column.
pub type AggrMinMaxF64Grouped =
    fn(accs: &mut [f64], gids: &[u32], col: &[f64], sel: Option<&[u32]>);

/// Ungrouped 128-bit sum (returns the partial for this vector).
pub type AggrSumI64 = fn(col: &[i64], sel: Option<&[u32]>) -> i128;
/// Ungrouped `f64` sum.
pub type AggrSumF64 = fn(col: &[f64], sel: Option<&[u32]>) -> f64;
/// Ungrouped min/max over `i64` (returns identity when no tuple is live).
pub type AggrMinMaxI64 = fn(col: &[i64], sel: Option<&[u32]>) -> i64;
/// Ungrouped min/max over `f64`.
pub type AggrMinMaxF64 = fn(col: &[f64], sel: Option<&[u32]>) -> f64;

macro_rules! grouped_sum {
    ($gcc:ident, $icc:ident, $clang:ident, $in:ty, $acc:ty) => {
        /// `gcc` style: plain loop.
        pub fn $gcc(accs: &mut [$acc], gids: &[u32], col: &[$in], sel: Option<&[u32]>) {
            match sel {
                Some(s) => {
                    for &i in s {
                        let i = i as usize;
                        accs[gids[i] as usize] += col[i] as $acc;
                    }
                }
                None => {
                    for i in 0..col.len() {
                        accs[gids[i] as usize] += col[i] as $acc;
                    }
                }
            }
        }

        /// `icc` style: 4-way unrolled.
        pub fn $icc(accs: &mut [$acc], gids: &[u32], col: &[$in], sel: Option<&[u32]>) {
            macro_rules! body {
                ($i:expr) => {{
                    let i = $i;
                    accs[gids[i] as usize] += col[i] as $acc;
                }};
            }
            match sel {
                Some(s) => {
                    let mut j = 0;
                    while j + 4 <= s.len() {
                        body!(s[j] as usize);
                        body!(s[j + 1] as usize);
                        body!(s[j + 2] as usize);
                        body!(s[j + 3] as usize);
                        j += 4;
                    }
                    while j < s.len() {
                        body!(s[j] as usize);
                        j += 1;
                    }
                }
                None => {
                    let n = col.len();
                    let mut i = 0;
                    while i + 4 <= n {
                        body!(i);
                        body!(i + 1);
                        body!(i + 2);
                        body!(i + 3);
                        i += 4;
                    }
                    while i < n {
                        body!(i);
                        i += 1;
                    }
                }
            }
        }

        /// `clang` style: iterator zip on the dense path.
        pub fn $clang(accs: &mut [$acc], gids: &[u32], col: &[$in], sel: Option<&[u32]>) {
            match sel {
                Some(s) => {
                    for &i in s {
                        let i = i as usize;
                        accs[gids[i] as usize] += col[i] as $acc;
                    }
                }
                None => {
                    for (&g, &x) in gids.iter().zip(col.iter()) {
                        accs[g as usize] += x as $acc;
                    }
                }
            }
        }
    };
}

grouped_sum!(
    aggr_sum128_i64_gcc,
    aggr_sum128_i64_icc,
    aggr_sum128_i64_clang,
    i64,
    i128
);
grouped_sum!(
    aggr_sum_f64_gcc,
    aggr_sum_f64_icc,
    aggr_sum_f64_clang,
    f64,
    f64
);

/// Grouped count, `gcc` style.
pub fn aggr_count_gcc(accs: &mut [i64], gids: &[u32], sel: Option<&[u32]>) {
    match sel {
        Some(s) => {
            for &i in s {
                accs[gids[i as usize] as usize] += 1;
            }
        }
        None => {
            for &g in gids {
                accs[g as usize] += 1;
            }
        }
    }
}

/// Grouped count, `clang` style.
pub fn aggr_count_clang(accs: &mut [i64], gids: &[u32], sel: Option<&[u32]>) {
    match sel {
        Some(s) => s.iter().for_each(|&i| accs[gids[i as usize] as usize] += 1),
        None => gids.iter().for_each(|&g| accs[g as usize] += 1),
    }
}

macro_rules! grouped_minmax {
    ($name:ident, $ty:ty, $pick:ident) => {
        /// Grouped min/max update.
        pub fn $name(accs: &mut [$ty], gids: &[u32], col: &[$ty], sel: Option<&[u32]>) {
            match sel {
                Some(s) => {
                    for &i in s {
                        let i = i as usize;
                        let g = gids[i] as usize;
                        accs[g] = accs[g].$pick(col[i]);
                    }
                }
                None => {
                    for i in 0..col.len() {
                        let g = gids[i] as usize;
                        accs[g] = accs[g].$pick(col[i]);
                    }
                }
            }
        }
    };
}

grouped_minmax!(aggr_min_i64_grouped, i64, min);
grouped_minmax!(aggr_max_i64_grouped, i64, max);
grouped_minmax!(aggr_min_f64_grouped, f64, min);
grouped_minmax!(aggr_max_f64_grouped, f64, max);

// ---------------------------------------------------------------------------
// ungrouped
// ---------------------------------------------------------------------------

/// Ungrouped 128-bit sum, `gcc` style.
pub fn aggr0_sum128_i64_gcc(col: &[i64], sel: Option<&[u32]>) -> i128 {
    let mut acc: i128 = 0;
    match sel {
        Some(s) => {
            for &i in s {
                acc += col[i as usize] as i128;
            }
        }
        None => {
            for &x in col {
                acc += x as i128;
            }
        }
    }
    acc
}

/// Ungrouped 128-bit sum, `icc` style: 4 independent accumulators.
pub fn aggr0_sum128_i64_icc(col: &[i64], sel: Option<&[u32]>) -> i128 {
    match sel {
        Some(s) => {
            let (mut a0, mut a1, mut a2, mut a3) = (0i128, 0i128, 0i128, 0i128);
            let mut j = 0;
            while j + 4 <= s.len() {
                a0 += col[s[j] as usize] as i128;
                a1 += col[s[j + 1] as usize] as i128;
                a2 += col[s[j + 2] as usize] as i128;
                a3 += col[s[j + 3] as usize] as i128;
                j += 4;
            }
            while j < s.len() {
                a0 += col[s[j] as usize] as i128;
                j += 1;
            }
            a0 + a1 + a2 + a3
        }
        None => {
            let (mut a0, mut a1, mut a2, mut a3) = (0i128, 0i128, 0i128, 0i128);
            let mut i = 0;
            while i + 4 <= col.len() {
                a0 += col[i] as i128;
                a1 += col[i + 1] as i128;
                a2 += col[i + 2] as i128;
                a3 += col[i + 3] as i128;
                i += 4;
            }
            while i < col.len() {
                a0 += col[i] as i128;
                i += 1;
            }
            a0 + a1 + a2 + a3
        }
    }
}

/// Ungrouped 128-bit sum, `clang` style.
pub fn aggr0_sum128_i64_clang(col: &[i64], sel: Option<&[u32]>) -> i128 {
    match sel {
        Some(s) => s.iter().map(|&i| col[i as usize] as i128).sum(),
        None => col.iter().map(|&x| x as i128).sum(),
    }
}

/// Ungrouped f64 sum, `gcc` style.
pub fn aggr0_sum_f64_gcc(col: &[f64], sel: Option<&[u32]>) -> f64 {
    let mut acc = 0.0;
    match sel {
        Some(s) => {
            for &i in s {
                acc += col[i as usize];
            }
        }
        None => {
            for &x in col {
                acc += x;
            }
        }
    }
    acc
}

/// Ungrouped f64 sum, `clang` style.
pub fn aggr0_sum_f64_clang(col: &[f64], sel: Option<&[u32]>) -> f64 {
    match sel {
        Some(s) => s.iter().map(|&i| col[i as usize]).sum(),
        None => col.iter().sum(),
    }
}

/// Ungrouped i64 min (identity `i64::MAX`).
pub fn aggr0_min_i64(col: &[i64], sel: Option<&[u32]>) -> i64 {
    match sel {
        Some(s) => s.iter().map(|&i| col[i as usize]).min().unwrap_or(i64::MAX),
        None => col.iter().copied().min().unwrap_or(i64::MAX),
    }
}

/// Ungrouped i64 max (identity `i64::MIN`).
pub fn aggr0_max_i64(col: &[i64], sel: Option<&[u32]>) -> i64 {
    match sel {
        Some(s) => s.iter().map(|&i| col[i as usize]).max().unwrap_or(i64::MIN),
        None => col.iter().copied().max().unwrap_or(i64::MIN),
    }
}

/// Ungrouped f64 min (identity `+∞`).
pub fn aggr0_min_f64(col: &[f64], sel: Option<&[u32]>) -> f64 {
    match sel {
        Some(s) => s
            .iter()
            .map(|&i| col[i as usize])
            .fold(f64::INFINITY, f64::min),
        None => col.iter().copied().fold(f64::INFINITY, f64::min),
    }
}

/// Ungrouped f64 max (identity `-∞`).
pub fn aggr0_max_f64(col: &[f64], sel: Option<&[u32]>) -> f64 {
    match sel {
        Some(s) => s
            .iter()
            .map(|&i| col[i as usize])
            .fold(f64::NEG_INFINITY, f64::max),
        None => col.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_sum_flavors_agree() {
        let col: Vec<i64> = (0..100).collect();
        let gids: Vec<u32> = (0..100u32).map(|i| i % 7).collect();
        let sel: Vec<u32> = (0..100u32).filter(|i| i % 2 == 0).collect();
        for sv in [None, Some(sel.as_slice())] {
            let mut a = vec![0i128; 7];
            let mut b = vec![0i128; 7];
            let mut c = vec![0i128; 7];
            aggr_sum128_i64_gcc(&mut a, &gids, &col, sv);
            aggr_sum128_i64_icc(&mut b, &gids, &col, sv);
            aggr_sum128_i64_clang(&mut c, &gids, &col, sv);
            assert_eq!(a, b);
            assert_eq!(a, c);
        }
    }

    #[test]
    fn grouped_sum_values() {
        let col = [10i64, 20, 30, 40];
        let gids = [0u32, 1, 0, 1];
        let mut accs = vec![0i128; 2];
        aggr_sum128_i64_gcc(&mut accs, &gids, &col, None);
        assert_eq!(accs, vec![40, 60]);
    }

    #[test]
    fn sum128_does_not_overflow_i64_ranges() {
        let col = vec![i64::MAX; 4];
        let gids = vec![0u32; 4];
        let mut accs = vec![0i128; 1];
        aggr_sum128_i64_gcc(&mut accs, &gids, &col, None);
        assert_eq!(accs[0], i64::MAX as i128 * 4);
    }

    #[test]
    fn grouped_count() {
        let gids = [0u32, 1, 1, 2, 1];
        let mut a = vec![0i64; 3];
        let mut b = vec![0i64; 3];
        aggr_count_gcc(&mut a, &gids, None);
        aggr_count_clang(&mut b, &gids, None);
        assert_eq!(a, vec![1, 3, 1]);
        assert_eq!(a, b);
        let sel = [0u32, 2];
        let mut c = vec![0i64; 3];
        aggr_count_gcc(&mut c, &gids, Some(&sel));
        assert_eq!(c, vec![1, 1, 0]);
    }

    #[test]
    fn grouped_minmax() {
        let col = [5i64, 1, 9, 3];
        let gids = [0u32, 0, 1, 1];
        let mut mins = vec![i64::MAX; 2];
        let mut maxs = vec![i64::MIN; 2];
        aggr_min_i64_grouped(&mut mins, &gids, &col, None);
        aggr_max_i64_grouped(&mut maxs, &gids, &col, None);
        assert_eq!(mins, vec![1, 3]);
        assert_eq!(maxs, vec![5, 9]);
    }

    #[test]
    fn grouped_minmax_f64() {
        let col = [0.5f64, -1.0, 2.5];
        let gids = [0u32, 0, 0];
        let mut mins = vec![f64::INFINITY; 1];
        let mut maxs = vec![f64::NEG_INFINITY; 1];
        aggr_min_f64_grouped(&mut mins, &gids, &col, None);
        aggr_max_f64_grouped(&mut maxs, &gids, &col, None);
        assert_eq!(mins[0], -1.0);
        assert_eq!(maxs[0], 2.5);
    }

    #[test]
    fn ungrouped_sums_agree() {
        let col: Vec<i64> = (0..1000).map(|i| i * 3 - 500).collect();
        let sel: Vec<u32> = (0..1000u32).step_by(3).collect();
        for sv in [None, Some(sel.as_slice())] {
            let a = aggr0_sum128_i64_gcc(&col, sv);
            let b = aggr0_sum128_i64_icc(&col, sv);
            let c = aggr0_sum128_i64_clang(&col, sv);
            assert_eq!(a, b);
            assert_eq!(a, c);
        }
    }

    #[test]
    fn ungrouped_f64_sums_agree() {
        let col: Vec<f64> = (0..100).map(|i| i as f64 * 0.25).collect();
        let a = aggr0_sum_f64_gcc(&col, None);
        let b = aggr0_sum_f64_clang(&col, None);
        assert!((a - b).abs() < 1e-9);
        assert!((a - 1237.5).abs() < 1e-9);
    }

    #[test]
    fn ungrouped_minmax_identities_on_empty() {
        assert_eq!(aggr0_min_i64(&[], None), i64::MAX);
        assert_eq!(aggr0_max_i64(&[], None), i64::MIN);
        assert_eq!(aggr0_min_f64(&[], None), f64::INFINITY);
        assert_eq!(aggr0_max_f64(&[], None), f64::NEG_INFINITY);
        assert_eq!(aggr0_min_i64(&[1, 2], Some(&[])), i64::MAX);
    }

    #[test]
    fn ungrouped_minmax_values() {
        let col = [3i64, -7, 12, 0];
        assert_eq!(aggr0_min_i64(&col, None), -7);
        assert_eq!(aggr0_max_i64(&col, None), 12);
        let sel = [0u32, 3];
        assert_eq!(aggr0_min_i64(&col, Some(&sel)), 0);
        assert_eq!(aggr0_max_i64(&col, Some(&sel)), 3);
    }
}
