//! Group hash tables and the `hash_insertcheck` primitives.
//!
//! Hash aggregation maps each input tuple's group key to a dense *group id*.
//! The vectorized `insertcheck` primitive takes a vector of hashes and keys,
//! looks each up in the table, inserts new groups, and writes the group id
//! per position — the primitive of Fig. 4(e) (`hash_insertcheck_str_col`),
//! whose cost visibly grows with the table (cache/TLB misses).
//!
//! Two tables: [`GroupTable`] for integer (packed) keys and
//! [`StrGroupTable`] for string keys. Both are open-addressing with linear
//! probing; the *caller* must [`GroupTable::reserve`] capacity for a vector's
//! worth of inserts before calling the primitive, so the primitive itself
//! never rehashes (keeps its cost measurable and its loop tight).

use ma_vector::StrVec;

const EMPTY: u32 = u32::MAX;

/// Open-addressing hash table assigning dense group ids to `u64` keys.
#[derive(Debug, Clone)]
pub struct GroupTable {
    /// (key, gid) per slot; gid == EMPTY marks a free slot.
    slots: Vec<(u64, u32)>,
    mask: usize,
    groups: u32,
}

impl Default for GroupTable {
    fn default() -> Self {
        Self::new()
    }
}

impl GroupTable {
    /// An empty table with a small initial capacity.
    pub fn new() -> Self {
        GroupTable {
            slots: vec![(0, EMPTY); 64],
            mask: 63,
            groups: 0,
        }
    }

    /// Number of distinct groups inserted so far.
    pub fn groups(&self) -> u32 {
        self.groups
    }

    /// Current slot count (for cache-behaviour experiments).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Resident bytes of the slot array (the table's only allocation).
    /// Reported by the executor's byte-accounting facade against the
    /// memory analyzer's proven per-operator bounds.
    pub fn bytes(&self) -> u64 {
        (self.slots.len() * std::mem::size_of::<(u64, u32)>()) as u64
    }

    /// Ensures the table can absorb `additional` new groups while staying
    /// under 50% load, growing (rehashing) if needed. Group ids are stable
    /// across growth.
    pub fn reserve(&mut self, additional: usize) {
        let needed = (self.groups as usize + additional) * 2;
        if needed <= self.slots.len() {
            return;
        }
        let new_cap = needed.next_power_of_two();
        let old = std::mem::replace(&mut self.slots, vec![(0, EMPTY); new_cap]);
        self.mask = new_cap - 1;
        for (key, gid) in old {
            if gid != EMPTY {
                let mut pos = crate::hashing::hash_u64(key) as usize & self.mask;
                while self.slots[pos].1 != EMPTY {
                    pos = (pos + 1) & self.mask;
                }
                self.slots[pos] = (key, gid);
            }
        }
    }

    /// Finds or inserts one key, returning its group id.
    #[inline]
    pub fn find_or_insert(&mut self, hash: u64, key: u64) -> u32 {
        let mut pos = hash as usize & self.mask;
        loop {
            let (k, gid) = self.slots[pos];
            if gid == EMPTY {
                let new_gid = self.groups;
                self.slots[pos] = (key, new_gid);
                self.groups += 1;
                return new_gid;
            }
            if k == key {
                return gid;
            }
            pos = (pos + 1) & self.mask;
        }
    }
}

/// `hash_insertcheck_u64_col`: per live position, find-or-insert the key and
/// write the group id. Returns the number of groups after the call.
pub type GroupInsertCheck = fn(
    table: &mut GroupTable,
    hashes: &[u64],
    keys: &[u64],
    gids: &mut [u32],
    sel: Option<&[u32]>,
) -> u32;

/// `gcc` style: plain loop.
pub fn hash_insertcheck_u64_gcc(
    table: &mut GroupTable,
    hashes: &[u64],
    keys: &[u64],
    gids: &mut [u32],
    sel: Option<&[u32]>,
) -> u32 {
    match sel {
        Some(s) => {
            for &i in s {
                let i = i as usize;
                gids[i] = table.find_or_insert(hashes[i], keys[i]);
            }
        }
        None => {
            for i in 0..keys.len() {
                gids[i] = table.find_or_insert(hashes[i], keys[i]);
            }
        }
    }
    table.groups()
}

/// `icc` style: 2-way software-pipelined probe (prefetch-like shape).
pub fn hash_insertcheck_u64_icc(
    table: &mut GroupTable,
    hashes: &[u64],
    keys: &[u64],
    gids: &mut [u32],
    sel: Option<&[u32]>,
) -> u32 {
    match sel {
        Some(s) => {
            let mut j = 0;
            while j + 2 <= s.len() {
                let (i0, i1) = (s[j] as usize, s[j + 1] as usize);
                gids[i0] = table.find_or_insert(hashes[i0], keys[i0]);
                gids[i1] = table.find_or_insert(hashes[i1], keys[i1]);
                j += 2;
            }
            if j < s.len() {
                let i = s[j] as usize;
                gids[i] = table.find_or_insert(hashes[i], keys[i]);
            }
        }
        None => {
            let n = keys.len();
            let mut i = 0;
            while i + 2 <= n {
                gids[i] = table.find_or_insert(hashes[i], keys[i]);
                gids[i + 1] = table.find_or_insert(hashes[i + 1], keys[i + 1]);
                i += 2;
            }
            if i < n {
                gids[i] = table.find_or_insert(hashes[i], keys[i]);
            }
        }
    }
    table.groups()
}

/// `clang` style: iterator formulation on the dense path.
pub fn hash_insertcheck_u64_clang(
    table: &mut GroupTable,
    hashes: &[u64],
    keys: &[u64],
    gids: &mut [u32],
    sel: Option<&[u32]>,
) -> u32 {
    match sel {
        Some(s) => {
            for &i in s {
                let i = i as usize;
                gids[i] = table.find_or_insert(hashes[i], keys[i]);
            }
        }
        None => {
            for ((g, &h), &k) in gids.iter_mut().zip(hashes.iter()).zip(keys.iter()) {
                *g = table.find_or_insert(h, k);
            }
        }
    }
    table.groups()
}

// ---------------------------------------------------------------------------
// string keys
// ---------------------------------------------------------------------------

/// Open-addressing table assigning dense group ids to string keys, owning
/// copies of the key strings.
#[derive(Debug, Clone)]
pub struct StrGroupTable {
    /// (hash, sid, gid); gid == EMPTY marks free.
    slots: Vec<(u64, u32, u32)>,
    mask: usize,
    groups: u32,
    key_bytes: Vec<u8>,
    key_views: Vec<(u32, u32)>,
}

impl Default for StrGroupTable {
    fn default() -> Self {
        Self::new()
    }
}

impl StrGroupTable {
    /// An empty table.
    pub fn new() -> Self {
        StrGroupTable {
            slots: vec![(0, 0, EMPTY); 64],
            mask: 63,
            groups: 0,
            key_bytes: Vec::new(),
            key_views: Vec::new(),
        }
    }

    /// Number of distinct groups.
    pub fn groups(&self) -> u32 {
        self.groups
    }

    /// Resident bytes: the slot array plus stored key bytes and views.
    /// Reported by the executor's byte-accounting facade against the
    /// memory analyzer's proven per-operator bounds.
    pub fn bytes(&self) -> u64 {
        let slots = self.slots.len() * std::mem::size_of::<(u64, u32, u32)>();
        (slots + self.key_bytes.len() + self.key_views.len() * 8) as u64
    }

    /// The group key for `gid` (valid for all assigned gids).
    pub fn key(&self, gid: u32) -> &str {
        let (off, len) = self.key_views[gid as usize];
        std::str::from_utf8(&self.key_bytes[off as usize..(off + len) as usize])
            .expect("group keys are valid UTF-8")
    }

    /// Ensures room for `additional` new groups under 50% load.
    pub fn reserve(&mut self, additional: usize) {
        let needed = (self.groups as usize + additional) * 2;
        if needed <= self.slots.len() {
            return;
        }
        let new_cap = needed.next_power_of_two();
        let old = std::mem::replace(&mut self.slots, vec![(0, 0, EMPTY); new_cap]);
        self.mask = new_cap - 1;
        for (hash, sid, gid) in old {
            if gid != EMPTY {
                let mut pos = hash as usize & self.mask;
                while self.slots[pos].2 != EMPTY {
                    pos = (pos + 1) & self.mask;
                }
                self.slots[pos] = (hash, sid, gid);
            }
        }
    }

    fn key_at(&self, sid: u32) -> &[u8] {
        let (off, len) = self.key_views[sid as usize];
        &self.key_bytes[off as usize..(off + len) as usize]
    }

    /// Finds or inserts one string key.
    #[inline]
    pub fn find_or_insert(&mut self, hash: u64, key: &str) -> u32 {
        let mut pos = hash as usize & self.mask;
        loop {
            let (h, sid, gid) = self.slots[pos];
            if gid == EMPTY {
                let off = self.key_bytes.len() as u32;
                self.key_bytes.extend_from_slice(key.as_bytes());
                let sid = self.key_views.len() as u32;
                self.key_views.push((off, key.len() as u32));
                let new_gid = self.groups;
                self.slots[pos] = (hash, sid, new_gid);
                self.groups += 1;
                return new_gid;
            }
            if h == hash && self.key_at(sid) == key.as_bytes() {
                return gid;
            }
            pos = (pos + 1) & self.mask;
        }
    }
}

/// `hash_insertcheck_str_col` (Fig. 4e).
pub type StrGroupInsertCheck = fn(
    table: &mut StrGroupTable,
    hashes: &[u64],
    keys: &StrVec,
    gids: &mut [u32],
    sel: Option<&[u32]>,
) -> u32;

/// `gcc` style.
pub fn hash_insertcheck_str_gcc(
    table: &mut StrGroupTable,
    hashes: &[u64],
    keys: &StrVec,
    gids: &mut [u32],
    sel: Option<&[u32]>,
) -> u32 {
    match sel {
        Some(s) => {
            for &i in s {
                let i = i as usize;
                gids[i] = table.find_or_insert(hashes[i], keys.get(i));
            }
        }
        None => {
            for i in 0..keys.len() {
                gids[i] = table.find_or_insert(hashes[i], keys.get(i));
            }
        }
    }
    table.groups()
}

/// `icc` style: 2-way pipelined.
pub fn hash_insertcheck_str_icc(
    table: &mut StrGroupTable,
    hashes: &[u64],
    keys: &StrVec,
    gids: &mut [u32],
    sel: Option<&[u32]>,
) -> u32 {
    match sel {
        Some(s) => {
            let mut j = 0;
            while j + 2 <= s.len() {
                let (i0, i1) = (s[j] as usize, s[j + 1] as usize);
                gids[i0] = table.find_or_insert(hashes[i0], keys.get(i0));
                gids[i1] = table.find_or_insert(hashes[i1], keys.get(i1));
                j += 2;
            }
            if j < s.len() {
                let i = s[j] as usize;
                gids[i] = table.find_or_insert(hashes[i], keys.get(i));
            }
        }
        None => {
            let n = keys.len();
            let mut i = 0;
            while i + 2 <= n {
                gids[i] = table.find_or_insert(hashes[i], keys.get(i));
                gids[i + 1] = table.find_or_insert(hashes[i + 1], keys.get(i + 1));
                i += 2;
            }
            if i < n {
                gids[i] = table.find_or_insert(hashes[i], keys.get(i));
            }
        }
    }
    table.groups()
}

/// `clang` style.
pub fn hash_insertcheck_str_clang(
    table: &mut StrGroupTable,
    hashes: &[u64],
    keys: &StrVec,
    gids: &mut [u32],
    sel: Option<&[u32]>,
) -> u32 {
    match sel {
        Some(s) => {
            for &i in s {
                let i = i as usize;
                gids[i] = table.find_or_insert(hashes[i], keys.get(i));
            }
        }
        None => {
            for (i, g) in gids.iter_mut().enumerate().take(keys.len()) {
                *g = table.find_or_insert(hashes[i], keys.get(i));
            }
        }
    }
    table.groups()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::{hash_bytes, hash_u64};

    #[test]
    fn assigns_dense_stable_gids() {
        let mut t = GroupTable::new();
        let a = t.find_or_insert(hash_u64(100), 100);
        let b = t.find_or_insert(hash_u64(200), 200);
        let a2 = t.find_or_insert(hash_u64(100), 100);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(a2, 0);
        assert_eq!(t.groups(), 2);
    }

    #[test]
    fn survives_growth() {
        let mut t = GroupTable::new();
        let mut gids = Vec::new();
        for k in 0..10_000u64 {
            t.reserve(1);
            gids.push(t.find_or_insert(hash_u64(k), k));
        }
        assert_eq!(t.groups(), 10_000);
        // Lookups after growth return the original gids.
        for k in 0..10_000u64 {
            assert_eq!(t.find_or_insert(hash_u64(k), k), gids[k as usize]);
        }
    }

    #[test]
    fn insertcheck_flavors_agree() {
        let keys: Vec<u64> = (0..512).map(|i| i % 37).collect();
        let hashes: Vec<u64> = keys.iter().map(|&k| hash_u64(k)).collect();
        let sel: Vec<u32> = (0..512u32).filter(|i| i % 3 != 1).collect();
        for sv in [None, Some(sel.as_slice())] {
            let mut expected = vec![0u32; 512];
            let mut t_ref = GroupTable::new();
            t_ref.reserve(512);
            let g_ref = hash_insertcheck_u64_gcc(&mut t_ref, &hashes, &keys, &mut expected, sv);
            for (name, f) in [
                ("icc", hash_insertcheck_u64_icc as GroupInsertCheck),
                ("clang", hash_insertcheck_u64_clang),
            ] {
                let mut t = GroupTable::new();
                t.reserve(512);
                let mut gids = vec![0u32; 512];
                let g = f(&mut t, &hashes, &keys, &mut gids, sv);
                assert_eq!(g, g_ref, "{name}: group count");
                match sv {
                    None => assert_eq!(gids, expected, "{name}"),
                    Some(s) => {
                        for &i in s {
                            assert_eq!(gids[i as usize], expected[i as usize], "{name}");
                        }
                    }
                }
            }
            assert_eq!(g_ref, 37);
        }
    }

    #[test]
    fn str_table_roundtrips_keys() {
        let mut t = StrGroupTable::new();
        t.reserve(8);
        let g1 = t.find_or_insert(hash_bytes(b"Brand#12"), "Brand#12");
        let g2 = t.find_or_insert(hash_bytes(b"Brand#34"), "Brand#34");
        let g1b = t.find_or_insert(hash_bytes(b"Brand#12"), "Brand#12");
        assert_eq!(g1, g1b);
        assert_ne!(g1, g2);
        assert_eq!(t.key(g1), "Brand#12");
        assert_eq!(t.key(g2), "Brand#34");
    }

    #[test]
    fn str_insertcheck_flavors_agree() {
        let strs: Vec<String> = (0..256).map(|i| format!("key{}", i % 19)).collect();
        let keys = StrVec::from_strings(&strs);
        let hashes: Vec<u64> = strs.iter().map(|s| hash_bytes(s.as_bytes())).collect();
        let mut expected = vec![0u32; 256];
        let mut t_ref = StrGroupTable::new();
        t_ref.reserve(256);
        hash_insertcheck_str_gcc(&mut t_ref, &hashes, &keys, &mut expected, None);
        for (name, f) in [
            ("icc", hash_insertcheck_str_icc as StrGroupInsertCheck),
            ("clang", hash_insertcheck_str_clang),
        ] {
            let mut t = StrGroupTable::new();
            t.reserve(256);
            let mut gids = vec![0u32; 256];
            let g = f(&mut t, &hashes, &keys, &mut gids, None);
            assert_eq!(gids, expected, "{name}");
            assert_eq!(g, 19, "{name}");
        }
    }

    #[test]
    fn str_table_survives_growth() {
        let mut t = StrGroupTable::new();
        for i in 0..5000 {
            t.reserve(1);
            let k = format!("group-{i}");
            let gid = t.find_or_insert(hash_bytes(k.as_bytes()), &k);
            assert_eq!(gid, i as u32);
        }
        assert_eq!(t.groups(), 5000);
        assert_eq!(t.key(4321), "group-4321");
    }

    #[test]
    fn colliding_hashes_still_distinguish_keys() {
        // Force identical hashes: both probe the same chain but must get
        // distinct gids because the byte comparison differs.
        let mut t = StrGroupTable::new();
        t.reserve(4);
        let g1 = t.find_or_insert(42, "aaa");
        let g2 = t.find_or_insert(42, "bbb");
        let g1b = t.find_or_insert(42, "aaa");
        assert_ne!(g1, g2);
        assert_eq!(g1, g1b);
    }
}
