//! SQL `LIKE` pattern matching and its selection primitives.
//!
//! TPC-H needs a handful of shapes: prefix (`PROMO%`), contains (`%green%`)
//! and multi-segment (`%special%requests%`). Patterns are compiled once at
//! plan-build time; the primitive matches a vector of strings against the
//! compiled pattern. Only `%` wildcards occur in TPC-H; `_` is supported for
//! completeness.

use ma_vector::StrVec;

/// A compiled LIKE pattern: literal segments separated by `%`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LikePattern {
    /// Literal segments between `%` wildcards, in order.
    segments: Vec<String>,
    /// Whether the pattern starts without a leading `%` (anchored start).
    anchored_start: bool,
    /// Whether the pattern ends without a trailing `%` (anchored end).
    anchored_end: bool,
    /// Whether any `_` occurs (falls back to a slow positional matcher).
    has_underscore: bool,
    /// Raw pattern, kept for the `_` fallback and for display.
    raw: String,
}

impl LikePattern {
    /// Compiles a LIKE pattern.
    pub fn compile(pattern: &str) -> Self {
        let has_underscore = pattern.contains('_');
        let anchored_start = !pattern.starts_with('%');
        let anchored_end = !pattern.ends_with('%');
        let segments: Vec<String> = pattern
            .split('%')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        LikePattern {
            segments,
            anchored_start,
            anchored_end,
            has_underscore,
            raw: pattern.to_string(),
        }
    }

    /// The original pattern text.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    /// Matches one string against the pattern.
    pub fn matches(&self, s: &str) -> bool {
        if self.has_underscore {
            return like_match_positional(s.as_bytes(), self.raw.as_bytes());
        }
        if self.segments.is_empty() {
            // "%", "%%", or "" patterns.
            return !(self.anchored_start && self.anchored_end) || s.is_empty();
        }
        let mut rest = s;
        let last = self.segments.len() - 1;
        for (idx, seg) in self.segments.iter().enumerate() {
            let is_first = idx == 0;
            let is_last = idx == last;
            if is_first && self.anchored_start {
                match rest.strip_prefix(seg.as_str()) {
                    Some(r) => rest = r,
                    None => return false,
                }
                if is_last && self.anchored_end {
                    return rest.is_empty();
                }
            } else if is_last && self.anchored_end {
                // The final segment must close the string.
                return rest.ends_with(seg.as_str());
            } else {
                match rest.find(seg.as_str()) {
                    Some(p) => rest = &rest[p + seg.len()..],
                    None => return false,
                }
            }
        }
        true
    }
}

/// Classic recursive-descent LIKE matcher supporting `%` and `_` (used only
/// when `_` occurs — none of the TPC-H patterns do).
fn like_match_positional(s: &[u8], p: &[u8]) -> bool {
    if p.is_empty() {
        return s.is_empty();
    }
    match p[0] {
        b'%' => {
            // Try all suffixes.
            (0..=s.len()).any(|i| like_match_positional(&s[i..], &p[1..]))
        }
        b'_' => !s.is_empty() && like_match_positional(&s[1..], &p[1..]),
        c => !s.is_empty() && s[0] == c && like_match_positional(&s[1..], &p[1..]),
    }
}

/// LIKE selection primitive type.
pub type SelLike =
    fn(res: &mut [u32], col: &StrVec, pat: &LikePattern, sel: Option<&[u32]>) -> usize;

/// `sel_like_str_col_val`: select positions matching the pattern.
pub fn sel_like(res: &mut [u32], col: &StrVec, pat: &LikePattern, sel: Option<&[u32]>) -> usize {
    let mut k = 0;
    match sel {
        Some(s) => {
            for &i in s {
                if pat.matches(col.get(i as usize)) {
                    res[k] = i;
                    k += 1;
                }
            }
        }
        None => {
            for i in 0..col.len() {
                if pat.matches(col.get(i)) {
                    res[k] = i as u32;
                    k += 1;
                }
            }
        }
    }
    k
}

/// `sel_not_like_str_col_val`: select positions NOT matching the pattern.
pub fn sel_not_like(
    res: &mut [u32],
    col: &StrVec,
    pat: &LikePattern,
    sel: Option<&[u32]>,
) -> usize {
    let mut k = 0;
    match sel {
        Some(s) => {
            for &i in s {
                if !pat.matches(col.get(i as usize)) {
                    res[k] = i;
                    k += 1;
                }
            }
        }
        None => {
            for i in 0..col.len() {
                if !pat.matches(col.get(i)) {
                    res[k] = i as u32;
                    k += 1;
                }
            }
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, s: &str) -> bool {
        LikePattern::compile(pat).matches(s)
    }

    #[test]
    fn prefix_patterns() {
        assert!(m("PROMO%", "PROMO BURNISHED COPPER"));
        assert!(!m("PROMO%", "STANDARD BRASS"));
        assert!(m("PROMO%", "PROMO"));
        assert!(!m("PROMO%", "PROM"));
    }

    #[test]
    fn contains_patterns() {
        assert!(m("%green%", "dark green metallic"));
        assert!(m("%green%", "green"));
        assert!(!m("%green%", "gren"));
    }

    #[test]
    fn suffix_patterns() {
        assert!(m("%BRASS", "LARGE POLISHED BRASS"));
        assert!(!m("%BRASS", "BRASS PLATED"));
    }

    #[test]
    fn multi_segment_patterns() {
        // Q13's famous pattern.
        assert!(m(
            "%special%requests%",
            "the special packages. carefully final requests nag"
        ));
        assert!(!m("%special%requests%", "requests before special"));
        assert!(m("%Customer%Complaints%", "xx Customer yy Complaints zz"));
    }

    #[test]
    fn exact_and_empty_patterns() {
        assert!(m("MAIL", "MAIL"));
        assert!(!m("MAIL", "MAILX"));
        assert!(m("%", "anything"));
        assert!(m("%", ""));
        assert!(m("", ""));
        assert!(!m("", "x"));
    }

    #[test]
    fn anchored_both_ends_with_middle_wildcard() {
        assert!(m("forest%", "forest green"));
        assert!(m("a%z", "abcz"));
        assert!(m("a%z", "az"));
        assert!(!m("a%z", "abc"));
        assert!(!m("a%z", "za"));
    }

    #[test]
    fn overlapping_segment_greediness() {
        // Anchored-end segment must match the *final* occurrence.
        assert!(m("%ab", "abab"));
        assert!(m("a%ab", "aab"));
        assert!(!m("a%ab", "ab")); // 'a' consumed, "ab" can't fit in "b"
    }

    #[test]
    fn underscore_fallback() {
        assert!(m("a_c", "abc"));
        assert!(!m("a_c", "ac"));
        assert!(m("_%", "x"));
        assert!(!m("_%", ""));
    }

    #[test]
    fn sel_like_primitives() {
        let col = StrVec::from_strings(&[
            "PROMO ANODIZED TIN",
            "ECONOMY BRUSHED STEEL",
            "PROMO PLATED COPPER",
        ]);
        let pat = LikePattern::compile("PROMO%");
        let mut res = [0u32; 3];
        let k = sel_like(&mut res, &col, &pat, None);
        assert_eq!(&res[..k], &[0, 2]);
        let k = sel_not_like(&mut res, &col, &pat, None);
        assert_eq!(&res[..k], &[1]);
        // under a selection vector
        let sel = [1u32, 2];
        let k = sel_like(&mut res, &col, &pat, Some(&sel));
        assert_eq!(&res[..k], &[2]);
    }
}
