//! Builds the Primitive Dictionary: every signature → its full flavor set.
//!
//! Mirrors §3.1: Vectorwise's build extracts a *flavor library* from each
//! build environment and loads them all at kernel initialization. Here,
//! [`build_dictionary`] registers every concrete primitive instantiation
//! under its signature string with all its flavors and their provenance
//! metadata.
//!
//! Flavor naming conventions (used by the executor's flavor-set axes):
//! * algorithmic: `branching`/`no_branching`, `selective`/`full`,
//!   `fused`/`fission`, `unroll8`/`no_unroll`
//! * compiler styles: `gcc`, `icc`, `clang` (aliases may map to the same
//!   function as an algorithmic flavor — e.g. `gcc` is the plain-loop code
//!   style that is also the `branching`/`selective` default)
//!
//! Flavor index 0 is always the engine default.

use ma_core::{FlavorInfo, FlavorSet, FlavorSource, PrimitiveDictionary};

use crate::aggregate::*;
use crate::bloom::{
    sel_bloomfilter_fission, sel_bloomfilter_fused, sel_bloomfilter_prefetch, SelBloom,
};
use crate::decode::*;
use crate::group_table::*;
use crate::hashing::*;
use crate::like::{sel_like, sel_not_like, SelLike};
use crate::map_arith::*;
use crate::map_fetch::*;
use crate::merge::*;
use crate::ops::*;
use crate::selection::*;

const A: FlavorSource = FlavorSource::Algorithmic;
const C: FlavorSource = FlavorSource::CompilerStyle;
const D: FlavorSource = FlavorSource::Default;

fn fi(name: &'static str, source: FlavorSource) -> FlavorInfo {
    FlavorInfo::new(name, source)
}

/// An alias entry: a second name for a function already in the set.
fn fa(name: &'static str, source: FlavorSource) -> FlavorInfo {
    FlavorInfo::alias(name, source)
}

macro_rules! reg_sel {
    ($d:expr, $ty:ty, $tyname:literal, $( ($op:ty, $opname:literal) ),+ $(,)?) => {
        $(
            $d.register(FlavorSet::from_parts(
                format!("sel_{}_{}_col_val", $opname, $tyname),
                vec![
                    fi("branching", D),
                    fi("no_branching", A),
                    fi("icc", C),
                    fi("clang", C),
                    fi("unroll8", A),
                    fa("gcc", C),
                    fa("no_unroll", A),
                ],
                vec![
                    sel_col_val_branching::<$ty, $op> as SelColVal<$ty>,
                    sel_col_val_no_branching::<$ty, $op>,
                    sel_col_val_icc::<$ty, $op>,
                    sel_col_val_clang::<$ty, $op>,
                    sel_col_val_unroll8::<$ty, $op>,
                    sel_col_val_branching::<$ty, $op>, // gcc = plain branching loop
                    sel_col_val_no_branching::<$ty, $op>, // no_unroll counterpart of unroll8
                ],
            ));
            $d.register(FlavorSet::from_parts(
                format!("sel_{}_{}_col_col", $opname, $tyname),
                vec![
                    fi("branching", D),
                    fi("no_branching", A),
                    fi("clang", C),
                    fa("gcc", C),
                    fa("icc", C),
                ],
                vec![
                    sel_col_col_branching::<$ty, $op> as SelColCol<$ty>,
                    sel_col_col_no_branching::<$ty, $op>,
                    sel_col_col_clang::<$ty, $op>,
                    sel_col_col_branching::<$ty, $op>,
                    sel_col_col_no_branching::<$ty, $op>,
                ],
            ));
        )+
    };
}

macro_rules! reg_map {
    ($d:expr, $ty:ty, $tyname:literal, $( ($op:ty, $opname:literal) ),+ $(,)?) => {
        $(
            {
                let mut infos = vec![fi("selective", D)];
                let mut funcs: Vec<MapColCol<$ty>> =
                    vec![map_col_col_selective::<$ty, $op>];
                if <$op as ArithOp<$ty>>::FULL_SAFE {
                    infos.push(fi("full", A));
                    funcs.push(map_col_col_full::<$ty, $op>);
                }
                infos.extend([
                    fi("unroll8", A),
                    fi("icc", C),
                    fi("clang", C),
                    fa("gcc", C),
                    fa("no_unroll", A),
                ]);
                funcs.extend([
                    map_col_col_unroll8::<$ty, $op> as MapColCol<$ty>,
                    map_col_col_icc::<$ty, $op>,
                    map_col_col_clang::<$ty, $op>,
                    map_col_col_selective::<$ty, $op>, // gcc = plain loop
                    map_col_col_selective::<$ty, $op>, // no_unroll
                ]);
                $d.register(FlavorSet::from_parts(
                    format!("map_{}_{}_col_col", $opname, $tyname),
                    infos,
                    funcs,
                ));
            }
            {
                let mut infos = vec![fi("selective", D)];
                let mut funcs: Vec<MapColVal<$ty>> =
                    vec![map_col_val_selective::<$ty, $op>];
                if <$op as ArithOp<$ty>>::FULL_SAFE {
                    infos.push(fi("full", A));
                    funcs.push(map_col_val_full::<$ty, $op>);
                }
                infos.extend([
                    fi("unroll8", A),
                    fi("clang", C),
                    fa("gcc", C),
                    fa("no_unroll", A),
                ]);
                funcs.extend([
                    map_col_val_unroll8::<$ty, $op> as MapColVal<$ty>,
                    map_col_val_clang::<$ty, $op>,
                    map_col_val_selective::<$ty, $op>,
                    map_col_val_selective::<$ty, $op>,
                ]);
                $d.register(FlavorSet::from_parts(
                    format!("map_{}_{}_col_val", $opname, $tyname),
                    infos,
                    funcs,
                ));
            }
        )+
    };
}

/// Builds the complete Primitive Dictionary used by the executor.
pub fn build_dictionary() -> PrimitiveDictionary {
    let mut d = PrimitiveDictionary::new();

    // --- selection: 6 comparison ops × {i16,i32,i64,f64} × {val,col} -------
    reg_sel!(
        d,
        i16,
        "i16",
        (Lt, "lt"),
        (Le, "le"),
        (Gt, "gt"),
        (Ge, "ge"),
        (EqOp, "eq"),
        (NeOp, "ne")
    );
    reg_sel!(
        d,
        i32,
        "i32",
        (Lt, "lt"),
        (Le, "le"),
        (Gt, "gt"),
        (Ge, "ge"),
        (EqOp, "eq"),
        (NeOp, "ne")
    );
    reg_sel!(
        d,
        i64,
        "i64",
        (Lt, "lt"),
        (Le, "le"),
        (Gt, "gt"),
        (Ge, "ge"),
        (EqOp, "eq"),
        (NeOp, "ne")
    );
    reg_sel!(
        d,
        f64,
        "f64",
        (Lt, "lt"),
        (Le, "le"),
        (Gt, "gt"),
        (Ge, "ge"),
        (EqOp, "eq"),
        (NeOp, "ne")
    );

    // --- string selections --------------------------------------------------
    d.register(FlavorSet::from_parts(
        "sel_eq_str_col_val",
        vec![fi("branching", D), fi("no_branching", A)],
        vec![
            sel_str_eq_branching as SelStrColVal,
            sel_str_eq_no_branching,
        ],
    ));
    d.register(FlavorSet::from_parts(
        "sel_ne_str_col_val",
        vec![fi("branching", D), fi("no_branching", A)],
        vec![
            sel_str_ne_branching as SelStrColVal,
            sel_str_ne_no_branching,
        ],
    ));
    d.register(FlavorSet::new(
        "sel_like_str_col_val",
        fi("default", D),
        sel_like as SelLike,
    ));
    d.register(FlavorSet::new(
        "sel_notlike_str_col_val",
        fi("default", D),
        sel_not_like as SelLike,
    ));

    // --- map arithmetic: 4 ops × {i64,f64} × {col,val} ----------------------
    reg_map!(
        d,
        i64,
        "i64",
        (Add, "add"),
        (Sub, "sub"),
        (Mul, "mul"),
        (Div, "div")
    );
    reg_map!(
        d,
        f64,
        "f64",
        (Add, "add"),
        (Sub, "sub"),
        (Mul, "mul"),
        (Div, "div")
    );
    // i16/i32 multiplication exist for the Table 4 / Fig. 8 micro-benchmarks
    // (data-type axis of the full-computation experiment).
    reg_map!(d, i16, "i16", (Mul, "mul"), (Add, "add"));
    reg_map!(d, i32, "i32", (Mul, "mul"), (Add, "add"));

    // --- casts ---------------------------------------------------------------
    d.register(FlavorSet::new(
        "map_cast_i16_i32",
        fi("default", D),
        map_cast_i16_i32 as MapCast<i16, i32>,
    ));
    d.register(FlavorSet::new(
        "map_cast_i16_i64",
        fi("default", D),
        map_cast_i16_i64 as MapCast<i16, i64>,
    ));
    d.register(FlavorSet::new(
        "map_cast_i16_f64",
        fi("default", D),
        map_cast_i16_f64 as MapCast<i16, f64>,
    ));
    d.register(FlavorSet::new(
        "map_cast_i32_i64",
        fi("default", D),
        map_cast_i32_i64 as MapCast<i32, i64>,
    ));
    d.register(FlavorSet::new(
        "map_cast_i32_f64",
        fi("default", D),
        map_cast_i32_f64 as MapCast<i32, f64>,
    ));
    d.register(FlavorSet::new(
        "map_cast_i64_f64",
        fi("default", D),
        map_cast_i64_f64 as MapCast<i64, f64>,
    ));

    // --- fetch (gather) ------------------------------------------------------
    macro_rules! reg_fetch {
        ($ty:ty, $tyname:literal) => {
            d.register(FlavorSet::from_parts(
                format!("map_fetch_{}_col", $tyname),
                vec![fi("gcc", C), fi("icc", C), fi("clang", C)],
                vec![
                    map_fetch_gcc::<$ty> as MapFetch<$ty>,
                    map_fetch_icc::<$ty>,
                    map_fetch_clang::<$ty>,
                ],
            ));
        };
    }
    reg_fetch!(i16, "i16");
    reg_fetch!(i32, "i32");
    reg_fetch!(i64, "i64");
    reg_fetch!(f64, "f64");
    d.register(FlavorSet::from_parts(
        "map_fetch_str_col",
        vec![fi("gcc", C), fi("icc", C), fi("clang", C)],
        vec![
            map_fetch_str_gcc as MapFetchStr,
            map_fetch_str_icc,
            map_fetch_str_clang,
        ],
    ));

    // --- hashing -------------------------------------------------------------
    d.register(FlavorSet::from_parts(
        "map_hash_i32_col",
        vec![fi("gcc", C), fi("icc", C), fi("clang", C)],
        vec![
            map_hash_i32_gcc as MapHash<i32>,
            map_hash_i32_icc,
            map_hash_i32_clang,
        ],
    ));
    d.register(FlavorSet::from_parts(
        "map_hash_i64_col",
        vec![fi("gcc", C), fi("icc", C), fi("clang", C)],
        vec![
            map_hash_i64_gcc as MapHash<i64>,
            map_hash_i64_icc,
            map_hash_i64_clang,
        ],
    ));
    d.register(FlavorSet::from_parts(
        "map_hash_str_col",
        vec![fi("gcc", C), fi("clang", C)],
        vec![map_hash_str_gcc as MapHashStr, map_hash_str_clang],
    ));
    d.register(FlavorSet::new(
        "map_rehash_i32_col",
        fi("gcc", C),
        map_rehash_i32_gcc as MapRehash<i32>,
    ));
    d.register(FlavorSet::new(
        "map_rehash_i64_col",
        fi("gcc", C),
        map_rehash_i64_gcc as MapRehash<i64>,
    ));
    d.register(FlavorSet::new(
        "map_rehash_str_col",
        fi("gcc", C),
        map_rehash_str_gcc as MapRehashStr,
    ));

    // --- merge join kernel (Fig. 4c / Fig. 5) --------------------------------
    d.register(FlavorSet::from_parts(
        "mergejoin_i64_col_i64_col",
        vec![fi("gcc", C), fi("icc", C), fi("clang", C)],
        vec![
            mergejoin_i64_gcc as MergeJoinFn,
            mergejoin_i64_icc,
            mergejoin_i64_clang,
        ],
    ));

    // --- compressed-column decode kernels ------------------------------------
    // Every decode signature carries >= 3 flavors so the per-morsel bandit
    // has real arms to pick between (xtask lint rule 6 enforces coverage).
    d.register(FlavorSet::from_parts(
        "decode_for_i32",
        vec![fi("branching", D), fi("no_branching", A), fi("unroll8", A)],
        vec![
            decode_for_i32_branching as DecodeForCol<i32>,
            decode_for_i32_no_branching,
            decode_for_i32_unroll8,
        ],
    ));
    d.register(FlavorSet::from_parts(
        "decode_for_i64",
        vec![fi("branching", D), fi("no_branching", A), fi("unroll8", A)],
        vec![
            decode_for_i64_branching as DecodeForCol<i64>,
            decode_for_i64_no_branching,
            decode_for_i64_unroll8,
        ],
    ));
    d.register(FlavorSet::from_parts(
        "decode_delta_i32",
        vec![fi("branching", D), fi("no_branching", A), fi("unroll8", A)],
        vec![
            decode_delta_i32_branching as DecodeDeltaCol,
            decode_delta_i32_no_branching,
            decode_delta_i32_unroll8,
        ],
    ));
    d.register(FlavorSet::from_parts(
        "decode_dict_str",
        vec![fi("fused", D), fi("fission", A), fi("unroll8", A)],
        vec![
            decode_dict_str_fused as DecodeDictCol,
            decode_dict_str_fission,
            decode_dict_str_unroll8,
        ],
    ));

    // --- bloom filter (loop fission flavor set, §2 Listings 5/6) -------------
    d.register(FlavorSet::from_parts(
        "sel_bloomfilter",
        vec![fi("fused", D), fi("fission", A), fi("prefetch", A)],
        vec![
            sel_bloomfilter_fused as SelBloom,
            sel_bloomfilter_fission,
            sel_bloomfilter_prefetch,
        ],
    ));

    // --- group tables ---------------------------------------------------------
    d.register(FlavorSet::from_parts(
        "hash_insertcheck_u64_col",
        vec![fi("gcc", C), fi("icc", C), fi("clang", C)],
        vec![
            hash_insertcheck_u64_gcc as GroupInsertCheck,
            hash_insertcheck_u64_icc,
            hash_insertcheck_u64_clang,
        ],
    ));
    d.register(FlavorSet::from_parts(
        "hash_insertcheck_str_col",
        vec![fi("gcc", C), fi("icc", C), fi("clang", C)],
        vec![
            hash_insertcheck_str_gcc as StrGroupInsertCheck,
            hash_insertcheck_str_icc,
            hash_insertcheck_str_clang,
        ],
    ));

    // --- grouped aggregation ----------------------------------------------------
    d.register(FlavorSet::from_parts(
        "aggr_sum128_i64_col",
        vec![fi("gcc", C), fi("icc", C), fi("clang", C)],
        vec![
            aggr_sum128_i64_gcc as AggrSumI64Grouped,
            aggr_sum128_i64_icc,
            aggr_sum128_i64_clang,
        ],
    ));
    d.register(FlavorSet::from_parts(
        "aggr_sum_f64_col",
        vec![fi("gcc", C), fi("icc", C), fi("clang", C)],
        vec![
            aggr_sum_f64_gcc as AggrSumF64Grouped,
            aggr_sum_f64_icc,
            aggr_sum_f64_clang,
        ],
    ));
    d.register(FlavorSet::from_parts(
        "aggr_count",
        vec![fi("gcc", C), fi("clang", C)],
        vec![aggr_count_gcc as AggrCountGrouped, aggr_count_clang],
    ));
    d.register(FlavorSet::new(
        "aggr_min_i64_col",
        fi("default", D),
        aggr_min_i64_grouped as AggrMinMaxI64Grouped,
    ));
    d.register(FlavorSet::new(
        "aggr_max_i64_col",
        fi("default", D),
        aggr_max_i64_grouped as AggrMinMaxI64Grouped,
    ));
    d.register(FlavorSet::new(
        "aggr_min_f64_col",
        fi("default", D),
        aggr_min_f64_grouped as AggrMinMaxF64Grouped,
    ));
    d.register(FlavorSet::new(
        "aggr_max_f64_col",
        fi("default", D),
        aggr_max_f64_grouped as AggrMinMaxF64Grouped,
    ));

    // --- ungrouped aggregation ----------------------------------------------------
    d.register(FlavorSet::from_parts(
        "aggr0_sum128_i64_col",
        vec![fi("gcc", C), fi("icc", C), fi("clang", C)],
        vec![
            aggr0_sum128_i64_gcc as AggrSumI64,
            aggr0_sum128_i64_icc,
            aggr0_sum128_i64_clang,
        ],
    ));
    d.register(FlavorSet::from_parts(
        "aggr0_sum_f64_col",
        vec![fi("gcc", C), fi("clang", C)],
        vec![aggr0_sum_f64_gcc as AggrSumF64, aggr0_sum_f64_clang],
    ));
    d.register(FlavorSet::new(
        "aggr0_min_i64_col",
        fi("default", D),
        aggr0_min_i64 as AggrMinMaxI64,
    ));
    d.register(FlavorSet::new(
        "aggr0_max_i64_col",
        fi("default", D),
        aggr0_max_i64 as AggrMinMaxI64,
    ));
    d.register(FlavorSet::new(
        "aggr0_min_f64_col",
        fi("default", D),
        aggr0_min_f64 as AggrMinMaxF64,
    ));
    d.register(FlavorSet::new(
        "aggr0_max_f64_col",
        fi("default", D),
        aggr0_max_f64 as AggrMinMaxF64,
    ));

    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_is_well_populated() {
        let d = build_dictionary();
        // 6 ops × 4 types × 2 shapes = 48 numeric selections alone.
        assert!(d.len() > 90, "got only {} signatures", d.len());
    }

    #[test]
    fn key_signatures_present() {
        let d = build_dictionary();
        for sig in [
            "sel_lt_i32_col_val",
            "sel_ge_i64_col_col",
            "sel_eq_str_col_val",
            "sel_like_str_col_val",
            "decode_for_i32",
            "decode_for_i64",
            "decode_delta_i32",
            "decode_dict_str",
            "map_mul_i64_col_col",
            "map_mul_i16_col_col",
            "map_add_f64_col_val",
            "map_cast_i32_i64",
            "map_fetch_str_col",
            "map_hash_i64_col",
            "sel_bloomfilter",
            "mergejoin_i64_col_i64_col",
            "hash_insertcheck_str_col",
            "aggr_sum128_i64_col",
            "aggr0_sum_f64_col",
        ] {
            assert!(d.contains(sig), "missing {sig}");
        }
    }

    #[test]
    fn selection_flavor_sets_have_all_axes() {
        let d = build_dictionary();
        let s = d.lookup::<SelColVal<i32>>("sel_lt_i32_col_val").unwrap();
        for name in [
            "branching",
            "no_branching",
            "gcc",
            "icc",
            "clang",
            "unroll8",
            "no_unroll",
        ] {
            assert!(s.index_of(name).is_some(), "missing flavor {name}");
        }
        assert_eq!(s.info(0).name, "branching", "default must be branching");
    }

    #[test]
    fn div_has_no_full_flavor_for_ints_but_does_for_floats() {
        let d = build_dictionary();
        let di = d.lookup::<MapColCol<i64>>("map_div_i64_col_col").unwrap();
        assert!(di.index_of("full").is_none());
        let df = d.lookup::<MapColCol<f64>>("map_div_f64_col_col").unwrap();
        assert!(df.index_of("full").is_some());
        let mi = d.lookup::<MapColCol<i64>>("map_mul_i64_col_col").unwrap();
        assert!(mi.index_of("full").is_some());
    }

    #[test]
    fn registered_functions_are_callable() {
        let d = build_dictionary();
        let s = d.lookup::<SelColVal<i32>>("sel_lt_i32_col_val").unwrap();
        let col = [5i32, 1, 9];
        let mut res = [0u32; 3];
        for i in 0..s.len() {
            let k = (s.flavor(i))(&mut res, &col, 6, None);
            assert_eq!(k, 2, "flavor {}", s.info(i).name);
        }
    }

    #[test]
    fn canonical_subsets_have_no_duplicate_functions() {
        let d = build_dictionary();
        let s = d.lookup::<SelColVal<i32>>("sel_lt_i32_col_val").unwrap();
        let c = s.canonical_subset();
        assert_eq!(c.len(), 5); // branching, no_branching, icc, clang, unroll8
        let m = d.lookup::<MapColCol<i64>>("map_mul_i64_col_col").unwrap();
        let c = m.canonical_subset();
        assert_eq!(c.len(), 5); // selective, full, unroll8, icc, clang
    }

    #[test]
    fn compiler_subset_extracts_three_styles() {
        let d = build_dictionary();
        let s = d.lookup::<MapColCol<i64>>("map_mul_i64_col_col").unwrap();
        let sub = s.subset(&["gcc", "icc", "clang"]).unwrap();
        assert_eq!(sub.len(), 3);
        let sub = s.subset(&["selective", "full"]).unwrap();
        assert_eq!(sub.len(), 2);
        let sub = s.subset(&["unroll8", "no_unroll"]).unwrap();
        assert_eq!(sub.len(), 2);
    }
}
