//! Bloom filter and its selection primitive — the paper's loop-fission
//! case study (§2, Listings 5 & 6).
//!
//! Vectorwise uses bloom filters to pre-filter hash-join probes whose keys
//! are often absent. The lookup primitive is a *selection*: it emits the
//! positions whose key might be in the filter. Two flavors:
//!
//! * `fused` (Listing 5) — one loop; the `ret += bf_get(...)` creates a
//!   loop-carried dependency, so a cache miss in `bf_get` stalls the chain.
//! * `fission` (Listing 6) — first loop only gathers the membership bits
//!   into a temporary array (iterations independent → the CPU can keep
//!   several cache misses in flight), second loop builds the selection
//!   vector. Faster for filters that exceed the cache; slower for small
//!   filters (Fig. 6).

use std::cell::RefCell;

use crate::hashing::hash_u64;

/// A blocked bloom filter with two derived probes per key.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    pub(crate) words: Vec<u64>,
    mask: u64,
}

impl BloomFilter {
    /// Creates a filter of at least `bytes` bytes (rounded up to a power of
    /// two, minimum 64).
    pub fn with_bytes(bytes: usize) -> Self {
        let words = (bytes.max(64) / 8).next_power_of_two();
        BloomFilter {
            words: vec![0; words],
            mask: (words as u64 * 64) - 1,
        }
    }

    /// Creates a filter sized for `n` keys at ~8 bits/key (≈2% false
    /// positives with 2 probes).
    pub fn for_keys(n: usize) -> Self {
        Self::with_bytes(n.max(8))
    }

    /// Size in bytes.
    pub fn bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Closed form of `for_keys(n).bytes()` without building the filter:
    /// the byte size a filter sized for `n` keys will occupy. The static
    /// cost analyzer uses this to bound join build memory; a pinned test
    /// keeps it exactly equal to the constructor's sizing.
    pub fn bytes_for_keys(n: usize) -> usize {
        (n.max(8).max(64) / 8).next_power_of_two() * 8
    }

    #[inline(always)]
    pub(crate) fn bit_positions(&self, hash: u64) -> (u64, u64) {
        // Two probes derived from disjoint hash halves.
        (hash & self.mask, (hash >> 32 ^ hash << 17) & self.mask)
    }

    /// Inserts a pre-hashed key.
    #[inline]
    pub fn insert_hash(&mut self, hash: u64) {
        let (b1, b2) = self.bit_positions(hash);
        self.words[(b1 / 64) as usize] |= 1 << (b1 % 64);
        self.words[(b2 / 64) as usize] |= 1 << (b2 % 64);
    }

    /// Inserts a raw integer key.
    pub fn insert_key(&mut self, key: u64) {
        self.insert_hash(hash_u64(key));
    }

    /// Membership check on a pre-hashed key (no false negatives).
    #[inline(always)]
    pub fn get(&self, hash: u64) -> bool {
        let (b1, b2) = self.bit_positions(hash);
        let w1 = self.words[(b1 / 64) as usize] >> (b1 % 64);
        let w2 = self.words[(b2 / 64) as usize] >> (b2 % 64);
        (w1 & w2 & 1) == 1
    }
}

/// Bloom-filter selection primitive: emits positions whose hash may be in
/// the filter.
pub type SelBloom =
    fn(res: &mut [u32], bloom: &BloomFilter, hashes: &[u64], sel: Option<&[u32]>) -> usize;

/// Fused flavor (paper Listing 5): membership check and selection-vector
/// construction in one loop with a loop-carried dependency.
pub fn sel_bloomfilter_fused(
    res: &mut [u32],
    bloom: &BloomFilter,
    hashes: &[u64],
    sel: Option<&[u32]>,
) -> usize {
    let mut ret = 0;
    match sel {
        Some(s) => {
            for &i in s {
                res[ret] = i;
                ret += bloom.get(hashes[i as usize]) as usize; // cache miss stalls `ret`
            }
        }
        None => {
            for (i, &h) in hashes.iter().enumerate() {
                res[ret] = i as u32;
                ret += bloom.get(h) as usize;
            }
        }
    }
    ret
}

thread_local! {
    /// Scratch for the fission flavor's intermediate membership bits.
    static FISSION_TMP: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Loop-fission flavor (paper Listing 6): first loop gathers membership bits
/// with independent iterations (multiple outstanding cache misses), second
/// loop builds the selection vector.
pub fn sel_bloomfilter_fission(
    res: &mut [u32],
    bloom: &BloomFilter,
    hashes: &[u64],
    sel: Option<&[u32]>,
) -> usize {
    FISSION_TMP.with(|tmp| {
        let mut tmp = tmp.borrow_mut();
        match sel {
            Some(s) => {
                let n = s.len();
                if tmp.len() < n {
                    tmp.resize(n, 0);
                }
                for (j, &i) in s.iter().enumerate() {
                    tmp[j] = bloom.get(hashes[i as usize]) as u8; // independent iterations
                }
                let mut ret = 0;
                for (j, &i) in s.iter().enumerate() {
                    res[ret] = i;
                    ret += tmp[j] as usize;
                }
                ret
            }
            None => {
                let n = hashes.len();
                if tmp.len() < n {
                    tmp.resize(n, 0);
                }
                for (j, &h) in hashes.iter().enumerate() {
                    tmp[j] = bloom.get(h) as u8;
                }
                let mut ret = 0;
                for (i, &t) in tmp[..n].iter().enumerate() {
                    res[ret] = i as u32;
                    ret += t as usize;
                }
                ret
            }
        }
    })
}

/// Software-prefetching flavor — the §6 future-work idea ("inserting
/// prefetch instructions into hash lookups. Such prefetch instructions are
/// sensitive to the right prefetch depth"). The membership word of the
/// element `PREFETCH_DEPTH` iterations ahead is prefetched into L1 while
/// the current element is processed; Micro Adaptivity can then discover on
/// which hardware (and filter size) this beats plain fission.
pub fn sel_bloomfilter_prefetch(
    res: &mut [u32],
    bloom: &BloomFilter,
    hashes: &[u64],
    sel: Option<&[u32]>,
) -> usize {
    const PREFETCH_DEPTH: usize = 8;

    #[inline(always)]
    fn prefetch(bloom: &BloomFilter, hash: u64) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: prefetch is a hint; the pointer is in-bounds by the same
        // masking `BloomFilter::get` uses, and even a wild address would
        // only be a performance bug for this instruction.
        unsafe {
            let (b1, _) = bloom.bit_positions(hash);
            let ptr = bloom.words.as_ptr().add((b1 / 64) as usize);
            core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                ptr as *const i8,
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (bloom, hash);
        }
    }

    let mut ret = 0;
    match sel {
        Some(s) => {
            for (j, &i) in s.iter().enumerate() {
                if let Some(&ahead) = s.get(j + PREFETCH_DEPTH) {
                    prefetch(bloom, hashes[ahead as usize]);
                }
                res[ret] = i;
                ret += bloom.get(hashes[i as usize]) as usize;
            }
        }
        None => {
            for (i, &h) in hashes.iter().enumerate() {
                if let Some(&ahead) = hashes.get(i + PREFETCH_DEPTH) {
                    prefetch(bloom, ahead);
                }
                res[ret] = i as u32;
                ret += bloom.get(h) as usize;
            }
        }
    }
    ret
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter_with(keys: &[u64]) -> BloomFilter {
        let mut bf = BloomFilter::for_keys(keys.len());
        for &k in keys {
            bf.insert_key(k);
        }
        bf
    }

    #[test]
    fn no_false_negatives() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 7919).collect();
        let bf = filter_with(&keys);
        for &k in &keys {
            assert!(bf.get(hash_u64(k)), "inserted key {k} must be found");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let keys: Vec<u64> = (0..10_000).collect();
        let bf = filter_with(&keys);
        let fp = (10_000u64..110_000)
            .filter(|&k| bf.get(hash_u64(k)))
            .count();
        let rate = fp as f64 / 100_000.0;
        assert!(rate < 0.1, "false positive rate too high: {rate}");
    }

    #[test]
    fn sizes_round_to_power_of_two() {
        assert_eq!(BloomFilter::with_bytes(4096).bytes(), 4096);
        assert_eq!(BloomFilter::with_bytes(5000).bytes(), 8192);
        assert!(BloomFilter::with_bytes(1).bytes() >= 64);
    }

    #[test]
    fn bytes_for_keys_matches_constructor() {
        for n in [0, 1, 7, 8, 63, 64, 65, 100, 512, 513, 4096, 100_000] {
            assert_eq!(
                BloomFilter::bytes_for_keys(n),
                BloomFilter::for_keys(n).bytes(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn flavors_equivalent() {
        let keys: Vec<u64> = (0..500).map(|i| i * 3).collect();
        let bf = filter_with(&keys);
        let hashes: Vec<u64> = (0..1024u64).map(hash_u64).collect();
        let sel: Vec<u32> = (0..1024u32).filter(|i| i % 5 != 0).collect();
        for sv in [None, Some(sel.as_slice())] {
            let cap = sv.map_or(hashes.len(), <[u32]>::len);
            let mut r1 = vec![0u32; cap];
            let mut r2 = vec![0u32; cap];
            let k1 = sel_bloomfilter_fused(&mut r1, &bf, &hashes, sv);
            let k2 = sel_bloomfilter_fission(&mut r2, &bf, &hashes, sv);
            assert_eq!(&r1[..k1], &r2[..k2]);
            assert!(k1 > 0, "some keys should pass");
            assert!(k1 < cap, "some keys should be filtered");
        }
    }

    #[test]
    fn fission_scratch_grows_with_input() {
        let bf = filter_with(&[1, 2, 3]);
        // Call with a large vector after a small one: scratch must resize.
        let small: Vec<u64> = (0..16u64).map(hash_u64).collect();
        let large: Vec<u64> = (0..4096u64).map(hash_u64).collect();
        let mut res = vec![0u32; 4096];
        let _ = sel_bloomfilter_fission(&mut res, &bf, &small, None);
        let k = sel_bloomfilter_fission(&mut res, &bf, &large, None);
        let mut expect = vec![0u32; 4096];
        let ke = sel_bloomfilter_fused(&mut expect, &bf, &large, None);
        assert_eq!(&res[..k], &expect[..ke]);
    }

    #[test]
    fn prefetch_flavor_equivalent_to_fused() {
        let keys: Vec<u64> = (0..800).map(|i| i * 11).collect();
        let bf = filter_with(&keys);
        let hashes: Vec<u64> = (0..2048u64).map(hash_u64).collect();
        let sel: Vec<u32> = (0..2048u32).filter(|i| i % 7 != 0).collect();
        for sv in [None, Some(sel.as_slice())] {
            let cap = sv.map_or(hashes.len(), <[u32]>::len);
            let mut r1 = vec![0u32; cap];
            let mut r2 = vec![0u32; cap];
            let k1 = sel_bloomfilter_fused(&mut r1, &bf, &hashes, sv);
            let k2 = sel_bloomfilter_prefetch(&mut r2, &bf, &hashes, sv);
            assert_eq!(&r1[..k1], &r2[..k2]);
        }
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let bf = BloomFilter::with_bytes(1024);
        let hashes: Vec<u64> = (0..100u64).map(hash_u64).collect();
        let mut res = vec![0u32; 100];
        assert_eq!(sel_bloomfilter_fused(&mut res, &bf, &hashes, None), 0);
        assert_eq!(sel_bloomfilter_fission(&mut res, &bf, &hashes, None), 0);
    }
}
