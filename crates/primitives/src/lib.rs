#![warn(missing_docs)]
//! # ma-primitives — the vectorized primitive flavor library
//!
//! Vectorwise implements all data processing in *primitive functions*: tight
//! loops over input vectors producing output vectors (§1). Micro Adaptivity
//! ships several interchangeable implementations ("flavors") of each and
//! picks between them at runtime. This crate is that library:
//!
//! | Module | Primitives | Flavor sets |
//! |---|---|---|
//! | [`selection`] | `sel_{lt,le,gt,ge,eq,ne}_{i16,i32,i64,f64,str}` | branching / no-branching (§1 Listings 1–2), compiler styles, hand-unroll |
//! | [`map_arith`] | `map_{add,sub,mul,div}`, casts | selective / full computation (§2 Fig. 7), hand-unroll (Listing 7), compiler styles |
//! | [`map_fetch`] | gathers (`map_fetch_*`) | compiler styles (Fig. 4d) |
//! | [`like`] | SQL LIKE selections | — |
//! | [`hashing`] | vectorized hash / rehash | compiler styles |
//! | [`bloom`] | bloom filter + `sel_bloomfilter` | fused / loop-fission (§2 Listings 5–6, Fig. 6) |
//! | [`decode`] | compressed-column decode (`decode_for_*`, `decode_delta_i32`, `decode_dict_str`) | branching / no-branching, fused / fission, hand-unroll |
//! | [`group_table`] | `hash_insertcheck_{u64,str}` (Fig. 4e) | compiler styles |
//! | [`aggregate`] | grouped & ungrouped sums/counts/min/max (incl. `sum128`) | compiler styles |
//! | [`registry`] | [`registry::build_dictionary`] wires everything into a [`ma_core::PrimitiveDictionary`] | |
//!
//! "Compiler style" flavors (`gcc` / `icc` / `clang`) are code-shape stand-ins
//! for the paper's multi-compiler builds — see DESIGN.md §3 for the
//! substitution argument.

pub mod aggregate;
pub mod bloom;
pub mod decode;
pub mod group_table;
pub mod hashing;
pub mod like;
pub mod map_arith;
pub mod map_fetch;
pub mod merge;
pub mod ops;
pub mod registry;
pub mod selection;

pub use bloom::BloomFilter;
pub use group_table::{GroupTable, StrGroupTable};
pub use like::LikePattern;
pub use registry::build_dictionary;

// Re-export the family type aliases the executor dispatches through.
pub use aggregate::{
    AggrCountGrouped, AggrMinMaxF64, AggrMinMaxF64Grouped, AggrMinMaxI64, AggrMinMaxI64Grouped,
    AggrSumF64, AggrSumF64Grouped, AggrSumI64, AggrSumI64Grouped,
};
pub use bloom::SelBloom;
pub use decode::{DecodeDeltaCol, DecodeDictCol, DecodeForCol};
pub use group_table::{GroupInsertCheck, StrGroupInsertCheck};
pub use hashing::{MapHash, MapHashStr, MapRehash, MapRehashStr};
pub use like::SelLike;
pub use map_arith::{MapCast, MapColCol, MapColVal};
pub use map_fetch::{MapFetch, MapFetchStr};
pub use merge::MergeJoinFn;
pub use selection::{SelColCol, SelColVal, SelStrColVal};
