//! Decode primitives (`decode_*`): unpack compressed column partitions
//! into plain value vectors (see `ma_vector::encode` for the codecs and
//! the packed-word layout).
//!
//! Decode is a primitive like any other — a tight loop over a vector —
//! so it gets a flavor set and the per-morsel bandit picks among:
//!
//! * `branching` — scalar bit extraction with a word-boundary branch;
//!   cheap when values rarely straddle words (small widths).
//! * `no_branching` — always reads two adjacent words through a `u128`
//!   blend (the per-partition padding word makes this safe at the tail);
//!   data-independent cost, SIMD-friendly shape.
//! * `unroll8` — the no-branching read with the paper's hand-unroll
//!   factor 8.
//! * dictionary decode trades `fused` (unpack + gather in one loop)
//!   against `fission` (unpack all codes, then gather all views) —
//!   the same loop-fission axis as the bloom-filter kernels.
//!
//! All flavors of a signature are extensionally equivalent to the
//! reference path `ma_vector::encode::read_packed`; the property tests
//! below check byte-identical output across flavors.
//!
//! Argument conventions shared by all kernels: `pbit0` is the absolute
//! bit position where the partition's packed region starts (always a
//! multiple of 64), `width` the packed bit width, `first` the first
//! partition-relative tuple to decode, `n` the tuple count. `out` holds
//! at least `n` elements.

// The dict/delta kernel families take 8 arguments by contract: every
// flavor of a signature must share the exact fn type the dictionary
// dispatches on.
#![allow(clippy::too_many_arguments)]

use ma_vector::encode::SYNC_ROWS;

/// Frame-of-reference decode: `out[i] = base + unpack(first + i)`.
pub type DecodeForCol<T> =
    fn(out: &mut [T], words: &[u64], pbit0: u64, width: u32, base: i64, first: usize, n: usize);

/// Delta decode: `out[i] = value(first + i)` reconstructed from per-row
/// deltas plus one absolute base per [`SYNC_ROWS`] block (`bases` is
/// indexed by partition-relative block number).
pub type DecodeDeltaCol = fn(
    out: &mut [i32],
    words: &[u64],
    pbit0: u64,
    width: u32,
    bases: &[i64],
    first: usize,
    n: usize,
);

/// Dictionary decode: unpack codes, gather dictionary views.
pub type DecodeDictCol = fn(
    views_out: &mut [(u32, u32)],
    codes_out: &mut [i32],
    words: &[u64],
    pbit0: u64,
    width: u32,
    dict_views: &[(u32, u32)],
    first: usize,
    n: usize,
);

#[inline(always)]
fn mask_of(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Two-word branch-free read of packed value `r` (relative to `pbit0`).
#[inline(always)]
fn read2(words: &[u64], pbit0: u64, width: u32, r: usize) -> u64 {
    let bit = pbit0 + (r as u64) * u64::from(width);
    let w = (bit >> 6) as usize;
    let s = (bit & 63) as u32;
    let pair = u128::from(words[w]) | (u128::from(words[w + 1]) << 64);
    ((pair >> s) as u64) & mask_of(width)
}

/// Single-word read with a branch for the straddling case.
#[inline(always)]
fn read1(words: &[u64], pbit0: u64, width: u32, r: usize) -> u64 {
    let bit = pbit0 + (r as u64) * u64::from(width);
    let w = (bit >> 6) as usize;
    let s = (bit & 63) as u32;
    let mut v = words[w] >> s;
    if s + width > 64 {
        v |= words[w + 1] << (64 - s);
    }
    v & mask_of(width)
}

macro_rules! for_kernels {
    ($ty:ty, $branching:ident, $no_branching:ident, $unroll8:ident) => {
        /// Branching flavor: scalar extraction, word-boundary branch.
        pub fn $branching(
            out: &mut [$ty],
            words: &[u64],
            pbit0: u64,
            width: u32,
            base: i64,
            first: usize,
            n: usize,
        ) {
            for (i, o) in out[..n].iter_mut().enumerate() {
                let d = read1(words, pbit0, width, first + i);
                *o = base.wrapping_add(d as i64) as $ty;
            }
        }

        /// No-branching flavor: two-word blend, data-independent cost.
        pub fn $no_branching(
            out: &mut [$ty],
            words: &[u64],
            pbit0: u64,
            width: u32,
            base: i64,
            first: usize,
            n: usize,
        ) {
            for (i, o) in out[..n].iter_mut().enumerate() {
                let d = read2(words, pbit0, width, first + i);
                *o = base.wrapping_add(d as i64) as $ty;
            }
        }

        /// Hand-unrolled (×8) no-branching flavor.
        pub fn $unroll8(
            out: &mut [$ty],
            words: &[u64],
            pbit0: u64,
            width: u32,
            base: i64,
            first: usize,
            n: usize,
        ) {
            let mut i = 0;
            while i + 8 <= n {
                let o = &mut out[i..i + 8];
                o[0] = base.wrapping_add(read2(words, pbit0, width, first + i) as i64) as $ty;
                o[1] = base.wrapping_add(read2(words, pbit0, width, first + i + 1) as i64) as $ty;
                o[2] = base.wrapping_add(read2(words, pbit0, width, first + i + 2) as i64) as $ty;
                o[3] = base.wrapping_add(read2(words, pbit0, width, first + i + 3) as i64) as $ty;
                o[4] = base.wrapping_add(read2(words, pbit0, width, first + i + 4) as i64) as $ty;
                o[5] = base.wrapping_add(read2(words, pbit0, width, first + i + 5) as i64) as $ty;
                o[6] = base.wrapping_add(read2(words, pbit0, width, first + i + 6) as i64) as $ty;
                o[7] = base.wrapping_add(read2(words, pbit0, width, first + i + 7) as i64) as $ty;
                i += 8;
            }
            while i < n {
                out[i] = base.wrapping_add(read2(words, pbit0, width, first + i) as i64) as $ty;
                i += 1;
            }
        }
    };
}

for_kernels!(
    i32,
    decode_for_i32_branching,
    decode_for_i32_no_branching,
    decode_for_i32_unroll8
);
for_kernels!(
    i64,
    decode_for_i64_branching,
    decode_for_i64_no_branching,
    decode_for_i64_unroll8
);

/// Shared delta-decode skeleton: walks the sync blocks overlapping
/// `[first, first + n)`, replaying at most `SYNC_ROWS - 1` leading deltas
/// in the first block; `read` is the bit-extraction flavor.
#[inline(always)]
fn delta_blocks(
    out: &mut [i32],
    words: &[u64],
    pbit0: u64,
    width: u32,
    bases: &[i64],
    first: usize,
    n: usize,
    read: impl Fn(&[u64], u64, u32, usize) -> u64,
) {
    let end = first + n;
    let mut r = first;
    while r < end {
        let blk = r / SYNC_ROWS;
        let b0 = blk * SYNC_ROWS;
        let stop = end.min(b0 + SYNC_ROWS);
        let mut acc = bases[blk];
        if r == b0 {
            out[r - first] = acc as i32;
        }
        for q in (b0 + 1)..stop {
            acc += read(words, pbit0, width, q) as i64;
            if q >= r {
                out[q - first] = acc as i32;
            }
        }
        r = stop;
    }
}

/// Branching flavor of delta decode.
pub fn decode_delta_i32_branching(
    out: &mut [i32],
    words: &[u64],
    pbit0: u64,
    width: u32,
    bases: &[i64],
    first: usize,
    n: usize,
) {
    delta_blocks(out, words, pbit0, width, bases, first, n, read1);
}

/// No-branching flavor of delta decode.
pub fn decode_delta_i32_no_branching(
    out: &mut [i32],
    words: &[u64],
    pbit0: u64,
    width: u32,
    bases: &[i64],
    first: usize,
    n: usize,
) {
    delta_blocks(out, words, pbit0, width, bases, first, n, read2);
}

/// Hand-unrolled delta decode: unpacks each block's deltas ×8-unrolled
/// into a stack buffer, then runs the serial prefix sum over the buffer.
pub fn decode_delta_i32_unroll8(
    out: &mut [i32],
    words: &[u64],
    pbit0: u64,
    width: u32,
    bases: &[i64],
    first: usize,
    n: usize,
) {
    let end = first + n;
    let mut r = first;
    let mut buf = [0u64; SYNC_ROWS];
    while r < end {
        let blk = r / SYNC_ROWS;
        let b0 = blk * SYNC_ROWS;
        let stop = end.min(b0 + SYNC_ROWS);
        let m = stop - b0;
        let mut j = 1;
        while j + 8 <= m {
            let b = &mut buf[j..j + 8];
            b[0] = read2(words, pbit0, width, b0 + j);
            b[1] = read2(words, pbit0, width, b0 + j + 1);
            b[2] = read2(words, pbit0, width, b0 + j + 2);
            b[3] = read2(words, pbit0, width, b0 + j + 3);
            b[4] = read2(words, pbit0, width, b0 + j + 4);
            b[5] = read2(words, pbit0, width, b0 + j + 5);
            b[6] = read2(words, pbit0, width, b0 + j + 6);
            b[7] = read2(words, pbit0, width, b0 + j + 7);
            j += 8;
        }
        while j < m {
            buf[j] = read2(words, pbit0, width, b0 + j);
            j += 1;
        }
        let mut acc = bases[blk];
        if r == b0 {
            out[r - first] = acc as i32;
        }
        for (q, &d) in buf[1..m].iter().enumerate().map(|(q, d)| (b0 + 1 + q, d)) {
            acc += d as i64;
            if q >= r {
                out[q - first] = acc as i32;
            }
        }
        r = stop;
    }
}

/// Fused dictionary decode: unpack each code and gather its view in one
/// loop.
pub fn decode_dict_str_fused(
    views_out: &mut [(u32, u32)],
    codes_out: &mut [i32],
    words: &[u64],
    pbit0: u64,
    width: u32,
    dict_views: &[(u32, u32)],
    first: usize,
    n: usize,
) {
    for (i, (v, c)) in views_out[..n]
        .iter_mut()
        .zip(codes_out[..n].iter_mut())
        .enumerate()
    {
        let code = read2(words, pbit0, width, first + i) as usize;
        *v = dict_views[code];
        *c = code as i32;
    }
}

/// Loop-fission dictionary decode: unpack all codes first, then gather
/// all views (two simple loops the compiler can vectorize separately).
pub fn decode_dict_str_fission(
    views_out: &mut [(u32, u32)],
    codes_out: &mut [i32],
    words: &[u64],
    pbit0: u64,
    width: u32,
    dict_views: &[(u32, u32)],
    first: usize,
    n: usize,
) {
    for (i, c) in codes_out[..n].iter_mut().enumerate() {
        *c = read2(words, pbit0, width, first + i) as i32;
    }
    for (v, &c) in views_out[..n].iter_mut().zip(codes_out[..n].iter()) {
        *v = dict_views[c as usize];
    }
}

/// Hand-unrolled (×8) fused dictionary decode.
pub fn decode_dict_str_unroll8(
    views_out: &mut [(u32, u32)],
    codes_out: &mut [i32],
    words: &[u64],
    pbit0: u64,
    width: u32,
    dict_views: &[(u32, u32)],
    first: usize,
    n: usize,
) {
    let mut i = 0;
    while i + 8 <= n {
        for k in 0..8 {
            let code = read2(words, pbit0, width, first + i + k) as usize;
            views_out[i + k] = dict_views[code];
            codes_out[i + k] = code as i32;
        }
        i += 8;
    }
    while i < n {
        let code = read2(words, pbit0, width, first + i) as usize;
        views_out[i] = dict_views[code];
        codes_out[i] = code as i32;
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ma_vector::encode::{read_packed, DeltaInts, DictStr, ForInts, ENC_PART_ROWS};
    use ma_vector::{DataType, StrVec};

    /// SplitMix64 for deterministic pseudo-random test data.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    fn encode_for_i64(values: &[i64]) -> ForInts {
        ForInts::encode(DataType::I64, values)
    }

    #[test]
    fn read_helpers_agree_with_reference() {
        let mut rng = Rng(0xBEEF);
        let words: Vec<u64> = (0..64).map(|_| rng.next()).collect();
        for width in [0u32, 1, 7, 13, 31, 33, 63, 64] {
            let cap = if width == 0 {
                1000
            } else {
                ((words.len() as u64 - 2) * 64 / u64::from(width)) as usize
            };
            for r in 0..cap.min(500) {
                let want = read_packed(&words, 64, width, r);
                assert_eq!(read1(&words, 64, width, r), want, "read1 w={width} r={r}");
                assert_eq!(read2(&words, 64, width, r), want, "read2 w={width} r={r}");
            }
        }
    }

    #[test]
    fn for_flavors_are_equivalent() {
        let mut rng = Rng(0xF0);
        let values: Vec<i64> = (0..(ENC_PART_ROWS + 500))
            .map(|_| 1_000_000 + (rng.next() % 100_000) as i64)
            .collect();
        let enc = encode_for_i64(&values);
        let flavors: &[DecodeForCol<i64>] = &[
            decode_for_i64_branching,
            decode_for_i64_no_branching,
            decode_for_i64_unroll8,
        ];
        for &(start, n) in &[
            (0usize, 777usize),
            (1000, 1),
            (ENC_PART_ROWS - 3, 7),
            (13, 0),
        ] {
            for (p, lo, m) in ma_vector::encode::part_ranges(start, n) {
                let part = &enc.parts[p];
                let pbit0 = (part.word0 as u64) * 64;
                let mut reference = vec![0i64; m];
                for (i, o) in reference.iter_mut().enumerate() {
                    *o = part
                        .base
                        .wrapping_add(read_packed(&enc.words, pbit0, part.width, lo + i) as i64);
                }
                for (fi, f) in flavors.iter().enumerate() {
                    let mut got = vec![0i64; m];
                    f(&mut got, &enc.words, pbit0, part.width, part.base, lo, m);
                    assert_eq!(got, reference, "flavor {fi} start={start} n={n}");
                }
            }
        }
    }

    #[test]
    fn delta_flavors_are_equivalent() {
        let mut rng = Rng(0xD17A);
        let mut acc = -500_000i32;
        let values: Vec<i32> = (0..(ENC_PART_ROWS + 321))
            .map(|_| {
                acc = acc.saturating_add((rng.next() % 1000) as i32);
                acc
            })
            .collect();
        let enc = DeltaInts::encode(&values);
        let flavors: &[DecodeDeltaCol] = &[
            decode_delta_i32_branching,
            decode_delta_i32_no_branching,
            decode_delta_i32_unroll8,
        ];
        let cases = [
            (0usize, values.len()),
            (63, 66),
            (64, 64),
            (65, 1),
            (ENC_PART_ROWS - 10, 30),
            (7, 0),
        ];
        for &(start, n) in &cases {
            for (p, lo, m) in ma_vector::encode::part_ranges(start, n) {
                let part = &enc.parts[p];
                let pbit0 = (part.word0 as u64) * 64;
                let blocks0 = p * (ENC_PART_ROWS / 64);
                let bases = &enc.sync[blocks0..];
                let want: Vec<i32> =
                    values[p * ENC_PART_ROWS + lo..p * ENC_PART_ROWS + lo + m].to_vec();
                for (fi, f) in flavors.iter().enumerate() {
                    let mut got = vec![0i32; m];
                    f(&mut got, &enc.words, pbit0, part.width, bases, lo, m);
                    assert_eq!(got, want, "flavor {fi} start={start} n={n}");
                }
            }
        }
    }

    #[test]
    fn dict_flavors_are_equivalent() {
        let strs: Vec<String> = (0..(ENC_PART_ROWS + 99))
            .map(|i| format!("val{:03}", (i * 31) % 613))
            .collect();
        let sv = StrVec::from_strings(&strs);
        let enc = DictStr::encode(sv.arena(), sv.views());
        let flavors: &[DecodeDictCol] = &[
            decode_dict_str_fused,
            decode_dict_str_fission,
            decode_dict_str_unroll8,
        ];
        for &(start, n) in &[
            (0usize, 1000usize),
            (500, 9),
            (ENC_PART_ROWS - 5, 20),
            (3, 0),
        ] {
            for (p, lo, m) in ma_vector::encode::part_ranges(start, n) {
                let part = &enc.parts[p];
                let pbit0 = (part.word0 as u64) * 64;
                let ref_codes: Vec<i32> = (0..m)
                    .map(|i| read_packed(&enc.words, pbit0, enc.width, lo + i) as i32)
                    .collect();
                let ref_views: Vec<(u32, u32)> =
                    ref_codes.iter().map(|&c| enc.views[c as usize]).collect();
                for (fi, f) in flavors.iter().enumerate() {
                    let mut views = vec![(0u32, 0u32); m];
                    let mut codes = vec![0i32; m];
                    f(
                        &mut views, &mut codes, &enc.words, pbit0, enc.width, &enc.views, lo, m,
                    );
                    assert_eq!(views, ref_views, "flavor {fi}");
                    assert_eq!(codes, ref_codes, "flavor {fi}");
                }
            }
        }
    }

    #[test]
    fn width_zero_and_full_width_partitions_decode() {
        // All-equal: width 0.
        let enc = encode_for_i64(&[7i64; 100]);
        assert_eq!(enc.parts[0].width, 0);
        let mut out = vec![0i64; 100];
        decode_for_i64_no_branching(&mut out, &enc.words, 0, 0, enc.parts[0].base, 0, 100);
        assert!(out.iter().all(|&x| x == 7));
        // Width 64: extreme range.
        let values = vec![i64::MIN, i64::MAX, -1, 0, 42];
        let enc = encode_for_i64(&values);
        assert_eq!(enc.parts[0].width, 64);
        let flavors: &[DecodeForCol<i64>] = &[
            decode_for_i64_branching,
            decode_for_i64_no_branching,
            decode_for_i64_unroll8,
        ];
        for f in flavors {
            let mut out = vec![0i64; 5];
            f(&mut out, &enc.words, 0, 64, enc.parts[0].base, 0, 5);
            assert_eq!(out, values);
        }
    }

    #[test]
    fn registered_decode_flavors_are_callable_and_agree() {
        let d = crate::build_dictionary();
        let values: Vec<i64> = (0..5000).map(|i| 40_000 + (i * i) % 9777).collect();
        let enc = encode_for_i64(&values);
        let part = &enc.parts[0];
        let s = d.lookup::<DecodeForCol<i64>>("decode_for_i64").unwrap();
        assert!(s.len() >= 3, "decode needs >= 3 flavors for the bandit");
        let mut reference = vec![0i64; 64];
        (s.flavor(0))(
            &mut reference,
            &enc.words,
            0,
            part.width,
            part.base,
            100,
            64,
        );
        assert_eq!(&reference[..5], &values[100..105]);
        for i in 1..s.len() {
            let mut got = vec![0i64; 64];
            (s.flavor(i))(&mut got, &enc.words, 0, part.width, part.base, 100, 64);
            assert_eq!(got, reference, "flavor {}", s.info(i).name);
        }
    }
}
