//! Analytic flavor cost models over [`Machine`] parameters.
//!
//! Two kinds of model, split honestly:
//!
//! * **Mechanistic** — where the paper explains the mechanism, the cost
//!   follows from machine parameters: branch misprediction for
//!   (no-)branching selection (Fig. 1), memory-level parallelism for loop
//!   fission (Fig. 6), SIMD lane count per element width for full
//!   computation (Fig. 8). The cross-over points *emerge* from the
//!   parameters and land near the published ones.
//! * **Calibrated** — where the paper itself declares the effect
//!   unexplained or "hard to predict" (compiler styles in Fig. 5, the
//!   hand-unroll × SIMD interaction of Table 4), we reproduce the published
//!   per-machine factor patterns directly (machines 2/4 interpolated).

use crate::machine::Machine;

// ---------------------------------------------------------------------------
// Fig. 1 — (no-)branching selection vs selectivity
// ---------------------------------------------------------------------------

/// Cycles/tuple of the branching selection at selectivity `s` ∈ \[0,1\]:
/// a base cost plus the misprediction penalty, which peaks at s = 0.5 for
/// random data (misprediction rate 2·s·(1−s)).
pub fn branching_cost(m: &Machine, s: f64) -> f64 {
    let mispredict = 2.0 * s * (1.0 - s);
    m.base_cost * 1.8 + s * 0.8 + m.branch_miss_penalty * mispredict
}

/// Cycles/tuple of the no-branching selection: data-independent.
pub fn no_branching_cost(m: &Machine, _s: f64) -> f64 {
    m.base_cost * 1.8 + 0.8 + 2.2
}

/// The two selectivities (low, high) where the flavors cross.
pub fn branching_crossovers(m: &Machine) -> (f64, f64) {
    // Solve 0.8 s + P·2s(1−s) = 3.0 → quadratic in s.
    let p = m.branch_miss_penalty;
    let (a, b, c) = (-2.0 * p, 2.0 * p + 0.8, -3.0);
    let d = (b * b - 4.0 * a * c).sqrt();
    let lo = (-b + d) / (2.0 * a);
    let hi = (-b - d) / (2.0 * a);
    (lo.min(hi), lo.max(hi))
}

// ---------------------------------------------------------------------------
// Fig. 6 — bloom filter loop fission vs filter size
// ---------------------------------------------------------------------------

/// Fraction of bloom probes missing the cache for a filter of `bytes` on
/// machine `m` (the filter competes with other working set for the LLC).
fn bloom_miss_rate(m: &Machine, bytes: u64) -> f64 {
    let effective = m.llc_bytes as f64 / 3.0;
    let b = bytes as f64;
    (1.0 - effective / b).max(0.0)
}

/// Cycles/tuple of the fused bloom lookup (Listing 5): one loop whose
/// carried dependency serializes the misses.
pub fn bloom_fused_cost(m: &Machine, bytes: u64) -> f64 {
    m.base_cost * 2.0 + bloom_miss_rate(m, bytes) * m.mem_latency
}

/// Cycles/tuple of the loop-fission lookup (Listing 6): independent
/// iterations overlap up to `mlp` misses, at the price of a second loop.
pub fn bloom_fission_cost(m: &Machine, bytes: u64) -> f64 {
    m.base_cost * 2.0 + 1.0 + bloom_miss_rate(m, bytes) * m.mem_latency / m.mlp
}

/// Fission speedup (fused/fission) for a filter of `bytes`.
pub fn fission_speedup(m: &Machine, bytes: u64) -> f64 {
    bloom_fused_cost(m, bytes) / bloom_fission_cost(m, bytes)
}

// ---------------------------------------------------------------------------
// Fig. 8 — full computation vs selectivity
// ---------------------------------------------------------------------------

/// Effective SIMD lanes for an element of `elem_bytes` on machine `m`.
/// 64-bit integer multiply has no SSE support on these machines → 1 lane.
fn lanes_eff(m: &Machine, elem_bytes: usize) -> f64 {
    if elem_bytes >= 8 {
        return 1.0;
    }
    let lanes = m.simd_lanes_32 * 4.0 / elem_bytes as f64;
    let efficiency = match m.name {
        n if n.starts_with("machine2") => 0.3, // Core2: weak unaligned SIMD
        n if n.starts_with("machine3") => 0.2, // no useful integer SIMD
        n if n.starts_with("machine1") => 0.8,
        _ => 1.0,
    };
    (lanes * efficiency).max(1.0)
}

/// Cost per *input* tuple of selective computation at density `s`:
/// indexed accesses defeat auto-vectorization.
pub fn selective_cost(m: &Machine, s: f64) -> f64 {
    m.base_cost * (1.3 * s + 0.1)
}

/// Cost per input tuple of full computation: dense, SIMD-friendly, but
/// touches every tuple.
pub fn full_cost(m: &Machine, elem_bytes: usize) -> f64 {
    m.base_cost * (1.35 / lanes_eff(m, elem_bytes) + 0.05)
}

/// Full-computation speedup (selective/full) at density `s`.
pub fn full_speedup(m: &Machine, elem_bytes: usize, s: f64) -> f64 {
    selective_cost(m, s) / full_cost(m, elem_bytes)
}

/// The input density above which full computation wins.
pub fn full_crossover(m: &Machine, elem_bytes: usize) -> f64 {
    // 1.3 s + 0.1 = 1.35/lanes + 0.05
    (((1.35 / lanes_eff(m, elem_bytes) + 0.05) - 0.1) / 1.3).clamp(0.0, 1.0)
}

// ---------------------------------------------------------------------------
// Fig. 5 — merge-join compiler styles (calibrated)
// ---------------------------------------------------------------------------

/// Cycles/tuple of the merge-join primitive per compiler style, after the
/// published Fig. 5 pattern: icc wins on machine 1, loses to clang on the
/// AMD machine 3, gcc trails on the Intel machines.
pub fn mergejoin_cost(m: &Machine, style: &str) -> f64 {
    let (gcc, icc, clang) = match m.name {
        n if n.starts_with("machine1") => (9.0, 4.8, 5.5),
        n if n.starts_with("machine2") => (8.5, 6.0, 6.2),
        n if n.starts_with("machine3") => (7.0, 8.6, 6.0),
        _ => (9.5, 6.5, 6.0), // machine 4
    };
    match style {
        "gcc" => gcc,
        "icc" => icc,
        "clang" => clang,
        other => panic!("unknown compiler style {other}"),
    }
}

// ---------------------------------------------------------------------------
// Table 4 — hand unrolling × compiler flags (calibrated)
// ---------------------------------------------------------------------------

/// The Table 4 cell for `map_mul_i32` in cycles/tuple.
///
/// `hand_unroll`: the template-level unroll-8; when on, the compiler can
/// neither vectorize nor re-unroll (verified in the paper), so all four
/// flag combinations coincide. Machines 1 and 3 are the published values;
/// 2 and 4 follow the same structure from their parameters.
pub fn unroll_table_cell(m: &Machine, hand_unroll: bool, simd: bool, compiler_unroll: bool) -> f64 {
    let (hand, cells) = match m.name {
        // [simd+unroll, no-simd+unroll, simd, no-simd]
        n if n.starts_with("machine1") => (1.73, [1.03, 1.74, 1.18, 2.59]),
        n if n.starts_with("machine3") => (2.02, [3.61, 2.15, 3.55, 4.03]),
        n if n.starts_with("machine2") => (2.10, [1.90, 2.05, 2.20, 3.10]),
        _ => (1.60, [0.85, 1.60, 0.95, 2.40]), // machine 4: wide AVX
    };
    if hand_unroll {
        return hand;
    }
    match (simd, compiler_unroll) {
        (true, true) => cells[0],
        (false, true) => cells[1],
        (true, false) => cells[2],
        (false, false) => cells[3],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{ALL_MACHINES, MACHINE1, MACHINE2, MACHINE3, MACHINE4};

    #[test]
    fn branching_beats_nobranching_at_extremes_only() {
        for m in &ALL_MACHINES {
            assert!(branching_cost(m, 0.0) < no_branching_cost(m, 0.0));
            assert!(branching_cost(m, 1.0) < no_branching_cost(m, 1.0));
            assert!(branching_cost(m, 0.5) > no_branching_cost(m, 0.5));
        }
    }

    #[test]
    fn branching_crossovers_bracket_the_middle() {
        for m in &ALL_MACHINES {
            let (lo, hi) = branching_crossovers(m);
            assert!(lo > 0.0 && lo < 0.3, "{}: lo {lo}", m.name);
            assert!(hi > 0.7 && hi < 1.0, "{}: hi {hi}", m.name);
            // At the crossover the costs match.
            let d = branching_cost(m, lo) - no_branching_cost(m, lo);
            assert!(d.abs() < 1e-6, "{}: {d}", m.name);
        }
    }

    #[test]
    fn crossovers_differ_between_machines() {
        let (l1, _) = branching_crossovers(&MACHINE1);
        let (l3, _) = branching_crossovers(&MACHINE3);
        assert!(
            (l1 - l3).abs() > 0.005,
            "crossovers should move: {l1} vs {l3}"
        );
    }

    #[test]
    fn fission_slower_for_small_filters_faster_for_large() {
        for m in &ALL_MACHINES {
            let small = fission_speedup(m, 4 << 10);
            let large = fission_speedup(m, 128 << 20);
            assert!(small < 1.0, "{}: small-filter speedup {small}", m.name);
            assert!(
                small > 0.6,
                "{}: not catastrophically slower {small}",
                m.name
            );
            assert!(large > 1.5, "{}: large-filter speedup {large}", m.name);
        }
    }

    #[test]
    fn fission_crossover_moves_with_machine() {
        // First size (in the Fig. 6 sweep) where fission wins.
        let crossover = |m: &Machine| -> u64 {
            let mut sz = 4u64 << 10;
            while sz <= 128 << 20 {
                if fission_speedup(m, sz) > 1.0 {
                    return sz;
                }
                sz *= 2;
            }
            u64::MAX
        };
        let c1 = crossover(&MACHINE1);
        let c3 = crossover(&MACHINE3);
        let c4 = crossover(&MACHINE4);
        assert!(c3 < c4, "smaller LLC crosses earlier: m3 {c3} vs m4 {c4}");
        assert!(c1 > (256 << 10) && c1 < (16 << 20), "m1 crossover {c1}");
    }

    #[test]
    fn full_computation_crossovers_match_paper() {
        // Machine 1, int32: ~30%; machine 2: much higher (~80%);
        // machine 1 int16: ~10%; int64: never.
        let c1_32 = full_crossover(&MACHINE1, 4);
        assert!((0.2..0.4).contains(&c1_32), "m1 i32 {c1_32}");
        let c2_32 = full_crossover(&MACHINE2, 4);
        assert!((0.6..0.95).contains(&c2_32), "m2 i32 {c2_32}");
        let c1_16 = full_crossover(&MACHINE1, 2);
        assert!((0.05..0.2).contains(&c1_16), "m1 i16 {c1_16}");
        let c1_64 = full_crossover(&MACHINE1, 8);
        assert!(c1_64 >= 0.99, "i64 never benefits: {c1_64}");
    }

    #[test]
    fn full_speedup_magnitude_for_short_ints() {
        // Paper Fig. 8: i16 gains are "much stronger" — up to ~5×.
        let s = full_speedup(&MACHINE1, 2, 1.0);
        assert!((3.0..8.0).contains(&s), "i16 speedup {s}");
    }

    #[test]
    fn mergejoin_best_style_depends_on_machine() {
        let best = |m: &Machine| {
            ["gcc", "icc", "clang"]
                .into_iter()
                .min_by(|a, b| {
                    mergejoin_cost(m, a)
                        .partial_cmp(&mergejoin_cost(m, b))
                        .unwrap()
                })
                .unwrap()
        };
        assert_eq!(best(&MACHINE1), "icc");
        assert_eq!(best(&MACHINE3), "clang");
        assert!(mergejoin_cost(&MACHINE3, "icc") > mergejoin_cost(&MACHINE3, "clang"));
    }

    #[test]
    fn table4_reproduces_published_cells() {
        // Machine 1: SIMD clearly fastest without hand unrolling.
        assert_eq!(unroll_table_cell(&MACHINE1, true, true, true), 1.73);
        assert_eq!(unroll_table_cell(&MACHINE1, false, true, true), 1.03);
        assert_eq!(unroll_table_cell(&MACHINE1, false, false, false), 2.59);
        // Machine 3: unrolling beats SIMD (the paper's surprise).
        assert!(
            unroll_table_cell(&MACHINE3, false, false, true)
                < unroll_table_cell(&MACHINE3, false, true, false)
        );
        // Hand unrolling pins all compiler flags to one value.
        for simd in [false, true] {
            for cu in [false, true] {
                assert_eq!(unroll_table_cell(&MACHINE3, true, simd, cu), 2.02);
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown compiler style")]
    fn unknown_style_panics() {
        mergejoin_cost(&MACHINE4, "msvc");
    }
}
