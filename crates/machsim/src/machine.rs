//! The paper's four test machines (Table 2) as analytic models.
//!
//! We have one physical host; the paper has four machines whose role in the
//! evaluation is to show that *cross-over points move across hardware*
//! (Figures 5, 6, 8; Table 4). Each machine is reduced to the handful of
//! parameters those effects depend on: last-level cache capacity, memory
//! latency, how many outstanding misses the core sustains, branch
//! misprediction penalty, and SIMD width. DESIGN.md §3 documents the
//! substitution argument.

/// An analytic machine model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Display name (paper machine number + microarchitecture).
    pub name: &'static str,
    /// Last-level cache in bytes (Table 2).
    pub llc_bytes: u64,
    /// Branch misprediction penalty in cycles.
    pub branch_miss_penalty: f64,
    /// Main-memory latency in cycles.
    pub mem_latency: f64,
    /// Outstanding misses a loop with independent iterations can overlap
    /// (memory-level parallelism).
    pub mlp: f64,
    /// SIMD lanes for 32-bit operations (1 = no usable SIMD).
    pub simd_lanes_32: f64,
    /// Base scalar cost of a simple primitive body, cycles/tuple.
    pub base_cost: f64,
}

/// Machine 1: Intel Nehalem, 12 MB LLC (Table 2).
pub const MACHINE1: Machine = Machine {
    name: "machine1-nehalem",
    llc_bytes: 12 << 20,
    branch_miss_penalty: 17.0,
    mem_latency: 190.0,
    mlp: 5.0,
    simd_lanes_32: 4.0,
    base_cost: 1.0,
};

/// Machine 2: Intel Core2, 4 MB LLC.
pub const MACHINE2: Machine = Machine {
    name: "machine2-core2",
    llc_bytes: 4 << 20,
    branch_miss_penalty: 15.0,
    mem_latency: 230.0,
    mlp: 3.0,
    simd_lanes_32: 4.0,
    base_cost: 1.2,
};

/// Machine 3: AMD Egypt (Opteron), 1 MB LLC, no useful SSE integer mul.
pub const MACHINE3: Machine = Machine {
    name: "machine3-egypt",
    llc_bytes: 1 << 20,
    branch_miss_penalty: 12.0,
    mem_latency: 260.0,
    mlp: 2.0,
    simd_lanes_32: 1.0,
    base_cost: 1.4,
};

/// Machine 4: Intel Sandy Bridge, 8 MB LLC.
pub const MACHINE4: Machine = Machine {
    name: "machine4-sandybridge",
    llc_bytes: 8 << 20,
    branch_miss_penalty: 15.0,
    mem_latency: 170.0,
    mlp: 6.0,
    simd_lanes_32: 8.0,
    base_cost: 0.9,
};

/// All four machines of Table 2.
pub const ALL_MACHINES: [Machine; 4] = [MACHINE1, MACHINE2, MACHINE3, MACHINE4];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants, clippy::eq_op)]
    fn table2_cache_sizes() {
        assert_eq!(MACHINE1.llc_bytes, 12 << 20);
        assert_eq!(MACHINE2.llc_bytes, 4 << 20);
        assert_eq!(MACHINE3.llc_bytes, 1 << 20);
        assert_eq!(MACHINE4.llc_bytes, 8 << 20);
    }

    #[test]
    fn machines_are_distinct() {
        for (i, a) in ALL_MACHINES.iter().enumerate() {
            for b in &ALL_MACHINES[i + 1..] {
                assert_ne!(a.name, b.name);
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn amd_has_no_simd_advantage() {
        assert_eq!(MACHINE3.simd_lanes_32, 1.0);
        assert!(MACHINE4.simd_lanes_32 > MACHINE1.simd_lanes_32);
    }
}
