//! Synthetic non-stationary flavor traces.
//!
//! §3.2's demonstration scenario (Fig. 10): a primitive with three flavors
//! "where one is the best at the start and the end of the query, but
//! another one is better in the middle". We generate exactly that shape as
//! an [`InstanceTrace`] so any policy can be replayed over it.

use ma_core::{InstanceTrace, SplitMix64};

/// Parameters of the Fig. 10 scenario.
#[derive(Debug, Clone, Copy)]
pub struct Fig10Spec {
    /// Number of primitive calls (the paper plots ~96K).
    pub calls: usize,
    /// Tuples per call.
    pub tuples: u64,
    /// Measurement noise amplitude (cycles/tuple).
    pub noise: f64,
}

impl Default for Fig10Spec {
    fn default() -> Self {
        Fig10Spec {
            calls: 96 * 1024,
            tuples: 1024,
            noise: 0.15,
        }
    }
}

/// Smooth bump that is ≈0 at the borders and 1 in the middle third.
fn mid_window(x: f64) -> f64 {
    // Raised-cosine between 25% and 75% of the query.
    if !(0.2..=0.8).contains(&x) {
        0.0
    } else {
        let t = (x - 0.2) / 0.6;
        0.5 * (1.0 - (2.0 * std::f64::consts::PI * t).cos())
    }
}

/// Generates the three-flavor non-stationary trace of Fig. 10.
///
/// * flavor 0: ~5.2 cycles/tuple throughout — best at start and end;
/// * flavor 1: ~6.3 at the borders, dipping to ~4.6 mid-query — best in
///   the middle;
/// * flavor 2: ~7.0 throughout — never best (the bandit must learn to
///   ignore it).
pub fn fig10_trace(spec: &Fig10Spec, seed: u64) -> InstanceTrace {
    let mut rng = SplitMix64::new(seed);
    let n = spec.calls;
    let mut costs: Vec<Vec<u64>> = (0..3).map(|_| Vec::with_capacity(n)).collect();
    for t in 0..n {
        let x = t as f64 / n as f64;
        let w = mid_window(x);
        let base = [5.2, 6.3 - 1.7 * w, 7.0 - 0.3 * w];
        for (f, c) in costs.iter_mut().enumerate() {
            let noise = (rng.next_f64() - 0.5) * 2.0 * spec.noise;
            let cost_per_tuple = (base[f] + noise).max(0.5);
            c.push((cost_per_tuple * spec.tuples as f64) as u64);
        }
    }
    InstanceTrace::new("fig10", vec![spec.tuples; n], costs)
}

/// Generates a *stationary* trace with the given per-flavor mean costs —
/// the control case where ε-first should do fine (§3.2's observation about
/// compiler flavors rarely crossing over).
pub fn stationary_trace(
    name: &str,
    calls: usize,
    tuples: u64,
    means: &[f64],
    noise: f64,
    seed: u64,
) -> InstanceTrace {
    let mut rng = SplitMix64::new(seed);
    let mut costs = vec![Vec::with_capacity(calls); means.len()];
    for _ in 0..calls {
        for (f, c) in costs.iter_mut().enumerate() {
            let n = (rng.next_f64() - 0.5) * 2.0 * noise;
            c.push(((means[f] + n).max(0.1) * tuples as f64) as u64);
        }
    }
    InstanceTrace::new(name, vec![tuples; calls], costs)
}

/// A trace with one cross-over at `switch_at` (fraction of the query):
/// flavor 0 best before, flavor 1 best after — the Fig. 2 / Q12 pattern.
pub fn switching_trace(calls: usize, tuples: u64, switch_at: f64, seed: u64) -> InstanceTrace {
    let mut rng = SplitMix64::new(seed);
    let mut costs: Vec<Vec<u64>> = (0..2).map(|_| Vec::with_capacity(calls)).collect();
    let sw = (calls as f64 * switch_at) as usize;
    for t in 0..calls {
        let (c0, c1) = if t < sw { (4.0, 5.5) } else { (16.0, 5.5) };
        let n0 = (rng.next_f64() - 0.5) * 0.4;
        let n1 = (rng.next_f64() - 0.5) * 0.4;
        costs[0].push(((c0 + n0) * tuples as f64) as u64);
        costs[1].push(((c1 + n1) * tuples as f64) as u64);
    }
    InstanceTrace::new("switching", vec![tuples; calls], costs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ma_core::policy::VwGreedyParams;
    use ma_core::{simulate_instance, PolicyKind};

    #[test]
    fn fig10_shape_has_the_right_winners() {
        let tr = fig10_trace(&Fig10Spec::default(), 1);
        let n = tr.calls();
        let avg = |f: usize, lo: usize, hi: usize| -> f64 {
            tr.costs[f][lo..hi].iter().sum::<u64>() as f64 / (hi - lo) as f64
        };
        // Start: flavor 0 best.
        assert!(avg(0, 0, n / 10) < avg(1, 0, n / 10));
        assert!(avg(0, 0, n / 10) < avg(2, 0, n / 10));
        // Middle: flavor 1 best.
        let (ml, mh) = (4 * n / 10, 6 * n / 10);
        assert!(avg(1, ml, mh) < avg(0, ml, mh));
        // End: flavor 0 again.
        assert!(avg(0, 9 * n / 10, n) < avg(1, 9 * n / 10, n));
        // Flavor 2 never best on average in any window.
        for w in 0..10 {
            let (lo, hi) = (w * n / 10, (w + 1) * n / 10);
            assert!(avg(2, lo, hi) > avg(0, lo, hi).min(avg(1, lo, hi)));
        }
    }

    #[test]
    fn vw_greedy_tracks_fig10_minimum() {
        // The paper's demonstration: with (1024, 256, 32), the adaptive
        // trace "consistently covers the minimum of the various performance
        // lines".
        let tr = fig10_trace(&Fig10Spec::default(), 2);
        let mut policy = PolicyKind::VwGreedy(VwGreedyParams::default()).build(3, 7);
        let r = simulate_instance(&tr, policy.as_mut());
        let ratio = r.ratio_to_opt();
        assert!(ratio < 1.12, "adaptive should hug the minimum: {ratio}");
        // And it must beat every fixed flavor.
        for f in 0..3 {
            assert!(
                r.policy_ticks < tr.fixed_ticks(f),
                "adaptive {} vs fixed({f}) {}",
                r.policy_ticks,
                tr.fixed_ticks(f)
            );
        }
    }

    #[test]
    fn fig10_switches_to_middle_flavor() {
        let tr = fig10_trace(&Fig10Spec::default(), 3);
        let mut policy = PolicyKind::VwGreedy(VwGreedyParams::default()).build(3, 11);
        let r = simulate_instance(&tr, policy.as_mut());
        let n = tr.calls();
        let mid = &r.choices[45 * n / 100..55 * n / 100];
        let f1 = mid.iter().filter(|&&f| f == 1).count() as f64 / mid.len() as f64;
        assert!(f1 > 0.7, "mid-query the bandit should run flavor 1: {f1}");
        let start = &r.choices[2 * n / 100..20 * n / 100];
        let f0 = start.iter().filter(|&&f| f == 0).count() as f64 / start.len() as f64;
        assert!(f0 > 0.7, "start should run flavor 0: {f0}");
    }

    #[test]
    fn stationary_trace_is_stationary() {
        let tr = stationary_trace("s", 10_000, 100, &[3.0, 5.0], 0.1, 4);
        let half = tr.calls() / 2;
        let m_early = tr.costs[0][..half].iter().sum::<u64>() as f64 / half as f64;
        let m_late = tr.costs[0][half..].iter().sum::<u64>() as f64 / half as f64;
        assert!((m_early - m_late).abs() / m_early < 0.02);
        assert_eq!(tr.best_fixed_flavor(), 0);
    }

    #[test]
    fn switching_trace_flips_at_fraction() {
        let tr = switching_trace(1000, 100, 0.7, 5);
        assert!(tr.costs[0][100] < tr.costs[1][100]);
        assert!(tr.costs[0][900] > tr.costs[1][900]);
        let opt = tr.opt_ticks();
        assert!(opt < tr.fixed_ticks(0) && opt < tr.fixed_ticks(1));
    }
}
