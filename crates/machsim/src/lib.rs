#![warn(missing_docs)]
//! # ma-machsim — analytic machine models and synthetic traces
//!
//! The paper evaluates on four physical machines (Table 2) to show that the
//! *cross-over points between flavors move across hardware*. This crate
//! substitutes those machines with analytic cost models ([`machine`],
//! [`costmodel`]) — mechanistic where the paper explains the effect
//! (branch prediction, memory-level parallelism, SIMD lanes), calibrated to
//! the published pattern where the paper itself calls the effect
//! unexplained. It also generates the synthetic non-stationary traces of
//! the §3.2 demonstration ([`synth_traces`], Fig. 10).

pub mod costmodel;
pub mod machine;
pub mod synth_traces;

pub use machine::{Machine, ALL_MACHINES, MACHINE1, MACHINE2, MACHINE3, MACHINE4};
pub use synth_traces::{fig10_trace, stationary_trace, switching_trace, Fig10Spec};
