//! The ε-family baselines of Table 5 (Vermorel & Mohri 2005).
//!
//! All three keep *all-time* per-arm mean costs — precisely the property that
//! makes them slow to react to non-stationary flavors, which is what
//! vw-greedy's recent-window means fix.

use crate::policy::{ArmMeans, Policy};
use crate::rng::SplitMix64;

/// ε-greedy: with probability ε choose a uniformly random arm (exploration),
/// otherwise the arm with the best all-time mean (exploitation). The decision
/// is made at every primitive call.
#[derive(Debug, Clone)]
pub struct EpsGreedy {
    eps: f64,
    means: ArmMeans,
    rng: SplitMix64,
}

impl EpsGreedy {
    /// `new`.
    pub fn new(arms: usize, eps: f64, rng: SplitMix64) -> Self {
        assert!((0.0..=1.0).contains(&eps), "eps must be in [0,1]");
        EpsGreedy {
            eps,
            means: ArmMeans::new(arms),
            rng,
        }
    }
}

impl Policy for EpsGreedy {
    fn choose(&mut self) -> usize {
        if self.rng.next_f64() < self.eps {
            self.rng.gen_range(self.means.arms())
        } else {
            self.means.best_arm()
        }
    }

    fn observe(&mut self, flavor: usize, tuples: u64, ticks: u64) {
        self.means.observe(flavor, tuples, ticks);
    }

    fn arms(&self) -> usize {
        self.means.arms()
    }

    fn name(&self) -> String {
        format!("eps-greedy({})", self.eps)
    }
}

/// ε-first: explore (round-robin) for the first `explore_calls` calls, then
/// exploit the best all-time mean forever. §3.2 notes it finishes as a
/// runner-up on the compiler-flavor traces precisely because those rarely
/// cross over mid-query.
#[derive(Debug, Clone)]
pub struct EpsFirst {
    explore_calls: u64,
    calls: u64,
    means: ArmMeans,
}

impl EpsFirst {
    /// `new`.
    pub fn new(arms: usize, explore_calls: u64) -> Self {
        EpsFirst {
            explore_calls,
            calls: 0,
            means: ArmMeans::new(arms),
        }
    }
}

impl Policy for EpsFirst {
    fn choose(&mut self) -> usize {
        if self.calls < self.explore_calls {
            (self.calls % self.means.arms() as u64) as usize
        } else {
            self.means.best_arm()
        }
    }

    fn observe(&mut self, flavor: usize, tuples: u64, ticks: u64) {
        self.calls += 1;
        self.means.observe(flavor, tuples, ticks);
    }

    fn arms(&self) -> usize {
        self.means.arms()
    }

    fn name(&self) -> String {
        format!("eps-first({} calls)", self.explore_calls)
    }
}

/// ε-decreasing: ε_t = min(1, eps0 / t). Auer et al. show the 1/t schedule
/// achieves logarithmic regret in the stationary case.
#[derive(Debug, Clone)]
pub struct EpsDecreasing {
    eps0: f64,
    calls: u64,
    means: ArmMeans,
    rng: SplitMix64,
}

impl EpsDecreasing {
    /// `new`.
    pub fn new(arms: usize, eps0: f64, rng: SplitMix64) -> Self {
        assert!(eps0 >= 0.0);
        EpsDecreasing {
            eps0,
            calls: 0,
            means: ArmMeans::new(arms),
            rng,
        }
    }
}

impl Policy for EpsDecreasing {
    fn choose(&mut self) -> usize {
        let t = (self.calls + 1) as f64;
        let eps = (self.eps0 / t).min(1.0);
        if self.rng.next_f64() < eps {
            self.rng.gen_range(self.means.arms())
        } else {
            self.means.best_arm()
        }
    }

    fn observe(&mut self, flavor: usize, tuples: u64, ticks: u64) {
        self.calls += 1;
        self.means.observe(flavor, tuples, ticks);
    }

    fn arms(&self) -> usize {
        self.means.arms()
    }

    fn name(&self) -> String {
        format!("eps-decreasing({})", self.eps0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut dyn Policy, calls: usize, costs: &[u64]) -> Vec<usize> {
        let mut chosen = Vec::with_capacity(calls);
        for _ in 0..calls {
            let f = p.choose();
            chosen.push(f);
            p.observe(f, 1000, costs[f] * 1000);
        }
        chosen
    }

    #[test]
    fn eps_greedy_mostly_exploits_best() {
        let mut p = EpsGreedy::new(3, 0.1, SplitMix64::new(5));
        let chosen = drive(&mut p, 10_000, &[9, 2, 9]);
        let best = chosen[1000..].iter().filter(|&&f| f == 1).count() as f64 / 9000.0;
        // 0.9 exploitation + 0.1/3 random hits on arm 1.
        assert!(best > 0.85, "got {best}");
    }

    #[test]
    fn eps_greedy_explores_at_rate_eps() {
        let mut p = EpsGreedy::new(2, 0.5, SplitMix64::new(5));
        let chosen = drive(&mut p, 10_000, &[1, 100]);
        let non_best = chosen[100..].iter().filter(|&&f| f == 1).count() as f64 / 9900.0;
        // arm 1 only via exploration: eps/2 = 0.25.
        assert!((non_best - 0.25).abs() < 0.05, "got {non_best}");
    }

    #[test]
    fn eps_first_explores_then_sticks() {
        let mut p = EpsFirst::new(3, 30);
        let chosen = drive(&mut p, 1000, &[5, 9, 3]);
        // Round-robin for 30 calls: each arm 10 times.
        for f in 0..3 {
            assert_eq!(chosen[..30].iter().filter(|&&c| c == f).count(), 10);
        }
        // Afterwards: always the best arm (2).
        assert!(chosen[30..].iter().all(|&f| f == 2));
    }

    #[test]
    fn eps_first_cannot_react_to_change() {
        // The structural weakness Table 5 exposes: after the explore window,
        // ε-first never reconsiders.
        let mut p = EpsFirst::new(2, 20);
        let mut chosen = Vec::new();
        for t in 0..2000 {
            let f = p.choose();
            chosen.push(f);
            let cost = match (t < 1000, f) {
                (true, 0) => 1,
                (true, 1) => 5,
                (false, 0) => 50, // arm 0 deteriorates badly
                (false, 1) => 5,
                _ => unreachable!(),
            };
            p.observe(f, 1000, cost * 1000);
        }
        // The all-time mean of arm 0 only crosses arm 1's after n extra
        // pulls where (990·1 + 50n)/(990+n) > 5, i.e. n ≈ 88 — so ε-first
        // hammers the deteriorated arm for ~88 calls before reacting,
        // an order of magnitude longer than vw-greedy's EXPLOIT_PERIOD=8.
        let stuck = chosen[1000..1500].iter().filter(|&&f| f == 0).count();
        assert!(
            (80..=120).contains(&stuck),
            "eps-first should lag ~88 calls on the stale arm: {stuck}"
        );
    }

    #[test]
    fn eps_decreasing_converges() {
        let mut p = EpsDecreasing::new(3, 5.0, SplitMix64::new(11));
        let chosen = drive(&mut p, 20_000, &[4, 7, 2]);
        let tail_best = chosen[10_000..].iter().filter(|&&f| f == 2).count() as f64 / 10_000.0;
        assert!(tail_best > 0.97, "exploration should die out: {tail_best}");
    }

    #[test]
    fn names() {
        assert_eq!(
            EpsGreedy::new(2, 0.05, SplitMix64::new(0)).name(),
            "eps-greedy(0.05)"
        );
        assert_eq!(EpsFirst::new(2, 64).name(), "eps-first(64 calls)");
        assert_eq!(
            EpsDecreasing::new(2, 1.0, SplitMix64::new(0)).name(),
            "eps-decreasing(1)"
        );
    }

    #[test]
    #[should_panic(expected = "eps must be in [0,1]")]
    fn eps_out_of_range_rejected() {
        EpsGreedy::new(2, 1.5, SplitMix64::new(0));
    }
}
