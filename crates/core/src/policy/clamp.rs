//! Outlier-clamped policy observations.
//!
//! The reward signal is wall-clock rdtsc, so an OS preemption during a
//! primitive call charges a multi-million-tick outlier to whichever flavor
//! happened to be running — enough to lock the *wrong* flavor in for a full
//! exploit period (ROADMAP "timing robustness"). [`ClampedPolicy`] wraps any
//! [`Policy`] and caps each observation at `k×` the running per-tuple median
//! before forwarding it. Clamping is monotone (`min(cost, cap)`), so the
//! relative ranking of flavors whose true costs sit below the cap is
//! untouched; only pathological spikes are flattened.

use crate::policy::Policy;

/// Observations kept for the running median.
const RING: usize = 32;
/// Observations between median recomputations (and the warmup length
/// before clamping activates).
const RECOMPUTE_EVERY: u64 = 8;

/// Running per-tuple-cost median over a bounded ring of recent
/// observations. Raw (unclamped) costs enter the ring, so the estimate
/// tracks the true workload; the median itself is robust to the rare
/// preemption spike.
#[derive(Debug, Clone)]
pub struct RunningMedian {
    ring: [f64; RING],
    filled: usize,
    next: usize,
    seen: u64,
    cached: f64,
}

impl Default for RunningMedian {
    fn default() -> Self {
        RunningMedian {
            ring: [0.0; RING],
            filled: 0,
            next: 0,
            seen: 0,
            cached: f64::NAN,
        }
    }
}

impl RunningMedian {
    /// Records one per-tuple cost; recomputes the cached median every
    /// `RECOMPUTE_EVERY` observations (batch granularity — the sort never
    /// runs on the per-call hot path more than 1/8th of the time, over at
    /// most `RING` elements).
    pub fn record(&mut self, cost: f64) {
        self.ring[self.next] = cost;
        self.next = (self.next + 1) % RING;
        self.filled = (self.filled + 1).min(RING);
        self.seen += 1;
        if self.seen.is_multiple_of(RECOMPUTE_EVERY) {
            let mut window: Vec<f64> = self.ring[..self.filled].to_vec();
            window.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            self.cached = window[window.len() / 2];
        }
    }

    /// The cached median, or `None` during warmup (before the first
    /// recomputation).
    pub fn median(&self) -> Option<f64> {
        if self.cached.is_nan() {
            None
        } else {
            Some(self.cached)
        }
    }
}

/// A [`Policy`] decorator that clamps observed costs at `k×` the running
/// per-tuple median before the wrapped policy sees them.
pub struct ClampedPolicy {
    inner: Box<dyn Policy>,
    median: RunningMedian,
    k: f64,
}

impl ClampedPolicy {
    /// Wraps `inner`, clamping at `k` times the running median (`k > 1`).
    pub fn new(inner: Box<dyn Policy>, k: f64) -> Self {
        assert!(k > 1.0, "clamp factor must exceed 1");
        ClampedPolicy {
            inner,
            median: RunningMedian::default(),
            k,
        }
    }

    /// The ticks value the wrapped policy would be shown for an
    /// observation of `tuples` tuples in `ticks` ticks.
    pub fn clamped_ticks(&self, tuples: u64, ticks: u64) -> u64 {
        if tuples == 0 {
            return ticks;
        }
        match self.median.median() {
            Some(m) if m > 0.0 => {
                let cap = self.k * m * tuples as f64;
                if (ticks as f64) > cap {
                    cap as u64
                } else {
                    ticks
                }
            }
            _ => ticks,
        }
    }
}

impl Policy for ClampedPolicy {
    #[inline]
    fn choose(&mut self) -> usize {
        self.inner.choose()
    }

    fn observe(&mut self, flavor: usize, tuples: u64, ticks: u64) {
        let clamped = self.clamped_ticks(tuples, ticks);
        if tuples > 0 {
            self.median.record(ticks as f64 / tuples as f64);
        }
        self.inner.observe(flavor, tuples, clamped);
    }

    fn arms(&self) -> usize {
        self.inner.arms()
    }

    fn name(&self) -> String {
        format!("clamp({:.0}x, {})", self.k, self.inner.name())
    }

    fn hint(&mut self, value: f64) {
        self.inner.hint(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{PolicyKind, VwGreedyParams};
    use crate::rng::SplitMix64;

    #[test]
    fn running_median_tracks_and_resists_outliers() {
        let mut m = RunningMedian::default();
        assert!(m.median().is_none());
        for _ in 0..8 {
            m.record(4.0);
        }
        assert_eq!(m.median(), Some(4.0));
        // A lone 10M-tick spike cannot move a median of 32 samples.
        m.record(10_000_000.0);
        for _ in 0..7 {
            m.record(4.0);
        }
        assert_eq!(m.median(), Some(4.0));
    }

    #[test]
    fn clamps_only_above_k_times_median() {
        let fixed = PolicyKind::Fixed(0).build(1, 0);
        let mut p = ClampedPolicy::new(fixed, 8.0);
        for _ in 0..8 {
            p.observe(0, 1000, 4000); // 4 ticks/tuple
        }
        // Below the cap: untouched. Above: capped at 8×4 ticks/tuple.
        assert_eq!(p.clamped_ticks(1000, 20_000), 20_000);
        assert_eq!(p.clamped_ticks(1000, 5_000_000_000), 32_000);
        assert_eq!(p.clamped_ticks(0, 7), 7);
    }

    /// The ROADMAP scenario: a synthetic multi-million-tick preemption
    /// outlier lands on the *best* flavor. With clamping the bandit's
    /// choice is unaffected; unclamped, the same trace locks the worse
    /// flavor in.
    #[test]
    fn preemption_outlier_does_not_flip_the_flavor_choice() {
        let params = VwGreedyParams {
            explore_period: 1024,
            exploit_period: 8,
            explore_length: 2,
        };
        let trace = |policy: &mut dyn Policy| -> Vec<usize> {
            let mut chosen = Vec::new();
            for call in 0..600u64 {
                let f = policy.choose();
                chosen.push(f);
                // Flavor 0 is honestly 2×cheaper; at call 300 one call of
                // flavor 0 is hit by a 20M-tick preemption.
                let ticks = match (call, f) {
                    (300, 0) => 20_000_000,
                    (_, 0) => 2_000,
                    _ => 4_000,
                };
                policy.observe(f, 1000, ticks);
            }
            chosen
        };

        let fraction_best_after = |chosen: &[usize]| {
            let tail = &chosen[316..380]; // the exploit phases after the spike
            tail.iter().filter(|&&f| f == 0).count() as f64 / tail.len() as f64
        };

        let mut clamped = ClampedPolicy::new(PolicyKind::VwGreedy(params).build(2, 7), 8.0);
        let with_clamp = fraction_best_after(&trace(&mut clamped));
        assert!(
            with_clamp > 0.9,
            "clamped policy should keep the honest best flavor: {with_clamp}"
        );

        let mut raw = crate::policy::VwGreedy::new(2, params, SplitMix64::new(7));
        let without = fraction_best_after(&trace(&mut raw));
        assert!(
            without < 0.5,
            "control: the unclamped policy should be derailed by the spike \
             (got {without}); if this starts passing, the scenario needs a \
             bigger outlier, not a weaker assertion"
        );
    }

    #[test]
    fn name_and_passthrough() {
        let mut p = ClampedPolicy::new(PolicyKind::Fixed(1).build(3, 0), 8.0);
        assert_eq!(p.arms(), 3);
        assert_eq!(p.choose(), 1);
        p.hint(0.5);
        assert!(p.name().starts_with("clamp(8x, "));
    }

    #[test]
    #[should_panic(expected = "must exceed 1")]
    fn k_below_one_rejected() {
        ClampedPolicy::new(PolicyKind::Fixed(0).build(1, 0), 0.5);
    }
}
