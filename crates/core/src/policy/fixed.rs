//! The non-adaptive baseline: always call the same flavor.
//!
//! This models a conventional build of the engine, where the shipped binary
//! contains exactly one implementation per primitive. Every "always X"
//! column of Tables 6–10 is a run under `FixedPolicy`.

use crate::policy::Policy;

/// Always selects the same flavor index.
#[derive(Debug, Clone)]
pub struct FixedPolicy {
    arms: usize,
    index: usize,
}

impl FixedPolicy {
    /// Creates a fixed policy. `index` must be a valid flavor index.
    pub fn new(arms: usize, index: usize) -> Self {
        assert!(
            index < arms,
            "fixed flavor {index} out of range ({arms} arms)"
        );
        FixedPolicy { arms, index }
    }
}

impl Policy for FixedPolicy {
    #[inline]
    fn choose(&mut self) -> usize {
        self.index
    }

    #[inline]
    fn observe(&mut self, _flavor: usize, _tuples: u64, _ticks: u64) {}

    fn arms(&self) -> usize {
        self.arms
    }

    fn name(&self) -> String {
        format!("fixed({})", self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_same_choice() {
        let mut p = FixedPolicy::new(3, 2);
        for _ in 0..100 {
            assert_eq!(p.choose(), 2);
            p.observe(2, 10, 10);
        }
        assert_eq!(p.arms(), 3);
        assert_eq!(p.name(), "fixed(2)");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        FixedPolicy::new(2, 2);
    }
}
