//! Flavor-selection policies: the multi-armed-bandit algorithms of §3.2.
//!
//! Each primitive *instance* owns one policy. Before every call the
//! expression evaluator asks the policy which flavor to run
//! ([`Policy::choose`]); after the call it reports the observed cost
//! ([`Policy::observe`]). Cost is ticks/tuple — lower is better (the paper's
//! "reward" is the negative of this).
//!
//! Implementations:
//! * [`VwGreedy`] — the paper's contribution (Listing 8 + the initial
//!   exploration sweep added after the trace simulations).
//! * [`EpsGreedy`], [`EpsFirst`], [`EpsDecreasing`] — the ε-family baselines
//!   of Table 5 (Vermorel & Mohri parameterization).
//! * [`Ucb1`] — a stationary-optimal baseline (Auer et al.), included
//!   because §3.2 discusses why stationary-optimal algorithms may fail here.
//! * [`FixedPolicy`] — always one flavor; models a non-adaptive build.

mod clamp;
mod eps;
mod fixed;
mod ucb;
mod vw_greedy;

pub use clamp::{ClampedPolicy, RunningMedian};
pub use eps::{EpsDecreasing, EpsFirst, EpsGreedy};
pub use fixed::FixedPolicy;
pub use ucb::Ucb1;
pub use vw_greedy::{VwGreedy, VwGreedyParams};

use crate::rng::SplitMix64;

/// A flavor-selection policy over `arms()` flavors.
pub trait Policy: Send {
    /// The flavor to use for the next primitive call.
    fn choose(&mut self) -> usize;

    /// Reports the observed cost of the last call: it ran flavor `flavor`
    /// over `tuples` tuples in `ticks` ticks.
    fn observe(&mut self, flavor: usize, tuples: u64, ticks: u64);

    /// Number of flavors the policy selects among.
    fn arms(&self) -> usize;

    /// Human-readable name with parameters, e.g. `vw-greedy(1024,256,32)`.
    fn name(&self) -> String;

    /// Optional context hint supplied by the caller *before* [`Policy::choose`]
    /// (e.g. observed selectivity, or bloom-filter size). Bandit policies
    /// ignore it; the hard-coded heuristics of §4.2 are implemented as a
    /// policy that decides on exactly this value.
    fn hint(&mut self, _value: f64) {}
}

/// A constructible description of a policy, used by configuration and by the
/// Table 5 simulation sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// Always use flavor `0` (or the given index).
    Fixed(usize),
    /// The paper's vw-greedy with (explore_period, exploit_period,
    /// explore_length).
    VwGreedy(VwGreedyParams),
    /// ε-greedy with exploration probability `eps`.
    EpsGreedy {
        /// Exploration probability per call.
        eps: f64,
    },
    /// ε-first: pure round-robin exploration for `explore_calls` calls, pure
    /// exploitation afterwards. (The ε of Table 5 times the expected horizon.)
    EpsFirst {
        /// Number of initial round-robin exploration calls.
        explore_calls: u64,
    },
    /// ε-decreasing with ε_t = min(1, eps0 / t).
    EpsDecreasing {
        /// Initial exploration weight.
        eps0: f64,
    },
    /// UCB1.
    Ucb1,
}

impl PolicyKind {
    /// Instantiates the policy for `arms` flavors with a deterministic seed.
    pub fn build(self, arms: usize, seed: u64) -> Box<dyn Policy> {
        assert!(arms > 0, "a policy needs at least one arm");
        let rng = SplitMix64::new(seed);
        match self {
            PolicyKind::Fixed(i) => Box::new(FixedPolicy::new(arms, i)),
            PolicyKind::VwGreedy(p) => Box::new(VwGreedy::new(arms, p, rng)),
            PolicyKind::EpsGreedy { eps } => Box::new(EpsGreedy::new(arms, eps, rng)),
            PolicyKind::EpsFirst { explore_calls } => Box::new(EpsFirst::new(arms, explore_calls)),
            PolicyKind::EpsDecreasing { eps0 } => Box::new(EpsDecreasing::new(arms, eps0, rng)),
            PolicyKind::Ucb1 => Box::new(Ucb1::new(arms)),
        }
    }
}

/// Per-arm running means, shared by the ε-family and UCB baselines.
#[derive(Debug, Clone)]
pub(crate) struct ArmMeans {
    ticks: Vec<f64>,
    tuples: Vec<f64>,
    pulls: Vec<u64>,
}

impl ArmMeans {
    pub(crate) fn new(arms: usize) -> Self {
        ArmMeans {
            ticks: vec![0.0; arms],
            tuples: vec![0.0; arms],
            pulls: vec![0; arms],
        }
    }

    #[inline]
    pub(crate) fn observe(&mut self, arm: usize, tuples: u64, ticks: u64) {
        self.ticks[arm] += ticks as f64;
        self.tuples[arm] += tuples as f64;
        self.pulls[arm] += 1;
    }

    /// Mean ticks/tuple of an arm; infinite when never pulled so that unseen
    /// arms are never considered "best" but always explorable.
    #[inline]
    pub(crate) fn mean_cost(&self, arm: usize) -> f64 {
        if self.tuples[arm] == 0.0 {
            f64::INFINITY
        } else {
            self.ticks[arm] / self.tuples[arm]
        }
    }

    pub(crate) fn pulls(&self, arm: usize) -> u64 {
        self.pulls[arm]
    }

    /// Arm with the lowest mean cost; unpulled arms first (cost = ∞ means
    /// they lose against any measured arm, so prefer returning the first
    /// unpulled arm explicitly to bootstrap).
    pub(crate) fn best_arm(&self) -> usize {
        if let Some(unpulled) = self.pulls.iter().position(|&p| p == 0) {
            return unpulled;
        }
        let mut best = 0;
        let mut best_cost = self.mean_cost(0);
        for a in 1..self.ticks.len() {
            let c = self.mean_cost(a);
            if c < best_cost {
                best = a;
                best_cost = c;
            }
        }
        best
    }

    pub(crate) fn arms(&self) -> usize {
        self.ticks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_means_track_best() {
        let mut m = ArmMeans::new(3);
        assert_eq!(m.best_arm(), 0); // unpulled arms bootstrap in order
        m.observe(0, 100, 1000); // 10/tuple
        assert_eq!(m.best_arm(), 1);
        m.observe(1, 100, 500); // 5/tuple
        assert_eq!(m.best_arm(), 2);
        m.observe(2, 100, 700); // 7/tuple
        assert_eq!(m.best_arm(), 1);
        assert_eq!(m.pulls(1), 1);
        assert_eq!(m.mean_cost(0), 10.0);
    }

    #[test]
    fn policy_kind_builds_all() {
        for kind in [
            PolicyKind::Fixed(0),
            PolicyKind::VwGreedy(VwGreedyParams::default()),
            PolicyKind::EpsGreedy { eps: 0.05 },
            PolicyKind::EpsFirst { explore_calls: 100 },
            PolicyKind::EpsDecreasing { eps0: 1.0 },
            PolicyKind::Ucb1,
        ] {
            let mut p = kind.build(3, 1);
            assert_eq!(p.arms(), 3);
            let c = p.choose();
            assert!(c < 3);
            p.observe(c, 100, 100);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn zero_arms_rejected() {
        PolicyKind::Ucb1.build(0, 1);
    }
}
