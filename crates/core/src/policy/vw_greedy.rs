//! vw-greedy: the paper's non-stationary-resistant bandit (Listing 8).
//!
//! Differences from classic ε-greedy, per §3.2:
//!
//! 1. exploration and exploitation alternate in a *deterministic pattern*
//!    instead of randomly;
//! 2. flavor choice looks only at *recent* performance (the mean over the
//!    current phase) instead of an all-time mean.
//!
//! Every `EXPLORE_PERIOD` calls a random flavor is run for `EXPLORE_LENGTH`
//! calls; otherwise, every `EXPLOIT_PERIOD` calls the flavor with the lowest
//! *last-phase* average cost is (re)chosen. The first two calls of each phase
//! are excluded from the measured window to avoid charging instruction-cache
//! misses to the flavor. Additionally, the first `EXPLORE_PERIOD` calls
//! perform an *initial sweep* testing every flavor for `EXPLORE_LENGTH`
//! calls — the extension §3.2 adds after the trace simulations.

use crate::policy::Policy;
use crate::rng::SplitMix64;

/// vw-greedy parameters. All should be powers of two (the paper makes the
/// phase tests a bitwise-and); `explore_period > exploit_period >=
/// explore_length >= 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VwGreedyParams {
    /// Calls between exploration phases.
    pub explore_period: u64,
    /// Length (in calls) of an exploitation phase, after which the best
    /// flavor is re-evaluated.
    pub exploit_period: u64,
    /// Length (in calls) of an exploration phase.
    pub explore_length: u64,
}

impl Default for VwGreedyParams {
    /// The demonstration settings of §3.2 (Figure 10): (1024, 256, 32).
    fn default() -> Self {
        VwGreedyParams {
            explore_period: 1024,
            exploit_period: 256,
            explore_length: 32,
        }
    }
}

impl VwGreedyParams {
    /// The best overall parameters found by the Table 5 simulation:
    /// (1024, 8, 2).
    pub fn table5_best() -> Self {
        VwGreedyParams {
            explore_period: 1024,
            exploit_period: 8,
            explore_length: 2,
        }
    }

    /// Validates the parameter constraints stated in §3.2.
    pub fn validate(&self) -> Result<(), String> {
        if self.explore_length == 0 {
            return Err("explore_length must be >= 1".into());
        }
        if self.exploit_period < self.explore_length {
            return Err("exploit_period must be >= explore_length".into());
        }
        if self.explore_period <= self.exploit_period {
            return Err("explore_period must be > exploit_period".into());
        }
        Ok(())
    }
}

/// The vw-greedy policy state, a faithful port of Listing 8.
#[derive(Debug, Clone)]
pub struct VwGreedy {
    params: VwGreedyParams,
    rng: SplitMix64,
    k: usize,

    // Classical primitive profiling (cumulative).
    calls: u64,
    tot_ticks: u64,
    tot_tuples: u64,

    // Measurement window of the current phase.
    prev_ticks: u64,
    prev_tuples: u64,
    calc_start: u64,
    calc_end: u64,

    // Next call count at which an exploration phase begins.
    next_explore: u64,

    // Last-phase average cost per flavor (ticks/tuple); ∞ = never measured.
    avg_cost: Vec<f64>,

    current: usize,
    /// Remaining flavors to test in the initial sweep (in index order).
    sweep_next: usize,
}

impl VwGreedy {
    /// Creates a policy over `arms` flavors.
    pub fn new(arms: usize, params: VwGreedyParams, rng: SplitMix64) -> Self {
        params
            .validate()
            .unwrap_or_else(|e| panic!("invalid vw-greedy parameters: {e}"));
        VwGreedy {
            params,
            rng,
            k: arms,
            calls: 0,
            tot_ticks: 0,
            tot_tuples: 0,
            prev_ticks: 0,
            prev_tuples: 0,
            calc_start: 0,
            // First phase: flavor 0 of the initial sweep, measured over
            // (calc_start=0 .. calc_end]; boundary handling mirrors
            // Listing 8 with calls starting at 0.
            calc_end: params.explore_length + 2,
            next_explore: params.explore_period,
            avg_cost: vec![f64::INFINITY; arms],
            current: 0,
            sweep_next: 1,
        }
    }

    /// The flavor with the lowest last-phase average cost (ties: lowest
    /// index; unmeasured flavors never win against measured ones unless all
    /// are unmeasured).
    fn best_flavor(&self) -> usize {
        let mut best = 0;
        let mut best_cost = self.avg_cost[0];
        for (i, &c) in self.avg_cost.iter().enumerate().skip(1) {
            if c < best_cost {
                best = i;
                best_cost = c;
            }
        }
        best
    }

    fn random_flavor(&mut self) -> usize {
        self.rng.gen_range(self.k)
    }

    /// Last-phase average costs (for inspection/EXPERIMENTS).
    pub fn avg_costs(&self) -> &[f64] {
        &self.avg_cost
    }

    /// The currently selected flavor.
    pub fn current_flavor(&self) -> usize {
        self.current
    }
}

impl Policy for VwGreedy {
    #[inline]
    fn choose(&mut self) -> usize {
        self.current
    }

    fn observe(&mut self, flavor: usize, tuples: u64, ticks: u64) {
        debug_assert_eq!(flavor, self.current, "observe must follow choose");
        // Classical primitive profiling.
        self.tot_ticks += ticks;
        self.tot_tuples += tuples;
        self.calls += 1;

        // vw-greedy switching.
        if self.calls == self.calc_end {
            // Average cost of the phase that just ended, charged to the
            // flavor that ran it.
            let dt = self.tot_tuples - self.prev_tuples;
            if dt > 0 {
                self.avg_cost[self.current] = (self.tot_ticks - self.prev_ticks) as f64 / dt as f64;
            }
            let phase_len = if self.sweep_next < self.k {
                // Initial sweep: test every flavor once, EXPLORE_LENGTH each.
                self.current = self.sweep_next;
                self.sweep_next += 1;
                self.params.explore_length
            } else if self.calls > self.next_explore {
                // Exploration.
                self.next_explore += self.params.explore_period;
                self.current = self.random_flavor();
                self.params.explore_length
            } else {
                // Exploitation.
                self.current = self.best_flavor();
                self.params.exploit_period
            };
            // Ignore the first 2 calls of the new phase (instruction-cache
            // warm-up), exactly as Listing 8.
            self.calc_start = self.calls + 2;
            self.calc_end = self.calc_start + phase_len;
        }
        if self.calls == self.calc_start {
            self.prev_tuples = self.tot_tuples;
            self.prev_ticks = self.tot_ticks;
        }
    }

    fn arms(&self) -> usize {
        self.k
    }

    fn name(&self) -> String {
        format!(
            "vw-greedy({},{},{})",
            self.params.explore_period, self.params.exploit_period, self.params.explore_length
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the policy with a synthetic cost function and returns the
    /// sequence of chosen flavors.
    fn drive(
        p: &mut VwGreedy,
        calls: usize,
        mut cost: impl FnMut(usize, usize) -> u64,
    ) -> Vec<usize> {
        let mut chosen = Vec::with_capacity(calls);
        for t in 0..calls {
            let f = p.choose();
            chosen.push(f);
            p.observe(f, 1000, cost(t, f) * 1000);
        }
        chosen
    }

    fn mk(params: VwGreedyParams, arms: usize) -> VwGreedy {
        VwGreedy::new(arms, params, SplitMix64::new(12345))
    }

    #[test]
    fn initial_sweep_tests_all_flavors() {
        let params = VwGreedyParams {
            explore_period: 256,
            exploit_period: 32,
            explore_length: 8,
        };
        let mut p = mk(params, 4);
        let chosen = drive(&mut p, 64, |_, _| 5);
        for f in 0..4 {
            assert!(
                chosen.contains(&f),
                "flavor {f} never tested in initial sweep: {chosen:?}"
            );
        }
    }

    #[test]
    fn converges_to_cheapest_stationary_flavor() {
        let mut p = mk(VwGreedyParams::default(), 3);
        // flavor 1 is cheapest.
        let chosen = drive(&mut p, 20_000, |_, f| [10, 3, 7][f]);
        let tail = &chosen[10_000..];
        let frac_best = tail.iter().filter(|&&f| f == 1).count() as f64 / tail.len() as f64;
        assert!(
            frac_best > 0.9,
            "expected >90% best-flavor calls in steady state, got {frac_best}"
        );
    }

    #[test]
    fn switches_when_best_flavor_changes() {
        let mut p = mk(VwGreedyParams::default(), 2);
        // Flavor 0 best for the first 8192 calls, then flavor 1.
        let chosen = drive(&mut p, 32_768, |t, f| {
            if t < 8192 {
                [2, 10][f]
            } else {
                [10, 2][f]
            }
        });
        let early = &chosen[4096..8192];
        let late = &chosen[16_384..];
        let early_f0 = early.iter().filter(|&&f| f == 0).count() as f64 / early.len() as f64;
        let late_f1 = late.iter().filter(|&&f| f == 1).count() as f64 / late.len() as f64;
        assert!(
            early_f0 > 0.85,
            "early phase should prefer flavor 0: {early_f0}"
        );
        assert!(
            late_f1 > 0.85,
            "late phase should prefer flavor 1: {late_f1}"
        );
    }

    #[test]
    fn deterioration_detected_within_exploit_period() {
        // §4.1: detecting deterioration of the current best happens every
        // EXPLOIT_PERIOD calls, which is fast.
        let params = VwGreedyParams {
            explore_period: 1024,
            exploit_period: 64,
            explore_length: 8,
        };
        let mut p = mk(params, 2);
        // flavor 0 is best until call 5000, then becomes terrible.
        let chosen = drive(&mut p, 10_000, |t, f| match (t < 5000, f) {
            (true, 0) => 2,
            (true, 1) => 4,
            (false, 0) => 50,
            (false, 1) => 4,
            _ => unreachable!(),
        });
        // Within ~2 exploitation phases + exploration, it must switch.
        let after = &chosen[5000 + 3 * 64 + 16..6000];
        let f1 = after.iter().filter(|&&f| f == 1).count() as f64 / after.len() as f64;
        assert!(f1 > 0.8, "should abandon deteriorated flavor quickly: {f1}");
    }

    #[test]
    fn explores_periodically() {
        let mut p = mk(VwGreedyParams::default(), 3);
        // Stationary costs; exploration still must revisit non-best arms.
        let chosen = drive(&mut p, 10_000, |_, f| [3, 10, 10][f]);
        let tail = &chosen[2048..];
        let explored: usize = tail.iter().filter(|&&f| f != 0).count();
        // ~ EXPLORE_LENGTH * (2/3) per EXPLORE_PERIOD of calls.
        assert!(explored > 0, "exploration must continue in steady state");
        let frac = explored as f64 / tail.len() as f64;
        assert!(
            frac < 0.15,
            "exploration overhead should be bounded: {frac}"
        );
    }

    #[test]
    fn zero_tuple_phases_do_not_poison_costs() {
        let mut p = mk(VwGreedyParams::default(), 2);
        for _ in 0..5000 {
            let f = p.choose();
            p.observe(f, 0, 17); // zero tuples: no division, avg untouched
        }
        assert!(p.avg_costs().iter().all(|c| c.is_infinite()));
    }

    #[test]
    fn single_arm_always_chooses_zero() {
        let mut p = mk(VwGreedyParams::default(), 1);
        let chosen = drive(&mut p, 5000, |_, _| 4);
        assert!(chosen.iter().all(|&f| f == 0));
    }

    #[test]
    fn params_validation() {
        assert!(VwGreedyParams::default().validate().is_ok());
        assert!(VwGreedyParams::table5_best().validate().is_ok());
        assert!(VwGreedyParams {
            explore_period: 8,
            exploit_period: 8,
            explore_length: 2
        }
        .validate()
        .is_err());
        assert!(VwGreedyParams {
            explore_period: 1024,
            exploit_period: 2,
            explore_length: 8
        }
        .validate()
        .is_err());
        assert!(VwGreedyParams {
            explore_period: 1024,
            exploit_period: 8,
            explore_length: 0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn name_includes_parameters() {
        let p = mk(VwGreedyParams::table5_best(), 2);
        assert_eq!(p.name(), "vw-greedy(1024,8,2)");
    }
}
