//! UCB1 (Auer, Cesa-Bianchi & Fischer 2002): optimal logarithmic regret for
//! *stationary* bandits.
//!
//! §3.2 motivates vw-greedy by noting flavors are not stationary processes,
//! "so [stationary-optimal algorithms] might perform poorly in practice".
//! We include UCB1 so that claim is testable on our traces.

use crate::policy::{ArmMeans, Policy};

/// UCB1 over cost minimization.
///
/// Costs (ticks/tuple) are normalized against the running maximum observed
/// cost so the exploration bonus and the exploitation term share a scale.
#[derive(Debug, Clone)]
pub struct Ucb1 {
    means: ArmMeans,
    calls: u64,
    max_cost_seen: f64,
}

impl Ucb1 {
    /// `new`.
    pub fn new(arms: usize) -> Self {
        Ucb1 {
            means: ArmMeans::new(arms),
            calls: 0,
            max_cost_seen: 1.0,
        }
    }
}

impl Policy for Ucb1 {
    fn choose(&mut self) -> usize {
        // Play each arm once first.
        for a in 0..self.means.arms() {
            if self.means.pulls(a) == 0 {
                return a;
            }
        }
        let ln_n = (self.calls.max(1) as f64).ln();
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for a in 0..self.means.arms() {
            // Reward in [0,1]: 1 - normalized cost.
            let reward = 1.0 - self.means.mean_cost(a) / self.max_cost_seen;
            let bonus = (2.0 * ln_n / self.means.pulls(a) as f64).sqrt();
            let score = reward + bonus;
            if score > best_score {
                best = a;
                best_score = score;
            }
        }
        best
    }

    fn observe(&mut self, flavor: usize, tuples: u64, ticks: u64) {
        self.calls += 1;
        self.means.observe(flavor, tuples, ticks);
        if tuples > 0 {
            let cost = ticks as f64 / tuples as f64;
            if cost > self.max_cost_seen {
                self.max_cost_seen = cost;
            }
        }
    }

    fn arms(&self) -> usize {
        self.means.arms()
    }

    fn name(&self) -> String {
        "ucb1".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulls_every_arm_once_first() {
        let mut p = Ucb1::new(4);
        let mut seen = Vec::new();
        for _ in 0..4 {
            let f = p.choose();
            seen.push(f);
            p.observe(f, 1000, 1000);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn converges_on_stationary_costs() {
        let mut p = Ucb1::new(3);
        let costs = [8u64, 2, 6];
        let mut chosen = Vec::new();
        for _ in 0..20_000 {
            let f = p.choose();
            chosen.push(f);
            p.observe(f, 1000, costs[f] * 1000);
        }
        let tail_best = chosen[10_000..].iter().filter(|&&f| f == 1).count() as f64 / 10_000.0;
        assert!(
            tail_best > 0.9,
            "UCB1 should exploit the best arm: {tail_best}"
        );
    }

    #[test]
    fn beats_constant_exploration_on_stationary_costs() {
        // UCB1's strength (logarithmic regret) versus ε-greedy's linear
        // regret: with stationary costs, ε-greedy keeps paying the ε
        // exploration tax forever while UCB1's exploration dies out.
        use crate::policy::EpsGreedy;
        use crate::rng::SplitMix64;
        let costs = [8u64, 2, 6];
        let run = |p: &mut dyn Policy| -> u64 {
            let mut total = 0;
            for _ in 0..50_000 {
                let f = p.choose();
                let c = costs[f] * 1000;
                p.observe(f, 1000, c);
                total += c;
            }
            total
        };
        let ucb_total = run(&mut Ucb1::new(3));
        let eps_total = run(&mut EpsGreedy::new(3, 0.1, SplitMix64::new(3)));
        let opt_total = 50_000 * 2 * 1000;
        let ucb_ratio = ucb_total as f64 / opt_total as f64;
        let eps_ratio = eps_total as f64 / opt_total as f64;
        assert!(ucb_ratio < 1.05, "UCB1 regret should vanish: {ucb_ratio}");
        // ε-greedy pays ~ε·(mean excess)/best ≈ 1.11 forever.
        assert!(
            eps_ratio > ucb_ratio + 0.03,
            "eps-greedy ({eps_ratio}) should pay more than UCB1 ({ucb_ratio})"
        );
    }
}
