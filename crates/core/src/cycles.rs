//! Cheap per-call cost measurement.
//!
//! The paper's reward signal is "CPU cycles per tuple", measured around every
//! primitive call — affordable precisely *because* execution is vectorized,
//! so one measurement is amortized over ~1024 tuples (§1).
//!
//! On `x86_64` we read the time-stamp counter (`rdtsc`), which on all modern
//! CPUs ticks at a constant rate. Elsewhere we fall back to a monotonic
//! nanosecond clock. The unit ("ticks") is opaque: everything the framework
//! does with it — comparing flavors, averaging per tuple, ratios against
//! OPT — is unit-invariant.

/// Returns the current tick count.
///
/// Monotonic within a thread; suitable only for *differences*.
#[inline(always)]
pub fn ticks_now() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `_rdtsc` has no preconditions; it is available on every
        // x86_64 CPU.
        unsafe { core::arch::x86_64::_rdtsc() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        use std::time::Instant;
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        let epoch = *EPOCH.get_or_init(Instant::now);
        epoch.elapsed().as_nanos() as u64
    }
}

/// Measures the tick cost of a closure, returning `(result, ticks)`.
#[inline]
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let t0 = ticks_now();
    let out = f();
    let t1 = ticks_now();
    (out, t1.saturating_sub(t0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_monotonic_nondecreasing() {
        let a = ticks_now();
        let b = ticks_now();
        assert!(b >= a);
    }

    #[test]
    fn timed_returns_value_and_cost() {
        let (v, t) = timed(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert_eq!(v, (0..10_000u64).map(|i| i.wrapping_mul(i)).sum::<u64>());
        // Any real work costs at least one tick on both backends.
        assert!(t > 0);
    }

    #[test]
    fn timed_trivial_closure_is_cheap() {
        let (_, t) = timed(|| ());
        // Sanity bound: timing overhead stays far below a millisecond's worth
        // of ticks even on slow TSCs (~1e6 ticks/ms).
        assert!(t < 10_000_000);
    }
}
