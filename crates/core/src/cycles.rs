//! Cheap per-call cost measurement.
//!
//! The paper's reward signal is "CPU cycles per tuple", measured around every
//! primitive call — affordable precisely *because* execution is vectorized,
//! so one measurement is amortized over ~1024 tuples (§1).
//!
//! On `x86_64` we read the time-stamp counter (`rdtsc`), which on all modern
//! CPUs ticks at a constant rate. Elsewhere we fall back to a monotonic
//! nanosecond clock. The unit ("ticks") is opaque: everything the framework
//! does with it — comparing flavors, averaging per tuple, ratios against
//! OPT — is unit-invariant.

/// The monotonic-clock fallback: nanoseconds since a process-wide epoch.
///
/// `Instant` is guaranteed monotonic by the standard library, so ticks
/// from this backend never decrease — not just within a thread but across
/// threads too. Compiled (and unit-tested) on every target; it is the
/// `ticks_now` implementation wherever `rdtsc` is unavailable.
#[inline]
pub fn instant_ticks() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// Returns the current tick count.
///
/// Monotonic within a thread; suitable only for *differences*.
#[inline(always)]
pub fn ticks_now() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `_rdtsc` has no preconditions; it is available on every
        // x86_64 CPU.
        unsafe { core::arch::x86_64::_rdtsc() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        instant_ticks()
    }
}

/// Measures the tick cost of a closure, returning `(result, ticks)`.
#[inline]
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let t0 = ticks_now();
    let out = f();
    let t1 = ticks_now();
    (out, t1.saturating_sub(t0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_monotonic_nondecreasing() {
        // On x86_64 this reads raw rdtsc, which is only per-core monotonic:
        // a thread migrating between cores with imperfectly-synced TSCs can
        // observe a small backward step. Tolerate sub-millisecond skew
        // (~1M ticks) so the test catches a broken backend (zero, random,
        // wrapping) without flaking on core migration.
        const SKEW_BUDGET: u64 = 1_000_000;
        let start = ticks_now();
        let mut prev = start;
        for _ in 0..100_000 {
            let t = ticks_now();
            assert!(
                t >= prev || prev - t < SKEW_BUDGET,
                "ticks_now went backwards beyond TSC skew: {prev} -> {t}"
            );
            prev = t;
        }
        // Over a real wait, elapsed time dwarfs any skew: strictly advances.
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(ticks_now() > start, "ticks did not advance across a sleep");
    }

    #[test]
    fn instant_fallback_is_monotonic_and_advances() {
        // The non-x86_64 backend, exercised on every target.
        let mut prev = instant_ticks();
        for _ in 0..10_000 {
            let t = instant_ticks();
            assert!(t >= prev, "instant_ticks went backwards: {prev} -> {t}");
            prev = t;
        }
        // A real wait must advance the clock (ns-resolution monotonic time).
        let before = instant_ticks();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let after = instant_ticks();
        assert!(after > before, "clock did not advance across a sleep");
    }

    #[test]
    fn instant_fallback_is_monotonic_across_threads() {
        // Instant is globally monotonic: a tick observed in one thread is
        // never exceeded by an *earlier* tick in another.
        let before = instant_ticks();
        let from_thread = std::thread::spawn(instant_ticks).join().unwrap();
        let after = instant_ticks();
        assert!(from_thread >= before);
        assert!(after >= from_thread);
    }

    #[test]
    fn timed_returns_value_and_cost() {
        let (v, t) = timed(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert_eq!(v, (0..10_000u64).map(|i| i.wrapping_mul(i)).sum::<u64>());
        // Any real work costs at least one tick on both backends.
        assert!(t > 0);
    }

    #[test]
    fn timed_trivial_closure_is_cheap() {
        // Min-of-3: a single-shot bound can be blown by one OS preemption
        // between the two tick reads.
        let t = (0..3).map(|_| timed(|| ()).1).min().unwrap();
        // Sanity bound: timing overhead stays far below a millisecond's worth
        // of ticks even on slow TSCs (~1e6 ticks/ms).
        assert!(t < 10_000_000);
    }
}
