#![warn(missing_docs)]
//! # ma-core — the Micro Adaptivity framework
//!
//! This crate is the paper's primary contribution, engine-agnostic:
//!
//! * [`flavor`] / [`dictionary`] — the *Primitive Dictionary* that maps a
//!   primitive signature string to a set of alternative implementations
//!   ("flavors"), each with provenance metadata, plus a registration
//!   mechanism for loading flavor libraries (§1.1 *Flavors*, §3.1).
//! * [`cycles`] / [`profile`] — cheap per-call cost measurement: the reward
//!   signal of the bandit (§1, "Primitive Functions").
//! * [`aph`] — the *Approximated Performance History*: a bounded 512-bucket
//!   performance histogram whose neighbouring buckets merge pairwise when
//!   full (§1.1 *APH*). Every figure in the paper plotting
//!   "cycles/tuple during a query" is an APH.
//! * [`policy`] — multi-armed-bandit flavor-selection policies:
//!   the paper's [`policy::VwGreedy`] plus the baselines it is evaluated
//!   against in Table 5 (ε-greedy, ε-first, ε-decreasing) and a UCB1
//!   extension.
//! * [`trace`] / [`sim`] / [`scores`] — the trace-driven simulator used in
//!   §3.2 "Simulations on traces": replay recorded per-call flavor costs
//!   against any policy and score it against the per-call oracle OPT
//!   (Absolute/OPT and Relative/OPT, Table 5).

pub mod adaptive;
pub mod aph;
pub mod cycles;
pub mod dictionary;
pub mod flavor;
pub mod policy;
pub mod profile;
pub mod rng;
pub mod scores;
pub mod sim;
pub mod trace;

pub use adaptive::AdaptiveDispatch;
pub use aph::{Aph, AphBucket};
pub use cycles::{instant_ticks, ticks_now};
pub use dictionary::PrimitiveDictionary;
pub use flavor::{FlavorInfo, FlavorSet, FlavorSource};
pub use policy::{Policy, PolicyKind, VwGreedyParams};
pub use profile::PrimitiveProfile;
pub use rng::SplitMix64;
pub use scores::{ScoreBoard, SimScore};
pub use sim::{simulate_instance, simulate_workload, SimResult};
pub use trace::InstanceTrace;
