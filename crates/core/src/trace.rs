//! Recorded flavor traces.
//!
//! §3.2 "Simulations on traces": the authors profiled a TPC-H run once per
//! flavor (the system sticking to one flavor for the whole run) and then
//! replayed the recorded per-call costs against candidate MAB algorithms.
//! An [`InstanceTrace`] is that recording for one primitive instance: for
//! every call, the tuple count and the cost *each* flavor exhibited at that
//! point of the query.

/// Per-call costs of all flavors of one primitive instance.
#[derive(Debug, Clone)]
pub struct InstanceTrace {
    /// Identifier, e.g. `"Q12/sel_lt_i32_col_val#3"`.
    pub name: String,
    /// Tuples processed at each call (shared by all flavors — they process
    /// the same data stream).
    pub tuples: Vec<u64>,
    /// `costs[f][t]` = ticks flavor `f` takes (or took) at call `t`.
    pub costs: Vec<Vec<u64>>,
}

impl InstanceTrace {
    /// Builds a trace, validating shape.
    pub fn new(name: impl Into<String>, tuples: Vec<u64>, costs: Vec<Vec<u64>>) -> Self {
        assert!(!costs.is_empty(), "a trace needs at least one flavor");
        let n = tuples.len();
        assert!(
            costs.iter().all(|c| c.len() == n),
            "every flavor must have one cost per call"
        );
        InstanceTrace {
            name: name.into(),
            tuples,
            costs,
        }
    }

    /// Number of calls.
    pub fn calls(&self) -> usize {
        self.tuples.len()
    }

    /// Number of flavors.
    pub fn flavors(&self) -> usize {
        self.costs.len()
    }

    /// Total ticks if one fixed flavor is used throughout.
    pub fn fixed_ticks(&self, flavor: usize) -> u64 {
        self.costs[flavor].iter().sum()
    }

    /// Total ticks of the per-call oracle OPT (minimum over flavors at every
    /// call) — the denominator of the Table 5 scores.
    pub fn opt_ticks(&self) -> u64 {
        (0..self.calls())
            .map(|t| self.costs.iter().map(|c| c[t]).min().unwrap_or(0))
            .sum()
    }

    /// The single best *fixed* flavor in hindsight.
    pub fn best_fixed_flavor(&self) -> usize {
        (0..self.flavors())
            .min_by_key(|&f| self.fixed_ticks(f))
            .unwrap_or(0)
    }

    /// Total tuples across all calls.
    pub fn total_tuples(&self) -> u64 {
        self.tuples.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> InstanceTrace {
        InstanceTrace::new(
            "t",
            vec![10, 10, 10],
            vec![vec![5, 50, 5], vec![20, 20, 20]],
        )
    }

    #[test]
    fn shape_accessors() {
        let t = mk();
        assert_eq!(t.calls(), 3);
        assert_eq!(t.flavors(), 2);
        assert_eq!(t.total_tuples(), 30);
    }

    #[test]
    fn fixed_and_opt_ticks() {
        let t = mk();
        assert_eq!(t.fixed_ticks(0), 60);
        assert_eq!(t.fixed_ticks(1), 60);
        // OPT switches: 5 + 20 + 5.
        assert_eq!(t.opt_ticks(), 30);
        assert!(t.opt_ticks() <= t.fixed_ticks(t.best_fixed_flavor()));
    }

    #[test]
    fn best_fixed_flavor_hindsight() {
        let t = InstanceTrace::new("t", vec![1, 1], vec![vec![10, 10], vec![5, 30]]);
        assert_eq!(t.best_fixed_flavor(), 0);
    }

    #[test]
    #[should_panic(expected = "one cost per call")]
    fn ragged_costs_rejected() {
        InstanceTrace::new("t", vec![1, 1], vec![vec![1]]);
    }

    #[test]
    #[should_panic(expected = "at least one flavor")]
    fn empty_costs_rejected() {
        InstanceTrace::new("t", vec![1], vec![]);
    }
}
