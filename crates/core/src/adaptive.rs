//! Adaptive dispatch: the per-instance glue between a [`FlavorSet`], a
//! bandit [`Policy`] and profiling.
//!
//! One `AdaptiveDispatch` exists per *primitive instance* in a query plan
//! (§1.1 distinguishes instances from functions because each instance sees a
//! different data stream). On every call it asks the policy for a flavor,
//! times the call, and feeds the observation back — this is the change §3.2
//! describes inside the expression evaluator.

use std::sync::Arc;

use crate::cycles::ticks_now;
use crate::flavor::FlavorSet;
use crate::policy::Policy;
use crate::profile::PrimitiveProfile;

/// Chooses, times and profiles calls to one primitive instance.
pub struct AdaptiveDispatch<F: Copy> {
    set: Arc<FlavorSet<F>>,
    policy: Box<dyn Policy>,
    profile: PrimitiveProfile,
    /// APHs per flavor are optionally kept for figure generation
    /// (Fig. 11 plots per-flavor histories alongside the adaptive run).
    last_flavor: usize,
}

impl<F: Copy> AdaptiveDispatch<F> {
    /// Creates a dispatcher. The policy must have been built with
    /// `set.len()` arms.
    pub fn new(set: Arc<FlavorSet<F>>, policy: Box<dyn Policy>) -> Self {
        assert_eq!(
            policy.arms(),
            set.len(),
            "policy arms must match flavor count for {}",
            set.signature()
        );
        AdaptiveDispatch {
            set,
            policy,
            profile: PrimitiveProfile::with_aph(),
            last_flavor: 0,
        }
    }

    /// Invokes the instance once over `tuples` tuples: the policy picks a
    /// flavor, `call` runs it, the observed cost is recorded.
    #[inline]
    pub fn invoke<R>(&mut self, tuples: u64, call: impl FnOnce(F) -> R) -> R {
        let fi = self.policy.choose();
        self.last_flavor = fi;
        let f = self.set.flavor(fi);
        let t0 = ticks_now();
        let out = call(f);
        let ticks = ticks_now().saturating_sub(t0);
        self.policy.observe(fi, tuples, ticks);
        self.profile.record(tuples, ticks);
        out
    }

    /// The flavor used by the most recent call.
    pub fn last_flavor(&self) -> usize {
        self.last_flavor
    }

    /// The flavor set driving this instance.
    pub fn set(&self) -> &Arc<FlavorSet<F>> {
        &self.set
    }

    /// Cumulative + APH profile of this instance.
    pub fn profile(&self) -> &PrimitiveProfile {
        &self.profile
    }

    /// The policy (e.g. to inspect vw-greedy state in reports).
    pub fn policy(&self) -> &dyn Policy {
        self.policy.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flavor::{FlavorInfo, FlavorSource};
    use crate::policy::PolicyKind;

    type SumFn = fn(&[u64]) -> u64;

    fn sum_loop(v: &[u64]) -> u64 {
        let mut acc = 0;
        for &x in v {
            acc += x;
        }
        acc
    }
    fn sum_iter(v: &[u64]) -> u64 {
        v.iter().sum()
    }

    fn mk_set() -> FlavorSet<SumFn> {
        let mut s = FlavorSet::new(
            "aggr_sum_u64",
            FlavorInfo::new("loop", FlavorSource::Default),
            sum_loop as SumFn,
        );
        s.register(
            FlavorInfo::new("iter", FlavorSource::CompilerStyle),
            sum_iter,
        );
        s
    }

    #[test]
    fn invoke_runs_and_profiles() {
        let set = Arc::new(mk_set());
        let policy = PolicyKind::Fixed(1).build(2, 0);
        let mut d = AdaptiveDispatch::new(set, policy);
        let data: Vec<u64> = (0..1000).collect();
        let out = d.invoke(1000, |f| f(&data));
        assert_eq!(out, 499_500);
        assert_eq!(d.last_flavor(), 1);
        assert_eq!(d.profile().calls, 1);
        assert_eq!(d.profile().tot_tuples, 1000);
    }

    #[test]
    fn adaptive_policy_exercises_both_flavors() {
        let set = Arc::new(mk_set());
        let policy = PolicyKind::VwGreedy(crate::policy::VwGreedyParams {
            explore_period: 64,
            exploit_period: 16,
            explore_length: 4,
        })
        .build(2, 9);
        let mut d = AdaptiveDispatch::new(set, policy);
        let data: Vec<u64> = (0..1024).collect();
        let mut used = [false, false];
        for _ in 0..512 {
            d.invoke(1024, |f| f(&data));
            used[d.last_flavor()] = true;
        }
        assert!(used[0] && used[1], "both flavors should be exercised");
        assert_eq!(d.profile().calls, 512);
        assert!(d.profile().tot_ticks > 0);
    }

    #[test]
    #[should_panic(expected = "policy arms must match")]
    fn arm_mismatch_panics() {
        let set = Arc::new(mk_set());
        let policy = PolicyKind::Fixed(0).build(3, 0);
        AdaptiveDispatch::new(set, policy);
    }
}
