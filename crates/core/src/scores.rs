//! The Table 5 scores: Absolute/OPT and Relative/OPT.
//!
//! §3.2: the *absolute* score sums the times of the algorithm's choices over
//! the whole workload and divides by the sum of OPT's times — the overall
//! workload impact. The *relative* score averages the per-instance
//! algorithm/OPT ratios — the average benefit per primitive. Instances that
//! cost many cycles can make the two diverge.

use crate::sim::SimResult;

/// A scored policy over a workload of instance traces.
#[derive(Debug, Clone)]
pub struct SimScore {
    /// Policy display name.
    pub policy: String,
    /// Σ policy ticks / Σ OPT ticks over all instances.
    pub absolute_over_opt: f64,
    /// Mean over instances of (policy ticks / OPT ticks).
    pub relative_over_opt: f64,
}

impl SimScore {
    /// The paper's ranking key: the average of the two scores.
    pub fn average(&self) -> f64 {
        (self.absolute_over_opt + self.relative_over_opt) / 2.0
    }

    /// Computes both scores from per-instance simulation results.
    pub fn from_results(policy: impl Into<String>, results: &[SimResult]) -> Self {
        assert!(!results.is_empty(), "need at least one simulated instance");
        let tot_policy: u64 = results.iter().map(|r| r.policy_ticks).sum();
        let tot_opt: u64 = results.iter().map(|r| r.opt_ticks).sum();
        let absolute = if tot_opt == 0 {
            1.0
        } else {
            tot_policy as f64 / tot_opt as f64
        };
        let relative =
            results.iter().map(SimResult::ratio_to_opt).sum::<f64>() / results.len() as f64;
        SimScore {
            policy: policy.into(),
            absolute_over_opt: absolute,
            relative_over_opt: relative,
        }
    }
}

/// A sortable collection of policy scores (one Table 5).
#[derive(Debug, Clone, Default)]
pub struct ScoreBoard {
    scores: Vec<SimScore>,
}

impl ScoreBoard {
    /// An empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a score.
    pub fn push(&mut self, score: SimScore) {
        self.scores.push(score);
    }

    /// Scores sorted by ascending average (best first), ties broken by name
    /// for stable output.
    pub fn ranked(&self) -> Vec<&SimScore> {
        let mut v: Vec<&SimScore> = self.scores.iter().collect();
        v.sort_by(|a, b| {
            a.average()
                .partial_cmp(&b.average())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.policy.cmp(&b.policy))
        });
        v
    }

    /// Number of scored policies.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Renders as an aligned text table (same columns as Table 5).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>12} {:>12} {:>9}\n",
            "Algorithm", "Absolute/OPT", "Relative/OPT", "Average"
        ));
        for s in self.ranked() {
            out.push_str(&format!(
                "{:<28} {:>12.3} {:>12.3} {:>9.3}\n",
                s.policy,
                s.absolute_over_opt,
                s.relative_over_opt,
                s.average()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimResult;

    fn res(instance: &str, policy_ticks: u64, opt_ticks: u64) -> SimResult {
        SimResult {
            instance: instance.into(),
            policy: "p".into(),
            policy_ticks,
            opt_ticks,
            choices: vec![],
        }
    }

    #[test]
    fn absolute_weighs_by_instance_size() {
        // Instance A is huge and optimal; instance B tiny and 2x off.
        let results = vec![res("a", 1_000_000, 1_000_000), res("b", 20, 10)];
        let s = SimScore::from_results("p", &results);
        assert!(s.absolute_over_opt < 1.001, "abs {}", s.absolute_over_opt);
        // Relative averages the ratios: (1.0 + 2.0)/2.
        assert!((s.relative_over_opt - 1.5).abs() < 1e-9);
        assert!(s.average() > 1.0);
    }

    #[test]
    fn ranked_orders_by_average() {
        let mut b = ScoreBoard::new();
        b.push(SimScore {
            policy: "worse".into(),
            absolute_over_opt: 1.2,
            relative_over_opt: 1.2,
        });
        b.push(SimScore {
            policy: "better".into(),
            absolute_over_opt: 1.01,
            relative_over_opt: 1.03,
        });
        let ranked = b.ranked();
        assert_eq!(ranked[0].policy, "better");
        assert_eq!(ranked[1].policy, "worse");
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn render_contains_header_and_rows() {
        let mut b = ScoreBoard::new();
        b.push(SimScore {
            policy: "vw-greedy(1024,8,2)".into(),
            absolute_over_opt: 1.015,
            relative_over_opt: 1.011,
        });
        let txt = b.render();
        assert!(txt.contains("Absolute/OPT"));
        assert!(txt.contains("vw-greedy(1024,8,2)"));
        assert!(txt.contains("1.015"));
    }

    #[test]
    fn zero_opt_guard() {
        let s = SimScore::from_results("p", &[res("a", 0, 0)]);
        assert_eq!(s.absolute_over_opt, 1.0);
        assert_eq!(s.relative_over_opt, 1.0);
    }
}
