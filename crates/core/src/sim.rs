//! Trace-driven policy simulation (§3.2 "Simulations on traces").

use crate::policy::{Policy, PolicyKind};
use crate::trace::InstanceTrace;

/// Outcome of replaying one policy over one instance trace.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Instance name.
    pub instance: String,
    /// Policy name.
    pub policy: String,
    /// Total ticks the policy's choices cost.
    pub policy_ticks: u64,
    /// Total ticks of the per-call oracle.
    pub opt_ticks: u64,
    /// Per-call chosen flavors (for plotting / debugging).
    pub choices: Vec<usize>,
}

impl SimResult {
    /// `policy_ticks / opt_ticks`; 1.0 means optimal.
    pub fn ratio_to_opt(&self) -> f64 {
        if self.opt_ticks == 0 {
            1.0
        } else {
            self.policy_ticks as f64 / self.opt_ticks as f64
        }
    }
}

/// Replays `policy` over a single instance trace: at call `t` the policy's
/// chosen flavor incurs that flavor's recorded cost, which is then fed back
/// as the observation.
pub fn simulate_instance(trace: &InstanceTrace, policy: &mut dyn Policy) -> SimResult {
    assert_eq!(
        policy.arms(),
        trace.flavors(),
        "policy arms must match trace flavors"
    );
    let calls = trace.calls();
    let mut choices = Vec::with_capacity(calls);
    let mut total = 0u64;
    for t in 0..calls {
        let f = policy.choose();
        let cost = trace.costs[f][t];
        policy.observe(f, trace.tuples[t], cost);
        total += cost;
        choices.push(f);
    }
    SimResult {
        instance: trace.name.clone(),
        policy: policy.name(),
        policy_ticks: total,
        opt_ticks: trace.opt_ticks(),
        choices,
    }
}

/// Replays a policy *kind* over a whole workload of instance traces, building
/// a fresh policy per instance (as the real system keeps independent state
/// per primitive instance). Seeds are derived per instance for determinism.
pub fn simulate_workload(traces: &[InstanceTrace], kind: PolicyKind, seed: u64) -> Vec<SimResult> {
    traces
        .iter()
        .enumerate()
        .map(|(i, tr)| {
            let mut policy = kind.build(tr.flavors(), seed ^ (i as u64).wrapping_mul(0x9E37));
            simulate_instance(tr, policy.as_mut())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::VwGreedyParams;

    fn stationary_trace(best: usize) -> InstanceTrace {
        let calls = 16_384;
        let mut costs: Vec<Vec<u64>> = (0..3).map(|_| Vec::with_capacity(calls)).collect();
        for _ in 0..calls {
            for (f, c) in costs.iter_mut().enumerate() {
                c.push(if f == best { 300 } else { 900 });
            }
        }
        InstanceTrace::new("stationary", vec![100; calls], costs)
    }

    fn switching_trace() -> InstanceTrace {
        // flavor 0 best in first half, flavor 1 best in second half; the gap
        // is large so a non-stationary-capable policy must switch.
        let calls = 32_768;
        let mut c0 = Vec::with_capacity(calls);
        let mut c1 = Vec::with_capacity(calls);
        for t in 0..calls {
            if t < calls / 2 {
                c0.push(200);
                c1.push(1000);
            } else {
                c0.push(1000);
                c1.push(200);
            }
        }
        InstanceTrace::new("switching", vec![100; calls], vec![c0, c1])
    }

    #[test]
    fn fixed_policy_matches_fixed_ticks() {
        let tr = stationary_trace(1);
        let mut p = PolicyKind::Fixed(1).build(3, 0);
        let r = simulate_instance(&tr, p.as_mut());
        assert_eq!(r.policy_ticks, tr.fixed_ticks(1));
        assert_eq!(r.ratio_to_opt(), 1.0);
    }

    #[test]
    fn vw_greedy_near_opt_on_stationary() {
        let tr = stationary_trace(2);
        let mut p = PolicyKind::VwGreedy(VwGreedyParams::table5_best()).build(3, 42);
        let r = simulate_instance(&tr, p.as_mut());
        let ratio = r.ratio_to_opt();
        assert!(ratio < 1.1, "vw-greedy ratio {ratio} too far from OPT");
    }

    #[test]
    fn vw_greedy_beats_eps_first_on_switching_trace() {
        // Discovering that a *non-current* flavor improved requires an
        // exploration phase to hit it (§4.1: "takes multiple EXPLORE_PERIOD
        // phases"), so average ratios over several seeds.
        let tr = switching_trace();
        let seeds = [1u64, 7, 42, 99, 1234];
        let mut rvw = 0.0;
        let mut ref_ = 0.0;
        for &s in &seeds {
            let mut vw = PolicyKind::VwGreedy(VwGreedyParams::table5_best()).build(2, s);
            let mut ef = PolicyKind::EpsFirst { explore_calls: 32 }.build(2, s);
            rvw += simulate_instance(&tr, vw.as_mut()).ratio_to_opt();
            ref_ += simulate_instance(&tr, ef.as_mut()).ratio_to_opt();
        }
        rvw /= seeds.len() as f64;
        ref_ /= seeds.len() as f64;
        assert!(
            rvw < ref_,
            "vw-greedy ({rvw}) should beat eps-first ({ref_}) when the best flavor changes"
        );
        assert!(rvw < 1.6, "vw-greedy should track the switch: {rvw}");
        // ε-first commits to the first-half winner and pays ~3x.
        assert!(ref_ > 2.0, "eps-first should be hurt by the switch: {ref_}");
    }

    #[test]
    fn workload_sim_is_deterministic() {
        let traces = vec![stationary_trace(0), switching_trace()];
        let a = simulate_workload(&traces, PolicyKind::EpsGreedy { eps: 0.05 }, 7);
        let b = simulate_workload(&traces, PolicyKind::EpsGreedy { eps: 0.05 }, 7);
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.policy_ticks, y.policy_ticks);
            assert_eq!(x.choices, y.choices);
        }
    }

    #[test]
    #[should_panic(expected = "policy arms must match")]
    fn arm_mismatch_rejected() {
        let tr = stationary_trace(0);
        let mut p = PolicyKind::Fixed(0).build(2, 0);
        simulate_instance(&tr, p.as_mut());
    }
}
