//! The Primitive Dictionary.
//!
//! §1.1: "The primitive signature string is used in the Primitive Dictionary
//! component of the query evaluator to implement function resolution; hence
//! this dictionary maps signature strings into function pointers. As part of
//! the Micro Adaptivity feature, we changed the Primitive Dictionary so as to
//! allow it to store multiple function pointers for each signature."
//!
//! Because different primitive families have different concrete function
//! types, the dictionary stores type-erased [`FlavorSet`]s and hands back the
//! typed set on lookup. A mismatching type at lookup is a plan-construction
//! bug and reported as such.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use crate::flavor::{FlavorInfo, FlavorSet};

/// One dictionary entry: the type-erased flavor set plus an untyped copy
/// of its metadata, so reporting/introspection code can enumerate flavors
/// without knowing the concrete function type `F`.
struct Entry {
    set: Box<dyn Any + Send + Sync>,
    infos: Vec<FlavorInfo>,
}

/// Maps primitive signature strings to flavor sets.
#[derive(Default)]
pub struct PrimitiveDictionary {
    entries: HashMap<String, Entry>,
}

impl PrimitiveDictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the flavor set for its signature.
    ///
    /// Registration is dynamic: flavor libraries may call this at startup or
    /// while the system is active (§1.1).
    pub fn register<F>(&mut self, set: FlavorSet<F>)
    where
        F: Copy + Send + Sync + 'static,
    {
        let infos = set.infos().to_vec();
        self.entries.insert(
            set.signature().to_string(),
            Entry {
                set: Box::new(Arc::new(set)),
                infos,
            },
        );
    }

    /// Looks up the flavor set for `signature` with concrete function type
    /// `F`. Returns `None` when the signature is unknown.
    ///
    /// # Panics
    /// If the signature exists but was registered with a different function
    /// type — a bug in plan construction, not a runtime condition.
    pub fn lookup<F>(&self, signature: &str) -> Option<Arc<FlavorSet<F>>>
    where
        F: Copy + Send + Sync + 'static,
    {
        self.entries.get(signature).map(|e| {
            e.set
                .downcast_ref::<Arc<FlavorSet<F>>>()
                .unwrap_or_else(|| {
                    panic!("primitive {signature} registered with a different function type")
                })
                .clone()
        })
    }

    /// Whether a signature is registered.
    pub fn contains(&self, signature: &str) -> bool {
        self.entries.contains_key(signature)
    }

    /// Flavor metadata for `signature`, without needing the concrete
    /// function type. Returns `None` for unknown signatures.
    pub fn flavor_infos(&self, signature: &str) -> Option<&[FlavorInfo]> {
        self.entries.get(signature).map(|e| e.infos.as_slice())
    }

    /// Flavor names for `signature`, index-aligned with the set's flavors.
    pub fn flavor_names(&self, signature: &str) -> Option<Vec<&'static str>> {
        self.flavor_infos(signature)
            .map(|infos| infos.iter().map(|i| i.name).collect())
    }

    /// All registered signatures (unordered).
    pub fn signatures(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(|s| s.as_str())
    }

    /// Number of registered signatures.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flavor::{FlavorInfo, FlavorSource};

    type SelFn = fn(&[i32], i32) -> usize;
    type MapFn = fn(&[i32], &mut [i32]);

    fn count_lt(col: &[i32], v: i32) -> usize {
        col.iter().filter(|&&x| x < v).count()
    }
    fn copy(src: &[i32], dst: &mut [i32]) {
        dst.copy_from_slice(src);
    }

    #[test]
    fn register_and_lookup() {
        let mut d = PrimitiveDictionary::new();
        d.register(FlavorSet::<SelFn>::new(
            "sel_lt_i32",
            FlavorInfo::new("branching", FlavorSource::Default),
            count_lt,
        ));
        d.register(FlavorSet::<MapFn>::new(
            "map_copy_i32",
            FlavorInfo::new("default", FlavorSource::Default),
            copy,
        ));
        assert_eq!(d.len(), 2);
        assert!(d.contains("sel_lt_i32"));
        let s = d.lookup::<SelFn>("sel_lt_i32").unwrap();
        assert_eq!((s.flavor(0))(&[1, 5, 2], 3), 2);
        assert!(d.lookup::<SelFn>("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "different function type")]
    fn type_mismatch_panics() {
        let mut d = PrimitiveDictionary::new();
        d.register(FlavorSet::<SelFn>::new(
            "sel_lt_i32",
            FlavorInfo::new("branching", FlavorSource::Default),
            count_lt,
        ));
        let _ = d.lookup::<MapFn>("sel_lt_i32");
    }

    #[test]
    fn reregistration_replaces() {
        let mut d = PrimitiveDictionary::new();
        let mut set = FlavorSet::<SelFn>::new(
            "sel_lt_i32",
            FlavorInfo::new("branching", FlavorSource::Default),
            count_lt,
        );
        d.register(set.clone());
        set.register(
            FlavorInfo::new("nobranch", FlavorSource::Algorithmic),
            count_lt,
        );
        d.register(set);
        assert_eq!(d.lookup::<SelFn>("sel_lt_i32").unwrap().len(), 2);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn flavor_metadata_is_accessible_untyped() {
        let mut d = PrimitiveDictionary::new();
        let mut set = FlavorSet::<SelFn>::new(
            "sel_lt_i32",
            FlavorInfo::new("branching", FlavorSource::Default),
            count_lt,
        );
        set.register(
            FlavorInfo::new("no_branching", FlavorSource::Algorithmic),
            count_lt,
        );
        d.register(set);
        assert_eq!(
            d.flavor_names("sel_lt_i32").unwrap(),
            vec!["branching", "no_branching"]
        );
        assert_eq!(d.flavor_infos("sel_lt_i32").unwrap().len(), 2);
        assert!(d.flavor_names("missing").is_none());
    }

    #[test]
    fn signatures_iterates_all() {
        let mut d = PrimitiveDictionary::new();
        assert!(d.is_empty());
        d.register(FlavorSet::<SelFn>::new(
            "a",
            FlavorInfo::new("x", FlavorSource::Default),
            count_lt,
        ));
        d.register(FlavorSet::<SelFn>::new(
            "b",
            FlavorInfo::new("x", FlavorSource::Default),
            count_lt,
        ));
        let mut sigs: Vec<&str> = d.signatures().collect();
        sigs.sort_unstable();
        assert_eq!(sigs, vec!["a", "b"]);
    }
}
