//! Flavors: alternative implementations of the same primitive, plus the
//! metadata Vectorwise keeps about each (§1.1 *Flavors*).

/// Where a flavor came from. The paper's flavor sets are either *algorithmic
/// variations* (branch/no-branch, loop fission, full computation,
/// hand-unrolling) or *compiler variation* (gcc/icc/clang builds of the same
/// source; emulated here by distinct code styles — see DESIGN.md §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlavorSource {
    /// The build that unmodified Vectorwise would ship.
    Default,
    /// An algorithmic variation enabled by a template compilation flag.
    Algorithmic,
    /// A compiler/code-style variation.
    CompilerStyle,
}

/// Metadata delivered with a flavor when it is registered.
#[derive(Debug, Clone)]
pub struct FlavorInfo {
    /// Short name, e.g. `"branching"`, `"gcc"`, `"fission"`.
    pub name: &'static str,
    /// Provenance.
    pub source: FlavorSource,
    /// True when this entry is an alternate *name* for a function already
    /// registered under another flavor of the same set (e.g. the `gcc` code
    /// style of a selection primitive *is* the plain `branching` loop).
    /// [`FlavorSet::canonical_subset`] drops aliases so an adaptive policy
    /// never wastes arms on duplicates.
    pub alias: bool,
}

impl FlavorInfo {
    /// Convenience constructor (non-alias).
    pub fn new(name: &'static str, source: FlavorSource) -> Self {
        FlavorInfo {
            name,
            source,
            alias: false,
        }
    }

    /// An alias entry: same function as another flavor, different name.
    pub fn alias(name: &'static str, source: FlavorSource) -> Self {
        FlavorInfo {
            name,
            source,
            alias: true,
        }
    }
}

/// A set of interchangeable implementations for one primitive signature.
///
/// `F` is the concrete function-pointer type of the primitive family (all
/// flavors of a signature necessarily share it). Flavor index 0 is the
/// *default* flavor — the one a non-adaptive build would always call.
#[derive(Debug, Clone)]
pub struct FlavorSet<F> {
    signature: String,
    infos: Vec<FlavorInfo>,
    funcs: Vec<F>,
}

impl<F: Copy> FlavorSet<F> {
    /// Creates a set for `signature` containing a single default flavor.
    pub fn new(signature: impl Into<String>, default_info: FlavorInfo, default_fn: F) -> Self {
        FlavorSet {
            signature: signature.into(),
            infos: vec![default_info],
            funcs: vec![default_fn],
        }
    }

    /// Creates a set from parallel metadata/function lists.
    ///
    /// # Panics
    /// If the lists are empty or of different lengths.
    pub fn from_parts(signature: impl Into<String>, infos: Vec<FlavorInfo>, funcs: Vec<F>) -> Self {
        assert!(!infos.is_empty(), "a flavor set needs at least one flavor");
        assert_eq!(infos.len(), funcs.len());
        FlavorSet {
            signature: signature.into(),
            infos,
            funcs,
        }
    }

    /// Registers an additional flavor (the dynamic registration mechanism of
    /// §1.1: components may add flavors at startup or while running).
    pub fn register(&mut self, info: FlavorInfo, f: F) {
        self.infos.push(info);
        self.funcs.push(f);
    }

    /// The primitive signature string, e.g. `"sel_lt_i32_col_val"`.
    pub fn signature(&self) -> &str {
        &self.signature
    }

    /// Number of flavors.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// True if the set has no flavors (cannot happen via constructors).
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// The function pointer of flavor `i`.
    #[inline]
    pub fn flavor(&self, i: usize) -> F {
        self.funcs[i]
    }

    /// Metadata of flavor `i`.
    pub fn info(&self, i: usize) -> &FlavorInfo {
        &self.infos[i]
    }

    /// All metadata, index-aligned with functions.
    pub fn infos(&self) -> &[FlavorInfo] {
        &self.infos
    }

    /// Index of the flavor named `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.infos.iter().position(|i| i.name == name)
    }

    /// The set without alias entries (every remaining flavor is a distinct
    /// implementation). Never empty: flavor 0 is by convention canonical.
    pub fn canonical_subset(&self) -> FlavorSet<F> {
        let mut infos = Vec::new();
        let mut funcs = Vec::new();
        for (i, info) in self.infos.iter().enumerate() {
            if !info.alias {
                infos.push(info.clone());
                funcs.push(self.funcs[i]);
            }
        }
        assert!(!infos.is_empty(), "flavor 0 must be canonical");
        FlavorSet {
            signature: self.signature.clone(),
            infos,
            funcs,
        }
    }

    /// Restricts the set to the named flavors (order preserved as given).
    /// Unknown names are ignored. Returns `None` if nothing matches.
    pub fn subset(&self, names: &[&str]) -> Option<FlavorSet<F>> {
        let mut infos = Vec::new();
        let mut funcs = Vec::new();
        for n in names {
            if let Some(i) = self.index_of(n) {
                infos.push(self.infos[i].clone());
                funcs.push(self.funcs[i]);
            }
        }
        if infos.is_empty() {
            None
        } else {
            Some(FlavorSet {
                signature: self.signature.clone(),
                infos,
                funcs,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type UnaryFn = fn(i32) -> i32;

    fn double(x: i32) -> i32 {
        x * 2
    }
    fn double_shift(x: i32) -> i32 {
        x << 1
    }

    #[test]
    fn single_flavor_set() {
        let s: FlavorSet<UnaryFn> = FlavorSet::new(
            "map_double_i32",
            FlavorInfo::new("default", FlavorSource::Default),
            double,
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.signature(), "map_double_i32");
        assert_eq!((s.flavor(0))(21), 42);
    }

    #[test]
    fn register_adds_flavors() {
        let mut s: FlavorSet<UnaryFn> = FlavorSet::new(
            "map_double_i32",
            FlavorInfo::new("mul", FlavorSource::Default),
            double,
        );
        s.register(
            FlavorInfo::new("shift", FlavorSource::Algorithmic),
            double_shift,
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("shift"), Some(1));
        assert_eq!((s.flavor(1))(21), 42);
    }

    #[test]
    fn subset_filters_and_orders() {
        let s: FlavorSet<UnaryFn> = FlavorSet::from_parts(
            "sig",
            vec![
                FlavorInfo::new("a", FlavorSource::Default),
                FlavorInfo::new("b", FlavorSource::Algorithmic),
                FlavorInfo::new("c", FlavorSource::CompilerStyle),
            ],
            vec![double, double_shift, double],
        );
        let sub = s.subset(&["c", "a", "zzz"]).unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.info(0).name, "c");
        assert_eq!(sub.info(1).name, "a");
        assert!(s.subset(&["nope"]).is_none());
    }

    #[test]
    fn canonical_subset_drops_aliases() {
        let mut s: FlavorSet<UnaryFn> = FlavorSet::new(
            "sig",
            FlavorInfo::new("branching", FlavorSource::Default),
            double,
        );
        s.register(
            FlavorInfo::new("no_branching", FlavorSource::Algorithmic),
            double_shift,
        );
        s.register(
            FlavorInfo::alias("gcc", FlavorSource::CompilerStyle),
            double,
        );
        let c = s.canonical_subset();
        assert_eq!(c.len(), 2);
        assert!(c.index_of("gcc").is_none());
        assert_eq!(c.info(0).name, "branching");
    }

    #[test]
    #[should_panic(expected = "at least one flavor")]
    fn empty_set_rejected() {
        let _: FlavorSet<UnaryFn> = FlavorSet::from_parts("sig", vec![], vec![]);
    }
}
