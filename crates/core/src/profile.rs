//! Per-primitive-instance profiling.
//!
//! Vectorwise keeps, for every primitive *instance* in a query plan, the
//! total tuples processed, total calls made and total cycles spent (§1.1).
//! Micro Adaptivity extends this with the APH. The same structure doubles as
//! the paper's "classical primitive profiling" block at the top of the
//! vw-greedy listing.

use crate::aph::Aph;

/// Cumulative + historical cost statistics for one primitive instance.
#[derive(Debug, Clone)]
pub struct PrimitiveProfile {
    /// Total calls so far.
    pub calls: u64,
    /// Total tuples processed.
    pub tot_tuples: u64,
    /// Total ticks spent.
    pub tot_ticks: u64,
    /// Optional bounded performance history.
    pub aph: Option<Aph>,
}

impl Default for PrimitiveProfile {
    fn default() -> Self {
        PrimitiveProfile::with_aph()
    }
}

impl PrimitiveProfile {
    /// Profile keeping only cumulative totals (classic Vectorwise profiling).
    pub fn totals_only() -> Self {
        PrimitiveProfile {
            calls: 0,
            tot_tuples: 0,
            tot_ticks: 0,
            aph: None,
        }
    }

    /// Profile that additionally maintains an APH.
    pub fn with_aph() -> Self {
        PrimitiveProfile {
            calls: 0,
            tot_tuples: 0,
            tot_ticks: 0,
            aph: Some(Aph::default()),
        }
    }

    /// Records one call.
    #[inline]
    pub fn record(&mut self, tuples: u64, ticks: u64) {
        self.calls += 1;
        self.tot_tuples += tuples;
        self.tot_ticks += ticks;
        if let Some(aph) = &mut self.aph {
            aph.record(tuples, ticks);
        }
    }

    /// Lifetime average cost in ticks/tuple.
    pub fn avg_cost(&self) -> f64 {
        if self.tot_tuples == 0 {
            0.0
        } else {
            self.tot_ticks as f64 / self.tot_tuples as f64
        }
    }

    /// Merges another profile into this one (for aggregating instances).
    pub fn merge_totals(&mut self, other: &PrimitiveProfile) {
        self.calls += other.calls;
        self.tot_tuples += other.tot_tuples;
        self.tot_ticks += other.tot_ticks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_totals() {
        let mut p = PrimitiveProfile::totals_only();
        p.record(1000, 4000);
        p.record(1000, 6000);
        assert_eq!(p.calls, 2);
        assert_eq!(p.tot_tuples, 2000);
        assert_eq!(p.tot_ticks, 10_000);
        assert_eq!(p.avg_cost(), 5.0);
        assert!(p.aph.is_none());
    }

    #[test]
    fn with_aph_tracks_history() {
        let mut p = PrimitiveProfile::with_aph();
        for _ in 0..10 {
            p.record(100, 300);
        }
        let aph = p.aph.as_ref().unwrap();
        assert_eq!(aph.total_calls(), 10);
        assert_eq!(aph.total_ticks(), 3000);
    }

    #[test]
    fn avg_cost_zero_when_empty() {
        assert_eq!(PrimitiveProfile::default().avg_cost(), 0.0);
    }

    #[test]
    fn merge_totals_adds_up() {
        let mut a = PrimitiveProfile::totals_only();
        a.record(10, 100);
        let mut b = PrimitiveProfile::totals_only();
        b.record(30, 50);
        a.merge_totals(&b);
        assert_eq!(a.calls, 2);
        assert_eq!(a.tot_tuples, 40);
        assert_eq!(a.tot_ticks, 150);
    }
}
