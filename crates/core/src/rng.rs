//! A tiny deterministic RNG for policy exploration.
//!
//! The exploration choices of ε-greedy-family policies need randomness, but
//! dragging a full RNG crate into the per-call hot path is unnecessary:
//! SplitMix64 passes BigCrush, costs a handful of instructions, and is
//! trivially seedable, which keeps every experiment in this repository
//! reproducible.

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Two generators with the same seed
    /// produce identical streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn gen_range(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        // Lemire's multiply-shift; bias is negligible for n << 2^64 and
        // irrelevant for arm selection among a handful of flavors.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = r.gen_range(5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all arms should be reachable");
    }

    #[test]
    fn next_f64_unit_interval_roughly_uniform() {
        let mut r = SplitMix64::new(99);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
