//! Approximated Performance History (APH).
//!
//! §1.1 of the paper: keeping one measurement per primitive call is too
//! heavyweight (an analytical query calls a primitive instance 100K+ times),
//! so Vectorwise keeps a histogram of at most 512 buckets. Initially each
//! call appends one bucket; when all 512 are used, neighbouring buckets are
//! merged pairwise so 256 remain, and from then on each bucket covers twice
//! as many calls. After `k` merge rounds each bucket aggregates `2^k`
//! consecutive calls.
//!
//! Every "cycles/tuple during a query" plot in the paper (Figures 2, 4, 10,
//! 11) is an APH rendered with call number on the X axis.

/// One APH bucket: aggregate statistics over a run of consecutive calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AphBucket {
    /// Number of primitive calls aggregated into the bucket.
    pub calls: u64,
    /// Total tuples processed by those calls.
    pub tuples: u64,
    /// Total ticks spent in those calls.
    pub ticks: u64,
}

impl AphBucket {
    fn absorb(&mut self, other: &AphBucket) {
        self.calls += other.calls;
        self.tuples += other.tuples;
        self.ticks += other.ticks;
    }

    /// Average cost in ticks per tuple over the bucket.
    pub fn cost_per_tuple(&self) -> f64 {
        if self.tuples == 0 {
            0.0
        } else {
            self.ticks as f64 / self.tuples as f64
        }
    }
}

/// Bounded performance histogram over the lifetime of a primitive instance.
#[derive(Debug, Clone)]
pub struct Aph {
    max_buckets: usize,
    /// Calls aggregated per full bucket: `2^k` after `k` merge rounds.
    calls_per_bucket: u64,
    buckets: Vec<AphBucket>,
    pending: AphBucket,
}

/// The paper's bucket budget.
pub const DEFAULT_APH_BUCKETS: usize = 512;

impl Default for Aph {
    fn default() -> Self {
        Aph::new(DEFAULT_APH_BUCKETS)
    }
}

impl Aph {
    /// Creates an APH with the given bucket budget (must be even and ≥ 2).
    pub fn new(max_buckets: usize) -> Self {
        assert!(max_buckets >= 2 && max_buckets.is_multiple_of(2));
        Aph {
            max_buckets,
            calls_per_bucket: 1,
            buckets: Vec::with_capacity(max_buckets),
            pending: AphBucket::default(),
        }
    }

    /// Records one primitive call.
    pub fn record(&mut self, tuples: u64, ticks: u64) {
        self.pending.absorb(&AphBucket {
            calls: 1,
            tuples,
            ticks,
        });
        if self.pending.calls == self.calls_per_bucket {
            self.buckets.push(self.pending);
            self.pending = AphBucket::default();
            if self.buckets.len() == self.max_buckets {
                self.halve();
            }
        }
    }

    fn halve(&mut self) {
        let mut merged = Vec::with_capacity(self.max_buckets);
        for pair in self.buckets.chunks_exact(2) {
            let mut b = pair[0];
            b.absorb(&pair[1]);
            merged.push(b);
        }
        self.buckets = merged;
        self.calls_per_bucket *= 2;
    }

    /// Completed buckets (excludes the partial pending bucket).
    pub fn buckets(&self) -> &[AphBucket] {
        &self.buckets
    }

    /// The partially filled bucket at the end of the history, if any calls
    /// are pending.
    pub fn pending(&self) -> Option<&AphBucket> {
        (self.pending.calls > 0).then_some(&self.pending)
    }

    /// Calls covered by each *full* bucket (`2^k`).
    pub fn calls_per_bucket(&self) -> u64 {
        self.calls_per_bucket
    }

    /// Total calls recorded.
    pub fn total_calls(&self) -> u64 {
        self.buckets.iter().map(|b| b.calls).sum::<u64>() + self.pending.calls
    }

    /// Total tuples recorded.
    pub fn total_tuples(&self) -> u64 {
        self.buckets.iter().map(|b| b.tuples).sum::<u64>() + self.pending.tuples
    }

    /// Total ticks recorded.
    pub fn total_ticks(&self) -> u64 {
        self.buckets.iter().map(|b| b.ticks).sum::<u64>() + self.pending.ticks
    }

    /// Renders the history as `(first_call_number, cost_per_tuple)` points —
    /// the paper's Figure-2-style X axis. Includes the pending bucket.
    pub fn series(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::with_capacity(self.buckets.len() + 1);
        let mut call = 0u64;
        for b in &self.buckets {
            out.push((call, b.cost_per_tuple()));
            call += b.calls;
        }
        if self.pending.calls > 0 {
            out.push((call, self.pending.cost_per_tuple()));
        }
        out
    }

    /// Pointwise minimum of several APHs over the *same* call stream: the
    /// approximated optimum OPT used in §4.1 ("taking the minimum time among
    /// all flavors for each APH bucket"). All histories must cover the same
    /// number of calls. Returns total ticks of the bucket-wise minimum.
    pub fn opt_ticks(histories: &[&Aph]) -> u64 {
        assert!(!histories.is_empty());
        let n = histories[0].total_calls();
        assert!(
            histories.iter().all(|h| h.total_calls() == n),
            "OPT requires aligned histories"
        );
        // Align on the coarsest granularity among the histories.
        let series: Vec<Vec<(u64, &AphBucket)>> = histories
            .iter()
            .map(|h| {
                let mut v = Vec::with_capacity(h.buckets.len() + 1);
                let mut call = 0;
                for b in &h.buckets {
                    v.push((call, b));
                    call += b.calls;
                }
                if h.pending.calls > 0 {
                    v.push((call, &h.pending));
                }
                v
            })
            .collect();
        // Walk call ranges; within each range take min cost/tuple, weight by
        // the range's tuple count (taken from the first history).
        let boundaries: Vec<u64> = {
            let mut b: Vec<u64> = series
                .iter()
                .flat_map(|s| s.iter().map(|&(c, _)| c))
                .collect();
            b.push(n);
            b.sort_unstable();
            b.dedup();
            b
        };
        let mut total = 0.0f64;
        for w in boundaries.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            if hi <= lo {
                continue;
            }
            let mut min_cost = f64::INFINITY;
            let mut tuples_here = 0.0f64;
            for s in &series {
                // Find the bucket covering `lo` in this history.
                let idx = match s.binary_search_by(|&(c, _)| c.cmp(&lo)) {
                    Ok(i) => i,
                    Err(i) => i - 1,
                };
                let (start, b) = s[idx];
                debug_assert!(lo >= start);
                let cost = b.cost_per_tuple();
                if cost < min_cost {
                    min_cost = cost;
                }
                if tuples_here == 0.0 && b.calls > 0 {
                    // Approximate tuples in the range as proportional share.
                    tuples_here = b.tuples as f64 * (hi - lo) as f64 / b.calls as f64;
                }
            }
            total += min_cost * tuples_here;
        }
        total.round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_one_bucket_per_call_before_merge() {
        let mut a = Aph::new(8);
        for i in 0..5 {
            a.record(100, 100 * (i + 1));
        }
        assert_eq!(a.buckets().len(), 5);
        assert_eq!(a.calls_per_bucket(), 1);
        assert_eq!(a.total_calls(), 5);
    }

    #[test]
    fn halves_when_full() {
        let mut a = Aph::new(8);
        for _ in 0..8 {
            a.record(10, 20);
        }
        // Reaching 8 buckets triggers a merge down to 4, each covering 2.
        assert_eq!(a.buckets().len(), 4);
        assert_eq!(a.calls_per_bucket(), 2);
        assert_eq!(a.total_calls(), 8);
        assert_eq!(a.total_tuples(), 80);
        for b in a.buckets() {
            assert_eq!(b.calls, 2);
            assert_eq!(b.tuples, 20);
            assert_eq!(b.ticks, 40);
        }
    }

    #[test]
    fn repeated_halving_bounds_bucket_count() {
        let mut a = Aph::new(8);
        for _ in 0..1000 {
            a.record(1, 3);
        }
        assert!(a.buckets().len() < 8);
        assert_eq!(a.total_calls(), 1000);
        assert_eq!(a.total_ticks(), 3000);
        // 1000 calls in <8 buckets needs >=128 calls/bucket (power of two).
        assert!(a.calls_per_bucket() >= 128);
        assert!(a.calls_per_bucket().is_power_of_two());
    }

    #[test]
    fn pending_bucket_exposed() {
        let mut a = Aph::new(4);
        for _ in 0..4 {
            a.record(5, 10);
        }
        // now calls_per_bucket = 2, 2 buckets; one more call stays pending
        a.record(5, 10);
        assert!(a.pending().is_some());
        assert_eq!(a.total_calls(), 5);
    }

    #[test]
    fn series_costs() {
        let mut a = Aph::new(8);
        a.record(10, 50); // 5 ticks/tuple
        a.record(10, 150); // 15 ticks/tuple
        let s = a.series();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], (0, 5.0));
        assert_eq!(s[1], (1, 15.0));
    }

    #[test]
    fn cost_per_tuple_handles_zero_tuples() {
        assert_eq!(AphBucket::default().cost_per_tuple(), 0.0);
    }

    #[test]
    fn opt_picks_bucketwise_minimum() {
        // Flavor A costs 10 ticks/tuple in the first half, 2 in the second;
        // flavor B the reverse. OPT should cost ~2 everywhere.
        let mut a = Aph::new(512);
        let mut b = Aph::new(512);
        for i in 0..100u64 {
            let (ca, cb) = if i < 50 { (10, 2) } else { (2, 10) };
            a.record(10, ca * 10);
            b.record(10, cb * 10);
        }
        let opt = Aph::opt_ticks(&[&a, &b]);
        assert_eq!(opt, 2 * 10 * 100);
        assert!(opt < a.total_ticks());
        assert!(opt < b.total_ticks());
    }

    #[test]
    fn opt_of_single_history_is_its_total() {
        let mut a = Aph::new(512);
        for _ in 0..10 {
            a.record(7, 21);
        }
        assert_eq!(Aph::opt_ticks(&[&a]), a.total_ticks());
    }
}
