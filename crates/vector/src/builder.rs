//! Column builders used by data generators (dbgen) and tests.

use std::sync::Arc;

use crate::table::Column;
use crate::types::DataType;

/// Accumulates values row by row and finalizes into a [`Column`].
///
/// The string variant packs everything into a single arena, which is the
/// layout [`crate::StrVec`] scans share without copying.
#[derive(Debug)]
pub enum ColumnBuilder {
    /// `I16`.
    I16(Vec<i16>),
    /// `I32`.
    I32(Vec<i32>),
    /// `I64`.
    I64(Vec<i64>),
    /// `F64`.
    F64(Vec<f64>),
    /// `Str`.
    Str {
        /// Packed string bytes (the future arena).
        bytes: Vec<u8>,
        /// Per-row `(offset, len)` views into `bytes`.
        views: Vec<(u32, u32)>,
    },
}

impl ColumnBuilder {
    /// A new builder for `dt` with room for `cap` rows.
    pub fn with_capacity(dt: DataType, cap: usize) -> Self {
        match dt {
            DataType::I16 => ColumnBuilder::I16(Vec::with_capacity(cap)),
            DataType::I32 => ColumnBuilder::I32(Vec::with_capacity(cap)),
            DataType::I64 => ColumnBuilder::I64(Vec::with_capacity(cap)),
            DataType::F64 => ColumnBuilder::F64(Vec::with_capacity(cap)),
            DataType::Str => ColumnBuilder::Str {
                bytes: Vec::with_capacity(cap * 12),
                views: Vec::with_capacity(cap),
            },
        }
    }

    /// Number of rows accumulated so far.
    pub fn len(&self) -> usize {
        match self {
            ColumnBuilder::I16(v) => v.len(),
            ColumnBuilder::I32(v) => v.len(),
            ColumnBuilder::I64(v) => v.len(),
            ColumnBuilder::F64(v) => v.len(),
            ColumnBuilder::Str { views, .. } => views.len(),
        }
    }

    /// True when no rows were accumulated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of *live* accumulated data (length-based, not capacity): the
    /// scalar width times the row count for numeric builders; packed string
    /// bytes plus 8 bytes per `(offset, len)` view for `Str`. This is the
    /// figure the byte-accounting facade reports against the analyzer's
    /// proven per-operator bounds.
    pub fn bytes(&self) -> usize {
        match self {
            ColumnBuilder::I16(v) => v.len().saturating_mul(2),
            ColumnBuilder::I32(v) => v.len().saturating_mul(4),
            ColumnBuilder::I64(v) => v.len().saturating_mul(8),
            ColumnBuilder::F64(v) => v.len().saturating_mul(8),
            ColumnBuilder::Str { bytes, views } => {
                bytes.len().saturating_add(views.len().saturating_mul(8))
            }
        }
    }

    /// `push_i16`.
    pub fn push_i16(&mut self, v: i16) {
        match self {
            ColumnBuilder::I16(b) => b.push(v),
            _ => panic!("push_i16 on non-i16 builder"),
        }
    }
    /// `push_i32`.
    pub fn push_i32(&mut self, v: i32) {
        match self {
            ColumnBuilder::I32(b) => b.push(v),
            _ => panic!("push_i32 on non-i32 builder"),
        }
    }
    /// `push_i64`.
    pub fn push_i64(&mut self, v: i64) {
        match self {
            ColumnBuilder::I64(b) => b.push(v),
            _ => panic!("push_i64 on non-i64 builder"),
        }
    }
    /// `push_f64`.
    pub fn push_f64(&mut self, v: f64) {
        match self {
            ColumnBuilder::F64(b) => b.push(v),
            _ => panic!("push_f64 on non-f64 builder"),
        }
    }
    /// `push_str`.
    pub fn push_str(&mut self, s: &str) {
        match self {
            ColumnBuilder::Str { bytes, views } => {
                let off = bytes.len() as u32;
                bytes.extend_from_slice(s.as_bytes());
                views.push((off, s.len() as u32));
            }
            _ => panic!("push_str on non-str builder"),
        }
    }

    /// Finalizes into an immutable [`Column`].
    pub fn finish(self) -> Column {
        match self {
            ColumnBuilder::I16(v) => Column::I16(Arc::new(v)),
            ColumnBuilder::I32(v) => Column::I32(Arc::new(v)),
            ColumnBuilder::I64(v) => Column::I64(Arc::new(v)),
            ColumnBuilder::F64(v) => Column::F64(Arc::new(v)),
            ColumnBuilder::Str { bytes, views } => Column::Str {
                arena: bytes.into(),
                views: Arc::new(views),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_type() {
        let mut b = ColumnBuilder::with_capacity(DataType::I16, 2);
        b.push_i16(7);
        assert_eq!(b.len(), 1);
        assert!(matches!(b.finish(), Column::I16(_)));

        let mut b = ColumnBuilder::with_capacity(DataType::F64, 2);
        b.push_f64(1.25);
        assert!(matches!(b.finish(), Column::F64(_)));
    }

    #[test]
    fn string_builder_packs_arena() {
        let mut b = ColumnBuilder::with_capacity(DataType::Str, 3);
        b.push_str("ab");
        b.push_str("");
        b.push_str("cde");
        assert_eq!(b.len(), 3);
        assert_eq!(b.bytes(), 5 + 3 * 8); // "ab" + "" + "cde" bytes + views
        let col = b.finish();
        let v = col.slice_vector(0, 3);
        let sv = v.as_str_vec();
        assert_eq!(sv.get(0), "ab");
        assert_eq!(sv.get(1), "");
        assert_eq!(sv.get(2), "cde");
    }

    #[test]
    #[should_panic(expected = "push_i16 on non-i16 builder")]
    fn type_confusion_panics() {
        let mut b = ColumnBuilder::with_capacity(DataType::I32, 1);
        b.push_i16(1);
    }

    #[test]
    fn empty_builder() {
        let b = ColumnBuilder::with_capacity(DataType::I64, 0);
        assert!(b.is_empty());
        assert_eq!(b.finish().len(), 0);
    }
}
