//! Per-partition column encodings: dictionary, delta, frame-of-reference.
//!
//! Base tables are encoded at build time, one codec verdict per column,
//! chosen from the column's exact [`ColumnStats`](crate::ColumnStats):
//!
//! * **Dictionary** ([`DictStr`]) for string columns with few distinct
//!   values: a single *sorted* global dictionary plus bit-packed per-row
//!   codes. Sorting the dictionary makes code order equal string order, so
//!   equality filters compare codes without touching bytes.
//! * **Delta** ([`DeltaInts`]) for nondecreasing `i32` key columns
//!   (clustered primary keys): per-row deltas bit-packed at the partition's
//!   worst-case delta width, with an absolute sync base every
//!   [`SYNC_ROWS`] rows so any sub-range decodes without replaying the
//!   whole column.
//! * **Frame-of-reference** ([`ForInts`]) for bounded `i32`/`i64` columns:
//!   per-partition `base = min` plus bit-packed offsets at the partition's
//!   proven `bits(max - min)` width.
//!
//! All three codecs partition the column into [`ENC_PART_ROWS`]-row chunks
//! so widths adapt to local value ranges and scans decode exactly the
//! partitions a morsel touches. The packed-word stream is word-aligned per
//! partition and carries one trailing padding word per partition (plus one
//! global sentinel word), so decode kernels may always read two adjacent
//! words branch-free.
//!
//! Codecs are **lossless**: `encode_table` never changes query results,
//! only the resident representation. A codec is selected only when it
//! saves at least 10% over the raw representation, so encoding never
//! inflates a column.

use std::collections::HashMap;
use std::sync::Arc;

use crate::stats::{ColumnStats, StatsDomain};
use crate::table::{Column, Table};
use crate::types::DataType;
use crate::vector::{StrVec, Vector};

/// Rows per encoded partition. A multiple of [`SYNC_ROWS`] so delta sync
/// blocks never straddle a partition boundary.
pub const ENC_PART_ROWS: usize = 1 << 14;

/// Rows per delta sync block: one absolute base value is stored per block
/// so range decodes replay at most `SYNC_ROWS - 1` leading deltas.
pub const SYNC_ROWS: usize = 64;

/// Distinct-value cap for dictionary coding; codes stay well inside `i32`.
pub const DICT_MAX_VALUES: usize = 1 << 16;

/// Which codec an encoded column uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Encoding {
    /// Sorted global dictionary + bit-packed codes (`Str`).
    Dict,
    /// Per-row deltas + sync bases (`I32`, nondecreasing).
    Delta,
    /// Frame-of-reference bit-packing (`I32` / `I64`).
    For,
}

impl std::fmt::Display for Encoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Encoding::Dict => write!(f, "dict"),
            Encoding::Delta => write!(f, "delta"),
            Encoding::For => write!(f, "for"),
        }
    }
}

/// Packing metadata for one encoded partition.
#[derive(Debug, Clone)]
pub struct EncPart {
    /// Frame-of-reference base (minimum value); unused (0) for dict/delta.
    pub base: i64,
    /// Bit width of each packed value. 0 means all values equal `base`
    /// (FoR), all deltas zero (delta), or a single-entry dictionary.
    pub width: u32,
    /// Index of the partition's first packed word in the shared stream.
    pub word0: usize,
    /// Row count of the partition (`ENC_PART_ROWS` except the tail).
    pub rows: usize,
}

/// A frame-of-reference bit-packed integer column.
#[derive(Debug, Clone)]
pub struct ForInts {
    /// `I32` or `I64`: the decoded scalar type.
    pub dt: DataType,
    /// Total row count.
    pub len: usize,
    /// Per-partition packing metadata.
    pub parts: Vec<EncPart>,
    /// Shared packed-word stream (padded; see module docs).
    pub words: Arc<Vec<u64>>,
}

/// A delta-coded nondecreasing `i32` column.
#[derive(Debug, Clone)]
pub struct DeltaInts {
    /// Total row count.
    pub len: usize,
    /// Per-partition packing metadata (`base` unused).
    pub parts: Vec<EncPart>,
    /// One absolute base value per [`SYNC_ROWS`]-row block, column-global.
    pub sync: Arc<Vec<i64>>,
    /// Shared packed-word stream of per-row deltas (entries at block
    /// starts are stored as zero and never read).
    pub words: Arc<Vec<u64>>,
}

/// A dictionary-coded string column.
#[derive(Debug, Clone)]
pub struct DictStr {
    /// Total row count.
    pub len: usize,
    /// Dictionary byte arena (decoded vectors share it).
    pub arena: Arc<[u8]>,
    /// Sorted dictionary views: code order equals lexicographic order.
    pub views: Arc<Vec<(u32, u32)>>,
    /// Bit width of each packed code (global: the dictionary is global).
    pub width: u32,
    /// Per-partition packing metadata (`base`/`width` unused per part).
    pub parts: Vec<EncPart>,
    /// Shared packed-word stream of codes.
    pub words: Arc<Vec<u64>>,
}

/// One encoded column: the codec plus its packed payload.
#[derive(Debug, Clone)]
pub enum EncColumn {
    /// Dictionary-coded strings.
    Dict(DictStr),
    /// Delta-coded nondecreasing `i32`.
    Delta(DeltaInts),
    /// Frame-of-reference packed integers.
    For(ForInts),
}

/// Mask selecting the low `width` bits.
#[inline]
pub fn low_mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Reads packed value `r` from a partition whose stream starts at bit
/// `pbit0` (reference implementation; the flavored kernels in
/// `ma_primitives::decode` must agree with this bit for bit).
#[inline]
pub fn read_packed(words: &[u64], pbit0: u64, width: u32, r: usize) -> u64 {
    let bit = pbit0 + (r as u64) * u64::from(width);
    let w = (bit / 64) as usize;
    let s = (bit % 64) as u32;
    let pair = u128::from(words[w]) | (u128::from(words[w + 1]) << 64);
    ((pair >> s) as u64) & low_mask(width)
}

/// Appends a word-aligned packed region for `values` at `width` bits each,
/// plus one trailing padding word; returns the region's first word index.
fn pack_region(words: &mut Vec<u64>, width: u32, values: &[u64]) -> usize {
    let word0 = words.len();
    let bits = (values.len() as u64) * u64::from(width);
    let data_words = bits.div_ceil(64) as usize;
    words.resize(word0 + data_words + 1, 0);
    if width > 0 {
        for (r, &v) in values.iter().enumerate() {
            let bit = (r as u64) * u64::from(width);
            let w = word0 + (bit / 64) as usize;
            let s = (bit % 64) as u32;
            words[w] |= v << s;
            if s + width > 64 {
                words[w + 1] |= v >> (64 - s);
            }
        }
    }
    word0
}

/// Bits needed to represent `v` (0 for `v == 0`).
fn bits_for(v: u64) -> u32 {
    64 - v.leading_zeros()
}

/// Iterates the encoded partitions overlapped by global rows
/// `[start, start + n)` as `(part_index, first_row_in_part, run_len)`.
pub fn part_ranges(start: usize, n: usize) -> impl Iterator<Item = (usize, usize, usize)> {
    let end = start + n;
    let first_part = start / ENC_PART_ROWS;
    let last_part = if n == 0 {
        first_part
    } else {
        (end - 1) / ENC_PART_ROWS
    };
    (first_part..=last_part).filter_map(move |p| {
        let pstart = p * ENC_PART_ROWS;
        let lo = start.max(pstart);
        let hi = end.min(pstart + ENC_PART_ROWS);
        (hi > lo).then_some((p, lo - pstart, hi - lo))
    })
}

impl ForInts {
    /// Frame-of-reference-encodes `values` (decoded type `dt`); callers
    /// normally go through [`encode_column`], which also checks savings.
    pub fn encode(dt: DataType, values: &[i64]) -> ForInts {
        let mut parts = Vec::with_capacity(values.len().div_ceil(ENC_PART_ROWS).max(1));
        let mut words = Vec::new();
        for chunk in values.chunks(ENC_PART_ROWS) {
            let base = chunk.iter().copied().min().unwrap_or(0);
            let max = chunk.iter().copied().max().unwrap_or(0);
            let width = bits_for((max as i128 - base as i128) as u64);
            let packed: Vec<u64> = chunk
                .iter()
                .map(|&v| (v as i128 - base as i128) as u64)
                .collect();
            let word0 = pack_region(&mut words, width, &packed);
            parts.push(EncPart {
                base,
                width,
                word0,
                rows: chunk.len(),
            });
        }
        words.push(0); // global sentinel: two-word reads stay in bounds
        ForInts {
            dt,
            len: values.len(),
            parts,
            words: Arc::new(words),
        }
    }

    /// Decodes global row `r` (reference path).
    #[inline]
    pub fn get(&self, r: usize) -> i64 {
        let p = &self.parts[r / ENC_PART_ROWS];
        let d = read_packed(
            &self.words,
            (p.word0 as u64) * 64,
            p.width,
            r % ENC_PART_ROWS,
        );
        p.base.wrapping_add(d as i64)
    }
}

impl DeltaInts {
    /// Encodes a nondecreasing `i32` sequence; the caller guarantees order
    /// ([`encode_column`] checks it before selecting this codec).
    pub fn encode(values: &[i32]) -> DeltaInts {
        let mut parts = Vec::with_capacity(values.len().div_ceil(ENC_PART_ROWS).max(1));
        let mut words = Vec::new();
        let sync: Vec<i64> = values
            .iter()
            .step_by(SYNC_ROWS)
            .map(|&v| i64::from(v))
            .collect();
        for chunk in values.chunks(ENC_PART_ROWS) {
            // Partition starts are multiples of SYNC_ROWS, so chunk-relative
            // block starts are global block starts.
            let delta_at = |r: usize| -> u64 {
                if r.is_multiple_of(SYNC_ROWS) {
                    0
                } else {
                    (i64::from(chunk[r]) - i64::from(chunk[r - 1])) as u64
                }
            };
            let width = (0..chunk.len())
                .map(|r| bits_for(delta_at(r)))
                .max()
                .unwrap_or(0);
            let packed: Vec<u64> = (0..chunk.len()).map(delta_at).collect();
            let word0 = pack_region(&mut words, width, &packed);
            parts.push(EncPart {
                base: 0,
                width,
                word0,
                rows: chunk.len(),
            });
        }
        words.push(0);
        DeltaInts {
            len: values.len(),
            parts,
            sync: Arc::new(sync),
            words: Arc::new(words),
        }
    }

    /// Decodes global row `r` (reference path): replays deltas from the
    /// enclosing sync block's base.
    #[inline]
    pub fn get(&self, r: usize) -> i32 {
        let p = &self.parts[r / ENC_PART_ROWS];
        let pbit0 = (p.word0 as u64) * 64;
        let b0 = (r / SYNC_ROWS) * SYNC_ROWS;
        let mut acc = self.sync[r / SYNC_ROWS];
        for q in (b0 + 1)..=r {
            acc += read_packed(&self.words, pbit0, p.width, q % ENC_PART_ROWS) as i64;
        }
        acc as i32
    }
}

impl DictStr {
    /// Dictionary-encodes a string column given its arena and views;
    /// callers normally go through [`encode_column`].
    pub fn encode(arena: &Arc<[u8]>, views: &[(u32, u32)]) -> DictStr {
        let distinct: Vec<&[u8]> = {
            let mut seen: Vec<&[u8]> = views
                .iter()
                .map(|&(off, len)| &arena[off as usize..(off + len) as usize])
                .collect();
            seen.sort_unstable();
            seen.dedup();
            seen
        };
        let mut dict_arena = Vec::with_capacity(distinct.iter().map(|s| s.len()).sum());
        let mut dict_views = Vec::with_capacity(distinct.len());
        let mut code_of: HashMap<&[u8], u64> = HashMap::with_capacity(distinct.len());
        for (code, s) in distinct.iter().enumerate() {
            let off = dict_arena.len() as u32;
            dict_arena.extend_from_slice(s);
            dict_views.push((off, s.len() as u32));
            code_of.insert(s, code as u64);
        }
        let width = match distinct.len() {
            0 | 1 => 0,
            n => bits_for((n - 1) as u64),
        };
        let mut parts = Vec::with_capacity(views.len().div_ceil(ENC_PART_ROWS).max(1));
        let mut words = Vec::new();
        for chunk in views.chunks(ENC_PART_ROWS) {
            let packed: Vec<u64> = chunk
                .iter()
                .map(|&(off, len)| code_of[&arena[off as usize..(off + len) as usize]])
                .collect();
            let word0 = pack_region(&mut words, width, &packed);
            parts.push(EncPart {
                base: 0,
                width,
                word0,
                rows: chunk.len(),
            });
        }
        words.push(0);
        DictStr {
            len: views.len(),
            arena: Arc::from(dict_arena.into_boxed_slice()),
            views: Arc::new(dict_views),
            width,
            parts,
            words: Arc::new(words),
        }
    }

    /// Decodes the code at global row `r` (reference path).
    #[inline]
    pub fn code(&self, r: usize) -> usize {
        let p = &self.parts[r / ENC_PART_ROWS];
        read_packed(
            &self.words,
            (p.word0 as u64) * 64,
            self.width,
            r % ENC_PART_ROWS,
        ) as usize
    }
}

impl EncColumn {
    /// The decoded scalar type.
    pub fn data_type(&self) -> DataType {
        match self {
            EncColumn::Dict(_) => DataType::Str,
            EncColumn::Delta(_) => DataType::I32,
            EncColumn::For(c) => c.dt,
        }
    }

    /// Total row count.
    pub fn len(&self) -> usize {
        match self {
            EncColumn::Dict(c) => c.len,
            EncColumn::Delta(c) => c.len,
            EncColumn::For(c) => c.len,
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The codec in use.
    pub fn encoding(&self) -> Encoding {
        match self {
            EncColumn::Dict(_) => Encoding::Dict,
            EncColumn::Delta(_) => Encoding::Delta,
            EncColumn::For(_) => Encoding::For,
        }
    }

    /// Resident bytes of the encoded representation: packed words,
    /// partition metadata, and (for dict/delta) dictionary or sync bases.
    pub fn encoded_bytes(&self) -> usize {
        let part_bytes = std::mem::size_of::<EncPart>();
        match self {
            EncColumn::Dict(c) => {
                c.words.len() * 8 + c.parts.len() * part_bytes + c.arena.len() + c.views.len() * 8
            }
            EncColumn::Delta(c) => {
                c.words.len() * 8 + c.parts.len() * part_bytes + c.sync.len() * 8
            }
            EncColumn::For(c) => c.words.len() * 8 + c.parts.len() * part_bytes,
        }
    }

    /// Materializes rows `[start, start + n)` through the reference decode
    /// path. Dictionary vectors share the dictionary arena and carry their
    /// codes, so downstream code-comparison filters work on this path too.
    pub fn slice_vector(&self, start: usize, n: usize) -> Vector {
        match self {
            EncColumn::For(c) => match c.dt {
                DataType::I32 => Vector::I32((start..start + n).map(|r| c.get(r) as i32).collect()),
                _ => Vector::I64((start..start + n).map(|r| c.get(r)).collect()),
            },
            EncColumn::Delta(c) => {
                // Walk sync blocks once instead of per-row replay.
                let mut out = Vec::with_capacity(n);
                let mut r = start;
                let end = start + n;
                while r < end {
                    let blk = r / SYNC_ROWS;
                    let b0 = blk * SYNC_ROWS;
                    let p = &c.parts[r / ENC_PART_ROWS];
                    let pbit0 = (p.word0 as u64) * 64;
                    let stop = end.min(b0 + SYNC_ROWS);
                    let mut acc = c.sync[blk];
                    if r == b0 {
                        out.push(acc as i32);
                    }
                    for q in (b0 + 1)..stop {
                        acc += read_packed(&c.words, pbit0, p.width, q % ENC_PART_ROWS) as i64;
                        if q >= r {
                            out.push(acc as i32);
                        }
                    }
                    r = stop;
                }
                Vector::I32(out)
            }
            EncColumn::Dict(c) => {
                let mut views = Vec::with_capacity(n);
                let mut codes = Vec::with_capacity(n);
                for r in start..start + n {
                    let code = c.code(r);
                    views.push(c.views[code]);
                    codes.push(code as i32);
                }
                Vector::Str(StrVec::from_dict(
                    Arc::clone(&c.arena),
                    Arc::clone(&c.views),
                    views,
                    codes,
                ))
            }
        }
    }

    /// Materializes arbitrary `rows` (a gather) through reference decode.
    pub fn gather_vector(&self, rows: &[usize]) -> Vector {
        match self {
            EncColumn::For(c) => match c.dt {
                DataType::I32 => Vector::I32(rows.iter().map(|&r| c.get(r) as i32).collect()),
                _ => Vector::I64(rows.iter().map(|&r| c.get(r)).collect()),
            },
            EncColumn::Delta(c) => Vector::I32(rows.iter().map(|&r| c.get(r)).collect()),
            EncColumn::Dict(c) => {
                let mut views = Vec::with_capacity(rows.len());
                let mut codes = Vec::with_capacity(rows.len());
                for &r in rows {
                    let code = c.code(r);
                    views.push(c.views[code]);
                    codes.push(code as i32);
                }
                Vector::Str(StrVec::from_dict(
                    Arc::clone(&c.arena),
                    Arc::clone(&c.views),
                    views,
                    codes,
                ))
            }
        }
    }

    /// Fully decodes back to a raw (unencoded) [`Column`].
    pub fn to_raw(&self) -> Column {
        match self.slice_vector(0, self.len()) {
            Vector::I32(v) => Column::I32(Arc::new(v)),
            Vector::I64(v) => Column::I64(Arc::new(v)),
            Vector::Str(sv) => Column::Str {
                arena: Arc::clone(sv.arena()),
                views: Arc::new(sv.views().to_vec()),
            },
            _ => unreachable!("codecs only produce i32/i64/str"),
        }
    }

    /// Exact statistics without full decode where the codec already proves
    /// them (dictionary columns), falling back to decode-and-scan.
    pub(crate) fn compute_stats(&self) -> ColumnStats {
        match self {
            EncColumn::Dict(c) => ColumnStats {
                // Every dictionary entry is referenced by construction, so
                // the dictionary size is the exact distinct count.
                distinct: c.views.len(),
                domain: StatsDomain::Str,
                max_bytes: c.views.iter().map(|&(_, l)| l as usize).max().unwrap_or(0),
            },
            _ => ColumnStats::compute(&self.to_raw()),
        }
    }
}

/// Raw resident bytes of a column's uncompressed representation.
pub fn raw_bytes(col: &Column) -> usize {
    match col {
        Column::I16(v) => v.len() * 2,
        Column::I32(v) => v.len() * 4,
        Column::I64(v) => v.len() * 8,
        Column::F64(v) => v.len() * 8,
        Column::Str { arena, views } => arena.len() + views.len() * 8,
        Column::Enc(e) => match &**e {
            EncColumn::Dict(c) => {
                let dict_of = |code: usize| c.views[code].1 as usize;
                (0..c.len).map(|r| dict_of(c.code(r)) + 8).sum()
            }
            EncColumn::Delta(c) => c.len * 4,
            EncColumn::For(c) => c.len * if c.dt == DataType::I32 { 4 } else { 8 },
        },
    }
}

/// Picks and applies a codec for one column, or `None` when no codec saves
/// at least 10% over the raw representation (or the type has no codec).
pub fn encode_column(col: &Column, stats: &ColumnStats) -> Option<EncColumn> {
    if col.is_empty() {
        return None;
    }
    let raw = raw_bytes(col);
    let worth = |enc: &EncColumn| enc.encoded_bytes() * 10 <= raw * 9;
    match col {
        Column::Str { arena, views } => {
            if stats.distinct > DICT_MAX_VALUES {
                return None;
            }
            let enc = EncColumn::Dict(DictStr::encode(arena, views));
            worth(&enc).then_some(enc)
        }
        Column::I32(v) => {
            if v.windows(2).all(|w| w[0] <= w[1]) {
                let delta = EncColumn::Delta(DeltaInts::encode(v));
                let fr = EncColumn::For(ForInts::encode(
                    DataType::I32,
                    &v.iter().map(|&x| i64::from(x)).collect::<Vec<_>>(),
                ));
                let best = if delta.encoded_bytes() <= fr.encoded_bytes() {
                    delta
                } else {
                    fr
                };
                return worth(&best).then_some(best);
            }
            let enc = EncColumn::For(ForInts::encode(
                DataType::I32,
                &v.iter().map(|&x| i64::from(x)).collect::<Vec<_>>(),
            ));
            worth(&enc).then_some(enc)
        }
        Column::I64(v) => {
            let enc = EncColumn::For(ForInts::encode(DataType::I64, v));
            worth(&enc).then_some(enc)
        }
        Column::I16(_) | Column::F64(_) | Column::Enc(_) => None,
    }
}

/// Re-encodes every column of `table` through [`encode_column`], seeding
/// the new table's statistics from the raw column scan so analysis facts
/// are identical pre- and post-encoding.
pub fn encode_table(table: &Table) -> Table {
    let stats = table.stats().to_vec();
    let cols: Vec<(String, Column)> = table
        .column_names()
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let col = table.column_at(i);
            let enc = match col {
                Column::Enc(_) => None,
                _ => encode_column(col, &stats[i]).map(|e| Column::Enc(Arc::new(e))),
            };
            (name.clone(), enc.unwrap_or_else(|| col.clone()))
        })
        .collect();
    let out = Table::new(table.name(), cols).expect("re-encoding preserves table shape");
    out.seed_stats(stats);
    out
}

/// Fully decodes every encoded column of `table` back to raw storage,
/// carrying the statistics over unchanged. The result is the exact
/// inverse of [`encode_table`] on the value level: same rows, same
/// stats, no [`Column::Enc`] anywhere — the uncompressed twin the
/// differential fuzzer runs against.
pub fn decode_table(table: &Table) -> Table {
    let stats = table.stats().to_vec();
    let cols: Vec<(String, Column)> = table
        .column_names()
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let col = match table.column_at(i) {
                Column::Enc(e) => e.to_raw(),
                other => other.clone(),
            };
            (name.clone(), col)
        })
        .collect();
    let out = Table::new(table.name(), cols).expect("decoding preserves table shape");
    out.seed_stats(stats);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64: deterministic test-local RNG (no external crates).
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn roundtrip_for_i64(values: &[i64]) {
        let enc = ForInts::encode(DataType::I64, values);
        let col = EncColumn::For(enc);
        assert_eq!(col.slice_vector(0, values.len()).as_i64(), values);
    }

    #[test]
    fn for_roundtrip_random_and_adversarial() {
        let mut rng = Rng(0xF0F0);
        for &(n, span) in &[
            (0usize, 1u64),
            (1, 1),
            (100, 1),
            (5000, 1 << 20),
            (40000, 3),
        ] {
            let base = rng.next() as i64 >> 8;
            let values: Vec<i64> = (0..n)
                .map(|_| base.wrapping_add(rng.below(span) as i64))
                .collect();
            roundtrip_for_i64(&values);
        }
        // Full 64-bit range: width 64 must still round-trip.
        roundtrip_for_i64(&[i64::MIN, i64::MAX, 0, -1, 1]);
        // All-equal partition: width 0.
        roundtrip_for_i64(&vec![42i64; ENC_PART_ROWS + 7]);
    }

    #[test]
    fn for_i32_roundtrip_and_gather() {
        let values: Vec<i32> = (0..10_000).map(|i| (i * 7) % 501 - 250).collect();
        let enc = ForInts::encode(
            DataType::I32,
            &values.iter().map(|&x| i64::from(x)).collect::<Vec<_>>(),
        );
        let col = EncColumn::For(enc);
        assert_eq!(col.slice_vector(100, 900).as_i32(), &values[100..1000]);
        let idx = [0usize, 9999, 5000, 1];
        let want: Vec<i32> = idx.iter().map(|&r| values[r]).collect();
        assert_eq!(col.gather_vector(&idx).as_i32(), &want[..]);
    }

    #[test]
    fn delta_roundtrip_random_and_adversarial() {
        let mut rng = Rng(0xDE17A);
        for &(n, step) in &[(1usize, 1u64), (63, 5), (64, 5), (65, 5), (50_000, 1 << 30)] {
            let mut v = Vec::with_capacity(n);
            let mut acc = i32::MIN / 2;
            for _ in 0..n {
                acc = acc.saturating_add(rng.below(step) as i32);
                v.push(acc);
            }
            let col = EncColumn::Delta(DeltaInts::encode(&v));
            assert_eq!(col.slice_vector(0, n).as_i32(), &v[..]);
            // Unaligned sub-ranges exercise the sync-replay path.
            if n > 10 {
                assert_eq!(col.slice_vector(7, n - 9).as_i32(), &v[7..n - 2]);
                assert_eq!(col.gather_vector(&[n - 1, 0, n / 2]).as_i32()[1], v[0]);
            }
        }
        // Full-range deltas: i32::MIN .. i32::MAX in two rows.
        let v = vec![i32::MIN, i32::MAX, i32::MAX];
        let col = EncColumn::Delta(DeltaInts::encode(&v));
        assert_eq!(col.slice_vector(0, 3).as_i32(), &v[..]);
        // All-equal: zero-width deltas.
        let v = vec![9i32; 2 * ENC_PART_ROWS + 1];
        let col = EncColumn::Delta(DeltaInts::encode(&v));
        assert_eq!(col.slice_vector(ENC_PART_ROWS - 3, 7).as_i32(), &[9; 7]);
    }

    #[test]
    fn dict_roundtrip_sorted_codes_and_shared_arena() {
        let strs: Vec<String> = (0..1000).map(|i| format!("val{:03}", i % 37)).collect();
        let sv = StrVec::from_strings(&strs);
        let enc = DictStr::encode(sv.arena(), sv.views());
        assert_eq!(enc.views.len(), 37);
        // Sorted dictionary: code order is string order.
        let dict: Vec<&str> = (0..enc.views.len())
            .map(|c| {
                let (off, len) = enc.views[c];
                std::str::from_utf8(&enc.arena[off as usize..(off + len) as usize]).unwrap()
            })
            .collect();
        let mut sorted = dict.clone();
        sorted.sort_unstable();
        assert_eq!(dict, sorted);
        let col = EncColumn::Dict(enc);
        let v = col.slice_vector(5, 100);
        let out = v.as_str_vec();
        for i in 0..100 {
            assert_eq!(out.get(i), strs[5 + i]);
        }
        // Decoded vectors carry their codes for pushdown.
        let (dict_views, codes) = out.dict_codes().expect("dict vectors carry codes");
        assert_eq!(codes.len(), 100);
        assert_eq!(dict_views.len(), 37);
    }

    #[test]
    fn dict_adversarial_cases() {
        // Single-value dictionary: width 0.
        let strs = vec!["same"; ENC_PART_ROWS + 3];
        let sv = StrVec::from_strings(&strs);
        let col = EncColumn::Dict(DictStr::encode(sv.arena(), sv.views()));
        let v = col.slice_vector(ENC_PART_ROWS - 1, 4);
        assert!(v.as_str_vec().iter().all(|s| s == "same"));
        // Max-width dictionary: all rows distinct.
        let strs: Vec<String> = (0..300).map(|i| format!("u{i:04}")).collect();
        let sv = StrVec::from_strings(&strs);
        let enc = DictStr::encode(sv.arena(), sv.views());
        assert_eq!(enc.views.len(), 300);
        assert_eq!(enc.width, 9);
        let col = EncColumn::Dict(enc);
        for (i, s) in strs.iter().enumerate() {
            assert_eq!(col.gather_vector(&[i]).as_str_vec().get(0), s);
        }
        // Empty strings round-trip.
        let sv = StrVec::from_strings(&["", "a", "", "b"]);
        let col = EncColumn::Dict(DictStr::encode(sv.arena(), sv.views()));
        assert_eq!(col.slice_vector(0, 4).as_str_vec().get(2), "");
    }

    #[test]
    fn selection_rules_follow_stats() {
        // Low-NDV strings: dict chosen.
        let strs: Vec<String> = (0..10_000).map(|i| format!("c{}", i % 5)).collect();
        let sv = StrVec::from_strings(&strs);
        let col = Column::Str {
            arena: Arc::clone(sv.arena()),
            views: Arc::new(sv.views().to_vec()),
        };
        let enc = encode_column(&col, &ColumnStats::compute(&col)).unwrap();
        assert_eq!(enc.encoding(), Encoding::Dict);
        assert!(enc.encoded_bytes() * 2 <= raw_bytes(&col));

        // Nondecreasing keys: delta chosen.
        let col = Column::I32(Arc::new((0..100_000).collect()));
        let enc = encode_column(&col, &ColumnStats::compute(&col)).unwrap();
        assert_eq!(enc.encoding(), Encoding::Delta);
        assert!(enc.encoded_bytes() * 2 <= raw_bytes(&col));

        // Bounded non-sorted ints: frame-of-reference.
        let col = Column::I32(Arc::new((0..100_000).map(|i| (i * 17) % 100).collect()));
        let enc = encode_column(&col, &ColumnStats::compute(&col)).unwrap();
        assert_eq!(enc.encoding(), Encoding::For);

        // Full-width random ints: savings under 10%, stays raw.
        let mut rng = Rng(0x5EED);
        let col = Column::I64(Arc::new((0..10_000).map(|_| rng.next() as i64).collect()));
        assert!(encode_column(&col, &ColumnStats::compute(&col)).is_none());

        // Unencodable types and empty columns stay raw.
        assert!(encode_column(
            &Column::F64(Arc::new(vec![1.0])),
            &ColumnStats::compute(&Column::F64(Arc::new(vec![1.0])))
        )
        .is_none());
        let empty = Column::I32(Arc::new(vec![]));
        assert!(encode_column(&empty, &ColumnStats::compute(&empty)).is_none());
    }

    #[test]
    fn encode_table_preserves_stats_and_data() {
        let keys = Column::I32(Arc::new((0..5000).collect()));
        let vals = Column::I64(Arc::new((0..5000).map(|i| i % 97).collect()));
        let sv = StrVec::from_strings(
            &(0..5000)
                .map(|i| format!("g{}", i % 11))
                .collect::<Vec<_>>(),
        );
        let strs = Column::Str {
            arena: Arc::clone(sv.arena()),
            views: Arc::new(sv.views().to_vec()),
        };
        let raw = Table::new(
            "t",
            vec![("k".into(), keys), ("v".into(), vals), ("s".into(), strs)],
        )
        .unwrap();
        let raw_stats = raw.stats().to_vec();
        let enc = encode_table(&raw);
        assert_eq!(enc.rows(), 5000);
        assert_eq!(enc.stats(), &raw_stats[..]);
        for i in 0..3 {
            assert!(matches!(enc.column_at(i), Column::Enc(_)), "column {i}");
            let a = raw.column_at(i).slice_vector(0, 5000);
            let b = enc.column_at(i).slice_vector(0, 5000);
            match (a, b) {
                (Vector::I32(x), Vector::I32(y)) => assert_eq!(x, y),
                (Vector::I64(x), Vector::I64(y)) => assert_eq!(x, y),
                (Vector::Str(x), Vector::Str(y)) => {
                    assert!(x.iter().eq(y.iter()))
                }
                _ => panic!("type changed by encoding"),
            }
        }
    }

    #[test]
    fn enc_column_stats_match_raw() {
        let sv = StrVec::from_strings(
            &(0..4000)
                .map(|i| format!("s{}", i % 19))
                .collect::<Vec<_>>(),
        );
        let raw = Column::Str {
            arena: Arc::clone(sv.arena()),
            views: Arc::new(sv.views().to_vec()),
        };
        let enc = Column::Enc(Arc::new(
            encode_column(&raw, &ColumnStats::compute(&raw)).unwrap(),
        ));
        assert_eq!(ColumnStats::compute(&enc), ColumnStats::compute(&raw));

        let raw = Column::I32(Arc::new((0..4000).map(|i| i % 1000).collect()));
        let enc = Column::Enc(Arc::new(
            encode_column(&raw, &ColumnStats::compute(&raw)).unwrap(),
        ));
        assert_eq!(ColumnStats::compute(&enc), ColumnStats::compute(&raw));
    }

    #[test]
    fn part_ranges_cover_exactly() {
        let cases = [
            (0usize, 0usize),
            (0, 5),
            (100, ENC_PART_ROWS),
            (ENC_PART_ROWS - 1, 2),
            (0, 3 * ENC_PART_ROWS + 17),
            (2 * ENC_PART_ROWS, ENC_PART_ROWS),
        ];
        for &(start, n) in &cases {
            let ranges: Vec<_> = part_ranges(start, n).collect();
            let total: usize = ranges.iter().map(|&(_, _, m)| m).sum();
            assert_eq!(total, n, "start={start} n={n}");
            let mut pos = start;
            for (p, lo, m) in ranges {
                assert_eq!(p * ENC_PART_ROWS + lo, pos);
                assert!(lo + m <= ENC_PART_ROWS);
                pos += m;
            }
        }
    }
}
