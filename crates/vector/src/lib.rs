#![warn(missing_docs)]
//! # ma-vector — columnar vector substrate
//!
//! The execution substrate of the Micro Adaptivity reproduction: typed value
//! vectors of (at most) [`VECTOR_SIZE`] elements, *selection vectors* holding
//! the positions of qualifying tuples, multi-column [`DataChunk`]s flowing
//! between operators, and in-memory columnar [`Table`]s that scans read from.
//!
//! The design follows §1.1 of the paper: a vector is "an array of (e.g. 1000)
//! tuples"; selection primitives produce selection vectors that other
//! primitives consume so that a `Select` never has to copy column data.
//!
//! Strings use an arena representation (`(offset, len)` views into a shared
//! byte buffer) mirroring Vectorwise's `char**` vectors: every element is
//! individually addressable, so *selective computation* (writing `res[i]`
//! only for selected positions `i`) works for strings exactly as for
//! fixed-width types.

pub mod batch;
pub mod builder;
pub mod encode;
pub mod partition;
pub mod schema;
pub mod selvec;
pub mod stats;
pub mod table;
pub mod types;
pub mod vector;

pub use batch::DataChunk;
pub use builder::ColumnBuilder;
pub use encode::{decode_table, encode_column, encode_table, EncColumn, Encoding, ENC_PART_ROWS};
pub use partition::{MorselQueue, RowRange, MORSEL_ROWS, VECTORS_PER_MORSEL};
pub use schema::{Field, Schema};
pub use selvec::SelVec;
pub use stats::{ColumnStats, StatsDomain};
pub use table::{Column, Table, TableError};
pub use types::{DataType, VECTOR_SIZE};
pub use vector::{StrVec, Vector};
