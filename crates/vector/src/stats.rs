//! Per-column base-table statistics: exact min/max, distinct counts, and
//! float finiteness.
//!
//! These are the *base facts* the plan-level abstract interpreter
//! (`ma_executor::analyze`) starts from: every derived interval, NDV bound,
//! and row-count bound is rooted in a [`ColumnStats`] computed here by a
//! single full scan of the column. The counts are **exact**, not sketches —
//! exactness is what lets the analyzer treat `distinct == rows` as a proof
//! of all-distinctness (which in turn keeps join row bounds probe-sided)
//! rather than an estimate that could lie. At the scale factors this
//! repository runs (SF ≤ 1 in tests, dictionary-compressible strings), one
//! hashed pass per column is cheap, and [`Table::stats`](crate::Table::stats)
//! memoizes it so tables that are never analyzed never pay it.

use std::collections::HashSet;

use crate::table::Column;

/// Exact single-pass statistics for one table column.
///
/// `distinct` is the exact number of distinct values in the column (distinct
/// bit patterns for floats, so `-0.0` and `0.0` count as two and every NaN
/// payload as one). The per-type payload carries the value domain.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Exact count of distinct values in the column.
    pub distinct: usize,
    /// Type-specific value domain.
    pub domain: StatsDomain,
    /// Widest single value in bytes: the scalar width for numeric columns
    /// (2/4/8), the longest string's byte length for `Str`. Zero for an
    /// empty column. The memory/cost analyzer multiplies this by row
    /// bounds to bound string-storage bytes.
    pub max_bytes: usize,
}

/// The value domain of a column, by scalar type.
///
/// Integer columns of any width normalize to `i64` bounds. An *empty*
/// column is represented by an empty interval (`min > max` for integers,
/// `min = +inf, max = -inf` for floats) with `distinct == 0`.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsDomain {
    /// `I16` / `I32` / `I64` columns, bounds widened to `i64`.
    Int {
        /// Smallest value present.
        min: i64,
        /// Largest value present.
        max: i64,
    },
    /// `F64` columns. `min`/`max` range over the non-NaN values.
    Float {
        /// Smallest non-NaN value present.
        min: f64,
        /// Largest non-NaN value present.
        max: f64,
        /// True iff no value is NaN or ±infinity.
        all_finite: bool,
    },
    /// `Str` columns: only the distinct count is tracked.
    Str,
}

impl ColumnStats {
    /// Computes exact statistics for `col` in one pass.
    pub fn compute(col: &Column) -> ColumnStats {
        match col {
            Column::I16(v) => int_stats(v.iter().map(|&x| i64::from(x)), 2, v.len()),
            Column::I32(v) => int_stats(v.iter().map(|&x| i64::from(x)), 4, v.len()),
            Column::I64(v) => int_stats(v.iter().copied(), 8, v.len()),
            Column::F64(v) => {
                let mut seen = HashSet::with_capacity(v.len().min(1 << 16));
                let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
                let mut all_finite = true;
                for &x in v.iter() {
                    seen.insert(x.to_bits());
                    if x.is_nan() {
                        all_finite = false;
                    } else {
                        all_finite &= x.is_finite();
                        min = min.min(x);
                        max = max.max(x);
                    }
                }
                ColumnStats {
                    distinct: seen.len(),
                    domain: StatsDomain::Float {
                        min,
                        max,
                        all_finite,
                    },
                    max_bytes: if v.is_empty() { 0 } else { 8 },
                }
            }
            Column::Enc(e) => e.compute_stats(),
            Column::Str { arena, views } => {
                let mut seen: HashSet<&[u8]> = HashSet::with_capacity(views.len().min(1 << 16));
                let mut max_bytes = 0usize;
                for &(off, len) in views.iter() {
                    seen.insert(&arena[off as usize..(off + len) as usize]);
                    max_bytes = max_bytes.max(len as usize);
                }
                ColumnStats {
                    distinct: seen.len(),
                    domain: StatsDomain::Str,
                    max_bytes,
                }
            }
        }
    }
}

fn int_stats(values: impl Iterator<Item = i64>, width: usize, rows: usize) -> ColumnStats {
    let mut seen = HashSet::new();
    let (mut min, mut max) = (i64::MAX, i64::MIN);
    for x in values {
        seen.insert(x);
        min = min.min(x);
        max = max.max(x);
    }
    ColumnStats {
        distinct: seen.len(),
        domain: StatsDomain::Int { min, max },
        max_bytes: if rows == 0 { 0 } else { width },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn int_min_max_distinct_are_exact() {
        let col = Column::I32(Arc::new(vec![3, -7, 3, 42, 0]));
        let s = ColumnStats::compute(&col);
        assert_eq!(s.distinct, 4);
        assert_eq!(s.domain, StatsDomain::Int { min: -7, max: 42 });
        assert_eq!(s.max_bytes, 4);
    }

    #[test]
    fn empty_int_column_has_empty_interval() {
        let col = Column::I64(Arc::new(vec![]));
        let s = ColumnStats::compute(&col);
        assert_eq!(s.distinct, 0);
        assert_eq!(
            s.domain,
            StatsDomain::Int {
                min: i64::MAX,
                max: i64::MIN
            }
        );
        assert_eq!(s.max_bytes, 0);
    }

    #[test]
    fn float_stats_track_finiteness_and_skip_nan_in_bounds() {
        let col = Column::F64(Arc::new(vec![1.5, f64::NAN, -2.0, 1.5]));
        let s = ColumnStats::compute(&col);
        assert_eq!(s.distinct, 3);
        match s.domain {
            StatsDomain::Float {
                min,
                max,
                all_finite,
            } => {
                assert_eq!((min, max), (-2.0, 1.5));
                assert!(!all_finite);
            }
            other => panic!("unexpected domain: {other:?}"),
        }
    }

    #[test]
    fn string_distinct_compares_bytes_not_views() {
        // Two views pointing at identical byte ranges are one value.
        let arena: Arc<[u8]> = Arc::from(&b"abcabx"[..]);
        let views = Arc::new(vec![(0u32, 2u32), (3, 2), (4, 2)]);
        let col = Column::Str { arena, views };
        let s = ColumnStats::compute(&col);
        assert_eq!(s.distinct, 2); // "ab", "ab", "bx"
        assert_eq!(s.domain, StatsDomain::Str);
        assert_eq!(s.max_bytes, 2);
    }
}
