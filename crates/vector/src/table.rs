//! In-memory columnar tables: the storage substrate scans read from.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::encode::{EncColumn, Encoding};
use crate::stats::ColumnStats;
use crate::types::DataType;
use crate::vector::{StrVec, Vector};

/// Errors raised by table construction and lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A referenced column name does not exist.
    UnknownColumn(String),
    /// Columns of a table have differing row counts.
    LengthMismatch {
        /// Offending column name.
        column: String,
        /// Row count the table already has.
        expected: usize,
        /// Row count the column brought.
        got: usize,
    },
    /// A column name was registered twice.
    DuplicateColumn(String),
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            TableError::LengthMismatch {
                column,
                expected,
                got,
            } => write!(f, "column {column} has {got} rows, table has {expected}"),
            TableError::DuplicateColumn(c) => write!(f, "duplicate column: {c}"),
        }
    }
}

impl std::error::Error for TableError {}

/// One fully materialized column of a [`Table`].
///
/// Fixed-width types are plain `Vec`s; strings are a byte arena plus
/// per-row `(offset, len)` views — scans hand out [`StrVec`]s that share the
/// arena, so scanning strings never copies bytes.
#[derive(Debug, Clone)]
pub enum Column {
    /// `I16`.
    I16(Arc<Vec<i16>>),
    /// `I32`.
    I32(Arc<Vec<i32>>),
    /// `I64`.
    I64(Arc<Vec<i64>>),
    /// `F64`.
    F64(Arc<Vec<f64>>),
    /// `Str`.
    Str {
        /// Shared byte storage.
        arena: Arc<[u8]>,
        /// Per-row `(offset, len)` views into the arena.
        views: Arc<Vec<(u32, u32)>>,
    },
    /// A compressed column (see [`crate::encode`]). Lossless: slices and
    /// gathers decode through the reference path, so every consumer of a
    /// raw column works unchanged on an encoded one.
    Enc(Arc<EncColumn>),
}

impl Column {
    /// The scalar type stored in the column.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::I16(_) => DataType::I16,
            Column::I32(_) => DataType::I32,
            Column::I64(_) => DataType::I64,
            Column::F64(_) => DataType::F64,
            Column::Str { .. } => DataType::Str,
            Column::Enc(e) => e.data_type(),
        }
    }

    /// The codec of an encoded column, `None` for raw storage.
    pub fn encoding(&self) -> Option<Encoding> {
        match self {
            Column::Enc(e) => Some(e.encoding()),
            _ => None,
        }
    }

    /// Resident bytes of the column as stored: the packed representation
    /// for encoded columns, the raw vectors/arena otherwise.
    pub fn resident_bytes(&self) -> usize {
        match self {
            Column::Enc(e) => e.encoded_bytes(),
            other => crate::encode::raw_bytes(other),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::I16(v) => v.len(),
            Column::I32(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::Str { views, .. } => views.len(),
            Column::Enc(e) => e.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes rows `[start, start+n)` as a [`Vector`].
    ///
    /// Fixed-width data is copied (the vectorized model's per-batch
    /// materialization cost); strings share the arena and copy only views.
    pub fn slice_vector(&self, start: usize, n: usize) -> Vector {
        match self {
            Column::I16(v) => Vector::I16(v[start..start + n].to_vec()),
            Column::I32(v) => Vector::I32(v[start..start + n].to_vec()),
            Column::I64(v) => Vector::I64(v[start..start + n].to_vec()),
            Column::F64(v) => Vector::F64(v[start..start + n].to_vec()),
            Column::Str { arena, views } => Vector::Str(StrVec::from_views(
                Arc::clone(arena),
                views[start..start + n].to_vec(),
            )),
            Column::Enc(e) => e.slice_vector(start, n),
        }
    }

    /// Concatenates same-typed column parts into one column (the merge step
    /// of partition-parallel table generation). String parts get their
    /// arenas copied into one buffer with views re-offset.
    ///
    /// # Panics
    /// If `parts` is empty or the parts disagree on type.
    pub fn concat(parts: &[Column]) -> Column {
        assert!(!parts.is_empty(), "cannot concat zero column parts");
        // Encoded parts decode first: concatenation re-partitions rows, so
        // any re-encoding decision belongs to the caller (encode after).
        if parts.iter().any(|p| matches!(p, Column::Enc(_))) {
            let raw: Vec<Column> = parts
                .iter()
                .map(|p| match p {
                    Column::Enc(e) => e.to_raw(),
                    other => other.clone(),
                })
                .collect();
            return Column::concat(&raw);
        }
        let ty = parts[0].data_type();
        assert!(
            parts.iter().all(|p| p.data_type() == ty),
            "column parts must share one type"
        );
        let rows: usize = parts.iter().map(Column::len).sum();
        match ty {
            DataType::I16 => {
                let mut v = Vec::with_capacity(rows);
                for p in parts {
                    if let Column::I16(x) = p {
                        v.extend_from_slice(x);
                    }
                }
                Column::I16(Arc::new(v))
            }
            DataType::I32 => {
                let mut v = Vec::with_capacity(rows);
                for p in parts {
                    if let Column::I32(x) = p {
                        v.extend_from_slice(x);
                    }
                }
                Column::I32(Arc::new(v))
            }
            DataType::I64 => {
                let mut v = Vec::with_capacity(rows);
                for p in parts {
                    if let Column::I64(x) = p {
                        v.extend_from_slice(x);
                    }
                }
                Column::I64(Arc::new(v))
            }
            DataType::F64 => {
                let mut v = Vec::with_capacity(rows);
                for p in parts {
                    if let Column::F64(x) = p {
                        v.extend_from_slice(x);
                    }
                }
                Column::F64(Arc::new(v))
            }
            DataType::Str => {
                let bytes: usize = parts
                    .iter()
                    .map(|p| match p {
                        Column::Str { arena, .. } => arena.len(),
                        _ => 0,
                    })
                    .sum();
                let mut arena = Vec::with_capacity(bytes);
                let mut views = Vec::with_capacity(rows);
                for p in parts {
                    if let Column::Str {
                        arena: a,
                        views: vs,
                    } = p
                    {
                        let base = arena.len() as u32;
                        arena.extend_from_slice(a);
                        views.extend(vs.iter().map(|&(off, len)| (off + base, len)));
                    }
                }
                Column::Str {
                    arena: arena.into(),
                    views: Arc::new(views),
                }
            }
        }
    }

    /// Materializes arbitrary `rows` (a gather) as a [`Vector`].
    pub fn gather_vector(&self, rows: &[usize]) -> Vector {
        match self {
            Column::I16(v) => Vector::I16(rows.iter().map(|&r| v[r]).collect()),
            Column::I32(v) => Vector::I32(rows.iter().map(|&r| v[r]).collect()),
            Column::I64(v) => Vector::I64(rows.iter().map(|&r| v[r]).collect()),
            Column::F64(v) => Vector::F64(rows.iter().map(|&r| v[r]).collect()),
            Column::Str { arena, views } => Vector::Str(StrVec::from_views(
                Arc::clone(arena),
                rows.iter().map(|&r| views[r]).collect(),
            )),
            Column::Enc(e) => e.gather_vector(rows),
        }
    }
}

/// An immutable, named, in-memory columnar table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    column_names: Vec<String>,
    by_name: HashMap<String, usize>,
    columns: Vec<Column>,
    rows: usize,
    /// Lazily computed per-column statistics (see [`Table::stats`]).
    stats: OnceLock<Vec<ColumnStats>>,
}

impl Table {
    /// Builds a table from `(name, column)` pairs. All columns must have the
    /// same row count and distinct names.
    pub fn new(name: impl Into<String>, cols: Vec<(String, Column)>) -> Result<Self, TableError> {
        let rows = cols.first().map_or(0, |(_, c)| c.len());
        let mut column_names = Vec::with_capacity(cols.len());
        let mut by_name = HashMap::with_capacity(cols.len());
        let mut columns = Vec::with_capacity(cols.len());
        for (cname, col) in cols {
            if col.len() != rows {
                return Err(TableError::LengthMismatch {
                    column: cname,
                    expected: rows,
                    got: col.len(),
                });
            }
            if by_name.insert(cname.clone(), columns.len()).is_some() {
                return Err(TableError::DuplicateColumn(cname));
            }
            column_names.push(cname);
            columns.push(col);
        }
        Ok(Table {
            name: name.into(),
            column_names,
            by_name,
            columns,
            rows,
            stats: OnceLock::new(),
        })
    }

    /// Exact per-column statistics, in declaration order.
    ///
    /// Computed by one full scan per column on first access and memoized
    /// for the table's lifetime (the table is immutable, so the stats never
    /// go stale). Tables that are never analyzed never pay the scan.
    pub fn stats(&self) -> &[ColumnStats] {
        self.stats
            .get_or_init(|| self.columns.iter().map(ColumnStats::compute).collect())
    }

    /// Seeds the memoized statistics (used by `encode::encode_table`, which
    /// already scanned the raw columns: re-deriving stats from the encoded
    /// columns would decode every row again for an identical result).
    pub(crate) fn seed_stats(&self, stats: Vec<ColumnStats>) {
        let _ = self.stats.set(stats);
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> &[String] {
        &self.column_names
    }

    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> Result<usize, TableError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| TableError::UnknownColumn(format!("{}.{}", self.name, name)))
    }

    /// A named column.
    pub fn column(&self, name: &str) -> Result<&Column, TableError> {
        Ok(&self.columns[self.column_index(name)?])
    }

    /// Column by position.
    pub fn column_at(&self, i: usize) -> &Column {
        &self.columns[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> Table {
        Table::new(
            "t",
            vec![
                ("a".into(), Column::I32(Arc::new(vec![1, 2, 3]))),
                ("b".into(), Column::F64(Arc::new(vec![0.5, 1.5, 2.5]))),
                ("s".into(), {
                    let sv = StrVec::from_strings(&["x", "yy", "zzz"]);
                    Column::Str {
                        arena: Arc::clone(sv.arena()),
                        views: Arc::new(sv.views().to_vec()),
                    }
                }),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_lookup() {
        let t = mk();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.column_index("b").unwrap(), 1);
        assert!(matches!(
            t.column_index("nope"),
            Err(TableError::UnknownColumn(_))
        ));
        assert_eq!(t.column("a").unwrap().data_type(), DataType::I32);
    }

    #[test]
    fn length_mismatch_rejected() {
        let err = Table::new(
            "t",
            vec![
                ("a".into(), Column::I32(Arc::new(vec![1, 2]))),
                ("b".into(), Column::I32(Arc::new(vec![1]))),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, TableError::LengthMismatch { .. }));
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = Table::new(
            "t",
            vec![
                ("a".into(), Column::I32(Arc::new(vec![1]))),
                ("a".into(), Column::I32(Arc::new(vec![2]))),
            ],
        )
        .unwrap_err();
        assert_eq!(err, TableError::DuplicateColumn("a".into()));
    }

    #[test]
    fn slice_vector_copies_fixed_width() {
        let t = mk();
        let v = t.column("a").unwrap().slice_vector(1, 2);
        assert_eq!(v.as_i32(), &[2, 3]);
    }

    #[test]
    fn slice_vector_shares_string_arena() {
        let t = mk();
        let v = t.column("s").unwrap().slice_vector(0, 3);
        let sv = v.as_str_vec();
        assert_eq!(sv.get(2), "zzz");
        if let Column::Str { arena, .. } = t.column("s").unwrap() {
            assert!(Arc::ptr_eq(arena, sv.arena()));
        } else {
            panic!("not a string column");
        }
    }

    #[test]
    fn concat_fixed_width_and_strings() {
        let a = Column::I32(Arc::new(vec![1, 2]));
        let b = Column::I32(Arc::new(vec![3]));
        let c = Column::concat(&[a, b]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.slice_vector(0, 3).as_i32(), &[1, 2, 3]);

        let mk = |strs: &[&str]| {
            let sv = StrVec::from_strings(strs);
            Column::Str {
                arena: Arc::clone(sv.arena()),
                views: Arc::new(sv.views().to_vec()),
            }
        };
        let s = Column::concat(&[mk(&["ab", "c"]), mk(&[]), mk(&["defg"])]);
        assert_eq!(s.len(), 3);
        let v = s.slice_vector(0, 3);
        let sv = v.as_str_vec();
        assert_eq!(sv.get(0), "ab");
        assert_eq!(sv.get(1), "c");
        assert_eq!(sv.get(2), "defg");
    }

    #[test]
    #[should_panic(expected = "share one type")]
    fn concat_rejects_mixed_types() {
        Column::concat(&[
            Column::I32(Arc::new(vec![1])),
            Column::I64(Arc::new(vec![1])),
        ]);
    }

    #[test]
    fn gather_vector() {
        let t = mk();
        let v = t.column("a").unwrap().gather_vector(&[2, 0]);
        assert_eq!(v.as_i32(), &[3, 1]);
        let s = t.column("s").unwrap().gather_vector(&[1]);
        assert_eq!(s.as_str_vec().get(0), "yy");
    }
}
