//! Table partitioning for parallel scans: the shared morsel queue that
//! sharded scans pull from.
//!
//! A *morsel* is a fixed-size run of consecutive rows (a small multiple of
//! the scanning vector size). Worker threads repeatedly grab the next
//! unclaimed morsel from a shared [`MorselQueue`] — the morsel-driven
//! scheduling of Leis et al. — so load balances dynamically while every
//! morsel boundary stays a pure function of the table size. Because the
//! morsel size is a multiple of the vector size (consumers enforce this;
//! see `Scan::morsel` in `ma-executor`), the *multiset* of chunk boundaries
//! produced by any number of workers equals the single-threaded scan's,
//! which is what makes merged per-worker primitive statistics comparable
//! across thread counts (see DESIGN.md, "Per-worker statistics merge").

use std::sync::atomic::{AtomicUsize, Ordering};

/// Vectors per morsel: with the default [`crate::VECTOR_SIZE`] of 1024
/// this is the default [`MORSEL_ROWS`] grain of 16K rows.
pub const VECTORS_PER_MORSEL: usize = 16;

/// Default rows per morsel: [`VECTORS_PER_MORSEL`] default-sized vectors.
pub const MORSEL_ROWS: usize = VECTORS_PER_MORSEL * crate::VECTOR_SIZE;

/// A half-open range of row positions `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowRange {
    /// First row of the range.
    pub start: usize,
    /// Number of rows.
    pub len: usize,
}

impl RowRange {
    /// One past the last row.
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// A shared work queue handing out morsels of a table to scan workers.
///
/// The queue is just an atomic cursor over the fixed morsel grid, so
/// claiming a morsel is one `fetch_add` — no locks, no allocation.
#[derive(Debug)]
pub struct MorselQueue {
    rows: usize,
    morsel: usize,
    next: AtomicUsize,
}

impl MorselQueue {
    /// A queue over `rows` rows with the default [`MORSEL_ROWS`] grain
    /// (right for scans using the default [`crate::VECTOR_SIZE`]).
    pub fn new(rows: usize) -> Self {
        Self::with_morsel(rows, MORSEL_ROWS)
    }

    /// A queue with an explicit morsel size. Pick a multiple of the
    /// consuming scan's vector size — scans reject misaligned queues
    /// because morsel boundaries must coincide with sequential chunk
    /// boundaries (see the module docs).
    pub fn with_morsel(rows: usize, morsel: usize) -> Self {
        assert!(morsel > 0, "morsel size must be positive");
        MorselQueue {
            rows,
            morsel,
            next: AtomicUsize::new(0),
        }
    }

    /// Total rows covered by the queue.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Rows per morsel.
    pub fn morsel_rows(&self) -> usize {
        self.morsel
    }

    /// Claims the next unprocessed morsel, or `None` when the table is
    /// exhausted. Safe to call from any number of threads; each morsel is
    /// handed out exactly once.
    pub fn claim(&self) -> Option<RowRange> {
        loop {
            let start = self.next.load(Ordering::Relaxed);
            if start >= self.rows {
                return None;
            }
            let len = self.morsel.min(self.rows - start);
            if self
                .next
                .compare_exchange_weak(start, start + len, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return Some(RowRange { start, len });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn morsel_queue_hands_out_every_row_once() {
        let q = MorselQueue::with_morsel(10_000, crate::VECTOR_SIZE);
        let mut seen = 0;
        let mut expect_start = 0;
        while let Some(r) = q.claim() {
            assert_eq!(r.start, expect_start);
            seen += r.len;
            expect_start = r.end();
        }
        assert_eq!(seen, 10_000);
        assert!(q.claim().is_none());
    }

    #[test]
    fn morsel_queue_is_race_free_across_threads() {
        let q = Arc::new(MorselQueue::with_morsel(100 * 1024, crate::VECTOR_SIZE));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut claimed = Vec::new();
                while let Some(r) = q.claim() {
                    claimed.push(r);
                }
                claimed
            }));
        }
        let mut all: Vec<RowRange> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_by_key(|r| r.start);
        let total: usize = all.iter().map(|r| r.len).sum();
        assert_eq!(total, 100 * 1024);
        for w in all.windows(2) {
            assert_eq!(w[0].end(), w[1].start, "no gaps, no overlaps");
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_morsel_rejected() {
        MorselQueue::with_morsel(100, 0);
    }

    #[test]
    fn default_morsel_is_vector_aligned() {
        let q = MorselQueue::new(5);
        assert_eq!(q.morsel_rows() % crate::VECTOR_SIZE, 0);
        assert_eq!(q.claim(), Some(RowRange { start: 0, len: 5 }));
    }
}
