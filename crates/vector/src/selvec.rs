//! Selection vectors: positions of qualifying tuples within a vector.

/// A selection vector: a strictly increasing list of positions (`u32`) into
/// the vectors of a [`crate::DataChunk`].
///
/// Selection primitives (`sel_*`) produce these; most other primitives accept
/// an optional selection vector and then process only the selected positions
/// ("selective computation", Fig. 7 left in the paper). Keeping positions
/// instead of copying column data is what makes a vectorized `Select`
/// essentially free.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SelVec {
    positions: Vec<u32>,
}

impl SelVec {
    /// An empty selection vector (no tuple qualifies).
    pub fn new() -> Self {
        SelVec {
            positions: Vec::new(),
        }
    }

    /// A selection vector with capacity for `cap` positions.
    pub fn with_capacity(cap: usize) -> Self {
        SelVec {
            positions: Vec::with_capacity(cap),
        }
    }

    /// The identity selection `[0, 1, .., n-1]`.
    pub fn identity(n: usize) -> Self {
        SelVec {
            positions: (0..n as u32).collect(),
        }
    }

    /// Builds from raw positions. Debug-asserts strict monotonicity, the
    /// invariant every selection primitive preserves.
    pub fn from_positions(positions: Vec<u32>) -> Self {
        debug_assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "selection vector positions must be strictly increasing"
        );
        SelVec { positions }
    }

    /// Number of selected tuples.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if no tuple is selected.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The selected positions.
    pub fn as_slice(&self) -> &[u32] {
        &self.positions
    }

    /// Mutable access to the backing storage for primitives that fill the
    /// vector in place. The caller must leave positions strictly increasing.
    pub fn positions_mut(&mut self) -> &mut Vec<u32> {
        &mut self.positions
    }

    /// Resizes the backing storage to `n` entries (used by primitives that
    /// write through a raw slice and then shrink to the produced count).
    pub fn resize_for_write(&mut self, n: usize) {
        self.positions.resize(n, 0);
    }

    /// Truncates to the first `n` positions.
    pub fn truncate(&mut self, n: usize) {
        self.positions.truncate(n);
    }

    /// Selectivity relative to an input vector of `n` tuples.
    pub fn selectivity(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.positions.len() as f64 / n as f64
        }
    }

    /// Composes two selection levels: `outer` selects *within* `self`
    /// (positions into `self`'s entries), producing positions into the
    /// original vector. This is what a second conjunct's selection primitive
    /// produces when run under an existing selection vector.
    pub fn compose(&self, outer: &SelVec) -> SelVec {
        let inner = &self.positions;
        SelVec {
            positions: outer.positions.iter().map(|&i| inner[i as usize]).collect(),
        }
    }

    /// Iterator over selected positions as `usize`.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.positions.iter().map(|&p| p as usize)
    }

    /// The positions falling in `[start, end)`, rebased to the range (i.e.
    /// `start` is subtracted). This is how a selection vector follows its
    /// data through a sharded range split: each shard sees a local vector
    /// over its own rows.
    pub fn slice_range(&self, start: u32, end: u32) -> SelVec {
        let lo = self.positions.partition_point(|&p| p < start);
        let hi = self.positions.partition_point(|&p| p < end);
        SelVec {
            positions: self.positions[lo..hi].iter().map(|&p| p - start).collect(),
        }
    }

    /// A copy with every position shifted up by `delta` (rebasing a
    /// shard-local vector back into table coordinates).
    pub fn shifted(&self, delta: u32) -> SelVec {
        SelVec {
            positions: self.positions.iter().map(|&p| p + delta).collect(),
        }
    }

    /// Concatenates shard-local vectors, shifting each by its shard start.
    /// `parts` pairs a local vector with the global start of its range;
    /// ranges must be given in ascending, non-overlapping order so the
    /// result stays strictly increasing.
    pub fn concat_shifted(parts: &[(&SelVec, u32)]) -> SelVec {
        let total = parts.iter().map(|(s, _)| s.len()).sum();
        let mut positions = Vec::with_capacity(total);
        for (s, start) in parts {
            positions.extend(s.positions.iter().map(|&p| p + start));
        }
        SelVec::from_positions(positions)
    }
}

impl From<Vec<u32>> for SelVec {
    fn from(v: Vec<u32>) -> Self {
        SelVec::from_positions(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_covers_range() {
        let s = SelVec::identity(5);
        assert_eq!(s.as_slice(), &[0, 1, 2, 3, 4]);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_is_empty() {
        assert!(SelVec::new().is_empty());
        assert_eq!(SelVec::new().selectivity(100), 0.0);
    }

    #[test]
    fn selectivity_fraction() {
        let s = SelVec::from_positions(vec![1, 5, 9]);
        assert!((s.selectivity(10) - 0.3).abs() < 1e-12);
        assert_eq!(s.selectivity(0), 0.0);
    }

    #[test]
    fn compose_maps_through() {
        // inner selects positions 2,4,6,8 of the base vector;
        // outer selects entries 0 and 3 of *that*, i.e. base positions 2 and 8.
        let inner = SelVec::from_positions(vec![2, 4, 6, 8]);
        let outer = SelVec::from_positions(vec![0, 3]);
        assert_eq!(inner.compose(&outer).as_slice(), &[2, 8]);
    }

    #[test]
    fn compose_with_identity_is_noop() {
        let inner = SelVec::from_positions(vec![3, 7, 11]);
        let outer = SelVec::identity(3);
        assert_eq!(inner.compose(&outer), inner);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn non_monotonic_panics_in_debug() {
        let _ = SelVec::from_positions(vec![3, 1]);
    }

    #[test]
    fn slice_range_rebases() {
        let s = SelVec::from_positions(vec![1, 4, 6, 9, 12]);
        assert_eq!(s.slice_range(4, 10).as_slice(), &[0, 2, 5]);
        assert_eq!(s.slice_range(0, 2).as_slice(), &[1]);
        assert!(s.slice_range(7, 9).is_empty());
        assert_eq!(s.slice_range(0, 100), s);
    }

    #[test]
    fn split_concat_roundtrip() {
        let s = SelVec::from_positions(vec![0, 3, 5, 8, 11, 12]);
        let a = s.slice_range(0, 6);
        let b = s.slice_range(6, 10);
        let c = s.slice_range(10, 13);
        let back = SelVec::concat_shifted(&[(&a, 0), (&b, 6), (&c, 10)]);
        assert_eq!(back, s);
        assert_eq!(a.shifted(0), a);
        assert_eq!(b.shifted(6).as_slice(), &[8]);
    }

    #[test]
    fn resize_and_truncate_roundtrip() {
        let mut s = SelVec::new();
        s.resize_for_write(8);
        assert_eq!(s.len(), 8);
        for (i, p) in s.positions_mut().iter_mut().enumerate() {
            *p = (i * 2) as u32;
        }
        s.truncate(3);
        assert_eq!(s.as_slice(), &[0, 2, 4]);
    }
}
