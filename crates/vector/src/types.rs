//! Scalar type descriptors shared by vectors, tables and primitives.

/// Default number of tuples per vector.
///
/// The paper uses "e.g. 1000"; Vectorwise's default is 1024, which we adopt.
/// Powers of two keep the vw-greedy phase arithmetic branch-free (§3.2).
pub const VECTOR_SIZE: usize = 1024;

/// The scalar types supported by the engine.
///
/// These mirror the type axis of Vectorwise's template-generated primitives:
/// the paper's experiments use 16-bit `short`, 32-bit `int`, 64-bit `long`
/// (`schr`/`sint`/`slng` in primitive signatures), doubles and strings.
/// Dates are stored as `I32` days-since-epoch; decimals as `I64` scaled by
/// 100 (TPC-H money has two decimal digits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 16-bit signed integer (`schr`/short in paper signatures).
    I16,
    /// 32-bit signed integer (`sint`).
    I32,
    /// 64-bit signed integer (`slng`), also fixed-point decimal ×100.
    I64,
    /// 64-bit IEEE float.
    F64,
    /// Variable-length UTF-8 string.
    Str,
}

impl DataType {
    /// Width in bytes of one value, or `None` for variable-width types.
    pub fn fixed_width(self) -> Option<usize> {
        match self {
            DataType::I16 => Some(2),
            DataType::I32 => Some(4),
            DataType::I64 => Some(8),
            DataType::F64 => Some(8),
            DataType::Str => None,
        }
    }

    /// Lower-case name used in primitive signature strings (e.g. `i32` in
    /// `sel_lt_i32_col_val`).
    pub fn sig_name(self) -> &'static str {
        match self {
            DataType::I16 => "i16",
            DataType::I32 => "i32",
            DataType::I64 => "i64",
            DataType::F64 => "f64",
            DataType::Str => "str",
        }
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.sig_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_size_is_power_of_two() {
        assert!(VECTOR_SIZE.is_power_of_two());
    }

    #[test]
    fn fixed_widths() {
        assert_eq!(DataType::I16.fixed_width(), Some(2));
        assert_eq!(DataType::I32.fixed_width(), Some(4));
        assert_eq!(DataType::I64.fixed_width(), Some(8));
        assert_eq!(DataType::F64.fixed_width(), Some(8));
        assert_eq!(DataType::Str.fixed_width(), None);
    }

    #[test]
    fn sig_names_are_distinct() {
        let names = [
            DataType::I16,
            DataType::I32,
            DataType::I64,
            DataType::F64,
            DataType::Str,
        ]
        .map(DataType::sig_name);
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn display_matches_sig_name() {
        assert_eq!(DataType::I64.to_string(), "i64");
    }
}
