//! Multi-column data chunks flowing between operators.

use std::sync::Arc;

use crate::selvec::SelVec;
use crate::vector::Vector;

/// A batch of tuples: one [`Vector`] per column plus an optional selection
/// vector restricting which positions are live.
///
/// Columns are `Arc`-shared: operators that merely pass a column through
/// (e.g. `Select`, which only narrows the selection vector) clone the `Arc`
/// rather than the data — the vectorized equivalent of Vectorwise never
/// copying columns after a selection (§1.1).
#[derive(Debug, Clone)]
pub struct DataChunk {
    columns: Vec<Arc<Vector>>,
    /// Live positions; `None` means all `len` positions are live.
    sel: Option<SelVec>,
    /// Physical number of tuples in each column vector.
    len: usize,
}

impl DataChunk {
    /// Builds a chunk from columns. All columns must have equal length.
    pub fn new(columns: Vec<Arc<Vector>>) -> Self {
        let len = columns.first().map_or(0, |c| c.len());
        debug_assert!(
            columns.iter().all(|c| c.len() == len),
            "all columns in a chunk must have the same length"
        );
        DataChunk {
            columns,
            sel: None,
            len,
        }
    }

    /// An empty chunk with no columns and no rows.
    pub fn empty() -> Self {
        DataChunk {
            columns: Vec::new(),
            sel: None,
            len: 0,
        }
    }

    /// Builds a chunk of `len` rows with no columns (useful for count-only
    /// pipelines and tests).
    pub fn of_len(len: usize) -> Self {
        DataChunk {
            columns: Vec::new(),
            sel: None,
            len,
        }
    }

    /// Physical tuple count of the underlying vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the chunk holds no physical tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of *live* tuples (selection-vector length if present).
    pub fn live_count(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.len,
        }
    }

    /// The columns.
    pub fn columns(&self) -> &[Arc<Vector>] {
        &self.columns
    }

    /// Column `i`.
    pub fn column(&self, i: usize) -> &Arc<Vector> {
        &self.columns[i]
    }

    /// The selection vector, if any.
    pub fn sel(&self) -> Option<&SelVec> {
        self.sel.as_ref()
    }

    /// Replaces the selection vector.
    pub fn set_sel(&mut self, sel: Option<SelVec>) {
        debug_assert!(sel.as_ref().is_none_or(|s| s.iter().all(|p| p < self.len)));
        self.sel = sel;
    }

    /// Returns a copy of this chunk with a different selection vector, with
    /// columns shared.
    pub fn with_sel(&self, sel: Option<SelVec>) -> DataChunk {
        let mut c = self.clone();
        c.set_sel(sel);
        c
    }

    /// Appends a column (must match the chunk length).
    pub fn push_column(&mut self, col: Arc<Vector>) {
        if self.columns.is_empty() && self.len == 0 {
            self.len = col.len();
        }
        debug_assert_eq!(col.len(), self.len, "column length mismatch");
        self.columns.push(col);
    }

    /// Keeps only the columns at `indices`, in that order (projection).
    pub fn project(&self, indices: &[usize]) -> DataChunk {
        DataChunk {
            columns: indices
                .iter()
                .map(|&i| Arc::clone(&self.columns[i]))
                .collect(),
            sel: self.sel.clone(),
            len: self.len,
        }
    }

    /// Iterates live positions (respecting the selection vector).
    pub fn live_positions(&self) -> Vec<usize> {
        match &self.sel {
            Some(s) => s.iter().collect(),
            None => (0..self.len).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk2() -> DataChunk {
        DataChunk::new(vec![
            Arc::new(Vector::I32(vec![10, 20, 30, 40])),
            Arc::new(Vector::I64(vec![1, 2, 3, 4])),
        ])
    }

    #[test]
    fn counts_without_sel() {
        let c = chunk2();
        assert_eq!(c.len(), 4);
        assert_eq!(c.live_count(), 4);
        assert_eq!(c.live_positions(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn counts_with_sel() {
        let mut c = chunk2();
        c.set_sel(Some(SelVec::from_positions(vec![1, 3])));
        assert_eq!(c.len(), 4);
        assert_eq!(c.live_count(), 2);
        assert_eq!(c.live_positions(), vec![1, 3]);
    }

    #[test]
    fn with_sel_shares_columns() {
        let c = chunk2();
        let d = c.with_sel(Some(SelVec::from_positions(vec![0])));
        assert!(Arc::ptr_eq(c.column(0), d.column(0)));
        assert_eq!(d.live_count(), 1);
        assert_eq!(c.live_count(), 4);
    }

    #[test]
    fn project_reorders_columns() {
        let c = chunk2();
        let p = c.project(&[1, 0]);
        assert_eq!(p.column(0).data_type(), crate::DataType::I64);
        assert_eq!(p.column(1).data_type(), crate::DataType::I32);
    }

    #[test]
    fn push_column_sets_len_on_empty() {
        let mut c = DataChunk::empty();
        assert!(c.is_empty());
        c.push_column(Arc::new(Vector::I32(vec![1, 2])));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn of_len_carries_rows_without_columns() {
        let c = DataChunk::of_len(7);
        assert_eq!(c.len(), 7);
        assert_eq!(c.live_count(), 7);
        assert_eq!(c.columns().len(), 0);
    }
}
