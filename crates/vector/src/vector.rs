//! Typed value vectors.

use std::sync::Arc;

use crate::types::DataType;

/// A vector of variable-length strings.
///
/// Elements are `(offset, len)` views into a shared immutable byte arena.
/// This mirrors Vectorwise's `char**` string vectors: every element is
/// individually addressable, so a primitive can write `res[i]` for an
/// arbitrary selected position `i` without re-packing the whole vector, and
/// "producing" a string (fetch, substring) is O(1) — a new view into the same
/// arena.
#[derive(Debug, Clone)]
pub struct StrVec {
    arena: Arc<[u8]>,
    views: Vec<(u32, u32)>,
    /// Set when this vector was decoded from a dictionary-coded column:
    /// the sorted dictionary views (into `arena`) plus one code per
    /// element. Filters compare codes instead of bytes when present.
    dict: Option<DictPayload>,
}

/// Dictionary payload of a [`StrVec`] decoded from a dictionary-coded
/// column: the sorted dictionary views plus one code per element.
#[derive(Debug, Clone)]
struct DictPayload {
    views: Arc<Vec<(u32, u32)>>,
    codes: Vec<i32>,
}

/// Borrowed dictionary payload: `(sorted dictionary views, per-element
/// codes)`. See [`StrVec::dict_codes`].
pub type DictCodesRef<'a> = (&'a [(u32, u32)], &'a [i32]);

impl StrVec {
    /// Builds a string vector owning a fresh arena from the given strings.
    pub fn from_strings<S: AsRef<str>>(strings: &[S]) -> Self {
        let total: usize = strings.iter().map(|s| s.as_ref().len()).sum();
        let mut bytes = Vec::with_capacity(total);
        let mut views = Vec::with_capacity(strings.len());
        for s in strings {
            let s = s.as_ref();
            let off = bytes.len() as u32;
            bytes.extend_from_slice(s.as_bytes());
            views.push((off, s.len() as u32));
        }
        StrVec {
            arena: bytes.into(),
            views,
            dict: None,
        }
    }

    /// Builds from a shared arena and explicit views.
    ///
    /// Views must denote valid UTF-8 substrings of the arena; this is
    /// checked in debug builds.
    pub fn from_views(arena: Arc<[u8]>, views: Vec<(u32, u32)>) -> Self {
        #[cfg(debug_assertions)]
        for &(off, len) in &views {
            let bytes = &arena[off as usize..(off + len) as usize];
            debug_assert!(std::str::from_utf8(bytes).is_ok());
        }
        StrVec {
            arena,
            views,
            dict: None,
        }
    }

    /// Builds a dictionary-decoded vector: element views gathered from a
    /// sorted dictionary sharing `arena`, with the per-element codes kept
    /// alongside so equality filters can compare codes instead of bytes.
    pub fn from_dict(
        arena: Arc<[u8]>,
        dict_views: Arc<Vec<(u32, u32)>>,
        views: Vec<(u32, u32)>,
        codes: Vec<i32>,
    ) -> Self {
        debug_assert_eq!(views.len(), codes.len());
        StrVec {
            arena,
            views,
            dict: Some(DictPayload {
                views: dict_views,
                codes,
            }),
        }
    }

    /// The sorted dictionary views and per-element codes, when this vector
    /// was decoded from a dictionary-coded column. Codes are indices into
    /// the dictionary, and the dictionary is lexicographically sorted, so
    /// code equality is string equality.
    pub fn dict_codes(&self) -> Option<DictCodesRef<'_>> {
        self.dict
            .as_ref()
            .map(|d| (d.views.as_slice(), d.codes.as_slice()))
    }

    /// An empty vector sharing `arena`, with room for `cap` views, used as an
    /// output buffer by fetch/substring primitives.
    pub fn writable_like(&self, cap: usize) -> StrVec {
        StrVec {
            arena: Arc::clone(&self.arena),
            views: vec![(0, 0); cap],
            dict: None,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// The string at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &str {
        let (off, len) = self.views[i];
        let bytes = &self.arena[off as usize..(off + len) as usize];
        // SAFETY-free: constructors validate UTF-8 (always for from_strings,
        // debug-checked for from_views); use the checked form anyway since
        // string access is never on the per-tuple hot path measured by the
        // paper's experiments.
        std::str::from_utf8(bytes).expect("StrVec arena corruption")
    }

    /// The raw `(offset, len)` views.
    pub fn views(&self) -> &[(u32, u32)] {
        &self.views
    }

    /// Mutable views, for gather/substring primitives writing in place.
    pub fn views_mut(&mut self) -> &mut [(u32, u32)] {
        &mut self.views
    }

    /// The shared arena.
    pub fn arena(&self) -> &Arc<[u8]> {
        &self.arena
    }

    /// Iterates all strings in order.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

/// A typed vector of values: one column's worth of (at most
/// [`crate::VECTOR_SIZE`]) tuples.
#[derive(Debug, Clone)]
pub enum Vector {
    /// `I16`.
    I16(Vec<i16>),
    /// `I32`.
    I32(Vec<i32>),
    /// `I64`.
    I64(Vec<i64>),
    /// `F64`.
    F64(Vec<f64>),
    /// `Str`.
    Str(StrVec),
}

impl Vector {
    /// The scalar type of this vector.
    pub fn data_type(&self) -> DataType {
        match self {
            Vector::I16(_) => DataType::I16,
            Vector::I32(_) => DataType::I32,
            Vector::I64(_) => DataType::I64,
            Vector::F64(_) => DataType::F64,
            Vector::Str(_) => DataType::Str,
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        match self {
            Vector::I16(v) => v.len(),
            Vector::I32(v) => v.len(),
            Vector::I64(v) => v.len(),
            Vector::F64(v) => v.len(),
            Vector::Str(v) => v.len(),
        }
    }

    /// True when the vector holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A zeroed writable vector of type `dt` and length `n` (output buffer).
    pub fn zeroed(dt: DataType, n: usize) -> Vector {
        match dt {
            DataType::I16 => Vector::I16(vec![0; n]),
            DataType::I32 => Vector::I32(vec![0; n]),
            DataType::I64 => Vector::I64(vec![0; n]),
            DataType::F64 => Vector::F64(vec![0.0; n]),
            DataType::Str => Vector::Str(StrVec::from_strings::<&str>(&[]).writable_like(n)),
        }
    }

    /// Typed accessors. Panic on type mismatch — plan construction is typed,
    /// so a mismatch is a bug in the plan builder, not a runtime condition.
    pub fn as_i16(&self) -> &[i16] {
        match self {
            Vector::I16(v) => v,
            other => panic!("expected i16 vector, got {}", other.data_type()),
        }
    }
    /// `as_i32`.
    pub fn as_i32(&self) -> &[i32] {
        match self {
            Vector::I32(v) => v,
            other => panic!("expected i32 vector, got {}", other.data_type()),
        }
    }
    /// `as_i64`.
    pub fn as_i64(&self) -> &[i64] {
        match self {
            Vector::I64(v) => v,
            other => panic!("expected i64 vector, got {}", other.data_type()),
        }
    }
    /// `as_f64`.
    pub fn as_f64(&self) -> &[f64] {
        match self {
            Vector::F64(v) => v,
            other => panic!("expected f64 vector, got {}", other.data_type()),
        }
    }
    /// `as_str_vec`.
    pub fn as_str_vec(&self) -> &StrVec {
        match self {
            Vector::Str(v) => v,
            other => panic!("expected str vector, got {}", other.data_type()),
        }
    }

    /// `as_i16_mut`.
    pub fn as_i16_mut(&mut self) -> &mut [i16] {
        match self {
            Vector::I16(v) => v,
            other => panic!("expected i16 vector, got {}", other.data_type()),
        }
    }
    /// `as_i32_mut`.
    pub fn as_i32_mut(&mut self) -> &mut [i32] {
        match self {
            Vector::I32(v) => v,
            other => panic!("expected i32 vector, got {}", other.data_type()),
        }
    }
    /// `as_i64_mut`.
    pub fn as_i64_mut(&mut self) -> &mut [i64] {
        match self {
            Vector::I64(v) => v,
            other => panic!("expected i64 vector, got {}", other.data_type()),
        }
    }
    /// `as_f64_mut`.
    pub fn as_f64_mut(&mut self) -> &mut [f64] {
        match self {
            Vector::F64(v) => v,
            other => panic!("expected f64 vector, got {}", other.data_type()),
        }
    }
    /// `as_str_vec_mut`.
    pub fn as_str_vec_mut(&mut self) -> &mut StrVec {
        match self {
            Vector::Str(v) => v,
            other => panic!("expected str vector, got {}", other.data_type()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str_vec_roundtrip() {
        let v = StrVec::from_strings(&["alpha", "", "gamma"]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.get(0), "alpha");
        assert_eq!(v.get(1), "");
        assert_eq!(v.get(2), "gamma");
        let all: Vec<&str> = v.iter().collect();
        assert_eq!(all, vec!["alpha", "", "gamma"]);
    }

    #[test]
    fn str_vec_writable_shares_arena() {
        let v = StrVec::from_strings(&["hello", "world"]);
        let mut out = v.writable_like(2);
        // gather element 1 then 0
        out.views_mut()[0] = v.views()[1];
        out.views_mut()[1] = v.views()[0];
        assert_eq!(out.get(0), "world");
        assert_eq!(out.get(1), "hello");
        assert!(Arc::ptr_eq(v.arena(), out.arena()));
    }

    #[test]
    fn substring_views() {
        let v = StrVec::from_strings(&["27-foo", "31-bar"]);
        let mut out = v.writable_like(2);
        for i in 0..2 {
            let (off, _len) = v.views()[i];
            out.views_mut()[i] = (off, 2); // substring(x, 1, 2)
        }
        assert_eq!(out.get(0), "27");
        assert_eq!(out.get(1), "31");
    }

    #[test]
    fn vector_types_and_lengths() {
        assert_eq!(Vector::I16(vec![1, 2]).data_type(), DataType::I16);
        assert_eq!(Vector::I32(vec![1]).len(), 1);
        assert_eq!(Vector::I64(vec![]).len(), 0);
        assert!(Vector::F64(vec![]).is_empty());
        let z = Vector::zeroed(DataType::F64, 4);
        assert_eq!(z.as_f64(), &[0.0; 4]);
        let zs = Vector::zeroed(DataType::Str, 3);
        assert_eq!(zs.as_str_vec().get(2), "");
    }

    #[test]
    #[should_panic(expected = "expected i32 vector")]
    fn typed_accessor_mismatch_panics() {
        Vector::I64(vec![1]).as_i32();
    }

    #[test]
    fn zeroed_mut_access() {
        let mut v = Vector::zeroed(DataType::I32, 3);
        v.as_i32_mut()[1] = 42;
        assert_eq!(v.as_i32(), &[0, 42, 0]);
    }
}
