//! Named, typed column schemas.
//!
//! A [`Schema`] describes the columns a plan node produces: an ordered list
//! of [`Field`]s (name + [`DataType`]). The executor's plan builder resolves
//! column *names* against schemas at plan-build time, so physical operators
//! keep working purely on positional indices while query authors never
//! write one.

use crate::types::DataType;

/// One named, typed column of a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column value type.
    pub ty: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of named, typed columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields (duplicate names are permitted here;
    /// the plan builder rejects them with a typed error where ambiguity
    /// would make name resolution unsound).
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// The fields, in column order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Position of the column named `name`, if any (first match wins).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// True when two distinct columns share `name` (name resolution would
    /// be ambiguous).
    pub fn is_ambiguous(&self, name: &str) -> bool {
        self.fields.iter().filter(|f| f.name == name).count() > 1
    }

    /// Column names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Column types, in order.
    pub fn types(&self) -> Vec<DataType> {
        self.fields.iter().map(|f| f.ty).collect()
    }
}

impl std::fmt::Display for Schema {
    /// Renders as `(name:type, ...)` — the form EXPLAIN output uses.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", field.name, field.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::I32),
            Field::new("b", DataType::Str),
            Field::new("c", DataType::F64),
        ])
    }

    #[test]
    fn index_and_field_lookup() {
        let s = abc();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.field(2).ty, DataType::F64);
        assert_eq!(s.names(), vec!["a", "b", "c"]);
        assert_eq!(s.types(), vec![DataType::I32, DataType::Str, DataType::F64]);
    }

    #[test]
    fn ambiguity_detection() {
        let s = Schema::new(vec![
            Field::new("x", DataType::I64),
            Field::new("x", DataType::I64),
        ]);
        assert!(s.is_ambiguous("x"));
        assert!(!abc().is_ambiguous("a"));
    }

    #[test]
    fn display_renders_name_type_pairs() {
        assert_eq!(abc().to_string(), "(a:i32, b:str, c:f64)");
        assert_eq!(Schema::default().to_string(), "()");
    }
}
