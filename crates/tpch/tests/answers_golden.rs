//! Answer-pinning goldens for all 22 queries.
//!
//! Every other result check in the tree is *self-consistency* of the
//! current code (adaptive ≡ fixed, 1 worker ≡ 4 workers) — a plan edit
//! that changes the answer the same way under every configuration would
//! slip through all of them. This test pins `(rows, checksum)` per query
//! at a fixed `(sf, seed, params)`, recorded from the seed repo's
//! hand-wired plans the day the `PlanBuilder` rewrite landed (the rewrite
//! was verified bit-identical against them).
//!
//! If a change *intentionally* alters a query's result (e.g. fixing the
//! Q8 region quirk noted in ROADMAP.md), re-record that row and say so in
//! the commit message.

use std::sync::Arc;

use ma_executor::{ExecConfig, QueryContext};
use ma_tpch::dbgen::TpchData;
use ma_tpch::params::Params;
use ma_tpch::queries::run_query;

/// `(query, rows, checksum)` at sf 0.01, seed 0xDBD1, default params,
/// default fixed-flavor config.
const GOLDEN: [(usize, usize, f64); 22] = [
    (1, 4, 619956918811.9816),
    (2, 7, 3496483.0),
    (3, 10, 244600702.47000003),
    (4, 5, 3382.0),
    (5, 5, 191117536.97000003),
    (6, 1, 116848191.54999998),
    (7, 4, 142067430.57999998),
    // Q8 re-verified after fixing the seed's region semi-join
    // (`n_nationkey = r_regionkey` → `n_regionkey = r_regionkey`): at this
    // sf/seed BRAZIL's market share is 0 in both years under either plan,
    // so the recorded answer is coincidentally unchanged. At sf 0.05 the
    // plans diverge; `q08_restricts_nations_by_region_key` pins the fixed
    // predicate at the plan level.
    (8, 2, 3991.0),
    (9, 112, 474054135.72000015),
    (10, 20, 562585779.14),
    (11, 41, 16641033501.0),
    (12, 2, 900.0),
    (13, 25, 1872.0),
    (14, 1, 17.054698472420736),
    (15, 1, 124158241.02999999),
    (16, 332, 704553.0),
    (17, 1, 1675.77),
    (18, 1, 24305667.0),
    (19, 1, 7400013.04),
    (20, 1, 2473.0),
    (21, 1, 1334.0),
    (22, 7, 51075017.0),
];

#[test]
fn all_22_queries_match_recorded_answers() {
    let db = TpchData::generate(0.01, 0xDBD1);
    let dict = Arc::new(ma_primitives::build_dictionary());
    let ctx = QueryContext::new(dict, ExecConfig::fixed_default());
    let p = Params::default();
    for (q, rows, checksum) in GOLDEN {
        let out = run_query(q, &db, &ctx, &p).unwrap_or_else(|e| panic!("Q{q} failed: {e}"));
        assert_eq!(out.rows, rows, "Q{q} row count drifted");
        // Checksums are f64 sums over a deterministic materialization
        // order, so they are exactly reproducible on one platform; the
        // tolerance only absorbs cross-platform float-summation noise.
        let tol = 1e-9 * checksum.abs().max(1.0);
        assert!(
            (out.checksum - checksum).abs() <= tol,
            "Q{q} checksum drifted: recorded {checksum}, got {}",
            out.checksum
        );
    }
}
