//! Plan-verifier sweep: every TPC-H query × a worker/partition/vector-size
//! configuration matrix.
//!
//! The verifier (`ma_executor::verify`) re-checks, independently of
//! lowering, that each plan is schema-consistent, label-unique and places
//! its exchanges legally under the given configuration. This sweep proves
//! those invariants hold for all 22 queries across every parallelism
//! shape the planner can take: sequential, sharded, merge-sharded,
//! partition-follows-workers, partitioning disabled, and fixed odd
//! partition counts that disagree with the worker count.
//!
//! It also pins the global stats-label discipline: labels are unique
//! *within* each plan (a duplicate would silently merge two nodes'
//! adaptive statistics — `verify` rejects it) and, thanks to the `QN/`
//! prefix convention, unique *across* queries too, so a whole-benchmark
//! stats dump never aliases two primitives.

use std::collections::HashSet;
use std::sync::OnceLock;

use ma_executor::{sketch, verify, ExecConfig, LogicalPlan, PhysSketch};
use ma_tpch::queries::query_plan;
use ma_tpch::{Params, TpchData};

/// Shared database: big enough (scale 0.01 ≈ 60k lineitem rows) that the
/// sharding and partitioning verdicts actually fire under the matrix's
/// multi-worker configurations.
fn db() -> &'static TpchData {
    static DB: OnceLock<TpchData> = OnceLock::new();
    DB.get_or_init(|| TpchData::generate(0.01, 0xDBD1))
}

fn config(workers: usize, agg_p: usize, join_p: usize, vsize: usize) -> ExecConfig {
    let mut cfg = ExecConfig::fixed_default();
    cfg.worker_threads = workers;
    cfg.agg_partitions = agg_p;
    cfg.join_partitions = join_p;
    cfg.vector_size = vsize;
    cfg
}

/// Counts exchange nodes in a sketch so the sweep can prove it exercised
/// non-sequential shapes (a vacuously-sequential sweep would pass
/// trivially).
fn count_exchanges(s: &PhysSketch, tally: &mut (usize, usize, usize)) {
    match s {
        PhysSketch::Seq { children }
        | PhysSketch::Materialize { children }
        | PhysSketch::Ordered { children } => {
            for c in children {
                count_exchanges(c, tally);
            }
        }
        PhysSketch::Parallel { .. } => tally.0 += 1,
        PhysSketch::Merge { .. } => tally.1 += 1,
        PhysSketch::HashPartition { lanes, .. } => {
            tally.2 += 1;
            for lane in lanes {
                count_exchanges(&lane.input, tally);
            }
        }
    }
}

/// Collects every *registry-visible* stats label in a plan: the labels of
/// nodes that instantiate primitives. Pass-only projections compile to
/// zero instances, so their labels never reach the stats registry and are
/// skipped — the same rule `verify` applies for its per-plan uniqueness
/// check.
fn collect_labels(plan: &LogicalPlan, out: &mut Vec<String>) {
    use ma_executor::ops::ProjItem;
    match plan {
        LogicalPlan::Scan { .. } => {}
        LogicalPlan::Project {
            input,
            items,
            label,
            ..
        } => {
            if items.iter().any(|i| matches!(i, ProjItem::Expr(_))) {
                out.push(label.clone());
            }
            collect_labels(input, out);
        }
        LogicalPlan::Filter { input, label, .. }
        | LogicalPlan::HashAgg { input, label, .. }
        | LogicalPlan::StreamAgg { input, label, .. } => {
            out.push(label.clone());
            collect_labels(input, out);
        }
        LogicalPlan::HashJoin {
            build,
            probe,
            label,
            ..
        } => {
            out.push(label.clone());
            collect_labels(build, out);
            collect_labels(probe, out);
        }
        LogicalPlan::MergeJoin {
            left, right, label, ..
        } => {
            out.push(label.clone());
            collect_labels(left, out);
            collect_labels(right, out);
        }
        LogicalPlan::Sort { input, .. } => collect_labels(input, out),
    }
}

/// All 22 queries verify under every configuration in the matrix, and the
/// matrix provably exercises all three exchange kinds.
#[test]
fn all_queries_verify_across_config_matrix() {
    let db = db();
    let params = Params::default();
    let mut tally = (0usize, 0usize, 0usize);
    let mut checked = 0usize;
    for q in 1..=22 {
        let plan = query_plan(q, db, &params)
            .unwrap_or_else(|e| panic!("Q{q}: plan construction failed: {e}"))
            .build()
            .unwrap_or_else(|e| panic!("Q{q}: build failed: {e}"));
        for workers in [1, 2, 4] {
            for (agg_p, join_p) in [(0, 0), (1, 1), (3, 2)] {
                for vsize in [64, 1024] {
                    let cfg = config(workers, agg_p, join_p, vsize);
                    verify(&plan, &cfg).unwrap_or_else(|e| {
                        panic!(
                            "Q{q} failed verification (workers={workers}, \
                             agg_partitions={agg_p}, join_partitions={join_p}, \
                             vector_size={vsize}): {e}"
                        )
                    });
                    count_exchanges(&sketch(&plan, &cfg), &mut tally);
                    checked += 1;
                }
            }
        }
    }
    assert_eq!(checked, 22 * 3 * 3 * 2);
    let (parallel, merge, partition) = tally;
    assert!(parallel > 0, "matrix never produced a Parallel exchange");
    assert!(merge > 0, "matrix never produced a Merge exchange");
    assert!(
        partition > 0,
        "matrix never produced a HashPartition exchange"
    );
}

/// All 22 TPC-H plans must pass the abstract-interpretation pass with
/// **zero findings** — not just zero hazards. The only division in the
/// workload (Q1's averages) divides by a count that is provably ≥ 1, and
/// every sum's statically-derived bound fits the i64 accumulator at this
/// scale, so any error here is an analyzer regression (an unsound
/// transfer function or lost narrowing), not a workload property.
#[test]
fn all_queries_analyze_cleanly() {
    let db = db();
    let params = Params::default();
    for q in 1..=22 {
        let plan = query_plan(q, db, &params)
            .unwrap_or_else(|e| panic!("Q{q}: {e}"))
            .build()
            .unwrap_or_else(|e| panic!("Q{q}: {e}"));
        let a = ma_executor::analyze(&plan);
        assert!(
            a.errors.is_empty(),
            "Q{q} analysis reported findings: {:?}",
            a.errors
        );
        // The derived facts must be non-degenerate: a real row bound and
        // a fact per output column.
        assert_eq!(a.facts.cols.len(), plan.schema().len(), "Q{q}");
        assert!(a.facts.rows > 0, "Q{q} proved itself empty");
    }
}

/// All 22 plans get a *finite* proven peak-byte bound from the memory/
/// cost pass under every matrix configuration, with zero findings under
/// the default 1 GiB budget. Finiteness is the load-bearing half: the
/// pass saturates to "unbounded" when a width or cardinality estimate
/// escapes it, and an unbounded plan would make the byte-accounting
/// oracle (`actual ≤ proven`) vacuously true. The work bound must be
/// finite and positive for the same reason.
#[test]
fn all_queries_get_finite_byte_bounds() {
    // Saturation sentinel mirrored from `ma_executor::cost` (rendered as
    // "unbounded"); anything at or above it means the pass gave up.
    const SAT: u64 = u64::MAX >> 8;
    let db = db();
    let params = Params::default();
    for q in 1..=22 {
        let plan = query_plan(q, db, &params)
            .unwrap_or_else(|e| panic!("Q{q}: {e}"))
            .build()
            .unwrap_or_else(|e| panic!("Q{q}: {e}"));
        for workers in [1, 2, 4] {
            for (agg_p, join_p) in [(0, 0), (1, 1), (3, 2)] {
                for vsize in [64, 1024] {
                    let cfg = config(workers, agg_p, join_p, vsize);
                    let report = ma_executor::cost(&plan, &cfg);
                    assert!(
                        report.peak_bytes > 0 && report.peak_bytes < SAT,
                        "Q{q} peak bound degenerate (workers={workers}, \
                         agg_partitions={agg_p}, join_partitions={join_p}, \
                         vector_size={vsize}): {} ({})",
                        report.peak_bytes,
                        ma_executor::cost::fmt_bytes(report.peak_bytes)
                    );
                    assert!(
                        report.total_work > 0 && report.total_work < SAT,
                        "Q{q} work bound degenerate: {}",
                        report.total_work
                    );
                    assert!(
                        report.findings.is_empty(),
                        "Q{q} over default budget (workers={workers}): {:?}",
                        report.findings
                    );
                }
            }
        }
    }
}

/// Stats labels are globally unique across all 22 first-phase plans: the
/// `QN/` prefix convention means a whole-benchmark stats dump can never
/// alias two different primitives. (Within-plan uniqueness of
/// instantiating nodes is `verify`'s job, covered by the matrix sweep.)
#[test]
fn stats_labels_unique_across_all_queries() {
    let db = db();
    let params = Params::default();
    let mut seen: HashSet<String> = HashSet::new();
    let mut total = 0usize;
    for q in 1..=22 {
        let plan = query_plan(q, db, &params)
            .unwrap_or_else(|e| panic!("Q{q}: {e}"))
            .build()
            .unwrap_or_else(|e| panic!("Q{q}: {e}"));
        let mut labels = Vec::new();
        collect_labels(&plan, &mut labels);
        assert!(!labels.is_empty(), "Q{q} has no labeled nodes");
        for l in labels {
            let prefix = format!("Q{q}/");
            assert!(
                l.starts_with(&prefix),
                "Q{q} label {l:?} missing its {prefix:?} namespace prefix"
            );
            assert!(seen.insert(l.clone()), "label {l:?} reused across queries");
            total += 1;
        }
    }
    assert!(total >= 100, "expected a rich label set, found {total}");
}
