//! Seed-pinned regressions from differential-fuzzer triage, plus a
//! moderate fixed-seed sweep.
//!
//! Every failure the fuzzer (`ma_tpch::fuzz`) finds lands here as a
//! minimized, deterministic reproduction — regenerated from its `(seed,
//! case)` pair or pinned as shrunk DSL text — so the bug stays fixed.
//! The big sweeps run in release mode (`repro fuzz`, the `fuzz-smoke`
//! CI job); this file keeps a small always-on sweep for `cargo test`.

use std::sync::Arc;

use ma_executor::frontend::{self, parse};
use ma_tpch::fuzz::Fuzzer;
use ma_tpch::TpchData;

fn fuzzer(sf: f64) -> Fuzzer {
    Fuzzer::new(Arc::new(TpchData::generate(sf, 0xDBD1)))
}

/// Seed 0xF022 case 820 (found in the first 10k-case sweep): the
/// generator emitted `merge join` downstream of a payload-free `join
/// semi` fallback, which had skipped clearing its clustered-column
/// tracking — the builder correctly rejects a merge join whose right
/// key arrives through a hash join, so the generated query failed to
/// compile. The generator now mirrors the builder exactly: *any* hash
/// join ends the clustered-key chain.
#[test]
fn semi_join_fallback_ends_clustered_chain() {
    let db = Arc::new(TpchData::generate(0.002, 0xDBD1));
    let fz = Fuzzer::new(Arc::clone(&db));
    // The original (unshrunk) generation stream must compile again.
    let ast = fz.generate(0xF022, 820);
    frontend::compile(&ast, db.as_ref())
        .unwrap_or_else(|e| panic!("case 820 no longer compiles: {e}\n{ast}"))
        .build()
        .unwrap_or_else(|e| panic!("case 820 no longer builds: {e}\n{ast}"));
    // And the shrunk reproduction stays a *typed* builder error when
    // written by hand: a merge join behind a hash join is illegal.
    let text = "from nation [n_nationkey] \
                | join semi (from nation [n_nationkey]) on n_nationkey = n_nationkey \
                | merge join (from part [p_partkey]) on n_nationkey = p_partkey";
    let ast = parse(text).expect("parses");
    let err = frontend::compile(&ast, db.as_ref())
        .and_then(|pb| {
            pb.build().map_err(|err| frontend::FrontendError::Plan {
                err,
                span: Default::default(),
            })
        })
        .expect_err("merge join behind a hash join must be rejected");
    assert!(
        err.to_string().contains("not sorted by the join key"),
        "unexpected error: {err}"
    );
}

/// Seed 0xF022 cases 3263, 4718, 8183 (second 10k-case sweep): all
/// three queries aggregate `min`/`max` over provably empty input (an
/// anti join against a superset, or a semi join against an empty or
/// disjoint build side), so every configuration correctly returns the
/// ±inf fold identity — but the oracle's relative-tolerance check
/// computed `inf - inf = NaN` and flagged the *equal* infinities as a
/// divergence. `floats_close` now tests bitwise equality first.
#[test]
fn equal_infinities_are_not_a_divergence() {
    let fz = fuzzer(0.002);
    // Minimized reproductions from the sweep, in shrunk-DSL form. Each
    // pipeline's final aggregation runs over zero rows at every scale
    // factor: every s_nationkey exists in nation (anti ⇒ empty); no
    // n_nationkey exceeds 24 (semi vs empty ⇒ empty); acctbal cents
    // never collide with nation keys 0..24 (semi vs disjoint ⇒ empty).
    for text in [
        "from supplier [s_nationkey] \
         | join anti (from nation [n_nationkey]) on s_nationkey = n_nationkey \
         | select e1 = f64(i64(s_nationkey) - i64(s_nationkey) + 14) \
         | agg [max(e1) as a3]",
        "from supplier [s_acctbal] \
         | select s_acctbal = s_acctbal, e0 = f64(s_acctbal / 3) \
         | join semi (from nation [n_nationkey]) on s_acctbal = n_nationkey \
         | agg [max(e0) as a3]",
        "from part [p_size, p_retailprice] \
         | agg by [p_size] [min(p_retailprice) as a1, count as a2] \
         | select a2 = a2, e4 = f64(a1 - i64(p_size)) \
         | join semi (from nation [n_nationkey] | where n_nationkey > 24) \
                on a2 = n_nationkey \
         | agg [min(e4) as a6]",
    ] {
        fz.check_text(text)
            .unwrap_or_else(|f| panic!("{text}\n  {f}"));
    }
}

/// Seed 0xBC8F cases 799 and 1617 (third 10k-case sweep, the first
/// with the bounds-soundness oracle): the analyzer's `Or` transfer
/// function combined branch NDV caps with `max()`, but rows surviving
/// an OR are the *union* of the branch row-sets, so value sets add —
/// an equality (NDV ≤ 1) OR'd with a two-element in-list (NDV ≤ 2)
/// passed three distinct values while the analysis claimed ≤ 2, and
/// the post-execution soundness check flagged both cases (`Unsound`).
/// The transfer now sums branch caps (clamped to the input's own cap).
#[test]
fn or_branches_sum_their_ndv_caps() {
    let db = Arc::new(TpchData::generate(0.002, 0xDBD1));
    let fz = Fuzzer::new(Arc::clone(&db));
    // The shrunk reproductions: three distinct values survive each OR.
    let text = "from nation [n_comment] \
                | where n_comment = \"platelets regular platelets deposits dependencies courts deposits silent\" \
                  or n_comment in (\"bold even final dugouts packages pinto bold quickly\", \
                                   \"dependencies requests slyly courts ideas unusual somas platelets\")";
    fz.check_text(text)
        .unwrap_or_else(|f| panic!("{text}\n  {f}"));
    let truck = "from lineitem [l_shipmode] \
                 | where l_shipmode = \"TRUCK\" or l_shipmode in (\"MAIL\", \"RAIL\")";
    fz.check_text(truck)
        .unwrap_or_else(|f| panic!("{truck}\n  {f}"));
    // The analysis itself must now claim a cap of at least 3 here …
    let plan = frontend::compile(&parse(text).expect("parses"), db.as_ref())
        .expect("compiles")
        .build()
        .expect("builds");
    let a = ma_executor::analyze(&plan);
    assert!(a.errors.is_empty(), "{:?}", a.errors);
    assert!(
        a.facts.cols[0].ndv >= 3,
        "OR of =const and a 2-element in-list must cap NDV at 1 + 2, got {}",
        a.facts.cols[0].ndv
    );
    // … and the same addition applies to integer equality branches,
    // while staying clamped to the width of the hulled interval.
    let plan = frontend::compile(
        &parse("from nation [n_nationkey] | where n_nationkey = 1 or n_nationkey = 2")
            .expect("parses"),
        db.as_ref(),
    )
    .expect("compiles")
    .build()
    .expect("builds");
    let a = ma_executor::analyze(&plan);
    assert!(a.errors.is_empty(), "{:?}", a.errors);
    assert_eq!(
        a.facts.cols[0].ndv, 2,
        "k = 1 OR k = 2 passes exactly two distinct values"
    );
}

/// Seed 0xBEEF cases 78 and 131 (fourth 10k-case sweep, the first with
/// the byte-accounting oracle): aggregations whose group count *exactly
/// reaches* the analyzer's proven bound — NDV stats are exact, so this
/// is the common case, not a corner — tripped `MemBound`. The clamped
/// reservation treated zero remaining room as "bound might be unsound,
/// reserve for every live tuple", ballooning a 64-slot group table to
/// 4096 slots (65 KiB recorded against a 1.4 KiB proven bound) from the
/// second chunk on. Zero room now reserves zero (probing only *present*
/// keys terminates at any load factor), and a typed post-pass guard
/// rejects the query if the group count ever exceeds the proven bound.
#[test]
fn exactly_reached_group_bound_keeps_the_clamped_reservation() {
    let fz = fuzzer(0.01);
    // Shrunk reproductions: low-NDV group keys (5 market segments,
    // 7 order years) that all appear within the first vector, so every
    // later chunk runs an insertcheck pass with zero remaining room.
    for text in [
        "from customer [c_mktsegment] | agg by [c_mktsegment] [count as a1]",
        "from orders [o_orderyear] | agg by [o_orderyear] [count as a3]",
    ] {
        fz.check_text(text)
            .unwrap_or_else(|f| panic!("{text}\n  {f}"));
    }
}

/// A small deterministic differential sweep on every `cargo test` run.
/// The heavy sweeps (500 release-mode cases in CI, 10k+ in triage) use
/// the same code at bigger scale.
#[test]
fn fixed_seed_differential_sweep() {
    let fz = fuzzer(0.002);
    let report = fz.run(0xF022, 24, |_, _| {});
    assert!(
        report.ok(),
        "divergences: {:#?}",
        report
            .failures
            .iter()
            .map(|f| format!(
                "case {} (seed {:#x}): {}\n  minimized: {}",
                f.case, f.seed, f.detail, f.minimized
            ))
            .collect::<Vec<_>>()
    );
}
