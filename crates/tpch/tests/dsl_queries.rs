//! TPC-H Q1/Q3/Q6/Q12 expressed in the text DSL, pinned to the same
//! `(rows, checksum)` goldens as the hand-built plans
//! (`tests/answers_golden.rs`).
//!
//! This is the end-to-end proof that the front end adds no semantics of
//! its own: the DSL text compiles through `PlanBuilder` into plans whose
//! answers are byte-identical to the builder-written queries — same
//! expression trees (float products/sums associate identically), same
//! filters, same join/aggregation structure. Q12's tiny high/low CASE
//! post-step lives outside the plan in the hand-built query too, so the
//! test replicates it over the DSL plan's aggregation phase.

use std::sync::Arc;

use ma_executor::frontend::plan_text;
use ma_executor::ops::FrozenStore;
use ma_executor::{ExecConfig, QueryContext};
use ma_tpch::dates::add_years;
use ma_tpch::params::Params;
use ma_tpch::TpchData;
use ma_vector::Vector;

/// Same fixture as the golden answers: sf 0.01, data seed 0xDBD1,
/// default params, default fixed-flavor configuration.
fn fixture() -> (TpchData, QueryContext) {
    let db = TpchData::generate(0.01, 0xDBD1);
    let ctx = QueryContext::new(
        Arc::new(ma_primitives::build_dictionary()),
        ExecConfig::fixed_default(),
    );
    (db, ctx)
}

fn run_dsl(text: &str, db: &TpchData, ctx: &QueryContext) -> FrozenStore {
    let plan = plan_text(text, db).unwrap_or_else(|e| panic!("DSL error: {e}\n{text}"));
    let mut op = ma_executor::lower(&plan, ctx).expect("lower");
    ma_executor::ops::materialize(op.as_mut()).expect("execute")
}

/// The goldens' checksum: numeric values summed, strings folded by byte
/// sum (mirrors the runner's checksum, which is crate-private there).
fn checksum(store: &FrozenStore) -> f64 {
    let mut acc = 0.0f64;
    for i in 0..store.types().len() {
        match store.col(i) {
            Vector::I16(v) => acc += v.iter().map(|&x| x as f64).sum::<f64>(),
            Vector::I32(v) => acc += v.iter().map(|&x| x as f64).sum::<f64>(),
            Vector::I64(v) => acc += v.iter().map(|&x| x as f64).sum::<f64>(),
            Vector::F64(v) => acc += v.iter().sum::<f64>(),
            Vector::Str(s) => {
                acc += s
                    .iter()
                    .map(|x| x.bytes().map(u64::from).sum::<u64>() as f64)
                    .sum::<f64>()
            }
        }
    }
    acc
}

fn assert_golden(store: &FrozenStore, rows: usize, golden: f64, q: &str) {
    assert_eq!(store.rows(), rows, "{q} row count");
    let got = checksum(store);
    let tol = 1e-9 * golden.abs().max(1.0);
    assert!(
        (got - golden).abs() <= tol,
        "{q} checksum drifted: golden {golden}, DSL {got}"
    );
}

#[test]
fn q1_dsl_matches_golden() {
    let (db, ctx) = fixture();
    let p = Params::default();
    let text = format!(
        "from lineitem [l_shipdate, l_returnflag, l_linestatus, l_quantity, \
                        l_extendedprice, l_discount, l_tax] \
         | where l_shipdate <= {cutoff} \
         | select l_returnflag = l_returnflag, l_linestatus = l_linestatus, \
                  qty = i64(l_quantity), base = l_extendedprice, \
                  disc_price = f64(l_extendedprice) * (f64(l_discount) * 0.01 * -1.0 + 1.0), \
                  charge = f64(l_extendedprice) * (f64(l_discount) * 0.01 * -1.0 + 1.0) \
                           * (f64(l_tax) * 0.01 + 1.0), \
                  disc = f64(l_discount) * 0.01 \
         | agg by [l_returnflag, l_linestatus] \
               [sum(qty) as sum_qty, sum(base) as sum_base, \
                sum(disc_price) as sum_disc_price, sum(charge) as sum_charge, \
                sum(disc) as sum_disc, count as cnt] \
         | select l_returnflag = l_returnflag, l_linestatus = l_linestatus, \
                  sum_qty = sum_qty, sum_base = sum_base, \
                  sum_disc_price = sum_disc_price, sum_charge = sum_charge, \
                  avg_qty = f64(sum_qty) / f64(cnt), \
                  avg_price = f64(sum_base) / f64(cnt), \
                  avg_disc = sum_disc / f64(cnt), \
                  cnt = cnt \
         | order by l_returnflag, l_linestatus",
        cutoff = p.q1_cutoff()
    );
    let store = run_dsl(&text, &db, &ctx);
    assert_golden(&store, 4, 619956918811.9816, "Q1");
}

#[test]
fn q3_dsl_matches_golden() {
    let (db, ctx) = fixture();
    let p = Params::default();
    let text = format!(
        "from lineitem [l_orderkey, l_shipdate, l_extendedprice, l_discount] \
         | where l_shipdate > {d} \
         | join inner (from orders [o_orderkey, o_custkey, o_orderdate, o_shippriority] \
                       | where o_orderdate < {d} \
                       | join semi (from customer [c_custkey, c_mktsegment] \
                                    | where c_mktsegment = \"{seg}\") \
                              on o_custkey = c_custkey bloom) \
                on l_orderkey = o_orderkey payload [o_orderdate, o_shippriority] bloom \
         | select l_orderkey = l_orderkey, o_orderdate = o_orderdate, \
                  o_shippriority = o_shippriority, \
                  rev = f64(l_extendedprice) * (f64(l_discount) * 0.01 * -1.0 + 1.0) \
         | agg by [l_orderkey, o_orderdate, o_shippriority] [sum(rev) as sum_rev] \
         | keep [l_orderkey, sum_rev, o_orderdate, o_shippriority] \
         | top 10 by sum_rev desc, o_orderdate",
        d = p.q3_date,
        seg = p.q3_segment
    );
    let store = run_dsl(&text, &db, &ctx);
    assert_golden(&store, 10, 244600702.47000003, "Q3");
}

#[test]
fn q6_dsl_matches_golden() {
    let (db, ctx) = fixture();
    let p = Params::default();
    let text = format!(
        "from lineitem [l_shipdate, l_discount, l_quantity, l_extendedprice] \
         | where l_shipdate >= {d} and l_shipdate < {d1} \
               and l_discount >= {lo} and l_discount <= {hi} and l_quantity < {q} \
         | select rev = f64(l_extendedprice) * (f64(l_discount) * 0.01) \
         | agg [sum(rev) as revenue]",
        d = p.q6_date,
        d1 = add_years(p.q6_date, 1),
        lo = p.q6_discount_pct - 1,
        hi = p.q6_discount_pct + 1,
        q = p.q6_quantity
    );
    let store = run_dsl(&text, &db, &ctx);
    assert_golden(&store, 1, 116848191.54999998, "Q6");
}

#[test]
fn q12_dsl_matches_golden() {
    let (db, ctx) = fixture();
    let p = Params::default();
    // The DSL covers Q12's aggregation phase (the plan); the high/low
    // priority split is a post-step over ≤ 2×5 groups in the hand-built
    // query too, replicated here verbatim.
    let text = format!(
        "from lineitem [l_orderkey, l_shipmode, l_shipdate, l_commitdate, l_receiptdate] \
         | where l_shipmode in (\"{m1}\", \"{m2}\") \
               and l_receiptdate >= {d} and l_receiptdate < {d1} \
               and l_commitdate < l_receiptdate and l_shipdate < l_commitdate \
         | merge join (from orders [o_orderkey, o_orderpriority]) \
                on l_orderkey = o_orderkey payload [o_orderpriority] \
         | agg by [l_shipmode, o_orderpriority] [count as cnt]",
        m1 = p.q12_shipmode1,
        m2 = p.q12_shipmode2,
        d = p.q12_date,
        d1 = add_years(p.q12_date, 1)
    );
    let store = run_dsl(&text, &db, &ctx);
    let mut by_mode: std::collections::BTreeMap<String, (i64, i64)> = Default::default();
    for g in 0..store.rows() {
        let mode = store.col(0).as_str_vec().get(g).to_string();
        let prio = store.col(1).as_str_vec().get(g);
        let cnt = store.col(2).as_i64()[g];
        let e = by_mode.entry(mode).or_insert((0, 0));
        if prio == "1-URGENT" || prio == "2-HIGH" {
            e.0 += cnt;
        } else {
            e.1 += cnt;
        }
    }
    // Same checksum the golden records: mode string byte sums plus the
    // high/low counts.
    let rows = by_mode.len();
    let got: f64 = by_mode
        .iter()
        .map(|(m, (h, l))| m.bytes().map(u64::from).sum::<u64>() as f64 + (*h + *l) as f64)
        .sum();
    assert_eq!(rows, 2, "Q12 row count");
    let golden = 900.0f64;
    assert!(
        (got - golden).abs() <= 1e-9 * golden,
        "Q12 checksum drifted: golden {golden}, DSL {got}"
    );
}
