//! Compressed-storage integration tests: the planner verdict flip under
//! encoded widths, dictionary-code predicate pushdown, and decode-kernel
//! visibility in the adaptive statistics.

use std::sync::Arc;

use ma_executor::{ExecConfig, FlavorAxis};
use ma_tpch::dbgen::TpchData;
use ma_tpch::fuzz::Fuzzer;
use ma_tpch::params::Params;
use ma_tpch::queries::explain_query_with;
use ma_tpch::Runner;
use ma_vector::Encoding;

fn db() -> TpchData {
    TpchData::generate(0.001, 0xDBD1)
}

/// The §12 cost pass consumes *encoded* widths where the operator reads
/// encoded data, so the same configuration can reach different
/// partitioning verdicts on the two storage modes. Pinned on Q12: its
/// aggregate keys (l_shipmode, o_orderpriority) are both
/// dictionary-coded, which shrinks the byte-weighted demand below the
/// trigger — raw storage partitions ×2, encoded storage stays single.
#[test]
fn q12_agg_partition_verdict_flips_under_compression() {
    let enc = db();
    let raw = enc.decode_all();
    let cfg = ExecConfig::fixed_default()
        .with_workers(4)
        .with_agg_min_groups(6);
    let p = Params::default();
    let on_enc = explain_query_with(12, &enc, &p, &cfg).unwrap();
    let on_raw = explain_query_with(12, &raw, &p, &cfg).unwrap();
    assert!(
        on_raw.contains("HashAgg (partitioned \u{d7}2)"),
        "raw storage must partition: {on_raw}"
    );
    assert!(
        !on_enc.contains("partitioned"),
        "encoded widths must keep the aggregate single: {on_enc}"
    );
    // The flip is the *only* difference besides the scan annotations:
    // both plans have the same shape.
    assert_eq!(
        on_enc.lines().count(),
        on_raw.lines().count(),
        "plan shapes diverged:\n{on_enc}\nvs\n{on_raw}"
    );
    // And the raw twin genuinely decoded everything.
    assert!(on_enc.contains("enc=["));
    assert!(!on_raw.contains("enc=["));
}

/// The verdict flip is monotone: past the raw demand both modes stay
/// single, below the encoded demand both partition.
#[test]
fn verdict_flip_is_threshold_bounded() {
    let enc = db();
    let raw = enc.decode_all();
    let p = Params::default();
    for t in [1usize, 64] {
        let cfg = ExecConfig::fixed_default()
            .with_workers(4)
            .with_agg_min_groups(t);
        let e = explain_query_with(12, &enc, &p, &cfg).unwrap();
        let r = explain_query_with(12, &raw, &p, &cfg).unwrap();
        assert_eq!(
            e.contains("partitioned"),
            r.contains("partitioned"),
            "threshold {t} should agree across storage modes"
        );
    }
}

/// Equality and inequality over dictionary-coded string columns rewrite
/// to integer code comparisons without decoding. The differential
/// fuzzer's storage matrix cross-checks each query on the raw twin and
/// under the scalar reference decoder, so any pushdown bug shows up as
/// a divergence here — including the absent-literal edge cases (Eq →
/// empty, Ne → everything passes).
#[test]
fn dict_code_pushdown_matches_raw_storage() {
    let fz = Fuzzer::new(Arc::new(TpchData::generate(0.002, 0xDBD1)));
    for text in [
        // Present literal: code binary-search succeeds.
        "from orders [o_orderkey, o_orderpriority] | where o_orderpriority = \"1-URGENT\"",
        "from lineitem [l_orderkey, l_shipmode] | where l_shipmode != \"TRUCK\"",
        // Absent literal: Eq must yield zero rows, Ne must keep all.
        "from orders [o_orderkey, o_orderpriority] | where o_orderpriority = \"9-NONE\"",
        "from lineitem [l_orderkey, l_shipmode] | where l_shipmode != \"TELEPORT\"",
        // Pushdown under a conjunction and a later pipeline stage.
        "from lineitem [l_orderkey, l_shipmode, l_quantity] \
         | where l_shipmode = \"MAIL\" and l_quantity < 30 \
         | agg by [l_shipmode] [count as n]",
    ] {
        fz.check_text(text)
            .unwrap_or_else(|f| panic!("{text}\n  {f}"));
    }
}

/// The per-morsel bandit's flavor choice must be visible in the merged
/// adaptive statistics for the decode primitives: every encoding the
/// scan touches shows up as a `decode_*` instance, and under an
/// adaptive configuration at least one decode instance spreads its
/// calls over more than one flavor.
#[test]
fn decode_instances_visible_in_adaptive_stats() {
    let runner = Runner::new(Arc::new(TpchData::generate(0.01, 0x7E57)));
    let r = runner
        .run(1, ExecConfig::adaptive(FlavorAxis::All).with_seed(7))
        .unwrap();
    let decode: Vec<_> = r
        .instances
        .iter()
        .filter(|i| i.signature.starts_with("decode_"))
        .collect();
    assert!(!decode.is_empty(), "Q1 scan must run decode primitives");
    // Q1 reads dict (l_returnflag/l_linestatus) and FoR (dates,
    // quantities, prices) columns.
    assert!(decode.iter().any(|i| i.signature == "decode_dict_str"));
    assert!(decode.iter().any(|i| i.signature == "decode_for_i32"));
    assert!(decode.iter().all(|i| i.calls > 0 && i.tuples > 0));
    let spread = decode
        .iter()
        .any(|i| i.flavor_calls.iter().filter(|(_, c)| *c > 0).count() > 1);
    assert!(
        spread,
        "adaptive decode should exercise multiple flavors: {:?}",
        decode
            .iter()
            .map(|i| (&i.label, &i.flavor_calls))
            .collect::<Vec<_>>()
    );
}

/// The catalog records the chosen codec per column; spot-check the
/// selection rules on the generated schema.
#[test]
fn catalog_records_expected_encodings() {
    let d = db();
    let enc_of = |t: &str, c: &str| {
        let table = d.table(t).unwrap();
        let i = table.column_index(c).unwrap();
        table.column_at(i).encoding()
    };
    // Clustered keys take delta, low-NDV strings take dict, bounded
    // ints take frame-of-reference; floats stay raw.
    assert_eq!(enc_of("lineitem", "l_orderkey"), Some(Encoding::Delta));
    assert_eq!(enc_of("lineitem", "l_shipmode"), Some(Encoding::Dict));
    assert_eq!(enc_of("lineitem", "l_shipdate"), Some(Encoding::For));
    assert_eq!(enc_of("orders", "o_orderpriority"), Some(Encoding::Dict));
    assert_eq!(enc_of("region", "r_comment"), None);
}
