//! Golden tests for the EXPLAIN rendering of the TPC-H logical plans.
//!
//! These pin two properties of the plan layer:
//!
//! * the tree/schema rendering is stable (Q1, the widest single-phase
//!   pipeline), and
//! * **the planner, not the query, decides how ordered pipelines and
//!   joins parallelize**: Q12's physical plan must show sharded
//!   `(morsel)` scans feeding `Merge ×N` exchanges — the retired PR-3
//!   golden pinned both scans `(ordered)` (fully sequential), and this
//!   golden is the regression canary replacing it — and Q3's joins must
//!   carry the `HashJoin (partitioned ×P)` verdict.

use ma_executor::ExecConfig;
use ma_tpch::dbgen::TpchData;
use ma_tpch::params::Params;
use ma_tpch::queries::{explain_query, explain_query_with};

/// Plan shapes are data-independent; the smallest database keeps the test
/// fast.
fn db() -> TpchData {
    TpchData::generate(0.001, 0xDBD1)
}

#[test]
fn q01_explain_golden() {
    let text = explain_query(1, &db(), &Params::default()).unwrap();
    let expected = "\
Sort [l_returnflag asc, l_linestatus asc] -> (l_returnflag:str, l_linestatus:str, sum_qty:i64, sum_base:i64, sum_disc_price:f64, sum_charge:f64, avg_qty:f64, avg_price:f64, avg_disc:f64, count:i64)
  Project [l_returnflag, l_linestatus, sum_qty, sum_base, sum_disc_price, sum_charge, avg_qty=(f64(sum_qty) / f64(count)), avg_price=(f64(sum_base) / f64(count)), avg_disc=(sum_disc / f64(count)), count] -> (l_returnflag:str, l_linestatus:str, sum_qty:i64, sum_base:i64, sum_disc_price:f64, sum_charge:f64, avg_qty:f64, avg_price:f64, avg_disc:f64, count:i64)
    HashAgg keys=[l_returnflag, l_linestatus] aggs=[sum_qty=sum_i64(qty), sum_base=sum_i64(base), sum_disc_price=sum_f64(disc_price), sum_charge=sum_f64(charge), sum_disc=sum_f64(disc), count=count(*)] -> (l_returnflag:str, l_linestatus:str, sum_qty:i64, sum_base:i64, sum_disc_price:f64, sum_charge:f64, sum_disc:f64, count:i64)
      Project [l_returnflag, l_linestatus, qty=i64(l_quantity), base=l_extendedprice, disc_price=(f64(l_extendedprice) * (((f64(l_discount) * 0.01) * -1) + 1)), charge=((f64(l_extendedprice) * (((f64(l_discount) * 0.01) * -1) + 1)) * ((f64(l_tax) * 0.01) + 1)), disc=(f64(l_discount) * 0.01)] -> (l_returnflag:str, l_linestatus:str, qty:i64, base:i64, disc_price:f64, charge:f64, disc:f64)
        Filter l_shipdate <= 2436 -> (l_shipdate:i32, l_returnflag:str, l_linestatus:str, l_quantity:i32, l_extendedprice:i64, l_discount:i64, l_tax:i64)
          Scan lineitem (shardable) enc=[l_shipdate:for, l_returnflag:dict, l_linestatus:dict, l_quantity:for, l_extendedprice:for, l_discount:for, l_tax:for] -> (l_shipdate:i32, l_returnflag:str, l_linestatus:str, l_quantity:i32, l_extendedprice:i64, l_discount:i64, l_tax:i64)
";
    assert_eq!(text, expected);
}

#[test]
fn q01_physical_explain_shows_partitioned_aggregate() {
    // The physical rendering must carry the planner's partitioning verdict
    // (computed by the same decision function `lower` uses). Q1 groups by
    // (l_returnflag, l_linestatus) with exactly 3 × 2 distinct values, so
    // the analysis-derived group bound is 6 — the trigger must be lowered
    // to 6 to engage partitioning. The cost model then sizes P to the
    // demand/threshold ratio (6/6 = 1, clamped to the 2-partition
    // minimum), not the 4-worker cap.
    let cfg = ExecConfig::fixed_default()
        .with_workers(4)
        .with_agg_min_groups(6);
    let text = explain_query_with(1, &db(), &Params::default(), &cfg).unwrap();
    let expected = "\
Sort [l_returnflag asc, l_linestatus asc] -> (l_returnflag:str, l_linestatus:str, sum_qty:i64, sum_base:i64, sum_disc_price:f64, sum_charge:f64, avg_qty:f64, avg_price:f64, avg_disc:f64, count:i64)
  Project [l_returnflag, l_linestatus, sum_qty, sum_base, sum_disc_price, sum_charge, avg_qty=(f64(sum_qty) / f64(count)), avg_price=(f64(sum_base) / f64(count)), avg_disc=(sum_disc / f64(count)), count] -> (l_returnflag:str, l_linestatus:str, sum_qty:i64, sum_base:i64, sum_disc_price:f64, sum_charge:f64, avg_qty:f64, avg_price:f64, avg_disc:f64, count:i64)
    HashAgg (partitioned \u{d7}2) keys=[l_returnflag, l_linestatus] aggs=[sum_qty=sum_i64(qty), sum_base=sum_i64(base), sum_disc_price=sum_f64(disc_price), sum_charge=sum_f64(charge), sum_disc=sum_f64(disc), count=count(*)] -> (l_returnflag:str, l_linestatus:str, sum_qty:i64, sum_base:i64, sum_disc_price:f64, sum_charge:f64, sum_disc:f64, count:i64)
      Project [l_returnflag, l_linestatus, qty=i64(l_quantity), base=l_extendedprice, disc_price=(f64(l_extendedprice) * (((f64(l_discount) * 0.01) * -1) + 1)), charge=((f64(l_extendedprice) * (((f64(l_discount) * 0.01) * -1) + 1)) * ((f64(l_tax) * 0.01) + 1)), disc=(f64(l_discount) * 0.01)] -> (l_returnflag:str, l_linestatus:str, qty:i64, base:i64, disc_price:f64, charge:f64, disc:f64)
        Filter l_shipdate <= 2436 -> (l_shipdate:i32, l_returnflag:str, l_linestatus:str, l_quantity:i32, l_extendedprice:i64, l_discount:i64, l_tax:i64)
          Scan lineitem (shardable) enc=[l_shipdate:for, l_returnflag:dict, l_linestatus:dict, l_quantity:for, l_extendedprice:for, l_discount:for, l_tax:for] -> (l_shipdate:i32, l_returnflag:str, l_linestatus:str, l_quantity:i32, l_extendedprice:i64, l_discount:i64, l_tax:i64)
";
    assert_eq!(text, expected);
    // The stats-tightened verdict flip, pinned on a real TPC-H plan: a
    // threshold of 1024 used to partition (the lineitem scan feeds ~6k
    // rows into the aggregate at this scale), but the abstract
    // interpreter proves at most 6 groups can exist, so the same config
    // now stays single.
    let flipped = ExecConfig::fixed_default()
        .with_workers(4)
        .with_agg_min_groups(1024);
    let text = explain_query_with(1, &db(), &Params::default(), &flipped).unwrap();
    assert!(!text.contains("partitioned"), "NDV bound must veto: {text}");
    // One past the proven bound must not partition either.
    let past = ExecConfig::fixed_default()
        .with_workers(4)
        .with_agg_min_groups(7);
    let text = explain_query_with(1, &db(), &Params::default(), &past).unwrap();
    assert!(!text.contains("partitioned"));
    // A single-worker config renders structurally (no partition verdict).
    let plain = explain_query_with(1, &db(), &Params::default(), &ExecConfig::fixed_default());
    assert_eq!(
        plain.unwrap(),
        explain_query(1, &db(), &Params::default()).unwrap()
    );
}

#[test]
fn q12_physical_explain_shows_merging_exchanges() {
    // Both merge-join inputs are clustering-key chains, so the physical
    // planner shards them into `(morsel)` scans re-merged by a `Merge ×N`
    // exchange — Q12 parallelizes for the first time. The tiny golden
    // database is below the default 2-morsel sharding cutoff, so the
    // vector size is shrunk (morsels follow it) to let the verdict
    // engage, the same trick the Q1 golden plays with its group
    // threshold.
    let mut cfg = ExecConfig::fixed_default().with_workers(4);
    cfg.vector_size = 32;
    let text = explain_query_with(12, &db(), &Params::default(), &cfg).unwrap();
    let expected = "\
HashAgg keys=[l_shipmode, o_orderpriority] aggs=[count=count(*)] -> (l_shipmode:str, o_orderpriority:str, count:i64)
  MergeJoin on (l_orderkey = o_orderkey) payload=[o_orderpriority] -> (l_orderkey:i32, l_shipmode:str, l_shipdate:i32, l_commitdate:i32, l_receiptdate:i32, o_orderpriority:str)
    left: Merge \u{d7}4 on o_orderkey -> (o_orderkey:i32, o_orderpriority:str)
      Scan orders (morsel) enc=[o_orderkey:delta, o_orderpriority:dict] -> (o_orderkey:i32, o_orderpriority:str)
    right: Merge \u{d7}4 on l_orderkey -> (l_orderkey:i32, l_shipmode:str, l_shipdate:i32, l_commitdate:i32, l_receiptdate:i32)
      Filter l_shipmode IN ('MAIL', 'SHIP') AND l_receiptdate >= 731 AND l_receiptdate < 1096 AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate -> (l_orderkey:i32, l_shipmode:str, l_shipdate:i32, l_commitdate:i32, l_receiptdate:i32)
        Scan lineitem (morsel) enc=[l_orderkey:delta, l_shipmode:dict, l_shipdate:for, l_commitdate:for, l_receiptdate:for] -> (l_orderkey:i32, l_shipmode:str, l_shipdate:i32, l_commitdate:i32, l_receiptdate:i32)
";
    assert_eq!(text, expected);
    // The properties the golden string encodes, asserted directly too:
    // both scans shard, each under its own merging exchange, and nothing
    // is left fully sequential.
    assert_eq!(text.matches("(morsel)").count(), 2);
    assert_eq!(text.matches("Merge \u{d7}4").count(), 2);
    assert!(!text.contains("(ordered)"));
}

#[test]
fn q12_structural_explain_keeps_order_constraint_visible() {
    // Without a physical config the rendering stays structural: the merge
    // join's order constraint marks both scans `(ordered)`, and a
    // single-worker config (nothing to shard) renders identically.
    let text = explain_query(12, &db(), &Params::default()).unwrap();
    assert_eq!(text.matches("(ordered)").count(), 2);
    assert!(!text.contains("(shardable)"));
    assert!(!text.contains("Merge \u{d7}"));
    let plain = explain_query_with(12, &db(), &Params::default(), &ExecConfig::fixed_default());
    assert_eq!(plain.unwrap(), text);
}

#[test]
fn q03_physical_explain_shows_partitioned_joins() {
    // Join partitioning renders from the same decision function lowering
    // uses. The golden database is below the scan-sharding cutoff, so the
    // row-estimate trigger is lowered to engage the verdict: both of
    // Q3's joins split into P private build tables. The outer join sits
    // on shardable scan chains (P follows the 4-worker cap); the semi
    // join engages on the row-estimate trigger alone, so the cost model
    // sizes it to the demand/threshold ratio (clamped to 2).
    let cfg = ExecConfig::fixed_default()
        .with_workers(4)
        .with_join_min_rows(1024);
    let text = explain_query_with(3, &db(), &Params::default(), &cfg).unwrap();
    let expected = "\
Sort [sum_rev desc, o_orderdate asc] limit=10 -> (l_orderkey:i32, sum_rev:f64, o_orderdate:i32, o_shippriority:i32)
  Project [l_orderkey, sum_rev, o_orderdate, o_shippriority] -> (l_orderkey:i32, sum_rev:f64, o_orderdate:i32, o_shippriority:i32)
    HashAgg keys=[l_orderkey, o_orderdate, o_shippriority] aggs=[sum_rev=sum_f64(rev)] -> (l_orderkey:i32, o_orderdate:i32, o_shippriority:i32, sum_rev:f64)
      Project [l_orderkey, o_orderdate, o_shippriority, rev=(f64(l_extendedprice) * (((f64(l_discount) * 0.01) * -1) + 1))] -> (l_orderkey:i32, o_orderdate:i32, o_shippriority:i32, rev:f64)
        HashJoin (partitioned \u{d7}4) inner on (l_orderkey = o_orderkey) payload=[o_orderdate, o_shippriority] bloom -> (l_orderkey:i32, l_shipdate:i32, l_extendedprice:i64, l_discount:i64, o_orderdate:i32, o_shippriority:i32)
          build: HashJoin (partitioned \u{d7}2) semi on (o_custkey = c_custkey) bloom -> (o_orderkey:i32, o_custkey:i32, o_orderdate:i32, o_shippriority:i32)
            build: Filter c_mktsegment = 'BUILDING' -> (c_custkey:i32, c_mktsegment:str)
              Scan customer (shardable) enc=[c_custkey:delta, c_mktsegment:dict] -> (c_custkey:i32, c_mktsegment:str)
            probe: Filter o_orderdate < 1169 -> (o_orderkey:i32, o_custkey:i32, o_orderdate:i32, o_shippriority:i32)
              Scan orders (shardable) enc=[o_orderkey:delta, o_custkey:for, o_orderdate:for, o_shippriority:for] -> (o_orderkey:i32, o_custkey:i32, o_orderdate:i32, o_shippriority:i32)
          probe: Filter l_shipdate > 1169 -> (l_orderkey:i32, l_shipdate:i32, l_extendedprice:i64, l_discount:i64)
            Scan lineitem (shardable) enc=[l_orderkey:delta, l_shipdate:for, l_extendedprice:for, l_discount:for] -> (l_orderkey:i32, l_shipdate:i32, l_extendedprice:i64, l_discount:i64)
";
    assert_eq!(text, expected);
    // A single-worker config renders structurally (no partition verdict).
    let plain = explain_query_with(3, &db(), &Params::default(), &ExecConfig::fixed_default());
    assert_eq!(
        plain.unwrap(),
        explain_query(3, &db(), &Params::default()).unwrap()
    );
}

#[test]
fn all_22_queries_explain_without_error() {
    let db = db();
    let p = Params::default();
    for q in 1..=22 {
        let text = explain_query(q, &db, &p).unwrap_or_else(|e| panic!("EXPLAIN Q{q} failed: {e}"));
        assert!(text.contains("Scan"), "Q{q} explain has no scan:\n{text}");
        assert!(
            text.contains(" -> ("),
            "Q{q} explain has no schema:\n{text}"
        );
    }
}
