//! Golden tests for the EXPLAIN rendering of the TPC-H logical plans.
//!
//! These pin two properties of the plan layer:
//!
//! * the tree/schema rendering is stable (Q1, the widest single-phase
//!   pipeline), and
//! * **the planner, not the query, decides ordered-vs-sharded scans**:
//!   Q12's merge join must mark both scans `(ordered)` — the sharded-scan
//!   hazard the old hand-wired plans had to dodge by calling a special
//!   `scan_seq` helper is now a planner decision, visible in EXPLAIN.

use ma_executor::ExecConfig;
use ma_tpch::dbgen::TpchData;
use ma_tpch::params::Params;
use ma_tpch::queries::{explain_query, explain_query_with};

/// Plan shapes are data-independent; the smallest database keeps the test
/// fast.
fn db() -> TpchData {
    TpchData::generate(0.001, 0xDBD1)
}

#[test]
fn q01_explain_golden() {
    let text = explain_query(1, &db(), &Params::default()).unwrap();
    let expected = "\
Sort [l_returnflag asc, l_linestatus asc] -> (l_returnflag:str, l_linestatus:str, sum_qty:i64, sum_base:i64, sum_disc_price:f64, sum_charge:f64, avg_qty:f64, avg_price:f64, avg_disc:f64, count:i64)
  Project [l_returnflag, l_linestatus, sum_qty, sum_base, sum_disc_price, sum_charge, avg_qty=(f64(sum_qty) / f64(count)), avg_price=(f64(sum_base) / f64(count)), avg_disc=(sum_disc / f64(count)), count] -> (l_returnflag:str, l_linestatus:str, sum_qty:i64, sum_base:i64, sum_disc_price:f64, sum_charge:f64, avg_qty:f64, avg_price:f64, avg_disc:f64, count:i64)
    HashAgg keys=[l_returnflag, l_linestatus] aggs=[sum_qty=sum_i64(qty), sum_base=sum_i64(base), sum_disc_price=sum_f64(disc_price), sum_charge=sum_f64(charge), sum_disc=sum_f64(disc), count=count(*)] -> (l_returnflag:str, l_linestatus:str, sum_qty:i64, sum_base:i64, sum_disc_price:f64, sum_charge:f64, sum_disc:f64, count:i64)
      Project [l_returnflag, l_linestatus, qty=i64(l_quantity), base=l_extendedprice, disc_price=(f64(l_extendedprice) * (((f64(l_discount) * 0.01) * -1) + 1)), charge=((f64(l_extendedprice) * (((f64(l_discount) * 0.01) * -1) + 1)) * ((f64(l_tax) * 0.01) + 1)), disc=(f64(l_discount) * 0.01)] -> (l_returnflag:str, l_linestatus:str, qty:i64, base:i64, disc_price:f64, charge:f64, disc:f64)
        Filter l_shipdate <= 2436 -> (l_shipdate:i32, l_returnflag:str, l_linestatus:str, l_quantity:i32, l_extendedprice:i64, l_discount:i64, l_tax:i64)
          Scan lineitem (shardable) -> (l_shipdate:i32, l_returnflag:str, l_linestatus:str, l_quantity:i32, l_extendedprice:i64, l_discount:i64, l_tax:i64)
";
    assert_eq!(text, expected);
}

#[test]
fn q01_physical_explain_shows_partitioned_aggregate() {
    // The physical rendering must carry the planner's partitioning verdict
    // (computed by the same decision function `lower` uses). The tiny test
    // database is below the scan-sharding cutoff, so the group-estimate
    // trigger is lowered to engage partitioning.
    let cfg = ExecConfig::fixed_default()
        .with_workers(4)
        .with_agg_min_groups(1024);
    let text = explain_query_with(1, &db(), &Params::default(), &cfg).unwrap();
    let expected = "\
Sort [l_returnflag asc, l_linestatus asc] -> (l_returnflag:str, l_linestatus:str, sum_qty:i64, sum_base:i64, sum_disc_price:f64, sum_charge:f64, avg_qty:f64, avg_price:f64, avg_disc:f64, count:i64)
  Project [l_returnflag, l_linestatus, sum_qty, sum_base, sum_disc_price, sum_charge, avg_qty=(f64(sum_qty) / f64(count)), avg_price=(f64(sum_base) / f64(count)), avg_disc=(sum_disc / f64(count)), count] -> (l_returnflag:str, l_linestatus:str, sum_qty:i64, sum_base:i64, sum_disc_price:f64, sum_charge:f64, avg_qty:f64, avg_price:f64, avg_disc:f64, count:i64)
    HashAgg (partitioned \u{d7}4) keys=[l_returnflag, l_linestatus] aggs=[sum_qty=sum_i64(qty), sum_base=sum_i64(base), sum_disc_price=sum_f64(disc_price), sum_charge=sum_f64(charge), sum_disc=sum_f64(disc), count=count(*)] -> (l_returnflag:str, l_linestatus:str, sum_qty:i64, sum_base:i64, sum_disc_price:f64, sum_charge:f64, sum_disc:f64, count:i64)
      Project [l_returnflag, l_linestatus, qty=i64(l_quantity), base=l_extendedprice, disc_price=(f64(l_extendedprice) * (((f64(l_discount) * 0.01) * -1) + 1)), charge=((f64(l_extendedprice) * (((f64(l_discount) * 0.01) * -1) + 1)) * ((f64(l_tax) * 0.01) + 1)), disc=(f64(l_discount) * 0.01)] -> (l_returnflag:str, l_linestatus:str, qty:i64, base:i64, disc_price:f64, charge:f64, disc:f64)
        Filter l_shipdate <= 2436 -> (l_shipdate:i32, l_returnflag:str, l_linestatus:str, l_quantity:i32, l_extendedprice:i64, l_discount:i64, l_tax:i64)
          Scan lineitem (shardable) -> (l_shipdate:i32, l_returnflag:str, l_linestatus:str, l_quantity:i32, l_extendedprice:i64, l_discount:i64, l_tax:i64)
";
    assert_eq!(text, expected);
    // A single-worker config renders structurally (no partition verdict).
    let plain = explain_query_with(1, &db(), &Params::default(), &ExecConfig::fixed_default());
    assert_eq!(
        plain.unwrap(),
        explain_query(1, &db(), &Params::default()).unwrap()
    );
}

#[test]
fn q12_explain_shows_planner_chose_ordered_scans() {
    let text = explain_query(12, &db(), &Params::default()).unwrap();
    let expected = "\
HashAgg keys=[l_shipmode, o_orderpriority] aggs=[count=count(*)] -> (l_shipmode:str, o_orderpriority:str, count:i64)
  MergeJoin on (l_orderkey = o_orderkey) payload=[o_orderpriority] -> (l_orderkey:i32, l_shipmode:str, l_shipdate:i32, l_commitdate:i32, l_receiptdate:i32, o_orderpriority:str)
    left: Scan orders (ordered) -> (o_orderkey:i32, o_orderpriority:str)
    right: Filter l_shipmode IN ('MAIL', 'SHIP') AND l_receiptdate >= 731 AND l_receiptdate < 1096 AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate -> (l_orderkey:i32, l_shipmode:str, l_shipdate:i32, l_commitdate:i32, l_receiptdate:i32)
      Scan lineitem (ordered) -> (l_orderkey:i32, l_shipmode:str, l_shipdate:i32, l_commitdate:i32, l_receiptdate:i32)
";
    assert_eq!(text, expected);
    // The property the golden string encodes, asserted directly too:
    // every scan under the merge join is ordered, none shardable.
    assert_eq!(text.matches("(ordered)").count(), 2);
    assert!(!text.contains("(shardable)"));
}

#[test]
fn all_22_queries_explain_without_error() {
    let db = db();
    let p = Params::default();
    for q in 1..=22 {
        let text = explain_query(q, &db, &p).unwrap_or_else(|e| panic!("EXPLAIN Q{q} failed: {e}"));
        assert!(text.contains("Scan"), "Q{q} explain has no scan:\n{text}");
        assert!(
            text.contains(" -> ("),
            "Q{q} explain has no schema:\n{text}"
        );
    }
}
