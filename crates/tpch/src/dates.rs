//! Calendar arithmetic for TPC-H dates.
//!
//! Dates are stored as `i32` days since 1992-01-01 (the first order date the
//! spec allows). Conversion uses the standard civil-from-days algorithm
//! (Howard Hinnant), exact over the whole TPC-H range.

/// Days from 1970-01-01 to 1992-01-01.
const EPOCH_OFFSET_1970: i64 = 8035;

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = y - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = (m + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + u64::from(doy); // [0, 146096]
    era * 146_097 + doe as i64 - 719_468
}

/// TPC-H day number (days since 1992-01-01) for a civil date.
pub fn date(y: i32, m: u32, d: u32) -> i32 {
    (days_from_civil(y as i64, m, d) - EPOCH_OFFSET_1970) as i32
}

/// Civil `(year, month, day)` from a TPC-H day number.
pub fn civil(day: i32) -> (i32, u32, u32) {
    let z = day as i64 + EPOCH_OFFSET_1970 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

/// Year of a TPC-H day number.
pub fn year_of(day: i32) -> i32 {
    civil(day).0
}

/// Adds whole months to a day number (TPC-H parameter dates are always the
/// first of a month, so no day-clamping is needed).
pub fn add_months(day: i32, months: i32) -> i32 {
    let (y, m, d) = civil(day);
    let tot = y * 12 + (m as i32 - 1) + months;
    let ny = tot.div_euclid(12);
    let nm = (tot.rem_euclid(12) + 1) as u32;
    date(ny, nm, d)
}

/// Adds whole years to a day number.
pub fn add_years(day: i32, years: i32) -> i32 {
    add_months(day, years * 12)
}

/// First order date allowed by the spec.
pub const START_DATE: i32 = 0; // 1992-01-01
/// Last ship window end (1998-12-31).
pub fn end_date() -> i32 {
    date(1998, 12, 31)
}
/// The spec's CURRENTDATE (1995-06-17).
pub fn current_date() -> i32 {
    date(1995, 6, 17)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(date(1992, 1, 1), 0);
    }

    #[test]
    fn known_spans() {
        assert_eq!(date(1992, 1, 2), 1);
        assert_eq!(date(1993, 1, 1), 366); // 1992 is a leap year
        assert_eq!(date(1994, 1, 1), 731);
        assert_eq!(date(1998, 12, 31), 2556);
    }

    #[test]
    fn civil_roundtrip() {
        for day in [0, 1, 59, 60, 365, 366, 1000, 2000, 2556] {
            let (y, m, d) = civil(day);
            assert_eq!(date(y, m, d), day, "day {day} → {y}-{m}-{d}");
        }
    }

    #[test]
    fn years() {
        assert_eq!(year_of(date(1995, 6, 17)), 1995);
        assert_eq!(year_of(date(1992, 12, 31)), 1992);
        assert_eq!(year_of(date(1996, 1, 1)), 1996);
    }

    #[test]
    fn month_and_year_arithmetic() {
        assert_eq!(add_months(date(1993, 7, 1), 3), date(1993, 10, 1));
        assert_eq!(add_months(date(1993, 11, 1), 3), date(1994, 2, 1));
        assert_eq!(add_years(date(1994, 1, 1), 1), date(1995, 1, 1));
        assert_eq!(add_months(date(1995, 9, 1), 1), date(1995, 10, 1));
    }

    #[test]
    fn leap_year_handling() {
        assert_eq!(date(1992, 3, 1) - date(1992, 2, 28), 2); // Feb 29 exists
        assert_eq!(date(1993, 3, 1) - date(1993, 2, 28), 1);
        let (y, m, d) = civil(date(1996, 2, 29));
        assert_eq!((y, m, d), (1996, 2, 29));
    }
}
