//! Query runner: executes TPC-H queries under a given engine configuration
//! with per-stage and per-instance profiling — the machinery behind the
//! paper's §4 evaluation (Tables 6–11, Figures 2/4/11).

use std::sync::Arc;

use ma_core::cycles::ticks_now;
use ma_core::PrimitiveDictionary;
use ma_executor::{ExecConfig, ExecError, InstanceReport, QueryContext, StageProfile};
use ma_primitives::build_dictionary;

use crate::dbgen::TpchData;
use crate::params::Params;
use crate::queries::run_query;

/// Result of one query execution.
pub struct QueryResult {
    /// Query number (1–22).
    pub query: usize,
    /// Result row count.
    pub rows: usize,
    /// Configuration-independent result checksum.
    pub checksum: f64,
    /// Stage profile. Plan construction is interleaved with execution in
    /// multi-phase queries, so `preprocess` is folded into `execute` here;
    /// the dedicated Table 1 experiment instruments the stages separately.
    pub stages: StageProfile,
    /// Per-primitive-instance profiles (APHs, flavor call counts).
    pub instances: Vec<InstanceReport>,
}

impl QueryResult {
    /// Total ticks spent in primitives.
    pub fn primitive_ticks(&self) -> u64 {
        self.instances.iter().map(|i| i.ticks).sum()
    }

    /// Ticks in instances whose signature matches `pred`.
    pub fn ticks_matching(&self, pred: impl Fn(&InstanceReport) -> bool) -> u64 {
        self.instances
            .iter()
            .filter(|i| pred(i))
            .map(|i| i.ticks)
            .sum()
    }
}

/// Executes TPC-H queries against one generated database.
pub struct Runner {
    db: Arc<TpchData>,
    dict: Arc<PrimitiveDictionary>,
    params: Params,
}

impl Runner {
    /// Creates a runner over a database.
    pub fn new(db: Arc<TpchData>) -> Self {
        Runner {
            db,
            dict: Arc::new(build_dictionary()),
            params: Params::default(),
        }
    }

    /// The database.
    pub fn db(&self) -> &Arc<TpchData> {
        &self.db
    }

    /// The shared dictionary.
    pub fn dictionary(&self) -> &Arc<PrimitiveDictionary> {
        &self.dict
    }

    /// Substitution parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Runs query `q` under `config`.
    pub fn run(&self, q: usize, config: ExecConfig) -> Result<QueryResult, ExecError> {
        let ctx = QueryContext::new(Arc::clone(&self.dict), config);
        let t0 = ticks_now();
        let out = run_query(q, &self.db, &ctx, &self.params)?;
        let execute = ticks_now().saturating_sub(t0);
        let primitives = ctx.total_primitive_ticks();
        Ok(QueryResult {
            query: q,
            rows: out.rows,
            checksum: out.checksum,
            stages: StageProfile {
                preprocess: 0,
                execute,
                primitives,
                postprocess: 0,
            },
            instances: ctx.reports(),
        })
    }

    /// Runs all 22 queries (a power run), returning per-query results.
    pub fn power_run(&self, config: &ExecConfig) -> Result<Vec<QueryResult>, ExecError> {
        (1..=22).map(|q| self.run(q, config.clone())).collect()
    }
}

/// Geometric mean of per-query improvement factors (the paper's power-score
/// comparison in Table 11).
pub fn geometric_mean(factors: &[f64]) -> f64 {
    if factors.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = factors.iter().map(|f| f.max(1e-12).ln()).sum();
    (log_sum / factors.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ma_executor::FlavorAxis;
    use std::sync::OnceLock;

    fn runner() -> &'static Runner {
        static R: OnceLock<Runner> = OnceLock::new();
        R.get_or_init(|| Runner::new(Arc::new(TpchData::generate(0.005, 0x7E57))))
    }

    #[test]
    fn q6_runs_with_profiles() {
        let r = runner().run(6, ExecConfig::fixed_default()).unwrap();
        assert_eq!(r.rows, 1);
        assert!(r.stages.execute > 0);
        assert!(r.primitive_ticks() > 0);
        assert!(!r.instances.is_empty());
        // The selection instances exist and were called.
        let sel_ticks = r.ticks_matching(|i| i.signature.starts_with("sel_"));
        assert!(sel_ticks > 0);
    }

    #[test]
    fn adaptive_and_fixed_agree_on_q6() {
        let a = runner().run(6, ExecConfig::fixed_default()).unwrap();
        let b = runner()
            .run(6, ExecConfig::adaptive(FlavorAxis::All))
            .unwrap();
        let c = runner().run(6, ExecConfig::heuristic()).unwrap();
        assert!((a.checksum - b.checksum).abs() <= 1e-6 * a.checksum.abs().max(1.0));
        assert!((a.checksum - c.checksum).abs() <= 1e-6 * a.checksum.abs().max(1.0));
    }

    #[test]
    fn adaptive_run_uses_multiple_flavors() {
        let r = runner()
            .run(1, ExecConfig::adaptive(FlavorAxis::All).with_seed(3))
            .unwrap();
        // At least one instance with >1 flavor should have spread calls.
        let spread = r
            .instances
            .iter()
            .any(|i| i.flavor_calls.iter().filter(|(_, c)| *c > 0).count() > 1);
        assert!(spread, "adaptive run should exercise multiple flavors");
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 0.5]) - 1.0).abs() < 1e-12);
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 1.0);
    }
}
