//! TPC-H Q18–Q22.

use ma_executor::ops::{
    AggSpec, HashAggregate, HashJoin, JoinKind, ProjItem, Project, Select, Sort, SortKey,
    StreamAggregate,
};
use ma_executor::{BoxOp, CmpKind, ExecError, Expr, Pred, QueryContext, Value};
use ma_vector::DataType;

use super::{finish, revenue, scan, scan_where, store_to_table, QueryOutput};
use crate::dates::add_years;
use crate::dbgen::TpchData;
use crate::params::Params;

/// Q18: large-volume customers.
pub(crate) fn q18(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    // per-order quantity
    let li = scan(db, "lineitem", &["l_orderkey", "l_quantity"], ctx)?;
    let proj = Project::new(
        li,
        vec![
            ProjItem::Pass(0),
            ProjItem::Expr(Expr::cast(DataType::I64, Expr::col(1))),
        ],
        ctx,
        "Q18/qty64",
    )?;
    let per_order = HashAggregate::new(
        Box::new(proj),
        vec![0],
        vec![AggSpec::SumI64(1)],
        ctx,
        "Q18/agg_qty",
    )?;
    let big = Select::new(
        Box::new(per_order),
        &Pred::cmp_val(1, CmpKind::Gt, Value::I64(p.q18_quantity)),
        ctx,
        "Q18/sel_big",
    )?;
    // orders of those keys: [0 okey, 1 ockey, 2 odate, 3 total, 4 sumqty]
    let orders = scan(
        db,
        "orders",
        &["o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"],
        ctx,
    )?;
    let ord = HashJoin::new(
        Box::new(big),
        orders,
        vec![0],
        vec![0],
        vec![1],
        JoinKind::Inner,
        true,
        vec![],
        ctx,
        "Q18/join_orders",
    )?;
    // customer name: [0..4, 5 cname]
    let customer = scan(db, "customer", &["c_custkey", "c_name"], ctx)?;
    let with_cust = HashJoin::new(
        customer,
        Box::new(ord),
        vec![0],
        vec![1],
        vec![1],
        JoinKind::Inner,
        false,
        vec![],
        ctx,
        "Q18/join_cust",
    )?;
    // output: [cname, ckey, okey, odate, totalprice, sumqty]
    let out = Project::new(
        Box::new(with_cust),
        vec![
            ProjItem::Pass(5),
            ProjItem::Pass(1),
            ProjItem::Pass(0),
            ProjItem::Pass(2),
            ProjItem::Pass(3),
            ProjItem::Pass(4),
        ],
        ctx,
        "Q18/out",
    )?;
    let sort = Sort::new(
        Box::new(out),
        vec![SortKey::desc(4), SortKey::asc(3)],
        Some(100),
        ctx.vector_size(),
    )?;
    finish(Box::new(sort))
}

/// Q19: discounted revenue (the three-branch OR of ANDs).
pub(crate) fn q19(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    // [0 lpk, 1 qty, 2 ep, 3 disc, 4 instr, 5 mode]
    let li_common = scan_where(
        db,
        "lineitem",
        &[
            "l_partkey",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_shipinstruct",
            "l_shipmode",
        ],
        &Pred::And(vec![
            Pred::str_eq(4, "DELIVER IN PERSON"),
            Pred::InStr {
                col: 5,
                values: vec!["AIR".into(), "REG AIR".into()],
            },
        ]),
        ctx,
        "Q19/sel_common",
    )?;
    // part attrs: [0..5, 6 brand, 7 container, 8 size]
    let part = scan(
        db,
        "part",
        &["p_partkey", "p_brand", "p_container", "p_size"],
        ctx,
    )?;
    let joined = HashJoin::new(
        part,
        li_common,
        vec![0],
        vec![0],
        vec![1, 2, 3],
        JoinKind::Inner,
        false,
        vec![],
        ctx,
        "Q19/join_part",
    )?;
    let branch = |brand: &str, containers: &[&str], qlo: i32, smax: i32| -> Pred {
        Pred::And(vec![
            Pred::str_eq(6, brand),
            Pred::InStr {
                col: 7,
                values: containers.iter().map(|s| s.to_string()).collect(),
            },
            Pred::cmp_val(1, CmpKind::Ge, Value::I32(qlo)),
            Pred::cmp_val(1, CmpKind::Le, Value::I32(qlo + 10)),
            Pred::cmp_val(8, CmpKind::Ge, Value::I32(1)),
            Pred::cmp_val(8, CmpKind::Le, Value::I32(smax)),
        ])
    };
    let sel = Select::new(
        Box::new(joined),
        &Pred::Or(vec![
            branch(
                p.q19_brand1,
                &["SM CASE", "SM BOX", "SM PACK", "SM PKG"],
                p.q19_qty1,
                5,
            ),
            branch(
                p.q19_brand2,
                &["MED BAG", "MED BOX", "MED PKG", "MED PACK"],
                p.q19_qty2,
                10,
            ),
            branch(
                p.q19_brand3,
                &["LG CASE", "LG BOX", "LG PACK", "LG PKG"],
                p.q19_qty3,
                15,
            ),
        ]),
        ctx,
        "Q19/sel_branches",
    )?;
    let proj = Project::new(
        Box::new(sel),
        vec![ProjItem::Expr(revenue(2, 3))],
        ctx,
        "Q19/rev",
    )?;
    let agg = StreamAggregate::new(Box::new(proj), vec![AggSpec::SumF64(0)], ctx, "Q19/agg")?;
    finish(Box::new(agg))
}

/// Q20: potential part promotion.
pub(crate) fn q20(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    // forest% parts
    let part_sel = scan_where(
        db,
        "part",
        &["p_partkey", "p_name"],
        &Pred::Like {
            col: 1,
            pattern: format!("{}%", p.q20_color),
        },
        ctx,
        "Q20/sel_part",
    )?;
    // partsupp for those parts: [0 pspk, 1 pssk, 2 avail]
    let partsupp = scan(
        db,
        "partsupp",
        &["ps_partkey", "ps_suppkey", "ps_availqty"],
        ctx,
    )?;
    let ps = HashJoin::new(
        part_sel,
        partsupp,
        vec![0],
        vec![0],
        vec![],
        JoinKind::Semi,
        true,
        vec![],
        ctx,
        "Q20/semi_part",
    )?;
    // shipped quantity per (partkey, suppkey) in the year
    let li_sel = scan_where(
        db,
        "lineitem",
        &["l_partkey", "l_suppkey", "l_quantity", "l_shipdate"],
        &Pred::And(vec![
            Pred::cmp_val(3, CmpKind::Ge, Value::I32(p.q20_date)),
            Pred::cmp_val(3, CmpKind::Lt, Value::I32(add_years(p.q20_date, 1))),
        ]),
        ctx,
        "Q20/sel_shipdate",
    )?;
    let li_proj = Project::new(
        li_sel,
        vec![
            ProjItem::Pass(0),
            ProjItem::Pass(1),
            ProjItem::Expr(Expr::cast(DataType::I64, Expr::col(2))),
        ],
        ctx,
        "Q20/qty64",
    )?;
    let li_agg = HashAggregate::new(
        Box::new(li_proj),
        vec![0, 1],
        vec![AggSpec::SumI64(2)],
        ctx,
        "Q20/agg_shipped",
    )?;
    let mut li_agg_op: BoxOp = Box::new(li_agg);
    let shipped_store = ma_executor::ops::materialize(li_agg_op.as_mut())?;
    let shipped_t = store_to_table("q20shipped", &["pk", "sk", "sumqty"], &shipped_store)?;
    let shipped: BoxOp = Box::new(ma_executor::ops::Scan::new(
        std::sync::Arc::clone(&shipped_t),
        &["pk", "sk", "sumqty"],
        ctx.vector_size(),
    )?);
    // [0 pspk, 1 pssk, 2 avail, 3 sumqty]
    let with_qty = HashJoin::new(
        shipped,
        Box::new(ps),
        vec![0, 1],
        vec![0, 1],
        vec![2],
        JoinKind::Inner,
        false,
        vec![],
        ctx,
        "Q20/join_shipped",
    )?;
    // availqty > 0.5 * sumqty  ⟺  2*avail > sumqty
    // [0 pssk, 1 lhs, 2 sumqty]
    let cmp = Project::new(
        Box::new(with_qty),
        vec![
            ProjItem::Pass(1),
            ProjItem::Expr(Expr::mul(
                Expr::cast(DataType::I64, Expr::col(2)),
                Expr::i64(2),
            )),
            ProjItem::Pass(3),
        ],
        ctx,
        "Q20/cmp",
    )?;
    let excess = Select::new(
        Box::new(cmp),
        &Pred::cmp_col(1, CmpKind::Gt, 2),
        ctx,
        "Q20/sel_excess",
    )?;
    // suppliers with excess stock, in the nation
    // [0 sk, 1 sname, 2 saddr, 3 snk]
    let supplier = scan(
        db,
        "supplier",
        &["s_suppkey", "s_name", "s_address", "s_nationkey"],
        ctx,
    )?;
    let sup = HashJoin::new(
        Box::new(excess),
        supplier,
        vec![0],
        vec![0],
        vec![],
        JoinKind::Semi,
        false,
        vec![],
        ctx,
        "Q20/semi_supp",
    )?;
    let nat = scan_where(
        db,
        "nation",
        &["n_nationkey", "n_name"],
        &Pred::str_eq(1, p.q20_nation),
        ctx,
        "Q20/sel_nation",
    )?;
    let sup_nat = HashJoin::new(
        nat,
        Box::new(sup),
        vec![0],
        vec![3],
        vec![],
        JoinKind::Semi,
        false,
        vec![],
        ctx,
        "Q20/semi_nation",
    )?;
    let out = Project::new(
        Box::new(sup_nat),
        vec![ProjItem::Pass(1), ProjItem::Pass(2)],
        ctx,
        "Q20/out",
    )?;
    let sort = Sort::new(
        Box::new(out),
        vec![SortKey::asc(0)],
        None,
        ctx.vector_size(),
    )?;
    finish(Box::new(sort))
}

/// Q21: suppliers who kept orders waiting. The EXISTS/NOT EXISTS pair is
/// rewritten over per-order min/max supplier aggregates (see DESIGN.md):
/// another supplier exists ⟺ min ≠ max among all lines; no *other* late
/// supplier ⟺ min = max among late lines.
pub(crate) fn q21(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    let li_minmax = |late_only: bool, label: &str| -> Result<BoxOp, ExecError> {
        let cols = ["l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate"];
        let base: BoxOp = if late_only {
            scan_where(
                db,
                "lineitem",
                &cols,
                &Pred::cmp_col(3, CmpKind::Gt, 2),
                ctx,
                &format!("{label}/late"),
            )?
        } else {
            scan(db, "lineitem", &cols, ctx)?
        };
        let proj = Project::new(
            base,
            vec![
                ProjItem::Pass(0),
                ProjItem::Expr(Expr::cast(DataType::I64, Expr::col(1))),
            ],
            ctx,
            &format!("{label}/sk64"),
        )?;
        Ok(Box::new(HashAggregate::new(
            Box::new(proj),
            vec![0],
            vec![AggSpec::MinI64(1), AggSpec::MaxI64(1)],
            ctx,
            label,
        )?))
    };
    // main stream: Saudi suppliers' late lines on F orders
    let nat = scan_where(
        db,
        "nation",
        &["n_nationkey", "n_name"],
        &Pred::str_eq(1, p.q21_nation),
        ctx,
        "Q21/sel_nation",
    )?;
    let supplier = scan(db, "supplier", &["s_suppkey", "s_name", "s_nationkey"], ctx)?;
    let sup = HashJoin::new(
        nat,
        supplier,
        vec![0],
        vec![2],
        vec![],
        JoinKind::Semi,
        false,
        vec![],
        ctx,
        "Q21/semi_nation",
    )?;
    let l1 = scan_where(
        db,
        "lineitem",
        &["l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate"],
        &Pred::cmp_col(3, CmpKind::Gt, 2),
        ctx,
        "Q21/sel_late",
    )?;
    // [0 lokey, 1 lsk, 2 cdate, 3 rdate, 4 sname]
    let l1s = HashJoin::new(
        Box::new(sup),
        l1,
        vec![0],
        vec![1],
        vec![1],
        JoinKind::Inner,
        true,
        vec![],
        ctx,
        "Q21/join_supp",
    )?;
    // F orders only
    let ord_f = scan_where(
        db,
        "orders",
        &["o_orderkey", "o_orderstatus"],
        &Pred::str_eq(1, "F"),
        ctx,
        "Q21/sel_status",
    )?;
    let l1f = HashJoin::new(
        ord_f,
        Box::new(l1s),
        vec![0],
        vec![0],
        vec![],
        JoinKind::Semi,
        true,
        vec![],
        ctx,
        "Q21/semi_orders",
    )?;
    // attach per-order min/max over all lines: [0..4, 5 min_a, 6 max_a]
    let with_all = HashJoin::new(
        li_minmax(false, "Q21/agg_all")?,
        Box::new(l1f),
        vec![0],
        vec![0],
        vec![1, 2],
        JoinKind::Inner,
        false,
        vec![],
        ctx,
        "Q21/join_all",
    )?;
    // attach per-order min/max over late lines: [0..6, 7 min_l, 8 max_l]
    let with_late = HashJoin::new(
        li_minmax(true, "Q21/agg_late")?,
        Box::new(with_all),
        vec![0],
        vec![0],
        vec![1, 2],
        JoinKind::Inner,
        false,
        vec![],
        ctx,
        "Q21/join_late",
    )?;
    // exists other supplier ∧ no other late supplier
    let sel = Select::new(
        Box::new(with_late),
        &Pred::And(vec![
            Pred::cmp_col(5, CmpKind::Ne, 6),
            Pred::cmp_col(7, CmpKind::Eq, 8),
        ]),
        ctx,
        "Q21/sel_exists",
    )?;
    let agg = HashAggregate::new(
        Box::new(sel),
        vec![4],
        vec![AggSpec::CountStar],
        ctx,
        "Q21/agg",
    )?;
    let sort = Sort::new(
        Box::new(agg),
        vec![SortKey::desc(1), SortKey::asc(0)],
        Some(100),
        ctx.vector_size(),
    )?;
    finish(Box::new(sort))
}

/// Q22: global sales opportunity (two-phase: average balance, then the
/// anti-join against orders).
pub(crate) fn q22(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    let codes: Vec<String> = p.q22_codes.iter().map(|s| s.to_string()).collect();
    let cust_with_code = |label: &str| -> Result<BoxOp, ExecError> {
        // [0 ck, 1 cc, 2 acctf]
        let customer = scan(db, "customer", &["c_custkey", "c_phone", "c_acctbal"], ctx)?;
        let proj = Project::new(
            customer,
            vec![
                ProjItem::Pass(0),
                ProjItem::Expr(Expr::Substr {
                    col: 1,
                    start: 0,
                    len: 2,
                }),
                ProjItem::Expr(Expr::cast(DataType::F64, Expr::col(2))),
            ],
            ctx,
            &format!("{label}/proj"),
        )?;
        Ok(Box::new(Select::new(
            Box::new(proj),
            &Pred::InStr {
                col: 1,
                values: codes.clone(),
            },
            ctx,
            label,
        )?))
    };
    // phase A: avg positive balance among those customers
    let positive = Select::new(
        cust_with_code("Q22/codes_a")?,
        &Pred::cmp_val(2, CmpKind::Gt, Value::F64(0.0)),
        ctx,
        "Q22/sel_positive",
    )?;
    let avg_agg = StreamAggregate::new(
        Box::new(positive),
        vec![AggSpec::SumF64(2), AggSpec::CountStar],
        ctx,
        "Q22/avg",
    )?;
    let mut avg_op: BoxOp = Box::new(avg_agg);
    let avg_store = ma_executor::ops::materialize(avg_op.as_mut())?;
    let sum = avg_store.col(0).as_f64()[0];
    let cnt = avg_store.col(1).as_i64()[0].max(1);
    let avgbal = sum / cnt as f64;
    // phase B: above-average customers with no orders
    let rich = Select::new(
        cust_with_code("Q22/codes_b")?,
        &Pred::cmp_val(2, CmpKind::Gt, Value::F64(avgbal)),
        ctx,
        "Q22/sel_rich",
    )?;
    let orders = scan(db, "orders", &["o_custkey"], ctx)?;
    let no_orders = HashJoin::new(
        orders,
        Box::new(rich),
        vec![0],
        vec![0],
        vec![],
        JoinKind::Anti,
        true,
        vec![],
        ctx,
        "Q22/anti_orders",
    )?;
    // [cc, numcust, totacctbal]
    let agg = HashAggregate::new(
        Box::new(no_orders),
        vec![1],
        vec![AggSpec::CountStar, AggSpec::SumF64(2)],
        ctx,
        "Q22/agg",
    )?;
    let sort = Sort::new(
        Box::new(agg),
        vec![SortKey::asc(0)],
        None,
        ctx.vector_size(),
    )?;
    finish(Box::new(sort))
}

#[cfg(test)]
mod tests {
    use super::super::test_support::run;

    #[test]
    fn q18_rows_sorted_by_totalprice() {
        let out = run(18);
        // Threshold 300 is strict; at tiny SF there may be few/no hits —
        // orders have up to 7 lines × 50 qty = 350 max.
        let tp = out.store.col(4).as_i64();
        for w in tp.windows(2) {
            assert!(w[0] >= w[1]);
        }
        let sq = out.store.col(5).as_i64();
        assert!(sq.iter().all(|&q| q > 300));
    }

    #[test]
    fn q19_revenue_nonnegative() {
        let out = run(19);
        assert_eq!(out.rows, 1);
        assert!(out.store.col(0).as_f64()[0] >= 0.0);
    }

    #[test]
    fn q20_supplier_names_sorted() {
        let out = run(20);
        let names: Vec<String> = (0..out.rows)
            .map(|g| out.store.col(0).as_str_vec().get(g).to_string())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn q21_counts_positive() {
        let out = run(21);
        let cnt = out.store.col(1).as_i64();
        assert!(cnt.iter().all(|&c| c > 0));
        for w in cnt.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn q22_codes_sorted_with_positive_balances() {
        let out = run(22);
        assert!(
            out.rows >= 1,
            "some codes should have rich no-order customers"
        );
        let codes: Vec<String> = (0..out.rows)
            .map(|g| out.store.col(0).as_str_vec().get(g).to_string())
            .collect();
        let mut sorted = codes.clone();
        sorted.sort();
        assert_eq!(codes, sorted);
        // total balances positive (all selected were above a positive avg)
        assert!(out.store.col(2).as_f64().iter().all(|&b| b > 0.0));
    }
}
