//! TPC-H Q18–Q22.

use ma_executor::ops::JoinKind;
use ma_executor::plan::{
    asc, col, count, desc, max_i64, min_i64, substr, sum_f64, sum_i64, NamedPred, PlanBuilder,
};
use ma_executor::{CmpKind, ExecError, QueryContext, Value};
use ma_vector::DataType;

use super::{materialize_plan, revenue, run_plan, store_to_table, QueryOutput};
use crate::dates::add_years;
use crate::dbgen::TpchData;
use crate::params::Params;

/// Q18's logical plan: large-volume customers.
pub(crate) fn q18_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    let big = PlanBuilder::scan(db, "lineitem", &["l_orderkey", "l_quantity"])
        .project(
            vec![
                ("l_orderkey", col("l_orderkey")),
                ("qty", col("l_quantity").cast(DataType::I64)),
            ],
            "Q18/qty64",
        )
        .hash_agg(
            &["l_orderkey"],
            vec![sum_i64("qty").named("sumqty")],
            "Q18/agg_qty",
        )
        .filter(
            NamedPred::cmp_val("sumqty", CmpKind::Gt, Value::I64(p.q18_quantity)),
            "Q18/sel_big",
        );
    PlanBuilder::scan(
        db,
        "orders",
        &["o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"],
    )
    .hash_join(
        big,
        &[("o_orderkey", "l_orderkey")],
        &["sumqty"],
        JoinKind::Inner,
        true,
        "Q18/join_orders",
    )
    .hash_join(
        PlanBuilder::scan(db, "customer", &["c_custkey", "c_name"]),
        &[("o_custkey", "c_custkey")],
        &["c_name"],
        JoinKind::Inner,
        false,
        "Q18/join_cust",
    )
    .keep(&[
        "c_name",
        "o_custkey",
        "o_orderkey",
        "o_orderdate",
        "o_totalprice",
        "sumqty",
    ])
    .top_n(&[desc("o_totalprice"), asc("o_orderdate")], 100)
}

/// Q18: large-volume customers.
pub(crate) fn q18(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    run_plan(q18_plan(db, p), ctx)
}

/// Q19's logical plan: discounted revenue (the three-branch OR of ANDs).
pub(crate) fn q19_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    let branch = |brand: &str, containers: &[&str], qlo: i32, smax: i32| -> NamedPred {
        NamedPred::And(vec![
            NamedPred::str_eq("p_brand", brand),
            NamedPred::in_str("p_container", containers.iter().copied()),
            NamedPred::cmp_val("l_quantity", CmpKind::Ge, Value::I32(qlo)),
            NamedPred::cmp_val("l_quantity", CmpKind::Le, Value::I32(qlo + 10)),
            NamedPred::cmp_val("p_size", CmpKind::Ge, Value::I32(1)),
            NamedPred::cmp_val("p_size", CmpKind::Le, Value::I32(smax)),
        ])
    };
    PlanBuilder::scan(
        db,
        "lineitem",
        &[
            "l_partkey",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_shipinstruct",
            "l_shipmode",
        ],
    )
    .filter(
        NamedPred::And(vec![
            NamedPred::str_eq("l_shipinstruct", "DELIVER IN PERSON"),
            NamedPred::in_str("l_shipmode", ["AIR", "REG AIR"]),
        ]),
        "Q19/sel_common",
    )
    .hash_join(
        PlanBuilder::scan(
            db,
            "part",
            &["p_partkey", "p_brand", "p_container", "p_size"],
        ),
        &[("l_partkey", "p_partkey")],
        &["p_brand", "p_container", "p_size"],
        JoinKind::Inner,
        false,
        "Q19/join_part",
    )
    .filter(
        NamedPred::Or(vec![
            branch(
                p.q19_brand1,
                &["SM CASE", "SM BOX", "SM PACK", "SM PKG"],
                p.q19_qty1,
                5,
            ),
            branch(
                p.q19_brand2,
                &["MED BAG", "MED BOX", "MED PKG", "MED PACK"],
                p.q19_qty2,
                10,
            ),
            branch(
                p.q19_brand3,
                &["LG CASE", "LG BOX", "LG PACK", "LG PKG"],
                p.q19_qty3,
                15,
            ),
        ]),
        "Q19/sel_branches",
    )
    .project(
        vec![("rev", revenue("l_extendedprice", "l_discount"))],
        "Q19/rev",
    )
    .stream_agg(vec![sum_f64("rev")], "Q19/agg")
}

/// Q19: discounted revenue.
pub(crate) fn q19(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    run_plan(q19_plan(db, p), ctx)
}

/// Q20 phase A: quantity shipped per (partkey, suppkey) in the year.
pub(crate) fn q20_shipped_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    PlanBuilder::scan(
        db,
        "lineitem",
        &["l_partkey", "l_suppkey", "l_quantity", "l_shipdate"],
    )
    .filter(
        NamedPred::And(vec![
            NamedPred::cmp_val("l_shipdate", CmpKind::Ge, Value::I32(p.q20_date)),
            NamedPred::cmp_val(
                "l_shipdate",
                CmpKind::Lt,
                Value::I32(add_years(p.q20_date, 1)),
            ),
        ]),
        "Q20/sel_shipdate",
    )
    .project(
        vec![
            ("l_partkey", col("l_partkey")),
            ("l_suppkey", col("l_suppkey")),
            ("qty", col("l_quantity").cast(DataType::I64)),
        ],
        "Q20/qty64",
    )
    .hash_agg(
        &["l_partkey", "l_suppkey"],
        vec![sum_i64("qty").named("sumqty")],
        "Q20/agg_shipped",
    )
}

/// Q20: potential part promotion.
pub(crate) fn q20(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    let shipped_store = materialize_plan(q20_shipped_plan(db, p), ctx)?;
    let shipped_t = store_to_table("q20shipped", &["pk", "sk", "sumqty"], &shipped_store)?;
    let part_sel = PlanBuilder::scan(db, "part", &["p_partkey", "p_name"]).filter(
        NamedPred::like("p_name", format!("{}%", p.q20_color)),
        "Q20/sel_part",
    );
    let excess = PlanBuilder::scan(db, "partsupp", &["ps_partkey", "ps_suppkey", "ps_availqty"])
        .hash_join(
            part_sel,
            &[("ps_partkey", "p_partkey")],
            &[],
            JoinKind::Semi,
            true,
            "Q20/semi_part",
        )
        .hash_join(
            PlanBuilder::from_table(shipped_t, &["pk", "sk", "sumqty"]),
            &[("ps_partkey", "pk"), ("ps_suppkey", "sk")],
            &["sumqty"],
            JoinKind::Inner,
            false,
            "Q20/join_shipped",
        )
        // availqty > 0.5 * sumqty  ⟺  2*avail > sumqty
        .project(
            vec![
                ("ps_suppkey", col("ps_suppkey")),
                (
                    "lhs",
                    col("ps_availqty")
                        .cast(DataType::I64)
                        .mul(ma_executor::plan::lit_i64(2)),
                ),
                ("sumqty", col("sumqty")),
            ],
            "Q20/cmp",
        )
        .filter(
            NamedPred::cmp_col("lhs", CmpKind::Gt, "sumqty"),
            "Q20/sel_excess",
        );
    let nat = PlanBuilder::scan(db, "nation", &["n_nationkey", "n_name"])
        .filter(NamedPred::str_eq("n_name", p.q20_nation), "Q20/sel_nation");
    let out = PlanBuilder::scan(
        db,
        "supplier",
        &["s_suppkey", "s_name", "s_address", "s_nationkey"],
    )
    .hash_join(
        excess,
        &[("s_suppkey", "ps_suppkey")],
        &[],
        JoinKind::Semi,
        false,
        "Q20/semi_supp",
    )
    .hash_join(
        nat,
        &[("s_nationkey", "n_nationkey")],
        &[],
        JoinKind::Semi,
        false,
        "Q20/semi_nation",
    )
    .keep(&["s_name", "s_address"])
    .sort(&[asc("s_name")]);
    run_plan(out, ctx)
}

/// Q21's logical plan: suppliers who kept orders waiting. The EXISTS/NOT
/// EXISTS pair is rewritten over per-order min/max supplier aggregates
/// (see DESIGN.md): another supplier exists ⟺ min ≠ max among all lines;
/// no *other* late supplier ⟺ min = max among late lines.
pub(crate) fn q21_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    let li_minmax = |late_only: bool, label: &str, min_name: &str, max_name: &str| -> PlanBuilder {
        let cols = ["l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate"];
        let base = PlanBuilder::scan(db, "lineitem", &cols);
        let base = if late_only {
            base.filter(
                NamedPred::cmp_col("l_receiptdate", CmpKind::Gt, "l_commitdate"),
                &format!("{label}/late"),
            )
        } else {
            base
        };
        base.project(
            vec![
                ("l_orderkey", col("l_orderkey")),
                ("sk", col("l_suppkey").cast(DataType::I64)),
            ],
            &format!("{label}/sk64"),
        )
        .hash_agg(
            &["l_orderkey"],
            vec![min_i64("sk").named(min_name), max_i64("sk").named(max_name)],
            label,
        )
    };
    let nat = PlanBuilder::scan(db, "nation", &["n_nationkey", "n_name"])
        .filter(NamedPred::str_eq("n_name", p.q21_nation), "Q21/sel_nation");
    let sup = PlanBuilder::scan(db, "supplier", &["s_suppkey", "s_name", "s_nationkey"]).hash_join(
        nat,
        &[("s_nationkey", "n_nationkey")],
        &[],
        JoinKind::Semi,
        false,
        "Q21/semi_nation",
    );
    let ord_f = PlanBuilder::scan(db, "orders", &["o_orderkey", "o_orderstatus"])
        .filter(NamedPred::str_eq("o_orderstatus", "F"), "Q21/sel_status");
    PlanBuilder::scan(
        db,
        "lineitem",
        &["l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate"],
    )
    .filter(
        NamedPred::cmp_col("l_receiptdate", CmpKind::Gt, "l_commitdate"),
        "Q21/sel_late",
    )
    .hash_join(
        sup,
        &[("l_suppkey", "s_suppkey")],
        &["s_name"],
        JoinKind::Inner,
        true,
        "Q21/join_supp",
    )
    .hash_join(
        ord_f,
        &[("l_orderkey", "o_orderkey")],
        &[],
        JoinKind::Semi,
        true,
        "Q21/semi_orders",
    )
    .hash_join(
        li_minmax(false, "Q21/agg_all", "min_all", "max_all"),
        &[("l_orderkey", "l_orderkey")],
        &["min_all", "max_all"],
        JoinKind::Inner,
        false,
        "Q21/join_all",
    )
    .hash_join(
        li_minmax(true, "Q21/agg_late", "min_late", "max_late"),
        &[("l_orderkey", "l_orderkey")],
        &["min_late", "max_late"],
        JoinKind::Inner,
        false,
        "Q21/join_late",
    )
    // exists other supplier ∧ no other late supplier
    .filter(
        NamedPred::And(vec![
            NamedPred::cmp_col("min_all", CmpKind::Ne, "max_all"),
            NamedPred::cmp_col("min_late", CmpKind::Eq, "max_late"),
        ]),
        "Q21/sel_exists",
    )
    .hash_agg(&["s_name"], vec![count()], "Q21/agg")
    .top_n(&[desc("count"), asc("s_name")], 100)
}

/// Q21: suppliers who kept orders waiting.
pub(crate) fn q21(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    run_plan(q21_plan(db, p), ctx)
}

/// The country-coded customer stream both Q22 phases read.
fn q22_customers_plan(db: &TpchData, p: &Params, label: &str) -> PlanBuilder {
    let codes: Vec<String> = p.q22_codes.iter().map(|s| s.to_string()).collect();
    PlanBuilder::scan(db, "customer", &["c_custkey", "c_phone", "c_acctbal"])
        .project(
            vec![
                ("c_custkey", col("c_custkey")),
                ("cc", substr("c_phone", 0, 2)),
                ("acct", col("c_acctbal").cast(DataType::F64)),
            ],
            &format!("{label}/proj"),
        )
        .filter(NamedPred::in_str("cc", codes), label)
}

/// Q22 phase A: sum/count of positive balances among coded customers.
pub(crate) fn q22_avg_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    q22_customers_plan(db, p, "Q22/codes_a")
        .filter(
            NamedPred::cmp_val("acct", CmpKind::Gt, Value::F64(0.0)),
            "Q22/sel_positive",
        )
        .stream_agg(vec![sum_f64("acct"), count()], "Q22/avg")
}

/// Q22: global sales opportunity (two-phase: average balance, then the
/// anti-join against orders).
pub(crate) fn q22(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    let avg_store = materialize_plan(q22_avg_plan(db, p), ctx)?;
    let sum = avg_store.col(0).as_f64()[0];
    let cnt = avg_store.col(1).as_i64()[0].max(1);
    let avgbal = sum / cnt as f64;
    let out = q22_customers_plan(db, p, "Q22/codes_b")
        .filter(
            NamedPred::cmp_val("acct", CmpKind::Gt, Value::F64(avgbal)),
            "Q22/sel_rich",
        )
        .hash_join(
            PlanBuilder::scan(db, "orders", &["o_custkey"]),
            &[("c_custkey", "o_custkey")],
            &[],
            JoinKind::Anti,
            true,
            "Q22/anti_orders",
        )
        .hash_agg(
            &["cc"],
            vec![
                count().named("numcust"),
                sum_f64("acct").named("totacctbal"),
            ],
            "Q22/agg",
        )
        .sort(&[asc("cc")]);
    run_plan(out, ctx)
}

#[cfg(test)]
mod tests {
    use super::super::test_support::run;

    #[test]
    fn q18_rows_sorted_by_totalprice() {
        let out = run(18);
        // Threshold 300 is strict; at tiny SF there may be few/no hits —
        // orders have up to 7 lines × 50 qty = 350 max.
        let tp = out.store.col(4).as_i64();
        for w in tp.windows(2) {
            assert!(w[0] >= w[1]);
        }
        let sq = out.store.col(5).as_i64();
        assert!(sq.iter().all(|&q| q > 300));
    }

    #[test]
    fn q19_revenue_nonnegative() {
        let out = run(19);
        assert_eq!(out.rows, 1);
        assert!(out.store.col(0).as_f64()[0] >= 0.0);
    }

    #[test]
    fn q20_supplier_names_sorted() {
        let out = run(20);
        let names: Vec<String> = (0..out.rows)
            .map(|g| out.store.col(0).as_str_vec().get(g).to_string())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn q21_counts_positive() {
        let out = run(21);
        let cnt = out.store.col(1).as_i64();
        assert!(cnt.iter().all(|&c| c > 0));
        for w in cnt.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn q22_codes_sorted_with_positive_balances() {
        let out = run(22);
        assert!(
            out.rows >= 1,
            "some codes should have rich no-order customers"
        );
        let codes: Vec<String> = (0..out.rows)
            .map(|g| out.store.col(0).as_str_vec().get(g).to_string())
            .collect();
        let mut sorted = codes.clone();
        sorted.sort();
        assert_eq!(codes, sorted);
        // total balances positive (all selected were above a positive avg)
        assert!(out.store.col(2).as_f64().iter().all(|&b| b > 0.0));
    }
}
