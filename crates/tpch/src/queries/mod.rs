//! The 22 TPC-H queries, expressed as named-column logical plans.
//!
//! Queries are written against the [`ma_executor::plan::PlanBuilder`] API:
//! they name columns, never positions, and make **no** parallelism
//! decisions — the physical planner ([`ma_executor::plan::lower`])
//! centrally decides which scans shard, where selections push into scan
//! fragments, and which pipelines must stay sequential because an
//! order-sensitive consumer (Q12's merge join) sits above them.
//!
//! Plans are built by hand (the paper's focus is the executor, not the
//! optimizer), with join orders a reasonable optimizer would pick. A few
//! queries need multi-phase orchestration that SQL engines do with scalar
//! subqueries or CASE expressions:
//!
//! * Q11/Q15/Q17/Q20/Q21/Q22 materialize an aggregate into a temporary
//!   table and feed a scalar (threshold/max/avg) into the next phase;
//! * Q8/Q12/Q14 group one level finer than the SQL and fold the CASE
//!   arithmetic in a tiny post-step over the (few-row) aggregate result.
//!
//! Every query returns a [`QueryOutput`] with a configuration-independent
//! checksum, which the integration tests use to verify that all flavor
//! modes (fixed, heuristic, adaptive) produce identical results.

mod q01_q06;
mod q07_q11;
mod q12_q17;
mod q18_q22;

use std::sync::Arc;

use ma_executor::ops::FrozenStore;
use ma_executor::plan::{lit_f64, lower, NamedExpr, PlanBuilder};
use ma_executor::{BoxOp, ExecConfig, ExecError, QueryContext};
use ma_vector::{Column, DataType, Table, Vector};

use crate::dbgen::TpchData;
use crate::params::Params;

/// A finished query: result rows plus a stable checksum.
pub struct QueryOutput {
    /// Number of result rows.
    pub rows: usize,
    /// Configuration-independent checksum over all result values.
    pub checksum: f64,
    /// The materialized result.
    pub store: FrozenStore,
}

/// Runs query `q` (1–22).
pub fn run_query(
    q: usize,
    db: &TpchData,
    ctx: &QueryContext,
    params: &Params,
) -> Result<QueryOutput, ExecError> {
    match q {
        1 => q01_q06::q01(db, ctx, params),
        2 => q01_q06::q02(db, ctx, params),
        3 => q01_q06::q03(db, ctx, params),
        4 => q01_q06::q04(db, ctx, params),
        5 => q01_q06::q05(db, ctx, params),
        6 => q01_q06::q06(db, ctx, params),
        7 => q07_q11::q07(db, ctx, params),
        8 => q07_q11::q08(db, ctx, params),
        9 => q07_q11::q09(db, ctx, params),
        10 => q07_q11::q10(db, ctx, params),
        11 => q07_q11::q11(db, ctx, params),
        12 => q12_q17::q12(db, ctx, params),
        13 => q12_q17::q13(db, ctx, params),
        14 => q12_q17::q14(db, ctx, params),
        15 => q12_q17::q15(db, ctx, params),
        16 => q12_q17::q16(db, ctx, params),
        17 => q12_q17::q17(db, ctx, params),
        18 => q18_q22::q18(db, ctx, params),
        19 => q18_q22::q19(db, ctx, params),
        20 => q18_q22::q20(db, ctx, params),
        21 => q18_q22::q21(db, ctx, params),
        22 => q18_q22::q22(db, ctx, params),
        _ => Err(ExecError::Plan(format!("no such TPC-H query: {q}"))),
    }
}

/// Renders query `q`'s logical plan as an `EXPLAIN`-style tree (resolved
/// schemas per node; scans annotated with the planner's ordered-vs-
/// shardable verdict). For multi-phase queries this is the plan of the
/// first phase — later phases depend on scalars computed from it.
pub fn explain_query(q: usize, db: &TpchData, params: &Params) -> Result<String, ExecError> {
    Ok(query_plan(q, db, params)?.build()?.to_string())
}

/// Like [`explain_query`], but rendered against a concrete [`ExecConfig`]:
/// hash aggregations the physical planner will partition are annotated
/// `(partitioned ×P)` — the verdict comes from the same decision function
/// `lower` uses.
pub fn explain_query_with(
    q: usize,
    db: &TpchData,
    params: &Params,
    config: &ExecConfig,
) -> Result<String, ExecError> {
    Ok(ma_executor::plan::explain_physical(
        &query_plan(q, db, params)?.build()?,
        config,
    ))
}

/// The (first-phase) logical plan of query `q`.
///
/// Public so out-of-tree checks — notably the plan-verifier matrix sweep
/// in `tests/verify_matrix.rs` — can inspect every query's plan without
/// executing it. Multi-phase queries expose their first (and by far
/// largest) phase; later phases are built against materialized
/// intermediates inside [`run_query`].
pub fn query_plan(q: usize, db: &TpchData, params: &Params) -> Result<PlanBuilder, ExecError> {
    let pb = match q {
        1 => q01_q06::q01_plan(db, params),
        2 => q01_q06::q02_rows_plan(db, params),
        3 => q01_q06::q03_plan(db, params),
        4 => q01_q06::q04_plan(db, params),
        5 => q01_q06::q05_plan(db, params),
        6 => q01_q06::q06_plan(db, params),
        7 => q07_q11::q07_plan(db, params),
        8 => q07_q11::q08_agg_plan(db, params),
        9 => q07_q11::q09_plan(db, params),
        10 => q07_q11::q10_plan(db, params),
        11 => q07_q11::q11_total_plan(db, params),
        12 => q12_q17::q12_agg_plan(db, params),
        13 => q12_q17::q13_plan(db, params),
        14 => q12_q17::q14_agg_plan(db, params),
        15 => q12_q17::q15_revenue_plan(db, params),
        16 => q12_q17::q16_plan(db, params),
        17 => q12_q17::q17_totals_plan(db, params),
        18 => q18_q22::q18_plan(db, params),
        19 => q18_q22::q19_plan(db, params),
        20 => q18_q22::q20_shipped_plan(db, params),
        21 => q18_q22::q21_plan(db, params),
        22 => q18_q22::q22_avg_plan(db, params),
        _ => return Err(ExecError::Plan(format!("no such TPC-H query: {q}"))),
    };
    Ok(pb)
}

// ---------------------------------------------------------------------------
// shared plan helpers
// ---------------------------------------------------------------------------

/// Builds, lowers and fully executes a plan into a [`QueryOutput`].
pub(crate) fn run_plan(pb: PlanBuilder, ctx: &QueryContext) -> Result<QueryOutput, ExecError> {
    finish(lower(&pb.build()?, ctx)?)
}

/// Builds, lowers and materializes a plan (multi-phase queries feeding one
/// phase's result into the next).
pub(crate) fn materialize_plan(
    pb: PlanBuilder,
    ctx: &QueryContext,
) -> Result<FrozenStore, ExecError> {
    let mut op = lower(&pb.build()?, ctx)?;
    ma_executor::ops::materialize(op.as_mut())
}

/// `1 - e` for f64 expressions, built without a constant lhs:
/// `e*(-1) + 1`.
pub(crate) fn one_minus(e: NamedExpr) -> NamedExpr {
    e.mul(lit_f64(-1.0)).add(lit_f64(1.0))
}

/// `1 + e` for f64 expressions.
pub(crate) fn one_plus(e: NamedExpr) -> NamedExpr {
    e.add(lit_f64(1.0))
}

/// Percent column (`l_discount`/`l_tax`, stored 0–10) as an f64 fraction.
pub(crate) fn pct_frac(column: &str) -> NamedExpr {
    ma_executor::plan::col(column)
        .cast(DataType::F64)
        .mul(lit_f64(0.01))
}

/// `extendedprice * (1 - discount)` in f64 cents.
pub(crate) fn revenue(ep: &str, disc: &str) -> NamedExpr {
    ma_executor::plan::col(ep)
        .cast(DataType::F64)
        .mul(one_minus(pct_frac(disc)))
}

/// Converts a materialized result into an in-memory [`Table`] (for
/// multi-phase queries feeding one phase's result into the next).
pub(crate) fn store_to_table(
    name: &str,
    col_names: &[&str],
    store: &FrozenStore,
) -> Result<Arc<Table>, ExecError> {
    assert_eq!(col_names.len(), store.types().len());
    let cols = col_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.to_string(), vector_to_column(store.col(i))))
        .collect();
    Ok(Arc::new(Table::new(name, cols)?))
}

fn vector_to_column(v: &Vector) -> Column {
    match v {
        Vector::I16(x) => Column::I16(Arc::new(x.clone())),
        Vector::I32(x) => Column::I32(Arc::new(x.clone())),
        Vector::I64(x) => Column::I64(Arc::new(x.clone())),
        Vector::F64(x) => Column::F64(Arc::new(x.clone())),
        Vector::Str(s) => Column::Str {
            arena: Arc::clone(s.arena()),
            views: Arc::new(s.views().to_vec()),
        },
    }
}

/// Stable checksum over a result store: numeric values summed, strings
/// folded by byte sum. Identical results → identical checksum, independent
/// of flavor configuration.
pub(crate) fn checksum(store: &FrozenStore) -> f64 {
    let mut acc = 0.0f64;
    for i in 0..store.types().len() {
        match store.col(i) {
            Vector::I16(v) => acc += v.iter().map(|&x| x as f64).sum::<f64>(),
            Vector::I32(v) => acc += v.iter().map(|&x| x as f64).sum::<f64>(),
            Vector::I64(v) => acc += v.iter().map(|&x| x as f64).sum::<f64>(),
            Vector::F64(v) => acc += v.iter().sum::<f64>(),
            Vector::Str(s) => {
                acc += s
                    .iter()
                    .map(|x| x.bytes().map(u64::from).sum::<u64>() as f64)
                    .sum::<f64>()
            }
        }
    }
    acc
}

/// Materializes an operator into a [`QueryOutput`].
pub(crate) fn finish(mut op: BoxOp) -> Result<QueryOutput, ExecError> {
    let store = ma_executor::ops::materialize(op.as_mut())?;
    Ok(finish_store(store))
}

/// Builds a [`QueryOutput`] from an already-materialized store.
pub(crate) fn finish_store(store: FrozenStore) -> QueryOutput {
    QueryOutput {
        rows: store.rows(),
        checksum: checksum(&store),
        store,
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use ma_executor::ExecConfig;
    use ma_primitives::build_dictionary;
    use std::sync::OnceLock;

    /// A small database shared by all query tests (generation is the
    /// expensive part).
    pub(crate) fn test_db() -> &'static TpchData {
        static DB: OnceLock<TpchData> = OnceLock::new();
        // Seed picked (after the partition-parallel dbgen rework changed
        // the rng streams) so the data-sensitive Q11 threshold test has a
        // comfortable margin: 41 parts pass at this seed, 0 at 0xDBDB.
        DB.get_or_init(|| TpchData::generate(0.01, 0xDBD1))
    }

    /// A default-flavor context over the shared dictionary.
    pub(crate) fn test_ctx() -> QueryContext {
        static DICT: OnceLock<Arc<ma_core::PrimitiveDictionary>> = OnceLock::new();
        let dict = DICT.get_or_init(|| Arc::new(build_dictionary()));
        QueryContext::new(Arc::clone(dict), ExecConfig::fixed_default())
    }

    pub(crate) fn run(q: usize) -> QueryOutput {
        run_query(q, test_db(), &test_ctx(), &Params::default())
            .unwrap_or_else(|e| panic!("Q{q} failed: {e}"))
    }
}
