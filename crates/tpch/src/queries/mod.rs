//! The 22 TPC-H queries as physical plans over the `ma-executor` operators.
//!
//! Plans are built by hand (the paper's focus is the executor, not the
//! optimizer), with join orders a reasonable optimizer would pick. A few
//! queries need multi-phase orchestration that SQL engines do with scalar
//! subqueries or CASE expressions:
//!
//! * Q11/Q15/Q17/Q20/Q21/Q22 materialize an aggregate into a temporary
//!   table and feed a scalar (threshold/max/avg) into the next phase;
//! * Q8/Q12/Q14 group one level finer than the SQL and fold the CASE
//!   arithmetic in a tiny post-step over the (few-row) aggregate result.
//!
//! Every query returns a [`QueryOutput`] with a configuration-independent
//! checksum, which the integration tests use to verify that all flavor
//! modes (fixed, heuristic, adaptive) produce identical results.

mod q01_q06;
mod q07_q11;
mod q12_q17;
mod q18_q22;

use std::sync::Arc;

use ma_executor::ops::{FrozenStore, Parallel, Scan, Select};
use ma_executor::{BoxOp, ExecError, Expr, Pred, QueryContext};
use ma_vector::{Column, DataType, MorselQueue, Table, Vector, VECTORS_PER_MORSEL};

use crate::dbgen::TpchData;
use crate::params::Params;

/// A finished query: result rows plus a stable checksum.
pub struct QueryOutput {
    /// Number of result rows.
    pub rows: usize,
    /// Configuration-independent checksum over all result values.
    pub checksum: f64,
    /// The materialized result.
    pub store: FrozenStore,
}

/// Runs query `q` (1–22).
pub fn run_query(
    q: usize,
    db: &TpchData,
    ctx: &QueryContext,
    params: &Params,
) -> Result<QueryOutput, ExecError> {
    match q {
        1 => q01_q06::q01(db, ctx, params),
        2 => q01_q06::q02(db, ctx, params),
        3 => q01_q06::q03(db, ctx, params),
        4 => q01_q06::q04(db, ctx, params),
        5 => q01_q06::q05(db, ctx, params),
        6 => q01_q06::q06(db, ctx, params),
        7 => q07_q11::q07(db, ctx, params),
        8 => q07_q11::q08(db, ctx, params),
        9 => q07_q11::q09(db, ctx, params),
        10 => q07_q11::q10(db, ctx, params),
        11 => q07_q11::q11(db, ctx, params),
        12 => q12_q17::q12(db, ctx, params),
        13 => q12_q17::q13(db, ctx, params),
        14 => q12_q17::q14(db, ctx, params),
        15 => q12_q17::q15(db, ctx, params),
        16 => q12_q17::q16(db, ctx, params),
        17 => q12_q17::q17(db, ctx, params),
        18 => q18_q22::q18(db, ctx, params),
        19 => q18_q22::q19(db, ctx, params),
        20 => q18_q22::q20(db, ctx, params),
        21 => q18_q22::q21(db, ctx, params),
        22 => q18_q22::q22(db, ctx, params),
        _ => Err(ExecError::Plan(format!("no such TPC-H query: {q}"))),
    }
}

// ---------------------------------------------------------------------------
// shared plan-building helpers
// ---------------------------------------------------------------------------

/// Scans named columns of a database table. With `worker_threads > 1` and a
/// table large enough to bother, the scan is sharded: `n` workers pull
/// vector-aligned morsels from a shared queue and their streams union in a
/// [`Parallel`] exchange.
pub(crate) fn scan(
    db: &TpchData,
    table: &str,
    cols: &[&str],
    ctx: &QueryContext,
) -> Result<BoxOp, ExecError> {
    scan_filtered(db, table, cols, None, ctx, "")
}

/// Scan + filter: like [`scan`] followed by [`Select`], but under
/// `worker_threads > 1` the selection runs *inside* each scan worker, so
/// the paper's hot selection primitives parallelize and every worker owns
/// its own bandit state for them.
pub(crate) fn scan_where(
    db: &TpchData,
    table: &str,
    cols: &[&str],
    pred: &Pred,
    ctx: &QueryContext,
    label: &str,
) -> Result<BoxOp, ExecError> {
    scan_filtered(db, table, cols, Some(pred), ctx, label)
}

/// A scan that is *never* sharded, for order-sensitive consumers: a
/// [`Parallel`] union interleaves worker streams, which would break
/// merge-join's sorted-input contract (Q12). Selections stacked on top of a
/// sequential scan preserve order, so `Select::new(scan_seq(..), ..)` stays
/// safe.
pub(crate) fn scan_seq(
    db: &TpchData,
    table: &str,
    cols: &[&str],
    ctx: &QueryContext,
) -> Result<BoxOp, ExecError> {
    let t = db
        .table(table)
        .ok_or_else(|| ExecError::Plan(format!("unknown table {table}")))?;
    Ok(Box::new(Scan::new(Arc::clone(t), cols, ctx.vector_size())?))
}

fn scan_filtered(
    db: &TpchData,
    table: &str,
    cols: &[&str],
    pred: Option<&Pred>,
    ctx: &QueryContext,
    label: &str,
) -> Result<BoxOp, ExecError> {
    let t = db
        .table(table)
        .ok_or_else(|| ExecError::Plan(format!("unknown table {table}")))?;
    let workers = ctx.worker_threads();
    // Morsels follow the configured vector size so morsel boundaries stay
    // chunk-aligned for any `vector_size` (the worker-count-invariance
    // contract, DESIGN.md §5).
    let morsel_rows = VECTORS_PER_MORSEL * ctx.vector_size();
    // Sharding a table that yields only a couple of morsels buys nothing;
    // keep small scans (and the whole 1-worker engine) on the plain path.
    if workers == 1 || t.rows() < 2 * morsel_rows {
        let scan: BoxOp = Box::new(Scan::new(Arc::clone(t), cols, ctx.vector_size())?);
        return match pred {
            Some(p) => Ok(Box::new(Select::new(scan, p, ctx, label)?)),
            None => Ok(scan),
        };
    }
    let queue = Arc::new(MorselQueue::with_morsel(t.rows(), morsel_rows));
    let factory = |_worker: usize, _n: usize| -> Result<BoxOp, ExecError> {
        let scan: BoxOp = Box::new(Scan::morsel(
            Arc::clone(t),
            cols,
            ctx.vector_size(),
            Arc::clone(&queue),
        )?);
        match pred {
            Some(p) => Ok(Box::new(Select::new(scan, p, ctx, label)?)),
            None => Ok(scan),
        }
    };
    Ok(Box::new(Parallel::new(workers, &factory)?))
}

/// `1 - e` for f64 expressions, built without a constant lhs:
/// `e*(-1) + 1`.
pub(crate) fn one_minus(e: Expr) -> Expr {
    Expr::add(Expr::mul(e, Expr::f64(-1.0)), Expr::f64(1.0))
}

/// `1 + e` for f64 expressions.
pub(crate) fn one_plus(e: Expr) -> Expr {
    Expr::add(e, Expr::f64(1.0))
}

/// Percent column (`l_discount`/`l_tax`, stored 0–10) as an f64 fraction.
pub(crate) fn pct_frac(col: usize) -> Expr {
    Expr::mul(Expr::cast(DataType::F64, Expr::col(col)), Expr::f64(0.01))
}

/// `l_extendedprice * (1 - l_discount)` in f64 cents.
pub(crate) fn revenue(ep_col: usize, disc_col: usize) -> Expr {
    Expr::mul(
        Expr::cast(DataType::F64, Expr::col(ep_col)),
        one_minus(pct_frac(disc_col)),
    )
}

/// Converts a materialized result into an in-memory [`Table`] (for
/// multi-phase queries feeding one phase's result into the next).
pub(crate) fn store_to_table(
    name: &str,
    col_names: &[&str],
    store: &FrozenStore,
) -> Result<Arc<Table>, ExecError> {
    assert_eq!(col_names.len(), store.types().len());
    let cols = col_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.to_string(), vector_to_column(store.col(i))))
        .collect();
    Ok(Arc::new(Table::new(name, cols)?))
}

fn vector_to_column(v: &Vector) -> Column {
    match v {
        Vector::I16(x) => Column::I16(Arc::new(x.clone())),
        Vector::I32(x) => Column::I32(Arc::new(x.clone())),
        Vector::I64(x) => Column::I64(Arc::new(x.clone())),
        Vector::F64(x) => Column::F64(Arc::new(x.clone())),
        Vector::Str(s) => Column::Str {
            arena: Arc::clone(s.arena()),
            views: Arc::new(s.views().to_vec()),
        },
    }
}

/// Stable checksum over a result store: numeric values summed, strings
/// folded by byte sum. Identical results → identical checksum, independent
/// of flavor configuration.
pub(crate) fn checksum(store: &FrozenStore) -> f64 {
    let mut acc = 0.0f64;
    for i in 0..store.types().len() {
        match store.col(i) {
            Vector::I16(v) => acc += v.iter().map(|&x| x as f64).sum::<f64>(),
            Vector::I32(v) => acc += v.iter().map(|&x| x as f64).sum::<f64>(),
            Vector::I64(v) => acc += v.iter().map(|&x| x as f64).sum::<f64>(),
            Vector::F64(v) => acc += v.iter().sum::<f64>(),
            Vector::Str(s) => {
                acc += s
                    .iter()
                    .map(|x| x.bytes().map(u64::from).sum::<u64>() as f64)
                    .sum::<f64>()
            }
        }
    }
    acc
}

/// Materializes an operator into a [`QueryOutput`].
pub(crate) fn finish(mut op: BoxOp) -> Result<QueryOutput, ExecError> {
    let store = ma_executor::ops::materialize(op.as_mut())?;
    Ok(QueryOutput {
        rows: store.rows(),
        checksum: checksum(&store),
        store,
    })
}

/// Builds a [`QueryOutput`] from an already-materialized store.
pub(crate) fn finish_store(store: FrozenStore) -> QueryOutput {
    QueryOutput {
        rows: store.rows(),
        checksum: checksum(&store),
        store,
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use ma_executor::ExecConfig;
    use ma_primitives::build_dictionary;
    use std::sync::OnceLock;

    /// A small database shared by all query tests (generation is the
    /// expensive part).
    pub(crate) fn test_db() -> &'static TpchData {
        static DB: OnceLock<TpchData> = OnceLock::new();
        // Seed picked (after the partition-parallel dbgen rework changed
        // the rng streams) so the data-sensitive Q11 threshold test has a
        // comfortable margin: 41 parts pass at this seed, 0 at 0xDBDB.
        DB.get_or_init(|| TpchData::generate(0.01, 0xDBD1))
    }

    /// A default-flavor context over the shared dictionary.
    pub(crate) fn test_ctx() -> QueryContext {
        static DICT: OnceLock<Arc<ma_core::PrimitiveDictionary>> = OnceLock::new();
        let dict = DICT.get_or_init(|| Arc::new(build_dictionary()));
        QueryContext::new(Arc::clone(dict), ExecConfig::fixed_default())
    }

    pub(crate) fn run(q: usize) -> QueryOutput {
        run_query(q, test_db(), &test_ctx(), &Params::default())
            .unwrap_or_else(|e| panic!("Q{q} failed: {e}"))
    }
}
