//! TPC-H Q7–Q11.

use ma_executor::ops::JoinKind;
use ma_executor::plan::{asc, col, desc, sum_f64, NamedPred, PlanBuilder};
use ma_executor::{CmpKind, ExecError, QueryContext, Value};
use ma_vector::{ColumnBuilder, DataType, Table};

use super::{finish_store, materialize_plan, revenue, run_plan, QueryOutput};
use crate::dates::date;
use crate::dbgen::TpchData;
use crate::params::Params;

/// Q7's logical plan: volume shipping between two nations.
pub(crate) fn q07_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    let two_nations = |label: &str, alias: &str| -> PlanBuilder {
        PlanBuilder::scan(
            db,
            "nation",
            &["n_nationkey", &format!("n_name as {alias}")],
        )
        .filter(
            NamedPred::in_str(alias, [p.q7_nation1, p.q7_nation2]),
            label,
        )
    };
    let sup = PlanBuilder::scan(db, "supplier", &["s_suppkey", "s_nationkey"]).hash_join(
        two_nations("Q7/sel_nation_s", "supp_nation"),
        &[("s_nationkey", "n_nationkey")],
        &["supp_nation"],
        JoinKind::Inner,
        false,
        "Q7/join_supp_nation",
    );
    let cust = PlanBuilder::scan(db, "customer", &["c_custkey", "c_nationkey"]).hash_join(
        two_nations("Q7/sel_nation_c", "cust_nation"),
        &[("c_nationkey", "n_nationkey")],
        &["cust_nation"],
        JoinKind::Inner,
        false,
        "Q7/join_cust_nation",
    );
    let ord = PlanBuilder::scan(db, "orders", &["o_orderkey", "o_custkey"]).hash_join(
        cust,
        &[("o_custkey", "c_custkey")],
        &["cust_nation"],
        JoinKind::Inner,
        true,
        "Q7/join_cust",
    );
    PlanBuilder::scan(
        db,
        "lineitem",
        &[
            "l_orderkey",
            "l_suppkey",
            "l_extendedprice",
            "l_discount",
            "l_shipdate",
            "l_shipyear",
        ],
    )
    .filter(
        NamedPred::And(vec![
            NamedPred::cmp_val("l_shipdate", CmpKind::Ge, Value::I32(date(1995, 1, 1))),
            NamedPred::cmp_val("l_shipdate", CmpKind::Le, Value::I32(date(1996, 12, 31))),
        ]),
        "Q7/sel_shipdate",
    )
    .hash_join(
        sup,
        &[("l_suppkey", "s_suppkey")],
        &["supp_nation"],
        JoinKind::Inner,
        true,
        "Q7/join_supp",
    )
    .hash_join(
        ord,
        &[("l_orderkey", "o_orderkey")],
        &["cust_nation"],
        JoinKind::Inner,
        true,
        "Q7/join_orders",
    )
    // Keep only the two cross pairs.
    .filter(
        NamedPred::Or(vec![
            NamedPred::And(vec![
                NamedPred::str_eq("supp_nation", p.q7_nation1),
                NamedPred::str_eq("cust_nation", p.q7_nation2),
            ]),
            NamedPred::And(vec![
                NamedPred::str_eq("supp_nation", p.q7_nation2),
                NamedPred::str_eq("cust_nation", p.q7_nation1),
            ]),
        ]),
        "Q7/sel_pairs",
    )
    .project(
        vec![
            ("supp_nation", col("supp_nation")),
            ("cust_nation", col("cust_nation")),
            ("l_shipyear", col("l_shipyear")),
            ("volume", revenue("l_extendedprice", "l_discount")),
        ],
        "Q7/rev",
    )
    .hash_agg(
        &["supp_nation", "cust_nation", "l_shipyear"],
        vec![sum_f64("volume")],
        "Q7/agg",
    )
    .sort(&[asc("supp_nation"), asc("cust_nation"), asc("l_shipyear")])
}

/// Q7: volume shipping between two nations.
pub(crate) fn q07(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    run_plan(q07_plan(db, p), ctx)
}

/// Q8 main plan: volume per (year, supplier nation); the market-share
/// CASE arithmetic folds in a post-step. (The seed plan semi-joined
/// `n_nationkey = r_regionkey`, silently restricting to nations whose
/// *key* collides with the region's key — fixed to the spec's
/// `n_regionkey = r_regionkey`.)
pub(crate) fn q08_agg_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    let region_sel = PlanBuilder::scan(db, "region", &["r_regionkey", "r_name"])
        .filter(NamedPred::str_eq("r_name", p.q8_region), "Q8/sel_region");
    let nation_r = PlanBuilder::scan(db, "nation", &["n_nationkey", "n_regionkey"]).hash_join(
        region_sel,
        &[("n_regionkey", "r_regionkey")],
        &[],
        JoinKind::Semi,
        false,
        "Q8/join_region",
    );
    let cust = PlanBuilder::scan(db, "customer", &["c_custkey", "c_nationkey"]).hash_join(
        nation_r,
        &[("c_nationkey", "n_nationkey")],
        &[],
        JoinKind::Semi,
        false,
        "Q8/join_cust_nation",
    );
    let ord = PlanBuilder::scan(
        db,
        "orders",
        &["o_orderkey", "o_custkey", "o_orderdate", "o_orderyear"],
    )
    .filter(
        NamedPred::And(vec![
            NamedPred::cmp_val("o_orderdate", CmpKind::Ge, Value::I32(date(1995, 1, 1))),
            NamedPred::cmp_val("o_orderdate", CmpKind::Le, Value::I32(date(1996, 12, 31))),
        ]),
        "Q8/sel_orders",
    )
    .hash_join(
        cust,
        &[("o_custkey", "c_custkey")],
        &[],
        JoinKind::Semi,
        true,
        "Q8/join_cust",
    );
    let part_sel = PlanBuilder::scan(db, "part", &["p_partkey", "p_type"])
        .filter(NamedPred::str_eq("p_type", p.q8_type), "Q8/sel_part");
    let sup = PlanBuilder::scan(db, "supplier", &["s_suppkey", "s_nationkey"]).hash_join(
        PlanBuilder::scan(db, "nation", &["n_nationkey", "n_name"]),
        &[("s_nationkey", "n_nationkey")],
        &["n_name"],
        JoinKind::Inner,
        false,
        "Q8/join_supp_nation",
    );
    PlanBuilder::scan(
        db,
        "lineitem",
        &[
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_extendedprice",
            "l_discount",
        ],
    )
    .hash_join(
        part_sel,
        &[("l_partkey", "p_partkey")],
        &[],
        JoinKind::Semi,
        true,
        "Q8/join_part",
    )
    .hash_join(
        ord,
        &[("l_orderkey", "o_orderkey")],
        &["o_orderyear"],
        JoinKind::Inner,
        true,
        "Q8/join_orders",
    )
    .hash_join(
        sup,
        &[("l_suppkey", "s_suppkey")],
        &["n_name"],
        JoinKind::Inner,
        false,
        "Q8/join_supp",
    )
    .project(
        vec![
            ("o_orderyear", col("o_orderyear")),
            ("n_name", col("n_name")),
            ("volume", revenue("l_extendedprice", "l_discount")),
        ],
        "Q8/rev",
    )
    .hash_agg(
        &["o_orderyear", "n_name"],
        vec![sum_f64("volume")],
        "Q8/agg",
    )
}

/// Q8: national market share. The CASE arithmetic of the SQL is folded in
/// a post-step over the (per year × nation) aggregate.
pub(crate) fn q08(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    let store = materialize_plan(q08_agg_plan(db, p), ctx)?;
    // Post-step (CASE folding): share(year) = vol(nation)/vol(all).
    let years = store.col(0).as_i32();
    let vols = store.col(2).as_f64();
    let mut by_year: std::collections::BTreeMap<i32, (f64, f64)> =
        std::collections::BTreeMap::new();
    for i in 0..store.rows() {
        let e = by_year.entry(years[i]).or_insert((0.0, 0.0));
        e.1 += vols[i];
        if store.col(1).as_str_vec().get(i) == p.q8_nation {
            e.0 += vols[i];
        }
    }
    let mut yb = ColumnBuilder::with_capacity(DataType::I32, by_year.len());
    let mut sb = ColumnBuilder::with_capacity(DataType::F64, by_year.len());
    for (y, (num, den)) in &by_year {
        yb.push_i32(*y);
        sb.push_f64(if *den > 0.0 { num / den } else { 0.0 });
    }
    let table = Table::new(
        "q8out",
        vec![("year".into(), yb.finish()), ("share".into(), sb.finish())],
    )?;
    let result = materialize_plan(
        PlanBuilder::from_table(std::sync::Arc::new(table), &["year", "share"]),
        ctx,
    )?;
    Ok(finish_store(result))
}

/// Q9's logical plan: product-type profit measure.
pub(crate) fn q09_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    let part_sel = PlanBuilder::scan(db, "part", &["p_partkey", "p_name"]).filter(
        NamedPred::like("p_name", format!("%{}%", p.q9_color)),
        "Q9/sel_part",
    );
    let partsupp = PlanBuilder::scan(
        db,
        "partsupp",
        &["ps_partkey", "ps_suppkey", "ps_supplycost"],
    );
    let sup = PlanBuilder::scan(db, "supplier", &["s_suppkey", "s_nationkey"]).hash_join(
        PlanBuilder::scan(db, "nation", &["n_nationkey", "n_name"]),
        &[("s_nationkey", "n_nationkey")],
        &["n_name"],
        JoinKind::Inner,
        false,
        "Q9/join_supp_nation",
    );
    let amount = revenue("l_extendedprice", "l_discount").sub(
        col("ps_supplycost")
            .mul(col("l_quantity").cast(DataType::I64))
            .cast(DataType::F64),
    );
    PlanBuilder::scan(
        db,
        "lineitem",
        &[
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_extendedprice",
            "l_discount",
            "l_quantity",
        ],
    )
    .hash_join(
        part_sel,
        &[("l_partkey", "p_partkey")],
        &[],
        JoinKind::Semi,
        true,
        "Q9/join_part",
    )
    .hash_join(
        partsupp,
        &[("l_partkey", "ps_partkey"), ("l_suppkey", "ps_suppkey")],
        &["ps_supplycost"],
        JoinKind::Inner,
        false,
        "Q9/join_partsupp",
    )
    .hash_join(
        sup,
        &[("l_suppkey", "s_suppkey")],
        &["n_name"],
        JoinKind::Inner,
        false,
        "Q9/join_supp",
    )
    .hash_join(
        PlanBuilder::scan(db, "orders", &["o_orderkey", "o_orderyear"]),
        &[("l_orderkey", "o_orderkey")],
        &["o_orderyear"],
        JoinKind::Inner,
        false,
        "Q9/join_orders",
    )
    .project(
        vec![
            ("n_name", col("n_name")),
            ("o_orderyear", col("o_orderyear")),
            ("amount", amount),
        ],
        "Q9/amount",
    )
    .hash_agg(
        &["n_name", "o_orderyear"],
        vec![sum_f64("amount")],
        "Q9/agg",
    )
    .sort(&[asc("n_name"), desc("o_orderyear")])
}

/// Q9: product-type profit measure.
pub(crate) fn q09(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    run_plan(q09_plan(db, p), ctx)
}

/// Q10's logical plan: returned-item reporting.
pub(crate) fn q10_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    let ord = PlanBuilder::scan(db, "orders", &["o_orderkey", "o_custkey", "o_orderdate"]).filter(
        NamedPred::And(vec![
            NamedPred::cmp_val("o_orderdate", CmpKind::Ge, Value::I32(p.q10_date)),
            NamedPred::cmp_val(
                "o_orderdate",
                CmpKind::Lt,
                Value::I32(crate::dates::add_months(p.q10_date, 3)),
            ),
        ]),
        "Q10/sel_orders",
    );
    let per_cust = PlanBuilder::scan(
        db,
        "lineitem",
        &[
            "l_orderkey",
            "l_returnflag",
            "l_extendedprice",
            "l_discount",
        ],
    )
    .filter(NamedPred::str_eq("l_returnflag", "R"), "Q10/sel_returned")
    .hash_join(
        ord,
        &[("l_orderkey", "o_orderkey")],
        &["o_custkey"],
        JoinKind::Inner,
        true,
        "Q10/join_orders",
    )
    .project(
        vec![
            ("o_custkey", col("o_custkey")),
            ("rev", revenue("l_extendedprice", "l_discount")),
        ],
        "Q10/rev",
    )
    .hash_agg(&["o_custkey"], vec![sum_f64("rev")], "Q10/agg");
    PlanBuilder::scan(
        db,
        "customer",
        &[
            "c_custkey",
            "c_name",
            "c_acctbal",
            "c_phone",
            "c_nationkey",
            "c_address",
            "c_comment",
        ],
    )
    .hash_join(
        per_cust,
        &[("c_custkey", "o_custkey")],
        &["sum_rev"],
        JoinKind::Inner,
        true,
        "Q10/join_cust",
    )
    .hash_join(
        PlanBuilder::scan(db, "nation", &["n_nationkey", "n_name"]),
        &[("c_nationkey", "n_nationkey")],
        &["n_name"],
        JoinKind::Inner,
        false,
        "Q10/join_nation",
    )
    .keep(&[
        "c_custkey",
        "c_name",
        "sum_rev",
        "c_acctbal",
        "n_name",
        "c_address",
        "c_phone",
        "c_comment",
    ])
    .top_n(&[desc("sum_rev")], 20)
}

/// Q10: returned-item reporting.
pub(crate) fn q10(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    run_plan(q10_plan(db, p), ctx)
}

/// The `(partkey, value)` stream Q11 aggregates in both phases: partsupp
/// of the nation's suppliers with `value = cost * availqty`.
fn q11_value_plan(db: &TpchData, p: &Params, label: &str) -> PlanBuilder {
    let nat = PlanBuilder::scan(db, "nation", &["n_nationkey", "n_name"])
        .filter(NamedPred::str_eq("n_name", p.q11_nation), "Q11/sel_nation");
    let sup = PlanBuilder::scan(db, "supplier", &["s_suppkey", "s_nationkey"]).hash_join(
        nat,
        &[("s_nationkey", "n_nationkey")],
        &[],
        JoinKind::Semi,
        false,
        "Q11/join_nation",
    );
    PlanBuilder::scan(
        db,
        "partsupp",
        &["ps_partkey", "ps_suppkey", "ps_supplycost", "ps_availqty"],
    )
    .hash_join(
        sup,
        &[("ps_suppkey", "s_suppkey")],
        &[],
        JoinKind::Semi,
        true,
        label,
    )
    .project(
        vec![
            ("ps_partkey", col("ps_partkey")),
            (
                "value",
                col("ps_supplycost")
                    .mul(col("ps_availqty").cast(DataType::I64))
                    .cast(DataType::F64),
            ),
        ],
        "Q11/value",
    )
}

/// Q11 phase A: total stock value of the nation.
pub(crate) fn q11_total_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    q11_value_plan(db, p, "Q11/join_supp_a")
        .stream_agg(vec![sum_f64("value").named("total")], "Q11/total")
}

/// Q11: important stock identification (two-phase: total then threshold).
pub(crate) fn q11(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    let total_store = materialize_plan(q11_total_plan(db, p), ctx)?;
    let threshold = total_store.col(0).as_f64()[0] * p.q11_fraction(db.sf);
    let out = q11_value_plan(db, p, "Q11/join_supp_b")
        .hash_agg(&["ps_partkey"], vec![sum_f64("value")], "Q11/agg")
        .filter(
            NamedPred::cmp_val("sum_value", CmpKind::Gt, Value::F64(threshold)),
            "Q11/sel_threshold",
        )
        .sort(&[desc("sum_value")]);
    run_plan(out, ctx)
}

#[cfg(test)]
mod tests {
    use super::super::test_support::run;

    #[test]
    fn q07_cross_pairs_only() {
        let out = run(7);
        // ≤ 2 nations × 2 years = 4 groups
        assert!(out.rows <= 4, "rows {}", out.rows);
        for g in 0..out.rows {
            let s = out.store.col(0).as_str_vec().get(g).to_string();
            let c = out.store.col(1).as_str_vec().get(g).to_string();
            assert_ne!(s, c);
            assert!(["FRANCE", "GERMANY"].contains(&s.as_str()));
            assert!(["FRANCE", "GERMANY"].contains(&c.as_str()));
            let y = out.store.col(2).as_i32()[g];
            assert!((1995..=1996).contains(&y));
        }
    }

    #[test]
    fn q08_shares_in_unit_interval() {
        let out = run(8);
        assert!(out.rows <= 2);
        for g in 0..out.rows {
            let share = out.store.col(1).as_f64()[g];
            assert!((0.0..=1.0).contains(&share), "share {share}");
        }
    }

    #[test]
    fn q08_restricts_nations_by_region_key() {
        // Regression test for the seed's `n_nationkey = r_regionkey`
        // semi-join (which kept only the nation whose *key* collided with
        // the region key). The answer golden at sf 0.01 cannot catch a
        // relapse — BRAZIL's share is 0 there under both plans — so pin
        // the join predicate at the plan level.
        let txt = super::super::explain_query(
            8,
            super::super::test_support::test_db(),
            &crate::params::Params::default(),
        )
        .unwrap();
        assert!(
            txt.contains("semi on (n_regionkey = r_regionkey)"),
            "Q8 must semi-join nation to region on the region key:\n{txt}"
        );
        assert!(!txt.contains("n_nationkey = r_regionkey"), "{txt}");
    }

    #[test]
    fn q09_nations_and_years() {
        let out = run(9);
        assert!(out.rows > 0);
        // sorted by nation asc, year desc
        let names: Vec<String> = (0..out.rows)
            .map(|g| out.store.col(0).as_str_vec().get(g).to_string())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn q10_top20_by_revenue() {
        let out = run(10);
        assert!(out.rows <= 20);
        let rev = out.store.col(2).as_f64();
        for w in rev.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn q11_values_above_threshold_sorted() {
        let out = run(11);
        assert!(out.rows > 0, "some parts should pass the threshold");
        let v = out.store.col(1).as_f64();
        for w in v.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }
}
