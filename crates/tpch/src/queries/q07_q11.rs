//! TPC-H Q7–Q11.

use ma_executor::ops::{
    AggSpec, HashAggregate, HashJoin, JoinKind, ProjItem, Project, Select, Sort, SortKey,
    StreamAggregate,
};
use ma_executor::{BoxOp, CmpKind, ExecError, Expr, Pred, QueryContext, Value};
use ma_vector::{ColumnBuilder, DataType, Table};

use super::{finish, finish_store, revenue, scan, scan_where, QueryOutput};
use crate::dates::date;
use crate::dbgen::TpchData;
use crate::params::Params;

/// Q7: volume shipping between two nations.
pub(crate) fn q07(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    let two_nations = |label: &str| -> Result<BoxOp, ExecError> {
        scan_where(
            db,
            "nation",
            &["n_nationkey", "n_name"],
            &Pred::InStr {
                col: 1,
                values: vec![p.q7_nation1.into(), p.q7_nation2.into()],
            },
            ctx,
            label,
        )
    };
    // suppliers of the two nations: [0 sk, 1 snk, 2 supp_nation]
    let supplier = scan(db, "supplier", &["s_suppkey", "s_nationkey"], ctx)?;
    let sup = HashJoin::new(
        two_nations("Q7/sel_nation_s")?,
        supplier,
        vec![0],
        vec![1],
        vec![1],
        JoinKind::Inner,
        false,
        vec![],
        ctx,
        "Q7/join_supp_nation",
    )?;
    // lineitem in the two-year window:
    // [0 lokey, 1 lsk, 2 ep, 3 disc, 4 sdate, 5 syear]
    let li_sel = scan_where(
        db,
        "lineitem",
        &[
            "l_orderkey",
            "l_suppkey",
            "l_extendedprice",
            "l_discount",
            "l_shipdate",
            "l_shipyear",
        ],
        &Pred::And(vec![
            Pred::cmp_val(4, CmpKind::Ge, Value::I32(date(1995, 1, 1))),
            Pred::cmp_val(4, CmpKind::Le, Value::I32(date(1996, 12, 31))),
        ]),
        ctx,
        "Q7/sel_shipdate",
    )?;
    // [0..5 li, 6 supp_nation]
    let li_s = HashJoin::new(
        Box::new(sup),
        li_sel,
        vec![0],
        vec![1],
        vec![2],
        JoinKind::Inner,
        true,
        vec![],
        ctx,
        "Q7/join_supp",
    )?;
    // customers of the two nations: [0 ckey, 1 cnk, 2 cust_nation]
    let customer = scan(db, "customer", &["c_custkey", "c_nationkey"], ctx)?;
    let cust = HashJoin::new(
        two_nations("Q7/sel_nation_c")?,
        customer,
        vec![0],
        vec![1],
        vec![1],
        JoinKind::Inner,
        false,
        vec![],
        ctx,
        "Q7/join_cust_nation",
    )?;
    // orders: [0 okey, 1 ockey, 2 cust_nation]
    let orders = scan(db, "orders", &["o_orderkey", "o_custkey"], ctx)?;
    let ord = HashJoin::new(
        Box::new(cust),
        orders,
        vec![0],
        vec![1],
        vec![2],
        JoinKind::Inner,
        true,
        vec![],
        ctx,
        "Q7/join_cust",
    )?;
    // [0..6 li_s, 7 cust_nation]
    let all = HashJoin::new(
        Box::new(ord),
        Box::new(li_s),
        vec![0],
        vec![0],
        vec![2],
        JoinKind::Inner,
        true,
        vec![],
        ctx,
        "Q7/join_orders",
    )?;
    // keep only the two cross pairs
    let pairs = Select::new(
        Box::new(all),
        &Pred::Or(vec![
            Pred::And(vec![
                Pred::str_eq(6, p.q7_nation1),
                Pred::str_eq(7, p.q7_nation2),
            ]),
            Pred::And(vec![
                Pred::str_eq(6, p.q7_nation2),
                Pred::str_eq(7, p.q7_nation1),
            ]),
        ]),
        ctx,
        "Q7/sel_pairs",
    )?;
    // [supp_nation, cust_nation, year, volume]
    let proj = Project::new(
        Box::new(pairs),
        vec![
            ProjItem::Pass(6),
            ProjItem::Pass(7),
            ProjItem::Pass(5),
            ProjItem::Expr(revenue(2, 3)),
        ],
        ctx,
        "Q7/rev",
    )?;
    let agg = HashAggregate::new(
        Box::new(proj),
        vec![0, 1, 2],
        vec![AggSpec::SumF64(3)],
        ctx,
        "Q7/agg",
    )?;
    let sort = Sort::new(
        Box::new(agg),
        vec![SortKey::asc(0), SortKey::asc(1), SortKey::asc(2)],
        None,
        ctx.vector_size(),
    )?;
    finish(Box::new(sort))
}

/// Q8: national market share. The CASE arithmetic of the SQL is folded in a
/// post-step over the (per year × nation) aggregate.
pub(crate) fn q08(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    // region → nations of the region
    let region_sel = scan_where(
        db,
        "region",
        &["r_regionkey", "r_name"],
        &Pred::str_eq(1, p.q8_region),
        ctx,
        "Q8/sel_region",
    )?;
    let nation = scan(db, "nation", &["n_nationkey"], ctx)?;
    let nation_r = HashJoin::new(
        region_sel,
        nation,
        vec![0],
        vec![0],
        vec![],
        JoinKind::Semi,
        false,
        vec![],
        ctx,
        "Q8/join_region",
    )?;
    // customers in the region
    let customer = scan(db, "customer", &["c_custkey", "c_nationkey"], ctx)?;
    let cust = HashJoin::new(
        Box::new(nation_r),
        customer,
        vec![0],
        vec![1],
        vec![],
        JoinKind::Semi,
        false,
        vec![],
        ctx,
        "Q8/join_cust_nation",
    )?;
    // orders in the window by those customers: [0 okey, 1 ockey, 2 odate, 3 oyear]
    let ord_sel = scan_where(
        db,
        "orders",
        &["o_orderkey", "o_custkey", "o_orderdate", "o_orderyear"],
        &Pred::And(vec![
            Pred::cmp_val(2, CmpKind::Ge, Value::I32(date(1995, 1, 1))),
            Pred::cmp_val(2, CmpKind::Le, Value::I32(date(1996, 12, 31))),
        ]),
        ctx,
        "Q8/sel_orders",
    )?;
    let ord = HashJoin::new(
        Box::new(cust),
        ord_sel,
        vec![0],
        vec![1],
        vec![],
        JoinKind::Semi,
        true,
        vec![],
        ctx,
        "Q8/join_cust",
    )?;
    // parts of the type
    let part_sel = scan_where(
        db,
        "part",
        &["p_partkey", "p_type"],
        &Pred::str_eq(1, p.q8_type),
        ctx,
        "Q8/sel_part",
    )?;
    // lineitem: [0 lokey, 1 lpk, 2 lsk, 3 ep, 4 disc]
    let li = scan(
        db,
        "lineitem",
        &[
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_extendedprice",
            "l_discount",
        ],
        ctx,
    )?;
    let li_p = HashJoin::new(
        part_sel,
        li,
        vec![0],
        vec![1],
        vec![],
        JoinKind::Semi,
        true,
        vec![],
        ctx,
        "Q8/join_part",
    )?;
    // + o_orderyear: [0..4, 5 oyear]
    let li_o = HashJoin::new(
        Box::new(ord),
        Box::new(li_p),
        vec![0],
        vec![0],
        vec![3],
        JoinKind::Inner,
        true,
        vec![],
        ctx,
        "Q8/join_orders",
    )?;
    // supplier nation name: [0 sk, 1 snk, 2 nname]
    let nation2 = scan(db, "nation", &["n_nationkey", "n_name"], ctx)?;
    let supplier = scan(db, "supplier", &["s_suppkey", "s_nationkey"], ctx)?;
    let sup = HashJoin::new(
        nation2,
        supplier,
        vec![0],
        vec![1],
        vec![1],
        JoinKind::Inner,
        false,
        vec![],
        ctx,
        "Q8/join_supp_nation",
    )?;
    // [0..5 li_o, 6 nname]
    let all = HashJoin::new(
        Box::new(sup),
        Box::new(li_o),
        vec![0],
        vec![2],
        vec![2],
        JoinKind::Inner,
        false,
        vec![],
        ctx,
        "Q8/join_supp",
    )?;
    // [year, nation, volume]
    let proj = Project::new(
        Box::new(all),
        vec![
            ProjItem::Pass(5),
            ProjItem::Pass(6),
            ProjItem::Expr(revenue(3, 4)),
        ],
        ctx,
        "Q8/rev",
    )?;
    let agg = HashAggregate::new(
        Box::new(proj),
        vec![0, 1],
        vec![AggSpec::SumF64(2)],
        ctx,
        "Q8/agg",
    )?;
    let mut agg_op: BoxOp = Box::new(agg);
    let store = ma_executor::ops::materialize(agg_op.as_mut())?;
    // Post-step (CASE folding): share(year) = vol(nation)/vol(all).
    let years = store.col(0).as_i32();
    let vols = store.col(2).as_f64();
    let mut by_year: std::collections::BTreeMap<i32, (f64, f64)> =
        std::collections::BTreeMap::new();
    for i in 0..store.rows() {
        let e = by_year.entry(years[i]).or_insert((0.0, 0.0));
        e.1 += vols[i];
        if store.col(1).as_str_vec().get(i) == p.q8_nation {
            e.0 += vols[i];
        }
    }
    let mut yb = ColumnBuilder::with_capacity(DataType::I32, by_year.len());
    let mut sb = ColumnBuilder::with_capacity(DataType::F64, by_year.len());
    for (y, (num, den)) in &by_year {
        yb.push_i32(*y);
        sb.push_f64(if *den > 0.0 { num / den } else { 0.0 });
    }
    let table = Table::new(
        "q8out",
        vec![("year".into(), yb.finish()), ("share".into(), sb.finish())],
    )?;
    let mut out: BoxOp = Box::new(ma_executor::ops::Scan::new(
        std::sync::Arc::new(table),
        &["year", "share"],
        ctx.vector_size(),
    )?);
    let result = ma_executor::ops::materialize(out.as_mut())?;
    Ok(finish_store(result))
}

/// Q9: product-type profit measure.
pub(crate) fn q09(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    // parts with the color in the name
    let part_sel = scan_where(
        db,
        "part",
        &["p_partkey", "p_name"],
        &Pred::Like {
            col: 1,
            pattern: format!("%{}%", p.q9_color),
        },
        ctx,
        "Q9/sel_part",
    )?;
    // lineitem: [0 lokey, 1 lpk, 2 lsk, 3 ep, 4 disc, 5 qty]
    let li = scan(
        db,
        "lineitem",
        &[
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_extendedprice",
            "l_discount",
            "l_quantity",
        ],
        ctx,
    )?;
    let li_p = HashJoin::new(
        part_sel,
        li,
        vec![0],
        vec![1],
        vec![],
        JoinKind::Semi,
        true,
        vec![],
        ctx,
        "Q9/join_part",
    )?;
    // partsupp cost on (partkey, suppkey): [0..5, 6 cost]
    let partsupp = scan(
        db,
        "partsupp",
        &["ps_partkey", "ps_suppkey", "ps_supplycost"],
        ctx,
    )?;
    let li_ps = HashJoin::new(
        partsupp,
        Box::new(li_p),
        vec![0, 1],
        vec![1, 2],
        vec![2],
        JoinKind::Inner,
        false,
        vec![],
        ctx,
        "Q9/join_partsupp",
    )?;
    // supplier nation: [0..6, 7 nname]
    let nation = scan(db, "nation", &["n_nationkey", "n_name"], ctx)?;
    let supplier = scan(db, "supplier", &["s_suppkey", "s_nationkey"], ctx)?;
    let sup = HashJoin::new(
        nation,
        supplier,
        vec![0],
        vec![1],
        vec![1],
        JoinKind::Inner,
        false,
        vec![],
        ctx,
        "Q9/join_supp_nation",
    )?;
    let li_s = HashJoin::new(
        Box::new(sup),
        Box::new(li_ps),
        vec![0],
        vec![2],
        vec![2],
        JoinKind::Inner,
        false,
        vec![],
        ctx,
        "Q9/join_supp",
    )?;
    // order year: [0..7, 8 oyear]
    let orders = scan(db, "orders", &["o_orderkey", "o_orderyear"], ctx)?;
    let li_o = HashJoin::new(
        orders,
        Box::new(li_s),
        vec![0],
        vec![0],
        vec![1],
        JoinKind::Inner,
        false,
        vec![],
        ctx,
        "Q9/join_orders",
    )?;
    // amount = rev - cost*qty: [nation, year, amount]
    let amount = Expr::sub(
        revenue(3, 4),
        Expr::cast(
            DataType::F64,
            Expr::mul(Expr::col(6), Expr::cast(DataType::I64, Expr::col(5))),
        ),
    );
    let proj = Project::new(
        Box::new(li_o),
        vec![ProjItem::Pass(7), ProjItem::Pass(8), ProjItem::Expr(amount)],
        ctx,
        "Q9/amount",
    )?;
    let agg = HashAggregate::new(
        Box::new(proj),
        vec![0, 1],
        vec![AggSpec::SumF64(2)],
        ctx,
        "Q9/agg",
    )?;
    let sort = Sort::new(
        Box::new(agg),
        vec![SortKey::asc(0), SortKey::desc(1)],
        None,
        ctx.vector_size(),
    )?;
    finish(Box::new(sort))
}

/// Q10: returned-item reporting.
pub(crate) fn q10(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    let ord = scan_where(
        db,
        "orders",
        &["o_orderkey", "o_custkey", "o_orderdate"],
        &Pred::And(vec![
            Pred::cmp_val(2, CmpKind::Ge, Value::I32(p.q10_date)),
            Pred::cmp_val(
                2,
                CmpKind::Lt,
                Value::I32(crate::dates::add_months(p.q10_date, 3)),
            ),
        ]),
        ctx,
        "Q10/sel_orders",
    )?;
    let li_r = scan_where(
        db,
        "lineitem",
        &[
            "l_orderkey",
            "l_returnflag",
            "l_extendedprice",
            "l_discount",
        ],
        &Pred::str_eq(1, "R"),
        ctx,
        "Q10/sel_returned",
    )?;
    // [0 lokey, 1 rf, 2 ep, 3 disc, 4 ockey]
    let joined = HashJoin::new(
        ord,
        li_r,
        vec![0],
        vec![0],
        vec![1],
        JoinKind::Inner,
        true,
        vec![],
        ctx,
        "Q10/join_orders",
    )?;
    // revenue per customer
    let proj = Project::new(
        Box::new(joined),
        vec![ProjItem::Pass(4), ProjItem::Expr(revenue(2, 3))],
        ctx,
        "Q10/rev",
    )?;
    let agg = HashAggregate::new(
        Box::new(proj),
        vec![0],
        vec![AggSpec::SumF64(1)],
        ctx,
        "Q10/agg",
    )?;
    // customer attributes:
    // [0 ck, 1 name, 2 acct, 3 phone, 4 nk, 5 addr, 6 comment, 7 rev]
    let customer = scan(
        db,
        "customer",
        &[
            "c_custkey",
            "c_name",
            "c_acctbal",
            "c_phone",
            "c_nationkey",
            "c_address",
            "c_comment",
        ],
        ctx,
    )?;
    let cust_rev = HashJoin::new(
        Box::new(agg),
        customer,
        vec![0],
        vec![0],
        vec![1],
        JoinKind::Inner,
        true,
        vec![],
        ctx,
        "Q10/join_cust",
    )?;
    // nation name: [0..7, 8 nname]
    let nation = scan(db, "nation", &["n_nationkey", "n_name"], ctx)?;
    let with_nation = HashJoin::new(
        nation,
        Box::new(cust_rev),
        vec![0],
        vec![4],
        vec![1],
        JoinKind::Inner,
        false,
        vec![],
        ctx,
        "Q10/join_nation",
    )?;
    // output: [ck, name, rev, acct, nname, addr, phone, comment]
    let out = Project::new(
        Box::new(with_nation),
        vec![
            ProjItem::Pass(0),
            ProjItem::Pass(1),
            ProjItem::Pass(7),
            ProjItem::Pass(2),
            ProjItem::Pass(8),
            ProjItem::Pass(5),
            ProjItem::Pass(3),
            ProjItem::Pass(6),
        ],
        ctx,
        "Q10/out",
    )?;
    let sort = Sort::new(
        Box::new(out),
        vec![SortKey::desc(2)],
        Some(20),
        ctx.vector_size(),
    )?;
    finish(Box::new(sort))
}

/// Q11: important stock identification (two-phase: total then threshold).
pub(crate) fn q11(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    let german_partsupp = |label: &str| -> Result<BoxOp, ExecError> {
        let nat = scan_where(
            db,
            "nation",
            &["n_nationkey", "n_name"],
            &Pred::str_eq(1, p.q11_nation),
            ctx,
            "Q11/sel_nation",
        )?;
        let supplier = scan(db, "supplier", &["s_suppkey", "s_nationkey"], ctx)?;
        let sup = HashJoin::new(
            nat,
            supplier,
            vec![0],
            vec![1],
            vec![],
            JoinKind::Semi,
            false,
            vec![],
            ctx,
            "Q11/join_nation",
        )?;
        // [0 pk, 1 sk, 2 cost, 3 qty]
        let partsupp = scan(
            db,
            "partsupp",
            &["ps_partkey", "ps_suppkey", "ps_supplycost", "ps_availqty"],
            ctx,
        )?;
        let ps = HashJoin::new(
            Box::new(sup),
            partsupp,
            vec![0],
            vec![1],
            vec![],
            JoinKind::Semi,
            true,
            vec![],
            ctx,
            label,
        )?;
        // [0 pk, 1 value]
        Ok(Box::new(Project::new(
            Box::new(ps),
            vec![
                ProjItem::Pass(0),
                ProjItem::Expr(Expr::cast(
                    DataType::F64,
                    Expr::mul(Expr::col(2), Expr::cast(DataType::I64, Expr::col(3))),
                )),
            ],
            ctx,
            "Q11/value",
        )?))
    };
    // phase A: total value
    let total_agg = StreamAggregate::new(
        german_partsupp("Q11/join_supp_a")?,
        vec![AggSpec::SumF64(1)],
        ctx,
        "Q11/total",
    )?;
    let mut total_op: BoxOp = Box::new(total_agg);
    let total_store = ma_executor::ops::materialize(total_op.as_mut())?;
    let threshold = total_store.col(0).as_f64()[0] * p.q11_fraction(db.sf);
    // phase B: per-part value above threshold
    let agg = HashAggregate::new(
        german_partsupp("Q11/join_supp_b")?,
        vec![0],
        vec![AggSpec::SumF64(1)],
        ctx,
        "Q11/agg",
    )?;
    let sel = Select::new(
        Box::new(agg),
        &Pred::cmp_val(1, CmpKind::Gt, Value::F64(threshold)),
        ctx,
        "Q11/sel_threshold",
    )?;
    let sort = Sort::new(
        Box::new(sel),
        vec![SortKey::desc(1)],
        None,
        ctx.vector_size(),
    )?;
    finish(Box::new(sort))
}

// `store_to_table` and `Vector` are used by the sibling modules via super;
// referenced here to document the shared multi-phase pattern.
#[allow(unused_imports)]
use std::sync::Arc as _Arc;

#[cfg(test)]
mod tests {
    use super::super::test_support::run;

    #[test]
    fn q07_cross_pairs_only() {
        let out = run(7);
        // ≤ 2 nations × 2 years = 4 groups
        assert!(out.rows <= 4, "rows {}", out.rows);
        for g in 0..out.rows {
            let s = out.store.col(0).as_str_vec().get(g).to_string();
            let c = out.store.col(1).as_str_vec().get(g).to_string();
            assert_ne!(s, c);
            assert!(["FRANCE", "GERMANY"].contains(&s.as_str()));
            assert!(["FRANCE", "GERMANY"].contains(&c.as_str()));
            let y = out.store.col(2).as_i32()[g];
            assert!((1995..=1996).contains(&y));
        }
    }

    #[test]
    fn q08_shares_in_unit_interval() {
        let out = run(8);
        assert!(out.rows <= 2);
        for g in 0..out.rows {
            let share = out.store.col(1).as_f64()[g];
            assert!((0.0..=1.0).contains(&share), "share {share}");
        }
    }

    #[test]
    fn q09_nations_and_years() {
        let out = run(9);
        assert!(out.rows > 0);
        // sorted by nation asc, year desc
        let names: Vec<String> = (0..out.rows)
            .map(|g| out.store.col(0).as_str_vec().get(g).to_string())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn q10_top20_by_revenue() {
        let out = run(10);
        assert!(out.rows <= 20);
        let rev = out.store.col(2).as_f64();
        for w in rev.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn q11_values_above_threshold_sorted() {
        let out = run(11);
        assert!(out.rows > 0, "some parts should pass the threshold");
        let v = out.store.col(1).as_f64();
        for w in v.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }
}
