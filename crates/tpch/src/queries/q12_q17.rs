//! TPC-H Q12–Q17.

use ma_executor::ops::JoinKind;
use ma_executor::plan::{asc, col, count, desc, lit_i64, sum_f64, sum_i64, NamedPred, PlanBuilder};
use ma_executor::{CmpKind, ExecError, QueryContext, Value};
use ma_vector::{ColumnBuilder, DataType, Table};

use super::{finish_store, materialize_plan, revenue, run_plan, store_to_table, QueryOutput};
use crate::dates::{add_months, add_years};
use crate::dbgen::TpchData;
use crate::params::Params;

/// Q12 main plan: the **merge join** (both sides arrive sorted by order
/// key) of Fig. 4(c)/4(d). The query only declares the merge join; the
/// physical planner sees the order-sensitive consumer and keeps both
/// scans sequential — the sharded-scan hazard of the old hand-wired plan
/// is unrepresentable.
pub(crate) fn q12_agg_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    let orders = PlanBuilder::scan(db, "orders", &["o_orderkey", "o_orderpriority"]);
    PlanBuilder::scan(
        db,
        "lineitem",
        &[
            "l_orderkey",
            "l_shipmode",
            "l_shipdate",
            "l_commitdate",
            "l_receiptdate",
        ],
    )
    .filter(
        NamedPred::And(vec![
            NamedPred::in_str("l_shipmode", [p.q12_shipmode1, p.q12_shipmode2]),
            NamedPred::cmp_val("l_receiptdate", CmpKind::Ge, Value::I32(p.q12_date)),
            NamedPred::cmp_val(
                "l_receiptdate",
                CmpKind::Lt,
                Value::I32(add_years(p.q12_date, 1)),
            ),
            // commit < receipt, ship < commit
            NamedPred::cmp_col("l_commitdate", CmpKind::Lt, "l_receiptdate"),
            NamedPred::cmp_col("l_shipdate", CmpKind::Lt, "l_commitdate"),
        ]),
        "Q12/sel_li",
    )
    .merge_join(
        orders,
        ("l_orderkey", "o_orderkey"),
        &["o_orderpriority"],
        "Q12/mergejoin",
    )
    // Count by (shipmode, priority); the CASE high/low split is a tiny
    // post-step over ≤ 2×5 groups.
    .hash_agg(&["l_shipmode", "o_orderpriority"], vec![count()], "Q12/agg")
}

/// Q12: shipping modes and order priority.
pub(crate) fn q12(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    let store = materialize_plan(q12_agg_plan(db, p), ctx)?;
    let mut by_mode: std::collections::BTreeMap<String, (i64, i64)> = Default::default();
    for g in 0..store.rows() {
        let mode = store.col(0).as_str_vec().get(g).to_string();
        let prio = store.col(1).as_str_vec().get(g);
        let cnt = store.col(2).as_i64()[g];
        let e = by_mode.entry(mode).or_insert((0, 0));
        if prio == "1-URGENT" || prio == "2-HIGH" {
            e.0 += cnt;
        } else {
            e.1 += cnt;
        }
    }
    let mut mode_b = ColumnBuilder::with_capacity(DataType::Str, by_mode.len());
    let mut high_b = ColumnBuilder::with_capacity(DataType::I64, by_mode.len());
    let mut low_b = ColumnBuilder::with_capacity(DataType::I64, by_mode.len());
    for (m, (h, l)) in &by_mode {
        mode_b.push_str(m);
        high_b.push_i64(*h);
        low_b.push_i64(*l);
    }
    let table = Table::new(
        "q12out",
        vec![
            ("shipmode".into(), mode_b.finish()),
            ("high".into(), high_b.finish()),
            ("low".into(), low_b.finish()),
        ],
    )?;
    let store = materialize_plan(
        PlanBuilder::from_table(std::sync::Arc::new(table), &["shipmode", "high", "low"]),
        ctx,
    )?;
    Ok(finish_store(store))
}

/// Q13's logical plan: customer distribution (LEFT OUTER JOIN via
/// left-single).
pub(crate) fn q13_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    let per_cust = PlanBuilder::scan(db, "orders", &["o_orderkey", "o_custkey", "o_comment"])
        .filter(
            NamedPred::not_like("o_comment", format!("%{}%{}%", p.q13_word1, p.q13_word2)),
            "Q13/sel_comment",
        )
        .hash_agg(&["o_custkey"], vec![count()], "Q13/agg_orders");
    PlanBuilder::scan(db, "customer", &["c_custkey"])
        .left_single_join(
            per_cust,
            &[("c_custkey", "o_custkey")],
            &[("count as c_count", Value::I64(0))],
            "Q13/left_join",
        )
        .hash_agg(
            &["c_count"],
            vec![count().named("custdist")],
            "Q13/agg_dist",
        )
        .sort(&[desc("custdist"), desc("c_count")])
}

/// Q13: customer distribution.
pub(crate) fn q13(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    run_plan(q13_plan(db, p), ctx)
}

/// Q14 main plan: revenue per part type in the month.
pub(crate) fn q14_agg_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    PlanBuilder::scan(
        db,
        "lineitem",
        &["l_partkey", "l_shipdate", "l_extendedprice", "l_discount"],
    )
    .filter(
        NamedPred::And(vec![
            NamedPred::cmp_val("l_shipdate", CmpKind::Ge, Value::I32(p.q14_date)),
            NamedPred::cmp_val(
                "l_shipdate",
                CmpKind::Lt,
                Value::I32(add_months(p.q14_date, 1)),
            ),
        ]),
        "Q14/sel_shipdate",
    )
    .hash_join(
        PlanBuilder::scan(db, "part", &["p_partkey", "p_type"]),
        &[("l_partkey", "p_partkey")],
        &["p_type"],
        JoinKind::Inner,
        false,
        "Q14/join_part",
    )
    .project(
        vec![
            ("p_type", col("p_type")),
            ("rev", revenue("l_extendedprice", "l_discount")),
        ],
        "Q14/rev",
    )
    .hash_agg(&["p_type"], vec![sum_f64("rev")], "Q14/agg")
}

/// Q14: promotion effect. PROMO share folded in a post-step over the
/// per-type aggregate.
pub(crate) fn q14(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    let store = materialize_plan(q14_agg_plan(db, p), ctx)?;
    let mut promo = 0.0;
    let mut total = 0.0;
    for g in 0..store.rows() {
        let rev = store.col(1).as_f64()[g];
        total += rev;
        if store.col(0).as_str_vec().get(g).starts_with("PROMO") {
            promo += rev;
        }
    }
    let share = if total > 0.0 {
        100.0 * promo / total
    } else {
        0.0
    };
    let mut b = ColumnBuilder::with_capacity(DataType::F64, 1);
    b.push_f64(share);
    let table = Table::new("q14out", vec![("promo_revenue".into(), b.finish())])?;
    let store = materialize_plan(
        PlanBuilder::from_table(std::sync::Arc::new(table), &["promo_revenue"]),
        ctx,
    )?;
    Ok(finish_store(store))
}

/// Q15 phase A: revenue per supplier over the quarter.
pub(crate) fn q15_revenue_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    PlanBuilder::scan(
        db,
        "lineitem",
        &["l_suppkey", "l_shipdate", "l_extendedprice", "l_discount"],
    )
    .filter(
        NamedPred::And(vec![
            NamedPred::cmp_val("l_shipdate", CmpKind::Ge, Value::I32(p.q15_date)),
            NamedPred::cmp_val(
                "l_shipdate",
                CmpKind::Lt,
                Value::I32(add_months(p.q15_date, 3)),
            ),
        ]),
        "Q15/sel_shipdate",
    )
    .project(
        vec![
            ("l_suppkey", col("l_suppkey")),
            ("rev", revenue("l_extendedprice", "l_discount")),
        ],
        "Q15/rev",
    )
    .hash_agg(&["l_suppkey"], vec![sum_f64("rev")], "Q15/agg")
}

/// Q15: top supplier (revenue view materialized as a temp table).
pub(crate) fn q15(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    let store = materialize_plan(q15_revenue_plan(db, p), ctx)?;
    let max_rev = store.col(1).as_f64().iter().copied().fold(0.0f64, f64::max);
    let revenue_t = store_to_table("revenue0", &["supplier_no", "total_revenue"], &store)?;
    let top = PlanBuilder::from_table(revenue_t, &["supplier_no", "total_revenue"]).filter(
        NamedPred::cmp_val("total_revenue", CmpKind::Ge, Value::F64(max_rev - 1e-6)),
        "Q15/sel_max",
    );
    let out = PlanBuilder::scan(
        db,
        "supplier",
        &["s_suppkey", "s_name", "s_address", "s_phone"],
    )
    .hash_join(
        top,
        &[("s_suppkey", "supplier_no")],
        &["total_revenue"],
        JoinKind::Inner,
        false,
        "Q15/join_supp",
    )
    .sort(&[asc("s_suppkey")]);
    run_plan(out, ctx)
}

/// Q16's logical plan: parts/supplier relationship (distinct via two-level
/// aggregation).
pub(crate) fn q16_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    let size_in = NamedPred::Or(
        p.q16_sizes
            .iter()
            .map(|&s| NamedPred::cmp_val("p_size", CmpKind::Eq, Value::I32(s)))
            .collect(),
    );
    let part_sel = PlanBuilder::scan(db, "part", &["p_partkey", "p_brand", "p_type", "p_size"])
        .filter(
            NamedPred::And(vec![
                NamedPred::cmp_val("p_brand", CmpKind::Ne, Value::Str(p.q16_brand.into())),
                NamedPred::not_like("p_type", format!("{}%", p.q16_type_prefix)),
                size_in,
            ]),
            "Q16/sel_part",
        );
    let bad = PlanBuilder::scan(db, "supplier", &["s_suppkey", "s_comment"]).filter(
        NamedPred::like("s_comment", "%Customer%Complaints%"),
        "Q16/sel_complaints",
    );
    PlanBuilder::scan(db, "partsupp", &["ps_partkey", "ps_suppkey"])
        .hash_join(
            part_sel,
            &[("ps_partkey", "p_partkey")],
            &["p_brand", "p_type", "p_size"],
            JoinKind::Inner,
            true,
            "Q16/join_part",
        )
        .hash_join(
            bad,
            &[("ps_suppkey", "s_suppkey")],
            &[],
            JoinKind::Anti,
            false,
            "Q16/anti_supp",
        )
        // distinct (brand, type, size, suppkey), then count per (brand,
        // type, size)
        .hash_agg(
            &["p_brand", "p_type", "p_size", "ps_suppkey"],
            vec![],
            "Q16/distinct",
        )
        .hash_agg(
            &["p_brand", "p_type", "p_size"],
            vec![count().named("supplier_cnt")],
            "Q16/agg",
        )
        .sort(&[
            desc("supplier_cnt"),
            asc("p_brand"),
            asc("p_type"),
            asc("p_size"),
        ])
}

/// Q16: parts/supplier relationship.
pub(crate) fn q16(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    run_plan(q16_plan(db, p), ctx)
}

/// The filtered-part lineitem stream both Q17 phases aggregate.
fn q17_lineitem_plan(db: &TpchData, p: &Params, label: &str) -> PlanBuilder {
    let part_sel = PlanBuilder::scan(db, "part", &["p_partkey", "p_brand", "p_container"]).filter(
        NamedPred::And(vec![
            NamedPred::str_eq("p_brand", p.q17_brand),
            NamedPred::str_eq("p_container", p.q17_container),
        ]),
        &format!("{label}/part"),
    );
    PlanBuilder::scan(
        db,
        "lineitem",
        &["l_partkey", "l_quantity", "l_extendedprice"],
    )
    .hash_join(
        part_sel,
        &[("l_partkey", "p_partkey")],
        &[],
        JoinKind::Semi,
        true,
        label,
    )
    .project(
        vec![
            ("l_partkey", col("l_partkey")),
            ("qty", col("l_quantity").cast(DataType::I64)),
            ("l_extendedprice", col("l_extendedprice")),
        ],
        "Q17/proj",
    )
}

/// Q17 phase A: per-part sum(qty) and count.
pub(crate) fn q17_totals_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    q17_lineitem_plan(db, p, "Q17/semi_a").hash_agg(
        &["l_partkey"],
        vec![sum_i64("qty").named("sumqty"), count().named("cnt")],
        "Q17/agg_totals",
    )
}

/// Q17: small-quantity-order revenue (per-part average via temp table; the
/// `0.2·avg` comparison is done in integers: `5·qty·cnt < sum`).
pub(crate) fn q17(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    let totals_store = materialize_plan(q17_totals_plan(db, p), ctx)?;
    let totals_t = store_to_table("q17totals", &["pk", "sumqty", "cnt"], &totals_store)?;
    let small = q17_lineitem_plan(db, p, "Q17/semi_b")
        .hash_join(
            PlanBuilder::from_table(totals_t, &["pk", "sumqty", "cnt"]),
            &[("l_partkey", "pk")],
            &["sumqty", "cnt"],
            JoinKind::Inner,
            false,
            "Q17/join_totals",
        )
        .project(
            vec![
                ("lhs", col("qty").mul(lit_i64(5)).mul(col("cnt"))),
                ("sumqty", col("sumqty")),
                ("l_extendedprice", col("l_extendedprice")),
            ],
            "Q17/cmp",
        )
        .filter(
            NamedPred::cmp_col("lhs", CmpKind::Lt, "sumqty"),
            "Q17/sel_small",
        )
        .stream_agg(vec![sum_i64("l_extendedprice")], "Q17/agg");
    let store = materialize_plan(small, ctx)?;
    // avg_yearly = sum(extendedprice)/7, in dollars.
    let avg_yearly = store.col(0).as_i64()[0] as f64 / 7.0 / 100.0;
    let mut b = ColumnBuilder::with_capacity(DataType::F64, 1);
    b.push_f64(avg_yearly);
    let table = Table::new("q17out", vec![("avg_yearly".into(), b.finish())])?;
    let store = materialize_plan(
        PlanBuilder::from_table(std::sync::Arc::new(table), &["avg_yearly"]),
        ctx,
    )?;
    Ok(finish_store(store))
}

#[cfg(test)]
mod tests {
    use super::super::test_support::run;

    #[test]
    fn q12_two_shipmodes_with_counts() {
        let out = run(12);
        assert!(out.rows <= 2 && out.rows >= 1, "rows {}", out.rows);
        for g in 0..out.rows {
            let m = out.store.col(0).as_str_vec().get(g).to_string();
            assert!(["MAIL", "SHIP"].contains(&m.as_str()));
            let high = out.store.col(1).as_i64()[g];
            let low = out.store.col(2).as_i64()[g];
            assert!(high + low > 0);
        }
    }

    #[test]
    fn q13_distribution_includes_zero_orders() {
        let out = run(13);
        assert!(out.rows > 1);
        // custdist sums to number of customers
        let total: i64 = out.store.col(1).as_i64().iter().sum();
        assert_eq!(
            total as usize,
            super::super::test_support::test_db().customer.rows()
        );
        // some customers have zero orders at this scale (orders ≈ 10/cust,
        // but comment filter keeps most) — just assert sorted by custdist desc
        let d = out.store.col(1).as_i64();
        for w in d.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn q14_share_is_percentage() {
        let out = run(14);
        assert_eq!(out.rows, 1);
        let share = out.store.col(0).as_f64()[0];
        assert!((0.0..=100.0).contains(&share), "share {share}");
        // PROMO is 1 of 6 type prefixes → share around 16%.
        assert!((5.0..35.0).contains(&share), "share {share}");
    }

    #[test]
    fn q15_top_supplier_has_max_revenue() {
        let out = run(15);
        assert!(out.rows >= 1);
        // ties allowed, but usually 1 row; revenue column equal across rows
        // layout: [sk, name, addr, phone, rev]
        let rev = out.store.col(4).as_f64();
        for r in rev {
            assert!((r - rev[0]).abs() < 1e-6);
        }
    }

    #[test]
    fn q16_counts_positive_and_sorted() {
        let out = run(16);
        assert!(out.rows > 0);
        let cnt = out.store.col(3).as_i64();
        assert!(cnt.iter().all(|&c| c > 0));
        for w in cnt.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn q17_single_value() {
        let out = run(17);
        assert_eq!(out.rows, 1);
        let v = out.store.col(0).as_f64()[0];
        assert!(v >= 0.0);
    }
}
