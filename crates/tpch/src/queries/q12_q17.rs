//! TPC-H Q12–Q17.

use ma_executor::ops::{
    AggSpec, HashAggregate, HashJoin, JoinKind, MergeJoin, ProjItem, Project, Select, Sort,
    SortKey, StreamAggregate,
};
use ma_executor::{BoxOp, CmpKind, ExecError, Expr, Pred, QueryContext, Value};
use ma_vector::{ColumnBuilder, DataType, Table};

use super::{
    finish, finish_store, revenue, scan, scan_seq, scan_where, store_to_table, QueryOutput,
};
use crate::dates::{add_months, add_years};
use crate::dbgen::TpchData;
use crate::params::Params;

/// Q12: shipping modes and order priority. Uses the **merge join** (both
/// sides arrive sorted by order key) — the operator of Fig. 4(c)/4(d):
/// lineitem's selection vectors shrink in the border regions of the date
/// range thanks to the date clustering.
pub(crate) fn q12(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    // Both merge-join inputs must arrive sorted by order key, so these
    // scans stay sequential even under worker_threads > 1 (a sharded
    // union interleaves chunks).
    let orders = scan_seq(db, "orders", &["o_orderkey", "o_orderpriority"], ctx)?;
    // right: filtered lineitem, sorted by orderkey
    // [0 lokey, 1 shipmode, 2 sdate, 3 cdate, 4 rdate]
    let li = scan_seq(
        db,
        "lineitem",
        &[
            "l_orderkey",
            "l_shipmode",
            "l_shipdate",
            "l_commitdate",
            "l_receiptdate",
        ],
        ctx,
    )?;
    let li_sel = Select::new(
        li,
        &Pred::And(vec![
            Pred::InStr {
                col: 1,
                values: vec![p.q12_shipmode1.into(), p.q12_shipmode2.into()],
            },
            Pred::cmp_val(4, CmpKind::Ge, Value::I32(p.q12_date)),
            Pred::cmp_val(4, CmpKind::Lt, Value::I32(add_years(p.q12_date, 1))),
            Pred::cmp_col(3, CmpKind::Lt, 4), // commit < receipt
            Pred::cmp_col(2, CmpKind::Lt, 3), // ship < commit
        ]),
        ctx,
        "Q12/sel_li",
    )?;
    // [0 lokey, 1 shipmode, 2 sdate, 3 cdate, 4 rdate, 5 opriority]
    let mj = MergeJoin::new(
        orders,
        Box::new(li_sel),
        0,
        0,
        vec![1],
        ctx,
        "Q12/mergejoin",
    )?;
    // count by (shipmode, priority); the CASE high/low split is a tiny
    // post-step over ≤ 2×5 groups.
    let agg = HashAggregate::new(
        Box::new(mj),
        vec![1, 5],
        vec![AggSpec::CountStar],
        ctx,
        "Q12/agg",
    )?;
    let mut agg_op: BoxOp = Box::new(agg);
    let store = ma_executor::ops::materialize(agg_op.as_mut())?;
    let mut by_mode: std::collections::BTreeMap<String, (i64, i64)> = Default::default();
    for g in 0..store.rows() {
        let mode = store.col(0).as_str_vec().get(g).to_string();
        let prio = store.col(1).as_str_vec().get(g);
        let cnt = store.col(2).as_i64()[g];
        let e = by_mode.entry(mode).or_insert((0, 0));
        if prio == "1-URGENT" || prio == "2-HIGH" {
            e.0 += cnt;
        } else {
            e.1 += cnt;
        }
    }
    let mut mode_b = ColumnBuilder::with_capacity(DataType::Str, by_mode.len());
    let mut high_b = ColumnBuilder::with_capacity(DataType::I64, by_mode.len());
    let mut low_b = ColumnBuilder::with_capacity(DataType::I64, by_mode.len());
    for (m, (h, l)) in &by_mode {
        mode_b.push_str(m);
        high_b.push_i64(*h);
        low_b.push_i64(*l);
    }
    let table = Table::new(
        "q12out",
        vec![
            ("shipmode".into(), mode_b.finish()),
            ("high".into(), high_b.finish()),
            ("low".into(), low_b.finish()),
        ],
    )?;
    let mut out: BoxOp = Box::new(ma_executor::ops::Scan::new(
        std::sync::Arc::new(table),
        &["shipmode", "high", "low"],
        ctx.vector_size(),
    )?);
    Ok(finish_store(ma_executor::ops::materialize(out.as_mut())?))
}

/// Q13: customer distribution (LEFT OUTER JOIN via LeftSingle).
pub(crate) fn q13(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    let ord = scan_where(
        db,
        "orders",
        &["o_orderkey", "o_custkey", "o_comment"],
        &Pred::NotLike {
            col: 2,
            pattern: format!("%{}%{}%", p.q13_word1, p.q13_word2),
        },
        ctx,
        "Q13/sel_comment",
    )?;
    // orders per customer: [ckey, cnt]
    let per_cust = HashAggregate::new(
        ord,
        vec![1],
        vec![AggSpec::CountStar],
        ctx,
        "Q13/agg_orders",
    )?;
    // customer ⟕ counts: [ck, c_count]
    let customer = scan(db, "customer", &["c_custkey"], ctx)?;
    let left = HashJoin::new(
        Box::new(per_cust),
        customer,
        vec![0],
        vec![0],
        vec![1],
        JoinKind::LeftSingle,
        false,
        vec![Value::I64(0)],
        ctx,
        "Q13/left_join",
    )?;
    // distribution: [c_count, custdist]
    let dist = HashAggregate::new(
        Box::new(left),
        vec![1],
        vec![AggSpec::CountStar],
        ctx,
        "Q13/agg_dist",
    )?;
    let sort = Sort::new(
        Box::new(dist),
        vec![SortKey::desc(1), SortKey::desc(0)],
        None,
        ctx.vector_size(),
    )?;
    finish(Box::new(sort))
}

/// Q14: promotion effect. PROMO share folded in a post-step over the
/// per-type aggregate.
pub(crate) fn q14(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    // [0 lpk, 1 sdate, 2 ep, 3 disc]
    let li_sel = scan_where(
        db,
        "lineitem",
        &["l_partkey", "l_shipdate", "l_extendedprice", "l_discount"],
        &Pred::And(vec![
            Pred::cmp_val(1, CmpKind::Ge, Value::I32(p.q14_date)),
            Pred::cmp_val(1, CmpKind::Lt, Value::I32(add_months(p.q14_date, 1))),
        ]),
        ctx,
        "Q14/sel_shipdate",
    )?;
    // [0..3, 4 ptype]
    let part = scan(db, "part", &["p_partkey", "p_type"], ctx)?;
    let joined = HashJoin::new(
        part,
        li_sel,
        vec![0],
        vec![0],
        vec![1],
        JoinKind::Inner,
        false,
        vec![],
        ctx,
        "Q14/join_part",
    )?;
    let proj = Project::new(
        Box::new(joined),
        vec![ProjItem::Pass(4), ProjItem::Expr(revenue(2, 3))],
        ctx,
        "Q14/rev",
    )?;
    let agg = HashAggregate::new(
        Box::new(proj),
        vec![0],
        vec![AggSpec::SumF64(1)],
        ctx,
        "Q14/agg",
    )?;
    let mut agg_op: BoxOp = Box::new(agg);
    let store = ma_executor::ops::materialize(agg_op.as_mut())?;
    let mut promo = 0.0;
    let mut total = 0.0;
    for g in 0..store.rows() {
        let rev = store.col(1).as_f64()[g];
        total += rev;
        if store.col(0).as_str_vec().get(g).starts_with("PROMO") {
            promo += rev;
        }
    }
    let share = if total > 0.0 {
        100.0 * promo / total
    } else {
        0.0
    };
    let mut b = ColumnBuilder::with_capacity(DataType::F64, 1);
    b.push_f64(share);
    let table = Table::new("q14out", vec![("promo_revenue".into(), b.finish())])?;
    let mut out: BoxOp = Box::new(ma_executor::ops::Scan::new(
        std::sync::Arc::new(table),
        &["promo_revenue"],
        ctx.vector_size(),
    )?);
    Ok(finish_store(ma_executor::ops::materialize(out.as_mut())?))
}

/// Q15: top supplier (revenue view materialized as a temp table).
pub(crate) fn q15(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    // revenue per supplier over the quarter
    let li_sel = scan_where(
        db,
        "lineitem",
        &["l_suppkey", "l_shipdate", "l_extendedprice", "l_discount"],
        &Pred::And(vec![
            Pred::cmp_val(1, CmpKind::Ge, Value::I32(p.q15_date)),
            Pred::cmp_val(1, CmpKind::Lt, Value::I32(add_months(p.q15_date, 3))),
        ]),
        ctx,
        "Q15/sel_shipdate",
    )?;
    let proj = Project::new(
        li_sel,
        vec![ProjItem::Pass(0), ProjItem::Expr(revenue(2, 3))],
        ctx,
        "Q15/rev",
    )?;
    let agg = HashAggregate::new(
        Box::new(proj),
        vec![0],
        vec![AggSpec::SumF64(1)],
        ctx,
        "Q15/agg",
    )?;
    let mut agg_op: BoxOp = Box::new(agg);
    let store = ma_executor::ops::materialize(agg_op.as_mut())?;
    let max_rev = store.col(1).as_f64().iter().copied().fold(0.0f64, f64::max);
    let revenue_t = store_to_table("revenue0", &["supplier_no", "total_revenue"], &store)?;
    // suppliers achieving the max
    let rev_scan: BoxOp = Box::new(ma_executor::ops::Scan::new(
        std::sync::Arc::clone(&revenue_t),
        &["supplier_no", "total_revenue"],
        ctx.vector_size(),
    )?);
    let top = Select::new(
        rev_scan,
        &Pred::cmp_val(1, CmpKind::Ge, Value::F64(max_rev - 1e-6)),
        ctx,
        "Q15/sel_max",
    )?;
    // [0 sk, 1 name, 2 addr, 3 phone, 4 rev]
    let supplier = scan(
        db,
        "supplier",
        &["s_suppkey", "s_name", "s_address", "s_phone"],
        ctx,
    )?;
    let joined = HashJoin::new(
        Box::new(top),
        supplier,
        vec![0],
        vec![0],
        vec![1],
        JoinKind::Inner,
        false,
        vec![],
        ctx,
        "Q15/join_supp",
    )?;
    let sort = Sort::new(
        Box::new(joined),
        vec![SortKey::asc(0)],
        None,
        ctx.vector_size(),
    )?;
    finish(Box::new(sort))
}

/// Q16: parts/supplier relationship (distinct via two-level aggregation).
pub(crate) fn q16(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    let size_in = Pred::Or(
        p.q16_sizes
            .iter()
            .map(|&s| Pred::cmp_val(3, CmpKind::Eq, Value::I32(s)))
            .collect(),
    );
    let part_sel = scan_where(
        db,
        "part",
        &["p_partkey", "p_brand", "p_type", "p_size"],
        &Pred::And(vec![
            Pred::cmp_val(1, CmpKind::Ne, Value::Str(p.q16_brand.into())),
            Pred::NotLike {
                col: 2,
                pattern: format!("{}%", p.q16_type_prefix),
            },
            size_in,
        ]),
        ctx,
        "Q16/sel_part",
    )?;
    // [0 pspk, 1 pssk, 2 brand, 3 ptype, 4 size]
    let partsupp = scan(db, "partsupp", &["ps_partkey", "ps_suppkey"], ctx)?;
    let ps = HashJoin::new(
        part_sel,
        partsupp,
        vec![0],
        vec![0],
        vec![1, 2, 3],
        JoinKind::Inner,
        true,
        vec![],
        ctx,
        "Q16/join_part",
    )?;
    // exclude suppliers with complaints
    let bad = scan_where(
        db,
        "supplier",
        &["s_suppkey", "s_comment"],
        &Pred::Like {
            col: 1,
            pattern: "%Customer%Complaints%".into(),
        },
        ctx,
        "Q16/sel_complaints",
    )?;
    let ps_ok = HashJoin::new(
        bad,
        Box::new(ps),
        vec![0],
        vec![1],
        vec![],
        JoinKind::Anti,
        false,
        vec![],
        ctx,
        "Q16/anti_supp",
    )?;
    // distinct (brand, type, size, suppkey), then count per (brand, type, size)
    let distinct = HashAggregate::new(
        Box::new(ps_ok),
        vec![2, 3, 4, 1],
        vec![],
        ctx,
        "Q16/distinct",
    )?;
    let agg = HashAggregate::new(
        Box::new(distinct),
        vec![0, 1, 2],
        vec![AggSpec::CountStar],
        ctx,
        "Q16/agg",
    )?;
    let sort = Sort::new(
        Box::new(agg),
        vec![
            SortKey::desc(3),
            SortKey::asc(0),
            SortKey::asc(1),
            SortKey::asc(2),
        ],
        None,
        ctx.vector_size(),
    )?;
    finish(Box::new(sort))
}

/// Q17: small-quantity-order revenue (per-part average via temp table; the
/// `0.2·avg` comparison is done in integers: `5·qty·cnt < sum`).
pub(crate) fn q17(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    let part_sel = |label: &str| -> Result<BoxOp, ExecError> {
        scan_where(
            db,
            "part",
            &["p_partkey", "p_brand", "p_container"],
            &Pred::And(vec![
                Pred::str_eq(1, p.q17_brand),
                Pred::str_eq(2, p.q17_container),
            ]),
            ctx,
            label,
        )
    };
    let li_for_parts = |label: &str| -> Result<BoxOp, ExecError> {
        // [0 lpk, 1 qty64, 2 ep]
        let li = scan(
            db,
            "lineitem",
            &["l_partkey", "l_quantity", "l_extendedprice"],
            ctx,
        )?;
        let semi = HashJoin::new(
            part_sel(&format!("{label}/part"))?,
            li,
            vec![0],
            vec![0],
            vec![],
            JoinKind::Semi,
            true,
            vec![],
            ctx,
            label,
        )?;
        Ok(Box::new(Project::new(
            Box::new(semi),
            vec![
                ProjItem::Pass(0),
                ProjItem::Expr(Expr::cast(DataType::I64, Expr::col(1))),
                ProjItem::Pass(2),
            ],
            ctx,
            "Q17/proj",
        )?))
    };
    // phase A: per-part sum(qty), count
    let totals = HashAggregate::new(
        li_for_parts("Q17/semi_a")?,
        vec![0],
        vec![AggSpec::SumI64(1), AggSpec::CountStar],
        ctx,
        "Q17/agg_totals",
    )?;
    let mut totals_op: BoxOp = Box::new(totals);
    let totals_store = ma_executor::ops::materialize(totals_op.as_mut())?;
    let totals_t = store_to_table("q17totals", &["pk", "sumqty", "cnt"], &totals_store)?;
    // phase B: join back, select 5*qty*cnt < sumqty
    let totals_scan: BoxOp = Box::new(ma_executor::ops::Scan::new(
        std::sync::Arc::clone(&totals_t),
        &["pk", "sumqty", "cnt"],
        ctx.vector_size(),
    )?);
    // [0 pk, 1 qty64, 2 ep, 3 sumqty, 4 cnt]
    let joined = HashJoin::new(
        totals_scan,
        li_for_parts("Q17/semi_b")?,
        vec![0],
        vec![0],
        vec![1, 2],
        JoinKind::Inner,
        false,
        vec![],
        ctx,
        "Q17/join_totals",
    )?;
    // [0 lhs = 5*qty*cnt, 1 sumqty, 2 ep]
    let cmp_proj = Project::new(
        Box::new(joined),
        vec![
            ProjItem::Expr(Expr::mul(
                Expr::mul(Expr::col(1), Expr::i64(5)),
                Expr::col(4),
            )),
            ProjItem::Pass(3),
            ProjItem::Pass(2),
        ],
        ctx,
        "Q17/cmp",
    )?;
    let small = Select::new(
        Box::new(cmp_proj),
        &Pred::cmp_col(0, CmpKind::Lt, 1),
        ctx,
        "Q17/sel_small",
    )?;
    let agg = StreamAggregate::new(Box::new(small), vec![AggSpec::SumI64(2)], ctx, "Q17/agg")?;
    let mut agg_op: BoxOp = Box::new(agg);
    let store = ma_executor::ops::materialize(agg_op.as_mut())?;
    // avg_yearly = sum(extendedprice)/7, in dollars.
    let avg_yearly = store.col(0).as_i64()[0] as f64 / 7.0 / 100.0;
    let mut b = ColumnBuilder::with_capacity(DataType::F64, 1);
    b.push_f64(avg_yearly);
    let table = Table::new("q17out", vec![("avg_yearly".into(), b.finish())])?;
    let mut out: BoxOp = Box::new(ma_executor::ops::Scan::new(
        std::sync::Arc::new(table),
        &["avg_yearly"],
        ctx.vector_size(),
    )?);
    Ok(finish_store(ma_executor::ops::materialize(out.as_mut())?))
}

#[cfg(test)]
mod tests {
    use super::super::test_support::run;

    #[test]
    fn q12_two_shipmodes_with_counts() {
        let out = run(12);
        assert!(out.rows <= 2 && out.rows >= 1, "rows {}", out.rows);
        for g in 0..out.rows {
            let m = out.store.col(0).as_str_vec().get(g).to_string();
            assert!(["MAIL", "SHIP"].contains(&m.as_str()));
            let high = out.store.col(1).as_i64()[g];
            let low = out.store.col(2).as_i64()[g];
            assert!(high + low > 0);
        }
    }

    #[test]
    fn q13_distribution_includes_zero_orders() {
        let out = run(13);
        assert!(out.rows > 1);
        // custdist sums to number of customers
        let total: i64 = out.store.col(1).as_i64().iter().sum();
        assert_eq!(
            total as usize,
            super::super::test_support::test_db().customer.rows()
        );
        // some customers have zero orders at this scale (orders ≈ 10/cust,
        // but comment filter keeps most) — just assert sorted by custdist desc
        let d = out.store.col(1).as_i64();
        for w in d.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn q14_share_is_percentage() {
        let out = run(14);
        assert_eq!(out.rows, 1);
        let share = out.store.col(0).as_f64()[0];
        assert!((0.0..=100.0).contains(&share), "share {share}");
        // PROMO is 1 of 6 type prefixes → share around 16%.
        assert!((5.0..35.0).contains(&share), "share {share}");
    }

    #[test]
    fn q15_top_supplier_has_max_revenue() {
        let out = run(15);
        assert!(out.rows >= 1);
        // ties allowed, but usually 1 row; revenue column equal across rows
        // layout: [sk, name, addr, phone, rev]
        let rev = out.store.col(4).as_f64();
        for r in rev {
            assert!((r - rev[0]).abs() < 1e-6);
        }
    }

    #[test]
    fn q16_counts_positive_and_sorted() {
        let out = run(16);
        assert!(out.rows > 0);
        let cnt = out.store.col(3).as_i64();
        assert!(cnt.iter().all(|&c| c > 0));
        for w in cnt.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn q17_single_value() {
        let out = run(17);
        assert_eq!(out.rows, 1);
        let v = out.store.col(0).as_f64()[0];
        assert!(v >= 0.0);
    }
}
