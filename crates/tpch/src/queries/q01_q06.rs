//! TPC-H Q1–Q6.

use ma_executor::ops::{
    AggSpec, HashAggregate, HashJoin, JoinKind, ProjItem, Project, Select, Sort, SortKey,
    StreamAggregate,
};
use ma_executor::{BoxOp, CmpKind, ExecError, Expr, Pred, QueryContext, Value};
use ma_vector::DataType;

use super::{finish, one_minus, one_plus, pct_frac, revenue, scan, scan_where, QueryOutput};
use crate::dates::{add_months, add_years};
use crate::dbgen::TpchData;
use crate::params::Params;

/// Q1: pricing summary report.
pub(crate) fn q01(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    // [0 shipdate, 1 returnflag, 2 linestatus, 3 qty, 4 extprice, 5 disc, 6 tax]
    let sel = scan_where(
        db,
        "lineitem",
        &[
            "l_shipdate",
            "l_returnflag",
            "l_linestatus",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
        ],
        &Pred::cmp_val(0, CmpKind::Le, Value::I32(p.q1_cutoff())),
        ctx,
        "Q1/sel_shipdate",
    )?;
    // [0 rf, 1 ls, 2 qty64, 3 ep, 4 disc_price, 5 charge, 6 disc_frac]
    let disc_price = Expr::mul(
        Expr::cast(DataType::F64, Expr::col(4)),
        one_minus(pct_frac(5)),
    );
    let charge = Expr::mul(disc_price.clone(), one_plus(pct_frac(6)));
    let proj = Project::new(
        sel,
        vec![
            ProjItem::Pass(1),
            ProjItem::Pass(2),
            ProjItem::Expr(Expr::cast(DataType::I64, Expr::col(3))),
            ProjItem::Pass(4),
            ProjItem::Expr(disc_price),
            ProjItem::Expr(charge),
            ProjItem::Expr(pct_frac(5)),
        ],
        ctx,
        "Q1/maps",
    )?;
    // [0 rf, 1 ls, 2 sum_qty, 3 sum_base, 4 sum_disc_price, 5 sum_charge,
    //  6 sum_disc, 7 count]
    let agg = HashAggregate::new(
        Box::new(proj),
        vec![0, 1],
        vec![
            AggSpec::SumI64(2),
            AggSpec::SumI64(3),
            AggSpec::SumF64(4),
            AggSpec::SumF64(5),
            AggSpec::SumF64(6),
            AggSpec::CountStar,
        ],
        ctx,
        "Q1/agg",
    )?;
    // append avgs: [..8 avg_qty, 9 avg_price, 10 avg_disc]
    let cnt_f = || Expr::cast(DataType::F64, Expr::col(7));
    let post = Project::new(
        Box::new(agg),
        vec![
            ProjItem::Pass(0),
            ProjItem::Pass(1),
            ProjItem::Pass(2),
            ProjItem::Pass(3),
            ProjItem::Pass(4),
            ProjItem::Pass(5),
            ProjItem::Expr(Expr::div(Expr::cast(DataType::F64, Expr::col(2)), cnt_f())),
            ProjItem::Expr(Expr::div(Expr::cast(DataType::F64, Expr::col(3)), cnt_f())),
            ProjItem::Expr(Expr::div(Expr::col(6), cnt_f())),
            ProjItem::Pass(7),
        ],
        ctx,
        "Q1/avgs",
    )?;
    let sort = Sort::new(
        Box::new(post),
        vec![SortKey::asc(0), SortKey::asc(1)],
        None,
        ctx.vector_size(),
    )?;
    finish(Box::new(sort))
}

/// Q2: minimum-cost supplier.
pub(crate) fn q02(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    // europe nations: nation [0 nk, 1 name, 2 rk] semi region(EUROPE)
    let region_sel = scan_where(
        db,
        "region",
        &["r_regionkey", "r_name"],
        &Pred::str_eq(1, p.q2_region),
        ctx,
        "Q2/sel_region",
    )?;
    let nation = scan(db, "nation", &["n_nationkey", "n_name", "n_regionkey"], ctx)?;
    let nation_eu = HashJoin::new(
        region_sel,
        nation,
        vec![0],
        vec![2],
        vec![],
        JoinKind::Semi,
        false,
        vec![],
        ctx,
        "Q2/join_region",
    )?;
    // supplier joined with nation name:
    // [0 sk, 1 sname, 2 saddr, 3 snk, 4 sphone, 5 sacct, 6 scomment, 7 nname]
    let supplier = scan(
        db,
        "supplier",
        &[
            "s_suppkey",
            "s_name",
            "s_address",
            "s_nationkey",
            "s_phone",
            "s_acctbal",
            "s_comment",
        ],
        ctx,
    )?;
    let sup_eu = HashJoin::new(
        Box::new(nation_eu),
        supplier,
        vec![0],
        vec![3],
        vec![1],
        JoinKind::Inner,
        false,
        vec![],
        ctx,
        "Q2/join_nation",
    )?;
    // partsupp enriched:
    // [0 pspk, 1 pssk, 2 cost, 3 acct, 4 sname, 5 nname, 6 addr, 7 phone, 8 comment]
    let partsupp = scan(
        db,
        "partsupp",
        &["ps_partkey", "ps_suppkey", "ps_supplycost"],
        ctx,
    )?;
    let ps_eu = HashJoin::new(
        Box::new(sup_eu),
        partsupp,
        vec![0],
        vec![1],
        vec![5, 1, 7, 2, 4, 6],
        JoinKind::Inner,
        false,
        vec![],
        ctx,
        "Q2/join_supplier",
    )?;
    // parts: size = 15 AND type LIKE %BRASS
    let part_sel = scan_where(
        db,
        "part",
        &["p_partkey", "p_mfgr", "p_size", "p_type"],
        &Pred::And(vec![
            Pred::cmp_val(2, CmpKind::Eq, Value::I32(p.q2_size)),
            Pred::Like {
                col: 3,
                pattern: format!("%{}", p.q2_type_suffix),
            },
        ]),
        ctx,
        "Q2/sel_part",
    )?;
    // rows: [0..8 ps_eu, 9 mfgr]
    let rows = HashJoin::new(
        part_sel,
        Box::new(ps_eu),
        vec![0],
        vec![0],
        vec![1],
        JoinKind::Inner,
        true,
        vec![],
        ctx,
        "Q2/join_part",
    )?;
    // Materialize once; reuse for the min-cost subquery and the final join.
    let mut rows_op: BoxOp = Box::new(rows);
    let store = ma_executor::ops::materialize(rows_op.as_mut())?;
    let rows_t = super::store_to_table(
        "q2rows",
        &[
            "pk", "sk", "cost", "acct", "sname", "nname", "addr", "phone", "comment", "mfgr",
        ],
        &store,
    )?;
    let db_rows = |cols: &[&str]| -> Result<BoxOp, ExecError> {
        Ok(Box::new(ma_executor::ops::Scan::new(
            std::sync::Arc::clone(&rows_t),
            cols,
            ctx.vector_size(),
        )?))
    };
    // min cost per part
    let minc = HashAggregate::new(
        db_rows(&["pk", "cost"])?,
        vec![0],
        vec![AggSpec::MinI64(1)],
        ctx,
        "Q2/agg_min",
    )?;
    // join back and filter cost == min
    // [0 pk, 1 sk, 2 cost, 3 acct, 4 sname, 5 nname, 6 addr, 7 phone,
    //  8 comment, 9 mfgr, 10 mincost]
    let all = db_rows(&[
        "pk", "sk", "cost", "acct", "sname", "nname", "addr", "phone", "comment", "mfgr",
    ])?;
    let with_min = HashJoin::new(
        Box::new(minc),
        all,
        vec![0],
        vec![0],
        vec![1],
        JoinKind::Inner,
        false,
        vec![],
        ctx,
        "Q2/join_min",
    )?;
    let only_min = Select::new(
        Box::new(with_min),
        &Pred::cmp_col(2, CmpKind::Eq, 10),
        ctx,
        "Q2/sel_min",
    )?;
    // output: [acct, sname, nname, pk, mfgr, addr, phone, comment]
    let out = Project::new(
        Box::new(only_min),
        vec![
            ProjItem::Pass(3),
            ProjItem::Pass(4),
            ProjItem::Pass(5),
            ProjItem::Pass(0),
            ProjItem::Pass(9),
            ProjItem::Pass(6),
            ProjItem::Pass(7),
            ProjItem::Pass(8),
        ],
        ctx,
        "Q2/out",
    )?;
    let sort = Sort::new(
        Box::new(out),
        vec![
            SortKey::desc(0),
            SortKey::asc(2),
            SortKey::asc(1),
            SortKey::asc(3),
        ],
        Some(100),
        ctx.vector_size(),
    )?;
    finish(Box::new(sort))
}

/// Q3: shipping priority.
pub(crate) fn q03(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    let cust = scan_where(
        db,
        "customer",
        &["c_custkey", "c_mktsegment"],
        &Pred::str_eq(1, p.q3_segment),
        ctx,
        "Q3/sel_cust",
    )?;
    let ord = scan_where(
        db,
        "orders",
        &["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"],
        &Pred::cmp_val(2, CmpKind::Lt, Value::I32(p.q3_date)),
        ctx,
        "Q3/sel_orders",
    )?;
    // [0 okey, 1 ckey, 2 odate, 3 shipprio]
    let ord_cust = HashJoin::new(
        cust,
        ord,
        vec![0],
        vec![1],
        vec![],
        JoinKind::Semi,
        true,
        vec![],
        ctx,
        "Q3/join_cust",
    )?;
    let li_sel = scan_where(
        db,
        "lineitem",
        &["l_orderkey", "l_shipdate", "l_extendedprice", "l_discount"],
        &Pred::cmp_val(1, CmpKind::Gt, Value::I32(p.q3_date)),
        ctx,
        "Q3/sel_li",
    )?;
    // [0 lokey, 1 sdate, 2 ep, 3 disc, 4 odate, 5 shipprio]
    let joined = HashJoin::new(
        Box::new(ord_cust),
        li_sel,
        vec![0],
        vec![0],
        vec![2, 3],
        JoinKind::Inner,
        true,
        vec![],
        ctx,
        "Q3/join_orders",
    )?;
    // [0 okey, 1 odate, 2 shipprio, 3 rev]
    let proj = Project::new(
        Box::new(joined),
        vec![
            ProjItem::Pass(0),
            ProjItem::Pass(4),
            ProjItem::Pass(5),
            ProjItem::Expr(revenue(2, 3)),
        ],
        ctx,
        "Q3/rev",
    )?;
    let agg = HashAggregate::new(
        Box::new(proj),
        vec![0, 1, 2],
        vec![AggSpec::SumF64(3)],
        ctx,
        "Q3/agg",
    )?;
    // output [okey, revenue, odate, shipprio]
    let out = Project::new(
        Box::new(agg),
        vec![
            ProjItem::Pass(0),
            ProjItem::Pass(3),
            ProjItem::Pass(1),
            ProjItem::Pass(2),
        ],
        ctx,
        "Q3/out",
    )?;
    let sort = Sort::new(
        Box::new(out),
        vec![SortKey::desc(1), SortKey::asc(2)],
        Some(10),
        ctx.vector_size(),
    )?;
    finish(Box::new(sort))
}

/// Q4: order priority checking.
pub(crate) fn q04(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    let ord = scan_where(
        db,
        "orders",
        &["o_orderkey", "o_orderdate", "o_orderpriority"],
        &Pred::And(vec![
            Pred::cmp_val(1, CmpKind::Ge, Value::I32(p.q4_date)),
            Pred::cmp_val(1, CmpKind::Lt, Value::I32(add_months(p.q4_date, 3))),
        ]),
        ctx,
        "Q4/sel_orders",
    )?;
    let li_late = scan_where(
        db,
        "lineitem",
        &["l_orderkey", "l_commitdate", "l_receiptdate"],
        &Pred::cmp_col(1, CmpKind::Lt, 2),
        ctx,
        "Q4/sel_late",
    )?;
    // EXISTS: semi-join orders against late lineitems.
    let semi = HashJoin::new(
        li_late,
        ord,
        vec![0],
        vec![0],
        vec![],
        JoinKind::Semi,
        true,
        vec![],
        ctx,
        "Q4/semi",
    )?;
    let agg = HashAggregate::new(
        Box::new(semi),
        vec![2],
        vec![AggSpec::CountStar],
        ctx,
        "Q4/agg",
    )?;
    let sort = Sort::new(
        Box::new(agg),
        vec![SortKey::asc(0)],
        None,
        ctx.vector_size(),
    )?;
    finish(Box::new(sort))
}

/// Q5: local supplier volume.
pub(crate) fn q05(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    let region_sel = scan_where(
        db,
        "region",
        &["r_regionkey", "r_name"],
        &Pred::str_eq(1, p.q5_region),
        ctx,
        "Q5/sel_region",
    )?;
    let nation = scan(db, "nation", &["n_nationkey", "n_name", "n_regionkey"], ctx)?;
    let nation_r = HashJoin::new(
        region_sel,
        nation,
        vec![0],
        vec![2],
        vec![],
        JoinKind::Semi,
        false,
        vec![],
        ctx,
        "Q5/join_region",
    )?;
    // customer: [0 ckey, 1 cnk, 2 nname]
    let customer = scan(db, "customer", &["c_custkey", "c_nationkey"], ctx)?;
    let cust = HashJoin::new(
        Box::new(nation_r),
        customer,
        vec![0],
        vec![1],
        vec![1],
        JoinKind::Inner,
        false,
        vec![],
        ctx,
        "Q5/join_cust_nation",
    )?;
    // orders in year: [0 okey, 1 ockey, 2 odate, 3 cnk, 4 nname]
    let ord_sel = scan_where(
        db,
        "orders",
        &["o_orderkey", "o_custkey", "o_orderdate"],
        &Pred::And(vec![
            Pred::cmp_val(2, CmpKind::Ge, Value::I32(p.q5_date)),
            Pred::cmp_val(2, CmpKind::Lt, Value::I32(add_years(p.q5_date, 1))),
        ]),
        ctx,
        "Q5/sel_orders",
    )?;
    let ord = HashJoin::new(
        Box::new(cust),
        ord_sel,
        vec![0],
        vec![1],
        vec![1, 2],
        JoinKind::Inner,
        true,
        vec![],
        ctx,
        "Q5/join_cust",
    )?;
    // lineitem: [0 lokey, 1 lsk, 2 ep, 3 disc, 4 cnk, 5 nname]
    let li = scan(
        db,
        "lineitem",
        &["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"],
        ctx,
    )?;
    let li2 = HashJoin::new(
        Box::new(ord),
        li,
        vec![0],
        vec![0],
        vec![3, 4],
        JoinKind::Inner,
        true,
        vec![],
        ctx,
        "Q5/join_orders",
    )?;
    // supplier nation must equal customer nation: composite semi-join.
    let supplier = scan(db, "supplier", &["s_suppkey", "s_nationkey"], ctx)?;
    let li3 = HashJoin::new(
        supplier,
        Box::new(li2),
        vec![0, 1],
        vec![1, 4],
        vec![],
        JoinKind::Semi,
        false,
        vec![],
        ctx,
        "Q5/join_supp",
    )?;
    let proj = Project::new(
        Box::new(li3),
        vec![ProjItem::Pass(5), ProjItem::Expr(revenue(2, 3))],
        ctx,
        "Q5/rev",
    )?;
    let agg = HashAggregate::new(
        Box::new(proj),
        vec![0],
        vec![AggSpec::SumF64(1)],
        ctx,
        "Q5/agg",
    )?;
    let sort = Sort::new(
        Box::new(agg),
        vec![SortKey::desc(1)],
        None,
        ctx.vector_size(),
    )?;
    finish(Box::new(sort))
}

/// Q6: forecasting revenue change.
pub(crate) fn q06(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    // [0 shipdate, 1 discount, 2 quantity, 3 extprice]
    let sel = scan_where(
        db,
        "lineitem",
        &["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"],
        &Pred::And(vec![
            Pred::cmp_val(0, CmpKind::Ge, Value::I32(p.q6_date)),
            Pred::cmp_val(0, CmpKind::Lt, Value::I32(add_years(p.q6_date, 1))),
            Pred::between_i64(1, p.q6_discount_pct - 1, p.q6_discount_pct + 1),
            Pred::cmp_val(2, CmpKind::Lt, Value::I32(p.q6_quantity)),
        ]),
        ctx,
        "Q6/sel",
    )?;
    let proj = Project::new(
        sel,
        vec![ProjItem::Expr(Expr::mul(
            Expr::cast(DataType::F64, Expr::col(3)),
            pct_frac(1),
        ))],
        ctx,
        "Q6/rev",
    )?;
    let agg = StreamAggregate::new(Box::new(proj), vec![AggSpec::SumF64(0)], ctx, "Q6/agg")?;
    finish(Box::new(agg))
}

#[cfg(test)]
mod tests {
    use super::super::test_support::run;

    #[test]
    fn q01_four_groups_with_sane_averages() {
        let out = run(1);
        // returnflag × linestatus: A/F, N/F, N/O, R/F.
        assert_eq!(out.rows, 4);
        for g in 0..out.rows {
            let avg_qty = out.store.col(8).as_f64()[g]; // avg_price col 9? layout check below
            let _ = avg_qty;
            let count = out.store.col(9).as_i64()[g];
            assert!(count > 0);
            let sum_qty = out.store.col(2).as_i64()[g];
            let aq = out.store.col(6).as_f64()[g];
            assert!((aq - sum_qty as f64 / count as f64).abs() < 1e-6);
            assert!((1.0..=50.0).contains(&aq), "avg qty {aq}");
        }
    }

    #[test]
    fn q02_output_shape() {
        let out = run(2);
        assert!(out.rows <= 100);
        // All result rows are for EUROPE nations.
        for g in 0..out.rows {
            let nname = out.store.col(2).as_str_vec().get(g).to_string();
            assert!(
                ["FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"]
                    .contains(&nname.as_str()),
                "{nname}"
            );
        }
    }

    #[test]
    fn q03_top10_sorted_by_revenue() {
        let out = run(3);
        assert!(out.rows <= 10);
        let rev = out.store.col(1).as_f64();
        for w in rev.windows(2) {
            assert!(w[0] >= w[1], "revenue not descending");
        }
    }

    #[test]
    fn q04_five_priorities() {
        let out = run(4);
        assert!(out.rows <= 5 && out.rows >= 3, "rows {}", out.rows);
        let counts = out.store.col(1).as_i64();
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn q05_asia_nations_only() {
        let out = run(5);
        assert!(out.rows <= 5);
        for g in 0..out.rows {
            let n = out.store.col(0).as_str_vec().get(g).to_string();
            assert!(
                ["INDIA", "INDONESIA", "JAPAN", "CHINA", "VIETNAM"].contains(&n.as_str()),
                "{n}"
            );
        }
        let rev = out.store.col(1).as_f64();
        for w in rev.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn q06_single_positive_revenue() {
        let out = run(6);
        assert_eq!(out.rows, 1);
        let rev = out.store.col(0).as_f64()[0];
        assert!(rev > 0.0, "revenue {rev}");
    }
}
