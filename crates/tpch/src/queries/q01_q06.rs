//! TPC-H Q1–Q6.

use ma_executor::ops::JoinKind;
use ma_executor::plan::{asc, col, count, desc, min_i64, sum_f64, sum_i64, NamedPred, PlanBuilder};
use ma_executor::{CmpKind, ExecError, QueryContext, Value};
use ma_vector::DataType;

use super::{materialize_plan, one_plus, pct_frac, revenue, run_plan, store_to_table, QueryOutput};
use crate::dates::{add_months, add_years};
use crate::dbgen::TpchData;
use crate::params::Params;

/// Q1's logical plan: pricing summary report.
pub(crate) fn q01_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    let disc_price = revenue("l_extendedprice", "l_discount");
    let charge = disc_price.clone().mul(one_plus(pct_frac("l_tax")));
    let cnt_f = || col("count").cast(DataType::F64);
    PlanBuilder::scan(
        db,
        "lineitem",
        &[
            "l_shipdate",
            "l_returnflag",
            "l_linestatus",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
        ],
    )
    .filter(
        NamedPred::cmp_val("l_shipdate", CmpKind::Le, Value::I32(p.q1_cutoff())),
        "Q1/sel_shipdate",
    )
    .project(
        vec![
            ("l_returnflag", col("l_returnflag")),
            ("l_linestatus", col("l_linestatus")),
            ("qty", col("l_quantity").cast(DataType::I64)),
            ("base", col("l_extendedprice")),
            ("disc_price", disc_price),
            ("charge", charge),
            ("disc", pct_frac("l_discount")),
        ],
        "Q1/maps",
    )
    .hash_agg(
        &["l_returnflag", "l_linestatus"],
        vec![
            sum_i64("qty"),
            sum_i64("base"),
            sum_f64("disc_price"),
            sum_f64("charge"),
            sum_f64("disc"),
            count(),
        ],
        "Q1/agg",
    )
    .project(
        vec![
            ("l_returnflag", col("l_returnflag")),
            ("l_linestatus", col("l_linestatus")),
            ("sum_qty", col("sum_qty")),
            ("sum_base", col("sum_base")),
            ("sum_disc_price", col("sum_disc_price")),
            ("sum_charge", col("sum_charge")),
            ("avg_qty", col("sum_qty").cast(DataType::F64).div(cnt_f())),
            (
                "avg_price",
                col("sum_base").cast(DataType::F64).div(cnt_f()),
            ),
            ("avg_disc", col("sum_disc").div(cnt_f())),
            ("count", col("count")),
        ],
        "Q1/avgs",
    )
    .sort(&[asc("l_returnflag"), asc("l_linestatus")])
}

/// Q1: pricing summary report.
pub(crate) fn q01(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    run_plan(q01_plan(db, p), ctx)
}

/// Q2 phase A: every candidate (part, EUROPE supplier) row with its cost
/// and supplier attributes — materialized once, reused for the min-cost
/// subquery and the final join.
pub(crate) fn q02_rows_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    let region_sel = PlanBuilder::scan(db, "region", &["r_regionkey", "r_name"])
        .filter(NamedPred::str_eq("r_name", p.q2_region), "Q2/sel_region");
    let nation_eu = PlanBuilder::scan(db, "nation", &["n_nationkey", "n_name", "n_regionkey"])
        .hash_join(
            region_sel,
            &[("n_regionkey", "r_regionkey")],
            &[],
            JoinKind::Semi,
            false,
            "Q2/join_region",
        );
    let sup_eu = PlanBuilder::scan(
        db,
        "supplier",
        &[
            "s_suppkey",
            "s_name",
            "s_address",
            "s_nationkey",
            "s_phone",
            "s_acctbal",
            "s_comment",
        ],
    )
    .hash_join(
        nation_eu,
        &[("s_nationkey", "n_nationkey")],
        &["n_name"],
        JoinKind::Inner,
        false,
        "Q2/join_nation",
    );
    let ps_eu = PlanBuilder::scan(
        db,
        "partsupp",
        &["ps_partkey", "ps_suppkey", "ps_supplycost"],
    )
    .hash_join(
        sup_eu,
        &[("ps_suppkey", "s_suppkey")],
        &[
            "s_acctbal",
            "s_name",
            "n_name",
            "s_address",
            "s_phone",
            "s_comment",
        ],
        JoinKind::Inner,
        false,
        "Q2/join_supplier",
    );
    let part_sel = PlanBuilder::scan(db, "part", &["p_partkey", "p_mfgr", "p_size", "p_type"])
        .filter(
            NamedPred::And(vec![
                NamedPred::cmp_val("p_size", CmpKind::Eq, Value::I32(p.q2_size)),
                NamedPred::like("p_type", format!("%{}", p.q2_type_suffix)),
            ]),
            "Q2/sel_part",
        );
    ps_eu.hash_join(
        part_sel,
        &[("ps_partkey", "p_partkey")],
        &["p_mfgr"],
        JoinKind::Inner,
        true,
        "Q2/join_part",
    )
}

/// Q2: minimum-cost supplier.
pub(crate) fn q02(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    // Phase A: materialize the candidate rows once.
    let store = materialize_plan(q02_rows_plan(db, p), ctx)?;
    let rows_t = store_to_table(
        "q2rows",
        &[
            "pk", "sk", "cost", "acct", "sname", "nname", "addr", "phone", "comment", "mfgr",
        ],
        &store,
    )?;
    // Phase B: min cost per part, join back, keep the cost == min rows.
    let minc = PlanBuilder::from_table(std::sync::Arc::clone(&rows_t), &["pk", "cost"]).hash_agg(
        &["pk"],
        vec![min_i64("cost")],
        "Q2/agg_min",
    );
    let out = PlanBuilder::from_table(
        rows_t,
        &[
            "pk", "sk", "cost", "acct", "sname", "nname", "addr", "phone", "comment", "mfgr",
        ],
    )
    .hash_join(
        minc,
        &[("pk", "pk")],
        &["min_cost"],
        JoinKind::Inner,
        false,
        "Q2/join_min",
    )
    .filter(
        NamedPred::cmp_col("cost", CmpKind::Eq, "min_cost"),
        "Q2/sel_min",
    )
    .keep(&[
        "acct", "sname", "nname", "pk", "mfgr", "addr", "phone", "comment",
    ])
    .top_n(&[desc("acct"), asc("nname"), asc("sname"), asc("pk")], 100);
    run_plan(out, ctx)
}

/// Q3's logical plan: shipping priority.
pub(crate) fn q03_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    let cust = PlanBuilder::scan(db, "customer", &["c_custkey", "c_mktsegment"]).filter(
        NamedPred::str_eq("c_mktsegment", p.q3_segment),
        "Q3/sel_cust",
    );
    let ord = PlanBuilder::scan(
        db,
        "orders",
        &["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"],
    )
    .filter(
        NamedPred::cmp_val("o_orderdate", CmpKind::Lt, Value::I32(p.q3_date)),
        "Q3/sel_orders",
    )
    .hash_join(
        cust,
        &[("o_custkey", "c_custkey")],
        &[],
        JoinKind::Semi,
        true,
        "Q3/join_cust",
    );
    PlanBuilder::scan(
        db,
        "lineitem",
        &["l_orderkey", "l_shipdate", "l_extendedprice", "l_discount"],
    )
    .filter(
        NamedPred::cmp_val("l_shipdate", CmpKind::Gt, Value::I32(p.q3_date)),
        "Q3/sel_li",
    )
    .hash_join(
        ord,
        &[("l_orderkey", "o_orderkey")],
        &["o_orderdate", "o_shippriority"],
        JoinKind::Inner,
        true,
        "Q3/join_orders",
    )
    .project(
        vec![
            ("l_orderkey", col("l_orderkey")),
            ("o_orderdate", col("o_orderdate")),
            ("o_shippriority", col("o_shippriority")),
            ("rev", revenue("l_extendedprice", "l_discount")),
        ],
        "Q3/rev",
    )
    .hash_agg(
        &["l_orderkey", "o_orderdate", "o_shippriority"],
        vec![sum_f64("rev")],
        "Q3/agg",
    )
    .keep(&["l_orderkey", "sum_rev", "o_orderdate", "o_shippriority"])
    .top_n(&[desc("sum_rev"), asc("o_orderdate")], 10)
}

/// Q3: shipping priority.
pub(crate) fn q03(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    run_plan(q03_plan(db, p), ctx)
}

/// Q4's logical plan: order priority checking (EXISTS as a semi join).
pub(crate) fn q04_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    let li_late = PlanBuilder::scan(
        db,
        "lineitem",
        &["l_orderkey", "l_commitdate", "l_receiptdate"],
    )
    .filter(
        NamedPred::cmp_col("l_commitdate", CmpKind::Lt, "l_receiptdate"),
        "Q4/sel_late",
    );
    PlanBuilder::scan(
        db,
        "orders",
        &["o_orderkey", "o_orderdate", "o_orderpriority"],
    )
    .filter(
        NamedPred::And(vec![
            NamedPred::cmp_val("o_orderdate", CmpKind::Ge, Value::I32(p.q4_date)),
            NamedPred::cmp_val(
                "o_orderdate",
                CmpKind::Lt,
                Value::I32(add_months(p.q4_date, 3)),
            ),
        ]),
        "Q4/sel_orders",
    )
    .hash_join(
        li_late,
        &[("o_orderkey", "l_orderkey")],
        &[],
        JoinKind::Semi,
        true,
        "Q4/semi",
    )
    .hash_agg(&["o_orderpriority"], vec![count()], "Q4/agg")
    .sort(&[asc("o_orderpriority")])
}

/// Q4: order priority checking.
pub(crate) fn q04(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    run_plan(q04_plan(db, p), ctx)
}

/// Q5's logical plan: local supplier volume.
pub(crate) fn q05_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    let region_sel = PlanBuilder::scan(db, "region", &["r_regionkey", "r_name"])
        .filter(NamedPred::str_eq("r_name", p.q5_region), "Q5/sel_region");
    let nation_r = PlanBuilder::scan(db, "nation", &["n_nationkey", "n_name", "n_regionkey"])
        .hash_join(
            region_sel,
            &[("n_regionkey", "r_regionkey")],
            &[],
            JoinKind::Semi,
            false,
            "Q5/join_region",
        );
    let cust = PlanBuilder::scan(db, "customer", &["c_custkey", "c_nationkey"]).hash_join(
        nation_r,
        &[("c_nationkey", "n_nationkey")],
        &["n_name"],
        JoinKind::Inner,
        false,
        "Q5/join_cust_nation",
    );
    let ord = PlanBuilder::scan(db, "orders", &["o_orderkey", "o_custkey", "o_orderdate"])
        .filter(
            NamedPred::And(vec![
                NamedPred::cmp_val("o_orderdate", CmpKind::Ge, Value::I32(p.q5_date)),
                NamedPred::cmp_val(
                    "o_orderdate",
                    CmpKind::Lt,
                    Value::I32(add_years(p.q5_date, 1)),
                ),
            ]),
            "Q5/sel_orders",
        )
        .hash_join(
            cust,
            &[("o_custkey", "c_custkey")],
            &["c_nationkey", "n_name"],
            JoinKind::Inner,
            true,
            "Q5/join_cust",
        );
    let supplier = PlanBuilder::scan(db, "supplier", &["s_suppkey", "s_nationkey"]);
    PlanBuilder::scan(
        db,
        "lineitem",
        &["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"],
    )
    .hash_join(
        ord,
        &[("l_orderkey", "o_orderkey")],
        &["c_nationkey", "n_name"],
        JoinKind::Inner,
        true,
        "Q5/join_orders",
    )
    // Supplier nation must equal customer nation: composite semi join.
    .hash_join(
        supplier,
        &[("l_suppkey", "s_suppkey"), ("c_nationkey", "s_nationkey")],
        &[],
        JoinKind::Semi,
        false,
        "Q5/join_supp",
    )
    .project(
        vec![
            ("n_name", col("n_name")),
            ("rev", revenue("l_extendedprice", "l_discount")),
        ],
        "Q5/rev",
    )
    .hash_agg(&["n_name"], vec![sum_f64("rev")], "Q5/agg")
    .sort(&[desc("sum_rev")])
}

/// Q5: local supplier volume.
pub(crate) fn q05(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    run_plan(q05_plan(db, p), ctx)
}

/// Q6's logical plan: forecasting revenue change.
pub(crate) fn q06_plan(db: &TpchData, p: &Params) -> PlanBuilder {
    PlanBuilder::scan(
        db,
        "lineitem",
        &["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"],
    )
    .filter(
        NamedPred::And(vec![
            NamedPred::cmp_val("l_shipdate", CmpKind::Ge, Value::I32(p.q6_date)),
            NamedPred::cmp_val(
                "l_shipdate",
                CmpKind::Lt,
                Value::I32(add_years(p.q6_date, 1)),
            ),
            NamedPred::between_i64("l_discount", p.q6_discount_pct - 1, p.q6_discount_pct + 1),
            NamedPred::cmp_val("l_quantity", CmpKind::Lt, Value::I32(p.q6_quantity)),
        ]),
        "Q6/sel",
    )
    .project(
        vec![(
            "rev",
            col("l_extendedprice")
                .cast(DataType::F64)
                .mul(pct_frac("l_discount")),
        )],
        "Q6/rev",
    )
    .stream_agg(vec![sum_f64("rev")], "Q6/agg")
}

/// Q6: forecasting revenue change.
pub(crate) fn q06(db: &TpchData, ctx: &QueryContext, p: &Params) -> Result<QueryOutput, ExecError> {
    run_plan(q06_plan(db, p), ctx)
}

#[cfg(test)]
mod tests {
    use super::super::test_support::run;

    #[test]
    fn q01_four_groups_with_sane_averages() {
        let out = run(1);
        // returnflag × linestatus: A/F, N/F, N/O, R/F.
        assert_eq!(out.rows, 4);
        for g in 0..out.rows {
            let avg_qty = out.store.col(8).as_f64()[g]; // avg_price col 9? layout check below
            let _ = avg_qty;
            let count = out.store.col(9).as_i64()[g];
            assert!(count > 0);
            let sum_qty = out.store.col(2).as_i64()[g];
            let aq = out.store.col(6).as_f64()[g];
            assert!((aq - sum_qty as f64 / count as f64).abs() < 1e-6);
            assert!((1.0..=50.0).contains(&aq), "avg qty {aq}");
        }
    }

    #[test]
    fn q02_output_shape() {
        let out = run(2);
        assert!(out.rows <= 100);
        // All result rows are for EUROPE nations.
        for g in 0..out.rows {
            let nname = out.store.col(2).as_str_vec().get(g).to_string();
            assert!(
                ["FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"]
                    .contains(&nname.as_str()),
                "{nname}"
            );
        }
    }

    #[test]
    fn q03_top10_sorted_by_revenue() {
        let out = run(3);
        assert!(out.rows <= 10);
        let rev = out.store.col(1).as_f64();
        for w in rev.windows(2) {
            assert!(w[0] >= w[1], "revenue not descending");
        }
    }

    #[test]
    fn q04_five_priorities() {
        let out = run(4);
        assert!(out.rows <= 5 && out.rows >= 3, "rows {}", out.rows);
        let counts = out.store.col(1).as_i64();
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn q05_asia_nations_only() {
        let out = run(5);
        assert!(out.rows <= 5);
        for g in 0..out.rows {
            let n = out.store.col(0).as_str_vec().get(g).to_string();
            assert!(
                ["INDIA", "INDONESIA", "JAPAN", "CHINA", "VIETNAM"].contains(&n.as_str()),
                "{n}"
            );
        }
        let rev = out.store.col(1).as_f64();
        for w in rev.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn q06_single_positive_revenue() {
        let out = run(6);
        assert_eq!(out.rows, 1);
        let rev = out.store.col(0).as_f64()[0];
        assert!(rev > 0.0, "revenue {rev}");
    }
}
