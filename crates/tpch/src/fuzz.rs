//! Differential plan fuzzer over the TPC-H schema.
//!
//! Property-based testing for the whole query stack: a seeded generator
//! emits random **well-typed** DSL queries ([`Fuzzer::generate`]), each of which
//! is
//!
//! 1. rendered and re-parsed (the parser round-trip property),
//! 2. compiled and checked with [`ma_executor::verify()`] under every
//!    configuration of the differential matrix, and
//! 3. executed under every configuration — 1/2/4 workers, partitioned vs
//!    single-partition aggregation and joins, small vs large vectors —
//!    with all results compared as multisets under a float-tolerant
//!    oracle ([`compare_stores`]).
//!
//! Any disagreement is a bug by construction: the configurations differ
//! only in *how* work is scheduled, never in *what* is computed. Failing
//! queries are shrunk structurally ([`Fuzzer::shrink`]) — drop a stage, a
//! predicate branch, a projection item, a scan column — to the smallest
//! query that still disagrees, which is what lands in
//! `crates/tpch/tests/fuzz_regressions.rs` as a pinned test.
//!
//! Everything is deterministic in `(seed, case)`: generation uses
//! [`SplitMix64`] and the engine runs fixed-flavor, so every failure
//! reproduces from its seed line. See DESIGN.md §10 for the generator's
//! safety rules (why generated queries avoid NaN, ties, and
//! duplicate-key single joins) and the oracle argument.

use std::cmp::Ordering;
use std::fmt::Write as _;
use std::sync::Arc;

use ma_core::{PrimitiveDictionary, SplitMix64};
use ma_executor::frontend::ast::{
    AggFunc, AggItem, CmpRhsAst, ColSpec, ExprAst, Ident, JoinKindAst, Lit, PredAst, Query,
    SelectItem, SortKeyAst, Span, Stage,
};
use ma_executor::frontend::{self, parse};
use ma_executor::ops::FrozenStore;
use ma_executor::{lower, verify, ArithKind, CmpKind, DecodeMode, ExecConfig, QueryContext};
use ma_primitives::build_dictionary;
use ma_vector::{DataType, Vector};

use crate::TpchData;

// ---------------------------------------------------------------------------
// configuration matrix
// ---------------------------------------------------------------------------

/// The differential configuration matrix: worker counts × partitioning
/// regimes × vector sizes, all fixed-flavor (deterministic). Partition
/// thresholds are lowered so partitioned aggregation and join builds
/// actually engage at the small fuzzing scale factor; `single` forces
/// one partition (the sequential build path), `auto` follows the worker
/// count. The first entry is the reference everything else is compared
/// against.
pub fn config_matrix() -> Vec<(String, ExecConfig)> {
    let mut out = Vec::new();
    for workers in [1usize, 2, 4] {
        for (pname, parts) in [("single", 1usize), ("auto", 0usize)] {
            for vs in [1024usize, 64] {
                let mut cfg = ExecConfig::fixed_default()
                    .with_workers(workers)
                    .with_agg_partitions(parts)
                    .with_join_partitions(parts)
                    .with_agg_min_groups(256)
                    .with_join_min_rows(1024);
                cfg.vector_size = vs;
                out.push((format!("{workers}w/{pname}/v{vs}"), cfg));
            }
        }
    }
    out
}

/// Which storage a configuration runs against: the encoded database
/// (the default build, compressed columns decoded morsel-at-a-time) or
/// its raw twin (every column decoded up front at construction).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Storage {
    /// Compressed columns, scan-time decode.
    Encoded,
    /// Uncompressed columns ([`TpchData::decode_all`] twin).
    Raw,
}

/// The [`config_matrix`] extended with the storage dimension: every
/// base configuration runs on encoded storage, then targeted variants
/// cross-check the codecs end-to-end — the reference configuration and
/// the most parallel one each repeated on (a) encoded storage with the
/// scalar reference decoder (primitive decode kernels vs the spec
/// implementation) and (b) the raw uncompressed twin (encode → scan →
/// decode vs never-encoded data). A full cross product would triple the
/// matrix for no extra coverage: storage only affects the scan layer,
/// so one sequential and one maximally-exchanged plan per storage mode
/// already exercise every decode path.
pub fn storage_matrix() -> Vec<(String, ExecConfig, Storage)> {
    let base = config_matrix();
    let seq = base[0].1.clone();
    let par = base.last().expect("config matrix is never empty").1.clone();
    let mut out: Vec<(String, ExecConfig, Storage)> = base
        .into_iter()
        .map(|(name, cfg)| (name, cfg, Storage::Encoded))
        .collect();
    for (tag, cfg) in [("seq", seq), ("par", par)] {
        out.push((
            format!("{tag}/refdecode"),
            cfg.clone().with_decode(DecodeMode::Reference),
            Storage::Encoded,
        ));
        out.push((format!("{tag}/raw"), cfg, Storage::Raw));
    }
    out
}

// ---------------------------------------------------------------------------
// result oracle
// ---------------------------------------------------------------------------

/// Relative tolerance for float columns. Partitioned and vector-resized
/// plans sum floats in different orders; genuine divergences (wrong
/// rows, wrong groups) are orders of magnitude larger than
/// reassociation noise.
const FLOAT_RTOL: f64 = 1e-9;

/// Groups rows by their discrete (integer/string) column values; each
/// group holds the float-column tuples of its rows, sorted. Two stores
/// with equal buckets are equal as multisets up to float tolerance.
fn buckets(s: &FrozenStore) -> std::collections::BTreeMap<String, Vec<Vec<f64>>> {
    let mut map: std::collections::BTreeMap<String, Vec<Vec<f64>>> = Default::default();
    for r in 0..s.rows() {
        let mut key = String::new();
        let mut floats = Vec::new();
        for c in 0..s.types().len() {
            match s.col(c) {
                Vector::I16(v) => write!(key, "{}\u{1}", v[r]).unwrap(),
                Vector::I32(v) => write!(key, "{}\u{1}", v[r]).unwrap(),
                Vector::I64(v) => write!(key, "{}\u{1}", v[r]).unwrap(),
                Vector::Str(sv) => write!(key, "{}\u{1}", sv.get(r)).unwrap(),
                Vector::F64(v) => floats.push(v[r]),
            }
        }
        map.entry(key).or_default().push(floats);
    }
    for b in map.values_mut() {
        b.sort_by(|x, y| {
            for (a, b) in x.iter().zip(y.iter()) {
                match a.total_cmp(b) {
                    Ordering::Equal => {}
                    o => return o,
                }
            }
            Ordering::Equal
        });
    }
    map
}

fn floats_close(x: f64, y: f64) -> bool {
    // Bitwise equality first: `inf - inf` is NaN, which fails any
    // tolerance check, yet equal infinities are genuinely equal — a
    // global min/max over zero rows legally yields its ±inf fold
    // identity in every configuration (seed 0xF022 cases 3263/4718/8183,
    // pinned in tests/fuzz_regressions.rs).
    x.to_bits() == y.to_bits() || (x - y).abs() <= FLOAT_RTOL * x.abs().max(y.abs()).max(1.0)
}

/// Compares two materialized results as row multisets: discrete columns
/// exactly, float columns within a fixed relative tolerance
/// (bucketed by the discrete columns, sorted within each bucket).
/// Multiset — not ordered — comparison: the engine's sort is not stable
/// across exchange layouts, and the generator makes every ordering-
/// sensitive operator (`top`) a total order anyway.
pub fn compare_stores(
    name_a: &str,
    a: &FrozenStore,
    name_b: &str,
    b: &FrozenStore,
) -> Result<(), String> {
    if a.types() != b.types() {
        return Err(format!(
            "schema diverged: {name_a} {:?} vs {name_b} {:?}",
            a.types(),
            b.types()
        ));
    }
    if a.rows() != b.rows() {
        return Err(format!(
            "row count diverged: {name_a}={} vs {name_b}={}",
            a.rows(),
            b.rows()
        ));
    }
    let (ba, bb) = (buckets(a), buckets(b));
    for (ka, va) in &ba {
        let Some(vb) = bb.get(ka) else {
            return Err(format!(
                "group {:?} present under {name_a}, absent under {name_b}",
                ka.replace('\u{1}', "|")
            ));
        };
        if va.len() != vb.len() {
            return Err(format!(
                "group {:?} multiplicity diverged: {name_a}={} vs {name_b}={}",
                ka.replace('\u{1}', "|"),
                va.len(),
                vb.len()
            ));
        }
        for (ra, rb) in va.iter().zip(vb.iter()) {
            for (&x, &y) in ra.iter().zip(rb.iter()) {
                if !floats_close(x, y) {
                    return Err(format!(
                        "float value diverged in group {:?}: {name_a}={x} vs {name_b}={y}",
                        ka.replace('\u{1}', "|")
                    ));
                }
            }
        }
    }
    for kb in bb.keys() {
        if !ba.contains_key(kb) {
            return Err(format!(
                "group {:?} present under {name_b}, absent under {name_a}",
                kb.replace('\u{1}', "|")
            ));
        }
    }
    Ok(())
}

/// Checks a materialized result against the abstract interpreter's
/// derived facts: row count within the bound, every value inside its
/// column's interval, distinct counts within the NDV cap, and
/// all-distinct proofs honored. Runs on **every** fuzz execution, so the
/// 10k-case sweeps double as a soundness property test for
/// [`ma_executor::analyze()`]. (Executions that trap never reach this
/// check — trapped runs are exempt from the soundness contract.)
pub fn check_soundness(facts: &ma_executor::Facts, store: &FrozenStore) -> Result<(), String> {
    use ma_executor::AbsDomain;
    use std::collections::HashSet;
    if store.rows() > facts.rows {
        return Err(format!(
            "row bound violated: materialized {} rows, proved ≤ {}",
            store.rows(),
            facts.rows
        ));
    }
    if store.types().len() != facts.cols.len() {
        return Err(format!(
            "fact arity {} != result arity {}",
            facts.cols.len(),
            store.types().len()
        ));
    }
    for (i, fact) in facts.cols.iter().enumerate() {
        let (distinct, oob): (usize, Option<String>) = match store.col(i) {
            Vector::I16(v) => int_soundness(v.iter().map(|&x| i64::from(x)), &fact.domain),
            Vector::I32(v) => int_soundness(v.iter().map(|&x| i64::from(x)), &fact.domain),
            Vector::I64(v) => int_soundness(v.iter().copied(), &fact.domain),
            Vector::F64(v) => {
                let AbsDomain::Float { lo, hi, finite } = fact.domain else {
                    return Err(format!("col {i}: f64 result under {} fact", fact.domain));
                };
                let mut seen = HashSet::new();
                let mut bad = None;
                for &x in v.iter() {
                    seen.insert(x.to_bits());
                    if x.is_finite() {
                        if x < lo || x > hi {
                            bad = bad.or(Some(format!("{x} ∉ [{lo}, {hi}]")));
                        }
                    } else if finite {
                        bad = bad.or(Some(format!("{x} in a proven-finite column")));
                    }
                }
                (seen.len(), bad)
            }
            Vector::Str(v) => {
                let mut seen = HashSet::new();
                for j in 0..store.rows() {
                    seen.insert(v.get(j).as_bytes().to_vec());
                }
                (seen.len(), None)
            }
        };
        if let Some(detail) = oob {
            return Err(format!("col {i}: value escaped its interval: {detail}"));
        }
        if distinct > fact.ndv {
            return Err(format!(
                "col {i}: {} distinct values, proved ≤ {}",
                distinct, fact.ndv
            ));
        }
        if fact.distinct && distinct < store.rows() {
            return Err(format!(
                "col {i}: proven all-distinct but only {} distinct over {} rows",
                distinct,
                store.rows()
            ));
        }
    }
    Ok(())
}

/// Interval + NDV walk for an integer column (i16/i32 widened to i64).
fn int_soundness(
    values: impl Iterator<Item = i64>,
    domain: &ma_executor::AbsDomain,
) -> (usize, Option<String>) {
    use ma_executor::AbsDomain;
    use std::collections::HashSet;
    let AbsDomain::Int { lo, hi } = *domain else {
        return (0, Some(format!("integer result under {domain} fact")));
    };
    let mut seen = HashSet::new();
    let mut bad = None;
    for x in values {
        seen.insert(x);
        if x < lo || x > hi {
            bad = bad.or(Some(format!("{x} ∉ [{lo}, {hi}]")));
        }
    }
    (seen.len(), bad)
}

// ---------------------------------------------------------------------------
// failures and reports
// ---------------------------------------------------------------------------

/// Why a generated query failed its differential check. The distinction
/// matters to the shrinker: a candidate only counts as a smaller
/// reproduction if it fails the *same way*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckFailKind {
    /// `parse(display(ast)) != ast` — a front-end printing/parsing bug.
    RoundTrip,
    /// The generated query did not compile — a generator bug.
    Compile,
    /// [`ma_executor::verify()`] rejected a lowered configuration.
    Verify,
    /// A configuration failed at runtime.
    Exec,
    /// Two configurations disagreed on the result.
    Divergence,
    /// A materialized result escaped the abstract interpreter's derived
    /// facts — a value outside its interval, more rows than the bound,
    /// more distinct values than the NDV cap, or a duplicate in a
    /// proven-distinct column. Always an analyzer bug: bounds may widen,
    /// never lie.
    Unsound,
    /// An operator's recorded high-water resident bytes exceeded the
    /// planner's proven peak-byte bound for that instance — a cost-model
    /// bug (`ma_executor::cost`): byte bounds may overshoot, never
    /// undershoot.
    MemBound,
}

/// A failed differential check.
#[derive(Debug, Clone)]
pub struct CheckFail {
    /// Failure class.
    pub kind: CheckFailKind,
    /// Human-readable detail (config names, diverging values, ...).
    pub detail: String,
}

impl std::fmt::Display for CheckFail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.detail)
    }
}

/// One failing case of a fuzzing run, with its shrunk reproduction.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Case index within the run.
    pub case: u64,
    /// Run seed (the query regenerates from `(seed, case)`).
    pub seed: u64,
    /// The generated query text.
    pub query: String,
    /// The smallest query that still fails the same way.
    pub minimized: String,
    /// What diverged.
    pub detail: String,
}

/// Summary of a fuzzing run.
#[derive(Debug)]
pub struct FuzzReport {
    /// Run seed.
    pub seed: u64,
    /// Cases executed.
    pub cases: u64,
    /// Failing cases (empty on a clean sweep).
    pub failures: Vec<Failure>,
}

impl FuzzReport {
    /// True when every case passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

// ---------------------------------------------------------------------------
// the fuzzer
// ---------------------------------------------------------------------------

/// Differential fuzzer over a generated TPC-H database.
pub struct Fuzzer {
    db: Arc<TpchData>,
    raw_db: Arc<TpchData>,
    dict: Arc<PrimitiveDictionary>,
    configs: Vec<(String, ExecConfig, Storage)>,
}

impl Fuzzer {
    /// A fuzzer over `db` using the full [`storage_matrix`]. The raw
    /// storage twin is derived from `db` by decoding every column, so
    /// both storage modes hold identical values by construction.
    pub fn new(db: Arc<TpchData>) -> Self {
        let raw_db = Arc::new(db.decode_all());
        Fuzzer {
            db,
            raw_db,
            dict: Arc::new(build_dictionary()),
            configs: storage_matrix(),
        }
    }

    /// The generated query for `(seed, case)` — pure function of its
    /// arguments and the database schema.
    pub fn generate(&self, seed: u64, case: u64) -> Query {
        let mut g = Gen {
            db: &self.db,
            rng: SplitMix64::new(seed ^ case.wrapping_mul(0xA24B_AED4_963E_E407)),
            fresh: 0,
        };
        g.query()
    }

    /// Compiles and runs `ast` under one configuration against the
    /// chosen storage mode.
    fn run_one(
        &self,
        ast: &Query,
        cfg: &ExecConfig,
        storage: Storage,
    ) -> Result<FrozenStore, CheckFail> {
        let db = match storage {
            Storage::Encoded => &self.db,
            Storage::Raw => &self.raw_db,
        };
        let pb = frontend::compile(ast, db.as_ref()).map_err(|e| CheckFail {
            kind: CheckFailKind::Compile,
            detail: e.to_string(),
        })?;
        let plan = pb.build().map_err(|e| CheckFail {
            kind: CheckFailKind::Compile,
            detail: e.to_string(),
        })?;
        // Release builds skip the debug-assertion verifier inside
        // `lower`; the fuzzer checks every configuration explicitly.
        verify(&plan, cfg).map_err(|e| CheckFail {
            kind: CheckFailKind::Verify,
            detail: e.to_string(),
        })?;
        let ctx = QueryContext::new(Arc::clone(&self.dict), cfg.clone());
        let mut op = lower(&plan, &ctx).map_err(|e| CheckFail {
            kind: CheckFailKind::Exec,
            detail: e.to_string(),
        })?;
        let store = ma_executor::ops::materialize(op.as_mut()).map_err(|e| CheckFail {
            kind: CheckFailKind::Exec,
            detail: e.to_string(),
        })?;
        // Soundness property: the materialized result must sit inside the
        // abstract interpreter's derived facts for this plan.
        check_soundness(&ma_executor::analyze(&plan).facts, &store).map_err(|detail| {
            CheckFail {
                kind: CheckFailKind::Unsound,
                detail,
            }
        })?;
        // Byte-accounting oracle: every tracked operator instance must
        // stay within the peak-byte bound the planner proved for it.
        for r in ctx.mem_reports() {
            if r.high_water > r.bound {
                return Err(CheckFail {
                    kind: CheckFailKind::MemBound,
                    detail: format!(
                        "{}: recorded {} resident bytes, proved \u{2264} {}",
                        r.label, r.high_water, r.bound
                    ),
                });
            }
        }
        Ok(store)
    }

    /// The full differential check for one query: round-trip, compile,
    /// verify and execute under every configuration, compare everything
    /// against the first configuration's result.
    pub fn check_ast(&self, ast: &Query) -> Result<(), CheckFail> {
        let text = ast.to_string();
        match parse(&text) {
            Ok(reparsed) if &reparsed == ast => {}
            Ok(_) => {
                return Err(CheckFail {
                    kind: CheckFailKind::RoundTrip,
                    detail: format!("reparse produced a different AST for {text:?}"),
                })
            }
            Err(e) => {
                return Err(CheckFail {
                    kind: CheckFailKind::RoundTrip,
                    detail: format!("canonical text does not reparse: {e} in {text:?}"),
                })
            }
        }
        let (ref_name, ref_cfg, ref_storage) = &self.configs[0];
        let reference = self.run_one(ast, ref_cfg, *ref_storage)?;
        for (name, cfg, storage) in &self.configs[1..] {
            let got = self.run_one(ast, cfg, *storage)?;
            compare_stores(ref_name, &reference, name, &got).map_err(|detail| CheckFail {
                kind: CheckFailKind::Divergence,
                detail,
            })?;
        }
        Ok(())
    }

    /// Parses and differentially checks query text (the entry point for
    /// pinned regressions).
    pub fn check_text(&self, text: &str) -> Result<(), CheckFail> {
        let ast = parse(text).map_err(|e| CheckFail {
            kind: CheckFailKind::Compile,
            detail: e.to_string(),
        })?;
        // Skip the round-trip comparison against hand-written text (it
        // may use non-canonical spellings); everything else applies.
        let (ref_name, ref_cfg, ref_storage) = &self.configs[0];
        let reference = self.run_one(&ast, ref_cfg, *ref_storage)?;
        for (name, cfg, storage) in &self.configs[1..] {
            let got = self.run_one(&ast, cfg, *storage)?;
            compare_stores(ref_name, &reference, name, &got).map_err(|detail| CheckFail {
                kind: CheckFailKind::Divergence,
                detail,
            })?;
        }
        Ok(())
    }

    /// Structurally shrinks a failing query: repeatedly tries dropping a
    /// stage, a predicate branch, a projection/aggregate/payload item or
    /// a scan column, keeping any candidate that still fails with the
    /// same [`CheckFailKind`]. Fixpoint iteration; every accepted step
    /// strictly removes a node, so it terminates.
    pub fn shrink(&self, ast: &Query, kind: &CheckFailKind) -> Query {
        let mut cur = ast.clone();
        loop {
            let mut progressed = false;
            for cand in shrink_candidates(&cur) {
                if matches!(&self.check_ast(&cand), Err(f) if f.kind == *kind) {
                    cur = cand;
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                return cur;
            }
        }
    }

    /// Runs `cases` differential checks from `seed`, shrinking every
    /// failure. `progress(done, failures)` is called after each case.
    pub fn run(&self, seed: u64, cases: u64, mut progress: impl FnMut(u64, usize)) -> FuzzReport {
        let mut failures = Vec::new();
        for case in 0..cases {
            let ast = self.generate(seed, case);
            if let Err(fail) = self.check_ast(&ast) {
                let minimized = self.shrink(&ast, &fail.kind);
                failures.push(Failure {
                    case,
                    seed,
                    query: ast.to_string(),
                    minimized: minimized.to_string(),
                    detail: fail.to_string(),
                });
            }
            progress(case + 1, failures.len());
        }
        FuzzReport {
            seed,
            cases,
            failures,
        }
    }
}

// ---------------------------------------------------------------------------
// shrinking
// ---------------------------------------------------------------------------

/// All single-step simplifications of `q`, most aggressive first.
/// Candidates may fail to compile (a dropped stage can orphan a column
/// reference); the shrinker filters by re-checking.
fn shrink_candidates(q: &Query) -> Vec<Query> {
    let mut out = Vec::new();
    // Drop whole stages, last first (later stages depend on earlier
    // names, so suffix-dropping compiles most often).
    for i in (0..q.stages.len()).rev() {
        let mut c = q.clone();
        c.stages.remove(i);
        out.push(c);
    }
    for (i, st) in q.stages.iter().enumerate() {
        let mut replace = |stage: Stage| {
            let mut c = q.clone();
            c.stages[i] = stage;
            out.push(c);
        };
        match st {
            Stage::Where(PredAst::And(ps)) | Stage::Where(PredAst::Or(ps)) => {
                for p in ps {
                    replace(Stage::Where(p.clone()));
                }
            }
            Stage::Select(items) if items.len() > 1 => {
                for k in 0..items.len() {
                    let mut it = items.clone();
                    it.remove(k);
                    replace(Stage::Select(it));
                }
            }
            Stage::Agg { keys, aggs } => {
                for k in 0..keys.len() {
                    let mut ks = keys.clone();
                    ks.remove(k);
                    replace(Stage::Agg {
                        keys: ks,
                        aggs: aggs.clone(),
                    });
                }
                if aggs.len() > 1 {
                    for k in 0..aggs.len() {
                        let mut ags = aggs.clone();
                        ags.remove(k);
                        replace(Stage::Agg {
                            keys: keys.clone(),
                            aggs: ags,
                        });
                    }
                }
            }
            Stage::Join {
                kind,
                query,
                on,
                payload,
                bloom,
            } => {
                for k in 0..payload.len() {
                    let mut ps = payload.clone();
                    ps.remove(k);
                    replace(Stage::Join {
                        kind: *kind,
                        query: query.clone(),
                        on: on.clone(),
                        payload: ps,
                        bloom: *bloom,
                    });
                }
                if *bloom {
                    replace(Stage::Join {
                        kind: *kind,
                        query: query.clone(),
                        on: on.clone(),
                        payload: payload.clone(),
                        bloom: false,
                    });
                }
                for sub in shrink_candidates(query) {
                    replace(Stage::Join {
                        kind: *kind,
                        query: Box::new(sub),
                        on: on.clone(),
                        payload: payload.clone(),
                        bloom: *bloom,
                    });
                }
            }
            Stage::JoinSingle { query, on, payload } => {
                if payload.len() > 1 {
                    for k in 0..payload.len() {
                        let mut ps = payload.clone();
                        ps.remove(k);
                        replace(Stage::JoinSingle {
                            query: query.clone(),
                            on: on.clone(),
                            payload: ps,
                        });
                    }
                }
                for sub in shrink_candidates(query) {
                    replace(Stage::JoinSingle {
                        query: Box::new(sub),
                        on: on.clone(),
                        payload: payload.clone(),
                    });
                }
            }
            Stage::MergeJoin { query, on, payload } => {
                for k in 0..payload.len() {
                    let mut ps = payload.clone();
                    ps.remove(k);
                    replace(Stage::MergeJoin {
                        query: query.clone(),
                        on: on.clone(),
                        payload: ps,
                    });
                }
                for sub in shrink_candidates(query) {
                    replace(Stage::MergeJoin {
                        query: Box::new(sub),
                        on: on.clone(),
                        payload: payload.clone(),
                    });
                }
            }
            Stage::Order(keys) if keys.len() > 1 => {
                for k in 0..keys.len() {
                    let mut ks = keys.clone();
                    ks.remove(k);
                    replace(Stage::Order(ks));
                }
            }
            Stage::Top { n, keys } if keys.len() > 1 => {
                for k in 0..keys.len() {
                    let mut ks = keys.clone();
                    ks.remove(k);
                    replace(Stage::Top { n: *n, keys: ks });
                }
            }
            _ => {}
        }
    }
    if q.cols.len() > 1 {
        for i in (0..q.cols.len()).rev() {
            let mut c = q.clone();
            c.cols.remove(i);
            out.push(c);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// query generation
// ---------------------------------------------------------------------------

/// Tables whose first column is a unique (primary) key — the only legal
/// build sides for `join single` and left sides for `merge join`, whose
/// semantics are arrival-order-dependent under duplicate keys.
const PK_TABLES: [&str; 6] = ["region", "nation", "supplier", "customer", "part", "orders"];

/// Small tables safe as build sides for *randomly*-keyed hash joins
/// (bounded duplicate fan-out keeps worst-case output ≈ 5 × probe).
const SMALL_TABLES: [&str; 3] = ["region", "nation", "supplier"];

/// Source-table choices, weighted toward mid-size tables so debug-mode
/// sweeps stay fast while big scans still appear.
const SOURCES: [(&str, usize); 8] = [
    ("region", 1),
    ("nation", 2),
    ("supplier", 3),
    ("customer", 3),
    ("part", 3),
    ("partsupp", 3),
    ("orders", 3),
    ("lineitem", 4),
];

fn is_int(ty: DataType) -> bool {
    matches!(ty, DataType::I16 | DataType::I32 | DataType::I64)
}

/// One column of the schema the generator is tracking through the
/// pipeline, mirroring exactly what the builder will compute.
#[derive(Clone)]
struct GenCol {
    name: String,
    ty: DataType,
    /// Still the base table's clustering (first) column, reached only
    /// through filters and pass-through projections — mirrors the
    /// builder's `clustered_key_chain`, which gates merge joins.
    clustered: bool,
    /// Untransformed base column `(table, column)` — its domain is the
    /// column's actual data, which is where comparison literals are
    /// sampled from so predicates have useful selectivity.
    base: Option<(&'static str, String)>,
}

struct Gen<'a> {
    db: &'a TpchData,
    rng: SplitMix64,
    /// Fresh-name counter (`e0`, `a1`, `j2`, ... one namespace).
    fresh: usize,
}

impl Gen<'_> {
    fn fresh(&mut self, prefix: &str) -> String {
        let n = format!("{prefix}{}", self.fresh);
        self.fresh += 1;
        n
    }

    fn chance(&mut self, p: f64) -> bool {
        self.rng.next_f64() < p
    }

    /// `min..=max` inclusive.
    fn range(&mut self, min: usize, max: usize) -> usize {
        min + self.rng.gen_range(max - min + 1)
    }

    /// A distinct index subset of `0..n`, in ascending order.
    fn subset(&mut self, n: usize, min: usize, max: usize) -> Vec<usize> {
        let k = self.range(min.min(n), max.min(n));
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..idx.len()).rev() {
            idx.swap(i, self.rng.gen_range(i + 1));
        }
        idx.truncate(k.max(1));
        idx.sort_unstable();
        idx
    }

    /// A literal sampled from the column's actual data (a random row),
    /// so predicates hit real values.
    fn sample_lit(&mut self, table: &str, col: &str) -> Lit {
        let t = self.db.table(table).expect("generator table");
        let c = t.column(col).expect("generator column");
        let r = self.rng.gen_range(t.rows());
        match c.slice_vector(r, 1) {
            Vector::I16(v) => Lit::Int(v[0] as i64),
            Vector::I32(v) => Lit::Int(v[0] as i64),
            Vector::I64(v) => Lit::Int(v[0]),
            Vector::F64(v) => Lit::Float(v[0]),
            Vector::Str(s) => Lit::Str(s.get(0).to_string()),
        }
    }

    /// The tracked schema of a fresh scan of `table`'s columns `idx`.
    fn scan_cols(&self, table: &'static str, idx: &[usize]) -> Vec<GenCol> {
        let t = self.db.table(table).expect("generator table");
        idx.iter()
            .map(|&i| GenCol {
                name: t.column_names()[i].clone(),
                ty: t.column_at(i).data_type(),
                clustered: i == 0,
                base: Some((table, t.column_names()[i].clone())),
            })
            .collect()
    }

    /// Weighted source-table pick.
    fn source_table(&mut self) -> &'static str {
        let total: usize = SOURCES.iter().map(|(_, w)| w).sum();
        let mut roll = self.rng.gen_range(total);
        for (name, w) in SOURCES {
            if roll < w {
                return name;
            }
            roll -= w;
        }
        unreachable!("weights cover the roll")
    }

    // -- toplevel ----------------------------------------------------------

    fn query(&mut self) -> Query {
        let table = self.source_table();
        let t = self.db.table(table).expect("generator table");
        let idx = self.subset(t.column_names().len(), 2, 6);
        let mut cols = self.scan_cols(table, &idx);
        let mut q = Query {
            table: Ident::synth(table),
            cols: idx
                .iter()
                .map(|&i| ColSpec::synth(&t.column_names()[i]))
                .collect(),
            stages: Vec::new(),
        };
        let mut joins = 0usize;
        for _ in 0..self.range(1, 4) {
            if let Some(stage) = self.stage(&mut cols, &mut joins) {
                q.stages.push(stage);
            }
        }
        q
    }

    /// One random stage valid against the tracked schema, updating the
    /// schema to the stage's output. `None` when the roll found no
    /// applicable stage (e.g. a join after the join budget is spent).
    fn stage(&mut self, cols: &mut Vec<GenCol>, joins: &mut usize) -> Option<Stage> {
        // (weight, kind) pairs; kinds guard their own applicability.
        let has_pred = cols.iter().any(|c| c.base.is_some()) || self.col_pair(cols).is_some();
        let has_num = cols.iter().any(|c| c.ty != DataType::Str);
        let has_int = cols.iter().any(|c| is_int(c.ty));
        let has_clustered_int = cols.iter().any(|c| c.clustered && is_int(c.ty));
        let no_floats = cols.iter().all(|c| c.ty != DataType::F64);
        let mut picks: Vec<(usize, u8)> = Vec::new();
        if has_pred {
            picks.push((4, 0)); // where
        }
        if has_num {
            picks.push((3, 1)); // select
        }
        picks.push((1, 2)); // keep
        picks.push((3, 3)); // agg
        if has_int && *joins < 2 {
            picks.push((3, 4)); // hash join
            picks.push((1, 5)); // single join
        }
        if has_clustered_int && *joins < 2 {
            picks.push((2, 6)); // merge join
        }
        picks.push((1, 7)); // order
        if no_floats {
            picks.push((1, 8)); // top
        }
        let total: usize = picks.iter().map(|(w, _)| w).sum();
        let mut roll = self.rng.gen_range(total);
        let kind = picks
            .iter()
            .find(|(w, _)| {
                if roll < *w {
                    true
                } else {
                    roll -= w;
                    false
                }
            })
            .map(|(_, k)| *k)
            .expect("weights cover the roll");
        match kind {
            0 => Some(Stage::Where(self.pred(cols))),
            1 => Some(self.select(cols)),
            2 => Some(self.keep(cols)),
            3 => Some(self.agg(cols)),
            4 => {
                *joins += 1;
                self.hash_join(cols)
            }
            5 => {
                *joins += 1;
                self.single_join(cols)
            }
            6 => {
                *joins += 1;
                self.merge_join(cols)
            }
            7 => Some(self.order(cols)),
            _ => Some(self.top(cols)),
        }
    }

    // -- predicates --------------------------------------------------------

    /// Two distinct same-type non-string columns, if any.
    fn col_pair(&self, cols: &[GenCol]) -> Option<(usize, usize)> {
        for i in 0..cols.len() {
            for j in 0..cols.len() {
                if i != j && cols[i].ty == cols[j].ty && cols[i].ty != DataType::Str {
                    return Some((i, j));
                }
            }
        }
        None
    }

    fn pred(&mut self, cols: &[GenCol]) -> PredAst {
        match self.rng.gen_range(10) {
            0..=5 => self.atom(cols),
            6 | 7 => PredAst::And(vec![self.atom(cols), self.atom(cols)]),
            8 => PredAst::Or(vec![self.atom(cols), self.atom(cols)]),
            _ => PredAst::And(vec![
                self.atom(cols),
                PredAst::Or(vec![self.atom(cols), self.atom(cols)]),
            ]),
        }
    }

    fn atom(&mut self, cols: &[GenCol]) -> PredAst {
        // Column-vs-column comparison ~20% of the time when possible.
        if self.chance(0.2) {
            if let Some((i, j)) = self.col_pair(cols) {
                return PredAst::Cmp {
                    col: Ident::synth(&cols[i].name),
                    op: self.cmp_op(),
                    rhs: CmpRhsAst::Col(Ident::synth(&cols[j].name)),
                };
            }
        }
        let based: Vec<&GenCol> = cols.iter().filter(|c| c.base.is_some()).collect();
        if based.is_empty() {
            // No base column to sample from: compare a numeric column
            // against a small safe constant (selectivity is arbitrary
            // but the query stays well-typed).
            let nums: Vec<&GenCol> = cols.iter().filter(|c| c.ty != DataType::Str).collect();
            let c = nums[self.rng.gen_range(nums.len())];
            let lit = match c.ty {
                DataType::F64 => Lit::Float([0.0, 1.0, 100.0][self.rng.gen_range(3)]),
                _ => Lit::Int([0, 1, 7, 100][self.rng.gen_range(4)]),
            };
            return PredAst::Cmp {
                col: Ident::synth(&c.name),
                op: self.cmp_op(),
                rhs: CmpRhsAst::Lit(lit, Span::default()),
            };
        }
        let c = based[self.rng.gen_range(based.len())].clone();
        let (table, src) = c.base.as_ref().expect("filtered to based");
        let lit = self.sample_lit(table, src);
        if c.ty == DataType::Str {
            let Lit::Str(s) = &lit else {
                unreachable!("string column samples a string")
            };
            match self.rng.gen_range(4) {
                0 => PredAst::Like {
                    col: Ident::synth(&c.name),
                    pattern: format!("{}%", s.chars().take(3).collect::<String>()),
                    negated: self.chance(0.3),
                },
                1 => {
                    let extra = self.sample_lit(table, src);
                    let Lit::Str(s2) = extra else {
                        unreachable!("string column samples a string")
                    };
                    PredAst::InStr {
                        col: Ident::synth(&c.name),
                        values: vec![s.clone(), s2],
                    }
                }
                _ => PredAst::Cmp {
                    col: Ident::synth(&c.name),
                    op: if self.chance(0.5) {
                        CmpKind::Eq
                    } else {
                        CmpKind::Ne
                    },
                    rhs: CmpRhsAst::Lit(lit, Span::default()),
                },
            }
        } else {
            PredAst::Cmp {
                col: Ident::synth(&c.name),
                op: self.cmp_op(),
                rhs: CmpRhsAst::Lit(lit, Span::default()),
            }
        }
    }

    fn cmp_op(&mut self) -> CmpKind {
        [
            CmpKind::Lt,
            CmpKind::Le,
            CmpKind::Gt,
            CmpKind::Ge,
            CmpKind::Eq,
            CmpKind::Ne,
        ][self.rng.gen_range(6)]
    }

    // -- projections -------------------------------------------------------

    fn select(&mut self, cols: &mut Vec<GenCol>) -> Stage {
        let pass_idx = self.subset(cols.len(), 1, 3);
        let mut items: Vec<SelectItem> = pass_idx
            .iter()
            .map(|&i| SelectItem {
                name: Ident::synth(&cols[i].name),
                expr: ExprAst::Col(Ident::synth(&cols[i].name)),
            })
            .collect();
        let mut out: Vec<GenCol> = pass_idx.iter().map(|&i| cols[i].clone()).collect();
        let nums: Vec<GenCol> = cols
            .iter()
            .filter(|c| c.ty != DataType::Str)
            .cloned()
            .collect();
        let strs: Vec<GenCol> = cols
            .iter()
            .filter(|c| c.ty == DataType::Str)
            .cloned()
            .collect();
        for _ in 0..self.range(1, 2) {
            if !strs.is_empty() && self.chance(0.25) {
                let c = &strs[self.rng.gen_range(strs.len())];
                let name = self.fresh("e");
                items.push(SelectItem {
                    name: Ident::synth(&name),
                    expr: ExprAst::Substr {
                        col: Ident::synth(&c.name),
                        start: self.rng.gen_range(4) as u64,
                        len: 1 + self.rng.gen_range(6) as u64,
                        span: Span::default(),
                    },
                });
                out.push(GenCol {
                    name,
                    ty: DataType::Str,
                    clustered: false,
                    base: None,
                });
            } else if !nums.is_empty() {
                let c = nums[self.rng.gen_range(nums.len())].clone();
                let name = self.fresh("e");
                let (expr, ty) = self.num_expr(&c, &nums);
                items.push(SelectItem {
                    name: Ident::synth(&name),
                    expr,
                });
                out.push(GenCol {
                    name,
                    ty,
                    clustered: false,
                    base: None,
                });
            }
        }
        *cols = out;
        Stage::Select(items)
    }

    /// A small arithmetic expression rooted at `c`. Integer inputs are
    /// widened to `i64` first (no narrow-width overflow), multipliers
    /// stay small, division is by a nonzero literal only (no NaN, no
    /// divide-by-zero trap) — divergences should come from the engine,
    /// not from undefined arithmetic.
    fn num_expr(&mut self, c: &GenCol, nums: &[GenCol]) -> (ExprAst, DataType) {
        let base = ExprAst::Col(Ident::synth(&c.name));
        let (mut expr, ty) = match c.ty {
            DataType::I64 => (base, DataType::I64),
            DataType::I16 | DataType::I32 => (
                ExprAst::Cast {
                    to: DataType::I64,
                    inner: Box::new(base),
                    span: Span::default(),
                },
                DataType::I64,
            ),
            _ => (base, DataType::F64),
        };
        for _ in 0..self.range(1, 2) {
            let (op, rhs) = self.arith_rhs(ty, nums);
            expr = ExprAst::Binary {
                op,
                lhs: Box::new(expr),
                rhs: Box::new(rhs),
            };
        }
        // Cast the finished integer expression to f64 sometimes, for
        // float pipeline coverage downstream.
        if ty == DataType::I64 && self.chance(0.25) {
            (
                ExprAst::Cast {
                    to: DataType::F64,
                    inner: Box::new(expr),
                    span: Span::default(),
                },
                DataType::F64,
            )
        } else {
            (expr, ty)
        }
    }

    fn arith_rhs(&mut self, ty: DataType, nums: &[GenCol]) -> (ArithKind, ExprAst) {
        // Column rhs (same evaluated type) ~25% of the time; only for
        // add/sub so products cannot overflow i64.
        if self.chance(0.25) {
            let same: Vec<&GenCol> = nums
                .iter()
                .filter(|c| {
                    if ty == DataType::F64 {
                        c.ty == DataType::F64
                    } else {
                        is_int(c.ty)
                    }
                })
                .collect();
            if !same.is_empty() {
                let c = same[self.rng.gen_range(same.len())];
                let op = if self.chance(0.5) {
                    ArithKind::Add
                } else {
                    ArithKind::Sub
                };
                let col = ExprAst::Col(Ident::synth(&c.name));
                let rhs = if ty == DataType::I64 && c.ty != DataType::I64 {
                    ExprAst::Cast {
                        to: DataType::I64,
                        inner: Box::new(col),
                        span: Span::default(),
                    }
                } else {
                    col
                };
                return (op, rhs);
            }
        }
        let (op, lit) = if ty == DataType::F64 {
            match self.rng.gen_range(4) {
                0 => (ArithKind::Add, Lit::Float(1.5)),
                1 => (ArithKind::Sub, Lit::Float(100.0)),
                2 => (ArithKind::Mul, Lit::Float(0.01)),
                _ => (ArithKind::Div, Lit::Float(4.0)),
            }
        } else {
            match self.rng.gen_range(4) {
                0 => (
                    ArithKind::Add,
                    Lit::Int(1 + self.rng.gen_range(1000) as i64),
                ),
                1 => (
                    ArithKind::Sub,
                    Lit::Int(1 + self.rng.gen_range(1000) as i64),
                ),
                2 => (ArithKind::Mul, Lit::Int(self.rng.gen_range(9) as i64)),
                _ => (ArithKind::Div, Lit::Int(1 + self.rng.gen_range(9) as i64)),
            }
        };
        (op, ExprAst::Lit(lit, Span::default()))
    }

    fn keep(&mut self, cols: &mut Vec<GenCol>) -> Stage {
        let idx = self.subset(cols.len(), 1, cols.len());
        let kept: Vec<GenCol> = idx.iter().map(|&i| cols[i].clone()).collect();
        let stage = Stage::Keep(kept.iter().map(|c| ColSpec::synth(&c.name)).collect());
        *cols = kept;
        stage
    }

    // -- aggregation -------------------------------------------------------

    fn agg(&mut self, cols: &mut Vec<GenCol>) -> Stage {
        let key_pool: Vec<usize> = (0..cols.len())
            .filter(|&i| cols[i].ty != DataType::F64)
            .collect();
        let n_keys = if key_pool.is_empty() {
            0
        } else {
            self.rng.gen_range(3).min(key_pool.len())
        };
        let keys_idx = if n_keys == 0 {
            Vec::new()
        } else {
            let mut pool = key_pool.clone();
            for i in (1..pool.len()).rev() {
                pool.swap(i, self.rng.gen_range(i + 1));
            }
            pool.truncate(n_keys);
            pool.sort_unstable();
            pool
        };
        // sum/min/max run on i64/f64 only (the DSL requires casting
        // anything narrower first).
        let agg_pool: Vec<usize> = (0..cols.len())
            .filter(|&i| matches!(cols[i].ty, DataType::I64 | DataType::F64))
            .collect();
        let mut aggs = Vec::new();
        let mut out: Vec<GenCol> = keys_idx
            .iter()
            .map(|&i| GenCol {
                clustered: false,
                ..cols[i].clone()
            })
            .collect();
        for _ in 0..self.range(1, 3) {
            if agg_pool.is_empty() || self.chance(0.3) {
                let name = self.fresh("a");
                aggs.push(AggItem {
                    func: AggFunc::Count,
                    col: None,
                    alias: Some(Ident::synth(&name)),
                });
                out.push(GenCol {
                    name,
                    ty: DataType::I64,
                    clustered: false,
                    base: None,
                });
            } else {
                let i = agg_pool[self.rng.gen_range(agg_pool.len())];
                let func = [AggFunc::Sum, AggFunc::Min, AggFunc::Max][self.rng.gen_range(3)];
                let name = self.fresh("a");
                aggs.push(AggItem {
                    func,
                    col: Some(Ident::synth(&cols[i].name)),
                    alias: Some(Ident::synth(&name)),
                });
                out.push(GenCol {
                    name,
                    ty: cols[i].ty,
                    clustered: false,
                    base: None,
                });
            }
        }
        let stage = Stage::Agg {
            keys: keys_idx
                .iter()
                .map(|&i| ColSpec::synth(&cols[i].name))
                .collect(),
            aggs,
        };
        *cols = out;
        stage
    }

    // -- joins -------------------------------------------------------------

    /// A simple build/left-side subquery: scan of `table` keeping `key`
    /// plus up to two payload candidates, with an optional sampled
    /// filter. No joins or aggregates inside — depth stays bounded and
    /// clustering/uniqueness of the first column is preserved.
    fn side_query(
        &mut self,
        table: &'static str,
        key: &str,
        with_filter: bool,
    ) -> (Query, Vec<GenCol>) {
        let t = self.db.table(table).expect("generator table");
        let names = t.column_names();
        let key_idx = names.iter().position(|n| n == key).expect("key exists");
        let mut idx = vec![key_idx];
        for &i in &self.subset(names.len(), 0, 2) {
            if !idx.contains(&i) {
                idx.push(i);
            }
        }
        idx.sort_unstable();
        let cols = self.scan_cols(table, &idx);
        let mut q = Query {
            table: Ident::synth(table),
            cols: idx.iter().map(|&i| ColSpec::synth(&names[i])).collect(),
            stages: Vec::new(),
        };
        if with_filter && self.chance(0.4) {
            q.stages.push(Stage::Where(self.atom(&cols)));
        }
        (q, cols)
    }

    /// `(probe_col, build_table)` pairs where the probe column's name
    /// suffix matches a PK table's primary key (`..._partkey` → `part`):
    /// joins along real foreign keys, with unique build keys bounding
    /// the fan-out.
    fn semantic_pairs(&self, cols: &[GenCol]) -> Vec<(usize, &'static str)> {
        let mut out = Vec::new();
        for (i, c) in cols.iter().enumerate() {
            if !is_int(c.ty) {
                continue;
            }
            let Some(suffix) = c.name.split('_').nth(1) else {
                continue;
            };
            for table in PK_TABLES {
                let t = self.db.table(table).expect("generator table");
                let pk = &t.column_names()[0];
                if pk.split('_').nth(1) == Some(suffix) {
                    out.push((i, table));
                }
            }
        }
        out
    }

    fn hash_join(&mut self, cols: &mut Vec<GenCol>) -> Option<Stage> {
        let semantic = self.semantic_pairs(cols);
        let (probe_i, table, build_key) = if !semantic.is_empty() && self.chance(0.7) {
            let (i, table) = semantic[self.rng.gen_range(semantic.len())];
            let pk = self
                .db
                .table(table)
                .expect("generator table")
                .column_names()[0]
                .clone();
            (i, table, pk)
        } else {
            // Random pairing: small build tables only, so duplicate
            // build keys cannot blow up the output.
            let ints: Vec<usize> = (0..cols.len()).filter(|&i| is_int(cols[i].ty)).collect();
            if ints.is_empty() {
                return None;
            }
            let i = ints[self.rng.gen_range(ints.len())];
            let table = SMALL_TABLES[self.rng.gen_range(SMALL_TABLES.len())];
            let t = self.db.table(table).expect("generator table");
            let int_cols: Vec<String> = t
                .column_names()
                .iter()
                .enumerate()
                .filter(|(c, _)| is_int(t.column_at(*c).data_type()))
                .map(|(_, n)| n.clone())
                .collect();
            (
                i,
                table,
                int_cols[self.rng.gen_range(int_cols.len())].clone(),
            )
        };
        let (build_q, build_cols) = self.side_query(table, &build_key, true);
        let kind = match self.rng.gen_range(4) {
            0 | 1 => JoinKindAst::Inner,
            2 => JoinKindAst::Semi,
            _ => JoinKindAst::Anti,
        };
        let mut payload = Vec::new();
        if kind == JoinKindAst::Inner {
            for c in &build_cols {
                if c.name != build_key && payload.len() < 2 && self.chance(0.6) {
                    let alias = self.fresh("j");
                    payload.push(ColSpec::synth_as(&c.name, &alias));
                    cols.push(GenCol {
                        name: alias,
                        ty: c.ty,
                        clustered: false,
                        base: c.base.clone(),
                    });
                }
            }
        }
        for c in cols.iter_mut() {
            c.clustered = false;
        }
        Some(Stage::Join {
            kind,
            query: Box::new(build_q),
            on: vec![(Ident::synth(&cols[probe_i].name), Ident::synth(&build_key))],
            payload,
            bloom: self.chance(0.4),
        })
    }

    fn single_join(&mut self, cols: &mut Vec<GenCol>) -> Option<Stage> {
        // `join single` takes the first hash-chain match for duplicate
        // build keys — arrival-order dependent, so the contract demands
        // unique build keys: PK tables joined on their primary key.
        let ints: Vec<usize> = (0..cols.len()).filter(|&i| is_int(cols[i].ty)).collect();
        if ints.is_empty() {
            return None;
        }
        let semantic = self.semantic_pairs(cols);
        let (probe_i, table) = if !semantic.is_empty() && self.chance(0.7) {
            semantic[self.rng.gen_range(semantic.len())]
        } else {
            (
                ints[self.rng.gen_range(ints.len())],
                PK_TABLES[self.rng.gen_range(PK_TABLES.len())],
            )
        };
        let pk = self
            .db
            .table(table)
            .expect("generator table")
            .column_names()[0]
            .clone();
        let (build_q, build_cols) = self.side_query(table, &pk, true);
        let mut payload = Vec::new();
        for c in &build_cols {
            if c.name != pk && c.ty != DataType::Str && payload.len() < 2 {
                let alias = self.fresh("j");
                let default = match c.ty {
                    DataType::F64 => Lit::Float(-1.0),
                    _ => Lit::Int(-1),
                };
                payload.push((ColSpec::synth_as(&c.name, &alias), default));
                cols.push(GenCol {
                    name: alias,
                    ty: c.ty,
                    clustered: false,
                    // Unmatched probes get the default, which is not in
                    // the base column's domain: drop the base link.
                    base: None,
                });
            }
        }
        // Any hash join (even the payload-free semi fallback below)
        // breaks the builder's clustered-key chain: a later merge join
        // must not treat surviving columns as scan-ordered. Found by the
        // fuzzer itself (seed 0xF022 case 820, pinned in
        // tests/fuzz_regressions.rs).
        for c in cols.iter_mut() {
            c.clustered = false;
        }
        if payload.is_empty() {
            // Every non-key build column was a string; fall back to a
            // semi-join-shaped single join with no payload — legal but
            // uninteresting, so just retry as a plain existence filter.
            return Some(Stage::Join {
                kind: JoinKindAst::Semi,
                query: Box::new(build_q),
                on: vec![(Ident::synth(&cols[probe_i].name), Ident::synth(&pk))],
                payload: Vec::new(),
                bloom: false,
            });
        }
        Some(Stage::JoinSingle {
            query: Box::new(build_q),
            on: vec![(Ident::synth(&cols[probe_i].name), Ident::synth(&pk))],
            payload,
        })
    }

    fn merge_join(&mut self, cols: &mut Vec<GenCol>) -> Option<Stage> {
        // Right key: a clustered integer column (mirrors the builder's
        // `clustered_key_chain` gate). Left side: a PK table scanned on
        // its unique, sorted first column.
        let right_i = (0..cols.len()).find(|&i| cols[i].clustered && is_int(cols[i].ty))?;
        let semantic = self.semantic_pairs(cols);
        let table = match semantic.iter().find(|(i, _)| *i == right_i) {
            Some((_, t)) if self.chance(0.8) => *t,
            _ => PK_TABLES[self.rng.gen_range(PK_TABLES.len())],
        };
        let pk = self
            .db
            .table(table)
            .expect("generator table")
            .column_names()[0]
            .clone();
        // A filter on the left side keeps its sort order, so it stays a
        // legal merge input.
        let (left_q, left_cols) = self.side_query(table, &pk, true);
        let mut payload = Vec::new();
        for c in &left_cols {
            if c.name != pk && payload.len() < 2 && self.chance(0.6) {
                let alias = self.fresh("m");
                payload.push(ColSpec::synth_as(&c.name, &alias));
                cols.push(GenCol {
                    name: alias,
                    ty: c.ty,
                    clustered: false,
                    base: c.base.clone(),
                });
            }
        }
        let on = (Ident::synth(&cols[right_i].name), Ident::synth(&pk));
        for c in cols.iter_mut() {
            c.clustered = false;
        }
        Some(Stage::MergeJoin {
            query: Box::new(left_q),
            on,
            payload,
        })
    }

    // -- ordering ----------------------------------------------------------

    fn order(&mut self, cols: &mut [GenCol]) -> Stage {
        let idx = self.subset(cols.len(), 1, 2);
        for c in cols.iter_mut() {
            c.clustered = false;
        }
        Stage::Order(
            idx.iter()
                .map(|&i| SortKeyAst {
                    col: Ident::synth(&cols[i].name),
                    desc: self.chance(0.5),
                })
                .collect(),
        )
    }

    /// `top` is only generated over float-free schemas and always sorts
    /// by **every** column: a total order, so the cut line is unique and
    /// all configurations agree on which rows survive. (A partial sort
    /// key with ties at the limit is genuinely nondeterministic — a
    /// query bug, not an engine bug.)
    fn top(&mut self, cols: &mut [GenCol]) -> Stage {
        let mut idx: Vec<usize> = (0..cols.len()).collect();
        for i in (1..idx.len()).rev() {
            idx.swap(i, self.rng.gen_range(i + 1));
        }
        for c in cols.iter_mut() {
            c.clustered = false;
        }
        Stage::Top {
            n: 1 + self.rng.gen_range(100) as u64,
            keys: idx
                .iter()
                .map(|&i| SortKeyAst {
                    col: Ident::synth(&cols[i].name),
                    desc: self.chance(0.5),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_db() -> Arc<TpchData> {
        Arc::new(TpchData::generate(0.002, 0xF022))
    }

    #[test]
    fn generation_is_deterministic() {
        let fz = Fuzzer::new(small_db());
        for case in 0..20 {
            let a = fz.generate(7, case);
            let b = fz.generate(7, case);
            assert_eq!(a, b, "case {case} not deterministic");
            assert_eq!(a.to_string(), b.to_string());
        }
    }

    #[test]
    fn generated_queries_compile_and_round_trip() {
        let fz = Fuzzer::new(small_db());
        for case in 0..60 {
            let ast = fz.generate(11, case);
            let text = ast.to_string();
            let reparsed = parse(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
            assert_eq!(reparsed, ast, "case {case} round-trip\n{text}");
            frontend::compile(&ast, fz.db.as_ref())
                .unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"))
                .build()
                .unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        }
    }

    #[test]
    fn differential_smoke() {
        let fz = Fuzzer::new(small_db());
        let report = fz.run(0xD1FF, 12, |_, _| {});
        assert!(
            report.ok(),
            "divergences: {:#?}",
            report
                .failures
                .iter()
                .map(|f| format!("case {}: {} — {}", f.case, f.minimized, f.detail))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn oracle_detects_divergence() {
        // Two runs of the same query agree; a doctored store diverges.
        let fz = Fuzzer::new(small_db());
        let text = "from nation [n_nationkey, n_name] | where n_nationkey < 10";
        let ast = parse(text).unwrap();
        let a = fz.run_one(&ast, &fz.configs[0].1, fz.configs[0].2).unwrap();
        let b = fz.run_one(&ast, &fz.configs[5].1, fz.configs[5].2).unwrap();
        compare_stores("a", &a, "b", &b).unwrap();
        let ast2 = parse("from nation [n_nationkey, n_name] | where n_nationkey < 9").unwrap();
        let c = fz
            .run_one(&ast2, &fz.configs[0].1, fz.configs[0].2)
            .unwrap();
        assert!(compare_stores("a", &a, "c", &c).is_err());
    }

    #[test]
    fn shrinker_reaches_fixpoint_on_round_trip_failures() {
        // Inject a failure kind that every sub-query also exhibits
        // (Compile against a bogus column) and check shrinking floors
        // out at the scan.
        let fz = Fuzzer::new(small_db());
        let ast = parse(
            "from nation [n_nationkey, n_regionkey] \
             | where n_regionkey < 3 \
             | agg by [n_regionkey] [count as a0] \
             | order by a0",
        )
        .unwrap();
        let kind = CheckFailKind::Divergence;
        // Nothing diverges here, so shrink must return the input query.
        let min = fz.shrink(&ast, &kind);
        assert_eq!(min, ast);
    }
}
