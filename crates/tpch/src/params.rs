//! Query substitution parameters (the spec's validation values).
//!
//! The paper runs the standard TPC-H queries; we pin every substitution
//! parameter to the spec's qualification value so results are deterministic
//! and comparable across engine configurations.

use crate::dates::date;

/// All substitution parameters for the 22 queries.
#[derive(Debug, Clone)]
pub struct Params {
    /// Q1: shipdate cutoff = 1998-12-01 − delta days.
    pub q1_delta_days: i32,
    /// Q2: part size.
    pub q2_size: i32,
    /// Q2: part type suffix.
    pub q2_type_suffix: &'static str,
    /// Q2: region.
    pub q2_region: &'static str,
    /// Q3: market segment.
    pub q3_segment: &'static str,
    /// Q3: date.
    pub q3_date: i32,
    /// Q4: quarter start.
    pub q4_date: i32,
    /// Q5: region.
    pub q5_region: &'static str,
    /// Q5: year start.
    pub q5_date: i32,
    /// Q6: year start.
    pub q6_date: i32,
    /// Q6: discount midpoint in percent.
    pub q6_discount_pct: i64,
    /// Q6: quantity bound.
    pub q6_quantity: i32,
    /// Q7: the two nations.
    pub q7_nation1: &'static str,
    /// `q7_nation2`.
    pub q7_nation2: &'static str,
    /// Q8: nation / region / part type.
    pub q8_nation: &'static str,
    /// `q8_region`.
    pub q8_region: &'static str,
    /// `q8_type`.
    pub q8_type: &'static str,
    /// Q9: part-name color.
    pub q9_color: &'static str,
    /// Q10: quarter start.
    pub q10_date: i32,
    /// Q11: nation and value fraction (spec: 0.0001 / SF).
    pub q11_nation: &'static str,
    /// `q11_fraction_sf1`.
    pub q11_fraction_sf1: f64,
    /// Q12: the two ship modes and the year start.
    pub q12_shipmode1: &'static str,
    /// `q12_shipmode2`.
    pub q12_shipmode2: &'static str,
    /// `q12_date`.
    pub q12_date: i32,
    /// Q13: the comment words.
    pub q13_word1: &'static str,
    /// `q13_word2`.
    pub q13_word2: &'static str,
    /// Q14: month start.
    pub q14_date: i32,
    /// Q15: quarter start.
    pub q15_date: i32,
    /// Q16: excluded brand / type prefix / size list.
    pub q16_brand: &'static str,
    /// `q16_type_prefix`.
    pub q16_type_prefix: &'static str,
    /// `q16_sizes`.
    pub q16_sizes: [i32; 8],
    /// Q17: brand and container.
    pub q17_brand: &'static str,
    /// `q17_container`.
    pub q17_container: &'static str,
    /// Q18: quantity threshold.
    pub q18_quantity: i64,
    /// Q19: three (brand, quantity-low) groups.
    pub q19_brand1: &'static str,
    /// `q19_qty1`.
    pub q19_qty1: i32,
    /// `q19_brand2`.
    pub q19_brand2: &'static str,
    /// `q19_qty2`.
    pub q19_qty2: i32,
    /// `q19_brand3`.
    pub q19_brand3: &'static str,
    /// `q19_qty3`.
    pub q19_qty3: i32,
    /// Q20: color prefix / year start / nation.
    pub q20_color: &'static str,
    /// `q20_date`.
    pub q20_date: i32,
    /// `q20_nation`.
    pub q20_nation: &'static str,
    /// Q21: nation.
    pub q21_nation: &'static str,
    /// Q22: the seven country codes.
    pub q22_codes: [&'static str; 7],
}

impl Default for Params {
    fn default() -> Self {
        Params {
            q1_delta_days: 90,
            q2_size: 15,
            q2_type_suffix: "BRASS",
            q2_region: "EUROPE",
            q3_segment: "BUILDING",
            q3_date: date(1995, 3, 15),
            q4_date: date(1993, 7, 1),
            q5_region: "ASIA",
            q5_date: date(1994, 1, 1),
            q6_date: date(1994, 1, 1),
            q6_discount_pct: 6,
            q6_quantity: 24,
            q7_nation1: "FRANCE",
            q7_nation2: "GERMANY",
            q8_nation: "BRAZIL",
            q8_region: "AMERICA",
            q8_type: "ECONOMY ANODIZED STEEL",
            q9_color: "green",
            q10_date: date(1993, 10, 1),
            q11_nation: "GERMANY",
            q11_fraction_sf1: 0.0001,
            q12_shipmode1: "MAIL",
            q12_shipmode2: "SHIP",
            q12_date: date(1994, 1, 1),
            q13_word1: "special",
            q13_word2: "requests",
            q14_date: date(1995, 9, 1),
            q15_date: date(1996, 1, 1),
            q16_brand: "Brand#45",
            q16_type_prefix: "MEDIUM POLISHED",
            q16_sizes: [49, 14, 23, 45, 19, 3, 36, 9],
            q17_brand: "Brand#23",
            q17_container: "MED BOX",
            q18_quantity: 300,
            q19_brand1: "Brand#12",
            q19_qty1: 1,
            q19_brand2: "Brand#23",
            q19_qty2: 10,
            q19_brand3: "Brand#34",
            q19_qty3: 20,
            q20_color: "forest",
            q20_date: date(1994, 1, 1),
            q20_nation: "CANADA",
            q21_nation: "SAUDI ARABIA",
            q22_codes: ["13", "31", "23", "29", "30", "18", "17"],
        }
    }
}

impl Params {
    /// Q1 shipdate cutoff day.
    pub fn q1_cutoff(&self) -> i32 {
        date(1998, 12, 1) - self.q1_delta_days
    }

    /// Q11 fraction at scale factor `sf` (spec scales it by 1/SF).
    pub fn q11_fraction(&self, sf: f64) -> f64 {
        self.q11_fraction_sf1 / sf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_spec_validation_values() {
        let p = Params::default();
        assert_eq!(p.q1_cutoff(), date(1998, 9, 2));
        assert_eq!(p.q3_segment, "BUILDING");
        assert_eq!(p.q16_sizes.len(), 8);
        assert_eq!(p.q22_codes[0], "13");
    }

    #[test]
    fn q11_fraction_scales_inverse_to_sf() {
        let p = Params::default();
        assert!((p.q11_fraction(0.1) - 0.001).abs() < 1e-12);
        assert!((p.q11_fraction(1.0) - 0.0001).abs() < 1e-12);
    }
}
