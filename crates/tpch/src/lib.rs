#![warn(missing_docs)]
//! # ma-tpch — TPC-H substrate
//!
//! Deterministic in-memory dbgen ([`dbgen::TpchData`]) plus all 22 TPC-H
//! queries expressed as physical plans over the `ma-executor` operators
//! ([`queries`]), and a [`runner`] that executes them under any engine
//! configuration with per-stage and per-instance profiling.
//!
//! The paper evaluates Micro Adaptivity on TPC-H SF-100 (§4); this crate
//! reproduces the workload at configurable scale. Schema/spec deviations
//! are documented in [`dbgen`] and DESIGN.md §3.

pub mod dates;
pub mod dbgen;
pub mod fuzz;
pub mod params;
pub mod queries;
pub mod runner;

pub use dbgen::TpchData;
pub use params::Params;
pub use queries::run_query;
pub use runner::{geometric_mean, QueryResult, Runner};
