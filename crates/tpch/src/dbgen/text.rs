//! Text pools for dbgen: names, types, comments with pattern injection.
//!
//! Word lists follow the spec's grammar closely enough that every LIKE
//! pattern the 22 queries use has its spec-rate hit frequency: `%green%` in
//! `p_name` (1/17 of parts contain any given color), `PROMO%` in `p_type`
//! (1/6), `%special%requests%` in `o_comment` (~1%), `%Customer%Complaints%`
//! in `s_comment` (rare), `forest%` in `p_name`.

use ma_core::SplitMix64;

/// The spec's P_NAME color vocabulary (55 words, 5 chosen per part).
pub const COLORS: [&str; 55] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
    "goldenrod",
    "green",
    "grey",
    "honeydew",
    "hot",
    "indian",
    "ivory",
    "khaki",
    "lace",
    "lavender",
    "lawn",
    "lemon",
    "light",
    "lime",
    "linen",
    "magenta",
    "maroon",
    "medium",
    "metallic",
    "midnight",
    "mint",
    "misty",
    "moccasin",
];

/// TYPE_SYLLABLE_1 through _3 (spec 4.2.2.13).
pub const TYPES1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// `TYPES2`.
pub const TYPES2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// `TYPES3`.
pub const TYPES3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// CONTAINER syllables.
pub const CONTAINERS1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
/// `CONTAINERS2`.
pub const CONTAINERS2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// Order priorities.
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Ship modes.
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Ship instructions.
pub const SHIP_INSTRUCT: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// Market segments.
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

/// The 25 nations with their region keys (spec A-1).
pub const NATIONS: [(&str, i32); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// The 5 regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Filler vocabulary for comments.
const WORDS: [&str; 32] = [
    "carefully",
    "quickly",
    "furiously",
    "slyly",
    "blithely",
    "final",
    "ironic",
    "regular",
    "express",
    "bold",
    "pending",
    "even",
    "silent",
    "unusual",
    "packages",
    "deposits",
    "accounts",
    "instructions",
    "theodolites",
    "dependencies",
    "foxes",
    "pinto",
    "beans",
    "ideas",
    "platelets",
    "requests",
    "realms",
    "courts",
    "epitaphs",
    "somas",
    "asymptotes",
    "dugouts",
];

/// Generates a comment of `words` random words, optionally injecting a
/// marker phrase (e.g. "special ... requests") when `inject` is true.
pub fn comment(rng: &mut SplitMix64, words: usize, inject: Option<(&str, &str)>) -> String {
    let mut out = String::with_capacity(words * 8 + 24);
    let inject_at = inject.map(|_| rng.gen_range(words.max(2) - 1));
    for w in 0..words {
        if w > 0 {
            out.push(' ');
        }
        if let (Some((first, second)), Some(at)) = (inject, inject_at) {
            if w == at {
                out.push_str(first);
                out.push(' ');
                out.push_str(second);
                continue;
            }
        }
        out.push_str(WORDS[rng.gen_range(WORDS.len())]);
    }
    out
}

/// A part name: five random color words (spec 4.2.3).
pub fn part_name(rng: &mut SplitMix64) -> String {
    let mut out = String::with_capacity(48);
    for w in 0..5 {
        if w > 0 {
            out.push(' ');
        }
        out.push_str(COLORS[rng.gen_range(COLORS.len())]);
    }
    out
}

/// A part type: three syllables.
pub fn part_type(rng: &mut SplitMix64) -> String {
    format!(
        "{} {} {}",
        TYPES1[rng.gen_range(TYPES1.len())],
        TYPES2[rng.gen_range(TYPES2.len())],
        TYPES3[rng.gen_range(TYPES3.len())]
    )
}

/// A container: two syllables.
pub fn container(rng: &mut SplitMix64) -> String {
    format!(
        "{} {}",
        CONTAINERS1[rng.gen_range(CONTAINERS1.len())],
        CONTAINERS2[rng.gen_range(CONTAINERS2.len())]
    )
}

/// A phone number whose country code is `10 + nationkey` (spec 4.2.2.9) —
/// Q22 matches on the first two characters.
pub fn phone(rng: &mut SplitMix64, nationkey: i32) -> String {
    format!(
        "{}-{:03}-{:03}-{:04}",
        10 + nationkey,
        100 + rng.gen_range(900),
        100 + rng.gen_range(900),
        1000 + rng.gen_range(9000)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comment_injection_places_both_words_in_order() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..50 {
            let c = comment(&mut rng, 12, Some(("special", "requests")));
            // "requests" can also occur as a filler word; the guarantee is
            // that "special" is eventually followed by "requests".
            let p = c.find("special").expect("first word present");
            assert!(c[p..].contains("requests"), "{c}");
        }
    }

    #[test]
    fn comment_without_injection_has_no_marker() {
        let mut rng = SplitMix64::new(2);
        // "requests" alone can appear (it is in WORDS); the full phrase
        // "special requests" must not, since "special" is not in WORDS.
        for _ in 0..100 {
            let c = comment(&mut rng, 10, None);
            assert!(!c.contains("special "));
        }
    }

    #[test]
    fn part_name_has_five_words() {
        let mut rng = SplitMix64::new(3);
        let n = part_name(&mut rng);
        assert_eq!(n.split(' ').count(), 5);
    }

    #[test]
    fn green_frequency_matches_spec_rate() {
        // Each of 5 words is "green" with probability 1/55 → ~ 5/55 ≈ 9%.
        let mut rng = SplitMix64::new(4);
        let hits = (0..2000)
            .filter(|_| part_name(&mut rng).contains("green"))
            .count();
        let rate = hits as f64 / 2000.0;
        assert!((0.04..0.16).contains(&rate), "green rate {rate}");
    }

    #[test]
    fn phone_has_country_code() {
        let mut rng = SplitMix64::new(5);
        let p = phone(&mut rng, 7);
        assert!(p.starts_with("17-"));
        assert_eq!(p.len(), "17-123-456-7890".len());
    }

    #[test]
    fn type_and_container_shapes() {
        let mut rng = SplitMix64::new(6);
        assert_eq!(part_type(&mut rng).split(' ').count(), 3);
        assert_eq!(container(&mut rng).split(' ').count(), 2);
    }

    #[test]
    fn nations_reference_valid_regions() {
        for (_, r) in NATIONS {
            assert!((0..5).contains(&r));
        }
        assert_eq!(NATIONS.len(), 25);
        assert_eq!(REGIONS.len(), 5);
    }
}
