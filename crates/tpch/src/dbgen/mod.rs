//! Deterministic TPC-H data generator.
//!
//! Generates all eight tables at an arbitrary scale factor, fully in memory,
//! reproducibly per (scale factor, seed). Distributions follow the spec
//! closely; the deliberate deviations (documented in DESIGN.md §3) are:
//!
//! * **Date-clustered orders.** `o_orderdate` increases with `o_orderkey`
//!   (plus jitter), mimicking Vectorwise's date-clustered TPC-H storage —
//!   the source of the "data locality in date columns" that produces the
//!   paper's border-region / phase effects (Fig. 2, Fig. 4c/d).
//! * **Dense order keys** instead of dbgen's sparse ones (no query depends
//!   on key sparsity).
//! * **Derived year columns** (`o_orderyear`, `l_shipyear`) materialize
//!   `EXTRACT(YEAR ...)`, which the executor has no date primitive for.
//! * Money is `i64` cents; dates are `i32` days since 1992-01-01.

pub mod text;

use std::sync::Arc;

use ma_core::SplitMix64;
use ma_vector::{Column, ColumnBuilder, DataType, RowRange, Table};

use crate::dates::{current_date, end_date};
use text::*;

// ---------------------------------------------------------------------------
// partition-parallel generation scaffolding
// ---------------------------------------------------------------------------

/// Rows per generation partition. The data is a pure function of
/// `(sf, seed)` for ANY thread count because partition boundaries are fixed
/// and each partition owns an rng seeded by its index — threads only decide
/// who computes which partition.
const GEN_PART_ROWS: usize = 32_768;

/// Deterministic per-partition rng seed.
fn part_seed(seed: u64, part: usize) -> u64 {
    (seed ^ 0xA076_1D64_78BD_642F)
        .wrapping_add((part as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Fixed-size partition grid over `rows`.
fn gen_ranges(rows: usize) -> Vec<RowRange> {
    (0..rows)
        .step_by(GEN_PART_ROWS.max(1))
        .map(|start| RowRange {
            start,
            len: GEN_PART_ROWS.min(rows - start),
        })
        .collect()
}

/// Runs `gen(range, part_index)` over the partition grid on up to
/// `threads` OS threads, returning results in partition order.
fn gen_partitions<T: Send>(
    rows: usize,
    threads: usize,
    gen: impl Fn(RowRange, usize) -> T + Sync,
) -> Vec<T> {
    let ranges = gen_ranges(rows);
    let threads = threads.clamp(1, ranges.len().max(1));
    if threads == 1 {
        return ranges
            .into_iter()
            .enumerate()
            .map(|(p, r)| gen(r, p))
            .collect();
    }
    let gen = &gen;
    let ranges = &ranges;
    let mut out: Vec<Option<T>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    let mut mine = Vec::new();
                    let mut p = t;
                    while p < ranges.len() {
                        mine.push((p, gen(ranges[p], p)));
                        p += threads;
                    }
                    mine
                })
            })
            .collect();
        let mut slots: Vec<Option<T>> =
            std::iter::repeat_with(|| None).take(ranges.len()).collect();
        for h in handles {
            for (p, v) in h.join().expect("dbgen worker panicked") {
                slots[p] = Some(v);
            }
        }
        slots
    });
    out.iter_mut()
        .map(|s| s.take().expect("every partition generated"))
        .collect()
}

/// Concatenates per-partition column sets into a table. Each partition
/// contributes index-aligned columns; `Column` clones are `Arc`-cheap.
fn table_from_parts(name: &str, col_names: &[&str], parts: Vec<Vec<Column>>) -> Table {
    assert!(!parts.is_empty());
    let cols = col_names
        .iter()
        .enumerate()
        .map(|(c, n)| {
            let slices: Vec<Column> = parts.iter().map(|p| p[c].clone()).collect();
            (n.to_string(), Column::concat(&slices))
        })
        .collect();
    Table::new(name, cols).expect("static schema")
}

/// All eight TPC-H tables.
pub struct TpchData {
    /// Scale factor the data was generated at.
    pub sf: f64,
    /// `region`.
    pub region: Arc<Table>,
    /// `nation`.
    pub nation: Arc<Table>,
    /// `supplier`.
    pub supplier: Arc<Table>,
    /// `customer`.
    pub customer: Arc<Table>,
    /// `part`.
    pub part: Arc<Table>,
    /// `partsupp`.
    pub partsupp: Arc<Table>,
    /// `orders`.
    pub orders: Arc<Table>,
    /// `lineitem`.
    pub lineitem: Arc<Table>,
}

/// Spec row counts at scale factor 1.
const SF1_SUPPLIER: usize = 10_000;
const SF1_CUSTOMER: usize = 150_000;
const SF1_PART: usize = 200_000;
const SF1_ORDERS: usize = 1_500_000;

fn scaled(base: usize, sf: f64) -> usize {
    ((base as f64 * sf).round() as usize).max(1)
}

/// Retail price formula of spec 4.2.3 (cents).
fn retail_price_cents(partkey: i32) -> i64 {
    let p = partkey as i64;
    90_000 + ((p / 10) % 20_001) + 100 * (p % 1_000)
}

impl TpchData {
    /// Generates a database at scale factor `sf` with a deterministic seed,
    /// using every available core (capped at 8). The data depends only on
    /// `(sf, seed)`, never on the thread count.
    pub fn generate(sf: f64, seed: u64) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        Self::generate_with_threads(sf, seed, threads)
    }

    /// [`TpchData::generate`] with an explicit generation thread count.
    pub fn generate_with_threads(sf: f64, seed: u64, threads: usize) -> Self {
        Self::generate_storage(sf, seed, threads, true)
    }

    /// [`TpchData::generate`] without column compression: every table
    /// keeps its raw vectors. The differential fuzzer cross-checks this
    /// storage mode against the encoded default, and the `repro compress`
    /// experiment measures both.
    pub fn generate_raw(sf: f64, seed: u64) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        Self::generate_storage(sf, seed, threads, false)
    }

    /// Shared generator body. With `encode`, each table passes through
    /// [`ma_vector::encode_table`], which picks a per-column codec from
    /// the exact column statistics (dictionary for low-NDV strings, delta
    /// for the clustered date/key columns, frame-of-reference for bounded
    /// integers) and leaves unprofitable columns raw. Values round-trip
    /// exactly, so query results are identical in both storage modes.
    fn generate_storage(sf: f64, seed: u64, threads: usize, encode: bool) -> Self {
        assert!(sf > 0.0, "scale factor must be positive");
        let threads = threads.max(1);
        let n_supp = scaled(SF1_SUPPLIER, sf);
        let n_cust = scaled(SF1_CUSTOMER, sf);
        let n_part = scaled(SF1_PART, sf);
        let n_orders = scaled(SF1_ORDERS, sf);

        let (orders, o_dates) = gen_orders(n_orders, n_cust, seed ^ 0x0D, threads);
        let lineitem = gen_lineitem(&o_dates, n_part, n_supp, seed ^ 0x11, threads);
        let store = |t: Table| {
            if encode {
                Arc::new(ma_vector::encode_table(&t))
            } else {
                Arc::new(t)
            }
        };
        TpchData {
            sf,
            region: store(gen_region()),
            nation: store(gen_nation()),
            supplier: store(gen_supplier(n_supp, seed ^ 0x55, threads)),
            customer: store(gen_customer(n_cust, seed ^ 0xC0, threads)),
            part: store(gen_part(n_part, seed ^ 0x9A, threads)),
            partsupp: store(gen_partsupp(n_part, n_supp, seed ^ 0x75, threads)),
            orders: store(orders),
            lineitem: store(lineitem),
        }
    }

    /// The uncompressed twin of this database: every encoded column is
    /// decoded back to raw vectors, statistics carried over unchanged.
    /// Value-identical to `self` by construction (codecs round-trip
    /// exactly), so any query must produce the same result on both —
    /// the property the differential fuzzer's storage configs check.
    pub fn decode_all(&self) -> Self {
        let raw = |t: &Arc<Table>| Arc::new(ma_vector::decode_table(t));
        TpchData {
            sf: self.sf,
            region: raw(&self.region),
            nation: raw(&self.nation),
            supplier: raw(&self.supplier),
            customer: raw(&self.customer),
            part: raw(&self.part),
            partsupp: raw(&self.partsupp),
            orders: raw(&self.orders),
            lineitem: raw(&self.lineitem),
        }
    }

    /// Table lookup by lower-case name.
    pub fn table(&self, name: &str) -> Option<&Arc<Table>> {
        match name {
            "region" => Some(&self.region),
            "nation" => Some(&self.nation),
            "supplier" => Some(&self.supplier),
            "customer" => Some(&self.customer),
            "part" => Some(&self.part),
            "partsupp" => Some(&self.partsupp),
            "orders" => Some(&self.orders),
            "lineitem" => Some(&self.lineitem),
            _ => None,
        }
    }
}

impl ma_executor::plan::Catalog for TpchData {
    fn lookup(&self, name: &str) -> Option<Arc<Table>> {
        self.table(name).cloned()
    }

    /// Exact row counts straight from the materialized tables — the
    /// cardinality anchor the physical planner's partitioning verdicts
    /// rest on (no `Arc` clone, unlike the default implementation).
    fn row_count(&self, name: &str) -> Option<usize> {
        self.table(name).map(|t| t.rows())
    }
}

fn gen_region() -> Table {
    let mut key = ColumnBuilder::with_capacity(DataType::I32, 5);
    let mut name = ColumnBuilder::with_capacity(DataType::Str, 5);
    let mut comment = ColumnBuilder::with_capacity(DataType::Str, 5);
    let mut rng = SplitMix64::new(0xEE);
    for (i, r) in REGIONS.iter().enumerate() {
        key.push_i32(i as i32);
        name.push_str(r);
        comment.push_str(&text::comment(&mut rng, 8, None));
    }
    Table::new(
        "region",
        vec![
            ("r_regionkey".into(), key.finish()),
            ("r_name".into(), name.finish()),
            ("r_comment".into(), comment.finish()),
        ],
    )
    .expect("static schema")
}

fn gen_nation() -> Table {
    let n = NATIONS.len();
    let mut key = ColumnBuilder::with_capacity(DataType::I32, n);
    let mut name = ColumnBuilder::with_capacity(DataType::Str, n);
    let mut region = ColumnBuilder::with_capacity(DataType::I32, n);
    let mut comment = ColumnBuilder::with_capacity(DataType::Str, n);
    let mut rng = SplitMix64::new(0xAA);
    for (i, (nm, rk)) in NATIONS.iter().enumerate() {
        key.push_i32(i as i32);
        name.push_str(nm);
        region.push_i32(*rk);
        comment.push_str(&text::comment(&mut rng, 8, None));
    }
    Table::new(
        "nation",
        vec![
            ("n_nationkey".into(), key.finish()),
            ("n_name".into(), name.finish()),
            ("n_regionkey".into(), region.finish()),
            ("n_comment".into(), comment.finish()),
        ],
    )
    .expect("static schema")
}

fn gen_supplier(n: usize, seed: u64, threads: usize) -> Table {
    let parts = gen_partitions(n, threads, |range, p| {
        let mut rng = SplitMix64::new(part_seed(seed, p));
        let rows = range.len;
        let mut key = ColumnBuilder::with_capacity(DataType::I32, rows);
        let mut name = ColumnBuilder::with_capacity(DataType::Str, rows);
        let mut address = ColumnBuilder::with_capacity(DataType::Str, rows);
        let mut nationkey = ColumnBuilder::with_capacity(DataType::I32, rows);
        let mut phone = ColumnBuilder::with_capacity(DataType::Str, rows);
        let mut acctbal = ColumnBuilder::with_capacity(DataType::I64, rows);
        let mut comment = ColumnBuilder::with_capacity(DataType::Str, rows);
        for i in range.start..range.end() {
            let k = (i + 1) as i32;
            let nk = rng.gen_range(25) as i32;
            key.push_i32(k);
            name.push_str(&format!("Supplier#{k:09}"));
            address.push_str(&format!("addr sup {:06}", rng.gen_range(1_000_000)));
            nationkey.push_i32(nk);
            phone.push_str(&text::phone(&mut rng, nk));
            acctbal.push_i64(-99_999 + rng.gen_range(1_100_000) as i64);
            // Spec: 5 suppliers per SF1 get "Customer ... Complaints".
            let inject = rng.gen_range(2000) == 0;
            comment.push_str(&text::comment(
                &mut rng,
                10,
                inject.then_some(("Customer", "Complaints")),
            ));
        }
        vec![
            key.finish(),
            name.finish(),
            address.finish(),
            nationkey.finish(),
            phone.finish(),
            acctbal.finish(),
            comment.finish(),
        ]
    });
    table_from_parts(
        "supplier",
        &[
            "s_suppkey",
            "s_name",
            "s_address",
            "s_nationkey",
            "s_phone",
            "s_acctbal",
            "s_comment",
        ],
        parts,
    )
}

fn gen_customer(n: usize, seed: u64, threads: usize) -> Table {
    let parts = gen_partitions(n, threads, |range, p| {
        let mut rng = SplitMix64::new(part_seed(seed, p));
        let rows = range.len;
        let mut key = ColumnBuilder::with_capacity(DataType::I32, rows);
        let mut name = ColumnBuilder::with_capacity(DataType::Str, rows);
        let mut address = ColumnBuilder::with_capacity(DataType::Str, rows);
        let mut nationkey = ColumnBuilder::with_capacity(DataType::I32, rows);
        let mut phone = ColumnBuilder::with_capacity(DataType::Str, rows);
        let mut acctbal = ColumnBuilder::with_capacity(DataType::I64, rows);
        let mut segment = ColumnBuilder::with_capacity(DataType::Str, rows);
        let mut comment = ColumnBuilder::with_capacity(DataType::Str, rows);
        for i in range.start..range.end() {
            let k = (i + 1) as i32;
            let nk = rng.gen_range(25) as i32;
            key.push_i32(k);
            name.push_str(&format!("Customer#{k:09}"));
            address.push_str(&format!("addr cust {:06}", rng.gen_range(1_000_000)));
            nationkey.push_i32(nk);
            phone.push_str(&text::phone(&mut rng, nk));
            acctbal.push_i64(-99_999 + rng.gen_range(1_100_000) as i64);
            segment.push_str(SEGMENTS[rng.gen_range(SEGMENTS.len())]);
            comment.push_str(&text::comment(&mut rng, 12, None));
        }
        vec![
            key.finish(),
            name.finish(),
            address.finish(),
            nationkey.finish(),
            phone.finish(),
            acctbal.finish(),
            segment.finish(),
            comment.finish(),
        ]
    });
    table_from_parts(
        "customer",
        &[
            "c_custkey",
            "c_name",
            "c_address",
            "c_nationkey",
            "c_phone",
            "c_acctbal",
            "c_mktsegment",
            "c_comment",
        ],
        parts,
    )
}

fn gen_part(n: usize, seed: u64, threads: usize) -> Table {
    let parts = gen_partitions(n, threads, |range, p| {
        let mut rng = SplitMix64::new(part_seed(seed, p));
        let rows = range.len;
        let mut key = ColumnBuilder::with_capacity(DataType::I32, rows);
        let mut name = ColumnBuilder::with_capacity(DataType::Str, rows);
        let mut mfgr = ColumnBuilder::with_capacity(DataType::Str, rows);
        let mut brand = ColumnBuilder::with_capacity(DataType::Str, rows);
        let mut ptype = ColumnBuilder::with_capacity(DataType::Str, rows);
        let mut size = ColumnBuilder::with_capacity(DataType::I32, rows);
        let mut cont = ColumnBuilder::with_capacity(DataType::Str, rows);
        let mut price = ColumnBuilder::with_capacity(DataType::I64, rows);
        let mut comment = ColumnBuilder::with_capacity(DataType::Str, rows);
        for i in range.start..range.end() {
            let k = (i + 1) as i32;
            let m = 1 + rng.gen_range(5);
            let b = 10 * m + 1 + rng.gen_range(5);
            key.push_i32(k);
            name.push_str(&part_name(&mut rng));
            mfgr.push_str(&format!("Manufacturer#{m}"));
            brand.push_str(&format!("Brand#{b}"));
            ptype.push_str(&part_type(&mut rng));
            size.push_i32(1 + rng.gen_range(50) as i32);
            cont.push_str(&container(&mut rng));
            price.push_i64(retail_price_cents(k));
            comment.push_str(&text::comment(&mut rng, 6, None));
        }
        vec![
            key.finish(),
            name.finish(),
            mfgr.finish(),
            brand.finish(),
            ptype.finish(),
            size.finish(),
            cont.finish(),
            price.finish(),
            comment.finish(),
        ]
    });
    table_from_parts(
        "part",
        &[
            "p_partkey",
            "p_name",
            "p_mfgr",
            "p_brand",
            "p_type",
            "p_size",
            "p_container",
            "p_retailprice",
            "p_comment",
        ],
        parts,
    )
}

fn gen_partsupp(n_part: usize, n_supp: usize, seed: u64, threads: usize) -> Table {
    // Partitioned over part keys; each part contributes up to 4 rows.
    let parts = gen_partitions(n_part, threads, |range, pi| {
        let mut rng = SplitMix64::new(part_seed(seed, pi));
        let cap = range.len * 4;
        let mut partkey = ColumnBuilder::with_capacity(DataType::I32, cap);
        let mut suppkey = ColumnBuilder::with_capacity(DataType::I32, cap);
        let mut availqty = ColumnBuilder::with_capacity(DataType::I32, cap);
        let mut cost = ColumnBuilder::with_capacity(DataType::I64, cap);
        let mut comment = ColumnBuilder::with_capacity(DataType::Str, cap);
        for p in range.start + 1..=range.end() {
            // Supplier spreading in the spirit of spec 4.2.3: a per-part
            // rotation plus i·(S/4) spacing. The four values are distinct
            // mod S whenever S ≥ 4 (the spacing term alone covers four
            // residues); dedupe handles degenerate S < 4 at minuscule
            // scale factors.
            let s_cnt = n_supp as i64;
            let rot = (p as i64 - 1) + (p as i64 - 1) / s_cnt;
            let mut seen = [0i64; 4];
            let mut n_seen = 0;
            for i in 0..4i64 {
                let sk = (rot + i * (s_cnt / 4).max(1)).rem_euclid(s_cnt) + 1;
                if seen[..n_seen].contains(&sk) {
                    continue;
                }
                seen[n_seen] = sk;
                n_seen += 1;
                partkey.push_i32(p as i32);
                suppkey.push_i32(sk as i32);
                availqty.push_i32(1 + rng.gen_range(9999) as i32);
                cost.push_i64(100 + rng.gen_range(99_901) as i64);
                comment.push_str(&text::comment(&mut rng, 6, None));
            }
        }
        vec![
            partkey.finish(),
            suppkey.finish(),
            availqty.finish(),
            cost.finish(),
            comment.finish(),
        ]
    });
    table_from_parts(
        "partsupp",
        &[
            "ps_partkey",
            "ps_suppkey",
            "ps_availqty",
            "ps_supplycost",
            "ps_comment",
        ],
        parts,
    )
}

/// Generates orders; also returns `(o_orderdate, o_orderkey)` pairs for
/// lineitem generation. Orders are *date-clustered*: orderdate grows with
/// orderkey (see module docs).
fn gen_orders(n: usize, n_cust: usize, seed: u64, threads: usize) -> (Table, Vec<(i32, i32)>) {
    let last_order_day = end_date() - 151;
    let parts = gen_partitions(n, threads, |range, pi| {
        let mut rng = SplitMix64::new(part_seed(seed, pi));
        let rows = range.len;
        let mut key = ColumnBuilder::with_capacity(DataType::I32, rows);
        let mut custkey = ColumnBuilder::with_capacity(DataType::I32, rows);
        let mut status = ColumnBuilder::with_capacity(DataType::Str, rows);
        let mut total = ColumnBuilder::with_capacity(DataType::I64, rows);
        let mut odate = ColumnBuilder::with_capacity(DataType::I32, rows);
        let mut oyear = ColumnBuilder::with_capacity(DataType::I32, rows);
        let mut prio = ColumnBuilder::with_capacity(DataType::Str, rows);
        let mut clerk = ColumnBuilder::with_capacity(DataType::Str, rows);
        let mut shipprio = ColumnBuilder::with_capacity(DataType::I32, rows);
        let mut comment = ColumnBuilder::with_capacity(DataType::Str, rows);
        let mut dates = Vec::with_capacity(rows);
        for i in range.start..range.end() {
            let k = (i + 1) as i32;
            // Date clustering: linear ramp + jitter of ±15 days, clamped.
            // `i` and `n` are global, so the ramp is partition-independent.
            let base = (i as f64 / n as f64 * last_order_day as f64) as i32;
            let d = (base + rng.gen_range(31) as i32 - 15).clamp(0, last_order_day);
            let st = if d + 121 < current_date() {
                "F"
            } else if d > current_date() {
                "O"
            } else {
                "P"
            };
            key.push_i32(k);
            // Spec 4.2.3: every third customer (custkey ≡ 0 mod 3) gets no
            // orders — Q13's zero bucket and Q22's anti-join depend on it.
            let n_allowed = n_cust - n_cust / 3;
            let j = rng.gen_range(n_allowed.max(1));
            custkey.push_i32((3 * (j / 2) + 1 + (j % 2)) as i32);
            status.push_str(st);
            total.push_i64(100_000 + rng.gen_range(50_000_000) as i64);
            odate.push_i32(d);
            oyear.push_i32(crate::dates::year_of(d));
            prio.push_str(PRIORITIES[rng.gen_range(PRIORITIES.len())]);
            clerk.push_str(&format!("Clerk#{:09}", 1 + rng.gen_range(1000)));
            shipprio.push_i32(0);
            // ~1% of order comments carry the Q13 pattern.
            let inject = rng.gen_range(100) == 0;
            comment.push_str(&text::comment(
                &mut rng,
                12,
                inject.then_some(("special", "requests")),
            ));
            dates.push((d, k));
        }
        (
            vec![
                key.finish(),
                custkey.finish(),
                status.finish(),
                total.finish(),
                odate.finish(),
                oyear.finish(),
                prio.finish(),
                clerk.finish(),
                shipprio.finish(),
                comment.finish(),
            ],
            dates,
        )
    });
    let mut all_dates = Vec::with_capacity(n);
    let mut cols = Vec::with_capacity(parts.len());
    for (c, dates) in parts {
        cols.push(c);
        all_dates.extend(dates);
    }
    let table = table_from_parts(
        "orders",
        &[
            "o_orderkey",
            "o_custkey",
            "o_orderstatus",
            "o_totalprice",
            "o_orderdate",
            "o_orderyear",
            "o_orderpriority",
            "o_clerk",
            "o_shippriority",
            "o_comment",
        ],
        cols,
    );
    (table, all_dates)
}

fn gen_lineitem(
    orders: &[(i32, i32)],
    n_part: usize,
    n_supp: usize,
    seed: u64,
    threads: usize,
) -> Table {
    let today = current_date();
    let parts = gen_partitions(orders.len(), threads, |range, pi| {
        let mut rng = SplitMix64::new(part_seed(seed, pi));
        let cap = range.len * 4;
        let mut orderkey = ColumnBuilder::with_capacity(DataType::I32, cap);
        let mut partkey = ColumnBuilder::with_capacity(DataType::I32, cap);
        let mut suppkey = ColumnBuilder::with_capacity(DataType::I32, cap);
        let mut linenumber = ColumnBuilder::with_capacity(DataType::I32, cap);
        let mut quantity = ColumnBuilder::with_capacity(DataType::I32, cap);
        let mut extprice = ColumnBuilder::with_capacity(DataType::I64, cap);
        let mut discount = ColumnBuilder::with_capacity(DataType::I64, cap);
        let mut tax = ColumnBuilder::with_capacity(DataType::I64, cap);
        let mut returnflag = ColumnBuilder::with_capacity(DataType::Str, cap);
        let mut linestatus = ColumnBuilder::with_capacity(DataType::Str, cap);
        let mut shipdate = ColumnBuilder::with_capacity(DataType::I32, cap);
        let mut shipyear = ColumnBuilder::with_capacity(DataType::I32, cap);
        let mut commitdate = ColumnBuilder::with_capacity(DataType::I32, cap);
        let mut receiptdate = ColumnBuilder::with_capacity(DataType::I32, cap);
        let mut shipinstruct = ColumnBuilder::with_capacity(DataType::Str, cap);
        let mut shipmode = ColumnBuilder::with_capacity(DataType::Str, cap);
        let mut comment = ColumnBuilder::with_capacity(DataType::Str, cap);
        for &(odate, okey) in &orders[range.start..range.end()] {
            let lines = 1 + rng.gen_range(7);
            for ln in 0..lines {
                let pk = 1 + rng.gen_range(n_part) as i32;
                let qty = 1 + rng.gen_range(50) as i64;
                let sdate = odate + 1 + rng.gen_range(121) as i32;
                let cdate = odate + 30 + rng.gen_range(61) as i32;
                let rdate = sdate + 1 + rng.gen_range(30) as i32;
                orderkey.push_i32(okey);
                partkey.push_i32(pk);
                suppkey.push_i32(1 + rng.gen_range(n_supp) as i32);
                linenumber.push_i32(ln as i32 + 1);
                quantity.push_i32(qty as i32);
                extprice.push_i64(qty * retail_price_cents(pk));
                discount.push_i64(rng.gen_range(11) as i64); // 0..=10 percent
                tax.push_i64(rng.gen_range(9) as i64); // 0..=8 percent
                returnflag.push_str(if rdate <= today {
                    if rng.gen_range(2) == 0 {
                        "R"
                    } else {
                        "A"
                    }
                } else {
                    "N"
                });
                linestatus.push_str(if sdate > today { "O" } else { "F" });
                shipdate.push_i32(sdate);
                shipyear.push_i32(crate::dates::year_of(sdate));
                commitdate.push_i32(cdate);
                receiptdate.push_i32(rdate);
                shipinstruct.push_str(SHIP_INSTRUCT[rng.gen_range(SHIP_INSTRUCT.len())]);
                shipmode.push_str(SHIP_MODES[rng.gen_range(SHIP_MODES.len())]);
                comment.push_str(&text::comment(&mut rng, 6, None));
            }
        }
        vec![
            orderkey.finish(),
            partkey.finish(),
            suppkey.finish(),
            linenumber.finish(),
            quantity.finish(),
            extprice.finish(),
            discount.finish(),
            tax.finish(),
            returnflag.finish(),
            linestatus.finish(),
            shipdate.finish(),
            shipyear.finish(),
            commitdate.finish(),
            receiptdate.finish(),
            shipinstruct.finish(),
            shipmode.finish(),
            comment.finish(),
        ]
    });
    table_from_parts(
        "lineitem",
        &[
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_linenumber",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
            "l_returnflag",
            "l_linestatus",
            "l_shipdate",
            "l_shipyear",
            "l_commitdate",
            "l_receiptdate",
            "l_shipinstruct",
            "l_shipmode",
            "l_comment",
        ],
        parts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dates;

    fn small() -> TpchData {
        TpchData::generate(0.002, 42)
    }

    #[test]
    fn row_counts_scale() {
        let db = small();
        assert_eq!(db.region.rows(), 5);
        assert_eq!(db.nation.rows(), 25);
        assert_eq!(db.supplier.rows(), 20);
        assert_eq!(db.customer.rows(), 300);
        assert_eq!(db.part.rows(), 400);
        assert_eq!(db.partsupp.rows(), 1600);
        assert_eq!(db.orders.rows(), 3000);
        // lineitem ≈ 4x orders
        let l = db.lineitem.rows();
        assert!(l > 2 * 3000 && l < 8 * 3000, "lineitem rows {l}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TpchData::generate(0.001, 7);
        let b = TpchData::generate(0.001, 7);
        assert_eq!(a.lineitem.rows(), b.lineitem.rows());
        let ca = a.lineitem.column("l_extendedprice").unwrap();
        let cb = b.lineitem.column("l_extendedprice").unwrap();
        let va = ca.slice_vector(0, 100);
        let vb = cb.slice_vector(0, 100);
        assert_eq!(va.as_i64(), vb.as_i64());
    }

    #[test]
    fn generation_is_thread_count_invariant() {
        // SF 0.1 spans several 32K-row partitions on orders/lineitem, so a
        // scheduling bug would show up as a column mismatch here.
        let a = TpchData::generate_with_threads(0.1, 9, 1);
        let b = TpchData::generate_with_threads(0.1, 9, 4);
        for t in [
            "supplier", "customer", "part", "partsupp", "orders", "lineitem",
        ] {
            let ta = a.table(t).unwrap();
            let tb = b.table(t).unwrap();
            assert_eq!(ta.rows(), tb.rows(), "{t} rows");
            for name in ta.column_names() {
                let ca = ta.column(name).unwrap().slice_vector(0, ta.rows());
                let cb = tb.column(name).unwrap().slice_vector(0, tb.rows());
                use ma_vector::Vector;
                let equal = match (&ca, &cb) {
                    (Vector::I16(x), Vector::I16(y)) => x == y,
                    (Vector::I32(x), Vector::I32(y)) => x == y,
                    (Vector::I64(x), Vector::I64(y)) => x == y,
                    (Vector::F64(x), Vector::F64(y)) => x == y,
                    (Vector::Str(x), Vector::Str(y)) => {
                        x.iter().zip(y.iter()).all(|(a, b)| a == b)
                            && x.views().len() == y.views().len()
                    }
                    _ => false,
                };
                assert!(equal, "{t}.{name} differs across thread counts");
            }
        }
    }

    #[test]
    fn orders_sorted_by_key_and_date_clustered() {
        let db = small();
        let keys = db
            .orders
            .column("o_orderkey")
            .unwrap()
            .slice_vector(0, 3000);
        let keys = keys.as_i32();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys sorted unique");
        let dates_col = db
            .orders
            .column("o_orderdate")
            .unwrap()
            .slice_vector(0, 3000);
        let d = dates_col.as_i32();
        // Clustering: the first decile's mean date far below the last's.
        let head: f64 = d[..300].iter().map(|&x| x as f64).sum::<f64>() / 300.0;
        let tail: f64 = d[2700..].iter().map(|&x| x as f64).sum::<f64>() / 300.0;
        assert!(tail - head > 1500.0, "head {head} tail {tail}");
    }

    #[test]
    fn lineitem_sorted_by_orderkey() {
        let db = small();
        let n = db.lineitem.rows();
        let keys = db.lineitem.column("l_orderkey").unwrap().slice_vector(0, n);
        assert!(keys.as_i32().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn lineitem_value_ranges() {
        let db = small();
        let n = db.lineitem.rows();
        let qty = db.lineitem.column("l_quantity").unwrap().slice_vector(0, n);
        assert!(qty.as_i32().iter().all(|&q| (1..=50).contains(&q)));
        let disc = db.lineitem.column("l_discount").unwrap().slice_vector(0, n);
        assert!(disc.as_i64().iter().all(|&d| (0..=10).contains(&d)));
        let tax = db.lineitem.column("l_tax").unwrap().slice_vector(0, n);
        assert!(tax.as_i64().iter().all(|&t| (0..=8).contains(&t)));
        let sd = db.lineitem.column("l_shipdate").unwrap().slice_vector(0, n);
        let rd = db
            .lineitem
            .column("l_receiptdate")
            .unwrap()
            .slice_vector(0, n);
        for (s, r) in sd.as_i32().iter().zip(rd.as_i32()) {
            assert!(r > s, "receipt after ship");
        }
    }

    #[test]
    fn partsupp_keys_unique() {
        let db = small();
        let n = db.partsupp.rows();
        let pk = db.partsupp.column("ps_partkey").unwrap().slice_vector(0, n);
        let sk = db.partsupp.column("ps_suppkey").unwrap().slice_vector(0, n);
        let mut seen = std::collections::HashSet::new();
        for (p, s) in pk.as_i32().iter().zip(sk.as_i32()) {
            assert!(seen.insert((*p, *s)), "duplicate partsupp key ({p},{s})");
        }
    }

    #[test]
    fn every_third_customer_has_no_orders() {
        let db = small();
        let ck = db.orders.column("o_custkey").unwrap().slice_vector(0, 3000);
        assert!(ck.as_i32().iter().all(|&k| k % 3 != 0));
    }

    #[test]
    fn foreign_keys_in_range() {
        let db = small();
        let n = db.lineitem.rows();
        let ok = db.lineitem.column("l_orderkey").unwrap().slice_vector(0, n);
        assert!(ok
            .as_i32()
            .iter()
            .all(|&k| k >= 1 && k <= db.orders.rows() as i32));
        let pk = db.lineitem.column("l_partkey").unwrap().slice_vector(0, n);
        assert!(pk
            .as_i32()
            .iter()
            .all(|&k| k >= 1 && k <= db.part.rows() as i32));
        let ck = db.orders.column("o_custkey").unwrap().slice_vector(0, 3000);
        assert!(ck
            .as_i32()
            .iter()
            .all(|&k| k >= 1 && k <= db.customer.rows() as i32));
    }

    #[test]
    fn q13_pattern_rate_about_one_percent() {
        let db = TpchData::generate(0.01, 1);
        let n = db.orders.rows();
        let com = db.orders.column("o_comment").unwrap().slice_vector(0, n);
        let pat = ma_primitives::LikePattern::compile("%special%requests%");
        let hits = com.as_str_vec().iter().filter(|s| pat.matches(s)).count();
        let rate = hits as f64 / n as f64;
        assert!((0.003..0.03).contains(&rate), "rate {rate}");
    }

    #[test]
    fn shipmodes_and_priorities_valid() {
        let db = small();
        let n = db.lineitem.rows();
        let sm = db.lineitem.column("l_shipmode").unwrap().slice_vector(0, n);
        for s in sm.as_str_vec().iter() {
            assert!(SHIP_MODES.contains(&s), "bad shipmode {s}");
        }
        let pr = db
            .orders
            .column("o_orderpriority")
            .unwrap()
            .slice_vector(0, 3000);
        for p in pr.as_str_vec().iter() {
            assert!(PRIORITIES.contains(&p), "bad priority {p}");
        }
    }

    #[test]
    fn years_match_dates() {
        let db = small();
        let n = db.lineitem.rows();
        let sd = db.lineitem.column("l_shipdate").unwrap().slice_vector(0, n);
        let sy = db.lineitem.column("l_shipyear").unwrap().slice_vector(0, n);
        for (d, y) in sd.as_i32().iter().zip(sy.as_i32()).take(500) {
            assert_eq!(dates::year_of(*d), *y);
        }
    }

    #[test]
    fn table_lookup_by_name() {
        let db = small();
        assert!(db.table("lineitem").is_some());
        assert!(db.table("nope").is_none());
    }
}
