//! Per-query adaptive dispatch: instance creation, flavor-subset resolution
//! and profiling registry.
//!
//! A [`QueryContext`] is created per query execution and is `Send + Sync` —
//! cloning it is cheap (one `Arc`) and every clone shares the same instance
//! registry, so parallel scan workers each build their *own* primitive
//! instances (per-worker bandit state, the Cuttlefish design) while all
//! stats land in one place. The hot path takes no locks: each
//! [`PrimInstance`] accumulates into private stats and publishes them into
//! its registry slot at batch granularity ([`FLUSH_EVERY`] calls) and on
//! drop. See DESIGN.md, "Per-worker statistics merge".
//!
//! Operators ask the context for typed [`PrimInstance`]s by signature; the
//! context resolves the flavor subset according to the configured
//! [`FlavorMode`], builds the bandit (or fixed/heuristic) policy, and
//! registers the instance for post-query reporting (per-instance profiles
//! and APHs — the data behind Tables 6–11 and Figures 2/4/11).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ma_core::cycles::ticks_now;
use ma_core::policy::{ClampedPolicy, FixedPolicy, Policy};
use ma_core::{Aph, FlavorSet, PrimitiveDictionary, PrimitiveProfile};

use crate::config::{ExecConfig, FlavorMode};
use crate::heuristics::{tuned, HeuristicPolicy, HeuristicRule};
use crate::ExecError;

/// Calls between hot-path stats publications into the shared registry slot.
pub const FLUSH_EVERY: u32 = 64;

/// Family hint used to pick the right hard-coded heuristic in
/// [`FlavorMode::Heuristic`] mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeurKind {
    /// Selection primitive: branching-vs-no-branching rule on observed
    /// selectivity.
    Selection,
    /// Map primitive: full-computation rule on input density; the element
    /// width picks the threshold (Fig. 8).
    FullComp {
        /// Element width in bytes (picks the Fig. 8 threshold).
        elem_bytes: usize,
    },
    /// Bloom lookup: fission rule on filter size.
    Fission,
    /// No applicable heuristic.
    None,
}

/// Per-instance statistics. Each live [`PrimInstance`] owns a private copy
/// it updates lock-free; the registry holds a periodically refreshed
/// snapshot behind a mutex.
#[derive(Debug, Clone)]
pub struct InstanceStats {
    /// Operator-assigned label, e.g. `"Q12/sel_ge"`.
    pub label: String,
    /// Primitive signature.
    pub signature: String,
    /// Flavor names, index-aligned with `flavor_calls`.
    pub flavor_names: Vec<String>,
    /// Cumulative totals + APH.
    pub profile: PrimitiveProfile,
    /// Calls per flavor.
    pub flavor_calls: Vec<u64>,
}

/// A typed primitive instance: flavor set + policy + stats.
///
/// Not `Sync` (the policy mutates on every call) but `Send`: a whole
/// operator pipeline, instances included, can move to a worker thread.
pub struct PrimInstance<F: Copy> {
    set: Arc<FlavorSet<F>>,
    policy: Box<dyn Policy>,
    local: InstanceStats,
    shared: Arc<Mutex<InstanceStats>>,
    unflushed: u32,
    last: usize,
}

impl<F: Copy> PrimInstance<F> {
    /// Chooses a flavor, runs `call` with it, records cost.
    #[inline]
    pub fn invoke<R>(&mut self, tuples: u64, call: impl FnOnce(F) -> R) -> R {
        let fi = self.policy.choose();
        self.last = fi;
        let f = self.set.flavor(fi);
        let t0 = ticks_now();
        let out = call(f);
        let ticks = ticks_now().saturating_sub(t0);
        self.policy.observe(fi, tuples, ticks);
        self.local.profile.record(tuples, ticks);
        self.local.flavor_calls[fi] += 1;
        self.unflushed += 1;
        if self.unflushed >= FLUSH_EVERY {
            self.flush();
        }
        out
    }

    /// Publishes the private stats into the shared registry slot. Called
    /// automatically every [`FLUSH_EVERY`] calls and on drop; call it
    /// manually only when reading [`QueryContext::reports`] while the
    /// instance is still live.
    pub fn flush(&mut self) {
        let mut shared = self.shared.lock().expect("stats slot poisoned");
        shared.profile = self.local.profile.clone();
        shared.flavor_calls.clone_from(&self.local.flavor_calls);
        self.unflushed = 0;
    }

    /// Supplies a context hint to the policy (used by heuristics mode).
    #[inline]
    pub fn hint(&mut self, value: f64) {
        self.policy.hint(value);
    }

    /// Index of the flavor used by the last call.
    pub fn last_flavor(&self) -> usize {
        self.last
    }

    /// Name of the flavor used by the last call.
    pub fn last_flavor_name(&self) -> &str {
        self.set.info(self.last).name
    }

    /// The (possibly subsetted) flavor set of this instance.
    pub fn set(&self) -> &Arc<FlavorSet<F>> {
        &self.set
    }
}

impl<F: Copy> Drop for PrimInstance<F> {
    fn drop(&mut self) {
        if self.unflushed > 0 {
            self.flush();
        }
    }
}

/// A finished instance's report.
#[derive(Debug, Clone)]
pub struct InstanceReport {
    /// Operator-assigned label.
    pub label: String,
    /// Primitive signature.
    pub signature: String,
    /// Total calls.
    pub calls: u64,
    /// Total tuples processed.
    pub tuples: u64,
    /// Total ticks spent.
    pub ticks: u64,
    /// APH, if collected.
    pub aph: Option<Aph>,
    /// `(flavor name, calls)` pairs.
    pub flavor_calls: Vec<(String, u64)>,
}

impl InstanceReport {
    /// Lifetime mean cost in ticks/tuple.
    pub fn avg_cost(&self) -> f64 {
        if self.tuples == 0 {
            0.0
        } else {
            self.ticks as f64 / self.tuples as f64
        }
    }
}

struct CtxInner {
    dict: Arc<PrimitiveDictionary>,
    config: ExecConfig,
    registry: Mutex<Vec<Arc<Mutex<InstanceStats>>>>,
    mem: Mutex<Vec<Arc<MemSlot>>>,
    next_seed: AtomicU64,
}

struct MemSlot {
    label: String,
    bound: u64,
    high: AtomicU64,
}

/// A byte-accounting handle for one allocation-heavy operator instance.
///
/// Created by [`QueryContext::mem_tracker`] with the *proven* peak-byte
/// bound the static cost pass derived for the instance; the operator calls
/// [`MemTracker::record`] with its current live-data byte count at the
/// points where that count peaks (table growth, build finish, sort
/// materialization, chunk receipt). Records are `fetch_max`, so the slot
/// ends up holding the high-water mark, which
/// [`QueryContext::mem_reports`] pairs with the bound — the fuzzer's
/// actual-≤-bound oracle and `repro mem` both read that pairing.
#[derive(Clone)]
pub struct MemTracker {
    slot: Arc<MemSlot>,
}

impl MemTracker {
    /// Records a live-byte observation (keeps the maximum seen).
    #[inline]
    pub fn record(&self, bytes: u64) {
        self.slot.high.fetch_max(bytes, Ordering::Relaxed);
    }

    /// The proven bound this tracker was registered with.
    pub fn bound(&self) -> u64 {
        self.slot.bound
    }
}

/// One operator instance's predicted-vs-actual memory pairing.
#[derive(Debug, Clone)]
pub struct MemReport {
    /// Operator-assigned label (plan-node label, shared across partitions).
    pub label: String,
    /// Proven peak-byte bound from the static cost pass.
    pub bound: u64,
    /// High-water live bytes actually recorded during execution.
    pub high_water: u64,
}

/// Per-query context: dictionary + config + instance registry.
///
/// Cloning shares everything (`Arc` inside); parallel fragments clone the
/// context into their factory so per-worker instances register centrally.
#[derive(Clone)]
pub struct QueryContext {
    inner: Arc<CtxInner>,
}

impl QueryContext {
    /// Creates a context over a dictionary with the given configuration.
    pub fn new(dict: Arc<PrimitiveDictionary>, config: ExecConfig) -> Self {
        let seed = config.seed;
        QueryContext {
            inner: Arc::new(CtxInner {
                dict,
                config,
                registry: Mutex::new(Vec::new()),
                mem: Mutex::new(Vec::new()),
                next_seed: AtomicU64::new(seed),
            }),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.inner.config
    }

    /// The vector size used by operators.
    pub fn vector_size(&self) -> usize {
        self.inner.config.vector_size
    }

    /// Worker threads for sharded scans (≥ 1).
    pub fn worker_threads(&self) -> usize {
        self.inner.config.worker_threads.max(1)
    }

    fn fresh_seed(&self) -> u64 {
        self.inner
            .next_seed
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(
                    s.wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407),
                )
            })
            .expect("fetch_update closure never returns None")
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407)
    }

    /// Creates a typed instance for `signature`.
    ///
    /// The flavor subset and policy follow the configured [`FlavorMode`];
    /// `heur` tells heuristics mode which rule applies to this family.
    pub fn instance<F>(
        &self,
        signature: &str,
        label: impl Into<String>,
        heur: HeurKind,
    ) -> Result<PrimInstance<F>, ExecError>
    where
        F: Copy + Send + Sync + 'static,
    {
        let config = &self.inner.config;
        let master = self
            .inner
            .dict
            .lookup::<F>(signature)
            .ok_or_else(|| ExecError::UnknownPrimitive(signature.to_string()))?;

        let (set, policy): (Arc<FlavorSet<F>>, Box<dyn Policy>) = match &config.flavors {
            FlavorMode::Fixed(name) => {
                let idx = name.and_then(|n| master.index_of(n)).unwrap_or(0);
                let arms = master.len();
                (master, Box::new(FixedPolicy::new(arms, idx)))
            }
            FlavorMode::Adaptive { axis, policy } => {
                let sub = match axis.names() {
                    None => master.canonical_subset(),
                    Some([]) => master
                        .subset(&[master.info(0).name])
                        .expect("flavor 0 always exists"),
                    Some(names) => match master.subset(names) {
                        Some(s) if s.len() > 1 => s,
                        // Axis doesn't apply to this primitive: default only.
                        _ => master
                            .subset(&[master.info(0).name])
                            .expect("flavor 0 always exists"),
                    },
                };
                let arms = sub.len();
                let pol: Box<dyn Policy> = if arms == 1 {
                    Box::new(FixedPolicy::new(1, 0))
                } else {
                    let inner = policy.build(arms, self.fresh_seed());
                    match config.reward_clamp {
                        Some(k) => Box::new(ClampedPolicy::new(inner, k)),
                        None => inner,
                    }
                };
                (Arc::new(sub), pol)
            }
            FlavorMode::Heuristic => {
                let (rule, alt_name): (HeuristicRule, &str) = match heur {
                    HeurKind::Selection => (tuned::SELECTION, "no_branching"),
                    HeurKind::FullComp { elem_bytes } => {
                        (tuned::full_computation(elem_bytes), "full")
                    }
                    HeurKind::Fission => (tuned::FISSION, "fission"),
                    HeurKind::None => (HeuristicRule::Off, ""),
                };
                let arms = master.len();
                let alt = master.index_of(alt_name);
                let pol: Box<dyn Policy> = match (rule, alt) {
                    (HeuristicRule::Off, _) | (_, None) => Box::new(FixedPolicy::new(arms, 0)),
                    (rule, Some(alt)) => Box::new(HeuristicPolicy::new(rule, arms, 0, alt)),
                };
                (master, pol)
            }
        };

        let profile = if config.collect_aph {
            PrimitiveProfile::with_aph()
        } else {
            PrimitiveProfile::totals_only()
        };
        let local = InstanceStats {
            label: label.into(),
            signature: signature.to_string(),
            flavor_names: set.infos().iter().map(|i| i.name.to_string()).collect(),
            profile,
            flavor_calls: vec![0; set.len()],
        };
        let shared = Arc::new(Mutex::new(local.clone()));
        self.inner
            .registry
            .lock()
            .expect("registry poisoned")
            .push(Arc::clone(&shared));
        Ok(PrimInstance {
            set,
            policy,
            local,
            shared,
            unflushed: 0,
            last: 0,
        })
    }

    /// Reports of all instances created so far. Numbers for still-live
    /// instances lag by up to [`FLUSH_EVERY`] calls unless
    /// [`PrimInstance::flush`] is called first; dropped instances are exact.
    pub fn reports(&self) -> Vec<InstanceReport> {
        self.inner
            .registry
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|s| {
                let s = s.lock().expect("stats slot poisoned");
                InstanceReport {
                    label: s.label.clone(),
                    signature: s.signature.clone(),
                    calls: s.profile.calls,
                    tuples: s.profile.tot_tuples,
                    ticks: s.profile.tot_ticks,
                    aph: s.profile.aph.clone(),
                    flavor_calls: s
                        .flavor_names
                        .iter()
                        .cloned()
                        .zip(s.flavor_calls.iter().copied())
                        .collect(),
                }
            })
            .collect()
    }

    /// Reports merged across workers: instances sharing `(label,
    /// signature)` — the same plan node built once per scan worker — are
    /// folded into one report with summed calls/tuples/ticks and
    /// index-aligned flavor-call sums. APHs are per-worker histories and
    /// are not merged (the merged report carries none). Sorted by label
    /// then signature for stable comparisons.
    pub fn merged_reports(&self) -> Vec<InstanceReport> {
        let mut merged: Vec<InstanceReport> = Vec::new();
        for r in self.reports() {
            match merged
                .iter_mut()
                .find(|m| m.label == r.label && m.signature == r.signature)
            {
                Some(m) => {
                    m.calls += r.calls;
                    m.tuples += r.tuples;
                    m.ticks += r.ticks;
                    debug_assert_eq!(m.flavor_calls.len(), r.flavor_calls.len());
                    for (acc, (_, c)) in m.flavor_calls.iter_mut().zip(&r.flavor_calls) {
                        acc.1 += c;
                    }
                }
                None => merged.push(InstanceReport { aph: None, ..r }),
            }
        }
        merged.sort_by(|a, b| (&a.label, &a.signature).cmp(&(&b.label, &b.signature)));
        merged
    }

    /// Registers a byte-accounting slot for one operator instance and
    /// returns its recording handle. `bound` is the proven peak-byte bound
    /// the planner computed for this instance while lowering; pairing bound
    /// and recordings in one slot is what lets the fuzz oracle check
    /// actual ≤ bound per instance without any label matching.
    pub fn mem_tracker(&self, label: impl Into<String>, bound: u64) -> MemTracker {
        let slot = Arc::new(MemSlot {
            label: label.into(),
            bound,
            high: AtomicU64::new(0),
        });
        self.inner
            .mem
            .lock()
            .expect("mem registry poisoned")
            .push(Arc::clone(&slot));
        MemTracker { slot }
    }

    /// Predicted-vs-actual memory reports for every registered slot, in
    /// registration order.
    pub fn mem_reports(&self) -> Vec<MemReport> {
        self.inner
            .mem
            .lock()
            .expect("mem registry poisoned")
            .iter()
            .map(|s| MemReport {
                label: s.label.clone(),
                bound: s.bound,
                high_water: s.high.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Sum of ticks spent inside primitives across all instances.
    pub fn total_primitive_ticks(&self) -> u64 {
        self.inner
            .registry
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|s| s.lock().expect("stats slot poisoned").profile.tot_ticks)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlavorAxis;
    use ma_primitives::{build_dictionary, SelColVal};

    fn ctx(config: ExecConfig) -> QueryContext {
        QueryContext::new(Arc::new(build_dictionary()), config)
    }

    fn run_sel(inst: &mut PrimInstance<SelColVal<i32>>, col: &[i32], val: i32) -> usize {
        let mut res = vec![0u32; col.len()];
        inst.invoke(col.len() as u64, |f| f(&mut res, col, val, None))
    }

    #[test]
    fn context_is_send_sync_and_clone_shares_registry() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<QueryContext>();

        let c = ctx(ExecConfig::fixed_default());
        let c2 = c.clone();
        let mut i = c2
            .instance::<SelColVal<i32>>("sel_lt_i32_col_val", "t", HeurKind::Selection)
            .unwrap();
        run_sel(&mut i, &[1, 2, 3], 2);
        drop(i);
        assert_eq!(c.reports().len(), 1, "clone registers into shared registry");
    }

    #[test]
    fn instances_are_send() {
        let c = ctx(ExecConfig::adaptive(FlavorAxis::Branching));
        let mut i = c
            .instance::<SelColVal<i32>>("sel_lt_i32_col_val", "t", HeurKind::Selection)
            .unwrap();
        let k = std::thread::spawn(move || {
            let col: Vec<i32> = (0..64).collect();
            run_sel(&mut i, &col, 32)
        })
        .join()
        .unwrap();
        assert_eq!(k, 32);
    }

    #[test]
    fn fixed_default_uses_flavor_zero() {
        let c = ctx(ExecConfig::fixed_default());
        let mut i = c
            .instance::<SelColVal<i32>>("sel_lt_i32_col_val", "t", HeurKind::Selection)
            .unwrap();
        let col: Vec<i32> = (0..100).collect();
        let k = run_sel(&mut i, &col, 50);
        assert_eq!(k, 50);
        assert_eq!(i.last_flavor_name(), "branching");
    }

    #[test]
    fn fixed_named_flavor() {
        let c = ctx(ExecConfig::fixed("no_branching"));
        let mut i = c
            .instance::<SelColVal<i32>>("sel_lt_i32_col_val", "t", HeurKind::Selection)
            .unwrap();
        run_sel(&mut i, &[1, 2, 3], 2);
        assert_eq!(i.last_flavor_name(), "no_branching");
    }

    #[test]
    fn fixed_unknown_name_falls_back_to_default() {
        let c = ctx(ExecConfig::fixed("fission")); // not a selection flavor
        let mut i = c
            .instance::<SelColVal<i32>>("sel_lt_i32_col_val", "t", HeurKind::Selection)
            .unwrap();
        run_sel(&mut i, &[1, 2, 3], 2);
        assert_eq!(i.last_flavor_name(), "branching");
    }

    #[test]
    fn adaptive_branching_axis_subsets_two_flavors() {
        let c = ctx(ExecConfig::adaptive(FlavorAxis::Branching));
        let i = c
            .instance::<SelColVal<i32>>("sel_lt_i32_col_val", "t", HeurKind::Selection)
            .unwrap();
        assert_eq!(i.set().len(), 2);
        assert_eq!(i.set().info(0).name, "branching");
        assert_eq!(i.set().info(1).name, "no_branching");
    }

    #[test]
    fn adaptive_all_axis_uses_canonical_set() {
        let c = ctx(ExecConfig::adaptive(FlavorAxis::All));
        let i = c
            .instance::<SelColVal<i32>>("sel_lt_i32_col_val", "t", HeurKind::Selection)
            .unwrap();
        assert_eq!(i.set().len(), 5);
    }

    #[test]
    fn adaptive_inapplicable_axis_degenerates_to_default() {
        let c = ctx(ExecConfig::adaptive(FlavorAxis::Fission));
        let mut i = c
            .instance::<SelColVal<i32>>("sel_lt_i32_col_val", "t", HeurKind::Selection)
            .unwrap();
        assert_eq!(i.set().len(), 1);
        run_sel(&mut i, &[5, 6], 6);
        assert_eq!(i.last_flavor_name(), "branching");
    }

    #[test]
    fn heuristic_mode_switches_on_hint() {
        let c = ctx(ExecConfig::heuristic());
        let mut i = c
            .instance::<SelColVal<i32>>("sel_lt_i32_col_val", "t", HeurKind::Selection)
            .unwrap();
        let col: Vec<i32> = (0..100).collect();
        i.hint(0.5); // mid selectivity → no_branching
        run_sel(&mut i, &col, 50);
        assert_eq!(i.last_flavor_name(), "no_branching");
        i.hint(0.99);
        run_sel(&mut i, &col, 99);
        assert_eq!(i.last_flavor_name(), "branching");
    }

    #[test]
    fn unknown_signature_is_an_error() {
        let c = ctx(ExecConfig::fixed_default());
        let r = c.instance::<SelColVal<i32>>("sel_nonsense", "t", HeurKind::None);
        assert!(matches!(r, Err(ExecError::UnknownPrimitive(_))));
    }

    #[test]
    fn reports_accumulate() {
        let c = ctx(ExecConfig::adaptive(FlavorAxis::Branching));
        let mut i = c
            .instance::<SelColVal<i32>>("sel_lt_i32_col_val", "q1/sel", HeurKind::Selection)
            .unwrap();
        let col: Vec<i32> = (0..1024).collect();
        for _ in 0..100 {
            run_sel(&mut i, &col, 512);
        }
        // 100 calls = one 64-call flush + 36 pending; the registry lags
        // until the instance flushes (explicitly or on drop).
        assert_eq!(c.reports()[0].calls, 64);
        i.flush();
        let reports = c.reports();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.label, "q1/sel");
        assert_eq!(r.calls, 100);
        assert_eq!(r.tuples, 102_400);
        assert!(r.ticks > 0);
        assert!(r.avg_cost() > 0.0);
        let total_flavor_calls: u64 = r.flavor_calls.iter().map(|(_, c)| c).sum();
        assert_eq!(total_flavor_calls, 100);
        assert_eq!(c.total_primitive_ticks(), r.ticks);
        assert!(r.aph.is_some());
    }

    #[test]
    fn drop_publishes_final_stats() {
        let c = ctx(ExecConfig::fixed_default());
        let mut i = c
            .instance::<SelColVal<i32>>("sel_lt_i32_col_val", "t", HeurKind::Selection)
            .unwrap();
        for _ in 0..5 {
            run_sel(&mut i, &[1, 2, 3, 4], 3);
        }
        assert_eq!(c.reports()[0].calls, 0, "below flush granularity");
        drop(i);
        let r = c.reports();
        assert_eq!(r[0].calls, 5);
        assert_eq!(r[0].tuples, 20);
    }

    #[test]
    fn mem_tracker_keeps_high_water_per_slot() {
        let c = ctx(ExecConfig::fixed_default());
        let t1 = c.mem_tracker("Q/agg", 4096);
        let t2 = c.mem_tracker("Q/join", 1 << 20);
        t1.record(100);
        t1.record(700);
        t1.record(300); // lower than the high-water mark: ignored
        t2.clone().record(99); // clones share the slot
        assert_eq!(t1.bound(), 4096);
        let reports = c.mem_reports();
        assert_eq!(reports.len(), 2);
        assert_eq!(
            (reports[0].label.as_str(), reports[0].high_water),
            ("Q/agg", 700)
        );
        assert_eq!(reports[0].bound, 4096);
        assert_eq!(
            (reports[1].label.as_str(), reports[1].high_water),
            ("Q/join", 99)
        );
    }

    #[test]
    fn merged_reports_fold_per_worker_instances() {
        let c = ctx(ExecConfig::fixed_default());
        for _ in 0..3 {
            let mut i = c
                .instance::<SelColVal<i32>>("sel_lt_i32_col_val", "Q/sel", HeurKind::Selection)
                .unwrap();
            run_sel(&mut i, &[1, 2, 3, 4], 3);
        }
        let mut other = c
            .instance::<SelColVal<i32>>("sel_gt_i32_col_val", "Q/other", HeurKind::Selection)
            .unwrap();
        run_sel(&mut other, &[1, 2], 1);
        drop(other);

        assert_eq!(c.reports().len(), 4);
        let merged = c.merged_reports();
        assert_eq!(merged.len(), 2);
        let sel = merged.iter().find(|m| m.label == "Q/sel").unwrap();
        assert_eq!(sel.calls, 3);
        assert_eq!(sel.tuples, 12);
        assert_eq!(sel.flavor_calls.iter().map(|(_, c)| c).sum::<u64>(), 3);
        assert!(sel.aph.is_none(), "merged reports drop per-worker APHs");
    }
}
