//! Per-query adaptive dispatch: instance creation, flavor-subset resolution
//! and profiling registry.
//!
//! A [`QueryContext`] is created per query execution. Operators ask it for
//! typed [`PrimInstance`]s by signature; the context resolves the flavor
//! subset according to the configured [`FlavorMode`], builds the bandit (or
//! fixed/heuristic) policy, and registers the instance for post-query
//! reporting (per-instance profiles and APHs — the data behind Tables 6–11
//! and Figures 2/4/11).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use ma_core::cycles::ticks_now;
use ma_core::policy::{FixedPolicy, Policy};
use ma_core::{Aph, FlavorSet, PrimitiveDictionary, PrimitiveProfile};

use crate::config::{ExecConfig, FlavorMode};
use crate::heuristics::{tuned, HeuristicPolicy, HeuristicRule};
use crate::ExecError;

/// Family hint used to pick the right hard-coded heuristic in
/// [`FlavorMode::Heuristic`] mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeurKind {
    /// Selection primitive: branching-vs-no-branching rule on observed
    /// selectivity.
    Selection,
    /// Map primitive: full-computation rule on input density; the element
    /// width picks the threshold (Fig. 8).
    FullComp {
        /// Element width in bytes (picks the Fig. 8 threshold).
        elem_bytes: usize,
    },
    /// Bloom lookup: fission rule on filter size.
    Fission,
    /// No applicable heuristic.
    None,
}

/// Shared per-instance statistics, visible to the registry after the run.
#[derive(Debug)]
pub struct InstanceStats {
    /// Operator-assigned label, e.g. `"Q12/sel_ge"`.
    pub label: String,
    /// Primitive signature.
    pub signature: String,
    /// Flavor names, index-aligned with `flavor_calls`.
    pub flavor_names: Vec<String>,
    /// Cumulative totals + APH.
    pub profile: PrimitiveProfile,
    /// Calls per flavor.
    pub flavor_calls: Vec<u64>,
}

/// A typed primitive instance: flavor set + policy + stats.
pub struct PrimInstance<F: Copy> {
    set: Arc<FlavorSet<F>>,
    policy: Box<dyn Policy>,
    stats: Rc<RefCell<InstanceStats>>,
    last: usize,
}

impl<F: Copy> PrimInstance<F> {
    /// Chooses a flavor, runs `call` with it, records cost.
    #[inline]
    pub fn invoke<R>(&mut self, tuples: u64, call: impl FnOnce(F) -> R) -> R {
        let fi = self.policy.choose();
        self.last = fi;
        let f = self.set.flavor(fi);
        let t0 = ticks_now();
        let out = call(f);
        let ticks = ticks_now().saturating_sub(t0);
        self.policy.observe(fi, tuples, ticks);
        let mut stats = self.stats.borrow_mut();
        stats.profile.record(tuples, ticks);
        stats.flavor_calls[fi] += 1;
        out
    }

    /// Supplies a context hint to the policy (used by heuristics mode).
    #[inline]
    pub fn hint(&mut self, value: f64) {
        self.policy.hint(value);
    }

    /// Index of the flavor used by the last call.
    pub fn last_flavor(&self) -> usize {
        self.last
    }

    /// Name of the flavor used by the last call.
    pub fn last_flavor_name(&self) -> &str {
        self.set.info(self.last).name
    }

    /// The (possibly subsetted) flavor set of this instance.
    pub fn set(&self) -> &Arc<FlavorSet<F>> {
        &self.set
    }
}

/// A finished instance's report.
#[derive(Debug, Clone)]
pub struct InstanceReport {
    /// Operator-assigned label.
    pub label: String,
    /// Primitive signature.
    pub signature: String,
    /// Total calls.
    pub calls: u64,
    /// Total tuples processed.
    pub tuples: u64,
    /// Total ticks spent.
    pub ticks: u64,
    /// APH, if collected.
    pub aph: Option<Aph>,
    /// `(flavor name, calls)` pairs.
    pub flavor_calls: Vec<(String, u64)>,
}

impl InstanceReport {
    /// Lifetime mean cost in ticks/tuple.
    pub fn avg_cost(&self) -> f64 {
        if self.tuples == 0 {
            0.0
        } else {
            self.ticks as f64 / self.tuples as f64
        }
    }
}

/// Per-query context: dictionary + config + instance registry.
pub struct QueryContext {
    dict: Arc<PrimitiveDictionary>,
    config: ExecConfig,
    registry: Rc<RefCell<Vec<Rc<RefCell<InstanceStats>>>>>,
    next_seed: RefCell<u64>,
}

impl QueryContext {
    /// Creates a context over a dictionary with the given configuration.
    pub fn new(dict: Arc<PrimitiveDictionary>, config: ExecConfig) -> Self {
        let seed = config.seed;
        QueryContext {
            dict,
            config,
            registry: Rc::new(RefCell::new(Vec::new())),
            next_seed: RefCell::new(seed),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// The vector size used by operators.
    pub fn vector_size(&self) -> usize {
        self.config.vector_size
    }

    fn fresh_seed(&self) -> u64 {
        let mut s = self.next_seed.borrow_mut();
        *s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *s
    }

    /// Creates a typed instance for `signature`.
    ///
    /// The flavor subset and policy follow the configured [`FlavorMode`];
    /// `heur` tells heuristics mode which rule applies to this family.
    pub fn instance<F>(
        &self,
        signature: &str,
        label: impl Into<String>,
        heur: HeurKind,
    ) -> Result<PrimInstance<F>, ExecError>
    where
        F: Copy + Send + Sync + 'static,
    {
        let master = self
            .dict
            .lookup::<F>(signature)
            .ok_or_else(|| ExecError::UnknownPrimitive(signature.to_string()))?;

        let (set, policy): (Arc<FlavorSet<F>>, Box<dyn Policy>) = match &self.config.flavors {
            FlavorMode::Fixed(name) => {
                let idx = name.and_then(|n| master.index_of(n)).unwrap_or(0);
                let arms = master.len();
                (master, Box::new(FixedPolicy::new(arms, idx)))
            }
            FlavorMode::Adaptive { axis, policy } => {
                let sub = match axis.names() {
                    None => master.canonical_subset(),
                    Some([]) => master
                        .subset(&[master.info(0).name])
                        .expect("flavor 0 always exists"),
                    Some(names) => match master.subset(names) {
                        Some(s) if s.len() > 1 => s,
                        // Axis doesn't apply to this primitive: default only.
                        _ => master
                            .subset(&[master.info(0).name])
                            .expect("flavor 0 always exists"),
                    },
                };
                let arms = sub.len();
                let pol: Box<dyn Policy> = if arms == 1 {
                    Box::new(FixedPolicy::new(1, 0))
                } else {
                    policy.build(arms, self.fresh_seed())
                };
                (Arc::new(sub), pol)
            }
            FlavorMode::Heuristic => {
                let (rule, alt_name): (HeuristicRule, &str) = match heur {
                    HeurKind::Selection => (tuned::SELECTION, "no_branching"),
                    HeurKind::FullComp { elem_bytes } => {
                        (tuned::full_computation(elem_bytes), "full")
                    }
                    HeurKind::Fission => (tuned::FISSION, "fission"),
                    HeurKind::None => (HeuristicRule::Off, ""),
                };
                let arms = master.len();
                let alt = master.index_of(alt_name);
                let pol: Box<dyn Policy> = match (rule, alt) {
                    (HeuristicRule::Off, _) | (_, None) => Box::new(FixedPolicy::new(arms, 0)),
                    (rule, Some(alt)) => Box::new(HeuristicPolicy::new(rule, arms, 0, alt)),
                };
                (master, pol)
            }
        };

        let profile = if self.config.collect_aph {
            PrimitiveProfile::with_aph()
        } else {
            PrimitiveProfile::totals_only()
        };
        let stats = Rc::new(RefCell::new(InstanceStats {
            label: label.into(),
            signature: signature.to_string(),
            flavor_names: set.infos().iter().map(|i| i.name.to_string()).collect(),
            profile,
            flavor_calls: vec![0; set.len()],
        }));
        self.registry.borrow_mut().push(Rc::clone(&stats));
        Ok(PrimInstance {
            set,
            policy,
            stats,
            last: 0,
        })
    }

    /// Reports of all instances created so far (including live ones).
    pub fn reports(&self) -> Vec<InstanceReport> {
        self.registry
            .borrow()
            .iter()
            .map(|s| {
                let s = s.borrow();
                InstanceReport {
                    label: s.label.clone(),
                    signature: s.signature.clone(),
                    calls: s.profile.calls,
                    tuples: s.profile.tot_tuples,
                    ticks: s.profile.tot_ticks,
                    aph: s.profile.aph.clone(),
                    flavor_calls: s
                        .flavor_names
                        .iter()
                        .cloned()
                        .zip(s.flavor_calls.iter().copied())
                        .collect(),
                }
            })
            .collect()
    }

    /// Sum of ticks spent inside primitives across all instances.
    pub fn total_primitive_ticks(&self) -> u64 {
        self.registry
            .borrow()
            .iter()
            .map(|s| s.borrow().profile.tot_ticks)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlavorAxis;
    use ma_primitives::{build_dictionary, SelColVal};

    fn ctx(config: ExecConfig) -> QueryContext {
        QueryContext::new(Arc::new(build_dictionary()), config)
    }

    fn run_sel(inst: &mut PrimInstance<SelColVal<i32>>, col: &[i32], val: i32) -> usize {
        let mut res = vec![0u32; col.len()];
        inst.invoke(col.len() as u64, |f| f(&mut res, col, val, None))
    }

    #[test]
    fn fixed_default_uses_flavor_zero() {
        let c = ctx(ExecConfig::fixed_default());
        let mut i = c
            .instance::<SelColVal<i32>>("sel_lt_i32_col_val", "t", HeurKind::Selection)
            .unwrap();
        let col: Vec<i32> = (0..100).collect();
        let k = run_sel(&mut i, &col, 50);
        assert_eq!(k, 50);
        assert_eq!(i.last_flavor_name(), "branching");
    }

    #[test]
    fn fixed_named_flavor() {
        let c = ctx(ExecConfig::fixed("no_branching"));
        let mut i = c
            .instance::<SelColVal<i32>>("sel_lt_i32_col_val", "t", HeurKind::Selection)
            .unwrap();
        run_sel(&mut i, &[1, 2, 3], 2);
        assert_eq!(i.last_flavor_name(), "no_branching");
    }

    #[test]
    fn fixed_unknown_name_falls_back_to_default() {
        let c = ctx(ExecConfig::fixed("fission")); // not a selection flavor
        let mut i = c
            .instance::<SelColVal<i32>>("sel_lt_i32_col_val", "t", HeurKind::Selection)
            .unwrap();
        run_sel(&mut i, &[1, 2, 3], 2);
        assert_eq!(i.last_flavor_name(), "branching");
    }

    #[test]
    fn adaptive_branching_axis_subsets_two_flavors() {
        let c = ctx(ExecConfig::adaptive(FlavorAxis::Branching));
        let i = c
            .instance::<SelColVal<i32>>("sel_lt_i32_col_val", "t", HeurKind::Selection)
            .unwrap();
        assert_eq!(i.set().len(), 2);
        assert_eq!(i.set().info(0).name, "branching");
        assert_eq!(i.set().info(1).name, "no_branching");
    }

    #[test]
    fn adaptive_all_axis_uses_canonical_set() {
        let c = ctx(ExecConfig::adaptive(FlavorAxis::All));
        let i = c
            .instance::<SelColVal<i32>>("sel_lt_i32_col_val", "t", HeurKind::Selection)
            .unwrap();
        assert_eq!(i.set().len(), 5);
    }

    #[test]
    fn adaptive_inapplicable_axis_degenerates_to_default() {
        let c = ctx(ExecConfig::adaptive(FlavorAxis::Fission));
        let mut i = c
            .instance::<SelColVal<i32>>("sel_lt_i32_col_val", "t", HeurKind::Selection)
            .unwrap();
        assert_eq!(i.set().len(), 1);
        run_sel(&mut i, &[5, 6], 6);
        assert_eq!(i.last_flavor_name(), "branching");
    }

    #[test]
    fn heuristic_mode_switches_on_hint() {
        let c = ctx(ExecConfig::heuristic());
        let mut i = c
            .instance::<SelColVal<i32>>("sel_lt_i32_col_val", "t", HeurKind::Selection)
            .unwrap();
        let col: Vec<i32> = (0..100).collect();
        i.hint(0.5); // mid selectivity → no_branching
        run_sel(&mut i, &col, 50);
        assert_eq!(i.last_flavor_name(), "no_branching");
        i.hint(0.99);
        run_sel(&mut i, &col, 99);
        assert_eq!(i.last_flavor_name(), "branching");
    }

    #[test]
    fn unknown_signature_is_an_error() {
        let c = ctx(ExecConfig::fixed_default());
        let r = c.instance::<SelColVal<i32>>("sel_nonsense", "t", HeurKind::None);
        assert!(matches!(r, Err(ExecError::UnknownPrimitive(_))));
    }

    #[test]
    fn reports_accumulate() {
        let c = ctx(ExecConfig::adaptive(FlavorAxis::Branching));
        let mut i = c
            .instance::<SelColVal<i32>>("sel_lt_i32_col_val", "q1/sel", HeurKind::Selection)
            .unwrap();
        let col: Vec<i32> = (0..1024).collect();
        for _ in 0..100 {
            run_sel(&mut i, &col, 512);
        }
        let reports = c.reports();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.label, "q1/sel");
        assert_eq!(r.calls, 100);
        assert_eq!(r.tuples, 102_400);
        assert!(r.ticks > 0);
        assert!(r.avg_cost() > 0.0);
        let total_flavor_calls: u64 = r.flavor_calls.iter().map(|(_, c)| c).sum();
        assert_eq!(total_flavor_calls, 100);
        assert_eq!(c.total_primitive_ticks(), r.ticks);
        assert!(r.aph.is_some());
    }
}
