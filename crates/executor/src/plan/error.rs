//! Typed errors from logical-plan construction.
//!
//! Every mistake a query author can make — misspelled column, joining a
//! string to an integer, summing a string column — is caught while the
//! [`crate::plan::PlanBuilder`] resolves names against schemas, *before*
//! any operator is constructed, and reported as a variant a caller can
//! match on (instead of a panic or a stringly-typed failure at lowering
//! time).

use ma_vector::DataType;

use crate::ExecError;

/// An error detected while building or resolving a [`crate::plan::LogicalPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A scan referenced a table the catalog does not know.
    UnknownTable(String),
    /// A column name did not resolve against the input schema.
    UnknownColumn {
        /// The name that failed to resolve.
        name: String,
        /// The schema it was resolved against, rendered `(a:i32, ...)`.
        schema: String,
    },
    /// A column name matched more than one input column.
    AmbiguousColumn(String),
    /// An output column name would collide with an existing one.
    DuplicateColumn(String),
    /// A column had the wrong type for the requested operation.
    TypeMismatch {
        /// What was being built (e.g. `join key l_orderkey = o_orderkey`).
        context: String,
        /// The type the operation requires.
        expected: String,
        /// The type actually found.
        found: DataType,
    },
    /// A structurally invalid plan (empty key list, payload on a semi
    /// join, ...).
    Invalid(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownTable(t) => write!(f, "unknown table {t}"),
            PlanError::UnknownColumn { name, schema } => {
                write!(f, "unknown column {name} in schema {schema}")
            }
            PlanError::AmbiguousColumn(n) => write!(f, "ambiguous column name {n}"),
            PlanError::DuplicateColumn(n) => write!(f, "duplicate output column {n}"),
            PlanError::TypeMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, found {found}"
            ),
            PlanError::Invalid(m) => write!(f, "invalid plan: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<PlanError> for ExecError {
    fn from(e: PlanError) -> Self {
        ExecError::Plan(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        let e = PlanError::UnknownColumn {
            name: "l_shipmode".into(),
            schema: "(a:i32)".into(),
        };
        assert!(e.to_string().contains("l_shipmode"));
        let e = PlanError::TypeMismatch {
            context: "join key x = y".into(),
            expected: "integer".into(),
            found: DataType::Str,
        };
        assert!(e.to_string().contains("join key"));
        assert!(e.to_string().contains("str"));
    }

    #[test]
    fn converts_to_exec_error() {
        let e: ExecError = PlanError::UnknownTable("nope".into()).into();
        assert!(e.to_string().contains("nope"));
    }
}
