//! Named expressions, predicates, aggregates and sort keys.
//!
//! These mirror the positional ASTs of [`crate::expr`] but reference
//! columns **by name**. The [`crate::plan::PlanBuilder`] resolves them
//! against the input node's [`Schema`] while the plan is built, applying
//! the same typing rules the expression compiler enforces
//! ([`crate::eval`]), so every name/type mistake surfaces as a typed
//! [`PlanError`] before an operator exists.

use ma_vector::{DataType, Schema};

use crate::expr::{ArithKind, CmpKind, CmpRhs, Expr, Pred, Value};
use crate::ops::AggSpec;
use crate::plan::PlanError;

/// A projection expression over named columns.
#[derive(Debug, Clone, PartialEq)]
pub enum NamedExpr {
    /// Input column by name.
    Col(String),
    /// A constant (valid only as the right-hand side of arithmetic, like
    /// [`Expr::Const`]).
    Const(Value),
    /// Binary arithmetic; both sides must resolve to the same numeric
    /// type (`i64` or `f64`).
    Arith {
        /// Operator.
        op: ArithKind,
        /// Left operand.
        lhs: Box<NamedExpr>,
        /// Right operand.
        rhs: Box<NamedExpr>,
    },
    /// Numeric widening cast.
    Cast {
        /// Target type.
        to: DataType,
        /// Operand.
        inner: Box<NamedExpr>,
    },
    /// `substring(col from start+1 for len)` over a string column.
    Substr {
        /// Column name.
        col: String,
        /// 0-based byte start.
        start: usize,
        /// Byte length.
        len: usize,
    },
}

/// Column reference by name — the entry point of most expressions.
pub fn col(name: impl Into<String>) -> NamedExpr {
    NamedExpr::Col(name.into())
}

/// i64 constant.
pub fn lit_i64(v: i64) -> NamedExpr {
    NamedExpr::Const(Value::I64(v))
}

/// f64 constant.
pub fn lit_f64(v: f64) -> NamedExpr {
    NamedExpr::Const(Value::F64(v))
}

/// `substring(col from start+1 for len)`.
pub fn substr(name: impl Into<String>, start: usize, len: usize) -> NamedExpr {
    NamedExpr::Substr {
        col: name.into(),
        start,
        len,
    }
}

#[allow(clippy::should_implement_trait)] // builder fns (mirroring Expr), not operator impls
impl NamedExpr {
    fn arith(self, op: ArithKind, rhs: NamedExpr) -> NamedExpr {
        NamedExpr::Arith {
            op,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }
    /// `self + rhs`.
    pub fn add(self, rhs: NamedExpr) -> NamedExpr {
        self.arith(ArithKind::Add, rhs)
    }
    /// `self - rhs`.
    pub fn sub(self, rhs: NamedExpr) -> NamedExpr {
        self.arith(ArithKind::Sub, rhs)
    }
    /// `self * rhs`.
    pub fn mul(self, rhs: NamedExpr) -> NamedExpr {
        self.arith(ArithKind::Mul, rhs)
    }
    /// `self / rhs`.
    pub fn div(self, rhs: NamedExpr) -> NamedExpr {
        self.arith(ArithKind::Div, rhs)
    }
    /// Numeric widening cast.
    pub fn cast(self, to: DataType) -> NamedExpr {
        NamedExpr::Cast {
            to,
            inner: Box::new(self),
        }
    }

    /// Resolves against `schema`, returning the positional expression and
    /// its output type.
    pub(crate) fn resolve(&self, schema: &Schema) -> Result<(Expr, DataType), PlanError> {
        match self {
            NamedExpr::Col(name) => {
                let i = resolve_col(schema, name)?;
                Ok((Expr::Col(i), schema.field(i).ty))
            }
            // The expression compiler only accepts constants as the rhs of
            // arithmetic (that position is special-cased below); reject
            // every other use here so the mistake is a typed error at
            // build(), not an ExecError at lowering.
            NamedExpr::Const(v) => Err(PlanError::Invalid(format!(
                "constant {v:?} is only valid as the right-hand side of arithmetic \
                 (write `col.sub(lit)`, not `lit.sub(col)`)"
            ))),
            NamedExpr::Arith { op, lhs, rhs } => {
                let (le, lty) = lhs.resolve(schema)?;
                let (re, rty) = match rhs.as_ref() {
                    NamedExpr::Const(v) => (Expr::Const(v.clone()), v.data_type()),
                    other => other.resolve(schema)?,
                };
                if lty != rty {
                    return Err(PlanError::TypeMismatch {
                        context: format!("{} operands", op.sig_name()),
                        expected: lty.to_string(),
                        found: rty,
                    });
                }
                if lty != DataType::I64 && lty != DataType::F64 {
                    return Err(PlanError::TypeMismatch {
                        context: format!("{} operands", op.sig_name()),
                        expected: "i64 or f64 (cast first)".into(),
                        found: lty,
                    });
                }
                Ok((Expr::arith(*op, le, re), lty))
            }
            NamedExpr::Cast { to, inner } => {
                let (ie, ity) = inner.resolve(schema)?;
                let ok = matches!(
                    (ity, *to),
                    (DataType::I16, DataType::I32 | DataType::I64 | DataType::F64)
                        | (DataType::I32, DataType::I64 | DataType::F64)
                        | (DataType::I64, DataType::F64)
                );
                if !ok {
                    return Err(PlanError::TypeMismatch {
                        context: format!("cast to {to}"),
                        expected: "a narrower numeric type".into(),
                        found: ity,
                    });
                }
                Ok((Expr::cast(*to, ie), *to))
            }
            NamedExpr::Substr { col, start, len } => {
                let i = resolve_col(schema, col)?;
                if schema.field(i).ty != DataType::Str {
                    return Err(PlanError::TypeMismatch {
                        context: format!("substr({col})"),
                        expected: DataType::Str.to_string(),
                        found: schema.field(i).ty,
                    });
                }
                Ok((
                    Expr::Substr {
                        col: i,
                        start: *start,
                        len: *len,
                    },
                    DataType::Str,
                ))
            }
        }
    }
}

/// A selection predicate over named columns.
#[derive(Debug, Clone, PartialEq)]
pub enum NamedPred {
    /// `col op const` or `col op col`.
    Cmp {
        /// Left column name.
        col: String,
        /// Comparison operator.
        op: CmpKind,
        /// Right-hand side.
        rhs: NamedCmpRhs,
    },
    /// `col LIKE pattern`.
    Like {
        /// String column name.
        col: String,
        /// LIKE pattern.
        pattern: String,
    },
    /// `col NOT LIKE pattern`.
    NotLike {
        /// String column name.
        col: String,
        /// LIKE pattern.
        pattern: String,
    },
    /// `col IN (strings...)`.
    InStr {
        /// String column name.
        col: String,
        /// Accepted values.
        values: Vec<String>,
    },
    /// Conjunction (evaluated left to right).
    And(Vec<NamedPred>),
    /// Disjunction.
    Or(Vec<NamedPred>),
}

/// Right-hand side of a named comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum NamedCmpRhs {
    /// Compare against a constant.
    Const(Value),
    /// Compare against another column.
    Col(String),
}

impl NamedPred {
    /// `col op const`.
    pub fn cmp_val(col: impl Into<String>, op: CmpKind, v: Value) -> NamedPred {
        NamedPred::Cmp {
            col: col.into(),
            op,
            rhs: NamedCmpRhs::Const(v),
        }
    }
    /// `col op other_col`.
    pub fn cmp_col(col: impl Into<String>, op: CmpKind, other: impl Into<String>) -> NamedPred {
        NamedPred::Cmp {
            col: col.into(),
            op,
            rhs: NamedCmpRhs::Col(other.into()),
        }
    }
    /// `lo <= col AND col <= hi` over i32.
    pub fn between_i32(col: impl Into<String>, lo: i32, hi: i32) -> NamedPred {
        let col = col.into();
        NamedPred::And(vec![
            NamedPred::cmp_val(col.clone(), CmpKind::Ge, Value::I32(lo)),
            NamedPred::cmp_val(col, CmpKind::Le, Value::I32(hi)),
        ])
    }
    /// `lo <= col AND col <= hi` over i64 (decimals ×100).
    pub fn between_i64(col: impl Into<String>, lo: i64, hi: i64) -> NamedPred {
        let col = col.into();
        NamedPred::And(vec![
            NamedPred::cmp_val(col.clone(), CmpKind::Ge, Value::I64(lo)),
            NamedPred::cmp_val(col, CmpKind::Le, Value::I64(hi)),
        ])
    }
    /// String equality.
    pub fn str_eq(col: impl Into<String>, v: impl Into<String>) -> NamedPred {
        NamedPred::cmp_val(col, CmpKind::Eq, Value::Str(v.into()))
    }
    /// `col LIKE pattern`.
    pub fn like(col: impl Into<String>, pattern: impl Into<String>) -> NamedPred {
        NamedPred::Like {
            col: col.into(),
            pattern: pattern.into(),
        }
    }
    /// `col NOT LIKE pattern`.
    pub fn not_like(col: impl Into<String>, pattern: impl Into<String>) -> NamedPred {
        NamedPred::NotLike {
            col: col.into(),
            pattern: pattern.into(),
        }
    }
    /// `col IN (values...)`.
    pub fn in_str<S: Into<String>>(
        col: impl Into<String>,
        values: impl IntoIterator<Item = S>,
    ) -> NamedPred {
        NamedPred::InStr {
            col: col.into(),
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Resolves against `schema`, producing a positional predicate.
    pub(crate) fn resolve(&self, schema: &Schema) -> Result<Pred, PlanError> {
        match self {
            NamedPred::Cmp { col, op, rhs } => {
                let i = resolve_col(schema, col)?;
                let cty = schema.field(i).ty;
                match rhs {
                    NamedCmpRhs::Const(v) => {
                        if cty == DataType::Str {
                            if !matches!(v, Value::Str(_)) {
                                return Err(PlanError::TypeMismatch {
                                    context: format!("comparison {col} {} const", op.sig_name()),
                                    expected: DataType::Str.to_string(),
                                    found: v.data_type(),
                                });
                            }
                            if !matches!(op, CmpKind::Eq | CmpKind::Ne) {
                                return Err(PlanError::Invalid(format!(
                                    "string comparison {} unsupported on {col}",
                                    op.sig_name()
                                )));
                            }
                        } else if v.data_type() != cty {
                            return Err(PlanError::TypeMismatch {
                                context: format!("comparison {col} {} const", op.sig_name()),
                                expected: cty.to_string(),
                                found: v.data_type(),
                            });
                        }
                        Ok(Pred::Cmp {
                            col: i,
                            op: *op,
                            rhs: CmpRhs::Const(v.clone()),
                        })
                    }
                    NamedCmpRhs::Col(other) => {
                        let j = resolve_col(schema, other)?;
                        let oty = schema.field(j).ty;
                        if cty == DataType::Str || oty == DataType::Str {
                            return Err(PlanError::TypeMismatch {
                                context: format!("comparison {col} {} {other}", op.sig_name()),
                                expected: "numeric columns".into(),
                                found: DataType::Str,
                            });
                        }
                        if cty != oty {
                            return Err(PlanError::TypeMismatch {
                                context: format!("comparison {col} {} {other}", op.sig_name()),
                                expected: cty.to_string(),
                                found: oty,
                            });
                        }
                        Ok(Pred::Cmp {
                            col: i,
                            op: *op,
                            rhs: CmpRhs::Col(j),
                        })
                    }
                }
            }
            NamedPred::Like { col, pattern } => {
                let i = resolve_str_col(schema, col, "LIKE")?;
                Ok(Pred::Like {
                    col: i,
                    pattern: pattern.clone(),
                })
            }
            NamedPred::NotLike { col, pattern } => {
                let i = resolve_str_col(schema, col, "NOT LIKE")?;
                Ok(Pred::NotLike {
                    col: i,
                    pattern: pattern.clone(),
                })
            }
            NamedPred::InStr { col, values } => {
                let i = resolve_str_col(schema, col, "IN")?;
                Ok(Pred::InStr {
                    col: i,
                    values: values.clone(),
                })
            }
            NamedPred::And(ps) => {
                if ps.is_empty() {
                    return Err(PlanError::Invalid("empty AND".into()));
                }
                Ok(Pred::And(
                    ps.iter()
                        .map(|p| p.resolve(schema))
                        .collect::<Result<_, _>>()?,
                ))
            }
            NamedPred::Or(ps) => {
                if ps.is_empty() {
                    return Err(PlanError::Invalid("empty OR".into()));
                }
                Ok(Pred::Or(
                    ps.iter()
                        .map(|p| p.resolve(schema))
                        .collect::<Result<_, _>>()?,
                ))
            }
        }
    }
}

/// An aggregate over a named column, with an output column name.
#[derive(Debug, Clone, PartialEq)]
pub struct Agg {
    pub(crate) kind: AggKind,
    pub(crate) col: Option<String>,
    pub(crate) name: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AggKind {
    SumI64,
    SumF64,
    CountStar,
    MinI64,
    MaxI64,
    MinF64,
    MaxF64,
}

impl AggKind {
    fn required(self) -> Option<DataType> {
        match self {
            AggKind::SumI64 | AggKind::MinI64 | AggKind::MaxI64 => Some(DataType::I64),
            AggKind::SumF64 | AggKind::MinF64 | AggKind::MaxF64 => Some(DataType::F64),
            AggKind::CountStar => None,
        }
    }
    fn sql_name(self) -> &'static str {
        match self {
            AggKind::SumI64 | AggKind::SumF64 => "sum",
            AggKind::CountStar => "count",
            AggKind::MinI64 | AggKind::MinF64 => "min",
            AggKind::MaxI64 | AggKind::MaxF64 => "max",
        }
    }
}

fn agg(kind: AggKind, column: impl Into<String>) -> Agg {
    let column = column.into();
    Agg {
        name: format!("{}_{}", kind.sql_name(), column),
        kind,
        col: Some(column),
    }
}

/// Sum of an `i64` column (128-bit accumulation).
pub fn sum_i64(column: impl Into<String>) -> Agg {
    agg(AggKind::SumI64, column)
}
/// Sum of an `f64` column.
pub fn sum_f64(column: impl Into<String>) -> Agg {
    agg(AggKind::SumF64, column)
}
/// `COUNT(*)` over live tuples.
pub fn count() -> Agg {
    Agg {
        kind: AggKind::CountStar,
        col: None,
        name: "count".into(),
    }
}
/// Minimum of an `i64` column.
pub fn min_i64(column: impl Into<String>) -> Agg {
    agg(AggKind::MinI64, column)
}
/// Maximum of an `i64` column.
pub fn max_i64(column: impl Into<String>) -> Agg {
    agg(AggKind::MaxI64, column)
}
/// Minimum of an `f64` column.
pub fn min_f64(column: impl Into<String>) -> Agg {
    agg(AggKind::MinF64, column)
}
/// Maximum of an `f64` column.
pub fn max_f64(column: impl Into<String>) -> Agg {
    agg(AggKind::MaxF64, column)
}

impl Agg {
    /// Overrides the output column name (defaults to `sum_<col>`-style).
    pub fn named(mut self, name: impl Into<String>) -> Agg {
        self.name = name.into();
        self
    }

    /// Resolves to a positional [`AggSpec`], type-checking the input.
    pub(crate) fn resolve(&self, schema: &Schema) -> Result<AggSpec, PlanError> {
        let Some(colname) = &self.col else {
            return Ok(AggSpec::CountStar);
        };
        let i = resolve_col(schema, colname)?;
        let ty = schema.field(i).ty;
        let required = self.kind.required().expect("non-count has a column");
        if ty != required {
            return Err(PlanError::TypeMismatch {
                context: format!("{}({colname})", self.kind.sql_name()),
                expected: format!("{required} (cast first)"),
                found: ty,
            });
        }
        Ok(match self.kind {
            AggKind::SumI64 => AggSpec::SumI64(i),
            AggKind::SumF64 => AggSpec::SumF64(i),
            AggKind::MinI64 => AggSpec::MinI64(i),
            AggKind::MaxI64 => AggSpec::MaxI64(i),
            AggKind::MinF64 => AggSpec::MinF64(i),
            AggKind::MaxF64 => AggSpec::MaxF64(i),
            AggKind::CountStar => unreachable!(),
        })
    }

    /// Output column type.
    pub(crate) fn out_type(&self) -> DataType {
        match self.kind {
            AggKind::SumI64 | AggKind::CountStar | AggKind::MinI64 | AggKind::MaxI64 => {
                DataType::I64
            }
            AggKind::SumF64 | AggKind::MinF64 | AggKind::MaxF64 => DataType::F64,
        }
    }
}

/// A named sort key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortSpec {
    pub(crate) col: String,
    pub(crate) desc: bool,
}

/// Ascending sort key.
pub fn asc(col: impl Into<String>) -> SortSpec {
    SortSpec {
        col: col.into(),
        desc: false,
    }
}

/// Descending sort key.
pub fn desc(col: impl Into<String>) -> SortSpec {
    SortSpec {
        col: col.into(),
        desc: true,
    }
}

/// Resolves `name` against `schema`: typed errors for unknown or
/// ambiguous names.
pub(crate) fn resolve_col(schema: &Schema, name: &str) -> Result<usize, PlanError> {
    if schema.is_ambiguous(name) {
        return Err(PlanError::AmbiguousColumn(name.to_string()));
    }
    schema
        .index_of(name)
        .ok_or_else(|| PlanError::UnknownColumn {
            name: name.to_string(),
            schema: schema.to_string(),
        })
}

fn resolve_str_col(schema: &Schema, name: &str, what: &str) -> Result<usize, PlanError> {
    let i = resolve_col(schema, name)?;
    if schema.field(i).ty != DataType::Str {
        return Err(PlanError::TypeMismatch {
            context: format!("{what} over {name}"),
            expected: DataType::Str.to_string(),
            found: schema.field(i).ty,
        });
    }
    Ok(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ma_vector::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("k", DataType::I32),
            Field::new("v", DataType::I64),
            Field::new("s", DataType::Str),
            Field::new("f", DataType::F64),
        ])
    }

    #[test]
    fn expr_resolution_and_typing() {
        let s = schema();
        let (e, ty) = col("v").mul(lit_i64(5)).resolve(&s).unwrap();
        assert_eq!(ty, DataType::I64);
        assert!(matches!(e, Expr::Arith { .. }));
        let (_, ty) = col("k").cast(DataType::F64).resolve(&s).unwrap();
        assert_eq!(ty, DataType::F64);
    }

    #[test]
    fn const_only_valid_as_arith_rhs() {
        let s = schema();
        // rhs constant: fine (the compiler's col_val form).
        assert!(col("v").sub(lit_i64(1)).resolve(&s).is_ok());
        // Bare constant and constant-as-lhs are rejected at build time
        // with a typed error (the compiler would reject them later with
        // a stringly ExecError).
        assert!(matches!(lit_i64(2).resolve(&s), Err(PlanError::Invalid(_))));
        assert!(matches!(
            lit_f64(1.0).sub(col("f")).resolve(&s),
            Err(PlanError::Invalid(_))
        ));
        // ... and casting a constant is equally invalid.
        assert!(matches!(
            lit_i64(2).cast(DataType::F64).resolve(&s),
            Err(PlanError::Invalid(_))
        ));
    }

    #[test]
    fn expr_unknown_column() {
        assert!(matches!(
            col("nope").resolve(&schema()),
            Err(PlanError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn expr_type_mismatches() {
        let s = schema();
        // i64 + f64 without a cast
        assert!(matches!(
            col("v").add(col("f")).resolve(&s),
            Err(PlanError::TypeMismatch { .. })
        ));
        // arithmetic directly on i32
        assert!(matches!(
            col("k").add(col("k")).resolve(&s),
            Err(PlanError::TypeMismatch { .. })
        ));
        // substr over a non-string
        assert!(matches!(
            substr("v", 0, 2).resolve(&s),
            Err(PlanError::TypeMismatch { .. })
        ));
        // narrowing cast
        assert!(matches!(
            col("v").cast(DataType::I32).resolve(&s),
            Err(PlanError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn pred_resolution_and_typing() {
        let s = schema();
        let p = NamedPred::cmp_val("k", CmpKind::Lt, Value::I32(7))
            .resolve(&s)
            .unwrap();
        assert!(matches!(p, Pred::Cmp { col: 0, .. }));
        // const type must match the column type exactly
        assert!(matches!(
            NamedPred::cmp_val("k", CmpKind::Lt, Value::I64(7)).resolve(&s),
            Err(PlanError::TypeMismatch { .. })
        ));
        // string IN over a non-string column
        assert!(matches!(
            NamedPred::in_str("v", ["a"]).resolve(&s),
            Err(PlanError::TypeMismatch { .. })
        ));
        // string ordering comparison unsupported
        assert!(matches!(
            NamedPred::cmp_val("s", CmpKind::Lt, Value::Str("x".into())).resolve(&s),
            Err(PlanError::Invalid(_))
        ));
        // col-col across types
        assert!(matches!(
            NamedPred::cmp_col("k", CmpKind::Eq, "v").resolve(&s),
            Err(PlanError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn ambiguous_name_rejected() {
        let s = Schema::new(vec![
            Field::new("x", DataType::I64),
            Field::new("x", DataType::I64),
        ]);
        assert!(matches!(
            col("x").resolve(&s),
            Err(PlanError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn agg_resolution() {
        let s = schema();
        assert_eq!(sum_i64("v").resolve(&s).unwrap(), AggSpec::SumI64(1));
        assert_eq!(count().resolve(&s).unwrap(), AggSpec::CountStar);
        assert_eq!(sum_i64("v").name, "sum_v");
        assert_eq!(sum_i64("v").named("total").name, "total");
        // aggregate over a non-numeric column
        assert!(matches!(
            sum_f64("s").resolve(&s),
            Err(PlanError::TypeMismatch { .. })
        ));
        // aggregate needing a cast first
        assert!(matches!(
            sum_i64("k").resolve(&s),
            Err(PlanError::TypeMismatch { .. })
        ));
    }
}
