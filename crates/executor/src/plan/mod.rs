//! Schema-aware logical plans and the physical planner.
//!
//! This module is the query-authoring API of the engine. Queries are
//! written against **named columns** with the fluent [`PlanBuilder`]
//! (`scan(...).filter(...).hash_agg(...).sort(...)`), which tracks a
//! [`Schema`] through every node and resolves names to positions at plan
//! *build* time — unknown columns and type mismatches come back as typed
//! [`PlanError`]s before any operator exists.
//!
//! The result is a [`LogicalPlan`]: a purely declarative operator tree
//! that knows nothing about threads, morsels or exchanges. [`lower`] — the
//! physical planner — turns it into a [`crate::BoxOp`] pipeline and owns
//! every parallelism decision centrally:
//!
//! * large scans under order-insensitive consumers are sharded into
//!   morsel-driven worker fragments united by a [`crate::ops::Parallel`]
//!   exchange;
//! * selections sitting directly on a scan are pushed *into* the scan
//!   fragments, so the paper's hot selection primitives parallelize with
//!   per-worker bandit state;
//! * pipelines feeding order-sensitive consumers (merge join) are safe
//!   **by construction**: the planner threads the required key down, and
//!   a chain whose key carries the table's clustering order shards into
//!   morsel fragments re-merged by a [`crate::ops::MergeExchange`] —
//!   anything else stays sequential. A query author can no longer wire an
//!   order-destroying exchange under a merge join by accident.
//!
//! [`LogicalPlan`] implements [`std::fmt::Display`] as an `EXPLAIN`-style
//! indented tree with resolved schemas and the planner's ordered-vs-
//! shardable verdict per scan.

pub(crate) mod builder;
mod error;
mod explain;
pub(crate) mod expr;
pub(crate) mod lower;

pub use builder::PlanBuilder;
pub use error::PlanError;
pub use explain::explain_physical;
pub use expr::{
    asc, col, count, desc, lit_f64, lit_i64, max_f64, max_i64, min_f64, min_i64, substr, sum_f64,
    sum_i64, Agg, NamedCmpRhs, NamedExpr, NamedPred, SortSpec,
};
pub use lower::lower;

use std::sync::Arc;

use ma_vector::{Schema, Table};

use crate::expr::{Pred, Value};
use crate::ops::{AggSpec, JoinKind, ProjItem, SortKey};

/// A source of named tables for [`PlanBuilder::scan`].
pub trait Catalog {
    /// Looks up a table by name.
    fn lookup(&self, name: &str) -> Option<Arc<Table>>;

    /// The **exact** row count of a base table, or `None` when the table
    /// doesn't exist. This is the planner's cardinality anchor: scan
    /// nodes report it as their row estimate, so partitioning verdicts
    /// (`ExecConfig::agg_min_partition_groups`,
    /// `ExecConfig::join_min_partition_rows`) never over-trigger on small
    /// base tables. Implementations backed by materialized tables get it
    /// for free; a future disk-backed catalog must answer from metadata
    /// without loading the table.
    fn row_count(&self, name: &str) -> Option<usize> {
        self.lookup(name).map(|t| t.rows())
    }

    /// Exact statistics for one column of a base table (the abstract
    /// interpreter's base facts; see `crate::analyze`), or `None` when
    /// the table or column doesn't exist. The default computes (and
    /// memoizes) them from the materialized table; a metadata-backed
    /// catalog can answer from stored stats instead.
    fn column_stats(&self, table: &str, column: &str) -> Option<ma_vector::ColumnStats> {
        let t = self.lookup(table)?;
        let i = t.column_index(column).ok()?;
        Some(t.stats()[i].clone())
    }
}

/// A resolved logical operator tree.
///
/// Nodes carry positional indices (already resolved against their input's
/// [`Schema`]) plus the output schema, so lowering is mechanical and
/// rendering can map every index back to a name.
pub enum LogicalPlan {
    /// Read columns of a base table.
    Scan {
        /// The table scanned.
        table: Arc<Table>,
        /// Source column names, in output order (pre-alias).
        cols: Vec<String>,
        /// The catalog's exact row count for the table
        /// ([`Catalog::row_count`], captured at plan-build time): the
        /// cardinality anchor the physical planner's partitioning
        /// verdicts read (`plan::lower::estimated_rows`).
        base_rows: usize,
        /// Output schema (post-alias names).
        schema: Schema,
    },
    /// Narrow the selection vector by a predicate.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Resolved predicate.
        pred: Pred,
        /// Stats label for the primitive instances.
        label: String,
        /// Output schema (same columns as the input).
        schema: Schema,
    },
    /// Compute/pass columns.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Resolved projection items.
        items: Vec<ProjItem>,
        /// Stats label.
        label: String,
        /// Output schema.
        schema: Schema,
    },
    /// Grouped hash aggregation.
    HashAgg {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-key column indices.
        keys: Vec<usize>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
        /// Stats label.
        label: String,
        /// Output schema: keys then aggregates.
        schema: Schema,
    },
    /// Ungrouped aggregation (one output row).
    StreamAgg {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
        /// Stats label.
        label: String,
        /// Output schema.
        schema: Schema,
    },
    /// Hash join; output = probe columns (++ build payload for
    /// inner/left-single).
    HashJoin {
        /// Build-side plan (materialized into the hash table).
        build: Box<LogicalPlan>,
        /// Probe-side plan (streamed).
        probe: Box<LogicalPlan>,
        /// Build key column indices.
        build_keys: Vec<usize>,
        /// Probe key column indices (aligned with `build_keys`).
        probe_keys: Vec<usize>,
        /// Build columns appended to the output.
        payload: Vec<usize>,
        /// Join semantics.
        kind: JoinKind,
        /// Bloom-filter probe acceleration.
        bloom: bool,
        /// Left-single default payload values (empty otherwise).
        defaults: Vec<Value>,
        /// Stats label.
        label: String,
        /// Output schema.
        schema: Schema,
    },
    /// Merge join over key-sorted inputs; output = right columns ++ left
    /// payload. Both children are order-sensitive: the planner shards
    /// them behind a merging exchange when the key carries the table's
    /// clustering order, and keeps them sequential otherwise.
    MergeJoin {
        /// Left (unique-key) plan, materialized.
        left: Box<LogicalPlan>,
        /// Right (streaming) plan.
        right: Box<LogicalPlan>,
        /// Left key column index.
        left_key: usize,
        /// Right key column index.
        right_key: usize,
        /// Left columns appended to the output.
        payload: Vec<usize>,
        /// Stats label.
        label: String,
        /// Output schema.
        schema: Schema,
    },
    /// Sort (optionally truncated to a top-N).
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys, leftmost primary.
        keys: Vec<SortKey>,
        /// Optional row limit.
        limit: Option<usize>,
        /// Output schema (same columns as the input).
        schema: Schema,
    },
}

impl LogicalPlan {
    /// The node's output schema.
    pub fn schema(&self) -> &Schema {
        match self {
            LogicalPlan::Scan { schema, .. }
            | LogicalPlan::Filter { schema, .. }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::HashAgg { schema, .. }
            | LogicalPlan::StreamAgg { schema, .. }
            | LogicalPlan::HashJoin { schema, .. }
            | LogicalPlan::MergeJoin { schema, .. }
            | LogicalPlan::Sort { schema, .. } => schema,
        }
    }
}

impl std::fmt::Debug for LogicalPlan {
    /// Debug output reuses the EXPLAIN rendering (the operator tree is
    /// the useful view; `Arc<Table>` contents are not).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self}")
    }
}

impl Catalog for std::collections::HashMap<String, Arc<Table>> {
    fn lookup(&self, name: &str) -> Option<Arc<Table>> {
        self.get(name).cloned()
    }

    fn row_count(&self, name: &str) -> Option<usize> {
        self.get(name).map(|t| t.rows())
    }
}
