//! The physical planner: [`LogicalPlan`] → operator pipeline.
//!
//! Lowering is where *all* parallelism decisions live (queries only
//! declare intent):
//!
//! * **Sharding.** A scan under an order-insensitive pipeline with
//!   `worker_threads > 1` and enough rows to bother becomes `n`
//!   morsel-driven worker fragments united by a [`Parallel`] exchange.
//! * **Pipeline pushdown.** A chain of [`LogicalPlan::Filter`] /
//!   [`LogicalPlan::Project`] nodes sitting on a scan is compiled *into*
//!   each worker fragment, so the selection and map primitives parallelize
//!   and every worker owns its own bandit state for them (per-worker micro
//!   adaptivity, DESIGN.md §5).
//! * **Partitioned aggregation.** A [`LogicalPlan::HashAgg`] over a
//!   sharded scan — or over any input with enough estimated groups —
//!   becomes a [`HashPartitionExchange`]: producers route tuples by
//!   `hash(group keys) % P` to `P` private [`HashAggregate`] instances
//!   whose disjoint results union in arrival order (DESIGN.md §7).
//! * **Partitioned join builds.** A [`LogicalPlan::HashJoin`] over big
//!   enough inputs becomes a *two-lane* [`HashPartitionExchange`]: both
//!   sides route by `hash(join keys) % P` into `P` private [`HashJoin`]
//!   instances, each building its own hash table — equal keys land in the
//!   same partition on both lanes, so the arrival-order union of the
//!   per-partition join outputs is exact for every join kind
//!   (DESIGN.md §8).
//! * **Order sensitivity.** A [`LogicalPlan::MergeJoin`] needs key-sorted
//!   inputs; a [`Parallel`] union interleaves worker streams in arrival
//!   order and would break that. The planner threads the required key
//!   down as an [`OrderCtx`]: a Filter/Project chain over a scan whose
//!   key traces to the table's clustering (first) column still shards —
//!   its morsel fragments are each internally sorted, and a
//!   [`MergeExchange`] K-way-merges them back into one sorted stream.
//!   Chains that can't prove the key's order stay sequential, and nodes
//!   that *reset* order (Sort re-sorts; aggregates and hash-join builds
//!   are order-insensitive) drop back to unordered mode for their inputs.

use std::sync::Arc;

use ma_vector::{MorselQueue, Table, VECTORS_PER_MORSEL};

use crate::config::{DecodeMode, ExecConfig};
use crate::ops::{AggSpec, ProjItem};
use crate::ops::{
    HashAggregate, HashJoin, HashPartitionExchange, MergeExchange, MergeJoin, Parallel, RoutedLane,
    Scan, Select, Sort, StreamAggregate,
};
use crate::plan::builder::clustered_key_chain;
use crate::plan::LogicalPlan;
use crate::{BoxOp, ExecError, QueryContext};

/// Lowers a logical plan to a physical operator pipeline, deciding
/// sharding, pipeline pushdown, aggregate/join partitioning and the
/// ordered-pipeline strategy centrally (see the
/// [plan module docs](crate::plan)).
pub fn lower(plan: &LogicalPlan, ctx: &QueryContext) -> Result<BoxOp, ExecError> {
    // Debug builds re-check every invariant lowering relies on through
    // the independent verifier (`crate::verify`), so any test that
    // executes a query also proves its plan well-formed. Release builds
    // skip the walk; CI additionally sweeps all queries across a
    // worker/partition/vector-size matrix (crates/tpch/tests).
    #[cfg(debug_assertions)]
    crate::verify::verify(plan, ctx.config())
        .map_err(|e| ExecError::Plan(format!("plan verification failed: {e}")))?;
    lower_node(plan, ctx, OrderCtx::Free)
}

/// The ordering constraint an ancestor imposes on a node's output stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OrderCtx {
    /// No order-sensitive ancestor: scans may shard freely.
    Free,
    /// An ancestor consumes the output sorted ascending by this output
    /// column. Scans may still shard — behind a [`MergeExchange`] on the
    /// key — when the key provably carries the table's clustering order.
    Key(usize),
    /// Ordered, but the key doesn't survive the mapping to this node's
    /// schema (e.g. a computed projection): sequential scans only.
    Pinned,
}

/// Ordered-mode propagation from `plan` to its child at `idx` (0 = input/
/// build/left, 1 = probe/right), given the constraint on the node itself.
///
/// One function, used by both lowering and the physical EXPLAIN traversal,
/// so the rendered verdict can never drift from the executed one:
///
/// * Filter streams through — the constraint (and its key index) passes;
/// * Project passes the constraint through pass-through items, mapping
///   the key index; a computed key pins the subtree sequential;
/// * Sort re-sorts and aggregates materialize — order *resets*, the
///   subtree may shard even under a merge join;
/// * a hash join's build side materializes (resets) while its probe side
///   streams (inherits; a key pointing at a build payload column pins);
/// * a merge join imposes its key on both children.
pub(crate) fn child_order(plan: &LogicalPlan, idx: usize, order: OrderCtx) -> OrderCtx {
    match plan {
        LogicalPlan::Scan { .. } | LogicalPlan::Filter { .. } => order,
        LogicalPlan::Project { items, .. } => match order {
            OrderCtx::Key(k) => match items.get(k) {
                Some(ProjItem::Pass(i)) => OrderCtx::Key(*i),
                _ => OrderCtx::Pinned,
            },
            other => other,
        },
        LogicalPlan::HashAgg { .. } | LogicalPlan::StreamAgg { .. } | LogicalPlan::Sort { .. } => {
            OrderCtx::Free
        }
        LogicalPlan::HashJoin { probe, .. } => {
            if idx == 0 {
                OrderCtx::Free
            } else {
                match order {
                    OrderCtx::Key(k) if k >= probe.schema().fields().len() => OrderCtx::Pinned,
                    other => other,
                }
            }
        }
        LogicalPlan::MergeJoin {
            left_key,
            right_key,
            ..
        } => OrderCtx::Key(if idx == 0 { *left_key } else { *right_key }),
    }
}

/// `order`: the constraint some ancestor imposes on this node's output.
fn lower_node(plan: &LogicalPlan, ctx: &QueryContext, order: OrderCtx) -> Result<BoxOp, ExecError> {
    match order {
        // Any Filter/Project chain over a big-enough scan shards into
        // worker fragments united in arrival order.
        OrderCtx::Free => {
            if let Some(chain) = shardable_chain(plan, ctx.config()) {
                let queue = morsel_queue(&chain, ctx);
                let workers = ctx.worker_threads();
                let factory = |_worker: usize, _n: usize| -> Result<BoxOp, ExecError> {
                    build_chain_fragment(&chain, &queue, ctx)
                };
                let chunk = crate::cost::chunk_bound(plan, ctx.vector_size());
                return Ok(Box::new(
                    Parallel::new(workers, &factory)?
                        .tracked(ctx.mem_tracker("exchange/parallel", chunk)),
                ));
            }
        }
        // Under an ordered ancestor the same chain shards behind a
        // merging exchange — if the key provably carries the clustering
        // order (each morsel fragment is then internally sorted).
        OrderCtx::Key(key) => {
            let workers = merge_workers(plan, key, ctx.config());
            if workers >= 2 {
                let chain = shardable_chain(plan, ctx.config()).expect("merge_workers checked");
                let queue = morsel_queue(&chain, ctx);
                let producers: Vec<BoxOp> = (0..workers)
                    .map(|_| build_chain_fragment(&chain, &queue, ctx))
                    .collect::<Result<_, _>>()?;
                let chunk = crate::cost::chunk_bound(plan, ctx.vector_size());
                return Ok(Box::new(
                    MergeExchange::new(producers, key)?
                        .tracked(ctx.mem_tracker("exchange/merge", chunk)),
                ));
            }
        }
        OrderCtx::Pinned => {}
    }
    match plan {
        LogicalPlan::Scan { table, cols, .. } => lower_scan_seq(table, cols, ctx),
        LogicalPlan::Filter {
            input, pred, label, ..
        } => {
            let child = lower_node(input, ctx, child_order(plan, 0, order))?;
            Ok(Box::new(Select::new(child, pred, ctx, label)?))
        }
        LogicalPlan::Project {
            input,
            items,
            label,
            ..
        } => {
            let child = lower_node(input, ctx, child_order(plan, 0, order))?;
            Ok(Box::new(crate::ops::Project::new(
                child,
                items.clone(),
                ctx,
                label,
            )?))
        }
        LogicalPlan::HashAgg {
            input,
            keys,
            aggs,
            label,
            ..
        } => {
            // Aggregation resets order for its input (`child_order`), but
            // an ordered *ancestor* still pins the aggregate itself to a
            // single (deterministically ordered) instance.
            let partitions = if order == OrderCtx::Free {
                agg_partition_count(input, keys, ctx.config())
            } else {
                1
            };
            if partitions >= 2 {
                return lower_partitioned_agg(input, keys, aggs, partitions, ctx, label);
            }
            let child = lower_node(input, ctx, child_order(plan, 0, order))?;
            let bound = crate::cost::agg_instance_bound(input, keys, aggs);
            Ok(Box::new(
                HashAggregate::new(child, keys.clone(), aggs.clone(), ctx, label)?
                    .with_group_bound(crate::analyze::group_bound(input, keys))
                    .with_tracker(ctx.mem_tracker(label, bound)),
            ))
        }
        LogicalPlan::StreamAgg {
            input, aggs, label, ..
        } => {
            let child = lower_node(input, ctx, child_order(plan, 0, order))?;
            Ok(Box::new(StreamAggregate::new(
                child,
                aggs.clone(),
                ctx,
                label,
            )?))
        }
        LogicalPlan::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
            payload,
            kind,
            bloom,
            defaults,
            label,
            ..
        } => {
            // A partitioned join's outputs union in arrival order, so an
            // ordered ancestor pins the join to a single instance.
            let partitions = if order == OrderCtx::Free {
                join_partition_count(build, probe, ctx.config())
            } else {
                1
            };
            if partitions >= 2 {
                return lower_partitioned_join(plan, partitions, ctx);
            }
            let b = lower_node(build, ctx, child_order(plan, 0, order))?;
            let p = lower_node(probe, ctx, child_order(plan, 1, order))?;
            let bound = crate::cost::join_build_bound(build, build_keys, payload);
            Ok(Box::new(
                HashJoin::new(
                    b,
                    p,
                    build_keys.clone(),
                    probe_keys.clone(),
                    payload.clone(),
                    *kind,
                    *bloom,
                    defaults.clone(),
                    ctx,
                    label,
                )?
                .with_build_rows(estimated_rows(build))
                .with_tracker(ctx.mem_tracker(label, bound)),
            ))
        }
        LogicalPlan::MergeJoin {
            left,
            right,
            left_key,
            right_key,
            payload,
            label,
            ..
        } => {
            // Both inputs must arrive key-sorted: `child_order` threads
            // the key down, so each input either shards behind a merging
            // exchange (clustering-key chains) or stays sequential.
            let l = lower_node(left, ctx, child_order(plan, 0, order))?;
            let r = lower_node(right, ctx, child_order(plan, 1, order))?;
            Ok(Box::new(MergeJoin::new(
                l,
                r,
                *left_key,
                *right_key,
                payload.clone(),
                ctx,
                label,
            )?))
        }
        LogicalPlan::Sort {
            input, keys, limit, ..
        } => {
            let child = lower_node(input, ctx, child_order(plan, 0, order))?;
            let bound = crate::cost::sort_bound(input);
            Ok(Box::new(
                Sort::new(child, keys.clone(), *limit, ctx.vector_size())?
                    .with_tracker(ctx.mem_tracker("sort", bound)),
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// shardable Filter/Project chains over a scan
// ---------------------------------------------------------------------------

/// One pushed-down pipeline stage above the scan inside a worker fragment.
enum ChainStage<'a> {
    Filter {
        pred: &'a crate::expr::Pred,
        label: &'a str,
    },
    Project {
        items: &'a [ProjItem],
        label: &'a str,
    },
}

/// A Filter/Project chain over a scan big enough to shard.
pub(crate) struct ShardableChain<'a> {
    table: &'a Arc<Table>,
    cols: &'a [String],
    /// Stages above the scan, bottom-up.
    stages: Vec<ChainStage<'a>>,
}

/// Decomposes `plan` into a per-worker-compilable chain, or `None` when the
/// pipeline contains a blocking/join node, the engine is single-threaded,
/// or the table yields too few morsels to bother. Shared with
/// [`crate::cost`], whose exchange bounds mirror this sharding verdict.
pub(crate) fn shardable_chain<'a>(
    plan: &'a LogicalPlan,
    cfg: &ExecConfig,
) -> Option<ShardableChain<'a>> {
    if cfg.worker_threads.max(1) == 1 {
        return None;
    }
    let morsel_rows = VECTORS_PER_MORSEL * cfg.vector_size;
    let mut stages = Vec::new();
    let mut cur = plan;
    loop {
        match cur {
            LogicalPlan::Filter {
                input, pred, label, ..
            } => {
                stages.push(ChainStage::Filter { pred, label });
                cur = input;
            }
            LogicalPlan::Project {
                input,
                items,
                label,
                ..
            } => {
                stages.push(ChainStage::Project { items, label });
                cur = input;
            }
            LogicalPlan::Scan { table, cols, .. } => {
                // Sharding a table that yields only a couple of morsels
                // buys nothing.
                if table.rows() < 2 * morsel_rows {
                    return None;
                }
                stages.reverse();
                return Some(ShardableChain {
                    table,
                    cols,
                    stages,
                });
            }
            _ => return None,
        }
    }
}

/// A fresh morsel queue over the chain's table. Morsels follow the
/// configured vector size so morsel boundaries stay chunk-aligned for any
/// `vector_size` (the worker-count-invariance contract, DESIGN.md §5).
fn morsel_queue(chain: &ShardableChain<'_>, ctx: &QueryContext) -> Arc<MorselQueue> {
    let morsel_rows = VECTORS_PER_MORSEL * ctx.vector_size();
    Arc::new(MorselQueue::with_morsel(chain.table.rows(), morsel_rows))
}

/// Compiles one worker's fragment: a morsel scan plus the chain's stages,
/// each with private primitive instances (per-worker bandit state).
fn build_chain_fragment(
    chain: &ShardableChain<'_>,
    queue: &Arc<MorselQueue>,
    ctx: &QueryContext,
) -> Result<BoxOp, ExecError> {
    let names: Vec<&str> = chain.cols.iter().map(String::as_str).collect();
    let scan = Scan::morsel(
        Arc::clone(chain.table),
        &names,
        ctx.vector_size(),
        Arc::clone(queue),
    )?;
    let mut op: BoxOp = Box::new(wire_decoders(scan, chain.table, ctx)?);
    for stage in &chain.stages {
        op = match stage {
            ChainStage::Filter { pred, label } => Box::new(Select::new(op, pred, ctx, label)?),
            ChainStage::Project { items, label } => {
                Box::new(crate::ops::Project::new(op, items.to_vec(), ctx, label)?)
            }
        };
    }
    Ok(op)
}

/// Plain sequential scan (the 1-worker engine, small tables, pinned mode).
fn lower_scan_seq(
    table: &Arc<Table>,
    cols: &[String],
    ctx: &QueryContext,
) -> Result<BoxOp, ExecError> {
    let names: Vec<&str> = cols.iter().map(String::as_str).collect();
    let scan = Scan::new(Arc::clone(table), &names, ctx.vector_size())?;
    Ok(Box::new(wire_decoders(scan, table, ctx)?))
}

/// Attaches flavored decode primitives to a scan over encoded columns
/// (one bandit-adapted [`crate::PrimInstance`] per encoded column, labeled
/// `scan_<table>/<column>/<signature>` so per-worker statistics fold in
/// [`QueryContext::merged_reports`]). Under [`DecodeMode::Reference`] the
/// scan keeps its built-in reference decoders — the differential fuzzer
/// cross-checks the two paths.
fn wire_decoders(scan: Scan, table: &Arc<Table>, ctx: &QueryContext) -> Result<Scan, ExecError> {
    if ctx.config().decode == DecodeMode::Reference {
        return Ok(scan);
    }
    scan.with_context(ctx, &format!("scan_{}", table.name()))
}

// ---------------------------------------------------------------------------
// ordered sharding (merging exchange)
// ---------------------------------------------------------------------------

/// The planner's verdict for sharding an *ordered* pipeline: the producer
/// count behind a [`MergeExchange`] on output column `key` (`< 2` means a
/// sequential scan).
///
/// Shards when the node is a shardable Filter/Project chain over a scan
/// *and* the key provably carries the scanned table's clustering (first-
/// column) order — the same structural test the plan builder applies to
/// merge-join inputs ([`clustered_key_chain`]). Each morsel fragment then
/// emits disjoint ascending key ranges (workers claim morsels in
/// increasing row order), so the K-way merge restores the global order
/// exactly. Also used by the physical EXPLAIN rendering, so the verdict
/// shown is the verdict executed.
pub(crate) fn merge_workers(plan: &LogicalPlan, key: usize, cfg: &ExecConfig) -> usize {
    if shardable_chain(plan, cfg).is_none() {
        return 1;
    }
    if !clustered_key_chain(plan, key) {
        return 1;
    }
    cfg.worker_threads.max(1)
}

/// The planner's sharding verdict for an order-*insensitive* pipeline:
/// the worker count behind a [`Parallel`] union (`< 2` means a
/// sequential scan). Mirrored by the plan verifier's physical sketch
/// (`crate::verify`), which re-checks exchange placement independently.
pub(crate) fn shard_workers(plan: &LogicalPlan, cfg: &ExecConfig) -> usize {
    if shardable_chain(plan, cfg).is_some() {
        cfg.worker_threads.max(1)
    } else {
        1
    }
}

// ---------------------------------------------------------------------------
// partitioned hash aggregation
// ---------------------------------------------------------------------------

/// The planner's partitioning verdict for a hash aggregation over `input`:
/// the partition count (`< 2` means a single aggregate instance).
///
/// Partition when the input is itself a sharded scan chain (the producers
/// are already parallel — serializing them behind one aggregate would be
/// the Amdahl bottleneck this exchange exists to remove), or when the
/// **proven group-count bound** reaches
/// [`ExecConfig::agg_min_partition_groups`] (a heavy aggregate behind a
/// serial producer still parallelizes its hash-table work). The bound is
/// the abstract interpreter's `min(row bound, Π key NDV)`
/// ([`crate::analyze::group_bound`]) — a low-NDV key (e.g. a flag column)
/// now provably caps the group count, so the aggregate stays single where
/// the raw row estimate used to over-trigger partitioning. Also used by
/// the physical EXPLAIN rendering, so the verdict shown is the verdict
/// executed.
pub(crate) fn agg_partition_count(input: &LogicalPlan, keys: &[usize], cfg: &ExecConfig) -> usize {
    let partitions = if cfg.agg_partitions == 0 {
        cfg.worker_threads.max(1)
    } else {
        cfg.agg_partitions
    };
    if partitions < 2 {
        return 1;
    }
    if shardable_chain(input, cfg).is_some() {
        return partitions;
    }
    // Group demand in raw-width units, discounted when the key columns
    // arrive dictionary-coded (DESIGN.md §13): the per-group resident
    // footprint shrinks with the keys, so fewer partitions are needed to
    // keep each under the threshold.
    let demand = crate::cost::enc_weighted_demand(
        crate::analyze::group_bound(input, keys),
        input,
        Some(keys),
    );
    if demand >= cfg.agg_min_partition_groups {
        // An explicit `agg_partitions` knob is an exact override; in auto
        // mode the cost model sizes the partition count to the proven
        // demand instead of fanning out to every worker unconditionally.
        return if cfg.agg_partitions != 0 {
            partitions
        } else {
            crate::cost::pick_partitions(demand, cfg.agg_min_partition_groups, partitions)
        };
    }
    1
}

/// Row-count upper bound for a plan's output: the abstract interpreter's
/// derived bound ([`crate::analyze::row_bound`]), anchored on **exact
/// base-table row counts** (scans report the catalog's
/// [`crate::plan::Catalog::row_count`] answer, captured on the node at
/// plan-build time as `base_rows`) and tightened by per-column statistics
/// above them: contradictory filters drop to zero, aggregates are bounded
/// by the product of their key NDVs, and joins whose build key is *proven*
/// all-distinct stay bounded by their probe side. Joins without that proof
/// use the sound N:M product bound — deliberately pessimistic, since a
/// miss costs parallelism or routing overhead, never correctness.
pub(crate) fn estimated_rows(plan: &LogicalPlan) -> usize {
    crate::analyze::row_bound(plan)
}

/// Producer fragments for one partitioned-exchange input: the worker
/// fragments themselves when the input decomposes into a sharded scan
/// chain (no double exchange), the serially lowered input otherwise.
fn lane_producers(input: &LogicalPlan, ctx: &QueryContext) -> Result<Vec<BoxOp>, ExecError> {
    match shardable_chain(input, ctx.config()) {
        Some(chain) => {
            let queue = morsel_queue(&chain, ctx);
            (0..ctx.worker_threads())
                .map(|_| build_chain_fragment(&chain, &queue, ctx))
                .collect()
        }
        None => Ok(vec![lower_node(input, ctx, OrderCtx::Free)?]),
    }
}

/// Lowers a hash aggregation as a single-lane [`HashPartitionExchange`]:
/// producers route tuples by group-key hash to `partitions` private
/// [`HashAggregate`] instances. Group keys are disjoint across partitions,
/// so the arrival-order union of partition outputs *is* the aggregate —
/// no merge step. All instances share the plan node's label, so
/// [`QueryContext::merged_reports`] folds their statistics exactly like
/// per-worker scan instances.
fn lower_partitioned_agg(
    input: &LogicalPlan,
    keys: &[usize],
    aggs: &[AggSpec],
    partitions: usize,
    ctx: &QueryContext,
    label: &str,
) -> Result<BoxOp, ExecError> {
    let lane = RoutedLane {
        producers: lane_producers(input, ctx)?,
        key_cols: keys.to_vec(),
    };
    // Hash routing makes no distribution promise, so every partition gets
    // the full proven bound: in the worst case one consumer sees all
    // groups.
    let bound = crate::cost::agg_instance_bound(input, keys, aggs);
    let group_hint = crate::analyze::group_bound(input, keys);
    let consumer = |mut sources: Vec<BoxOp>, _p: usize| -> Result<BoxOp, ExecError> {
        let source = sources.pop().expect("one lane");
        Ok(Box::new(
            HashAggregate::new(source, keys.to_vec(), aggs.to_vec(), ctx, label)?
                .with_group_bound(group_hint)
                .with_tracker(ctx.mem_tracker(label, bound)),
        ))
    };
    let chunk = crate::cost::chunk_bound(input, ctx.vector_size()).max(
        crate::cost::agg_out_chunk_bound(input, keys, aggs, ctx.vector_size()),
    );
    Ok(Box::new(
        HashPartitionExchange::new(vec![lane], partitions, &consumer)?
            .tracked(ctx.mem_tracker(format!("{label}/exchange"), chunk)),
    ))
}

// ---------------------------------------------------------------------------
// partitioned hash-join builds
// ---------------------------------------------------------------------------

/// The planner's partitioning verdict for a hash join: the partition count
/// (`< 2` means one join instance with a single shared build table).
///
/// Partition when either side is itself a sharded scan chain (its
/// producers are already parallel; a single build would serialize them),
/// or when the larger side's estimated rows reach
/// [`ExecConfig::join_min_partition_rows`]. Equal keys route to the same
/// partition on both lanes, so per-partition joins are exact — but their
/// outputs union in arrival order, so the caller must not partition under
/// an ordered ancestor. Also used by the physical EXPLAIN rendering.
pub(crate) fn join_partition_count(
    build: &LogicalPlan,
    probe: &LogicalPlan,
    cfg: &ExecConfig,
) -> usize {
    let partitions = if cfg.join_partitions == 0 {
        cfg.worker_threads.max(1)
    } else {
        cfg.join_partitions
    };
    if partitions < 2 {
        return 1;
    }
    if shardable_chain(probe, cfg).is_some() || shardable_chain(build, cfg).is_some() {
        return partitions;
    }
    // Each side's row demand, discounted by its encoded/raw row-width
    // ratio when its columns arrive dictionary-coded (DESIGN.md §13).
    let demand = crate::cost::enc_weighted_demand(estimated_rows(build), build, None).max(
        crate::cost::enc_weighted_demand(estimated_rows(probe), probe, None),
    );
    if demand >= cfg.join_min_partition_rows {
        // Explicit `join_partitions` overrides; auto mode lets the cost
        // model size the fan-out to the proven demand.
        return if cfg.join_partitions != 0 {
            partitions
        } else {
            crate::cost::pick_partitions(demand, cfg.join_min_partition_rows, partitions)
        };
    }
    1
}

/// Lowers a hash join as a two-lane [`HashPartitionExchange`]: the build
/// side and the probe side each route by their join keys into `partitions`
/// private [`HashJoin`] instances (P private build tables — no shared
/// state). Key equality across lanes routes to the same partition, making
/// the per-partition joins exact for inner, semi, anti and left-single
/// semantics; the disjoint outputs union in arrival order. All join
/// instances share the plan node's label, so per-partition bandit
/// statistics fold through [`QueryContext::merged_reports`].
fn lower_partitioned_join(
    plan: &LogicalPlan,
    partitions: usize,
    ctx: &QueryContext,
) -> Result<BoxOp, ExecError> {
    let LogicalPlan::HashJoin {
        build,
        probe,
        build_keys,
        probe_keys,
        payload,
        kind,
        bloom,
        defaults,
        label,
        ..
    } = plan
    else {
        unreachable!("lower_partitioned_join is only called on HashJoin nodes");
    };
    let lanes = vec![
        RoutedLane {
            producers: lane_producers(build, ctx)?,
            key_cols: build_keys.clone(),
        },
        RoutedLane {
            producers: lane_producers(probe, ctx)?,
            key_cols: probe_keys.clone(),
        },
    ];
    // Worst case a single partition receives the whole build side, so
    // each instance carries the full proven bound.
    let bound = crate::cost::join_build_bound(build, build_keys, payload);
    let rows_hint = estimated_rows(build);
    let consumer = |mut sources: Vec<BoxOp>, _p: usize| -> Result<BoxOp, ExecError> {
        let probe_src = sources.pop().expect("probe lane");
        let build_src = sources.pop().expect("build lane");
        Ok(Box::new(
            HashJoin::new(
                build_src,
                probe_src,
                build_keys.clone(),
                probe_keys.clone(),
                payload.clone(),
                *kind,
                *bloom,
                defaults.clone(),
                ctx,
                label,
            )?
            .with_build_rows(rows_hint)
            .with_tracker(ctx.mem_tracker(label, bound)),
        ))
    };
    let chunk = crate::cost::chunk_bound(build, ctx.vector_size())
        .max(crate::cost::chunk_bound(probe, ctx.vector_size()))
        .max(crate::cost::chunk_bound(plan, ctx.vector_size()));
    Ok(Box::new(
        HashPartitionExchange::new(lanes, partitions, &consumer)?
            .tracked(ctx.mem_tracker(format!("{label}/exchange"), chunk)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecConfig;
    use crate::ops::{collect, total_rows, JoinKind};
    use crate::plan::expr::{asc, col, count, desc, lit_i64, sum_i64};
    use crate::plan::{NamedPred, PlanBuilder};
    use crate::CmpKind;
    use ma_primitives::build_dictionary;
    use ma_vector::{ColumnBuilder, DataType};
    use std::collections::HashMap;

    fn ctx_with_workers(workers: usize) -> QueryContext {
        let mut cfg = ExecConfig::fixed_default();
        cfg.worker_threads = workers;
        QueryContext::new(Arc::new(build_dictionary()), cfg)
    }

    fn catalog(rows: usize) -> HashMap<String, Arc<Table>> {
        let mut k = ColumnBuilder::with_capacity(DataType::I32, rows);
        let mut v = ColumnBuilder::with_capacity(DataType::I64, rows);
        for i in 0..rows {
            k.push_i32((i % 7) as i32);
            v.push_i64(i as i64);
        }
        // `v` (the unique, sorted row id) is the first column: the
        // clustering-key convention the merge-join builder check relies
        // on.
        let t = Arc::new(
            Table::new(
                "t",
                vec![("v".into(), v.finish()), ("k".into(), k.finish())],
            )
            .unwrap(),
        );
        let mut dk = ColumnBuilder::with_capacity(DataType::I32, 3);
        let mut dv = ColumnBuilder::with_capacity(DataType::I64, 3);
        for i in 0..3 {
            dk.push_i32(i);
            dv.push_i64(i as i64 * 100);
        }
        let d = Arc::new(
            Table::new(
                "d",
                vec![("dk".into(), dk.finish()), ("dv".into(), dv.finish())],
            )
            .unwrap(),
        );
        let mut c = HashMap::new();
        c.insert("t".to_string(), t);
        c.insert("d".to_string(), d);
        c
    }

    fn agg_totals(workers: usize, rows: usize) -> Vec<(i32, i64)> {
        let c = catalog(rows);
        let plan = PlanBuilder::scan(&c, "t", &["k", "v"])
            .filter(NamedPred::cmp_val("k", CmpKind::Lt, Value::I32(5)), "sel")
            .hash_agg(&["k"], vec![count(), sum_i64("v")], "agg")
            .sort(&[asc("k")])
            .build()
            .unwrap();
        let ctx = ctx_with_workers(workers);
        let mut op = lower(&plan, &ctx).unwrap();
        let chunks = collect(op.as_mut()).unwrap();
        let mut out = Vec::new();
        for ch in &chunks {
            for p in ch.live_positions() {
                out.push((ch.column(0).as_i32()[p], ch.column(2).as_i64()[p]));
            }
        }
        out
    }

    use crate::expr::Value;

    #[test]
    fn lowering_matches_across_worker_counts() {
        // Big enough to shard (>= 2 morsels at the default vector size).
        let rows = 3 * VECTORS_PER_MORSEL * 1024;
        let seq = agg_totals(1, rows);
        let par = agg_totals(4, rows);
        assert_eq!(seq, par);
        assert_eq!(seq.len(), 5);
    }

    #[test]
    fn filter_over_scan_shards_into_parallel() {
        let rows = 3 * VECTORS_PER_MORSEL * 1024;
        let c = catalog(rows);
        let plan = PlanBuilder::scan(&c, "t", &["k"])
            .filter(NamedPred::cmp_val("k", CmpKind::Lt, Value::I32(1)), "sel")
            .build()
            .unwrap();
        let ctx = ctx_with_workers(4);
        let mut op = lower(&plan, &ctx).unwrap();
        let n = total_rows(&collect(op.as_mut()).unwrap());
        assert_eq!(n, rows / 7 + usize::from(!rows.is_multiple_of(7)));
        // The pushed-down selection ran inside the workers: exactly one
        // instance of the labeled selection primitive per worker (a
        // non-pushed Select above the exchange would create just one).
        // `reports()` is the unmerged view — `merged_reports()` would
        // fold the per-worker instances back into a single entry.
        drop(op);
        let sel_instances = ctx
            .reports()
            .iter()
            .filter(|r| r.label.starts_with("sel/"))
            .count();
        assert_eq!(
            sel_instances, 4,
            "expected one pushed-down selection instance per worker"
        );
    }

    #[test]
    fn partitioned_agg_runs_one_instance_per_partition() {
        // Big enough to shard: the planner must route the aggregation
        // through a hash-partitioning exchange with one private
        // HashAggregate per partition — visible as `workers` instances of
        // each aggregation primitive under the same label.
        let rows = 3 * VECTORS_PER_MORSEL * 1024;
        let c = catalog(rows);
        let plan = PlanBuilder::scan(&c, "t", &["k", "v"])
            .filter(NamedPred::cmp_val("k", CmpKind::Lt, Value::I32(5)), "sel")
            .hash_agg(&["k"], vec![count(), sum_i64("v")], "agg")
            .build()
            .unwrap();
        let ctx = ctx_with_workers(4);
        let mut op = lower(&plan, &ctx).unwrap();
        let chunks = collect(op.as_mut()).unwrap();
        drop(op);
        let mut out: Vec<(i32, i64)> = chunks
            .iter()
            .flat_map(|ch| {
                ch.live_positions()
                    .into_iter()
                    .map(|p| (ch.column(0).as_i32()[p], ch.column(2).as_i64()[p]))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable();
        assert_eq!(out, agg_totals(1, rows));
        let count_instances = ctx
            .reports()
            .iter()
            .filter(|r| r.label == "agg/aggr_count")
            .count();
        assert_eq!(
            count_instances, 4,
            "expected one aggregate instance per partition"
        );
        // Producers (scan + pushed-down filter) stay one per worker.
        let sel_instances = ctx
            .reports()
            .iter()
            .filter(|r| r.label.starts_with("sel/"))
            .count();
        assert_eq!(sel_instances, 4);
    }

    #[test]
    fn agg_over_serial_input_partitions_by_group_estimate() {
        // An aggregate whose input is NOT a shardable scan chain (a hash
        // join intervenes) partitions only when the *proven group bound*
        // clears the threshold. Group key `k` has exactly 7 distinct
        // values, and the equi-join against `dk ∈ [0, 2]` narrows it to
        // NDV ≤ 3 — so the bound is 3, not the 1000-row input estimate.
        let c = catalog(1000);
        let build = PlanBuilder::scan(&c, "d", &["dk", "dv"]);
        let plan = PlanBuilder::scan(&c, "t", &["k", "v"])
            .hash_join(build, &[("k", "dk")], &["dv"], JoinKind::Inner, false, "j")
            .hash_agg(&["k"], vec![count()], "agg")
            .build()
            .unwrap();
        let (agg_input, agg_keys) = match &plan {
            crate::plan::LogicalPlan::HashAgg { input, keys, .. } => (input.as_ref(), &keys[..]),
            other => panic!("expected HashAgg root, got {other}"),
        };
        let mut cfg = ExecConfig::fixed_default();
        cfg.worker_threads = 4;
        // Below the default threshold: single.
        assert_eq!(agg_partition_count(agg_input, agg_keys, &cfg), 1);
        // Verdict flip vs the raw row estimate: 1000 input rows used to
        // clear a threshold of 100, but at most 3 groups can exist.
        cfg.agg_min_partition_groups = 100;
        assert_eq!(agg_partition_count(agg_input, agg_keys, &cfg), 1);
        // The bound itself gates exactly: threshold == 3 partitions. The
        // cost model sizes P to the demand/threshold ratio (here 1,
        // clamped to the 2-partition minimum), not the worker count.
        cfg.agg_min_partition_groups = 3;
        assert_eq!(agg_partition_count(agg_input, agg_keys, &cfg), 2);
        // ... one past it does not.
        cfg.agg_min_partition_groups = 4;
        assert_eq!(agg_partition_count(agg_input, agg_keys, &cfg), 1);
        // An explicit partition count overrides worker-following...
        cfg.agg_min_partition_groups = 3;
        cfg.agg_partitions = 2;
        assert_eq!(agg_partition_count(agg_input, agg_keys, &cfg), 2);
        // ... and `1` disables partitioning outright.
        cfg.agg_partitions = 1;
        assert_eq!(agg_partition_count(agg_input, agg_keys, &cfg), 1);
        // Execution with a forced partition count still matches.
        let mut cfg = ExecConfig::fixed_default();
        cfg.agg_min_partition_groups = 3;
        cfg.agg_partitions = 3;
        let ctx = QueryContext::new(Arc::new(build_dictionary()), cfg);
        let mut op = lower(&plan, &ctx).unwrap();
        let chunks = collect(op.as_mut()).unwrap();
        drop(op);
        let total: i64 = chunks
            .iter()
            .flat_map(|ch| {
                ch.live_positions()
                    .into_iter()
                    .map(|p| ch.column(1).as_i64()[p])
                    .collect::<Vec<_>>()
            })
            .sum();
        // Keys 0..2 match the 3-row dimension; each key appears 1000/7
        // times (rounded up for k < 1000 % 7 = 6... keys 0,1,2 all get
        // ceil).
        assert_eq!(total, 143 * 3);
        let agg_instances = ctx
            .reports()
            .iter()
            .filter(|r| r.label == "agg/aggr_count")
            .count();
        assert_eq!(agg_instances, 3);
    }

    #[test]
    fn verdicts_flip_exactly_at_the_row_count_threshold() {
        // Scan estimates are exact base-table row counts (the
        // `Catalog::row_count` contract), and `v` is unique, so the group
        // bound for a group-by-`v` aggregate is exactly the row count: a
        // threshold equal to it partitions and one past it does not — no
        // slack in either direction.
        let rows = 1000;
        let c = catalog(rows);
        let plan = PlanBuilder::scan(&c, "t", &["k", "v"])
            .hash_agg(&["v"], vec![count()], "agg")
            .build()
            .unwrap();
        let (agg_input, agg_keys) = match &plan {
            LogicalPlan::HashAgg { input, keys, .. } => (input.as_ref(), keys.clone()),
            other => panic!("expected HashAgg root, got {other}"),
        };
        let mut cfg = ExecConfig::fixed_default();
        cfg.worker_threads = 4;
        cfg.agg_min_partition_groups = rows;
        assert_eq!(agg_partition_count(agg_input, &agg_keys, &cfg), 2);
        cfg.agg_min_partition_groups = rows + 1;
        assert_eq!(agg_partition_count(agg_input, &agg_keys, &cfg), 1);

        // Grouping by `k` (exactly 7 distinct values) instead caps the
        // bound at the key's NDV, not the 1000-row input: the verdict
        // flips at 7/8 even though every threshold below 1000 used to
        // partition.
        cfg.agg_min_partition_groups = 7;
        assert_eq!(agg_partition_count(agg_input, &[0], &cfg), 2);
        cfg.agg_min_partition_groups = 8;
        assert_eq!(agg_partition_count(agg_input, &[0], &cfg), 1);

        // Join verdict: the larger side (the probe scan, 1000 exact rows)
        // gates identically.
        let join = PlanBuilder::scan(&c, "t", &["k", "v"])
            .hash_join(
                PlanBuilder::scan(&c, "d", &["dk", "dv"]),
                &[("k", "dk")],
                &["dv"],
                JoinKind::Inner,
                false,
                "j",
            )
            .build()
            .unwrap();
        let LogicalPlan::HashJoin { build, probe, .. } = &join else {
            panic!("expected HashJoin root");
        };
        let mut cfg = ExecConfig::fixed_default();
        cfg.worker_threads = 4;
        cfg.join_min_partition_rows = rows;
        assert_eq!(join_partition_count(build, probe, &cfg), 2);
        cfg.join_min_partition_rows = rows + 1;
        assert_eq!(join_partition_count(build, probe, &cfg), 1);
        // Explicit partition count overrides worker-following; `1`
        // disables outright.
        cfg.join_min_partition_rows = rows;
        cfg.join_partitions = 2;
        assert_eq!(join_partition_count(build, probe, &cfg), 2);
        cfg.join_partitions = 1;
        assert_eq!(join_partition_count(build, probe, &cfg), 1);
    }

    #[test]
    fn inner_join_estimate_takes_the_larger_side() {
        // A big build table under a small probe: the build key `k` is NOT
        // distinct (7 values over 1000 rows), so each probe tuple can
        // match many build rows and the sound bound is the N·M product —
        // the estimate must not collapse to the 3-row probe side (it used
        // to, silently under-firing every verdict above the join).
        let rows = 1000;
        let c = catalog(rows);
        let join = PlanBuilder::scan(&c, "d", &["dk", "dv"])
            .hash_join(
                PlanBuilder::scan(&c, "t", &["k", "v"]),
                &[("dk", "k")],
                &["v"],
                JoinKind::Inner,
                false,
                "j",
            )
            .build()
            .unwrap();
        assert_eq!(estimated_rows(&join), 3 * rows);
        // The aggregation verdict directly above the join gates on the
        // payload key's NDV (`v` is unique over 1000 build rows), not the
        // 3000-row product estimate.
        let mut cfg = ExecConfig::fixed_default();
        cfg.worker_threads = 4;
        cfg.agg_min_partition_groups = rows;
        assert_eq!(agg_partition_count(&join, &[2], &cfg), 2);
        cfg.agg_min_partition_groups = rows + 1;
        assert_eq!(agg_partition_count(&join, &[2], &cfg), 1);

        // Semi joins stay probe-bounded exactly: at most one output row
        // per probe tuple, regardless of the build side's size.
        let semi = PlanBuilder::scan(&c, "d", &["dk", "dv"])
            .hash_join(
                PlanBuilder::scan(&c, "t", &["k", "v"]),
                &[("dk", "k")],
                &[],
                JoinKind::Semi,
                false,
                "s",
            )
            .build()
            .unwrap();
        assert_eq!(estimated_rows(&semi), 3);

        // Merge join: the left key `v` is provably all-distinct (NDV ==
        // row count), so the unique-key contract is proven and the bound
        // is the streaming right side's 3 rows — not the 1000-row left.
        let mj = PlanBuilder::scan(&c, "d", &["dk", "dv"])
            .merge_join(
                PlanBuilder::scan(&c, "t", &["v", "k"]),
                ("dk", "v"),
                &["k"],
                "mj",
            )
            .build()
            .unwrap();
        assert_eq!(estimated_rows(&mj), 3);
    }

    #[test]
    fn catalog_row_count_is_the_estimate_source() {
        // The scan's row estimate comes from `Catalog::row_count`,
        // captured at plan-build time — not from the materialized table.
        // A metadata-backed catalog that answers a different count must
        // shift the estimate (and with it the partitioning verdicts).
        struct MetaCatalog(HashMap<String, Arc<Table>>);
        impl crate::plan::Catalog for MetaCatalog {
            fn lookup(&self, name: &str) -> Option<Arc<Table>> {
                self.0.get(name).cloned()
            }
            fn row_count(&self, name: &str) -> Option<usize> {
                // Pretend the stored table is a 10-row sample of a
                // metadata-known cardinality.
                self.0.get(name).map(|_| 500_000)
            }
        }
        let c = MetaCatalog(catalog(1000));
        let plan = PlanBuilder::scan(&c, "t", &["k", "v"]).build().unwrap();
        assert_eq!(estimated_rows(&plan), 500_000);
        // The default-impl path (HashMap catalog) reports the exact
        // materialized count, as does `from_table`.
        let default_c = catalog(1000);
        let plan = PlanBuilder::scan(&default_c, "t", &["k", "v"])
            .build()
            .unwrap();
        assert_eq!(estimated_rows(&plan), 1000);
        let t = default_c.get("t").unwrap().clone();
        let plan = PlanBuilder::from_table(t, &["k", "v"]).build().unwrap();
        assert_eq!(estimated_rows(&plan), 1000);
    }

    #[test]
    fn partitioned_join_runs_one_instance_per_partition() {
        // The probe side is a sharded scan chain, so the planner must
        // partition the join: 4 private HashJoin instances (visible as 4
        // probe-hash instances under the plan node's label), results
        // identical to the single-instance join.
        let rows = 3 * VECTORS_PER_MORSEL * 1024;
        let c = catalog(rows);
        let mk_plan = |c: &HashMap<String, Arc<Table>>| {
            PlanBuilder::scan(c, "t", &["k", "v"])
                .hash_join(
                    PlanBuilder::scan(c, "d", &["dk", "dv"]),
                    &[("k", "dk")],
                    &["dv"],
                    JoinKind::Inner,
                    false,
                    "j",
                )
                .build()
                .unwrap()
        };
        let run = |workers: usize| {
            let plan = mk_plan(&c);
            let ctx = ctx_with_workers(workers);
            let mut op = lower(&plan, &ctx).unwrap();
            let chunks = collect(op.as_mut()).unwrap();
            drop(op);
            let mut out: Vec<(i32, i64, i64)> = chunks
                .iter()
                .flat_map(|ch| {
                    ch.live_positions()
                        .into_iter()
                        .map(|p| {
                            (
                                ch.column(0).as_i32()[p],
                                ch.column(1).as_i64()[p],
                                ch.column(2).as_i64()[p],
                            )
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            out.sort_unstable();
            (out, ctx)
        };
        let (seq, ctx1) = run(1);
        let (par, ctx4) = run(4);
        assert_eq!(seq, par, "partitioned join must match the single join");
        assert_eq!(seq.len(), (0..rows).filter(|i| i % 7 < 3).count());
        for &(k, _, dv) in &seq {
            assert_eq!(dv, k as i64 * 100);
        }
        let hash_instances = |ctx: &QueryContext| {
            ctx.reports()
                .iter()
                .filter(|r| r.label == "j/map_hash")
                .count()
        };
        assert_eq!(hash_instances(&ctx1), 1);
        assert_eq!(
            hash_instances(&ctx4),
            4,
            "expected one join instance per partition"
        );
    }

    #[test]
    fn semi_anti_and_left_single_joins_partition_exactly() {
        // Every key lands in one partition on both lanes, so the
        // partitioned union must be exact for all join kinds — including
        // the ones that depend on *absence* of matches.
        let rows = 3 * VECTORS_PER_MORSEL * 1024;
        let c = catalog(rows);
        for kind in [JoinKind::Semi, JoinKind::Anti] {
            let run = |workers: usize| {
                let plan = PlanBuilder::scan(&c, "t", &["k", "v"])
                    .hash_join(
                        PlanBuilder::scan(&c, "d", &["dk"]),
                        &[("k", "dk")],
                        &[],
                        kind,
                        false,
                        "j",
                    )
                    .build()
                    .unwrap();
                let ctx = ctx_with_workers(workers);
                let mut op = lower(&plan, &ctx).unwrap();
                let mut vals: Vec<i64> = collect(op.as_mut())
                    .unwrap()
                    .iter()
                    .flat_map(|ch| {
                        ch.live_positions()
                            .into_iter()
                            .map(|p| ch.column(1).as_i64()[p])
                            .collect::<Vec<_>>()
                    })
                    .collect();
                vals.sort_unstable();
                vals
            };
            assert_eq!(run(1), run(4), "{kind:?} join not partition-exact");
        }
        // LeftSingle: unmatched probe tuples must get defaults in their
        // partition, exactly once.
        let run_ls = |workers: usize| {
            let plan = PlanBuilder::scan(&c, "t", &["k", "v"])
                .left_single_join(
                    PlanBuilder::scan(&c, "d", &["dk", "dv"]),
                    &[("k", "dk")],
                    &[("dv", Value::I64(-1))],
                    "ls",
                )
                .build()
                .unwrap();
            let ctx = ctx_with_workers(workers);
            let mut op = lower(&plan, &ctx).unwrap();
            let mut vals: Vec<(i64, i64)> = collect(op.as_mut())
                .unwrap()
                .iter()
                .flat_map(|ch| {
                    ch.live_positions()
                        .into_iter()
                        .map(|p| (ch.column(1).as_i64()[p], ch.column(2).as_i64()[p]))
                        .collect::<Vec<_>>()
                })
                .collect();
            vals.sort_unstable();
            vals
        };
        let (one, four) = (run_ls(1), run_ls(4));
        assert_eq!(one.len(), rows, "left-single keeps every probe tuple");
        assert_eq!(one, four);
    }

    #[test]
    fn sort_resets_order_under_merge_join() {
        // The left input of a merge join is explicitly sorted: everything
        // beneath the Sort is order-insensitive and shards into an
        // arrival-order Parallel union. The right (streaming) side is a
        // clustering-key chain, so it *also* shards — behind a merging
        // exchange that restores key order.
        let rows = 3 * VECTORS_PER_MORSEL * 1024;
        let c = catalog(rows);
        let left = PlanBuilder::scan(&c, "t", &["v as lv", "k as lk"])
            .filter(
                NamedPred::cmp_val("lv", CmpKind::Lt, Value::I64(50_000)),
                "lsel",
            )
            .sort(&[asc("lv")]);
        let plan = PlanBuilder::scan(&c, "t", &["v", "k"])
            .filter(
                NamedPred::cmp_val("v", CmpKind::Lt, Value::I64(10_000)),
                "rsel",
            )
            .merge_join(left, ("v", "lv"), &["lk"], "mj")
            .build()
            .unwrap();
        let ctx = ctx_with_workers(4);
        let mut op = lower(&plan, &ctx).unwrap();
        let chunks = collect(op.as_mut()).unwrap();
        drop(op);
        assert_eq!(total_rows(&chunks), 10_000);
        let mut last = -1i64;
        for ch in &chunks {
            for p in ch.live_positions() {
                let v = ch.column(0).as_i64()[p];
                assert!(v > last, "merge join output not in key order");
                last = v;
            }
        }
        let count_label = |prefix: &str| {
            ctx.reports()
                .iter()
                .filter(|r| r.label.starts_with(prefix))
                .count()
        };
        assert_eq!(
            count_label("lsel/"),
            4,
            "sort-reset subtree should shard into 4 workers"
        );
        assert_eq!(
            count_label("rsel/"),
            4,
            "clustering-key merge-join input should shard behind a merging exchange"
        );
    }

    #[test]
    fn merge_join_inputs_shard_behind_merging_exchange() {
        // A merge join over a table large enough to shard: both inputs
        // are clustering-key chains, so the planner shards them behind
        // merging exchanges — correct, *sorted* results prove the merge
        // restored the order the join needs.
        let rows = 3 * VECTORS_PER_MORSEL * 1024;
        let c = catalog(rows);
        // left: unique keys 0..rows (v is unique and sorted); right: same
        // table filtered — both sorted by v.
        let left = PlanBuilder::scan(&c, "t", &["v as lv", "k as lk"]);
        let plan = PlanBuilder::scan(&c, "t", &["v", "k"])
            .filter(
                NamedPred::cmp_val("v", CmpKind::Lt, Value::I64(10_000)),
                "sel",
            )
            .merge_join(left, ("v", "lv"), &["lk"], "mj")
            .build()
            .unwrap();
        assert_eq!(plan.schema().names(), vec!["v", "k", "lk"]);
        let ctx = ctx_with_workers(4);
        let mut op = lower(&plan, &ctx).unwrap();
        let chunks = collect(op.as_mut()).unwrap();
        drop(op);
        assert_eq!(total_rows(&chunks), 10_000);
        let mut last = -1i64;
        for ch in &chunks {
            for p in ch.live_positions() {
                let v = ch.column(0).as_i64()[p];
                assert!(v > last, "merge join output not in key order");
                last = v;
                assert_eq!(ch.column(1).as_i32()[p], ch.column(2).as_i32()[p]);
            }
        }
        // Both sides ran sharded: one filter instance per worker on the
        // right, and the kernel still saw sorted streams (asserted above).
        let sel_instances = ctx
            .reports()
            .iter()
            .filter(|r| r.label.starts_with("sel/"))
            .count();
        assert_eq!(sel_instances, 4);
    }

    #[test]
    fn non_clustering_merge_key_stays_sequential() {
        // The planner's merge verdict mirrors the builder's structural
        // check: only a key that traces to the scanned table's clustering
        // (first) column shards behind a merging exchange; any other key
        // has no stored order to merge by and stays sequential.
        let rows = 3 * VECTORS_PER_MORSEL * 1024;
        let c = catalog(rows);
        let plan = PlanBuilder::scan(&c, "t", &["v", "k"]).build().unwrap();
        let mut cfg = ExecConfig::fixed_default();
        cfg.worker_threads = 4;
        // Key 0 (`v`) is the clustering column: shards behind a merge.
        assert_eq!(merge_workers(&plan, 0, &cfg), 4);
        // Key 1 (`k`) has no stored order: sequential.
        assert_eq!(merge_workers(&plan, 1, &cfg), 1);
        // Single-worker engines never merge-shard.
        cfg.worker_threads = 1;
        assert_eq!(merge_workers(&plan, 0, &cfg), 1);
    }

    #[test]
    fn join_project_topn_pipeline() {
        let c = catalog(1000);
        let build = PlanBuilder::scan(&c, "d", &["dk", "dv"]);
        let plan = PlanBuilder::scan(&c, "t", &["k", "v"])
            .hash_join(build, &[("k", "dk")], &["dv"], JoinKind::Inner, true, "j")
            .project(
                vec![("k", col("k")), ("score", col("v").add(col("dv")))],
                "proj",
            )
            .top_n(&[desc("score")], 5)
            .build()
            .unwrap();
        let ctx = ctx_with_workers(1);
        let mut op = lower(&plan, &ctx).unwrap();
        let chunks = collect(op.as_mut()).unwrap();
        assert_eq!(total_rows(&chunks), 5);
        let scores = chunks[0].column(1).as_i64();
        for w in scores.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn left_single_join_lowers_with_defaults() {
        let c = catalog(1000);
        let plan = PlanBuilder::scan(&c, "t", &["k", "v"])
            .left_single_join(
                PlanBuilder::scan(&c, "d", &["dk", "dv"]),
                &[("k", "dk")],
                &[("dv", Value::I64(-1))],
                "ls",
            )
            .build()
            .unwrap();
        let ctx = ctx_with_workers(1);
        let mut op = lower(&plan, &ctx).unwrap();
        let chunks = collect(op.as_mut()).unwrap();
        assert_eq!(total_rows(&chunks), 1000);
        for ch in &chunks {
            for p in ch.live_positions() {
                let k = ch.column(0).as_i32()[p];
                let dv = ch.column(2).as_i64()[p];
                assert_eq!(dv, if k < 3 { k as i64 * 100 } else { -1 });
            }
        }
    }

    #[test]
    fn stream_agg_and_expr_lowering() {
        let c = catalog(100);
        let plan = PlanBuilder::scan(&c, "t", &["v"])
            .project(vec![("v2", col("v").mul(lit_i64(2)))], "proj")
            .stream_agg(vec![sum_i64("v2").named("total"), count()], "agg")
            .build()
            .unwrap();
        let ctx = ctx_with_workers(1);
        let mut op = lower(&plan, &ctx).unwrap();
        let ch = op.next().unwrap().unwrap();
        assert_eq!(ch.column(0).as_i64()[0], 99 * 100);
        assert_eq!(ch.column(1).as_i64()[0], 100);
    }
}
