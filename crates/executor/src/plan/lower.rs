//! The physical planner: [`LogicalPlan`] → operator pipeline.
//!
//! Lowering is where *all* parallelism decisions live (queries only
//! declare intent):
//!
//! * **Sharding.** A scan under an order-insensitive pipeline with
//!   `worker_threads > 1` and enough rows to bother becomes `n`
//!   morsel-driven worker fragments united by a [`Parallel`] exchange.
//! * **Selection pushdown.** A [`LogicalPlan::Filter`] sitting directly
//!   on a scan is compiled *into* each worker fragment, so the selection
//!   primitives parallelize and every worker owns its own bandit state
//!   for them (per-worker micro adaptivity, DESIGN.md §5).
//! * **Order sensitivity.** A [`LogicalPlan::MergeJoin`] needs key-sorted
//!   inputs; a [`Parallel`] union interleaves worker streams in arrival
//!   order and would break that. The planner therefore lowers everything
//!   beneath a merge join in *ordered* mode, where scans stay sequential
//!   — the hazard cannot be expressed, let alone hit.

use std::sync::Arc;

use ma_vector::{MorselQueue, Table, VECTORS_PER_MORSEL};

use crate::expr::Pred;
use crate::ops::{
    HashAggregate, HashJoin, MergeJoin, Parallel, Scan, Select, Sort, StreamAggregate,
};
use crate::plan::LogicalPlan;
use crate::{BoxOp, ExecError, QueryContext};

/// Lowers a logical plan to a physical operator pipeline, deciding
/// sharding, selection pushdown and ordered-scan fallback centrally (see
/// the [plan module docs](crate::plan)).
pub fn lower(plan: &LogicalPlan, ctx: &QueryContext) -> Result<BoxOp, ExecError> {
    lower_node(plan, ctx, false)
}

/// `ordered`: true when some ancestor consumes its input in key order, so
/// scans beneath must not shard.
fn lower_node(plan: &LogicalPlan, ctx: &QueryContext, ordered: bool) -> Result<BoxOp, ExecError> {
    match plan {
        LogicalPlan::Scan { table, cols, .. } => lower_scan(table, cols, None, ctx, ordered, ""),
        LogicalPlan::Filter {
            input, pred, label, ..
        } => {
            // Pushdown: a filter directly over a scan runs inside the scan
            // workers when the scan shards.
            if let LogicalPlan::Scan { table, cols, .. } = input.as_ref() {
                lower_scan(table, cols, Some(pred), ctx, ordered, label)
            } else {
                let child = lower_node(input, ctx, ordered)?;
                Ok(Box::new(Select::new(child, pred, ctx, label)?))
            }
        }
        LogicalPlan::Project {
            input,
            items,
            label,
            ..
        } => {
            let child = lower_node(input, ctx, ordered)?;
            Ok(Box::new(crate::ops::Project::new(
                child,
                items.clone(),
                ctx,
                label,
            )?))
        }
        LogicalPlan::HashAgg {
            input,
            keys,
            aggs,
            label,
            ..
        } => {
            let child = lower_node(input, ctx, ordered)?;
            Ok(Box::new(HashAggregate::new(
                child,
                keys.clone(),
                aggs.clone(),
                ctx,
                label,
            )?))
        }
        LogicalPlan::StreamAgg {
            input, aggs, label, ..
        } => {
            let child = lower_node(input, ctx, ordered)?;
            Ok(Box::new(StreamAggregate::new(
                child,
                aggs.clone(),
                ctx,
                label,
            )?))
        }
        LogicalPlan::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
            payload,
            kind,
            bloom,
            defaults,
            label,
            ..
        } => {
            let b = lower_node(build, ctx, ordered)?;
            let p = lower_node(probe, ctx, ordered)?;
            Ok(Box::new(HashJoin::new(
                b,
                p,
                build_keys.clone(),
                probe_keys.clone(),
                payload.clone(),
                *kind,
                *bloom,
                defaults.clone(),
                ctx,
                label,
            )?))
        }
        LogicalPlan::MergeJoin {
            left,
            right,
            left_key,
            right_key,
            payload,
            label,
            ..
        } => {
            // Both inputs must arrive key-sorted: force sequential scans
            // underneath regardless of the configured worker count.
            let l = lower_node(left, ctx, true)?;
            let r = lower_node(right, ctx, true)?;
            Ok(Box::new(MergeJoin::new(
                l,
                r,
                *left_key,
                *right_key,
                payload.clone(),
                ctx,
                label,
            )?))
        }
        LogicalPlan::Sort {
            input, keys, limit, ..
        } => {
            let child = lower_node(input, ctx, ordered)?;
            Ok(Box::new(Sort::new(
                child,
                keys.clone(),
                *limit,
                ctx.vector_size(),
            )?))
        }
    }
}

/// Lowers a (possibly filtered) scan, deciding sequential vs sharded.
fn lower_scan(
    table: &Arc<Table>,
    cols: &[String],
    pred: Option<&Pred>,
    ctx: &QueryContext,
    ordered: bool,
    label: &str,
) -> Result<BoxOp, ExecError> {
    let names: Vec<&str> = cols.iter().map(String::as_str).collect();
    let workers = ctx.worker_threads();
    // Morsels follow the configured vector size so morsel boundaries stay
    // chunk-aligned for any `vector_size` (the worker-count-invariance
    // contract, DESIGN.md §5).
    let morsel_rows = VECTORS_PER_MORSEL * ctx.vector_size();
    // Sharding a table that yields only a couple of morsels buys nothing;
    // small scans (and the whole 1-worker engine) take the plain path, and
    // order-sensitive consumers always do.
    if ordered || workers == 1 || table.rows() < 2 * morsel_rows {
        let scan: BoxOp = Box::new(Scan::new(Arc::clone(table), &names, ctx.vector_size())?);
        return match pred {
            Some(p) => Ok(Box::new(Select::new(scan, p, ctx, label)?)),
            None => Ok(scan),
        };
    }
    let queue = Arc::new(MorselQueue::with_morsel(table.rows(), morsel_rows));
    let factory = |_worker: usize, _n: usize| -> Result<BoxOp, ExecError> {
        let scan: BoxOp = Box::new(Scan::morsel(
            Arc::clone(table),
            &names,
            ctx.vector_size(),
            Arc::clone(&queue),
        )?);
        match pred {
            Some(p) => Ok(Box::new(Select::new(scan, p, ctx, label)?)),
            None => Ok(scan),
        }
    };
    Ok(Box::new(Parallel::new(workers, &factory)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecConfig;
    use crate::ops::{collect, total_rows, JoinKind};
    use crate::plan::expr::{asc, col, count, desc, lit_i64, sum_i64};
    use crate::plan::{NamedPred, PlanBuilder};
    use crate::CmpKind;
    use ma_primitives::build_dictionary;
    use ma_vector::{ColumnBuilder, DataType};
    use std::collections::HashMap;

    fn ctx_with_workers(workers: usize) -> QueryContext {
        let mut cfg = ExecConfig::fixed_default();
        cfg.worker_threads = workers;
        QueryContext::new(Arc::new(build_dictionary()), cfg)
    }

    fn catalog(rows: usize) -> HashMap<String, Arc<Table>> {
        let mut k = ColumnBuilder::with_capacity(DataType::I32, rows);
        let mut v = ColumnBuilder::with_capacity(DataType::I64, rows);
        for i in 0..rows {
            k.push_i32((i % 7) as i32);
            v.push_i64(i as i64);
        }
        // `v` (the unique, sorted row id) is the first column: the
        // clustering-key convention the merge-join builder check relies
        // on.
        let t = Arc::new(
            Table::new(
                "t",
                vec![("v".into(), v.finish()), ("k".into(), k.finish())],
            )
            .unwrap(),
        );
        let mut dk = ColumnBuilder::with_capacity(DataType::I32, 3);
        let mut dv = ColumnBuilder::with_capacity(DataType::I64, 3);
        for i in 0..3 {
            dk.push_i32(i);
            dv.push_i64(i as i64 * 100);
        }
        let d = Arc::new(
            Table::new(
                "d",
                vec![("dk".into(), dk.finish()), ("dv".into(), dv.finish())],
            )
            .unwrap(),
        );
        let mut c = HashMap::new();
        c.insert("t".to_string(), t);
        c.insert("d".to_string(), d);
        c
    }

    fn agg_totals(workers: usize, rows: usize) -> Vec<(i32, i64)> {
        let c = catalog(rows);
        let plan = PlanBuilder::scan(&c, "t", &["k", "v"])
            .filter(NamedPred::cmp_val("k", CmpKind::Lt, Value::I32(5)), "sel")
            .hash_agg(&["k"], vec![count(), sum_i64("v")], "agg")
            .sort(&[asc("k")])
            .build()
            .unwrap();
        let ctx = ctx_with_workers(workers);
        let mut op = lower(&plan, &ctx).unwrap();
        let chunks = collect(op.as_mut()).unwrap();
        let mut out = Vec::new();
        for ch in &chunks {
            for p in ch.live_positions() {
                out.push((ch.column(0).as_i32()[p], ch.column(2).as_i64()[p]));
            }
        }
        out
    }

    use crate::expr::Value;

    #[test]
    fn lowering_matches_across_worker_counts() {
        // Big enough to shard (>= 2 morsels at the default vector size).
        let rows = 3 * VECTORS_PER_MORSEL * 1024;
        let seq = agg_totals(1, rows);
        let par = agg_totals(4, rows);
        assert_eq!(seq, par);
        assert_eq!(seq.len(), 5);
    }

    #[test]
    fn filter_over_scan_shards_into_parallel() {
        let rows = 3 * VECTORS_PER_MORSEL * 1024;
        let c = catalog(rows);
        let plan = PlanBuilder::scan(&c, "t", &["k"])
            .filter(NamedPred::cmp_val("k", CmpKind::Lt, Value::I32(1)), "sel")
            .build()
            .unwrap();
        let ctx = ctx_with_workers(4);
        let mut op = lower(&plan, &ctx).unwrap();
        let n = total_rows(&collect(op.as_mut()).unwrap());
        assert_eq!(n, rows / 7 + usize::from(!rows.is_multiple_of(7)));
        // The pushed-down selection ran inside the workers: exactly one
        // instance of the labeled selection primitive per worker (a
        // non-pushed Select above the exchange would create just one).
        // `reports()` is the unmerged view — `merged_reports()` would
        // fold the per-worker instances back into a single entry.
        drop(op);
        let sel_instances = ctx
            .reports()
            .iter()
            .filter(|r| r.label.starts_with("sel/"))
            .count();
        assert_eq!(
            sel_instances, 4,
            "expected one pushed-down selection instance per worker"
        );
    }

    #[test]
    fn merge_join_children_stay_sequential() {
        // A merge join over a table large enough that a plain scan would
        // shard: correct (sorted) results prove the planner forced
        // sequential scans underneath.
        let rows = 3 * VECTORS_PER_MORSEL * 1024;
        let c = catalog(rows);
        // left: unique keys 0..rows (v is unique and sorted); right: same
        // table filtered — both sorted by v.
        let left = PlanBuilder::scan(&c, "t", &["v as lv", "k as lk"]);
        let plan = PlanBuilder::scan(&c, "t", &["v", "k"])
            .filter(
                NamedPred::cmp_val("v", CmpKind::Lt, Value::I64(10_000)),
                "sel",
            )
            .merge_join(left, ("v", "lv"), &["lk"], "mj")
            .build()
            .unwrap();
        assert_eq!(plan.schema().names(), vec!["v", "k", "lk"]);
        let ctx = ctx_with_workers(4);
        let mut op = lower(&plan, &ctx).unwrap();
        let chunks = collect(op.as_mut()).unwrap();
        assert_eq!(total_rows(&chunks), 10_000);
        let mut last = -1i64;
        for ch in &chunks {
            for p in ch.live_positions() {
                let v = ch.column(0).as_i64()[p];
                assert!(v > last, "merge join output not in key order");
                last = v;
                assert_eq!(ch.column(1).as_i32()[p], ch.column(2).as_i32()[p]);
            }
        }
    }

    #[test]
    fn join_project_topn_pipeline() {
        let c = catalog(1000);
        let build = PlanBuilder::scan(&c, "d", &["dk", "dv"]);
        let plan = PlanBuilder::scan(&c, "t", &["k", "v"])
            .hash_join(build, &[("k", "dk")], &["dv"], JoinKind::Inner, true, "j")
            .project(
                vec![("k", col("k")), ("score", col("v").add(col("dv")))],
                "proj",
            )
            .top_n(&[desc("score")], 5)
            .build()
            .unwrap();
        let ctx = ctx_with_workers(1);
        let mut op = lower(&plan, &ctx).unwrap();
        let chunks = collect(op.as_mut()).unwrap();
        assert_eq!(total_rows(&chunks), 5);
        let scores = chunks[0].column(1).as_i64();
        for w in scores.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn left_single_join_lowers_with_defaults() {
        let c = catalog(1000);
        let plan = PlanBuilder::scan(&c, "t", &["k", "v"])
            .left_single_join(
                PlanBuilder::scan(&c, "d", &["dk", "dv"]),
                &[("k", "dk")],
                &[("dv", Value::I64(-1))],
                "ls",
            )
            .build()
            .unwrap();
        let ctx = ctx_with_workers(1);
        let mut op = lower(&plan, &ctx).unwrap();
        let chunks = collect(op.as_mut()).unwrap();
        assert_eq!(total_rows(&chunks), 1000);
        for ch in &chunks {
            for p in ch.live_positions() {
                let k = ch.column(0).as_i32()[p];
                let dv = ch.column(2).as_i64()[p];
                assert_eq!(dv, if k < 3 { k as i64 * 100 } else { -1 });
            }
        }
    }

    #[test]
    fn stream_agg_and_expr_lowering() {
        let c = catalog(100);
        let plan = PlanBuilder::scan(&c, "t", &["v"])
            .project(vec![("v2", col("v").mul(lit_i64(2)))], "proj")
            .stream_agg(vec![sum_i64("v2").named("total"), count()], "agg")
            .build()
            .unwrap();
        let ctx = ctx_with_workers(1);
        let mut op = lower(&plan, &ctx).unwrap();
        let ch = op.next().unwrap().unwrap();
        assert_eq!(ch.column(0).as_i64()[0], 99 * 100);
        assert_eq!(ch.column(1).as_i64()[0], 100);
    }
}
