//! The physical planner: [`LogicalPlan`] → operator pipeline.
//!
//! Lowering is where *all* parallelism decisions live (queries only
//! declare intent):
//!
//! * **Sharding.** A scan under an order-insensitive pipeline with
//!   `worker_threads > 1` and enough rows to bother becomes `n`
//!   morsel-driven worker fragments united by a [`Parallel`] exchange.
//! * **Pipeline pushdown.** A chain of [`LogicalPlan::Filter`] /
//!   [`LogicalPlan::Project`] nodes sitting on a scan is compiled *into*
//!   each worker fragment, so the selection and map primitives parallelize
//!   and every worker owns its own bandit state for them (per-worker micro
//!   adaptivity, DESIGN.md §5).
//! * **Partitioned aggregation.** A [`LogicalPlan::HashAgg`] over a
//!   sharded scan — or over any input with enough estimated groups —
//!   becomes a [`PartitionedExchange`]: producers route tuples by
//!   `hash(group keys) % P` to `P` private [`HashAggregate`] instances
//!   whose disjoint results union in arrival order (DESIGN.md §7).
//! * **Order sensitivity.** A [`LogicalPlan::MergeJoin`] needs key-sorted
//!   inputs; a [`Parallel`] union interleaves worker streams in arrival
//!   order and would break that. The planner therefore lowers everything
//!   beneath a merge join in *ordered* mode, where scans stay sequential
//!   — the hazard cannot be expressed, let alone hit. Nodes that *reset*
//!   order (Sort re-sorts; aggregates and hash-join builds are
//!   order-insensitive) drop back to unordered mode for their inputs, so
//!   an order-resetting subtree under a merge join still shards.

use std::sync::Arc;

use ma_vector::{MorselQueue, Table, VECTORS_PER_MORSEL};

use crate::config::ExecConfig;
use crate::ops::{AggSpec, ProjItem};
use crate::ops::{
    HashAggregate, HashJoin, MergeJoin, Parallel, PartitionedExchange, Scan, Select, Sort,
    StreamAggregate,
};
use crate::plan::LogicalPlan;
use crate::{BoxOp, ExecError, QueryContext};

/// Lowers a logical plan to a physical operator pipeline, deciding
/// sharding, pipeline pushdown, aggregate partitioning and ordered-scan
/// fallback centrally (see the [plan module docs](crate::plan)).
pub fn lower(plan: &LogicalPlan, ctx: &QueryContext) -> Result<BoxOp, ExecError> {
    lower_node(plan, ctx, false)
}

/// Ordered-mode propagation from `plan` to its child at `idx` (0 = input/
/// build/left, 1 = probe/right), given the node's own `ordered` flag.
///
/// One function, used by both lowering and the physical EXPLAIN traversal,
/// so the rendered verdict can never drift from the executed one:
///
/// * Filter/Project stream through — the constraint passes;
/// * Sort re-sorts and aggregates materialize — order *resets*, the
///   subtree may shard even under a merge join;
/// * a hash join's build side materializes (resets) while its probe side
///   streams (inherits);
/// * a merge join *pins* both children to ordered mode.
pub(crate) fn child_ordered(plan: &LogicalPlan, idx: usize, ordered: bool) -> bool {
    match plan {
        LogicalPlan::Scan { .. } | LogicalPlan::Filter { .. } | LogicalPlan::Project { .. } => {
            ordered
        }
        LogicalPlan::HashAgg { .. } | LogicalPlan::StreamAgg { .. } | LogicalPlan::Sort { .. } => {
            false
        }
        LogicalPlan::HashJoin { .. } => idx != 0 && ordered,
        LogicalPlan::MergeJoin { .. } => true,
    }
}

/// `ordered`: true when some ancestor consumes its input in key order, so
/// scans beneath must not shard.
fn lower_node(plan: &LogicalPlan, ctx: &QueryContext, ordered: bool) -> Result<BoxOp, ExecError> {
    // Any Filter/Project chain over a big-enough scan shards into worker
    // fragments, unless an order-sensitive ancestor forbids it.
    if !ordered {
        if let Some(chain) = shardable_chain(plan, ctx.config()) {
            let queue = morsel_queue(&chain, ctx);
            let workers = ctx.worker_threads();
            let factory = |_worker: usize, _n: usize| -> Result<BoxOp, ExecError> {
                build_chain_fragment(&chain, &queue, ctx)
            };
            return Ok(Box::new(Parallel::new(workers, &factory)?));
        }
    }
    match plan {
        LogicalPlan::Scan { table, cols, .. } => lower_scan_seq(table, cols, ctx),
        LogicalPlan::Filter {
            input, pred, label, ..
        } => {
            let child = lower_node(input, ctx, child_ordered(plan, 0, ordered))?;
            Ok(Box::new(Select::new(child, pred, ctx, label)?))
        }
        LogicalPlan::Project {
            input,
            items,
            label,
            ..
        } => {
            let child = lower_node(input, ctx, child_ordered(plan, 0, ordered))?;
            Ok(Box::new(crate::ops::Project::new(
                child,
                items.clone(),
                ctx,
                label,
            )?))
        }
        LogicalPlan::HashAgg {
            input,
            keys,
            aggs,
            label,
            ..
        } => {
            // Aggregation resets order for its input (`child_ordered`), but
            // an ordered *ancestor* still pins the aggregate itself to a
            // single (deterministically ordered) instance.
            let partitions = if ordered {
                1
            } else {
                agg_partition_count(input, ctx.config())
            };
            if partitions >= 2 {
                return lower_partitioned_agg(input, keys, aggs, partitions, ctx, label);
            }
            let child = lower_node(input, ctx, child_ordered(plan, 0, ordered))?;
            Ok(Box::new(HashAggregate::new(
                child,
                keys.clone(),
                aggs.clone(),
                ctx,
                label,
            )?))
        }
        LogicalPlan::StreamAgg {
            input, aggs, label, ..
        } => {
            let child = lower_node(input, ctx, child_ordered(plan, 0, ordered))?;
            Ok(Box::new(StreamAggregate::new(
                child,
                aggs.clone(),
                ctx,
                label,
            )?))
        }
        LogicalPlan::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
            payload,
            kind,
            bloom,
            defaults,
            label,
            ..
        } => {
            let b = lower_node(build, ctx, child_ordered(plan, 0, ordered))?;
            let p = lower_node(probe, ctx, child_ordered(plan, 1, ordered))?;
            Ok(Box::new(HashJoin::new(
                b,
                p,
                build_keys.clone(),
                probe_keys.clone(),
                payload.clone(),
                *kind,
                *bloom,
                defaults.clone(),
                ctx,
                label,
            )?))
        }
        LogicalPlan::MergeJoin {
            left,
            right,
            left_key,
            right_key,
            payload,
            label,
            ..
        } => {
            // Both inputs must arrive key-sorted (`child_ordered` pins
            // them): sequential scans underneath regardless of the
            // configured worker count.
            let l = lower_node(left, ctx, child_ordered(plan, 0, ordered))?;
            let r = lower_node(right, ctx, child_ordered(plan, 1, ordered))?;
            Ok(Box::new(MergeJoin::new(
                l,
                r,
                *left_key,
                *right_key,
                payload.clone(),
                ctx,
                label,
            )?))
        }
        LogicalPlan::Sort {
            input, keys, limit, ..
        } => {
            let child = lower_node(input, ctx, child_ordered(plan, 0, ordered))?;
            Ok(Box::new(Sort::new(
                child,
                keys.clone(),
                *limit,
                ctx.vector_size(),
            )?))
        }
    }
}

// ---------------------------------------------------------------------------
// shardable Filter/Project chains over a scan
// ---------------------------------------------------------------------------

/// One pushed-down pipeline stage above the scan inside a worker fragment.
enum ChainStage<'a> {
    Filter {
        pred: &'a crate::expr::Pred,
        label: &'a str,
    },
    Project {
        items: &'a [ProjItem],
        label: &'a str,
    },
}

/// A Filter/Project chain over a scan big enough to shard.
struct ShardableChain<'a> {
    table: &'a Arc<Table>,
    cols: &'a [String],
    /// Stages above the scan, bottom-up.
    stages: Vec<ChainStage<'a>>,
}

/// Decomposes `plan` into a per-worker-compilable chain, or `None` when the
/// pipeline contains a blocking/join node, the engine is single-threaded,
/// or the table yields too few morsels to bother.
fn shardable_chain<'a>(plan: &'a LogicalPlan, cfg: &ExecConfig) -> Option<ShardableChain<'a>> {
    if cfg.worker_threads.max(1) == 1 {
        return None;
    }
    let morsel_rows = VECTORS_PER_MORSEL * cfg.vector_size;
    let mut stages = Vec::new();
    let mut cur = plan;
    loop {
        match cur {
            LogicalPlan::Filter {
                input, pred, label, ..
            } => {
                stages.push(ChainStage::Filter { pred, label });
                cur = input;
            }
            LogicalPlan::Project {
                input,
                items,
                label,
                ..
            } => {
                stages.push(ChainStage::Project { items, label });
                cur = input;
            }
            LogicalPlan::Scan { table, cols, .. } => {
                // Sharding a table that yields only a couple of morsels
                // buys nothing.
                if table.rows() < 2 * morsel_rows {
                    return None;
                }
                stages.reverse();
                return Some(ShardableChain {
                    table,
                    cols,
                    stages,
                });
            }
            _ => return None,
        }
    }
}

/// A fresh morsel queue over the chain's table. Morsels follow the
/// configured vector size so morsel boundaries stay chunk-aligned for any
/// `vector_size` (the worker-count-invariance contract, DESIGN.md §5).
fn morsel_queue(chain: &ShardableChain<'_>, ctx: &QueryContext) -> Arc<MorselQueue> {
    let morsel_rows = VECTORS_PER_MORSEL * ctx.vector_size();
    Arc::new(MorselQueue::with_morsel(chain.table.rows(), morsel_rows))
}

/// Compiles one worker's fragment: a morsel scan plus the chain's stages,
/// each with private primitive instances (per-worker bandit state).
fn build_chain_fragment(
    chain: &ShardableChain<'_>,
    queue: &Arc<MorselQueue>,
    ctx: &QueryContext,
) -> Result<BoxOp, ExecError> {
    let names: Vec<&str> = chain.cols.iter().map(String::as_str).collect();
    let mut op: BoxOp = Box::new(Scan::morsel(
        Arc::clone(chain.table),
        &names,
        ctx.vector_size(),
        Arc::clone(queue),
    )?);
    for stage in &chain.stages {
        op = match stage {
            ChainStage::Filter { pred, label } => Box::new(Select::new(op, pred, ctx, label)?),
            ChainStage::Project { items, label } => {
                Box::new(crate::ops::Project::new(op, items.to_vec(), ctx, label)?)
            }
        };
    }
    Ok(op)
}

/// Plain sequential scan (the 1-worker engine, small tables, ordered mode).
fn lower_scan_seq(
    table: &Arc<Table>,
    cols: &[String],
    ctx: &QueryContext,
) -> Result<BoxOp, ExecError> {
    let names: Vec<&str> = cols.iter().map(String::as_str).collect();
    Ok(Box::new(Scan::new(
        Arc::clone(table),
        &names,
        ctx.vector_size(),
    )?))
}

// ---------------------------------------------------------------------------
// partitioned hash aggregation
// ---------------------------------------------------------------------------

/// The planner's partitioning verdict for a hash aggregation over `input`:
/// the partition count (`< 2` means a single aggregate instance).
///
/// Partition when the input is itself a sharded scan chain (the producers
/// are already parallel — serializing them behind one aggregate would be
/// the Amdahl bottleneck this exchange exists to remove), or when the
/// estimated group count exceeds [`ExecConfig::agg_min_partition_groups`]
/// (a heavy aggregate behind a serial producer still parallelizes its
/// hash-table work). Also used by the physical EXPLAIN rendering, so the
/// verdict shown is the verdict executed.
pub(crate) fn agg_partition_count(input: &LogicalPlan, cfg: &ExecConfig) -> usize {
    let partitions = if cfg.agg_partitions == 0 {
        cfg.worker_threads.max(1)
    } else {
        cfg.agg_partitions
    };
    if partitions < 2 {
        return 1;
    }
    if shardable_chain(input, cfg).is_some() {
        return partitions;
    }
    // Group-count stand-in: the input row estimate (groups ≤ rows holds
    // per input tuple, though the estimate itself is approximate — see
    // `estimated_rows`).
    if estimated_rows(input) >= cfg.agg_min_partition_groups {
        return partitions;
    }
    1
}

/// Crude row estimate for a plan's output: scans report table rows,
/// filters and joins pass their streamed side through undiminished. The
/// planner has no cardinality statistics yet (ROADMAP), so this can err
/// in *both* directions — filters shrink below it, N:M joins can fan out
/// above it. It only gates the serial-producer partitioning verdict
/// (standing in for a group-count estimate), where a miss costs
/// parallelism, never correctness.
fn estimated_rows(plan: &LogicalPlan) -> usize {
    match plan {
        LogicalPlan::Scan { table, .. } => table.rows(),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::HashAgg { input, .. } => estimated_rows(input),
        LogicalPlan::HashJoin { probe, .. } => estimated_rows(probe),
        LogicalPlan::MergeJoin { right, .. } => estimated_rows(right),
        LogicalPlan::StreamAgg { .. } => 1,
    }
}

/// Lowers a hash aggregation as a [`PartitionedExchange`]: producers
/// (sharded scan fragments when the input decomposes, the serially lowered
/// input otherwise) route tuples by group-key hash to `partitions` private
/// [`HashAggregate`] instances. Group keys are disjoint across partitions,
/// so the arrival-order union of partition outputs *is* the aggregate —
/// no merge step. All instances share the plan node's label, so
/// [`QueryContext::merged_reports`] folds their statistics exactly like
/// per-worker scan instances.
fn lower_partitioned_agg(
    input: &LogicalPlan,
    keys: &[usize],
    aggs: &[AggSpec],
    partitions: usize,
    ctx: &QueryContext,
    label: &str,
) -> Result<BoxOp, ExecError> {
    let producers: Vec<BoxOp> = match shardable_chain(input, ctx.config()) {
        Some(chain) => {
            let queue = morsel_queue(&chain, ctx);
            (0..ctx.worker_threads())
                .map(|_| build_chain_fragment(&chain, &queue, ctx))
                .collect::<Result<_, _>>()?
        }
        None => vec![lower_node(input, ctx, false)?],
    };
    let consumer = |source: BoxOp, _p: usize| -> Result<BoxOp, ExecError> {
        Ok(Box::new(HashAggregate::new(
            source,
            keys.to_vec(),
            aggs.to_vec(),
            ctx,
            label,
        )?))
    };
    Ok(Box::new(PartitionedExchange::new(
        producers, keys, partitions, &consumer,
    )?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecConfig;
    use crate::ops::{collect, total_rows, JoinKind};
    use crate::plan::expr::{asc, col, count, desc, lit_i64, sum_i64};
    use crate::plan::{NamedPred, PlanBuilder};
    use crate::CmpKind;
    use ma_primitives::build_dictionary;
    use ma_vector::{ColumnBuilder, DataType};
    use std::collections::HashMap;

    fn ctx_with_workers(workers: usize) -> QueryContext {
        let mut cfg = ExecConfig::fixed_default();
        cfg.worker_threads = workers;
        QueryContext::new(Arc::new(build_dictionary()), cfg)
    }

    fn catalog(rows: usize) -> HashMap<String, Arc<Table>> {
        let mut k = ColumnBuilder::with_capacity(DataType::I32, rows);
        let mut v = ColumnBuilder::with_capacity(DataType::I64, rows);
        for i in 0..rows {
            k.push_i32((i % 7) as i32);
            v.push_i64(i as i64);
        }
        // `v` (the unique, sorted row id) is the first column: the
        // clustering-key convention the merge-join builder check relies
        // on.
        let t = Arc::new(
            Table::new(
                "t",
                vec![("v".into(), v.finish()), ("k".into(), k.finish())],
            )
            .unwrap(),
        );
        let mut dk = ColumnBuilder::with_capacity(DataType::I32, 3);
        let mut dv = ColumnBuilder::with_capacity(DataType::I64, 3);
        for i in 0..3 {
            dk.push_i32(i);
            dv.push_i64(i as i64 * 100);
        }
        let d = Arc::new(
            Table::new(
                "d",
                vec![("dk".into(), dk.finish()), ("dv".into(), dv.finish())],
            )
            .unwrap(),
        );
        let mut c = HashMap::new();
        c.insert("t".to_string(), t);
        c.insert("d".to_string(), d);
        c
    }

    fn agg_totals(workers: usize, rows: usize) -> Vec<(i32, i64)> {
        let c = catalog(rows);
        let plan = PlanBuilder::scan(&c, "t", &["k", "v"])
            .filter(NamedPred::cmp_val("k", CmpKind::Lt, Value::I32(5)), "sel")
            .hash_agg(&["k"], vec![count(), sum_i64("v")], "agg")
            .sort(&[asc("k")])
            .build()
            .unwrap();
        let ctx = ctx_with_workers(workers);
        let mut op = lower(&plan, &ctx).unwrap();
        let chunks = collect(op.as_mut()).unwrap();
        let mut out = Vec::new();
        for ch in &chunks {
            for p in ch.live_positions() {
                out.push((ch.column(0).as_i32()[p], ch.column(2).as_i64()[p]));
            }
        }
        out
    }

    use crate::expr::Value;

    #[test]
    fn lowering_matches_across_worker_counts() {
        // Big enough to shard (>= 2 morsels at the default vector size).
        let rows = 3 * VECTORS_PER_MORSEL * 1024;
        let seq = agg_totals(1, rows);
        let par = agg_totals(4, rows);
        assert_eq!(seq, par);
        assert_eq!(seq.len(), 5);
    }

    #[test]
    fn filter_over_scan_shards_into_parallel() {
        let rows = 3 * VECTORS_PER_MORSEL * 1024;
        let c = catalog(rows);
        let plan = PlanBuilder::scan(&c, "t", &["k"])
            .filter(NamedPred::cmp_val("k", CmpKind::Lt, Value::I32(1)), "sel")
            .build()
            .unwrap();
        let ctx = ctx_with_workers(4);
        let mut op = lower(&plan, &ctx).unwrap();
        let n = total_rows(&collect(op.as_mut()).unwrap());
        assert_eq!(n, rows / 7 + usize::from(!rows.is_multiple_of(7)));
        // The pushed-down selection ran inside the workers: exactly one
        // instance of the labeled selection primitive per worker (a
        // non-pushed Select above the exchange would create just one).
        // `reports()` is the unmerged view — `merged_reports()` would
        // fold the per-worker instances back into a single entry.
        drop(op);
        let sel_instances = ctx
            .reports()
            .iter()
            .filter(|r| r.label.starts_with("sel/"))
            .count();
        assert_eq!(
            sel_instances, 4,
            "expected one pushed-down selection instance per worker"
        );
    }

    #[test]
    fn partitioned_agg_runs_one_instance_per_partition() {
        // Big enough to shard: the planner must route the aggregation
        // through a hash-partitioning exchange with one private
        // HashAggregate per partition — visible as `workers` instances of
        // each aggregation primitive under the same label.
        let rows = 3 * VECTORS_PER_MORSEL * 1024;
        let c = catalog(rows);
        let plan = PlanBuilder::scan(&c, "t", &["k", "v"])
            .filter(NamedPred::cmp_val("k", CmpKind::Lt, Value::I32(5)), "sel")
            .hash_agg(&["k"], vec![count(), sum_i64("v")], "agg")
            .build()
            .unwrap();
        let ctx = ctx_with_workers(4);
        let mut op = lower(&plan, &ctx).unwrap();
        let chunks = collect(op.as_mut()).unwrap();
        drop(op);
        let mut out: Vec<(i32, i64)> = chunks
            .iter()
            .flat_map(|ch| {
                ch.live_positions()
                    .into_iter()
                    .map(|p| (ch.column(0).as_i32()[p], ch.column(2).as_i64()[p]))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable();
        assert_eq!(out, agg_totals(1, rows));
        let count_instances = ctx
            .reports()
            .iter()
            .filter(|r| r.label == "agg/aggr_count")
            .count();
        assert_eq!(
            count_instances, 4,
            "expected one aggregate instance per partition"
        );
        // Producers (scan + pushed-down filter) stay one per worker.
        let sel_instances = ctx
            .reports()
            .iter()
            .filter(|r| r.label.starts_with("sel/"))
            .count();
        assert_eq!(sel_instances, 4);
    }

    #[test]
    fn agg_over_serial_input_partitions_by_group_estimate() {
        // An aggregate whose input is NOT a shardable scan chain (a hash
        // join intervenes) partitions only when the estimated group count
        // clears the threshold.
        let c = catalog(1000);
        let build = PlanBuilder::scan(&c, "d", &["dk", "dv"]);
        let plan = PlanBuilder::scan(&c, "t", &["k", "v"])
            .hash_join(build, &[("k", "dk")], &["dv"], JoinKind::Inner, false, "j")
            .hash_agg(&["k"], vec![count()], "agg")
            .build()
            .unwrap();
        let agg_input = match &plan {
            crate::plan::LogicalPlan::HashAgg { input, .. } => input.as_ref(),
            other => panic!("expected HashAgg root, got {other}"),
        };
        let mut cfg = ExecConfig::fixed_default();
        cfg.worker_threads = 4;
        // 1000 estimated rows is below the default threshold: single.
        assert_eq!(agg_partition_count(agg_input, &cfg), 1);
        // Lowering the threshold flips the verdict.
        cfg.agg_min_partition_groups = 100;
        assert_eq!(agg_partition_count(agg_input, &cfg), 4);
        // An explicit partition count overrides worker-following...
        cfg.agg_partitions = 2;
        assert_eq!(agg_partition_count(agg_input, &cfg), 2);
        // ... and `1` disables partitioning outright.
        cfg.agg_partitions = 1;
        assert_eq!(agg_partition_count(agg_input, &cfg), 1);
        // Execution with a forced partition count still matches.
        let mut cfg = ExecConfig::fixed_default();
        cfg.agg_min_partition_groups = 100;
        cfg.agg_partitions = 3;
        let ctx = QueryContext::new(Arc::new(build_dictionary()), cfg);
        let mut op = lower(&plan, &ctx).unwrap();
        let chunks = collect(op.as_mut()).unwrap();
        drop(op);
        let total: i64 = chunks
            .iter()
            .flat_map(|ch| {
                ch.live_positions()
                    .into_iter()
                    .map(|p| ch.column(1).as_i64()[p])
                    .collect::<Vec<_>>()
            })
            .sum();
        // Keys 0..2 match the 3-row dimension; each key appears 1000/7
        // times (rounded up for k < 1000 % 7 = 6... keys 0,1,2 all get
        // ceil).
        assert_eq!(total, 143 * 3);
        let agg_instances = ctx
            .reports()
            .iter()
            .filter(|r| r.label == "agg/aggr_count")
            .count();
        assert_eq!(agg_instances, 3);
    }

    #[test]
    fn sort_resets_order_under_merge_join() {
        // The left input of a merge join is explicitly sorted: everything
        // beneath the Sort is order-insensitive and must shard, while the
        // right (streaming) side stays sequential.
        let rows = 3 * VECTORS_PER_MORSEL * 1024;
        let c = catalog(rows);
        let left = PlanBuilder::scan(&c, "t", &["v as lv", "k as lk"])
            .filter(
                NamedPred::cmp_val("lv", CmpKind::Lt, Value::I64(50_000)),
                "lsel",
            )
            .sort(&[asc("lv")]);
        let plan = PlanBuilder::scan(&c, "t", &["v", "k"])
            .filter(
                NamedPred::cmp_val("v", CmpKind::Lt, Value::I64(10_000)),
                "rsel",
            )
            .merge_join(left, ("v", "lv"), &["lk"], "mj")
            .build()
            .unwrap();
        let ctx = ctx_with_workers(4);
        let mut op = lower(&plan, &ctx).unwrap();
        let chunks = collect(op.as_mut()).unwrap();
        drop(op);
        assert_eq!(total_rows(&chunks), 10_000);
        let mut last = -1i64;
        for ch in &chunks {
            for p in ch.live_positions() {
                let v = ch.column(0).as_i64()[p];
                assert!(v > last, "merge join output not in key order");
                last = v;
            }
        }
        let count_label = |prefix: &str| {
            ctx.reports()
                .iter()
                .filter(|r| r.label.starts_with(prefix))
                .count()
        };
        assert_eq!(
            count_label("lsel/"),
            4,
            "sort-reset subtree should shard into 4 workers"
        );
        assert_eq!(
            count_label("rsel/"),
            1,
            "streaming merge-join input must stay sequential"
        );
    }

    #[test]
    fn merge_join_children_stay_sequential() {
        // A merge join over a table large enough that a plain scan would
        // shard: correct (sorted) results prove the planner forced
        // sequential scans underneath.
        let rows = 3 * VECTORS_PER_MORSEL * 1024;
        let c = catalog(rows);
        // left: unique keys 0..rows (v is unique and sorted); right: same
        // table filtered — both sorted by v.
        let left = PlanBuilder::scan(&c, "t", &["v as lv", "k as lk"]);
        let plan = PlanBuilder::scan(&c, "t", &["v", "k"])
            .filter(
                NamedPred::cmp_val("v", CmpKind::Lt, Value::I64(10_000)),
                "sel",
            )
            .merge_join(left, ("v", "lv"), &["lk"], "mj")
            .build()
            .unwrap();
        assert_eq!(plan.schema().names(), vec!["v", "k", "lk"]);
        let ctx = ctx_with_workers(4);
        let mut op = lower(&plan, &ctx).unwrap();
        let chunks = collect(op.as_mut()).unwrap();
        assert_eq!(total_rows(&chunks), 10_000);
        let mut last = -1i64;
        for ch in &chunks {
            for p in ch.live_positions() {
                let v = ch.column(0).as_i64()[p];
                assert!(v > last, "merge join output not in key order");
                last = v;
                assert_eq!(ch.column(1).as_i32()[p], ch.column(2).as_i32()[p]);
            }
        }
    }

    #[test]
    fn join_project_topn_pipeline() {
        let c = catalog(1000);
        let build = PlanBuilder::scan(&c, "d", &["dk", "dv"]);
        let plan = PlanBuilder::scan(&c, "t", &["k", "v"])
            .hash_join(build, &[("k", "dk")], &["dv"], JoinKind::Inner, true, "j")
            .project(
                vec![("k", col("k")), ("score", col("v").add(col("dv")))],
                "proj",
            )
            .top_n(&[desc("score")], 5)
            .build()
            .unwrap();
        let ctx = ctx_with_workers(1);
        let mut op = lower(&plan, &ctx).unwrap();
        let chunks = collect(op.as_mut()).unwrap();
        assert_eq!(total_rows(&chunks), 5);
        let scores = chunks[0].column(1).as_i64();
        for w in scores.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn left_single_join_lowers_with_defaults() {
        let c = catalog(1000);
        let plan = PlanBuilder::scan(&c, "t", &["k", "v"])
            .left_single_join(
                PlanBuilder::scan(&c, "d", &["dk", "dv"]),
                &[("k", "dk")],
                &[("dv", Value::I64(-1))],
                "ls",
            )
            .build()
            .unwrap();
        let ctx = ctx_with_workers(1);
        let mut op = lower(&plan, &ctx).unwrap();
        let chunks = collect(op.as_mut()).unwrap();
        assert_eq!(total_rows(&chunks), 1000);
        for ch in &chunks {
            for p in ch.live_positions() {
                let k = ch.column(0).as_i32()[p];
                let dv = ch.column(2).as_i64()[p];
                assert_eq!(dv, if k < 3 { k as i64 * 100 } else { -1 });
            }
        }
    }

    #[test]
    fn stream_agg_and_expr_lowering() {
        let c = catalog(100);
        let plan = PlanBuilder::scan(&c, "t", &["v"])
            .project(vec![("v2", col("v").mul(lit_i64(2)))], "proj")
            .stream_agg(vec![sum_i64("v2").named("total"), count()], "agg")
            .build()
            .unwrap();
        let ctx = ctx_with_workers(1);
        let mut op = lower(&plan, &ctx).unwrap();
        let ch = op.next().unwrap().unwrap();
        assert_eq!(ch.column(0).as_i64()[0], 99 * 100);
        assert_eq!(ch.column(1).as_i64()[0], 100);
    }
}
