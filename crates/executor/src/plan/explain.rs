//! `EXPLAIN`-style rendering of logical plans.
//!
//! [`LogicalPlan`] implements [`std::fmt::Display`] as an indented tree.
//! Every line shows the node, its parameters mapped back to column
//! *names*, and the resolved output schema. Scans additionally carry the
//! planner's structural verdict: `(shardable)` when the pipeline above is
//! order-insensitive (so [`crate::plan::lower`] may shard it across
//! workers), `(ordered)` when an ancestor merge join constrains it.
//!
//! [`explain_physical`] renders the same tree against a concrete
//! [`ExecConfig`], additionally annotating the planner's physical
//! verdicts: `HashAgg (partitioned ×P)` / `HashJoin (partitioned ×P)`
//! when [`crate::plan::lower`] will route the operator through a
//! hash-partitioning exchange, and a `Merge ×N` node above each ordered
//! chain that shards into `(morsel)` scans re-merged by a
//! [`crate::ops::MergeExchange`]. Every verdict is computed by the *same*
//! decision function lowering uses, so EXPLAIN shows what will execute.

use std::fmt;

use ma_vector::Schema;

use crate::config::ExecConfig;
use crate::expr::{CmpKind, CmpRhs, Expr, Pred, Value};
use crate::ops::{AggSpec, JoinKind, ProjItem, SortKey};
use crate::plan::lower::OrderCtx;
use crate::plan::LogicalPlan;

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_node(f, self, 0, None, RenderCtx::Free, None)
    }
}

/// Renders `plan` with the physical planner's verdicts for `config`
/// (worker count, partition knobs): operators the planner will partition
/// are annotated `(partitioned ×P)`, and ordered chains it will shard
/// render under a `Merge ×N` node with `(morsel)` scans.
pub fn explain_physical(plan: &LogicalPlan, config: &ExecConfig) -> String {
    struct Physical<'a>(&'a LogicalPlan, &'a ExecConfig);
    impl fmt::Display for Physical<'_> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt_node(f, self.0, 0, None, RenderCtx::Free, Some(self.1))
        }
    }
    Physical(plan, config).to_string()
}

/// The rendering-side ordering context: the planner's [`OrderCtx`] plus
/// one extra state for subtrees already placed under a `Merge ×N` node
/// (whose scans render `(morsel)` and never re-trigger a merge).
#[derive(Clone, Copy, PartialEq, Eq)]
enum RenderCtx {
    Free,
    Key(usize),
    Pinned,
    Morsel,
}

impl RenderCtx {
    fn from_order(o: OrderCtx) -> RenderCtx {
        match o {
            OrderCtx::Free => RenderCtx::Free,
            OrderCtx::Key(k) => RenderCtx::Key(k),
            OrderCtx::Pinned => RenderCtx::Pinned,
        }
    }

    /// The context for `plan`'s child at `idx`, via the planner's own
    /// propagation rule.
    fn child(self, plan: &LogicalPlan, idx: usize) -> RenderCtx {
        match self {
            RenderCtx::Morsel => RenderCtx::Morsel,
            RenderCtx::Free => {
                RenderCtx::from_order(super::lower::child_order(plan, idx, OrderCtx::Free))
            }
            RenderCtx::Key(k) => {
                RenderCtx::from_order(super::lower::child_order(plan, idx, OrderCtx::Key(k)))
            }
            RenderCtx::Pinned => {
                RenderCtx::from_order(super::lower::child_order(plan, idx, OrderCtx::Pinned))
            }
        }
    }
}

fn fmt_node(
    f: &mut fmt::Formatter<'_>,
    plan: &LogicalPlan,
    indent: usize,
    tag: Option<&str>,
    ctx: RenderCtx,
    config: Option<&ExecConfig>,
) -> fmt::Result {
    // Physical rendering: an ordered chain the planner will shard renders
    // under a merging-exchange node (same decision function as lowering).
    if let (RenderCtx::Key(key), Some(cfg)) = (ctx, config) {
        let workers = super::lower::merge_workers(plan, key, cfg);
        if workers >= 2 {
            write!(f, "{:indent$}", "", indent = indent * 2)?;
            if let Some(t) = tag {
                write!(f, "{t}: ")?;
            }
            let schema = plan.schema();
            writeln!(
                f,
                "Merge \u{d7}{workers} on {} -> {schema}",
                schema.field(key).name
            )?;
            return fmt_node(f, plan, indent + 1, None, RenderCtx::Morsel, config);
        }
    }
    write!(f, "{:indent$}", "", indent = indent * 2)?;
    if let Some(t) = tag {
        write!(f, "{t}: ")?;
    }
    match plan {
        LogicalPlan::Scan {
            table,
            cols,
            schema,
            ..
        } => {
            let mode = match ctx {
                RenderCtx::Free => "shardable",
                RenderCtx::Key(_) | RenderCtx::Pinned => "ordered",
                RenderCtx::Morsel => "morsel",
            };
            // Per-column storage codecs, so the plan shows which scans
            // decode through flavored primitives (`enc=[col:codec, ..]`).
            let encs: Vec<String> = cols
                .iter()
                .filter_map(|name| {
                    let i = table.column_index(name).ok()?;
                    let e = table.column_at(i).encoding()?;
                    Some(format!("{name}:{e}"))
                })
                .collect();
            if encs.is_empty() {
                writeln!(f, "Scan {} ({mode}) -> {schema}", table.name())
            } else {
                writeln!(
                    f,
                    "Scan {} ({mode}) enc=[{}] -> {schema}",
                    table.name(),
                    encs.join(", ")
                )
            }
        }
        LogicalPlan::Filter {
            input,
            pred,
            schema,
            ..
        } => {
            writeln!(
                f,
                "Filter {} -> {schema}",
                render_pred(pred, input.schema())
            )?;
            fmt_node(f, input, indent + 1, None, ctx.child(plan, 0), config)
        }
        LogicalPlan::Project {
            input,
            items,
            schema,
            ..
        } => {
            let parts: Vec<String> = items
                .iter()
                .zip(schema.fields())
                .map(|(item, field)| match item {
                    ProjItem::Pass(i) if input.schema().field(*i).name == field.name => {
                        field.name.clone()
                    }
                    ProjItem::Pass(i) => {
                        format!("{}={}", field.name, input.schema().field(*i).name)
                    }
                    ProjItem::Expr(e) => {
                        format!("{}={}", field.name, render_expr(e, input.schema()))
                    }
                })
                .collect();
            writeln!(f, "Project [{}] -> {schema}", parts.join(", "))?;
            fmt_node(f, input, indent + 1, None, ctx.child(plan, 0), config)
        }
        LogicalPlan::HashAgg {
            input,
            keys,
            aggs,
            schema,
            ..
        } => {
            let key_names: Vec<&str> = keys
                .iter()
                .map(|&i| input.schema().field(i).name.as_str())
                .collect();
            // Physical rendering: the partitioning verdict, from the same
            // decision function lowering uses.
            let partitions = match config {
                Some(cfg) if ctx == RenderCtx::Free => {
                    super::lower::agg_partition_count(input, keys, cfg)
                }
                _ => 1,
            };
            if partitions >= 2 {
                write!(f, "HashAgg (partitioned \u{d7}{partitions}) ")?;
            } else {
                write!(f, "HashAgg ")?;
            }
            writeln!(
                f,
                "keys=[{}] aggs=[{}] -> {schema}",
                key_names.join(", "),
                render_aggs(aggs, keys.len(), input.schema(), schema)
            )?;
            fmt_node(f, input, indent + 1, None, ctx.child(plan, 0), config)
        }
        LogicalPlan::StreamAgg {
            input,
            aggs,
            schema,
            ..
        } => {
            writeln!(
                f,
                "StreamAgg [{}] -> {schema}",
                render_aggs(aggs, 0, input.schema(), schema)
            )?;
            fmt_node(f, input, indent + 1, None, ctx.child(plan, 0), config)
        }
        LogicalPlan::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
            payload,
            kind,
            bloom,
            schema,
            ..
        } => {
            let kind_name = match kind {
                JoinKind::Inner => "inner",
                JoinKind::Semi => "semi",
                JoinKind::Anti => "anti",
                JoinKind::LeftSingle => "left-single",
            };
            let on: Vec<String> = probe_keys
                .iter()
                .zip(build_keys)
                .map(|(&p, &b)| {
                    format!(
                        "{} = {}",
                        probe.schema().field(p).name,
                        build.schema().field(b).name
                    )
                })
                .collect();
            let pay: Vec<&str> = payload
                .iter()
                .map(|&i| build.schema().field(i).name.as_str())
                .collect();
            // Physical rendering: the join-partitioning verdict, from the
            // same decision function lowering uses.
            let partitions = match config {
                Some(cfg) if ctx == RenderCtx::Free => {
                    super::lower::join_partition_count(build, probe, cfg)
                }
                _ => 1,
            };
            if partitions >= 2 {
                write!(f, "HashJoin (partitioned \u{d7}{partitions}) ")?;
            } else {
                write!(f, "HashJoin ")?;
            }
            write!(f, "{kind_name} on ({})", on.join(", "))?;
            if !pay.is_empty() {
                write!(f, " payload=[{}]", pay.join(", "))?;
            }
            if *bloom {
                write!(f, " bloom")?;
            }
            writeln!(f, " -> {schema}")?;
            // Build materializes (resets order); probe streams (inherits).
            fmt_node(
                f,
                build,
                indent + 1,
                Some("build"),
                ctx.child(plan, 0),
                config,
            )?;
            fmt_node(
                f,
                probe,
                indent + 1,
                Some("probe"),
                ctx.child(plan, 1),
                config,
            )
        }
        LogicalPlan::MergeJoin {
            left,
            right,
            left_key,
            right_key,
            payload,
            schema,
            ..
        } => {
            let pay: Vec<&str> = payload
                .iter()
                .map(|&i| left.schema().field(i).name.as_str())
                .collect();
            write!(
                f,
                "MergeJoin on ({} = {})",
                right.schema().field(*right_key).name,
                left.schema().field(*left_key).name
            )?;
            if !pay.is_empty() {
                write!(f, " payload=[{}]", pay.join(", "))?;
            }
            writeln!(f, " -> {schema}")?;
            // Order-sensitive: the key constraint threads down, until an
            // order-resetting node drops it — physically, a clustering-key
            // chain shards under a `Merge ×N` node instead.
            fmt_node(
                f,
                left,
                indent + 1,
                Some("left"),
                ctx.child(plan, 0),
                config,
            )?;
            fmt_node(
                f,
                right,
                indent + 1,
                Some("right"),
                ctx.child(plan, 1),
                config,
            )
        }
        LogicalPlan::Sort {
            input,
            keys,
            limit,
            schema,
        } => {
            let ks: Vec<String> = keys
                .iter()
                .map(|k: &SortKey| {
                    format!(
                        "{} {}",
                        input.schema().field(k.col).name,
                        if k.desc { "desc" } else { "asc" }
                    )
                })
                .collect();
            write!(f, "Sort [{}]", ks.join(", "))?;
            if let Some(l) = limit {
                write!(f, " limit={l}")?;
            }
            writeln!(f, " -> {schema}")?;
            fmt_node(f, input, indent + 1, None, ctx.child(plan, 0), config)
        }
    }
}

fn render_aggs(aggs: &[AggSpec], key_count: usize, input: &Schema, out: &Schema) -> String {
    aggs.iter()
        .enumerate()
        .map(|(i, spec)| {
            let out_name = &out.field(key_count + i).name;
            let body = match spec {
                AggSpec::SumI64(c) => format!("sum_i64({})", input.field(*c).name),
                AggSpec::SumF64(c) => format!("sum_f64({})", input.field(*c).name),
                AggSpec::CountStar => "count(*)".to_string(),
                AggSpec::MinI64(c) => format!("min_i64({})", input.field(*c).name),
                AggSpec::MaxI64(c) => format!("max_i64({})", input.field(*c).name),
                AggSpec::MinF64(c) => format!("min_f64({})", input.field(*c).name),
                AggSpec::MaxF64(c) => format!("max_f64({})", input.field(*c).name),
            };
            format!("{out_name}={body}")
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn render_value(v: &Value) -> String {
    match v {
        Value::I16(x) => x.to_string(),
        Value::I32(x) => x.to_string(),
        Value::I64(x) => x.to_string(),
        Value::F64(x) => x.to_string(),
        Value::Str(s) => format!("'{s}'"),
    }
}

fn cmp_symbol(op: CmpKind) -> &'static str {
    match op {
        CmpKind::Lt => "<",
        CmpKind::Le => "<=",
        CmpKind::Gt => ">",
        CmpKind::Ge => ">=",
        CmpKind::Eq => "=",
        CmpKind::Ne => "<>",
    }
}

/// Renders a resolved predicate with indices mapped back to names.
pub(crate) fn render_pred(pred: &Pred, schema: &Schema) -> String {
    match pred {
        Pred::Cmp { col, op, rhs } => {
            let lhs = &schema.field(*col).name;
            let rhs = match rhs {
                CmpRhs::Const(v) => render_value(v),
                CmpRhs::Col(i) => schema.field(*i).name.clone(),
            };
            format!("{lhs} {} {rhs}", cmp_symbol(*op))
        }
        Pred::Like { col, pattern } => format!("{} LIKE '{pattern}'", schema.field(*col).name),
        Pred::NotLike { col, pattern } => {
            format!("{} NOT LIKE '{pattern}'", schema.field(*col).name)
        }
        Pred::InStr { col, values } => {
            let vs: Vec<String> = values.iter().map(|v| format!("'{v}'")).collect();
            format!("{} IN ({})", schema.field(*col).name, vs.join(", "))
        }
        Pred::And(ps) => ps
            .iter()
            .map(|p| paren_composite(p, schema))
            .collect::<Vec<_>>()
            .join(" AND "),
        Pred::Or(ps) => ps
            .iter()
            .map(|p| paren_composite(p, schema))
            .collect::<Vec<_>>()
            .join(" OR "),
    }
}

fn paren_composite(p: &Pred, schema: &Schema) -> String {
    match p {
        Pred::And(_) | Pred::Or(_) => format!("({})", render_pred(p, schema)),
        _ => render_pred(p, schema),
    }
}

/// Renders a resolved expression with indices mapped back to names.
pub(crate) fn render_expr(expr: &Expr, schema: &Schema) -> String {
    match expr {
        Expr::Col(i) => schema.field(*i).name.clone(),
        Expr::Const(v) => render_value(v),
        Expr::Arith { op, lhs, rhs } => {
            let sym = match op {
                crate::expr::ArithKind::Add => "+",
                crate::expr::ArithKind::Sub => "-",
                crate::expr::ArithKind::Mul => "*",
                crate::expr::ArithKind::Div => "/",
            };
            format!(
                "({} {sym} {})",
                render_expr(lhs, schema),
                render_expr(rhs, schema)
            )
        }
        Expr::Cast { to, inner } => format!("{to}({})", render_expr(inner, schema)),
        Expr::Substr { col, start, len } => {
            format!("substr({}, {start}, {len})", schema.field(*col).name)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::ops::JoinKind;
    use crate::plan::expr::{asc, col, count, lit_f64, sum_f64};
    use crate::plan::{NamedPred, PlanBuilder};
    use ma_vector::{ColumnBuilder, DataType, Table};
    use std::collections::HashMap;
    use std::sync::Arc;

    fn catalog() -> HashMap<String, Arc<Table>> {
        let mk = |name: &str| {
            let mut k = ColumnBuilder::with_capacity(DataType::I32, 4);
            let mut s = ColumnBuilder::with_capacity(DataType::Str, 4);
            let mut x = ColumnBuilder::with_capacity(DataType::F64, 4);
            for i in 0..4 {
                k.push_i32(i as i32);
                s.push_str(["a", "b", "c", "d"][i]);
                x.push_f64(i as f64);
            }
            Arc::new(
                Table::new(
                    name,
                    vec![
                        ("k".into(), k.finish()),
                        ("s".into(), s.finish()),
                        ("x".into(), x.finish()),
                    ],
                )
                .unwrap(),
            )
        };
        let mut c = HashMap::new();
        c.insert("t".to_string(), mk("t"));
        c.insert("d".to_string(), mk("d"));
        c
    }

    #[test]
    fn renders_full_tree_with_schemas() {
        let c = catalog();
        let plan = PlanBuilder::scan(&c, "t", &["k", "s", "x"])
            .filter(NamedPred::in_str("s", ["a", "b"]), "sel")
            .hash_join(
                PlanBuilder::scan(&c, "d", &["k as dk", "x as dx"]),
                &[("k", "dk")],
                &["dx"],
                JoinKind::Inner,
                true,
                "j",
            )
            .project(
                vec![("s", col("s")), ("y", col("x").mul(lit_f64(2.0)))],
                "p",
            )
            .hash_agg(&["s"], vec![count(), sum_f64("y")], "agg")
            .sort(&[asc("s")])
            .build()
            .unwrap();
        let text = plan.to_string();
        let expected = "\
Sort [s asc] -> (s:str, count:i64, sum_y:f64)
  HashAgg keys=[s] aggs=[count=count(*), sum_y=sum_f64(y)] -> (s:str, count:i64, sum_y:f64)
    Project [s, y=(x * 2)] -> (s:str, y:f64)
      HashJoin inner on (k = dk) payload=[dx] bloom -> (k:i32, s:str, x:f64, dx:f64)
        build: Scan d (shardable) -> (dk:i32, dx:f64)
        probe: Filter s IN ('a', 'b') -> (k:i32, s:str, x:f64)
          Scan t (shardable) -> (k:i32, s:str, x:f64)
";
        assert_eq!(text, expected);
    }

    #[test]
    fn merge_join_marks_scans_ordered() {
        let c = catalog();
        let plan = PlanBuilder::scan(&c, "t", &["k", "s"])
            .merge_join(
                PlanBuilder::scan(&c, "d", &["k as dk", "s as ds"]),
                ("k", "dk"),
                &["ds"],
                "mj",
            )
            .build()
            .unwrap();
        let text = plan.to_string();
        assert!(text.contains("left: Scan d (ordered)"), "{text}");
        assert!(text.contains("right: Scan t (ordered)"), "{text}");
        assert!(!text.contains("shardable"), "{text}");
    }

    #[test]
    fn physical_rendering_shows_partition_verdict() {
        use crate::config::ExecConfig;
        let c = catalog();
        let plan = PlanBuilder::scan(&c, "t", &["k", "x"])
            .hash_agg(&["k"], vec![count(), sum_f64("x")], "agg")
            .build()
            .unwrap();
        // Structural rendering carries no physical verdict.
        assert!(!plan.to_string().contains("partitioned"), "{plan}");
        // 4 workers + a trivial group threshold: the planner partitions.
        let mut cfg = ExecConfig::fixed_default();
        cfg.worker_threads = 4;
        cfg.agg_min_partition_groups = 1;
        let text = super::explain_physical(&plan, &cfg);
        assert!(
            text.contains("HashAgg (partitioned \u{d7}4) keys=[k]"),
            "{text}"
        );
        // A single-worker config renders the same tree unannotated.
        let text1 = super::explain_physical(&plan, &ExecConfig::fixed_default());
        assert_eq!(text1, plan.to_string());
    }

    #[test]
    fn pred_rendering_covers_all_forms() {
        use crate::expr::{CmpKind, Value};
        let c = catalog();
        let plan = PlanBuilder::scan(&c, "t", &["k", "s", "x"])
            .filter(
                NamedPred::Or(vec![
                    NamedPred::And(vec![
                        NamedPred::cmp_val("k", CmpKind::Ge, Value::I32(1)),
                        NamedPred::not_like("s", "%z%"),
                    ]),
                    NamedPred::cmp_col("x", CmpKind::Lt, "x"),
                ]),
                "sel",
            )
            .build()
            .unwrap();
        let text = plan.to_string();
        assert!(
            text.contains("Filter (k >= 1 AND s NOT LIKE '%z%') OR x < x"),
            "{text}"
        );
    }
}
