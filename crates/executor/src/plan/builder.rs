//! The fluent, schema-tracking plan builder.
//!
//! Every method resolves the names it is given against the current node's
//! [`Schema`] immediately and records the first failure; [`PlanBuilder::build`]
//! returns either the finished [`LogicalPlan`] or that typed [`PlanError`].
//! Deferring the `Result` to `build()` keeps query text free of `?` noise
//! while still failing at plan-build time, never at lowering time.
//!
//! Column lists accept an `"source as alias"` form wherever a column is
//! carried into an output schema, so reused subplans (self-joins,
//! two-phase aggregates) can keep their names unambiguous.

use std::sync::Arc;

use ma_vector::{DataType, Field, Schema, Table};

use crate::expr::Value;
use crate::ops::{JoinKind, ProjItem, SortKey};
use crate::plan::expr::{resolve_col, Agg, NamedExpr, NamedPred, SortSpec};
use crate::plan::{Catalog, LogicalPlan, PlanError};

/// Fluent builder over [`LogicalPlan`] — see the [module docs](crate::plan).
pub struct PlanBuilder {
    state: Result<LogicalPlan, PlanError>,
}

/// Splits a `"source as alias"` column spec (plain names pass through).
fn parse_alias(spec: &str) -> (&str, &str) {
    match spec.split_once(" as ") {
        Some((src, alias)) => (src.trim(), alias.trim()),
        None => (spec, spec),
    }
}

fn integer(ty: DataType) -> bool {
    matches!(ty, DataType::I16 | DataType::I32 | DataType::I64)
}

/// True when the merge key traces — through order-preserving nodes
/// (Filter narrows the selection vector; Project must pass the key
/// through unchanged) — to the base table's **first column**, which is by
/// convention its clustering key (every table this engine generates or
/// materializes is stored in first-column order). Such a chain emits the
/// key in sorted order, and the physical planner protects that order:
/// either with a sequential scan, or by sharding into morsel fragments
/// (each internally key-sorted) re-merged by a
/// [`crate::ops::MergeExchange`] — the same structural test gates both
/// (`plan::lower::merge_workers`).
pub(crate) fn clustered_key_chain(plan: &LogicalPlan, key: usize) -> bool {
    match plan {
        LogicalPlan::Scan { table, cols, .. } => {
            cols.get(key).map(String::as_str) == table.column_names().first().map(String::as_str)
        }
        LogicalPlan::Filter { input, .. } => clustered_key_chain(input, key),
        LogicalPlan::Project { input, items, .. } => match items.get(key) {
            Some(ProjItem::Pass(i)) => clustered_key_chain(input, *i),
            _ => false, // a computed key has no stored order
        },
        _ => false,
    }
}

/// A merge-join input must arrive sorted by the join key: either a
/// [`clustered_key_chain`], or an explicit `sort` whose primary key is
/// the join key ascending. Everything else — hash aggregates/joins (hash
/// or arrival order), computed keys, non-clustering columns,
/// differently-keyed sorts — would make the merge join silently drop
/// matches, so it is a typed error at `build()`.
fn check_merge_input(side: &str, plan: &LogicalPlan, key: usize) -> Result<(), PlanError> {
    let ok = match plan {
        LogicalPlan::Sort { keys, .. } => keys.first().is_some_and(|k| k.col == key && !k.desc),
        other => clustered_key_chain(other, key),
    };
    if ok {
        Ok(())
    } else {
        Err(PlanError::Invalid(format!(
            "{side} merge-join input is not sorted by the join key: the key must \
             pass through from the scanned table's clustering (first) column, or \
             the input must be sorted ascending by it"
        )))
    }
}

/// Rejects an output schema with duplicate column names.
fn check_unique(fields: &[Field]) -> Result<(), PlanError> {
    for (i, f) in fields.iter().enumerate() {
        if fields[..i].iter().any(|g| g.name == f.name) {
            return Err(PlanError::DuplicateColumn(f.name.clone()));
        }
    }
    Ok(())
}

impl PlanBuilder {
    /// Starts a plan by scanning `table` from `catalog`. The catalog's
    /// [`Catalog::row_count`] is captured on the scan node as the
    /// planner's cardinality anchor — a metadata-backed catalog can
    /// answer it without materializing the table.
    pub fn scan(catalog: &dyn Catalog, table: &str, cols: &[&str]) -> PlanBuilder {
        let (Some(t), Some(rows)) = (catalog.lookup(table), catalog.row_count(table)) else {
            return PlanBuilder {
                state: Err(PlanError::UnknownTable(table.to_string())),
            };
        };
        Self::scan_table(t, rows, cols)
    }

    /// Starts a plan by scanning an in-memory table directly (temporary
    /// tables of multi-phase queries) — the table itself supplies the
    /// row count a catalog would.
    pub fn from_table(table: Arc<Table>, cols: &[&str]) -> PlanBuilder {
        let rows = table.rows();
        Self::scan_table(table, rows, cols)
    }

    fn scan_table(table: Arc<Table>, base_rows: usize, cols: &[&str]) -> PlanBuilder {
        let state = (|| {
            let mut src = Vec::with_capacity(cols.len());
            let mut fields = Vec::with_capacity(cols.len());
            for spec in cols {
                let (name, alias) = parse_alias(spec);
                let col = table.column(name).map_err(|_| PlanError::UnknownColumn {
                    name: name.to_string(),
                    schema: format!("table {}", table.name()),
                })?;
                src.push(name.to_string());
                fields.push(Field::new(alias, col.data_type()));
            }
            check_unique(&fields)?;
            Ok(LogicalPlan::Scan {
                table,
                cols: src,
                base_rows,
                schema: Schema::new(fields),
            })
        })();
        PlanBuilder { state }
    }

    fn and_then(self, f: impl FnOnce(LogicalPlan) -> Result<LogicalPlan, PlanError>) -> Self {
        PlanBuilder {
            state: self.state.and_then(f),
        }
    }

    /// Filters by `pred`; `label` names the selection's primitive
    /// instances in statistics.
    pub fn filter(self, pred: NamedPred, label: &str) -> Self {
        let label = label.to_string();
        self.and_then(|input| {
            let schema = input.schema().clone();
            let pred = pred.resolve(&schema)?;
            Ok(LogicalPlan::Filter {
                input: Box::new(input),
                pred,
                label,
                schema,
            })
        })
    }

    /// Projects to `(name, expression)` output columns. Bare column
    /// references lower to zero-copy pass-throughs.
    pub fn project(self, items: Vec<(&str, NamedExpr)>, label: &str) -> Self {
        let label = label.to_string();
        let items: Vec<(String, NamedExpr)> =
            items.into_iter().map(|(n, e)| (n.to_string(), e)).collect();
        self.and_then(|input| {
            let in_schema = input.schema();
            let mut proj = Vec::with_capacity(items.len());
            let mut fields = Vec::with_capacity(items.len());
            for (name, expr) in &items {
                match expr {
                    NamedExpr::Col(c) => {
                        let i = resolve_col(in_schema, c)?;
                        proj.push(ProjItem::Pass(i));
                        fields.push(Field::new(name, in_schema.field(i).ty));
                    }
                    other => {
                        let (e, ty) = other.resolve(in_schema)?;
                        proj.push(ProjItem::Expr(e));
                        fields.push(Field::new(name, ty));
                    }
                }
            }
            check_unique(&fields)?;
            Ok(LogicalPlan::Project {
                input: Box::new(input),
                items: proj,
                label,
                schema: Schema::new(fields),
            })
        })
    }

    /// Keeps (and reorders) the named columns — a pure pass-through
    /// projection. Accepts `"source as alias"` specs.
    pub fn keep(self, cols: &[&str]) -> Self {
        let specs: Vec<String> = cols.iter().map(|s| s.to_string()).collect();
        self.and_then(|input| {
            let in_schema = input.schema();
            let mut proj = Vec::with_capacity(specs.len());
            let mut fields = Vec::with_capacity(specs.len());
            for spec in &specs {
                let (name, alias) = parse_alias(spec);
                let i = resolve_col(in_schema, name)?;
                proj.push(ProjItem::Pass(i));
                fields.push(Field::new(alias, in_schema.field(i).ty));
            }
            check_unique(&fields)?;
            Ok(LogicalPlan::Project {
                input: Box::new(input),
                items: proj,
                label: "keep".into(),
                schema: Schema::new(fields),
            })
        })
    }

    /// Grouped hash aggregation over `keys`. Output schema: the key
    /// columns (aliasable) followed by one column per [`Agg`].
    pub fn hash_agg(self, keys: &[&str], aggs: Vec<Agg>, label: &str) -> Self {
        let label = label.to_string();
        let keys: Vec<String> = keys.iter().map(|s| s.to_string()).collect();
        self.and_then(|input| {
            if keys.is_empty() {
                return Err(PlanError::Invalid(
                    "hash_agg requires group keys; use stream_agg".into(),
                ));
            }
            let in_schema = input.schema();
            let mut key_idx = Vec::with_capacity(keys.len());
            let mut fields = Vec::with_capacity(keys.len() + aggs.len());
            for spec in &keys {
                let (name, alias) = parse_alias(spec);
                let i = resolve_col(in_schema, name)?;
                let ty = in_schema.field(i).ty;
                if ty == DataType::F64 {
                    return Err(PlanError::TypeMismatch {
                        context: format!("group key {name}"),
                        expected: "an integer or string column".into(),
                        found: ty,
                    });
                }
                key_idx.push(i);
                fields.push(Field::new(alias, ty));
            }
            let specs = aggs
                .iter()
                .map(|a| a.resolve(in_schema))
                .collect::<Result<Vec<_>, _>>()?;
            for a in &aggs {
                fields.push(Field::new(&a.name, a.out_type()));
            }
            check_unique(&fields)?;
            Ok(LogicalPlan::HashAgg {
                input: Box::new(input),
                keys: key_idx,
                aggs: specs,
                label,
                schema: Schema::new(fields),
            })
        })
    }

    /// Ungrouped aggregation producing a single row.
    pub fn stream_agg(self, aggs: Vec<Agg>, label: &str) -> Self {
        let label = label.to_string();
        self.and_then(|input| {
            let in_schema = input.schema();
            let specs = aggs
                .iter()
                .map(|a| a.resolve(in_schema))
                .collect::<Result<Vec<_>, _>>()?;
            let fields: Vec<Field> = aggs
                .iter()
                .map(|a| Field::new(&a.name, a.out_type()))
                .collect();
            check_unique(&fields)?;
            Ok(LogicalPlan::StreamAgg {
                input: Box::new(input),
                aggs: specs,
                label,
                schema: Schema::new(fields),
            })
        })
    }

    /// Hash-joins `self` (the probe side) against `build`. `on` pairs are
    /// `(probe_col, build_col)`; keys must be integer columns. `payload`
    /// names build columns appended to the output (inner joins only;
    /// aliasable). For left-single joins use
    /// [`PlanBuilder::left_single_join`].
    pub fn hash_join(
        self,
        build: PlanBuilder,
        on: &[(&str, &str)],
        payload: &[&str],
        kind: JoinKind,
        bloom: bool,
        label: &str,
    ) -> Self {
        if kind == JoinKind::LeftSingle {
            return PlanBuilder {
                state: Err(PlanError::Invalid(
                    "use left_single_join for LeftSingle (it needs defaults)".into(),
                )),
            };
        }
        self.join_impl(build, on, payload, &[], kind, bloom, label)
    }

    /// Left-single join (`customer ⟕ per-customer counts`): at most one
    /// build match per probe tuple; unmatched tuples receive the given
    /// default payload values. `payload` pairs are `(build_col_spec,
    /// default)`.
    pub fn left_single_join(
        self,
        build: PlanBuilder,
        on: &[(&str, &str)],
        payload: &[(&str, Value)],
        label: &str,
    ) -> Self {
        let cols: Vec<&str> = payload.iter().map(|(c, _)| *c).collect();
        let defaults: Vec<Value> = payload.iter().map(|(_, v)| v.clone()).collect();
        self.join_impl(
            build,
            on,
            &cols,
            &defaults,
            JoinKind::LeftSingle,
            false,
            label,
        )
    }

    #[allow(clippy::too_many_arguments)] // internal fan-in of the two join fronts
    fn join_impl(
        self,
        build: PlanBuilder,
        on: &[(&str, &str)],
        payload: &[&str],
        defaults: &[Value],
        kind: JoinKind,
        bloom: bool,
        label: &str,
    ) -> Self {
        let label = label.to_string();
        let on: Vec<(String, String)> = on
            .iter()
            .map(|(p, b)| (p.to_string(), b.to_string()))
            .collect();
        let payload: Vec<String> = payload.iter().map(|s| s.to_string()).collect();
        let defaults = defaults.to_vec();
        self.and_then(move |probe| {
            let build = build.build()?;
            if on.is_empty() {
                return Err(PlanError::Invalid(
                    "join needs at least one key pair".into(),
                ));
            }
            let (probe_schema, build_schema) = (probe.schema(), build.schema());
            let mut probe_keys = Vec::with_capacity(on.len());
            let mut build_keys = Vec::with_capacity(on.len());
            for (p, b) in &on {
                let pi = resolve_col(probe_schema, p)?;
                let bi = resolve_col(build_schema, b)?;
                for (side, name, ty) in [
                    ("probe", p, probe_schema.field(pi).ty),
                    ("build", b, build_schema.field(bi).ty),
                ] {
                    if !integer(ty) {
                        return Err(PlanError::TypeMismatch {
                            context: format!("{side} join key {name}"),
                            expected: "an integer column".into(),
                            found: ty,
                        });
                    }
                }
                probe_keys.push(pi);
                build_keys.push(bi);
            }
            let mut payload_idx = Vec::with_capacity(payload.len());
            let mut fields: Vec<Field> = match kind {
                JoinKind::Inner | JoinKind::LeftSingle => probe_schema.fields().to_vec(),
                JoinKind::Semi | JoinKind::Anti => {
                    if !payload.is_empty() {
                        return Err(PlanError::Invalid(format!(
                            "{kind:?} join keeps probe columns only; payload is not allowed"
                        )));
                    }
                    probe_schema.fields().to_vec()
                }
            };
            for (k, spec) in payload.iter().enumerate() {
                let (name, alias) = parse_alias(spec);
                let i = resolve_col(build_schema, name)?;
                let ty = build_schema.field(i).ty;
                if kind == JoinKind::LeftSingle {
                    if ty == DataType::Str {
                        return Err(PlanError::TypeMismatch {
                            context: format!("left-single payload {name}"),
                            expected: "a numeric column".into(),
                            found: ty,
                        });
                    }
                    if defaults[k].data_type() != ty {
                        return Err(PlanError::TypeMismatch {
                            context: format!("left-single default for {name}"),
                            expected: ty.to_string(),
                            found: defaults[k].data_type(),
                        });
                    }
                }
                payload_idx.push(i);
                fields.push(Field::new(alias, ty));
            }
            check_unique(&fields)?;
            Ok(LogicalPlan::HashJoin {
                build: Box::new(build),
                probe: Box::new(probe),
                build_keys,
                probe_keys,
                payload: payload_idx,
                kind,
                bloom,
                defaults,
                label,
                schema: Schema::new(fields),
            })
        })
    }

    /// Merge-joins `self` (the streaming, possibly-duplicated right side)
    /// against `left` (unique keys, materialized). `on` is `(right_col,
    /// left_col)`; both inputs must arrive key-sorted. The builder
    /// enforces this structurally: each input must be a
    /// Filter/Project chain over a (key-clustered) scan — whose row order
    /// the physical planner then protects by keeping its scans
    /// sequential — or a `sort` whose primary key is the join key
    /// ascending. Order-destroying inputs (hash aggregates, hash joins,
    /// differently-keyed sorts) are a typed [`PlanError`] at `build()`.
    /// Output: right columns, then the named `left` payload columns
    /// (aliasable).
    pub fn merge_join(
        self,
        left: PlanBuilder,
        on: (&str, &str),
        payload: &[&str],
        label: &str,
    ) -> Self {
        let label = label.to_string();
        let (rk, lk) = (on.0.to_string(), on.1.to_string());
        let payload: Vec<String> = payload.iter().map(|s| s.to_string()).collect();
        self.and_then(move |right| {
            let left = left.build()?;
            let (right_schema, left_schema) = (right.schema(), left.schema());
            let ri = resolve_col(right_schema, &rk)?;
            let li = resolve_col(left_schema, &lk)?;
            for (side, name, ty) in [
                ("right", &rk, right_schema.field(ri).ty),
                ("left", &lk, left_schema.field(li).ty),
            ] {
                if !integer(ty) {
                    return Err(PlanError::TypeMismatch {
                        context: format!("{side} merge-join key {name}"),
                        expected: "an integer column".into(),
                        found: ty,
                    });
                }
            }
            check_merge_input("right", &right, ri)?;
            check_merge_input("left", &left, li)?;
            let mut fields = right_schema.fields().to_vec();
            let mut payload_idx = Vec::with_capacity(payload.len());
            for spec in &payload {
                let (name, alias) = parse_alias(spec);
                let i = resolve_col(left_schema, name)?;
                payload_idx.push(i);
                fields.push(Field::new(alias, left_schema.field(i).ty));
            }
            check_unique(&fields)?;
            Ok(LogicalPlan::MergeJoin {
                left: Box::new(left),
                right: Box::new(right),
                left_key: li,
                right_key: ri,
                payload: payload_idx,
                label,
                schema: Schema::new(fields),
            })
        })
    }

    /// Sorts by `keys` (leftmost primary).
    pub fn sort(self, keys: &[SortSpec]) -> Self {
        self.sort_limit(keys, None)
    }

    /// Sorts by `keys` and keeps the first `n` rows (top-N).
    pub fn top_n(self, keys: &[SortSpec], n: usize) -> Self {
        self.sort_limit(keys, Some(n))
    }

    fn sort_limit(self, keys: &[SortSpec], limit: Option<usize>) -> Self {
        let keys = keys.to_vec();
        self.and_then(move |input| {
            let schema = input.schema().clone();
            let keys = keys
                .iter()
                .map(|k| {
                    let i = resolve_col(&schema, &k.col)?;
                    Ok(SortKey {
                        col: i,
                        desc: k.desc,
                    })
                })
                .collect::<Result<Vec<_>, PlanError>>()?;
            Ok(LogicalPlan::Sort {
                input: Box::new(input),
                keys,
                limit,
                schema,
            })
        })
    }

    /// The current node's output schema, or `None` once an error has been
    /// recorded. The text front end peeks at this between stages to coerce
    /// integer literals to the column type they meet (the builder itself
    /// requires exact [`crate::expr::Value`] types).
    pub fn peek_schema(&self) -> Option<&Schema> {
        self.state.as_ref().ok().map(|p| p.schema())
    }

    /// Finishes the plan, surfacing the first recorded error.
    pub fn build(self) -> Result<LogicalPlan, PlanError> {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::expr::{asc, col, count, lit_i64, sum_i64};
    use crate::CmpKind;
    use ma_vector::ColumnBuilder;
    use std::collections::HashMap;

    fn table(name: &str, n: usize) -> Arc<Table> {
        let mut k = ColumnBuilder::with_capacity(DataType::I32, n);
        let mut v = ColumnBuilder::with_capacity(DataType::I64, n);
        let mut s = ColumnBuilder::with_capacity(DataType::Str, n);
        let mut f = ColumnBuilder::with_capacity(DataType::F64, n);
        for i in 0..n {
            k.push_i32((i % 7) as i32);
            v.push_i64(i as i64);
            s.push_str(["a", "b", "c"][i % 3]);
            f.push_f64(i as f64);
        }
        Arc::new(
            Table::new(
                name,
                vec![
                    ("k".into(), k.finish()),
                    ("v".into(), v.finish()),
                    ("s".into(), s.finish()),
                    ("f".into(), f.finish()),
                ],
            )
            .unwrap(),
        )
    }

    fn catalog() -> HashMap<String, Arc<Table>> {
        let mut c = HashMap::new();
        c.insert("t".to_string(), table("t", 100));
        c.insert("d".to_string(), table("d", 10));
        c
    }

    #[test]
    fn schema_tracks_through_pipeline() {
        let plan = PlanBuilder::scan(&catalog(), "t", &["k", "v as val", "s"])
            .filter(
                NamedPred::cmp_val("val", CmpKind::Lt, Value::I64(50)),
                "sel",
            )
            .hash_agg(&["s"], vec![count(), sum_i64("val").named("total")], "agg")
            .sort(&[asc("s")])
            .build()
            .unwrap();
        assert_eq!(plan.schema().names(), vec!["s", "count", "total"]);
        assert_eq!(
            plan.schema().types(),
            vec![DataType::Str, DataType::I64, DataType::I64]
        );
    }

    #[test]
    fn unknown_table_and_column() {
        assert!(matches!(
            PlanBuilder::scan(&catalog(), "nope", &["k"]).build(),
            Err(PlanError::UnknownTable(_))
        ));
        assert!(matches!(
            PlanBuilder::scan(&catalog(), "t", &["zzz"]).build(),
            Err(PlanError::UnknownColumn { .. })
        ));
        // Errors stick: later stages do not panic or mask them.
        assert!(matches!(
            PlanBuilder::scan(&catalog(), "t", &["zzz"])
                .filter(NamedPred::str_eq("s", "a"), "sel")
                .sort(&[asc("s")])
                .build(),
            Err(PlanError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn join_key_type_mismatch() {
        let c = catalog();
        // String probe key.
        let err = PlanBuilder::scan(&c, "t", &["s", "v"])
            .hash_join(
                PlanBuilder::scan(&c, "d", &["k"]),
                &[("s", "k")],
                &[],
                JoinKind::Semi,
                false,
                "j",
            )
            .build();
        assert!(
            matches!(err, Err(PlanError::TypeMismatch { .. })),
            "{err:?}"
        );
        // f64 build key.
        let err = PlanBuilder::scan(&c, "t", &["k"])
            .hash_join(
                PlanBuilder::scan(&c, "d", &["f"]),
                &[("k", "f")],
                &[],
                JoinKind::Semi,
                false,
                "j",
            )
            .build();
        assert!(
            matches!(err, Err(PlanError::TypeMismatch { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn aggregate_over_non_numeric_column() {
        let err = PlanBuilder::scan(&catalog(), "t", &["k", "s"])
            .hash_agg(&["k"], vec![sum_i64("s")], "agg")
            .build();
        assert!(
            matches!(err, Err(PlanError::TypeMismatch { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn duplicate_output_columns_rejected() {
        let c = catalog();
        assert!(matches!(
            PlanBuilder::scan(&c, "t", &["k", "v as k"]).build(),
            Err(PlanError::DuplicateColumn(_))
        ));
        // Join payload colliding with a probe column.
        let err = PlanBuilder::scan(&c, "t", &["k", "v"])
            .hash_join(
                PlanBuilder::scan(&c, "d", &["k", "v"]),
                &[("k", "k")],
                &["v"],
                JoinKind::Inner,
                false,
                "j",
            )
            .build();
        assert!(matches!(err, Err(PlanError::DuplicateColumn(_))), "{err:?}");
        // ... fixed by an alias.
        let ok = PlanBuilder::scan(&c, "t", &["k", "v"])
            .hash_join(
                PlanBuilder::scan(&c, "d", &["k", "v"]),
                &[("k", "k")],
                &["v as dv"],
                JoinKind::Inner,
                false,
                "j",
            )
            .build()
            .unwrap();
        assert_eq!(ok.schema().names(), vec!["k", "v", "dv"]);
    }

    #[test]
    fn semi_join_payload_rejected() {
        let c = catalog();
        assert!(matches!(
            PlanBuilder::scan(&c, "t", &["k"])
                .hash_join(
                    PlanBuilder::scan(&c, "d", &["k", "v"]),
                    &[("k", "k")],
                    &["v"],
                    JoinKind::Semi,
                    false,
                    "j",
                )
                .build(),
            Err(PlanError::Invalid(_))
        ));
    }

    #[test]
    fn merge_join_rejects_order_destroying_inputs() {
        let c = catalog();
        // Hash aggregate output arrives in hash/first-seen order, not key
        // order: typed error at build().
        let err = PlanBuilder::scan(&c, "t", &["k", "v"])
            .hash_agg(&["k"], vec![sum_i64("v")], "agg")
            .merge_join(
                PlanBuilder::scan(&c, "d", &["k as dk", "v as dv"]),
                ("k", "dk"),
                &["dv"],
                "mj",
            )
            .build();
        assert!(matches!(err, Err(PlanError::Invalid(_))), "{err:?}");
        // ... as does an order-destroying *left* side.
        let err = PlanBuilder::scan(&c, "t", &["k", "v"])
            .merge_join(
                PlanBuilder::scan(&c, "d", &["k as dk", "v as dv"]).hash_agg(
                    &["dk"],
                    vec![sum_i64("dv")],
                    "agg",
                ),
                ("k", "dk"),
                &[],
                "mj",
            )
            .build();
        assert!(matches!(err, Err(PlanError::Invalid(_))), "{err:?}");
        // Clustering-key (first-column) joins over plain scans are the
        // blessed shape...
        let ok = PlanBuilder::scan(&c, "t", &["k", "v"])
            .merge_join(
                PlanBuilder::scan(&c, "d", &["k as dk", "v as dv"]),
                ("k", "dk"),
                &["dv"],
                "mj",
            )
            .build();
        assert!(ok.is_ok(), "{ok:?}");
        // ... but a non-clustering key column has no stored order.
        let err = PlanBuilder::scan(&c, "t", &["k", "v"])
            .merge_join(
                PlanBuilder::scan(&c, "d", &["k as dk", "v as dv"]),
                ("v", "dv"),
                &[],
                "mj",
            )
            .build();
        assert!(matches!(err, Err(PlanError::Invalid(_))), "{err:?}");
        // An explicit ascending sort on the join key re-establishes order
        // and is accepted; sorting by anything else is not.
        let sorted_ok = PlanBuilder::scan(&c, "t", &["k", "v"])
            .merge_join(
                PlanBuilder::scan(&c, "d", &["k as dk", "v as dv"]).sort(&[asc("dk")]),
                ("k", "dk"),
                &["dv"],
                "mj",
            )
            .build();
        assert!(sorted_ok.is_ok(), "{sorted_ok:?}");
        let err = PlanBuilder::scan(&c, "t", &["k", "v"])
            .merge_join(
                PlanBuilder::scan(&c, "d", &["k as dk", "v as dv"]).sort(&[asc("dv")]),
                ("k", "dk"),
                &["dv"],
                "mj",
            )
            .build();
        assert!(matches!(err, Err(PlanError::Invalid(_))), "{err:?}");
    }

    #[test]
    fn left_single_default_type_checked() {
        let c = catalog();
        let err = PlanBuilder::scan(&c, "t", &["k"])
            .left_single_join(
                PlanBuilder::scan(&c, "d", &["k", "v"]),
                &[("k", "k")],
                &[("v", Value::I32(0))],
                "j",
            )
            .build();
        assert!(
            matches!(err, Err(PlanError::TypeMismatch { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn project_mixes_pass_and_compute() {
        let plan = PlanBuilder::scan(&catalog(), "t", &["k", "v"])
            .project(
                vec![("v", col("v")), ("v2", col("v").mul(lit_i64(2)))],
                "proj",
            )
            .build()
            .unwrap();
        let LogicalPlan::Project { items, schema, .. } = &plan else {
            panic!("expected project");
        };
        assert!(matches!(items[0], ProjItem::Pass(1)));
        assert!(matches!(items[1], ProjItem::Expr(_)));
        assert_eq!(schema.names(), vec!["v", "v2"]);
    }
}
