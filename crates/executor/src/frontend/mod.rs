//! Text query front end: a small SQL-ish pipeline DSL.
//!
//! Queries are written as a source scan followed by `|`-separated stages,
//! compiled through the same [`PlanBuilder`] the hand-written TPC-H
//! queries use — the front end adds **no** new execution semantics, only
//! text:
//!
//! ```text
//! from lineitem [l_orderkey, l_shipdate, l_extendedprice, l_discount]
//!   | where l_shipdate > 19950315
//!   | select l_orderkey = l_orderkey,
//!            rev = f64(l_extendedprice) * (f64(l_discount) * 0.01 * -1.0 + 1.0)
//!   | agg by [l_orderkey] [sum(rev) as revenue, count as cnt]
//!   | top 10 by revenue desc, l_orderkey
//! ```
//!
//! The pipeline surface maps 1:1 onto [`PlanBuilder`]: `where` → filter,
//! `select` → project, `keep`, `agg [by]` → stream/hash aggregation,
//! `join inner|semi|anti ... [bloom]`, `join single ... payload [col
//! default v]`, `merge join`, `order by`, and `top N by`. See DESIGN.md
//! §10 for the grammar (EBNF), the resolution rules, and the literal
//! coercion story.
//!
//! Errors are typed and spanned: [`ParseError`] for text that doesn't
//! parse, [`FrontendError::Plan`] wrapping the planner's own
//! [`PlanError`] (unknown column, type mismatch, ...) with the span of
//! the offending stage or token.

pub mod ast;
mod compile;
mod lex;
mod parse;

pub use ast::{Query, Span};
pub use compile::compile;
pub use lex::{ParseError, ParseErrorKind};
pub use parse::parse;

use crate::plan::{Catalog, LogicalPlan, PlanBuilder, PlanError};

/// Any failure between query text and a finished logical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendError {
    /// The text does not parse.
    Parse(ParseError),
    /// The text parses but does not resolve against the catalog.
    Plan {
        /// The planner's typed error.
        err: PlanError,
        /// The text that caused it.
        span: Span,
    },
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Parse(e) => write!(f, "{e}"),
            FrontendError::Plan { err, span } => {
                write!(f, "plan error at {}..{}: {err}", span.start, span.end)
            }
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError::Parse(e)
    }
}

/// Parses and compiles `text` against `catalog`, returning the builder
/// (callers can keep chaining or `build()` it).
pub fn compile_text(text: &str, catalog: &dyn Catalog) -> Result<PlanBuilder, FrontendError> {
    let ast = parse(text)?;
    compile(&ast, catalog)
}

/// Parses, compiles and builds `text` into a [`LogicalPlan`].
pub fn plan_text(text: &str, catalog: &dyn Catalog) -> Result<LogicalPlan, FrontendError> {
    compile_text(text, catalog)?.build().map_err(|err| {
        // Residual builder errors (those without a finer anchor) point at
        // the whole query.
        FrontendError::Plan {
            err,
            span: Span::default(),
        }
    })
}
