//! Recursive-descent parser for the query DSL.
//!
//! The grammar is LL(1) over the token stream (see DESIGN.md §10 for the
//! EBNF). The parser produces the typed AST of [`super::ast`]; all
//! name/type resolution is left to [`super::compile`], so a parsed query
//! is well-formed text, not yet a well-typed plan.

use ma_vector::DataType;

use super::ast::{
    AggFunc, AggItem, CmpRhsAst, ColSpec, ExprAst, Ident, JoinKindAst, Lit, PredAst, Query,
    SelectItem, SortKeyAst, Span, Stage,
};
use super::lex::{lex, ParseError, ParseErrorKind, Token, TokenKind};
use crate::expr::{ArithKind, CmpKind};

/// Parses a complete query, rejecting trailing input.
pub fn parse(text: &str) -> Result<Query, ParseError> {
    let toks = lex(text)?;
    let mut p = Parser { toks, pos: 0 };
    let q = p.query()?;
    if !matches!(p.peek().kind, TokenKind::Eof) {
        return Err(ParseError {
            kind: ParseErrorKind::TrailingInput,
            span: p.peek().span,
        });
    }
    Ok(q)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, expected: &'static str) -> Result<T, ParseError> {
        let t = self.peek();
        Err(ParseError {
            kind: ParseErrorKind::UnexpectedToken {
                expected,
                found: t.kind.describe(),
            },
            span: t.span,
        })
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Keyword(k) if *k == kw)
    }

    fn eat_kw(&mut self, kw: &'static str) -> Result<Span, ParseError> {
        if self.at_kw(kw) {
            Ok(self.bump().span)
        } else {
            self.err(kw)
        }
    }

    fn at_sym(&self, sym: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Sym(s) if *s == sym)
    }

    fn eat_sym(&mut self, sym: &'static str) -> Result<Span, ParseError> {
        if self.at_sym(sym) {
            Ok(self.bump().span)
        } else {
            self.err(sym)
        }
    }

    /// A plain identifier; keywords are a typed error here.
    fn ident(&mut self) -> Result<Ident, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let t = self.bump();
                let TokenKind::Ident(name) = t.kind else {
                    unreachable!("peeked Ident")
                };
                Ok(Ident { name, span: t.span })
            }
            TokenKind::Keyword(k) => Err(ParseError {
                kind: ParseErrorKind::ReservedWord((*k).to_string()),
                span: self.peek().span,
            }),
            _ => self.err("identifier"),
        }
    }

    fn colspec(&mut self) -> Result<ColSpec, ParseError> {
        let name = self.ident()?;
        let alias = if self.at_kw("as") {
            self.bump();
            Some(self.ident()?)
        } else {
            None
        };
        Ok(ColSpec { name, alias })
    }

    fn collist(&mut self) -> Result<Vec<ColSpec>, ParseError> {
        self.eat_sym("[")?;
        let mut out = vec![self.colspec()?];
        while self.at_sym(",") {
            self.bump();
            out.push(self.colspec()?);
        }
        self.eat_sym("]")?;
        Ok(out)
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.eat_kw("from")?;
        let table = self.ident()?;
        let cols = self.collist()?;
        let mut stages = Vec::new();
        while self.at_sym("|") {
            self.bump();
            stages.push(self.stage()?);
        }
        Ok(Query {
            table,
            cols,
            stages,
        })
    }

    fn stage(&mut self) -> Result<Stage, ParseError> {
        match &self.peek().kind {
            TokenKind::Keyword("where") => {
                self.bump();
                Ok(Stage::Where(self.pred()?))
            }
            TokenKind::Keyword("select") => {
                self.bump();
                let mut items = vec![self.select_item()?];
                while self.at_sym(",") {
                    self.bump();
                    items.push(self.select_item()?);
                }
                Ok(Stage::Select(items))
            }
            TokenKind::Keyword("keep") => {
                self.bump();
                Ok(Stage::Keep(self.collist()?))
            }
            TokenKind::Keyword("agg") => {
                self.bump();
                let keys = if self.at_kw("by") {
                    self.bump();
                    self.collist()?
                } else {
                    Vec::new()
                };
                self.eat_sym("[")?;
                let mut aggs = vec![self.agg_item()?];
                while self.at_sym(",") {
                    self.bump();
                    aggs.push(self.agg_item()?);
                }
                self.eat_sym("]")?;
                Ok(Stage::Agg { keys, aggs })
            }
            TokenKind::Keyword("join") => {
                self.bump();
                self.join_stage()
            }
            TokenKind::Keyword("merge") => {
                self.bump();
                self.eat_kw("join")?;
                self.eat_sym("(")?;
                let query = Box::new(self.query()?);
                self.eat_sym(")")?;
                self.eat_kw("on")?;
                let right = self.ident()?;
                self.eat_sym("=")?;
                let left = self.ident()?;
                let payload = if self.at_kw("payload") {
                    self.bump();
                    self.collist()?
                } else {
                    Vec::new()
                };
                Ok(Stage::MergeJoin {
                    query,
                    on: (right, left),
                    payload,
                })
            }
            TokenKind::Keyword("order") => {
                self.bump();
                self.eat_kw("by")?;
                Ok(Stage::Order(self.sort_keys()?))
            }
            TokenKind::Keyword("top") => {
                self.bump();
                let n = match &self.peek().kind {
                    TokenKind::Int(v) if *v > 0 => {
                        let v = *v as u64;
                        self.bump();
                        v
                    }
                    _ => return self.err("positive row count"),
                };
                self.eat_kw("by")?;
                Ok(Stage::Top {
                    n,
                    keys: self.sort_keys()?,
                })
            }
            _ => self.err("a stage (where/select/keep/agg/join/merge/order/top)"),
        }
    }

    fn join_stage(&mut self) -> Result<Stage, ParseError> {
        let kind = match &self.peek().kind {
            TokenKind::Keyword("inner") => Some(JoinKindAst::Inner),
            TokenKind::Keyword("semi") => Some(JoinKindAst::Semi),
            TokenKind::Keyword("anti") => Some(JoinKindAst::Anti),
            TokenKind::Keyword("single") => None,
            _ => return self.err("a join kind (inner/semi/anti/single)"),
        };
        self.bump();
        self.eat_sym("(")?;
        let query = Box::new(self.query()?);
        self.eat_sym(")")?;
        self.eat_kw("on")?;
        let mut on = vec![self.on_pair()?];
        while self.at_sym(",") {
            self.bump();
            on.push(self.on_pair()?);
        }
        match kind {
            Some(kind) => {
                let payload = if self.at_kw("payload") {
                    self.bump();
                    self.collist()?
                } else {
                    Vec::new()
                };
                let bloom = if self.at_kw("bloom") {
                    self.bump();
                    true
                } else {
                    false
                };
                Ok(Stage::Join {
                    kind,
                    query,
                    on,
                    payload,
                    bloom,
                })
            }
            None => {
                self.eat_kw("payload")?;
                self.eat_sym("[")?;
                let mut payload = vec![self.default_item()?];
                while self.at_sym(",") {
                    self.bump();
                    payload.push(self.default_item()?);
                }
                self.eat_sym("]")?;
                Ok(Stage::JoinSingle { query, on, payload })
            }
        }
    }

    fn on_pair(&mut self) -> Result<(Ident, Ident), ParseError> {
        let probe = self.ident()?;
        self.eat_sym("=")?;
        let build = self.ident()?;
        Ok((probe, build))
    }

    fn default_item(&mut self) -> Result<(ColSpec, Lit), ParseError> {
        let col = self.colspec()?;
        self.eat_kw("default")?;
        let (lit, _) = self.literal()?;
        Ok((col, lit))
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        let name = self.ident()?;
        self.eat_sym("=")?;
        let expr = self.expr()?;
        Ok(SelectItem { name, expr })
    }

    fn agg_item(&mut self) -> Result<AggItem, ParseError> {
        let (func, col) = match &self.peek().kind {
            TokenKind::Keyword("count") => {
                self.bump();
                (AggFunc::Count, None)
            }
            TokenKind::Keyword(k @ ("sum" | "min" | "max")) => {
                let func = match *k {
                    "sum" => AggFunc::Sum,
                    "min" => AggFunc::Min,
                    _ => AggFunc::Max,
                };
                self.bump();
                self.eat_sym("(")?;
                let col = self.ident()?;
                self.eat_sym(")")?;
                (func, Some(col))
            }
            _ => return self.err("an aggregate (count/sum/min/max)"),
        };
        let alias = if self.at_kw("as") {
            self.bump();
            Some(self.ident()?)
        } else {
            None
        };
        Ok(AggItem { func, col, alias })
    }

    fn sort_keys(&mut self) -> Result<Vec<SortKeyAst>, ParseError> {
        let mut keys = vec![self.sort_key()?];
        while self.at_sym(",") {
            self.bump();
            keys.push(self.sort_key()?);
        }
        Ok(keys)
    }

    fn sort_key(&mut self) -> Result<SortKeyAst, ParseError> {
        let col = self.ident()?;
        let desc = if self.at_kw("desc") {
            self.bump();
            true
        } else {
            if self.at_kw("asc") {
                self.bump();
            }
            false
        };
        Ok(SortKeyAst { col, desc })
    }

    /// A literal, with optional leading `-` on numbers.
    fn literal(&mut self) -> Result<(Lit, Span), ParseError> {
        let neg = if self.at_sym("-") {
            Some(self.bump().span)
        } else {
            None
        };
        let t = self.peek().clone();
        let lit = match t.kind {
            TokenKind::Int(v) => Lit::Int(v),
            TokenKind::Float(v) => Lit::Float(v),
            TokenKind::Str(ref s) if neg.is_none() => Lit::Str(s.clone()),
            _ => return self.err("a literal"),
        };
        self.bump();
        let span = match neg {
            Some(s) => s.to(t.span),
            None => t.span,
        };
        let lit = match (neg, lit) {
            (Some(_), Lit::Int(v)) => Lit::Int(-v),
            (Some(_), Lit::Float(v)) => Lit::Float(-v),
            (_, l) => l,
        };
        Ok((lit, span))
    }

    // -- predicates ---------------------------------------------------------

    fn pred(&mut self) -> Result<PredAst, ParseError> {
        let first = self.and_pred()?;
        if !self.at_kw("or") {
            return Ok(first);
        }
        let mut branches = vec![first];
        while self.at_kw("or") {
            self.bump();
            branches.push(self.and_pred()?);
        }
        Ok(PredAst::Or(branches))
    }

    fn and_pred(&mut self) -> Result<PredAst, ParseError> {
        let first = self.pred_atom()?;
        if !self.at_kw("and") {
            return Ok(first);
        }
        let mut branches = vec![first];
        while self.at_kw("and") {
            self.bump();
            branches.push(self.pred_atom()?);
        }
        Ok(PredAst::And(branches))
    }

    fn pred_atom(&mut self) -> Result<PredAst, ParseError> {
        if self.at_sym("(") {
            self.bump();
            let p = self.pred()?;
            self.eat_sym(")")?;
            return Ok(p);
        }
        let col = self.ident()?;
        match &self.peek().kind {
            TokenKind::Keyword("like") => {
                self.bump();
                let pattern = self.str_lit()?;
                Ok(PredAst::Like {
                    col,
                    pattern,
                    negated: false,
                })
            }
            TokenKind::Keyword("not") => {
                self.bump();
                self.eat_kw("like")?;
                let pattern = self.str_lit()?;
                Ok(PredAst::Like {
                    col,
                    pattern,
                    negated: true,
                })
            }
            TokenKind::Keyword("in") => {
                self.bump();
                self.eat_sym("(")?;
                let mut values = vec![self.str_lit()?];
                while self.at_sym(",") {
                    self.bump();
                    values.push(self.str_lit()?);
                }
                self.eat_sym(")")?;
                Ok(PredAst::InStr { col, values })
            }
            TokenKind::Sym(s) => {
                let op = match *s {
                    "<" => CmpKind::Lt,
                    "<=" => CmpKind::Le,
                    ">" => CmpKind::Gt,
                    ">=" => CmpKind::Ge,
                    "=" => CmpKind::Eq,
                    "!=" => CmpKind::Ne,
                    _ => return self.err("a comparison operator"),
                };
                self.bump();
                let rhs = match &self.peek().kind {
                    TokenKind::Ident(_) => CmpRhsAst::Col(self.ident()?),
                    _ => {
                        let (lit, span) = self.literal()?;
                        CmpRhsAst::Lit(lit, span)
                    }
                };
                Ok(PredAst::Cmp { col, op, rhs })
            }
            _ => self.err("a comparison, `like`, `not like`, or `in`"),
        }
    }

    fn str_lit(&mut self) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Str(_) => {
                let t = self.bump();
                let TokenKind::Str(s) = t.kind else {
                    unreachable!("peeked Str")
                };
                Ok(s)
            }
            _ => self.err("a string literal"),
        }
    }

    // -- expressions --------------------------------------------------------

    fn expr(&mut self) -> Result<ExprAst, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = if self.at_sym("+") {
                ArithKind::Add
            } else if self.at_sym("-") {
                ArithKind::Sub
            } else {
                return Ok(lhs);
            };
            self.bump();
            let rhs = self.term()?;
            lhs = ExprAst::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn term(&mut self) -> Result<ExprAst, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            let op = if self.at_sym("*") {
                ArithKind::Mul
            } else if self.at_sym("/") {
                ArithKind::Div
            } else {
                return Ok(lhs);
            };
            self.bump();
            let rhs = self.factor()?;
            lhs = ExprAst::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn factor(&mut self) -> Result<ExprAst, ParseError> {
        match &self.peek().kind {
            TokenKind::Sym("(") => {
                self.bump();
                let e = self.expr()?;
                self.eat_sym(")")?;
                Ok(e)
            }
            TokenKind::Sym("-") | TokenKind::Int(_) | TokenKind::Float(_) | TokenKind::Str(_) => {
                let (lit, span) = self.literal()?;
                Ok(ExprAst::Lit(lit, span))
            }
            TokenKind::Keyword(k @ ("i32" | "i64" | "f64")) => {
                let to = match *k {
                    "i32" => DataType::I32,
                    "i64" => DataType::I64,
                    _ => DataType::F64,
                };
                let start = self.bump().span;
                self.eat_sym("(")?;
                let inner = self.expr()?;
                let end = self.eat_sym(")")?;
                Ok(ExprAst::Cast {
                    to,
                    inner: Box::new(inner),
                    span: start.to(end),
                })
            }
            TokenKind::Keyword("substr") => {
                let start = self.bump().span;
                self.eat_sym("(")?;
                let col = self.ident()?;
                self.eat_sym(",")?;
                let s = self.uint()?;
                self.eat_sym(",")?;
                let l = self.uint()?;
                let end = self.eat_sym(")")?;
                Ok(ExprAst::Substr {
                    col,
                    start: s,
                    len: l,
                    span: start.to(end),
                })
            }
            TokenKind::Ident(_) => Ok(ExprAst::Col(self.ident()?)),
            _ => self.err("an expression"),
        }
    }

    fn uint(&mut self) -> Result<u64, ParseError> {
        match &self.peek().kind {
            TokenKind::Int(v) if *v >= 0 => {
                let v = *v as u64;
                self.bump();
                Ok(v)
            }
            _ => self.err("a non-negative integer"),
        }
    }
}
